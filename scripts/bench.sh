#!/bin/sh
# Reproducible benchmark harness: runs the stepping and kernel benchmarks
# with -benchmem and converts the output into a schema'd JSON artifact
# (BENCH_10.json at the repo root) via cmd/benchjson. The artifact embeds
#
#   - the current measurements, including a -cpu GOMAXPROCS sweep of the
#     serial, workers=4, and unbatched-viscous channel steppers (benchjson
#     records each -N name suffix as "procs", so the variants coexist),
#   - the committed seed baseline (scripts/bench_baseline.json), so one
#     file carries the before/after pair, and
#   - the la.Tuner per-shape kernel sweep for the Table 1 channel order
#     (N=9, 2D) — the data behind the installed dispatch table.
#
# Usage:
#   scripts/bench.sh            full run (default: 5x ~1s per benchmark)
#   scripts/bench.sh quick      CI smoke: one iteration per benchmark plus
#                               the zero-alloc gate on the serial and W4
#                               steps; artifact written to a temp dir and
#                               only validated, not committed
#
# Environment overrides:
#   BENCH_REGEX    single-GOMAXPROCS benchmark selector (default: the tuned
#                  and instrumented Table 1 steppers, the distributed
#                  channel stepper at P=4 and P=64, Table 3 kernels, and the
#                  per-preconditioner channel steppers)
#   BENCH_SWEEP    benchmarks run under the -cpu sweep (default: the Table 1
#                  serial, workers=4, and unbatched-viscous steppers)
#   BENCH_CPU      -cpu list for the sweep (default 1,4)
#   BENCH_TIME     -benchtime value for the full run (default 1s)
#   BENCH_COUNT    -count value for the full run (default 1)
#   BENCH_OUT      artifact path for the full run (default BENCH_10.json)
set -eu
cd "$(dirname "$0")/.."

regex="${BENCH_REGEX:-BenchmarkTable1ChannelStepTuned$|BenchmarkTable1ChannelStepInstrumented$|BenchmarkChannelStepDistributed$|BenchmarkChannelStepDistributedP64$|BenchmarkTable3|BenchmarkPrecondChannelStep}"
sweep="${BENCH_SWEEP:-BenchmarkTable1ChannelStep$|BenchmarkTable1ChannelStepW4$|BenchmarkTable1ChannelStepUnbatched$}"
cpus="${BENCH_CPU:-1,4}"
mode="${1:-full}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# alloc_gate <bench.txt>: the serial and workers=4 steady-state steps must
# report exactly 0 allocs/op at every GOMAXPROCS — the per-step arenas are a
# load-bearing invariant, so any allocation is a CI failure, not a drift.
alloc_gate() {
    if grep -E "^BenchmarkTable1ChannelStep(W4)?(-[0-9]+)?[[:space:]]" "$1" |
        grep -v " 0 allocs/op" | grep .; then
        echo "bench gate: steady-state channel step allocates (want 0 allocs/op)" >&2
        return 1
    fi
    echo "bench gate: serial and W4 steps are allocation-free"
}

case "$mode" in
quick)
    echo "== bench smoke: -benchtime=1x over $regex =="
    go test -run '^$' -bench "$regex" -benchtime=1x -benchmem . | tee "$tmp/bench.txt"
    echo "== bench smoke: -benchtime=1x -cpu $cpus over $sweep =="
    go test -run '^$' -bench "$sweep" -benchtime=1x -benchmem -cpu "$cpus" . |
        tee -a "$tmp/bench.txt"
    alloc_gate "$tmp/bench.txt"
    go run ./cmd/benchjson -in "$tmp/bench.txt" -out "$tmp/bench.json" \
        -label "ci-smoke" -baseline scripts/bench_baseline.json -tune 9:2 -tune-ms 3
    # Validate the artifact round-trips as JSON and carries measurements.
    go run ./cmd/benchjson -in /dev/null -stamp=false >/dev/null # parser self-check
    grep -q '"schema": "repro-bench/1"' "$tmp/bench.json"
    grep -q '"name": "Table1ChannelStep"' "$tmp/bench.json"
    grep -q '"procs": 4' "$tmp/bench.json"
    echo "bench smoke OK (artifact validated, not committed)"
    ;;
full)
    out="${BENCH_OUT:-BENCH_10.json}"
    benchtime="${BENCH_TIME:-1s}"
    count="${BENCH_COUNT:-1}"
    echo "== bench: -benchtime=$benchtime -count=$count over $regex =="
    go test -run '^$' -bench "$regex" -benchtime="$benchtime" -count="$count" -benchmem . |
        tee "$tmp/bench.txt"
    echo "== bench: -cpu $cpus worker sweep over $sweep =="
    go test -run '^$' -bench "$sweep" -benchtime="$benchtime" -count="$count" \
        -benchmem -cpu "$cpus" . | tee -a "$tmp/bench.txt"
    alloc_gate "$tmp/bench.txt"
    go run ./cmd/benchjson -in "$tmp/bench.txt" -out "$out" \
        -label "scripts/bench.sh full" -baseline scripts/bench_baseline.json -tune 9:2
    echo "wrote $out"
    ;;
*)
    echo "usage: scripts/bench.sh [quick|full]" >&2
    exit 2
    ;;
esac
