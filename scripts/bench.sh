#!/bin/sh
# Reproducible benchmark harness: runs the stepping and kernel benchmarks
# with -benchmem and converts the output into a schema'd JSON artifact
# (BENCH_7.json at the repo root) via cmd/benchjson. The artifact embeds
#
#   - the current measurements,
#   - the committed seed baseline (scripts/bench_baseline.json), so one
#     file carries the before/after pair, and
#   - the la.Tuner per-shape kernel sweep for the Table 1 channel order
#     (N=9, 2D) — the data behind the installed dispatch table.
#
# Usage:
#   scripts/bench.sh            full run (default: 5x ~1s per benchmark)
#   scripts/bench.sh quick      CI smoke: one iteration per benchmark,
#                               artifact written to a temp dir and only
#                               validated, not committed
#
# Environment overrides:
#   BENCH_REGEX    benchmark selector (default: Table 1 stepping including
#                  the instrumented-overhead run with histogram recording,
#                  the distributed channel stepper at P=4 and P=64, and
#                  Table 3 kernels — the benchmarks tracked in BENCH_7.json)
#   BENCH_TIME     -benchtime value for the full run (default 1s)
#   BENCH_COUNT    -count value for the full run (default 1)
#   BENCH_OUT      artifact path for the full run (default BENCH_7.json)
set -eu
cd "$(dirname "$0")/.."

regex="${BENCH_REGEX:-BenchmarkTable1ChannelStep$|BenchmarkTable1ChannelStepW4$|BenchmarkTable1ChannelStepTuned$|BenchmarkTable1ChannelStepInstrumented$|BenchmarkChannelStepDistributed$|BenchmarkChannelStepDistributedP64$|BenchmarkTable3}"
mode="${1:-full}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

case "$mode" in
quick)
    echo "== bench smoke: -benchtime=1x over $regex =="
    go test -run '^$' -bench "$regex" -benchtime=1x -benchmem . | tee "$tmp/bench.txt"
    go run ./cmd/benchjson -in "$tmp/bench.txt" -out "$tmp/bench.json" \
        -label "ci-smoke" -baseline scripts/bench_baseline.json -tune 9:2 -tune-ms 3
    # Validate the artifact round-trips as JSON and carries measurements.
    go run ./cmd/benchjson -in /dev/null -stamp=false >/dev/null # parser self-check
    grep -q '"schema": "repro-bench/1"' "$tmp/bench.json"
    grep -q '"name": "Table1ChannelStep"' "$tmp/bench.json"
    echo "bench smoke OK (artifact validated, not committed)"
    ;;
full)
    out="${BENCH_OUT:-BENCH_7.json}"
    benchtime="${BENCH_TIME:-1s}"
    count="${BENCH_COUNT:-1}"
    echo "== bench: -benchtime=$benchtime -count=$count over $regex =="
    go test -run '^$' -bench "$regex" -benchtime="$benchtime" -count="$count" -benchmem . |
        tee "$tmp/bench.txt"
    go run ./cmd/benchjson -in "$tmp/bench.txt" -out "$out" \
        -label "scripts/bench.sh full" -baseline scripts/bench_baseline.json -tune 9:2
    echo "wrote $out"
    ;;
*)
    echo "usage: scripts/bench.sh [quick|full]" >&2
    exit 2
    ;;
esac
