#!/bin/sh
# Tiered local CI, mirrored by the parallel jobs of .github/workflows/ci.yml.
#
#   tier1   go build + full test suite (the repo's acceptance gate)
#   tier2   go vet + race detector over the whole module. Long-running
#           physics cases (multi-minute shear-layer roll-up) skip under
#           -short; everything with concurrency (comm ranks, gs exchange,
#           sem worker pools, instrument counters) still runs under -race.
#   static  staticcheck over the module (skipped with a note when the
#           binary is not installed; the workflow installs it)
#   smoke   build semflow + semflowd + tracecheck + tracepath once, then
#           validate the -trace and -history artifacts of the serial,
#           distributed, fault-injected, and checkpoint/restart paths,
#           scrape the live -listen endpoint mid-run, walk the P=256
#           trace's critical path, exercise -precond auto (trial → report
#           → persisted cache → table rerun, plus a forced-variant
#           divergence cross-check), and round-trip a channel job through
#           the semflowd session service (submit, poll, fetch artifacts)
#   bench   benchmark harness, one iteration per benchmark (including the
#           -cpu 1,4 worker sweep) + artifact check + the zero-allocs/op
#           gate on the serial and workers=4 steady-state channel steps
#           + the preconditioner-selection regression gate on the channel
#
# Usage: scripts/ci.sh [tier1|tier2|static|smoke|bench|all]   (default all)
#
# Environment:
#   SMOKE_OUT          directory to keep the smoke artifacts in (default: a
#                      temp dir removed on exit); the workflow uploads it.
#   TUNE_CACHE_DIR     directory holding the persisted preconditioner
#                      selection cache (default: the smoke dir, i.e. cold);
#                      the workflow restores it via actions/cache keyed on
#                      CPU model + Go version.
#   SMOKE_INJECT_FAIL  =1 makes the smoke tier fail deliberately while its
#                      background -linger run is alive; the workflow uses
#                      it to prove the EXIT trap leaks no processes.
set -eu
cd "$(dirname "$0")/.."

# stage NAME CMD... — run one stage with wall-clock timing.
stage() {
    name="$1"
    shift
    echo "== $name: $* =="
    t0="$(date +%s)"
    "$@"
    echo "-- $name done in $(( $(date +%s) - t0 ))s"
}

tier1() {
    stage "tier1/build" go build ./...
    stage "tier1/test" go test ./...
}

tier2() {
    stage "tier2/vet" go vet ./...
    stage "tier2/race" go test -race -short ./...
}

static() {
    if command -v staticcheck >/dev/null 2>&1; then
        stage "static/staticcheck" staticcheck ./...
    elif [ "${CI:-}" = "true" ]; then
        # On a CI runner a missing linter is a broken workflow, not an
        # optional tool: fail loudly instead of green-washing the tier.
        echo "== static: staticcheck missing on a CI runner (CI=true); the workflow must install it ==" >&2
        exit 1
    else
        echo "== static: staticcheck not installed; skipping (the CI workflow installs it) =="
    fi
}

# --- background-process bookkeeping ----------------------------------------
# Every background semflow/semflowd registers its pid in BG_PIDS, and ONE
# EXIT trap reaps whatever is still running — so a failure anywhere
# mid-smoke (any set -e exit) cannot leak a daemon or a -linger run into
# the CI runner.
BG_PIDS=""
SMOKE_TMP=""

smoke_cleanup() {
    for pid in $BG_PIDS; do
        kill "$pid" 2>/dev/null || true
    done
    for pid in $BG_PIDS; do
        wait "$pid" 2>/dev/null || true
    done
    if [ -n "$SMOKE_TMP" ]; then
        rm -rf "$SMOKE_TMP"
    fi
}

# spawn_bg LOG CMD... — start CMD in the background, output to LOG, pid
# registered for the EXIT trap and left in $BG_PID.
spawn_bg() {
    _log="$1"
    shift
    "$@" > "$_log" 2>&1 &
    BG_PID=$!
    BG_PIDS="$BG_PIDS $BG_PID"
}

# stop_bg PID — stop one registered background process and reap it.
stop_bg() {
    kill "$1" 2>/dev/null || true
    wait "$1" 2>/dev/null || true
}

# poll_sed LOG EXPR — poll LOG (up to 20s) until `sed -n EXPR` prints
# something; echoes it. Dumps the log to stderr and fails on timeout.
poll_sed() {
    _log="$1"
    _expr="$2"
    for _ in $(seq 1 100); do
        _got="$(sed -n "$_expr" "$_log")"
        if [ -n "$_got" ]; then
            echo "$_got"
            return 0
        fi
        sleep 0.2
    done
    echo "timed out waiting for '$_expr' in $_log:" >&2
    cat "$_log" >&2
    return 1
}

# poll_grep LOG PATTERN [TRIES] — wait until LOG contains PATTERN (0.2s per
# try). Dumps the log to stderr and fails on timeout.
poll_grep() {
    _log="$1"
    _pat="$2"
    _tries="${3:-100}"
    for _ in $(seq 1 "$_tries"); do
        if grep -q "$_pat" "$_log"; then
            return 0
        fi
        sleep 0.2
    done
    echo "timed out waiting for '$_pat' in $_log:" >&2
    cat "$_log" >&2
    return 1
}

# poll_state URL — poll a semflowd session until its state leaves
# "running"; echoes the final state.
poll_state() {
    _url="$1"
    _state=""
    for _ in $(seq 1 300); do
        _state="$(curl -sf "$_url" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')"
        [ "$_state" = "running" ] || break
        sleep 0.2
    done
    echo "$_state"
}

# div_bound HIST_A HIST_B — the two runs' final-step max_divergence must
# meet the same 1e-7 bound and agree within 5%: the preconditioner changes
# the solver path, never the solution it converges to.
div_bound() {
    _da="$(tail -1 "$1" | sed -n 's/.*"max_divergence":\([^,}]*\).*/\1/p')"
    _db="$(tail -1 "$2" | sed -n 's/.*"max_divergence":\([^,}]*\).*/\1/p')"
    awk -v a="$_da" -v b="$_db" 'BEGIN {
        if (a <= 0 || b <= 0 || a > 1e-7 || b > 1e-7) exit 1
        r = a / b
        if (r < 0.95 || r > 1.05) exit 1
    }' || {
        echo "final-step divergence bounds disagree: $_da vs $_db" >&2
        return 1
    }
}

smoke() {
    out="${SMOKE_OUT:-}"
    if [ -z "$out" ]; then
        out="$(mktemp -d)"
        SMOKE_TMP="$out"
    fi
    trap smoke_cleanup EXIT
    mkdir -p "$out/bin"

    # Build the drivers once; every smoke below reuses the binaries instead
    # of paying `go run` compilation per invocation.
    stage "smoke/build" go build -o "$out/bin/" ./cmd/semflow ./cmd/semflowd ./cmd/tracecheck ./cmd/tracepath

    echo "== smoke: semflow -trace/-history artifacts validate =="
    "$out/bin/semflow" -case shearlayer -nel 4 -n 5 -steps 2 -report 1 \
        -trace "$out/trace.json" -trace-ranks 4 -history "$out/history.jsonl"
    "$out/bin/tracecheck" -trace "$out/trace.json" -min-ranks 4 \
        -history "$out/history.jsonl"

    echo "== smoke: distributed stepper (-ranks) artifacts validate =="
    "$out/bin/semflow" -case channel -n 5 -ranks 4 -steps 2 -report 1 \
        -trace "$out/dist-trace.json" -history "$out/dist-history.jsonl"
    "$out/bin/tracecheck" -trace "$out/dist-trace.json" -min-ranks 4 \
        -history "$out/dist-history.jsonl"

    echo "== smoke: fault-injected run recovers, trace carries fault spans =="
    cat > "$out/faults.json" <<'EOF'
{
  "seed": 7,
  "stragglers": [{"rank": 1, "factor": 3}],
  "drops": [{"from": -1, "to": -1, "prob": 0.02}]
}
EOF
    "$out/bin/semflow" -case channel -n 5 -ranks 4 -steps 2 -report 1 \
        -faults "$out/faults.json" -trace "$out/fault-trace.json"
    "$out/bin/tracecheck" -trace "$out/fault-trace.json" -min-ranks 4 \
        -min-fault-events 1

    echo "== smoke: paper-scale rank count (P=256, one element per rank) =="
    # Full pressure solve, untraced: proves the simulated machine itself
    # scales (~13M messages through the pooled/indexed comm hot path).
    "$out/bin/semflow" -case channel -kx 32 -ky 8 -n 4 -ranks 256 -steps 1 -report 1
    # Traced variant with a capped pressure solve: every message costs ~4
    # trace events, so the cap keeps the 256-track trace writable in CI
    # time. tracecheck still validates all 256 rank tracks.
    "$out/bin/semflow" -case channel -kx 32 -ky 8 -n 4 -ranks 256 -steps 1 \
        -report 1 -piters 8 -trace "$out/p256-trace.json"
    "$out/bin/tracecheck" -trace "$out/p256-trace.json" -min-ranks 256 -flows-closed
    # Critical-path analysis over the same trace: the report must attribute
    # the P=256 step to the collective-latency categories.
    "$out/bin/tracepath" -trace "$out/p256-trace.json" | tee "$out/p256-critpath.txt"
    grep -q "allreduce" "$out/p256-critpath.txt"
    rm -f "$out/p256-trace.json" # hundreds of MB; validated, not uploaded

    echo "== smoke: live /metrics and /progress scrape during a -ranks run =="
    # Rank-sampled trace plus the live endpoint: the run lingers after the
    # last step so the scrape below cannot race completion.
    spawn_bg "$out/listen.log" "$out/bin/semflow" -case channel -n 5 -ranks 4 \
        -steps 4 -report 1 -listen 127.0.0.1:0 -linger 30s \
        -trace "$out/sampled-trace.json" -trace-sample 2
    listen_pid=$BG_PID
    addr="$(poll_sed "$out/listen.log" 's|^observability: listening on http://\([^ ]*\).*|\1|p')"
    if [ "${SMOKE_INJECT_FAIL:-}" = "1" ]; then
        # Leak-check hook for the workflow: fail here, with the -linger run
        # alive, and prove the EXIT trap still reaps every background pid.
        echo "== smoke: injected failure (SMOKE_INJECT_FAIL=1) ==" >&2
        exit 1
    fi
    "$out/bin/tracecheck" -metrics-url "http://$addr/metrics" \
        -progress-url "http://$addr/progress"
    # Let the run finish writing its artifacts (it lingers afterwards, so
    # the endpoint staying up never races the trace write), then stop it.
    poll_grep "$out/listen.log" "trace events" 300
    stop_bg "$listen_pid"
    # The sampled trace keeps full tracks for exactly 2 of the 4 ranks and
    # stays flow-closed by construction.
    "$out/bin/tracecheck" -trace "$out/sampled-trace.json" -min-ranks 2 -flows-closed

    echo "== smoke: -precond auto selects, reports, and caches a variant =="
    # The selection cache lives in TUNE_CACHE_DIR when the workflow restores
    # one (actions/cache keyed on CPU model + Go version); the cache file
    # itself is keyed the same way, so a stale restore re-selects safely.
    cache_dir="${TUNE_CACHE_DIR:-$out}"
    mkdir -p "$cache_dir"
    "$out/bin/semflow" -case channel -n 5 -steps 2 -report 1 -precond auto \
        -precond-cache "$cache_dir/precond-cache.json" -stats-json \
        > "$out/precond-auto.log"
    grep -q '"precond":' "$out/precond-auto.log"
    grep -Eq '"precond_source": *"(trial|table)"' "$out/precond-auto.log"
    [ -f "$cache_dir/precond-cache.json" ]
    # A rerun must resolve from the (installed or persisted) table, with no
    # second trial tournament.
    "$out/bin/semflow" -case channel -n 5 -steps 1 -report 1 -precond auto \
        -precond-cache "$cache_dir/precond-cache.json" -stats-json \
        > "$out/precond-auto2.log"
    grep -q '"precond_source": *"table"' "$out/precond-auto2.log"
    # Forcing the Chebyshev-Jacobi variant must converge to the same
    # final-step divergence bound as the Schwarz reference run.
    "$out/bin/semflow" -case channel -n 5 -steps 2 -report 1 \
        -precond chebjacobi -history "$out/precond-cheb-history.jsonl"
    "$out/bin/semflow" -case channel -n 5 -steps 2 -report 1 \
        -precond schwarz -history "$out/precond-schwarz-history.jsonl"
    div_bound "$out/precond-cheb-history.jsonl" "$out/precond-schwarz-history.jsonl"

    echo "== smoke: semflowd session service end-to-end =="
    # Start the daemon on a free port, submit the Table-1 TS-wave channel
    # case over the job API, poll it to completion, then validate the
    # streamed history JSONL and the stored trace artifact with tracecheck.
    spawn_bg "$out/semflowd.log" "$out/bin/semflowd" -listen 127.0.0.1:0 \
        -store "$out/semflowd-data" -max-active 2
    daemon_pid=$BG_PID
    daddr="$(poll_sed "$out/semflowd.log" 's|^semflowd: listening on http://\([^ ]*\).*|\1|p')"
    sid="$(curl -sf "http://$daddr/api/sessions" \
        -d '{"case":"channel","steps":4,"n":5,"workers":2,"trace":true}' \
        | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')"
    if [ -z "$sid" ]; then
        echo "semflowd rejected the channel submission:" >&2
        cat "$out/semflowd.log" >&2
        exit 1
    fi
    state="$(poll_state "http://$daddr/api/sessions/$sid")"
    if [ "$state" != "done" ]; then
        echo "session $sid ended in state '$state':" >&2
        curl -s "http://$daddr/api/sessions/$sid" >&2 || true
        exit 1
    fi
    # Per-session live instruments, then the deposited artifacts.
    "$out/bin/tracecheck" -metrics-url "http://$daddr/api/sessions/$sid/metrics" \
        -progress-url "http://$daddr/api/sessions/$sid/progress"
    curl -sf "http://$daddr/api/sessions/$sid/history" > "$out/semflowd-history.jsonl"
    curl -sf "http://$daddr/api/sessions/$sid/artifacts/trace.json" > "$out/semflowd-trace.json"
    "$out/bin/tracecheck" -trace "$out/semflowd-trace.json" \
        -history "$out/semflowd-history.jsonl"
    [ "$(wc -l < "$out/semflowd-history.jsonl")" -eq 4 ] || {
        echo "expected 4 history records, got:" >&2
        cat "$out/semflowd-history.jsonl" >&2
        exit 1
    }
    stop_bg "$daemon_pid"

    echo "== smoke: checkpoint at step 2, resume to step 4 =="
    "$out/bin/semflow" -case channel -n 5 -ranks 4 -steps 2 -report 1 \
        -checkpoint "$out/ckpt" -checkpoint-every 2
    "$out/bin/semflow" -case channel -n 5 -ranks 4 -steps 4 -report 1 \
        -checkpoint "$out/ckpt" -resume > "$out/resume.log"
    cat "$out/resume.log"
    grep -q "resuming from" "$out/resume.log"
}

bench() {
    stage "bench/quick" ./scripts/bench.sh quick
    # Regression gate: the auto-selected pressure preconditioner must not
    # iterate worse than the Schwarz reference on the Table 1 channel.
    stage "bench/precond-gate" go test -run 'TestPrecondSelectionGateChannel' -count=1 -v .
}

mode="${1:-all}"
case "$mode" in
tier1) tier1 ;;
tier2) tier2 ;;
static) static ;;
smoke) smoke ;;
bench) bench ;;
all)
    tier1
    tier2
    static
    smoke
    bench
    ;;
*)
    echo "usage: scripts/ci.sh [tier1|tier2|static|smoke|bench|all]" >&2
    exit 2
    ;;
esac

echo "CI OK ($mode)"
