#!/bin/sh
# Tiered local CI, mirrored by the parallel jobs of .github/workflows/ci.yml.
#
#   tier1   go build + full test suite (the repo's acceptance gate)
#   tier2   go vet + race detector over the whole module. Long-running
#           physics cases (multi-minute shear-layer roll-up) skip under
#           -short; everything with concurrency (comm ranks, gs exchange,
#           sem worker pools, instrument counters) still runs under -race.
#   static  staticcheck over the module (skipped with a note when the
#           binary is not installed; the workflow installs it)
#   smoke   build semflow + semflowd + tracecheck + tracepath once, then
#           validate the -trace and -history artifacts of the serial,
#           distributed, fault-injected, and checkpoint/restart paths,
#           scrape the live -listen endpoint mid-run, walk the P=256
#           trace's critical path, and round-trip a channel job through
#           the semflowd session service (submit, poll, fetch artifacts)
#   bench   benchmark harness, one iteration per benchmark (including the
#           -cpu 1,4 worker sweep) + artifact check + the zero-allocs/op
#           gate on the serial and workers=4 steady-state channel steps
#
# Usage: scripts/ci.sh [tier1|tier2|static|smoke|bench|all]   (default all)
#
# Environment:
#   SMOKE_OUT  directory to keep the smoke artifacts in (default: a temp
#              dir removed on exit); the workflow uploads it.
set -eu
cd "$(dirname "$0")/.."

# stage NAME CMD... — run one stage with wall-clock timing.
stage() {
    name="$1"
    shift
    echo "== $name: $* =="
    t0="$(date +%s)"
    "$@"
    echo "-- $name done in $(( $(date +%s) - t0 ))s"
}

tier1() {
    stage "tier1/build" go build ./...
    stage "tier1/test" go test ./...
}

tier2() {
    stage "tier2/vet" go vet ./...
    stage "tier2/race" go test -race -short ./...
}

static() {
    if command -v staticcheck >/dev/null 2>&1; then
        stage "static/staticcheck" staticcheck ./...
    else
        echo "== static: staticcheck not installed; skipping (the CI workflow installs it) =="
    fi
}

smoke() {
    out="${SMOKE_OUT:-}"
    if [ -z "$out" ]; then
        out="$(mktemp -d)"
        trap 'rm -rf "$out"' EXIT
    fi
    mkdir -p "$out/bin"

    # Build the drivers once; every smoke below reuses the binaries instead
    # of paying `go run` compilation per invocation.
    stage "smoke/build" go build -o "$out/bin/" ./cmd/semflow ./cmd/semflowd ./cmd/tracecheck ./cmd/tracepath

    echo "== smoke: semflow -trace/-history artifacts validate =="
    "$out/bin/semflow" -case shearlayer -nel 4 -n 5 -steps 2 -report 1 \
        -trace "$out/trace.json" -trace-ranks 4 -history "$out/history.jsonl"
    "$out/bin/tracecheck" -trace "$out/trace.json" -min-ranks 4 \
        -history "$out/history.jsonl"

    echo "== smoke: distributed stepper (-ranks) artifacts validate =="
    "$out/bin/semflow" -case channel -n 5 -ranks 4 -steps 2 -report 1 \
        -trace "$out/dist-trace.json" -history "$out/dist-history.jsonl"
    "$out/bin/tracecheck" -trace "$out/dist-trace.json" -min-ranks 4 \
        -history "$out/dist-history.jsonl"

    echo "== smoke: fault-injected run recovers, trace carries fault spans =="
    cat > "$out/faults.json" <<'EOF'
{
  "seed": 7,
  "stragglers": [{"rank": 1, "factor": 3}],
  "drops": [{"from": -1, "to": -1, "prob": 0.02}]
}
EOF
    "$out/bin/semflow" -case channel -n 5 -ranks 4 -steps 2 -report 1 \
        -faults "$out/faults.json" -trace "$out/fault-trace.json"
    "$out/bin/tracecheck" -trace "$out/fault-trace.json" -min-ranks 4 \
        -min-fault-events 1

    echo "== smoke: paper-scale rank count (P=256, one element per rank) =="
    # Full pressure solve, untraced: proves the simulated machine itself
    # scales (~13M messages through the pooled/indexed comm hot path).
    "$out/bin/semflow" -case channel -kx 32 -ky 8 -n 4 -ranks 256 -steps 1 -report 1
    # Traced variant with a capped pressure solve: every message costs ~4
    # trace events, so the cap keeps the 256-track trace writable in CI
    # time. tracecheck still validates all 256 rank tracks.
    "$out/bin/semflow" -case channel -kx 32 -ky 8 -n 4 -ranks 256 -steps 1 \
        -report 1 -piters 8 -trace "$out/p256-trace.json"
    "$out/bin/tracecheck" -trace "$out/p256-trace.json" -min-ranks 256 -flows-closed
    # Critical-path analysis over the same trace: the report must attribute
    # the P=256 step to the collective-latency categories.
    "$out/bin/tracepath" -trace "$out/p256-trace.json" | tee "$out/p256-critpath.txt"
    grep -q "allreduce" "$out/p256-critpath.txt"
    rm -f "$out/p256-trace.json" # hundreds of MB; validated, not uploaded

    echo "== smoke: live /metrics and /progress scrape during a -ranks run =="
    # Rank-sampled trace plus the live endpoint: the run lingers after the
    # last step so the scrape below cannot race completion.
    "$out/bin/semflow" -case channel -n 5 -ranks 4 -steps 4 -report 1 \
        -listen 127.0.0.1:0 -linger 30s -trace "$out/sampled-trace.json" \
        -trace-sample 2 > "$out/listen.log" 2>&1 &
    listen_pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's|^observability: listening on http://\([^ ]*\).*|\1|p' "$out/listen.log")"
        [ -n "$addr" ] && break
        sleep 0.2
    done
    if [ -z "$addr" ]; then
        echo "semflow -listen never reported an address:" >&2
        cat "$out/listen.log" >&2
        kill "$listen_pid" 2>/dev/null || true
        exit 1
    fi
    "$out/bin/tracecheck" -metrics-url "http://$addr/metrics" \
        -progress-url "http://$addr/progress"
    # Let the run finish writing its artifacts (it lingers afterwards, so
    # the endpoint staying up never races the trace write), then stop it.
    for _ in $(seq 1 300); do
        grep -q "trace events" "$out/listen.log" && break
        sleep 0.2
    done
    grep -q "trace events" "$out/listen.log" || {
        echo "semflow never wrote the sampled trace:" >&2
        cat "$out/listen.log" >&2
        kill "$listen_pid" 2>/dev/null || true
        exit 1
    }
    kill "$listen_pid" 2>/dev/null || true
    wait "$listen_pid" 2>/dev/null || true
    # The sampled trace keeps full tracks for exactly 2 of the 4 ranks and
    # stays flow-closed by construction.
    "$out/bin/tracecheck" -trace "$out/sampled-trace.json" -min-ranks 2 -flows-closed

    echo "== smoke: semflowd session service end-to-end =="
    # Start the daemon on a free port, submit the Table-1 TS-wave channel
    # case over the job API, poll it to completion, then validate the
    # streamed history JSONL and the stored trace artifact with tracecheck.
    "$out/bin/semflowd" -listen 127.0.0.1:0 -store "$out/semflowd-data" \
        -max-active 2 > "$out/semflowd.log" 2>&1 &
    daemon_pid=$!
    daddr=""
    for _ in $(seq 1 100); do
        daddr="$(sed -n 's|^semflowd: listening on http://\([^ ]*\).*|\1|p' "$out/semflowd.log")"
        [ -n "$daddr" ] && break
        sleep 0.2
    done
    if [ -z "$daddr" ]; then
        echo "semflowd never reported an address:" >&2
        cat "$out/semflowd.log" >&2
        kill "$daemon_pid" 2>/dev/null || true
        exit 1
    fi
    sid="$(curl -sf "http://$daddr/api/sessions" \
        -d '{"case":"channel","steps":4,"n":5,"workers":2,"trace":true}' \
        | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')"
    if [ -z "$sid" ]; then
        echo "semflowd rejected the channel submission:" >&2
        cat "$out/semflowd.log" >&2
        kill "$daemon_pid" 2>/dev/null || true
        exit 1
    fi
    state=""
    for _ in $(seq 1 300); do
        state="$(curl -sf "http://$daddr/api/sessions/$sid" \
            | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')"
        [ "$state" = "running" ] || break
        sleep 0.2
    done
    if [ "$state" != "done" ]; then
        echo "session $sid ended in state '$state':" >&2
        curl -s "http://$daddr/api/sessions/$sid" >&2 || true
        kill "$daemon_pid" 2>/dev/null || true
        exit 1
    fi
    # Per-session live instruments, then the deposited artifacts.
    "$out/bin/tracecheck" -metrics-url "http://$daddr/api/sessions/$sid/metrics" \
        -progress-url "http://$daddr/api/sessions/$sid/progress"
    curl -sf "http://$daddr/api/sessions/$sid/history" > "$out/semflowd-history.jsonl"
    curl -sf "http://$daddr/api/sessions/$sid/artifacts/trace.json" > "$out/semflowd-trace.json"
    "$out/bin/tracecheck" -trace "$out/semflowd-trace.json" \
        -history "$out/semflowd-history.jsonl"
    [ "$(wc -l < "$out/semflowd-history.jsonl")" -eq 4 ] || {
        echo "expected 4 history records, got:" >&2
        cat "$out/semflowd-history.jsonl" >&2
        kill "$daemon_pid" 2>/dev/null || true
        exit 1
    }
    kill "$daemon_pid" 2>/dev/null || true
    wait "$daemon_pid" 2>/dev/null || true

    echo "== smoke: checkpoint at step 2, resume to step 4 =="
    "$out/bin/semflow" -case channel -n 5 -ranks 4 -steps 2 -report 1 \
        -checkpoint "$out/ckpt" -checkpoint-every 2
    "$out/bin/semflow" -case channel -n 5 -ranks 4 -steps 4 -report 1 \
        -checkpoint "$out/ckpt" -resume > "$out/resume.log"
    cat "$out/resume.log"
    grep -q "resuming from" "$out/resume.log"
}

bench() {
    stage "bench/quick" ./scripts/bench.sh quick
}

mode="${1:-all}"
case "$mode" in
tier1) tier1 ;;
tier2) tier2 ;;
static) static ;;
smoke) smoke ;;
bench) bench ;;
all)
    tier1
    tier2
    static
    smoke
    bench
    ;;
*)
    echo "usage: scripts/ci.sh [tier1|tier2|static|smoke|bench|all]" >&2
    exit 2
    ;;
esac

echo "CI OK ($mode)"
