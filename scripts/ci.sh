#!/bin/sh
# Two-tier local CI.
#
#   tier 1: build + full test suite (the repo's acceptance gate)
#   tier 2: go vet + race detector over the whole module. Long-running
#           physics cases (multi-minute shear-layer roll-up) skip under
#           -short; everything with concurrency (comm ranks, gs exchange,
#           sem worker pools, instrument counters) still runs under -race.
set -eu
cd "$(dirname "$0")/.."

echo "== tier 1: go build ./... && go test ./... =="
go build ./...
go test ./...

echo "== tier 2: go vet ./... && go test -race -short ./... =="
go vet ./...
go test -race -short ./...

echo "== smoke: benchmark harness (1 iteration per benchmark + artifact check) =="
./scripts/bench.sh quick

echo "== smoke: semflow -trace/-history artifacts validate =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go run ./cmd/semflow -case shearlayer -nel 4 -n 5 -steps 2 -report 1 \
    -trace "$tmp/trace.json" -trace-ranks 4 -history "$tmp/history.jsonl"
go run ./cmd/tracecheck -trace "$tmp/trace.json" -min-ranks 4 \
    -history "$tmp/history.jsonl"

echo "== smoke: distributed stepper (-ranks) artifacts validate =="
go run ./cmd/semflow -case channel -n 5 -ranks 4 -steps 2 -report 1 \
    -trace "$tmp/dist-trace.json" -history "$tmp/dist-history.jsonl"
go run ./cmd/tracecheck -trace "$tmp/dist-trace.json" -min-ranks 4 \
    -history "$tmp/dist-history.jsonl"

echo "CI OK"
