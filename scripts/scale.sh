#!/bin/sh
# Strong-scaling study driver: runs `tables -exp scaling` — the Fig. 6/8
# strong-scaling sweep of the distributed channel stepper at paper-scale
# rank counts — and records the output as the committed SCALING.md
# artifact. The sweep is not part of `tables -exp all`: the P=1024 point
# alone runs ~64M simulated messages and takes minutes.
#
# Usage:
#   scripts/scale.sh         full sweep (K=1024, P in {16,64,256,1024};
#                            ~15 min on one core) -> SCALING.md
#   scripts/scale.sh quick   reduced sweep (K=64, P in {4,16,64}; ~1 min),
#                            printed only, nothing written
set -eu
cd "$(dirname "$0")/.."

mode="${1:-full}"
case "$mode" in
quick)
    go run ./cmd/tables -exp scaling -quick
    ;;
full)
    tmp="$(mktemp)"
    trap 'rm -f "$tmp"' EXIT
    go run ./cmd/tables -exp scaling | tee "$tmp"
    {
        echo "# Strong scaling at paper-scale rank counts"
        echo
        echo "Output of \`scripts/scale.sh\` (\`tables -exp scaling\`): the full"
        echo "distributed Navier-Stokes stepper on the simulated ASCI-Red, one"
        echo "fixed channel mesh, P swept from tens of elements per rank to one"
        echo "element per rank. All times are virtual (simulated-machine) seconds"
        echo "from the per-rank clocks; see DESIGN.md, \"Scaling the simulated"
        echo "machine\"."
        echo
        echo '```'
        cat "$tmp"
        echo '```'
    } > SCALING.md
    echo "wrote SCALING.md"
    ;;
*)
    echo "usage: scripts/scale.sh [full|quick]" >&2
    exit 2
    ;;
esac
