package repro_test

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/flowcases"
	"repro/internal/la"
	"repro/internal/ns"
)

func channelSolver(t testing.TB, workers int) *ns.Solver {
	t.Helper()
	s, _, err := flowcases.Channel(flowcases.ChannelConfig{
		Re: 7500, Alpha: 1, N: 9, Dt: 0.003125, Order: 2, Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func stepN(t testing.TB, s *ns.Solver, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
}

func compareFields(t *testing.T, a, b *ns.Solver, label string) {
	t.Helper()
	for c := 0; c < 2; c++ {
		ua, ub := a.Velocity(c), b.Velocity(c)
		for i := range ua {
			if ua[i] != ub[i] {
				t.Fatalf("%s: velocity[%d][%d] differs: %g vs %g", label, c, i, ub[i], ua[i])
			}
		}
	}
	pa, pb := a.Pressure(), b.Pressure()
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("%s: pressure[%d] differs: %g vs %g", label, i, pb[i], pa[i])
		}
	}
}

// Steady-state Step must be allocation-free at workers=1: all per-step
// make() calls from the seed stepper now draw from solver arenas. Warm-up
// covers the BDF ramp, scratch sizing, and one full projection-basis cycle
// (L=20 plus restart) so the projector's freelist is primed.
func TestChannelStepAllocationFree(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second warm-up")
	}
	s := channelSolver(t, 1)
	stepN(t, s, 24)
	drainPoolFinalizers()
	allocs := testing.AllocsPerRun(4, func() {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state Step allocated %v times per step, want 0", allocs)
	}
}

// A Strict-tuned dispatch table must leave the stepped fields bitwise
// identical to the default path: strict kernels share the default's
// sequential accumulation order, so tuning changes speed, never results
// (the golden check of the Table 1 channel case).
func TestTunedDispatchChannelGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the channel case twice")
	}
	defer la.ResetDispatch()
	la.ResetDispatch()
	ref := channelSolver(t, 1)
	stepN(t, ref, 5)

	la.AutoTune(9, 2)
	if la.Installed() == nil {
		t.Fatal("AutoTune installed no dispatch table")
	}
	tuned := channelSolver(t, 1)
	stepN(t, tuned, 5)
	compareFields(t, ref, tuned, "tuned dispatch")
}

// The element worker pool must not change results: all parallel loops write
// disjoint element blocks with deterministic work assignment. The coarse
// chunk partition depends on the worker count, so W ∈ {2, 4, 8} exercises
// distinct element-to-worker maps (including W=8 > K/2 where trailing
// workers get short or empty chunks). GOMAXPROCS is forced above 1 so the
// pool actually dispatches instead of taking its serial fallback.
func TestWorkersChannelGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the channel case repeatedly")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	ref := channelSolver(t, 1)
	stepN(t, ref, 5)
	for _, w := range []int{2, 4, 8} {
		par := channelSolver(t, w)
		stepN(t, par, 5)
		compareFields(t, ref, par, fmt.Sprintf("workers=%d", w))
	}
}

// The batched multi-RHS viscous path (one Helmholtz sweep and one lockstep
// CG over all velocity components) must be bitwise identical to the
// per-component reference path: the wide MulABt computes each output row as
// the same sequential dot product, and CGMulti's per-column arithmetic is
// exactly CG's.
func TestBatchedViscousGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the channel case twice")
	}
	build := func(unbatched bool) *ns.Solver {
		cfg, init, _, err := flowcases.ChannelSpec(flowcases.ChannelConfig{
			Re: 7500, Alpha: 1, N: 9, Dt: 0.003125, Order: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg.UnbatchedViscous = unbatched
		s, err := ns.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.SetVelocity(init)
		return s
	}
	ref := build(true)
	stepN(t, ref, 5)
	batched := build(false)
	stepN(t, batched, 5)
	compareFields(t, ref, batched, "batched viscous")
	for c := 0; c < 2; c++ {
		if ref.StepCount() != batched.StepCount() {
			t.Fatalf("step counts differ")
		}
	}
}
