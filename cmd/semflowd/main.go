// Command semflowd is the long-running session service: it keeps a table
// of simulation jobs, multiplexes their element-worker pools over a
// bounded scheduler (-max-active sessions step concurrently; the rest
// wait their turn between batches), and deposits every job's artifacts —
// per-step history JSONL, checkpoints, Chrome traces, result summaries —
// in a pluggable store. Submit a flow case over HTTP, poll its status,
// stream its telemetry while it runs, checkpoint it, cancel it, or resume
// a stored session bitwise-exactly where it left off, even across daemon
// restarts:
//
//	semflowd -listen 127.0.0.1:8080 -store ./semflowd-data
//	curl -s localhost:8080/api/sessions -d '{"case":"channel","steps":50}'
//	curl -s localhost:8080/api/sessions/s0001-channel
//	curl -s localhost:8080/api/sessions/s0001-channel/history
//
// Each session carries the same per-run instruments the one-shot semflow
// CLI serves with -listen, mounted per session at
// /api/sessions/{id}/metrics and /progress.
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/session"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8080", "host:port to serve the job API on (port 0 picks a free port)")
	storeDSN := flag.String("store", "./semflowd-data", "artifact store: a directory path, file://path, or mem://")
	maxActive := flag.Int("max-active", 2, "sessions allowed to step concurrently; queued jobs wait between step batches")
	flag.Parse()
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, nil)))

	store, err := session.OpenStore(*storeDSN)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	mgr := session.NewManager(store, *maxActive)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	srv := &http.Server{Handler: session.HTTPHandler(mgr)}
	// The resolved address line is the contract scripts parse to find a
	// port-0 server — keep it stable (scripts/ci.sh smoke depends on it).
	fmt.Printf("semflowd: listening on http://%s (store %s, max-active %d)\n",
		ln.Addr(), *storeDSN, *maxActive)

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		slog.Info("shutting down", "signal", s.String())
	case err := <-done:
		log.Fatalf("serve: %v", err)
	}
	// Stop accepting requests, then cancel every running job; Close waits
	// for each runner to deposit its artifacts (including a resumable
	// checkpoint) and release its worker pools.
	srv.Close()
	mgr.Close()
	slog.Info("all sessions checkpointed and closed")
}
