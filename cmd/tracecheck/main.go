// Command tracecheck validates the artifacts emitted by semflow's -trace
// and -history flags: the Chrome trace must be structurally sound (required
// fields, balanced spans, monotone per-track timestamps, matched flow ids,
// enough rank tracks) and every telemetry line must parse with the
// per-step keys the analysis scripts rely on. With -flows-closed it further
// requires every flow arrow to have both endpoints (the invariant rank
// sampling preserves by construction); with -metrics-url/-progress-url it
// scrapes a live semflow -listen endpoint and validates the exposition.
// It is the CI gate of scripts/ci.sh's smoke stage; exit status 1 means a
// malformed artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/instrument"
)

func main() {
	tracePath := flag.String("trace", "", "Chrome trace-event JSON to validate")
	minRanks := flag.Int("min-ranks", 0, "minimum distinct rank tracks required under the machine pid")
	minFault := flag.Int("min-fault-events", 0, "minimum \"fault\"-category events (straggler/retry/pause spans) the trace must carry")
	flowsClosed := flag.Bool("flows-closed", false, "require every flow arrow to have both its s and f endpoints (holds for full and rank-sampled traces)")
	historyPath := flag.String("history", "", "per-step telemetry JSONL to validate")
	metricsURL := flag.String("metrics-url", "", "scrape this /metrics URL and validate the Prometheus text exposition")
	progressURL := flag.String("progress-url", "", "scrape this /progress URL and validate the JSON snapshot")
	flag.Parse()
	if *tracePath == "" && *historyPath == "" && *metricsURL == "" && *progressURL == "" {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-trace file.json -min-ranks N -min-fault-events N -flows-closed] [-history file.jsonl] [-metrics-url URL] [-progress-url URL]")
		os.Exit(2)
	}
	ok := true
	if *tracePath != "" {
		data, err := os.ReadFile(*tracePath)
		if err == nil {
			err = instrument.ValidateChromeTrace(data, *minRanks)
		}
		if err == nil && *flowsClosed {
			err = instrument.ValidateFlowClosure(data)
		}
		nfault := 0
		if err == nil && *minFault > 0 {
			nfault, err = instrument.CountCategory(data, "fault")
			if err == nil && nfault < *minFault {
				err = fmt.Errorf("%d fault-category events, want >= %d", nfault, *minFault)
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", *tracePath, err)
			ok = false
		} else if *minFault > 0 {
			fmt.Printf("%s: valid Chrome trace (>= %d rank tracks, %d fault events)\n",
				*tracePath, *minRanks, nfault)
		} else {
			fmt.Printf("%s: valid Chrome trace (>= %d rank tracks)\n", *tracePath, *minRanks)
		}
	}
	if *historyPath != "" {
		if err := checkHistory(*historyPath); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", *historyPath, err)
			ok = false
		}
	}
	if *metricsURL != "" {
		if err := checkMetrics(*metricsURL); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", *metricsURL, err)
			ok = false
		}
	}
	if *progressURL != "" {
		if err := checkProgress(*progressURL); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", *progressURL, err)
			ok = false
		}
	}
	if !ok {
		os.Exit(1)
	}
}

// scrape fetches a URL with a short timeout.
func scrape(url string) ([]byte, string, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	return body, resp.Header.Get("Content-Type"), err
}

// checkMetrics validates a live /metrics scrape: Prometheus text exposition
// content type, and every non-comment line of the form `name{labels} value`
// with at least one semflow_ family present.
func checkMetrics(url string) error {
	body, ctype, err := scrape(url)
	if err != nil {
		return err
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		return fmt.Errorf("content type %q, want text/plain exposition", ctype)
	}
	families, lines := 0, 0
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lines++
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			return fmt.Errorf("malformed exposition line %q", line)
		}
		if strings.HasPrefix(line, "semflow_") {
			families++
		}
	}
	if lines == 0 || families == 0 {
		return fmt.Errorf("no semflow_ samples in %d exposition lines", lines)
	}
	fmt.Printf("%s: %d samples (%d semflow_ family lines)\n", url, lines, families)
	return nil
}

// checkProgress validates a live /progress scrape: a JSON object carrying
// the step counter.
func checkProgress(url string) error {
	body, ctype, err := scrape(url)
	if err != nil {
		return err
	}
	if !strings.HasPrefix(ctype, "application/json") {
		return fmt.Errorf("content type %q, want application/json", ctype)
	}
	var snap map[string]any
	if err := json.Unmarshal(body, &snap); err != nil {
		return fmt.Errorf("not JSON: %w", err)
	}
	for _, key := range []string{"step", "time", "virtual_seconds"} {
		if _, okKey := snap[key]; !okKey {
			return fmt.Errorf("missing key %q", key)
		}
	}
	fmt.Printf("%s: live progress snapshot at step %v\n", url, snap["step"])
	return nil
}

// checkHistory verifies every JSONL line parses and carries the per-step
// keys, including the per-iteration pressure residual history.
func checkHistory(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	required := []string{"step", "time", "cfl", "pressure_iters",
		"pressure_converged", "pressure_res_hist", "max_divergence"}
	lines := 0
	for sc.Scan() {
		lines++
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return fmt.Errorf("line %d: %w", lines, err)
		}
		for _, key := range required {
			if _, ok := rec[key]; !ok {
				return fmt.Errorf("line %d: missing key %q", lines, key)
			}
		}
		hist, ok := rec["pressure_res_hist"].([]any)
		if !ok || len(hist) == 0 {
			return fmt.Errorf("line %d: pressure_res_hist empty or not an array", lines)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if lines == 0 {
		return fmt.Errorf("no telemetry records")
	}
	fmt.Printf("%s: %d valid telemetry records\n", path, lines)
	return nil
}
