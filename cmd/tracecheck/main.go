// Command tracecheck validates the artifacts emitted by semflow's -trace
// and -history flags: the Chrome trace must be structurally sound (required
// fields, balanced spans, monotone per-track timestamps, matched flow ids,
// enough rank tracks) and every telemetry line must parse with the
// per-step keys the analysis scripts rely on. It is the CI gate of
// scripts/ci.sh's smoke stage; exit status 1 means a malformed artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/instrument"
)

func main() {
	tracePath := flag.String("trace", "", "Chrome trace-event JSON to validate")
	minRanks := flag.Int("min-ranks", 0, "minimum distinct rank tracks required under the machine pid")
	minFault := flag.Int("min-fault-events", 0, "minimum \"fault\"-category events (straggler/retry/pause spans) the trace must carry")
	historyPath := flag.String("history", "", "per-step telemetry JSONL to validate")
	flag.Parse()
	if *tracePath == "" && *historyPath == "" {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-trace file.json -min-ranks N -min-fault-events N] [-history file.jsonl]")
		os.Exit(2)
	}
	ok := true
	if *tracePath != "" {
		data, err := os.ReadFile(*tracePath)
		if err == nil {
			err = instrument.ValidateChromeTrace(data, *minRanks)
		}
		nfault := 0
		if err == nil && *minFault > 0 {
			nfault, err = instrument.CountCategory(data, "fault")
			if err == nil && nfault < *minFault {
				err = fmt.Errorf("%d fault-category events, want >= %d", nfault, *minFault)
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", *tracePath, err)
			ok = false
		} else if *minFault > 0 {
			fmt.Printf("%s: valid Chrome trace (>= %d rank tracks, %d fault events)\n",
				*tracePath, *minRanks, nfault)
		} else {
			fmt.Printf("%s: valid Chrome trace (>= %d rank tracks)\n", *tracePath, *minRanks)
		}
	}
	if *historyPath != "" {
		if err := checkHistory(*historyPath); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", *historyPath, err)
			ok = false
		}
	}
	if !ok {
		os.Exit(1)
	}
}

// checkHistory verifies every JSONL line parses and carries the per-step
// keys, including the per-iteration pressure residual history.
func checkHistory(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	required := []string{"step", "time", "cfl", "pressure_iters",
		"pressure_converged", "pressure_res_hist", "max_divergence"}
	lines := 0
	for sc.Scan() {
		lines++
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return fmt.Errorf("line %d: %w", lines, err)
		}
		for _, key := range required {
			if _, ok := rec[key]; !ok {
				return fmt.Errorf("line %d: missing key %q", lines, key)
			}
		}
		hist, ok := rec["pressure_res_hist"].([]any)
		if !ok || len(hist) == 0 {
			return fmt.Errorf("line %d: pressure_res_hist empty or not an array", lines)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if lines == 0 {
		return fmt.Errorf("no telemetry records")
	}
	fmt.Printf("%s: %d valid telemetry records\n", path, lines)
	return nil
}
