// Command tracepath walks the virtual-clock critical path of a trace
// recorded by semflow -trace: the chain of local work and gating message
// waits that determines the modeled completion time. It attributes the
// path to category (allreduce, gs, send, coarse, schwarz, fault, compute)
// and stepper phase per step and per rank, turning a multi-gigabyte
// P=1024 span soup into the one question the scaling study asks — what is
// the slow chain made of?
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/instrument"
)

func main() {
	tracePath := flag.String("trace", "", "Chrome trace-event JSON to analyze")
	jsonOut := flag.Bool("json", false, "emit the full analysis as JSON instead of text")
	segments := flag.Bool("segments", false, "include the raw path segments in -json output")
	top := flag.Int("top", 8, "ranks to list in the per-rank table")
	flag.Parse()
	if *tracePath == "" && flag.NArg() == 1 {
		*tracePath = flag.Arg(0)
	}
	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "usage: tracepath [-json] [-segments] [-top N] -trace file.json")
		os.Exit(2)
	}
	data, err := os.ReadFile(*tracePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracepath: %v\n", err)
		os.Exit(1)
	}
	cp, err := instrument.AnalyzeCriticalPath(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracepath: %s: %v\n", *tracePath, err)
		os.Exit(1)
	}
	if *jsonOut {
		if !*segments {
			cp.Segments = nil
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cp); err != nil {
			fmt.Fprintf(os.Stderr, "tracepath: %v\n", err)
			os.Exit(1)
		}
		return
	}
	report(cp, *top)
}

// report prints the text breakdown.
func report(cp *instrument.CritPath, top int) {
	fmt.Printf("critical path: %.6g s modeled, %d rank tracks, %d gating receives, ends on rank %d\n\n",
		cp.TotalSeconds, cp.Ranks, cp.Hops, cp.EndRank)

	fmt.Println("by category:")
	printShares(cp.ByCategory, cp.TotalSeconds)
	fmt.Println("\nby phase:")
	printShares(cp.ByPhase, cp.TotalSeconds)

	if len(cp.Steps) > 0 {
		fmt.Println("\nper step:")
		fmt.Printf("  %6s %12s  %s\n", "step", "seconds", "dominant")
		for _, st := range cp.Steps {
			cat, catT := maxEntry(st.ByCategory)
			ph, _ := maxEntry(st.ByPhase)
			fmt.Printf("  %6d %12.6g  %s %.0f%% (phase %s)\n",
				st.Step, st.Seconds, cat, 100*catT/st.Seconds, ph)
		}
	}

	n := top
	if n > len(cp.PerRank) {
		n = len(cp.PerRank)
	}
	if n > 0 {
		fmt.Printf("\ntop %d ranks by on-path time:\n", n)
		fmt.Printf("  %6s %12s %8s %12s\n", "rank", "on-path", "share", "slack")
		for _, pr := range cp.PerRank[:n] {
			fmt.Printf("  %6d %12.6g %7.1f%% %12.6g\n",
				pr.Rank, pr.OnPath, 100*pr.OnPath/cp.TotalSeconds, pr.Slack)
		}
	}
}

// printShares prints a map as a table sorted by descending share.
func printShares(m map[string]float64, total float64) {
	type kv struct {
		k string
		v float64
	}
	rows := make([]kv, 0, len(m))
	for k, v := range m {
		rows = append(rows, kv{k, v})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].v > rows[j].v })
	for _, r := range rows {
		fmt.Printf("  %-16s %12.6g s %7.1f%%\n", r.k, r.v, 100*r.v/total)
	}
}

// maxEntry returns the largest entry of a share map.
func maxEntry(m map[string]float64) (string, float64) {
	best, bestV := "-", 0.0
	for k, v := range m {
		if v > bestV {
			best, bestV = k, v
		}
	}
	return best, bestV
}
