// Command tables regenerates every table and figure of the paper's
// evaluation (Tufo & Fischer, SC'99). Each experiment prints the same rows
// or series the paper reports; see EXPERIMENTS.md for the mapping and the
// expected shape agreements.
//
// Usage:
//
//	tables -exp table1 [-quick]
//	tables -exp table2|table3|table4|fig3|fig4|fig6|fig8|all
//
// -quick shrinks resolutions/step counts so every experiment finishes in
// seconds to minutes; the full settings match the paper where feasible.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, table2, table3, table4, fig3, fig4, fig6, fig8, faults, scaling or all")
	quick := flag.Bool("quick", false, "reduced resolutions for fast runs")
	flag.Parse()

	experiments := map[string]func(bool){
		"table1":  table1,
		"table2":  table2,
		"table3":  table3,
		"table4":  table4,
		"fig3":    fig3,
		"fig4":    fig4,
		"fig6":    fig6,
		"fig8":    fig8,
		"faults":  faultsExp,
		"scaling": scaling,
		"precond": precondExp,
	}
	if *exp == "all" {
		for _, name := range []string{"table1", "table2", "table3", "table4", "fig3", "fig4", "fig6", "fig8", "faults"} {
			fmt.Printf("\n================ %s ================\n", name)
			experiments[name](*quick)
		}
		return
	}
	fn, ok := experiments[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	fn(*quick)
}
