package main

import (
	"fmt"
	"time"

	"repro/internal/mesh"
	"repro/internal/schwarz"
	"repro/internal/sem"
	"repro/internal/solver"
)

// table2 reproduces the additive-Schwarz comparison on the cylinder
// problem: pressure-like (pure Neumann) Poisson solves on the high-aspect
// O-grid at N=7, eps=1e-5, over the quad-refinement family, comparing FDM
// local solves, FEM local solves with overlap N_o ∈ {0,1,3}, and no coarse
// grid.
func table2(quick bool) {
	rounds := 3
	if quick {
		rounds = 2
	}
	fmt.Println("Table 2: additive Schwarz for the cylinder problem, N=7, eps=1e-5")
	fmt.Printf("%6s | %5s %7s | %5s %7s | %5s %7s | %5s %7s | %5s %7s\n",
		"K", "FDM", "cpu", "No=0", "cpu", "No=1", "cpu", "No=3", "cpu", "A0=0", "cpu")

	spec := mesh.CylinderOGrid(mesh.CylinderOGridSpec{
		NTheta: 16, NLayer: 6, R: 0.5, H: 6, WallRatio: 12,
	})
	for round := 0; round < rounds; round++ {
		m, err := mesh.Discretize(spec, 7)
		if err != nil {
			fmt.Println("mesh error:", err)
			return
		}
		d := sem.New(m, nil, 1)
		n := m.K * m.Np
		one := make([]float64, n)
		for i := range one {
			one[i] = 1
		}
		vol := d.Integrate(one)
		deflate := func(u []float64) {
			mn := d.Integrate(u) / vol
			for i := range u {
				u[i] -= mn
			}
		}
		// Start-up-flow-like right-hand side: the divergence source of an
		// impulsively started uniform stream around the cylinder.
		b := make([]float64, n)
		for i := range b {
			b[i] = m.B[i] * m.X[i]
		}
		d.Assemble(b)
		deflate(b)
		apply := func(out, in []float64) { d.Laplacian(out, in); deflate(out) }

		solveWith := func(opt schwarz.Options) (int, float64) {
			opt.Neumann = true
			p, err := schwarz.New(d, opt)
			if err != nil {
				fmt.Println("precond error:", err)
				return -1, 0
			}
			pre := func(out, in []float64) { p.Apply(out, in); deflate(out) }
			x := make([]float64, n)
			t0 := time.Now()
			st := solver.CG(apply, d.Dot, x, b, solver.Options{
				Tol: 1e-5, Relative: true, MaxIter: 5000, Precond: pre,
			})
			return st.Iterations, time.Since(t0).Seconds()
		}
		fdmIt, fdmT := solveWith(schwarz.Options{Method: schwarz.FDM, UseCoarse: true})
		n0It, n0T := solveWith(schwarz.Options{Method: schwarz.FEM, Overlap: 0, UseCoarse: true})
		n1It, n1T := solveWith(schwarz.Options{Method: schwarz.FEM, Overlap: 1, UseCoarse: true})
		n3It, n3T := solveWith(schwarz.Options{Method: schwarz.FEM, Overlap: 3, UseCoarse: true})
		ncIt, ncT := solveWith(schwarz.Options{Method: schwarz.FDM, UseCoarse: false})
		fmt.Printf("%6d | %5d %7.2f | %5d %7.2f | %5d %7.2f | %5d %7.2f | %5d %7.2f\n",
			m.K, fdmIt, fdmT, n0It, n0T, n1It, n1T, n3It, n3T, ncIt, ncT)
		if round < rounds-1 {
			spec, err = mesh.QuadRefine(spec)
			if err != nil {
				fmt.Println("refine error:", err)
				return
			}
		}
	}
	fmt.Println("\nExpected shape (paper): FDM iterations ~ FEM N_o=1 but cheaper per")
	fmt.Println("iteration; N_o=0 markedly worse; dropping the coarse grid costs a")
	fmt.Println("large multiple that grows under refinement.")
}
