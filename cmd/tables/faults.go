package main

// faults.go adds a degraded-machine experiment beyond the paper's tables:
// the same distributed channel stepper runs twice — once on the flawless
// ASCI-Red-like machine and once under a seeded fault plan (a 3x straggler
// on one rank plus lossy links recovered by bounded retry) — and the
// per-step modeled times are printed side by side. The slowdown column
// shows where the degradation lands: every step pays for the straggler
// through its barriers and allreduces, and drops add retry timeouts on the
// lossy links. The run still completes with bitwise-identical solver
// statistics, because faults only move virtual time, never values.

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/instrument"
	"repro/internal/parrun"
)

func faultsExp(quick bool) {
	cfg, init, err := distChannelSpec()
	if err != nil {
		fmt.Println("channel spec error:", err)
		return
	}
	p := 4
	steps := 5
	if quick {
		steps = 3
	}
	plan := &fault.Plan{
		Seed:       42,
		Stragglers: []fault.Straggler{{Rank: 1, Factor: 3}},
		Drops:      []fault.Drop{{From: -1, To: -1, Prob: 0.02}},
	}
	clean, _, err := distChannelRun(cfg, init, p, steps)
	if err != nil {
		fmt.Println("fault-free run error:", err)
		return
	}
	tr := instrument.NewTracer()
	tr.DisableWallClock()
	degraded, err := parrun.NavierStokes(cfg, parrun.NSConfig{
		P: p, Steps: steps, Init: init, Tracer: tr, Faults: plan,
	})
	if err != nil {
		fmt.Println("degraded run error:", err)
		return
	}
	fmt.Printf("\nDegraded-machine channel stepper (P=%d, %d steps; seed %d plan:\n",
		p, steps, plan.Seed)
	fmt.Println("rank 1 computes 3x slower, every link drops 2% of messages):")
	fmt.Printf("%6s %16s %16s %10s\n", "step", "clean (s)", "degraded (s)", "slowdown")
	for s := range clean.StepVirtual {
		ratio := 0.0
		if clean.StepVirtual[s] > 0 {
			ratio = degraded.StepVirtual[s] / clean.StepVirtual[s]
		}
		fmt.Printf("%6d %16.3e %16.3e %10.2f\n",
			s+1, clean.StepVirtual[s], degraded.StepVirtual[s], ratio)
	}
	fmt.Printf("total %16.3e %16.3e %10.2f\n",
		clean.VirtualSeconds, degraded.VirtualSeconds,
		degraded.VirtualSeconds/clean.VirtualSeconds)
	fmt.Printf("recovery: drops=%d retries=%d stall=%.3es (summed over ranks)\n",
		degraded.Drops, degraded.Retries, degraded.FaultStallSec)
	nfault := 0
	for _, ev := range tr.Events() {
		if ev.Cat == "fault" {
			nfault++
		}
	}
	fmt.Printf("trace: %d fault-category spans on the degraded machine's timeline\n", nfault)
	same := len(clean.StepStats) == len(degraded.StepStats)
	for s := 0; same && s < len(clean.StepStats); s++ {
		a, b := clean.StepStats[s], degraded.StepStats[s]
		same = a.PressureIters == b.PressureIters && a.PressureResFinal == b.PressureResFinal
	}
	fmt.Printf("solver statistics identical across the two machines: %v\n", same)
	fmt.Println("(faults move virtual time only — values, iteration counts, and")
	fmt.Println(" residuals are untouched, so the comparison isolates the machine)")
}
