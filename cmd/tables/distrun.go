package main

import (
	"fmt"
	"math/rand"

	"repro/internal/coarse"
	"repro/internal/comm"
	"repro/internal/flowcases"
	"repro/internal/instrument"
	"repro/internal/la"
	"repro/internal/ns"
	"repro/internal/parrun"
)

// distChannelSpec builds the Table-1 channel problem used by the
// measured-from-distributed-run columns of Figs. 6 and 8: Re 7500, K=15,
// N=5 — small enough that a full SPMD time advancement on the simulated
// machine finishes in seconds, large enough that the Schwarz+XXT pressure
// solve exercises every communication phase.
func distChannelSpec() (ns.Config, flowcases.InitFunc, error) {
	cfg, init, _, err := flowcases.ChannelSpec(flowcases.ChannelConfig{
		Re: 7500, Alpha: 1, N: 5, Dt: 0.003125, Order: 2,
	})
	return cfg, init, err
}

// distChannelRun advances the channel for a few steps as an SPMD program on
// the simulated machine with a virtual-clock tracer attached and returns
// the run result together with its trace.
func distChannelRun(cfg ns.Config, init flowcases.InitFunc, p, steps int) (*parrun.NSResult, *instrument.Tracer, error) {
	tr := instrument.NewTracer()
	tr.DisableWallClock()
	res, err := parrun.NavierStokes(cfg, parrun.NSConfig{
		P: p, Steps: steps, Init: init, Tracer: tr,
	})
	return res, tr, err
}

// fig6Distributed adds the measured-from-distributed-run column to Fig. 6:
// instead of a standalone Poisson coarse problem, it takes the coarse
// operator actually embedded in the channel's Schwarz preconditioner, runs
// the full distributed Navier–Stokes stepper, and averages the rank-0
// "coarse/xxt.solve" virtual-clock spans over every pressure iteration of
// the run. The same operator is then solved standalone on an otherwise idle
// machine; the ratio shows how closely the in-flow coarse solve tracks the
// isolated one (it should be ~1: the XXT schedule has no data-dependent
// waits, so embedding it in the stepper adds nothing to the span itself).
func fig6Distributed(quick bool) {
	cfg, init, err := distChannelSpec()
	if err != nil {
		fmt.Println("channel spec error:", err)
		return
	}
	ps := []int{2, 4, 8}
	steps := 3
	if quick {
		ps = []int{2, 4}
		steps = 2
	}
	// The standalone reference needs the same coarse operator the
	// distributed run factors: build one serial solver and lift it out of
	// the pressure preconditioner.
	scfg := cfg
	scfg.Workers = 1
	sv, err := ns.New(scfg)
	if err != nil {
		fmt.Println("solver error:", err)
		return
	}
	pre := sv.PressurePre()
	if pre == nil {
		fmt.Println("channel solver has no pressure preconditioner; skipping distributed rows")
		return
	}
	a := pre.CoarseOperator()
	n := a.Rows
	rng := rand.New(rand.NewSource(7))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	fmt.Printf("\nFig 6 (measured): coarse solves inside the distributed channel stepper\n")
	fmt.Printf("(n=%d coarse dofs, %d steps; in-run = mean rank-0 coarse/xxt.solve span)\n", n, steps)
	fmt.Printf("%6s %8s %14s %14s %8s\n", "P", "solves", "in-run (s)", "standalone (s)", "ratio")
	for _, p := range ps {
		res, tr, err := distChannelRun(cfg, init, p, steps)
		if err != nil {
			fmt.Println("distributed run error:", err)
			return
		}
		var sum float64
		cnt := 0
		for _, ev := range tr.Events() {
			if ev.Pid != instrument.PidMachine || ev.Tid != 0 ||
				ev.Ph != "X" || ev.Name != "coarse/xxt.solve" {
				continue
			}
			cnt++
			sum += ev.Dur / 1e6
		}
		if cnt == 0 {
			fmt.Printf("%6d %8d %14s %14s %8s\n", res.P, 0, "-", "-", "-")
			continue
		}
		mean := sum / float64(cnt)
		xxt, err := coarse.NewXXT(a, 0, 0, res.P)
		if err != nil {
			fmt.Println("XXT error:", err)
			return
		}
		inv := la.InvPerm(xxt.Perm)
		bp := make([]float64, n)
		for old := 0; old < n; old++ {
			bp[inv[old]] = b[old]
		}
		ranks := comm.NewNetwork(comm.ASCIRed(res.P)).Run(func(r *comm.Rank) {
			xxt.SolveOn(r, bp[xxt.BlockLo[r.ID]:xxt.BlockHi[r.ID]])
		})
		tAlone := comm.MaxTime(ranks)
		ratio := 0.0
		if tAlone > 0 {
			ratio = mean / tAlone
		}
		fmt.Printf("%6d %8d %14.3e %14.3e %8.2f\n", res.P, cnt, mean, tAlone, ratio)
	}
	fmt.Println("(every pressure CG iteration of every step runs one coarse solve;")
	fmt.Println(" in-run spans come from the stepper's own virtual-clock trace)")
}

// fig8Distributed adds the measured-from-distributed-run columns to Fig. 8:
// the full channel stepper runs as an SPMD program on the simulated
// machine, and the rank-0 allreduce spans from its trace — every CG inner
// product, norm, and CFL reduction of the run — are summed and compared
// against the closed-form log₂P·(α + 8·words·β) recursive-doubling model,
// exactly as fig8TraceCheck does for the isolated coarse solve. The ratio
// measures how much skew-induced wait the executed schedule adds on top of
// the zero-skew model once the collectives are embedded in a real time
// loop rather than a lone solve.
func fig8Distributed(quick bool) {
	cfg, init, err := distChannelSpec()
	if err != nil {
		fmt.Println("channel spec error:", err)
		return
	}
	ps := []int{2, 4, 8}
	steps := 5
	if quick {
		ps = []int{2, 4}
		steps = 2
	}
	fmt.Printf("\nModel vs executed trace, distributed channel stepper (%d steps,\n", steps)
	fmt.Println("rank-0 allreduce time across all collectives of the run):")
	fmt.Printf("%6s %12s %8s %14s %14s %8s\n",
		"P", "s/step", "colls", "modeled (s)", "traced (s)", "ratio")
	for _, p := range ps {
		res, tr, err := distChannelRun(cfg, init, p, steps)
		if err != nil {
			fmt.Println("distributed run error:", err)
			return
		}
		m := comm.ASCIRed(res.P)
		rounds := 0
		for d := 1; d < res.P; d <<= 1 {
			rounds++
		}
		var traced, modeled float64
		colls := 0
		for _, ev := range tr.Events() {
			if ev.Pid != instrument.PidMachine || ev.Tid != 0 ||
				ev.Ph != "X" || ev.Name != "allreduce" {
				continue
			}
			colls++
			traced += ev.Dur / 1e6
			words, _ := ev.Args["words"].(int)
			modeled += float64(rounds) * (m.Latency + 8*float64(words)*m.ByteSec)
		}
		ratio := 0.0
		if modeled > 0 {
			ratio = traced / modeled
		}
		fmt.Printf("%6d %12.3e %8d %14.3e %14.3e %8.2f\n",
			res.P, res.VirtualSeconds/float64(res.Steps), colls, modeled, traced, ratio)
	}
	fmt.Println("(modeled: log2(P) recursive-doubling rounds at alpha + 8*words*beta")
	fmt.Println(" each; traced spans additionally see the wait for the last-arriving")
	fmt.Println(" rank, so ratio > 1 quantifies load-imbalance skew in the stepper)")
}
