package main

import (
	"fmt"
	"math/rand"

	"repro/internal/coarse"
	"repro/internal/comm"
	"repro/internal/instrument"
	"repro/internal/la"
	"repro/internal/perfmodel"
)

// fig8 reproduces the first-26-steps study: solution time per step (left
// panel, modeled at P=2048 dual-processor perf) and pressure / x-Helmholtz
// iterations per step (right panel, measured on the reduced hairpin run).
func fig8(quick bool) {
	fmt.Println("Fig 8: first 26 time steps, (K,N)=(8168,15), P=2048 dual perf (modeled)")
	press, helm, sub, _ := measuredHistory(26, quick)
	run := perfmodel.HairpinRun(press, helm, sub)
	est := run.Predict(perfmodel.ASCIRedPerf(), 2048, true)
	fmt.Printf("%6s %14s %16s %18s\n", "step", "time/step (s)", "pressure iters", "helmholtz iters")
	for i := 0; i < len(press); i++ {
		fmt.Printf("%6d %14.2f %16d %18d\n", i+1, est.TimePerStep[i], press[i], helm[i])
	}
	var last5 float64
	for i := len(press) - 5; i < len(press); i++ {
		last5 += est.TimePerStep[i]
	}
	fmt.Printf("\naverage time per step, last five steps: %.2f s (paper: 17.5 s)\n", last5/5)
	fmt.Println("Expected shape (paper): pressure iterations fall sharply over the")
	fmt.Println("initial transient as the projection space fills; time per step")
	fmt.Println("follows the iteration count; Helmholtz iterations stay flat.")
	fig8TraceCheck(quick)
	fig8Distributed(quick)
}

// fig8TraceCheck cross-checks the closed-form α–β performance model against
// the executed communication: for the 63² coarse problem it runs the XXT
// solve on the simulated machine with a tracer attached, sums the rank-0
// allreduce span durations from the trace, and compares them with the
// model's log₂P·(α + 8·words·β) recursive-doubling cost per collective. The
// two agree when the executed schedule has no load-imbalance wait inside the
// collectives; the traced/modeled ratio quantifies how much the model's
// zero-skew assumption undercounts.
func fig8TraceCheck(quick bool) {
	const nx, ny = 63, 63
	n := nx * ny
	a := coarse.Poisson5pt(nx, ny)
	ps := []int{16, 64, 256}
	if quick {
		ps = []int{16, 64}
	}
	fmt.Printf("\nModel vs executed trace, n=%d XXT coarse solve (rank-0 allreduce time):\n", n)
	fmt.Printf("%6s %6s %14s %14s %8s %12s\n",
		"P", "colls", "modeled (s)", "traced (s)", "ratio", "solve (s)")
	for _, p := range ps {
		xxt, err := coarse.NewXXT(a, nx, ny, p)
		if err != nil {
			fmt.Println("XXT error:", err)
			return
		}
		rng := rand.New(rand.NewSource(11))
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		inv := la.InvPerm(xxt.Perm)
		bp := make([]float64, n)
		for old := 0; old < n; old++ {
			bp[inv[old]] = b[old]
		}
		tr := instrument.NewTracer()
		tr.DisableWallClock()
		m := comm.ASCIRed(p)
		net := comm.NewNetwork(m)
		net.AttachTracer(tr)
		ranks := net.Run(func(r *comm.Rank) {
			xxt.SolveOn(r, bp[xxt.BlockLo[r.ID]:xxt.BlockHi[r.ID]])
		})
		tSolve := comm.MaxTime(ranks)
		rounds := 0
		for d := 1; d < p; d <<= 1 {
			rounds++
		}
		var traced, modeled float64
		colls := 0
		for _, ev := range tr.Events() {
			if ev.Pid != instrument.PidMachine || ev.Tid != 0 ||
				ev.Ph != "X" || ev.Name != "allreduce" {
				continue
			}
			colls++
			traced += ev.Dur / 1e6
			words, _ := ev.Args["words"].(int)
			modeled += float64(rounds) * (m.Latency + 8*float64(words)*m.ByteSec)
		}
		ratio := 0.0
		if modeled > 0 {
			ratio = traced / modeled
		}
		fmt.Printf("%6d %6d %14.3e %14.3e %8.2f %12.3e\n",
			p, colls, modeled, traced, ratio, tSolve)
	}
	fmt.Println("(modeled: log2(P) recursive-doubling rounds at alpha + 8*words*beta")
	fmt.Println(" each; traced: executed allreduce spans on the rank-0 virtual clock,")
	fmt.Println(" which additionally see skew-induced waits)")
}
