package main

import (
	"fmt"

	"repro/internal/perfmodel"
)

// fig8 reproduces the first-26-steps study: solution time per step (left
// panel, modeled at P=2048 dual-processor perf) and pressure / x-Helmholtz
// iterations per step (right panel, measured on the reduced hairpin run).
func fig8(quick bool) {
	fmt.Println("Fig 8: first 26 time steps, (K,N)=(8168,15), P=2048 dual perf (modeled)")
	press, helm, sub, _ := measuredHistory(26, quick)
	run := perfmodel.HairpinRun(press, helm, sub)
	est := run.Predict(perfmodel.ASCIRedPerf(), 2048, true)
	fmt.Printf("%6s %14s %16s %18s\n", "step", "time/step (s)", "pressure iters", "helmholtz iters")
	for i := 0; i < len(press); i++ {
		fmt.Printf("%6d %14.2f %16d %18d\n", i+1, est.TimePerStep[i], press[i], helm[i])
	}
	var last5 float64
	for i := len(press) - 5; i < len(press); i++ {
		last5 += est.TimePerStep[i]
	}
	fmt.Printf("\naverage time per step, last five steps: %.2f s (paper: 17.5 s)\n", last5/5)
	fmt.Println("Expected shape (paper): pressure iterations fall sharply over the")
	fmt.Println("initial transient as the projection space fills; time per step")
	fmt.Println("follows the iteration count; Helmholtz iterations stay flat.")
}
