package main

// precond: the runtime preconditioner-selection experiment (ROADMAP item 4,
// after Phillips et al.). Runs the Table-1 channel for a few steps under
// each pressure preconditioner variant and prints per-variant iteration
// counts plus the trial-tournament outcome of -precond auto — the solver-
// level analogue of the matmul autotune table.

import (
	"fmt"

	"repro/internal/flowcases"
	"repro/internal/ns"
	"repro/internal/solver"
)

func precondExp(quick bool) {
	n, steps := 9, 6
	if quick {
		n, steps = 5, 3
	}
	fmt.Printf("Channel (Table 1 case), N=%d, %d steps: pressure CG iterations per variant\n\n", n, steps)
	fmt.Printf("%-12s %-10s %-14s %-10s\n", "precond", "iters", "per-step", "converged")
	for _, name := range ns.PrecondNames() {
		s, _, err := flowcases.Channel(flowcases.ChannelConfig{
			Re: 7500, Alpha: 1, N: n, Dt: 0.003125, Order: 2, Precond: name,
		})
		if err != nil {
			fmt.Printf("%-12s build failed: %v\n", name, err)
			continue
		}
		total, conv := 0, true
		for i := 0; i < steps; i++ {
			st, err := s.Step()
			if err != nil {
				fmt.Printf("%-12s step failed: %v\n", name, err)
				conv = false
				break
			}
			total += st.PressureIters
			conv = conv && st.PressureConverged
		}
		fmt.Printf("%-12s %-10d %-14.1f %-10v\n", name, total, float64(total)/float64(steps), conv)
		s.Close()
	}

	solver.ResetPrecondTable()
	s, _, err := flowcases.Channel(flowcases.ChannelConfig{
		Re: 7500, Alpha: 1, N: n, Dt: 0.003125, Order: 2, Precond: ns.PrecondAuto,
	})
	if err != nil {
		fmt.Printf("\nauto build failed: %v\n", err)
		return
	}
	defer s.Close()
	sel := s.PrecondSelection()
	fmt.Printf("\n-precond auto selected %q (source %s)\n", sel.Name, sel.Source)
	for _, tr := range sel.Trials {
		fmt.Printf("  trial %-12s %4d iters  converged=%-5v  %.3fs\n",
			tr.Name, tr.Iterations, tr.Converged, tr.Seconds)
	}
}
