package main

// scaling.go is the strong-scaling study behind the paper's Figs. 6/8
// narrative at real rank counts: one fixed channel mesh, the full
// distributed Navier–Stokes stepper, and a P sweep from work-dominated
// (tens of elements per rank) to latency-dominated (one element per rank,
// where the coarse-solve/allreduce latency term ~log2(P)*alpha overtakes
// the shrinking local work). The per-phase virtual-time breakdown and the
// parallel-efficiency column come straight from the simulated machine's
// clocks; scripts/scale.sh records the output as the committed SCALING.md
// artifact.

import (
	"fmt"

	"repro/internal/flowcases"
	"repro/internal/instrument"
	"repro/internal/parrun"
)

// scaling runs the strong-scaling sweep. Full mode: K = 64x16 = 1024
// elements at N = 5 (one element per rank at P = 1024, the paper's
// terascale regime shrunk to one box), P in {16, 64, 256, 1024}. Quick
// mode: K = 16x4 = 64 at N = 4, P in {4, 16, 64}.
func scaling(quick bool) {
	kx, ky, n := 64, 16, 5
	ps := []int{16, 64, 256, 1024}
	steps := 2
	if quick {
		kx, ky, n = 16, 4, 4
		ps = []int{4, 16, 64}
	}
	cfg, init, _, err := flowcases.ChannelSpec(flowcases.ChannelConfig{
		Re: 7500, Alpha: 1, N: n, Dt: 0.003125, Order: 2, KX: kx, KY: ky,
	})
	if err != nil {
		fmt.Println("channel spec error:", err)
		return
	}
	k := kx * ky
	fmt.Printf("\nStrong scaling: distributed channel stepper on the simulated ASCI-Red\n")
	fmt.Printf("(fixed mesh K=%dx%d=%d, N=%d, %d steps; virtual seconds per step,\n", kx, ky, k, n, steps)
	fmt.Printf(" phase and communication columns are per-rank means)\n\n")
	fmt.Printf("%6s %6s %8s %10s | %9s %9s %9s %9s | %9s %9s %9s | %6s\n",
		"P", "E/rank", "p-iters", "s/step",
		"convect", "viscous", "pressure", "filter",
		"allreduce", "gs", "coarse", "eff")

	var basePT float64 // T(P0)*P0, the efficiency reference
	for pi, p := range ps {
		reg := instrument.New()
		res, err := parrun.NavierStokes(cfg, parrun.NSConfig{
			P: p, Steps: steps, Init: init, Registry: reg,
		})
		if err != nil {
			fmt.Println("distributed run error:", err)
			return
		}
		fs := float64(res.Steps - res.FirstStep)
		fp := float64(res.P)
		var sPerStep float64
		for _, v := range res.StepVirtual {
			sPerStep += v
		}
		sPerStep /= fs
		// Phase means are already per-rank; scale to per-step.
		var ph [4]float64
		for i, v := range res.PhaseVirtual {
			ph[i] = v / fs
		}
		// Communication detail: virtual timers are summed over ranks and
		// calls; normalize to per-rank per-step. The coarse column is the
		// whole distributed XXT solve and so includes its internal
		// cross-column allreduce, which the allreduce column also counts.
		perRank := func(name string) float64 {
			return reg.Timer(name).Total().Seconds() / fp / fs
		}
		ar := perRank("comm/allreduce.vtime")
		gsT := perRank("gs/exchange.vtime")
		xt := perRank("coarse/xxt.vtime")
		if pi == 0 {
			basePT = sPerStep * fp
		}
		eff := basePT / (sPerStep * fp)
		iters := 0
		if len(res.StepStats) > 0 {
			iters = res.StepStats[0].PressureIters
		}
		fmt.Printf("%6d %6d %8d %10.3e | %9.3e %9.3e %9.3e %9.3e | %9.3e %9.3e %9.3e | %6.2f\n",
			res.P, k/res.P, iters, sPerStep,
			ph[0], ph[1], ph[2], ph[3],
			ar, gsT, xt, eff)
	}
	fmt.Println("\n(eff = T(P0)*P0 / (T(P)*P) at fixed mesh; the pressure phase is the")
	fmt.Println(" Schwarz+XXT solve, where the NVert-word allreduces' log2(P)*alpha")
	fmt.Println(" latency term stops shrinking with P while the local work keeps")
	fmt.Println(" dividing — the work-dominated -> latency-dominated crossover is the")
	fmt.Println(" point where the allreduce column overtakes the compute remainder)")
}
