package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/la"
)

// table3 reproduces the matrix-matrix kernel study: MFLOPS for each
// (n1 x n2) x (n2 x n3) calling configuration of an order N=15 simulation,
// across the kernel variants (the Go analogues of the paper's lkm/ghm/csm
// library DGEMMs and hand-unrolled f2/f3 kernels).
func table3(quick bool) {
	shapes := [][3]int{
		{14, 2, 14}, {2, 14, 2}, {16, 14, 16}, {16, 14, 196}, {256, 14, 16},
		{14, 16, 14}, {16, 16, 16}, {16, 16, 256}, {196, 16, 14}, {256, 16, 16},
	}
	minTime := 0.2
	if quick {
		minTime = 0.05
	}
	fmt.Println("Table 3: MFLOPS for (n1 x n2) x (n2 x n3) matrix-matrix kernels")
	fmt.Printf("%4s %4s %4s |", "n1", "n2", "n3")
	for _, k := range la.Kernels {
		fmt.Printf(" %8s", k)
	}
	fmt.Printf(" | %8s", "auto")
	fmt.Println()
	tuner := &la.Tuner{MinTime: time.Duration(minTime * float64(time.Second) / 4)}
	rng := rand.New(rand.NewSource(1))
	for _, s := range shapes {
		n1, n2, n3 := s[0], s[1], s[2]
		a := randSlice(rng, n1*n2)
		b := randSlice(rng, n2*n3)
		c := make([]float64, n1*n3)
		fmt.Printf("%4d %4d %4d |", n1, n2, n3)
		for _, k := range la.Kernels {
			flops := 2 * float64(n1) * float64(n2) * float64(n3)
			// Warm up, then time.
			la.MatMul(k, c, a, b, n1, n2, n3)
			var reps int
			t0 := time.Now()
			for time.Since(t0).Seconds() < minTime {
				for i := 0; i < 100; i++ {
					la.MatMul(k, c, a, b, n1, n2, n3)
				}
				reps += 100
			}
			el := time.Since(t0).Seconds()
			mflops := flops * float64(reps) / el / 1e6
			fmt.Printf(" %8.0f", mflops)
		}
		// The "auto" column is the dispatch answer: the Tuner's per-shape
		// pick, re-measured independently. Non-strict, so the reassociating
		// f2/f3 kernels may win here even though solver-facing tuning
		// (Strict) excludes them.
		_, res := tuner.Tune([][3]int{s}, nil)
		fmt.Printf(" | %8.0f  %s", res[0].BestMFLOPS, res[0].Best)
		fmt.Println()
	}
	fmt.Println("\nExpected shape (paper): no single kernel wins every shape; the")
	fmt.Println("unrolled variants win at small/odd shapes, the blocked/library")
	fmt.Println("style kernels win at the large regular shapes. The auto column")
	fmt.Println("is the per-shape dispatch pick (la.Tuner), re-measured.")
}

func randSlice(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}
