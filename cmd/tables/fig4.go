package main

import (
	"fmt"

	"repro/internal/flowcases"
)

// fig4 reproduces the projection study: pressure iteration count and
// pre-iteration residual per time step, with (L=26) and without (L=0)
// projection onto previous solutions, on a buoyancy-driven convection cell
// (the Fig. 4 spherical-convection stand-in).
func fig4(quick bool) {
	nel, n, steps := 6, 7, 40
	if quick {
		nel, n, steps = 4, 5, 20
	}
	run := func(l int) (iters []int, res0 []float64) {
		s, err := flowcases.Convection(flowcases.ConvectionConfig{
			Nel: nel, N: n, Ra: 1e4, Dt: 0.002, ProjectionL: l, Workers: 2,
		})
		if err != nil {
			fmt.Println("setup error:", err)
			return nil, nil
		}
		for i := 0; i < steps; i++ {
			st, err := s.Step()
			if err != nil {
				fmt.Println("run error:", err)
				return iters, res0
			}
			iters = append(iters, st.PressureIters)
			res0 = append(res0, st.PressureRes0)
		}
		return iters, res0
	}
	it26, r26 := run(26)
	it0, r0 := run(0)
	fmt.Println("Fig 4: pressure iterations and pre-iteration residual per step")
	fmt.Printf("%6s | %10s %12s | %10s %12s\n", "step", "iters L=26", "res0 L=26", "iters L=0", "res0 L=0")
	for i := range it26 {
		fmt.Printf("%6d | %10d %12.3e | %10d %12.3e\n", i+1, it26[i], r26[i], it0[i], r0[i])
	}
	var s26, s0 int
	for i := range it26 {
		s26 += it26[i]
		s0 += it0[i]
	}
	if s26 > 0 {
		fmt.Printf("\ntotal iterations: L=26: %d, L=0: %d (reduction factor %.1f)\n",
			s26, s0, float64(s0)/float64(s26))
	}
	if k := len(it26); k >= 5 {
		var l26, l0 int
		for i := k - 5; i < k; i++ {
			l26 += it26[i]
			l0 += it0[i]
		}
		if l26 > 0 {
			fmt.Printf("settled (last five steps) reduction factor: %.1f\n", float64(l0)/float64(l26))
		}
	}
	fmt.Println("Expected shape (paper): projection cuts the iteration count by")
	fmt.Println("2.5-5x once the basis fills, and the residual before iterating")
	fmt.Println("drops by orders of magnitude.")
}
