package main

import (
	"fmt"
	"math"

	"repro/internal/flowcases"
)

// table1 reproduces the Orr–Sommerfeld convergence study: growth-rate error
// vs polynomial order N (spatial, Δt = 0.003125) and vs Δt for the 2nd- and
// 3rd-order splittings, each with filter strength α = 0 and α = 0.2.
func table1(quick bool) {
	horizon := 0.5 // measurement window in time units
	orders := []int{7, 9, 11, 13}
	if quick {
		orders = []int{7, 9, 11}
	}

	measure := func(n int, dt float64, order int, alpha float64) (relErr float64, blew bool) {
		s, osr, err := flowcases.Channel(flowcases.ChannelConfig{
			Re: 7500, Alpha: 1, N: n, Dt: dt, Order: order, Filter: alpha,
		})
		if err != nil {
			fmt.Printf("  setup error: %v\n", err)
			return math.NaN(), true
		}
		steps := int(math.Round(horizon / dt))
		if steps < 2 {
			steps = 2
		}
		g, err := flowcases.MeasuredGrowthRate(s, steps)
		if err != nil {
			return math.Inf(1), true
		}
		ref := osr.GrowthRate()
		return math.Abs(g-ref) / math.Abs(ref), false
	}

	fmt.Println("Table 1 (spatial): Orr-Sommerfeld growth-rate relative error, K=15, dt=0.003125")
	fmt.Printf("%4s  %12s  %12s\n", "N", "alpha=0.0", "alpha=0.2")
	for _, n := range orders {
		e0, b0 := measure(n, 0.003125, 2, 0)
		e2, b2 := measure(n, 0.003125, 2, 0.2)
		fmt.Printf("%4d  %12s  %12s\n", n, fmtErr(e0, b0), fmtErr(e2, b2))
	}

	fmt.Println("\nTable 1 (temporal): growth-rate relative error vs dt, N=17")
	horizon = 1.0 // longer window for the coarse time steps
	nT := 17
	dts := []float64{0.05, 0.025, 0.0125, 0.00625}
	if quick {
		dts = []float64{0.05, 0.025, 0.0125}
	}
	fmt.Printf("%9s  %12s %12s  %12s %12s\n", "dt",
		"2nd a=0.0", "2nd a=0.2", "3rd a=0.0", "3rd a=0.2")
	for _, dt := range dts {
		var cells [4]string
		i := 0
		for _, order := range []int{2, 3} {
			for _, alpha := range []float64{0, 0.2} {
				e, blew := measure(nT, dt, order, alpha)
				cells[i] = fmtErr(e, blew)
				i++
			}
		}
		fmt.Printf("%9.5f  %12s %12s  %12s %12s\n", dt, cells[0], cells[1], cells[2], cells[3])
	}
	fmt.Println("\nExpected shape: exponential error decay in N; the filter slightly")
	fmt.Println("degrades spatial accuracy but preserves convergence; both temporal")
	fmt.Println("orders converge when filtered (the paper's unfiltered 3rd-order")
	fmt.Println("instability is specific to its splitting and shows as large errors).")
}

func fmtErr(e float64, blew bool) string {
	if blew || math.IsNaN(e) || math.IsInf(e, 0) || e > 10 {
		return "unstable"
	}
	return fmt.Sprintf("%.6f", e)
}
