package main

import (
	"bytes"
	"fmt"
	"math/rand"

	"repro/internal/coarse"
	"repro/internal/comm"
	"repro/internal/instrument"
	"repro/internal/la"
)

// fig6 reproduces the coarse-grid solver comparison: modeled ASCI-Red solve
// time vs node count P for the XXT solver, redundant banded-LU, and
// row-distributed A⁻¹, plus the 2·latency·log₂P lower bound, for the 63²
// (n=3969) and 127² (n=16129) five-point Poisson problems. The distributed
// algorithms execute for real on the simulated machine (goroutine ranks,
// real messages); times come from the per-rank virtual clocks.
func fig6(quick bool) {
	grids := [][2]int{{63, 63}, {127, 127}}
	maxP := 2048
	if quick {
		grids = [][2]int{{63, 63}}
		maxP = 256
	}
	for _, g := range grids {
		nx, ny := g[0], g[1]
		n := nx * ny
		fmt.Printf("\nFig 6: coarse-grid solve times, n=%d (%dx%d five-point Poisson)\n", n, nx, ny)
		a := coarse.Poisson5pt(nx, ny)
		rng := rand.New(rand.NewSource(7))
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		fmt.Printf("%6s %12s %12s %12s %12s %10s %10s\n",
			"P", "XXT", "red. LU", "dist. A^-1", "2*lat*logP", "xxt msgs", "xxt KB")
		var lastNNZ, lastCross int
		for p := 1; p <= maxP; p *= 4 {
			m := comm.ASCIRed(p)
			// XXT.
			xxt, err := coarse.NewXXT(a, nx, ny, p)
			if err != nil {
				fmt.Println("XXT error:", err)
				return
			}
			inv := la.InvPerm(xxt.Perm)
			bp := make([]float64, n)
			for old := 0; old < n; old++ {
				bp[inv[old]] = b[old]
			}
			reg := instrument.New()
			net := comm.NewNetwork(m)
			net.Attach(reg) // measured traffic counters printed per row
			ranks := net.Run(func(r *comm.Rank) {
				xxt.SolveOn(r, bp[xxt.BlockLo[r.ID]:xxt.BlockHi[r.ID]])
			})
			tXXT := comm.MaxTime(ranks)
			xxtMsgs := reg.Counter("comm/send.msgs").Value()
			xxtKB := float64(reg.Counter("comm/send.bytes").Value()) / 1024
			lastNNZ, lastCross = xxt.NNZ(), xxt.CrossCount()
			// Redundant banded LU.
			lu, err := coarse.NewRedundantLU(a, nx, p)
			if err != nil {
				fmt.Println("LU error:", err)
				return
			}
			ranks = comm.NewNetwork(m).Run(func(r *comm.Rank) {
				lo, hi := r.ID*n/p, (r.ID+1)*n/p
				lu.SolveOn(r, b[lo:hi], r.ID == 0)
			})
			tLU := comm.MaxTime(ranks)
			// Distributed inverse.
			di, err := coarse.NewDistInv(a, p)
			if err != nil {
				fmt.Println("DistInv error:", err)
				return
			}
			ranks = comm.NewNetwork(m).Run(func(r *comm.Rank) {
				lo, hi := r.ID*n/p, (r.ID+1)*n/p
				di.SolveOn(r, b[lo:hi], r.ID == 0)
			})
			tDI := comm.MaxTime(ranks)
			fmt.Printf("%6d %12.3e %12.3e %12.3e %12.3e %10d %10.1f\n",
				p, tXXT, tLU, tDI, coarse.LatencyBound(m), xxtMsgs, xxtKB)
		}
		fmt.Printf("(XXT factor at max P: %d nonzeros, %d separator-crossing columns)\n",
			lastNNZ, lastCross)
	}
	fmt.Println("\nExpected shape (paper): XXT time falls until P ~ 16 (n=3969) /")
	fmt.Println("P ~ 256 (n=16129) then tracks the latency bound with a bandwidth")
	fmt.Println("offset; it beats both baselines in the work- and the")
	fmt.Println("communication-dominated regimes.")
	fig6Timeline()
	fig6Distributed(quick)
}

// fig6Timeline renders the per-rank message timeline of one XXT coarse
// solve from a real trace: the 63² Poisson problem at P=16, each rank a
// row, time binned into columns ('=' inside the xxt solve span, 'A' inside
// the cross-column allreduce, '.' idle). This is the Perfetto view of the
// coarse solve, reduced to ASCII: compute-dominated ranks show '='; the
// log₂P combine shows up as the shared 'A' band.
func fig6Timeline() {
	const nx, ny, p = 63, 63, 16
	n := nx * ny
	a := coarse.Poisson5pt(nx, ny)
	xxt, err := coarse.NewXXT(a, nx, ny, p)
	if err != nil {
		fmt.Println("XXT error:", err)
		return
	}
	tr := instrument.NewTracer()
	tr.DisableWallClock()
	xxt.AttachTracer(tr)
	net := comm.NewNetwork(comm.ASCIRed(p))
	net.AttachTracer(tr)
	rng := rand.New(rand.NewSource(7))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	inv := la.InvPerm(xxt.Perm)
	bp := make([]float64, n)
	for old := 0; old < n; old++ {
		bp[inv[old]] = b[old]
	}
	ranks := net.Run(func(r *comm.Rank) {
		xxt.SolveOn(r, bp[xxt.BlockLo[r.ID]:xxt.BlockHi[r.ID]])
	})
	maxUS := comm.MaxTime(ranks) * 1e6
	const cols = 64
	rows := make([][]byte, p)
	for q := range rows {
		rows[q] = bytes.Repeat([]byte("."), cols)
	}
	paint := func(row []byte, t0, t1 float64, ch byte, over bool) {
		c0 := int(t0 / maxUS * cols)
		c1 := int(t1 / maxUS * cols)
		if c1 >= cols {
			c1 = cols - 1
		}
		for c := c0; c <= c1; c++ {
			if over || row[c] == '.' {
				row[c] = ch
			}
		}
	}
	for _, ev := range tr.Events() {
		if ev.Pid != instrument.PidMachine || ev.Ph != "X" || ev.Tid >= p {
			continue
		}
		switch ev.Name {
		case "coarse/xxt.solve":
			paint(rows[ev.Tid], ev.Ts, ev.Ts+ev.Dur, '=', false)
		case "allreduce":
			paint(rows[ev.Tid], ev.Ts, ev.Ts+ev.Dur, 'A', true)
		}
	}
	fmt.Printf("\nPer-rank XXT coarse-solve timeline from the trace (n=%d, P=%d,\n", n, p)
	fmt.Printf("%.0f us total; '=' local Xᵀb / Xz work, 'A' cross-column allreduce):\n", maxUS)
	for q := 0; q < p; q++ {
		fmt.Printf("rank %2d |%s|\n", q, rows[q])
	}
}
