package main

import (
	"fmt"
	"math/rand"

	"repro/internal/coarse"
	"repro/internal/comm"
	"repro/internal/instrument"
	"repro/internal/la"
)

// fig6 reproduces the coarse-grid solver comparison: modeled ASCI-Red solve
// time vs node count P for the XXT solver, redundant banded-LU, and
// row-distributed A⁻¹, plus the 2·latency·log₂P lower bound, for the 63²
// (n=3969) and 127² (n=16129) five-point Poisson problems. The distributed
// algorithms execute for real on the simulated machine (goroutine ranks,
// real messages); times come from the per-rank virtual clocks.
func fig6(quick bool) {
	grids := [][2]int{{63, 63}, {127, 127}}
	maxP := 2048
	if quick {
		grids = [][2]int{{63, 63}}
		maxP = 256
	}
	for _, g := range grids {
		nx, ny := g[0], g[1]
		n := nx * ny
		fmt.Printf("\nFig 6: coarse-grid solve times, n=%d (%dx%d five-point Poisson)\n", n, nx, ny)
		a := coarse.Poisson5pt(nx, ny)
		rng := rand.New(rand.NewSource(7))
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		fmt.Printf("%6s %12s %12s %12s %12s %10s %10s\n",
			"P", "XXT", "red. LU", "dist. A^-1", "2*lat*logP", "xxt msgs", "xxt KB")
		var lastNNZ, lastCross int
		for p := 1; p <= maxP; p *= 4 {
			m := comm.ASCIRed(p)
			// XXT.
			xxt, err := coarse.NewXXT(a, nx, ny, p)
			if err != nil {
				fmt.Println("XXT error:", err)
				return
			}
			inv := la.InvPerm(xxt.Perm)
			bp := make([]float64, n)
			for old := 0; old < n; old++ {
				bp[inv[old]] = b[old]
			}
			reg := instrument.New()
			net := comm.NewNetwork(m)
			net.Attach(reg) // measured traffic counters printed per row
			ranks := net.Run(func(r *comm.Rank) {
				xxt.SolveOn(r, bp[xxt.BlockLo[r.ID]:xxt.BlockHi[r.ID]])
			})
			tXXT := comm.MaxTime(ranks)
			xxtMsgs := reg.Counter("comm/send.msgs").Value()
			xxtKB := float64(reg.Counter("comm/send.bytes").Value()) / 1024
			lastNNZ, lastCross = xxt.NNZ(), xxt.CrossCount()
			// Redundant banded LU.
			lu, err := coarse.NewRedundantLU(a, nx, p)
			if err != nil {
				fmt.Println("LU error:", err)
				return
			}
			ranks = comm.NewNetwork(m).Run(func(r *comm.Rank) {
				lo, hi := r.ID*n/p, (r.ID+1)*n/p
				lu.SolveOn(r, b[lo:hi], r.ID == 0)
			})
			tLU := comm.MaxTime(ranks)
			// Distributed inverse.
			di, err := coarse.NewDistInv(a, p)
			if err != nil {
				fmt.Println("DistInv error:", err)
				return
			}
			ranks = comm.NewNetwork(m).Run(func(r *comm.Rank) {
				lo, hi := r.ID*n/p, (r.ID+1)*n/p
				di.SolveOn(r, b[lo:hi], r.ID == 0)
			})
			tDI := comm.MaxTime(ranks)
			fmt.Printf("%6d %12.3e %12.3e %12.3e %12.3e %10d %10.1f\n",
				p, tXXT, tLU, tDI, coarse.LatencyBound(m), xxtMsgs, xxtKB)
		}
		fmt.Printf("(XXT factor at max P: %d nonzeros, %d separator-crossing columns)\n",
			lastNNZ, lastCross)
	}
	fmt.Println("\nExpected shape (paper): XXT time falls until P ~ 16 (n=3969) /")
	fmt.Println("P ~ 256 (n=16129) then tracks the latency bound with a bandwidth")
	fmt.Println("offset; it beats both baselines in the work- and the")
	fmt.Println("communication-dominated regimes.")
}
