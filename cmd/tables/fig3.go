package main

import (
	"fmt"
	"math"

	"repro/internal/flowcases"
)

// fig3 reproduces the shear-layer roll-up study: stability and vorticity
// extrema for the (K, N, α) pairings of Fig. 3, for the "thick" (ρ=30,
// Re=1e5) and "thin" (ρ=100, Re=4e4) layers.
func fig3(quick bool) {
	type cse struct {
		label   string
		nel, n  int
		rho, re float64
		alpha   float64
	}
	// Our collocation-form OIFS convection is less robust than the paper's
	// production operator at N=16 with convective CFL > 1 (see
	// EXPERIMENTS.md); the filter-stabilization comparison is therefore run
	// on the N=8 element family where the paper's qualitative result —
	// unfiltered blow-up vs filtered survival at identical resolution —
	// reproduces cleanly.
	var cases []cse
	steps := 500 // t = 1.0 at dt = 0.002 (the roll-up window)
	if quick {
		steps = 320
		cases = []cse{
			{"(a) thick, n=128, no filter", 16, 8, 30, 1e5, 0},
			{"(b) thick, n=128, alpha=0.3", 16, 8, 30, 1e5, 0.3},
			{"(d) thick, n=64,  alpha=0.3", 8, 8, 30, 1e5, 0.3},
		}
	} else {
		cases = []cse{
			{"(a) thick, n=128, no filter ", 16, 8, 30, 1e5, 0},
			{"(b) thick, n=128, alpha=0.3 ", 16, 8, 30, 1e5, 0.3},
			{"(c) thick, n=128, alpha=1.0 ", 16, 8, 30, 1e5, 1.0},
			{"(d) thick, n=64,  alpha=0.3 ", 8, 8, 30, 1e5, 0.3},
			{"(e) thin,  n=128, alpha=0.3 ", 16, 8, 100, 4e4, 0.3},
		}
	}
	fmt.Println("Fig 3: shear layer roll-up, dt=0.002 (series: survival + vorticity extrema)")
	fmt.Printf("%-30s %8s %10s %10s %10s\n", "case", "steps", "w_min", "w_max", "KE/KE0")
	for _, c := range cases {
		s, err := flowcases.ShearLayer(flowcases.ShearLayerConfig{
			Nel: c.nel, N: c.n, Rho: c.rho, Re: c.re, Dt: 0.002, Alpha: c.alpha, Workers: 2,
		})
		if err != nil {
			fmt.Printf("%-30s setup error: %v\n", c.label, err)
			continue
		}
		ke0 := flowcases.KineticEnergy(s)
		survived := steps
		for i := 0; i < steps; i++ {
			if _, err := s.Step(); err != nil {
				survived = i
				break
			}
			if ke := flowcases.KineticEnergy(s); math.IsNaN(ke) || ke > 10*ke0 {
				survived = i
				break
			}
		}
		if survived < steps {
			fmt.Printf("%-30s %7d* %10s %10s %10s   (*blow-up)\n", c.label, survived, "-", "-", "-")
			continue
		}
		lo, hi := flowcases.FieldRange(flowcases.Vorticity(s))
		fmt.Printf("%-30s %8d %10.1f %10.1f %10.4f\n",
			c.label, survived, lo, hi, flowcases.KineticEnergy(s)/ke0)
	}
	fmt.Println("\nExpected shape (paper): the unfiltered case blows up during roll-up;")
	fmt.Println("alpha=0.3 is stable with vorticity extrema near the initial +-rho;")
	fmt.Println("alpha=1 is stable but more dissipative (larger KE drop); the thin")
	fmt.Println("layer needs the higher order at fixed resolution.")
}
