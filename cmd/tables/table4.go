package main

import (
	"fmt"

	"repro/internal/flowcases"
	"repro/internal/perfmodel"
)

// measuredHistory runs a reduced hairpin problem to obtain the shape of the
// per-step iteration history (Fig. 8 right), then rescales the settled
// pressure-iteration level to the paper's production band (30–50).
func measuredHistory(steps int, quick bool) (press, helm, sub []int) {
	cfg := flowcases.HairpinConfig{
		Nx: 6, Ny: 4, Nz: 3, N: 5, Re: 1600, Dt: 0.05, Workers: 2, FilterA: 0.05,
	}
	if quick {
		cfg = flowcases.HairpinConfig{Nx: 4, Ny: 3, Nz: 3, N: 4, Re: 850, Dt: 0.05, Workers: 2, FilterA: 0.05}
	}
	s, err := flowcases.Hairpin(cfg)
	if err != nil {
		fmt.Println("  (hairpin setup failed, using synthetic history:", err, ")")
		return perfmodel.PaperIterationHistory(steps, 45, 8, 10)
	}
	press = make([]int, steps)
	helm = make([]int, steps)
	sub = make([]int, steps)
	var settled int
	for i := 0; i < steps; i++ {
		st, err := s.Step()
		if err != nil {
			fmt.Println("  (hairpin run failed at step", i, ", padding with synthetic history)")
			p2, h2, s2 := perfmodel.PaperIterationHistory(steps, 45, 8, 10)
			copy(press[i:], p2[i:])
			copy(helm[i:], h2[i:])
			copy(sub[i:], s2[i:])
			return press, helm, sub
		}
		press[i] = st.PressureIters
		helm[i] = st.HelmholtzIters[0]
		sub[i] = st.Substeps
		settled = st.PressureIters
	}
	// Rescale the measured shape to the paper's settled band (~45 at
	// production resolution) while keeping the transient ratio.
	if settled > 0 {
		scale := 45.0 / float64(settled)
		for i := range press {
			press[i] = int(float64(press[i]) * scale)
			if press[i] < 1 {
				press[i] = 1
			}
		}
	}
	for i := range helm {
		if helm[i] < 8 {
			helm[i] = 8 // production band
		}
		if sub[i] < 10 {
			sub[i] = 10 // CFL 1-5 with ~0.4 substep CFL
		}
	}
	return press, helm, sub
}

// table4 models total time and sustained GFLOPS for 26 production steps at
// (K, N) = (8168, 15) on 512/1024/2048 ASCI-Red nodes, single- and
// dual-processor mode, with the std and perf kernel selections.
func table4(quick bool) {
	fmt.Println("Table 4: modeled ASCI-Red-333 totals for 26 steps, K=8168, N=15")
	fmt.Println("(iteration history measured on a reduced hairpin run, rescaled; see DESIGN.md)")
	press, helm, sub := measuredHistory(26, quick)
	run := perfmodel.HairpinRun(press, helm, sub)
	std := perfmodel.ASCIRedStd()
	perf := perfmodel.ASCIRedPerf()
	fmt.Printf("%6s | %12s %8s | %12s %8s | %12s %8s | %12s %8s\n", "P",
		"single(std)", "GFLOPS", "dual(std)", "GFLOPS", "single(perf)", "GFLOPS", "dual(perf)", "GFLOPS")
	for _, p := range []int{512, 1024, 2048} {
		ss := run.Predict(std, p, false)
		sd := run.Predict(std, p, true)
		ps := run.Predict(perf, p, false)
		pd := run.Predict(perf, p, true)
		fmt.Printf("%6d | %10.0f s %8.0f | %10.0f s %8.0f | %10.0f s %8.0f | %10.0f s %8.0f\n",
			p, ss.TotalTime, ss.GFLOPS, sd.TotalTime, sd.GFLOPS,
			ps.TotalTime, ps.GFLOPS, pd.TotalTime, pd.GFLOPS)
	}
	fmt.Println("\nExpected shape (paper): near-linear strong scaling; dual mode ~1.4-1.6x;")
	fmt.Println("perf kernels ~5-20% over std; best corner (2048, dual, perf) sustains")
	fmt.Println("hundreds of GFLOPS (paper: 319 GF).")
}
