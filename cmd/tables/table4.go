package main

import (
	"fmt"

	"repro/internal/flowcases"
	"repro/internal/instrument"
	"repro/internal/perfmodel"
)

// measuredHistory runs a reduced hairpin problem to obtain the shape of the
// per-step iteration history (Fig. 8 right), then rescales the settled
// pressure-iteration level to the paper's production band (30–50). The run
// is instrumented; the returned registry (nil when the run fell back to the
// synthetic history) holds the measured per-phase timings and counters.
func measuredHistory(steps int, quick bool) (press, helm, sub []int, reg *instrument.Registry) {
	cfg := flowcases.HairpinConfig{
		Nx: 6, Ny: 4, Nz: 3, N: 5, Re: 1600, Dt: 0.05, Workers: 2, FilterA: 0.05,
	}
	if quick {
		cfg = flowcases.HairpinConfig{Nx: 4, Ny: 3, Nz: 3, N: 4, Re: 850, Dt: 0.05, Workers: 2, FilterA: 0.05}
	}
	s, err := flowcases.Hairpin(cfg)
	if err != nil {
		fmt.Println("  (hairpin setup failed, using synthetic history:", err, ")")
		p, h, sb := perfmodel.PaperIterationHistory(steps, 45, 8, 10)
		return p, h, sb, nil
	}
	reg = instrument.New()
	s.AttachMetrics(reg)
	press = make([]int, steps)
	helm = make([]int, steps)
	sub = make([]int, steps)
	var settled int
	for i := 0; i < steps; i++ {
		st, err := s.Step()
		if err != nil {
			fmt.Println("  (hairpin run failed at step", i, ", padding with synthetic history)")
			p2, h2, s2 := perfmodel.PaperIterationHistory(steps, 45, 8, 10)
			copy(press[i:], p2[i:])
			copy(helm[i:], h2[i:])
			copy(sub[i:], s2[i:])
			return press, helm, sub, nil
		}
		press[i] = st.PressureIters
		helm[i] = st.HelmholtzIters[0]
		sub[i] = st.Substeps
		settled = st.PressureIters
	}
	// Rescale the measured shape to the paper's settled band (~45 at
	// production resolution) while keeping the transient ratio.
	if settled > 0 {
		scale := 45.0 / float64(settled)
		for i := range press {
			press[i] = int(float64(press[i]) * scale)
			if press[i] < 1 {
				press[i] = 1
			}
		}
	}
	for i := range helm {
		if helm[i] < 8 {
			helm[i] = 8 // production band
		}
		if sub[i] < 10 {
			sub[i] = 10 // CFL 1-5 with ~0.4 substep CFL
		}
	}
	return press, helm, sub, reg
}

// phaseBreakdown prints the measured per-phase wall-time shares of the
// instrumented reduced run beside the flop-model shares of the production
// configuration — the paper's Table 4 "where does the time go" sanity check.
func phaseBreakdown(reg *instrument.Registry, run *perfmodel.Run) {
	if reg == nil {
		return
	}
	var mHelm, mPress, mConv, mFilt float64
	for i := range run.PressIters {
		h, p, c, f := run.PhaseFlops(i)
		mHelm += h
		mPress += p
		mConv += c
		mFilt += f
	}
	mTot := mHelm + mPress + mConv + mFilt
	phases := []struct {
		label   string
		timer   string
		modeled float64
	}{
		{"convection", "ns/convect", mConv},
		{"viscous", "ns/viscous", mHelm},
		{"pressure", "ns/pressure", mPress},
		{"filter", "ns/filter", mFilt},
	}
	var meaTot float64
	for _, ph := range phases {
		meaTot += reg.Timer(ph.timer).Total().Seconds()
	}
	fmt.Println("\nPer-phase breakdown: measured wall time (reduced hairpin run) vs")
	fmt.Println("modeled flop share (production configuration):")
	fmt.Printf("%12s %12s %11s %11s\n", "phase", "measured s", "measured %", "modeled %")
	for _, ph := range phases {
		sec := reg.Timer(ph.timer).Total().Seconds()
		fmt.Printf("%12s %12.3f %10.1f%% %10.1f%%\n",
			ph.label, sec, 100*sec/meaTot, 100*ph.modeled/mTot)
	}
	var modelPress, modelHelm int
	for i := range run.PressIters {
		modelPress += run.PressIters[i]
		modelHelm += run.HelmIters[i]
	}
	fmt.Printf("measured iters: pressure %d, viscous %d (per component);"+
		" modeled history: pressure %d, viscous %d\n",
		reg.Counter("solver/pressure.iters").Value(),
		reg.Counter("solver/viscous.iters").Value()/3,
		modelPress, modelHelm)
	fmt.Printf("measured Schwarz split: local FDM %.3f s, coarse XXT %.3f s;"+
		" projection basis mean %.1f\n",
		reg.Timer("schwarz/local").Total().Seconds(),
		reg.Timer("schwarz/coarse").Total().Seconds(),
		reg.Gauge("solver/projection.basis").Mean())
}

// table4 models total time and sustained GFLOPS for 26 production steps at
// (K, N) = (8168, 15) on 512/1024/2048 ASCI-Red nodes, single- and
// dual-processor mode, with the std and perf kernel selections.
func table4(quick bool) {
	fmt.Println("Table 4: modeled ASCI-Red-333 totals for 26 steps, K=8168, N=15")
	fmt.Println("(iteration history measured on a reduced hairpin run, rescaled; see DESIGN.md)")
	press, helm, sub, reg := measuredHistory(26, quick)
	run := perfmodel.HairpinRun(press, helm, sub)
	std := perfmodel.ASCIRedStd()
	perf := perfmodel.ASCIRedPerf()
	fmt.Printf("%6s | %12s %8s | %12s %8s | %12s %8s | %12s %8s\n", "P",
		"single(std)", "GFLOPS", "dual(std)", "GFLOPS", "single(perf)", "GFLOPS", "dual(perf)", "GFLOPS")
	for _, p := range []int{512, 1024, 2048} {
		ss := run.Predict(std, p, false)
		sd := run.Predict(std, p, true)
		ps := run.Predict(perf, p, false)
		pd := run.Predict(perf, p, true)
		fmt.Printf("%6d | %10.0f s %8.0f | %10.0f s %8.0f | %10.0f s %8.0f | %10.0f s %8.0f\n",
			p, ss.TotalTime, ss.GFLOPS, sd.TotalTime, sd.GFLOPS,
			ps.TotalTime, ps.GFLOPS, pd.TotalTime, pd.GFLOPS)
	}
	phaseBreakdown(reg, run)
	fmt.Println("\nExpected shape (paper): near-linear strong scaling; dual mode ~1.4-1.6x;")
	fmt.Println("perf kernels ~5-20% over std; best corner (2048, dual, perf) sustains")
	fmt.Println("hundreds of GFLOPS (paper: 319 GF).")
}
