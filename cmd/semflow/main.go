// Command semflow is the production-style driver: it runs one of the
// canonical flow cases (shear layer, TS channel, convection cell, hairpin
// boundary layer) with configurable resolution, filter, projection and
// worker settings, printing per-step solver statistics — the same knobs the
// paper's production code exposes.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/flowcases"
	"repro/internal/instrument"
	"repro/internal/ns"
)

func main() {
	caseName := flag.String("case", "shearlayer", "flow case: shearlayer, channel, convection, hairpin")
	steps := flag.Int("steps", 100, "time steps")
	n := flag.Int("n", 8, "polynomial order")
	nel := flag.Int("nel", 8, "elements per direction (2D cases)")
	alpha := flag.Float64("alpha", 0.3, "filter strength")
	l := flag.Int("L", 20, "pressure projection basis size")
	workers := flag.Int("workers", 2, "element-loop workers (dual-processor mode analogue)")
	every := flag.Int("report", 10, "report interval")
	stats := flag.Bool("stats", false, "print the per-phase instrumentation report after the run")
	statsJSON := flag.Bool("stats-json", false, "like -stats, but emit JSON")
	flag.Parse()

	var s *ns.Solver
	var err error
	switch *caseName {
	case "shearlayer":
		s, err = flowcases.ShearLayer(flowcases.ShearLayerConfig{
			Nel: *nel, N: *n, Rho: 30, Re: 1e5, Dt: 0.002, Alpha: *alpha, Workers: *workers,
		})
	case "channel":
		s, _, err = flowcases.Channel(flowcases.ChannelConfig{
			Re: 7500, Alpha: 1, N: *n, Dt: 0.003125, Order: 2, Filter: *alpha, Workers: *workers,
		})
	case "convection":
		s, err = flowcases.Convection(flowcases.ConvectionConfig{
			Nel: *nel, N: *n, Ra: 1e4, Dt: 0.002, ProjectionL: *l, Workers: *workers,
		})
	case "hairpin":
		s, err = flowcases.Hairpin(flowcases.HairpinConfig{
			Nx: 6, Ny: 4, Nz: 3, N: *n, Re: 1600, Dt: 0.05,
			Workers: *workers, FilterA: *alpha, ProjL: *l,
		})
	default:
		fmt.Fprintf(os.Stderr, "unknown case %q\n", *caseName)
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
	var reg *instrument.Registry
	if *stats || *statsJSON {
		reg = instrument.New()
		s.AttachMetrics(reg)
	}
	fmt.Printf("case=%s  K=%d  N=%d  dofs/component=%d  workers=%d\n",
		*caseName, s.M.K, s.M.N, s.M.K*s.M.Np, *workers)
	fmt.Printf("%6s %9s %6s %8s %8s %8s %12s\n",
		"step", "t", "CFL", "p-iters", "h-iters", "basis", "KE")
	d := s.Disc()
	d.ResetFlops()
	for i := 1; i <= *steps; i++ {
		st, err := s.Step()
		if err != nil {
			log.Fatalf("step %d: %v", i, err)
		}
		if i%*every == 0 {
			fmt.Printf("%6d %9.4f %6.2f %8d %8d %8d %12.5e\n",
				i, s.Time(), st.CFL, st.PressureIters, st.HelmholtzIters[0],
				st.ProjectionBasis, flowcases.KineticEnergy(s))
		}
	}
	fmt.Printf("\nmetered flops (velocity-grid operators): %.3e\n", float64(d.Flops()))
	if reg != nil {
		rep := reg.Report()
		if *statsJSON {
			j, err := rep.JSON()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\n%s\n", j)
		} else {
			fmt.Printf("\n%s", rep.String())
		}
	}
}
