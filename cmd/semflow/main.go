// Command semflow is the production-style driver: it runs one of the
// canonical flow cases (shear layer, TS channel, convection cell, hairpin
// boundary layer) with configurable resolution, filter, projection and
// worker settings, printing per-step solver statistics — the same knobs the
// paper's production code exposes. With -trace it also emits a Chrome
// trace-event JSON (open in Perfetto or chrome://tracing) combining the
// wall-clock spans of the stepper with a per-rank virtual-clock timeline of
// the distributed Schwarz+XXT pressure-style solve on the same mesh; with
// -history it writes per-step convergence telemetry as JSONL. With
// -ranks P the whole time loop instead runs as an SPMD program on the
// simulated machine (parrun.NavierStokes) and the same artifacts carry the
// per-rank traffic of every stepper phase.
//
// At scale the observability flags compose: -trace-sample R keeps full
// span tracks for R deterministically chosen ranks while the merged
// histograms still cover every rank, and -listen addr serves /metrics
// (Prometheus text), /progress (JSON) and /debug/pprof live during the
// run (-linger keeps the endpoint up after it finishes).
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/fault"
	"repro/internal/flowcases"
	"repro/internal/instrument"
	"repro/internal/la"
	"repro/internal/ns"
	"repro/internal/parrun"
	"repro/internal/session"
	"repro/internal/solver"
)

func main() {
	caseName := flag.String("case", "shearlayer", "flow case: shearlayer, channel, convection, hairpin")
	steps := flag.Int("steps", 100, "time steps")
	n := flag.Int("n", 8, "polynomial order")
	nel := flag.Int("nel", 8, "elements per direction (2D cases)")
	kx := flag.Int("kx", 0, "channel case: elements along the channel (0: case default 5); with -ky this sizes the mesh for large -ranks runs")
	ky := flag.Int("ky", 0, "channel case: elements across the channel (0: case default 3)")
	piters := flag.Int("piters", 0, "distributed runs: pressure CG iteration cap (0: case default; a small cap bounds the per-step message volume so large -ranks runs can be traced)")
	alpha := flag.Float64("alpha", 0.3, "filter strength")
	l := flag.Int("L", 20, "pressure projection basis size")
	workers := flag.Int("workers", 2, "element-loop workers (dual-processor mode analogue)")
	autotune := flag.Bool("autotune", false, "micro-benchmark the matmul kernels for this case's shapes and install the per-shape dispatch table (bitwise-identical Strict mode)")
	autotuneCache := flag.String("autotune-cache", "", "like -autotune, but persist the tuned dispatch table to this file and reuse it on later runs; the cache is keyed by CPU model and Go version, and any mismatch forces a re-tune")
	precond := flag.String("precond", "", "pressure preconditioner: schwarz (reference), chebjacobi, chebschwarz, none, or auto (pick per mesh/order/ranks/tolerance from short trial solves)")
	precondCache := flag.String("precond-cache", "", "with -precond auto: persist the selections to this file and reuse them on later runs; keyed by CPU model and Go version, any mismatch forces a re-selection")
	every := flag.Int("report", 10, "report interval")
	stats := flag.Bool("stats", false, "print the per-phase instrumentation report after the run")
	statsJSON := flag.Bool("stats-json", false, "like -stats, but emit JSON")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON (Perfetto-loadable) to this file")
	traceRanks := flag.Int("trace-ranks", 8, "simulated ranks for the traced distributed solve")
	traceSample := flag.Int("trace-sample", 0, "record full virtual span tracks for only this many evenly spaced ranks (0: all); merged histograms still cover every rank, so large -ranks runs stay traceable without -piters")
	listen := flag.String("listen", "", "serve /metrics (Prometheus text), /progress (JSON) and /debug/pprof live on this host:port during the run (port 0 picks a free port)")
	linger := flag.Duration("linger", 0, "with -listen: keep the endpoint up this long after the run completes")
	ranks := flag.Int("ranks", 0, "run the whole time loop distributed over this many simulated ranks (0: serial shared-memory stepper)")
	faultsPath := flag.String("faults", "", "fault plan JSON degrading the simulated machine: stragglers, link jitter, drops with retry, pauses (requires -ranks)")
	ckptDir := flag.String("checkpoint", "", "write versioned stepper snapshots into this directory (requires -ranks)")
	ckptEvery := flag.Int("checkpoint-every", 10, "steps between snapshots when -checkpoint is set")
	resume := flag.Bool("resume", false, "continue from the latest snapshot in the -checkpoint directory (requires -ranks)")
	historyOut := flag.String("history", "", "write per-step convergence telemetry (JSONL) to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file")
	flag.Parse()
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, nil)))

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	if *precond != "" && !ns.ValidPrecond(*precond) {
		log.Fatalf("-precond %q: want schwarz, chebjacobi, chebschwarz, none or auto", *precond)
	}
	loadPrecondCache(*precondCache)

	if *ranks > 0 {
		runDistributed(distOpts{
			caseName: *caseName, ranks: *ranks, steps: *steps, n: *n, nel: *nel,
			kx: *kx, ky: *ky, piters: *piters,
			alpha: *alpha, every: *every, stats: *stats, statsJSON: *statsJSON,
			traceOut: *traceOut, historyOut: *historyOut,
			traceSample: *traceSample, listen: *listen, linger: *linger,
			faultsPath: *faultsPath, ckptDir: *ckptDir, ckptEvery: *ckptEvery,
			resume: *resume, precond: *precond, precondCache: *precondCache,
		})
		return
	}
	if *faultsPath != "" || *ckptDir != "" || *resume {
		log.Fatal("-faults/-checkpoint/-resume apply to the distributed stepper: add -ranks P")
	}

	switch *caseName {
	case "shearlayer", "channel", "convection", "hairpin":
	default:
		fmt.Fprintf(os.Stderr, "unknown case %q\n", *caseName)
		os.Exit(2)
	}

	// The serial path goes through the session API — the same code path
	// semflowd multiplexes — with OnStep carrying the per-step report.
	cfg := session.Config{
		Case: *caseName, Steps: *steps, N: *n, Nel: *nel, KX: *kx, KY: *ky,
		Alpha: *alpha, ProjectionL: *l, Workers: *workers,
		Precond: *precond,
		Trace:   *traceOut != "",
	}
	var sess *session.Session // assigned below; OnStep only fires during StepN
	nonconverged := 0
	cfg.OnStep = func(st ns.StepStats) {
		if !st.PressureConverged {
			nonconverged++
			slog.Warn("pressure solve hit the iteration cap",
				"step", st.Step, "iters", st.PressureIters, "res", st.PressureResFinal)
		}
		if st.Step%*every == 0 {
			fmt.Printf("%6d %9.4f %6.2f %8d %8d %8d %12.5e\n",
				st.Step, st.Time, st.CFL, st.PressureIters, st.HelmholtzIters[0],
				st.ProjectionBasis, flowcases.KineticEnergy(sess.Solver()))
		}
	}
	sess, err := session.Create(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	s := sess.Solver()
	switch {
	case *autotuneCache != "":
		if dt, err := la.LoadCache(*autotuneCache); err == nil {
			la.Install(dt)
			fmt.Printf("autotune: reusing cached dispatch table %s\n", *autotuneCache)
			break
		} else if !errors.Is(err, os.ErrNotExist) {
			// A stale or foreign cache is re-tuned, never trusted.
			slog.Warn("autotune cache unusable, re-tuning", "err", err)
		}
		res := la.AutoTune(s.M.N, s.M.Dim)
		fmt.Printf("autotune: %d shapes tuned (strict kernels only)\n", len(res))
		for _, r := range res {
			fmt.Printf("  %s\n", r)
		}
		if err := la.SaveCache(*autotuneCache, la.Installed()); err != nil {
			slog.Warn("autotune cache not written", "err", err)
		} else {
			fmt.Printf("autotune: dispatch table cached to %s\n", *autotuneCache)
		}
	case *autotune:
		res := la.AutoTune(s.M.N, s.M.Dim)
		fmt.Printf("autotune: %d shapes tuned (strict kernels only)\n", len(res))
		for _, r := range res {
			fmt.Printf("  %s\n", r)
		}
	}
	sel := s.PrecondSelection()
	reportPrecond(sel)
	savePrecondCache(*precondCache)
	reg := sess.Registry()
	reg.SetMeta(instrument.RunMeta{
		Case: *caseName, Elements: s.M.K, Order: s.M.N, Steps: *steps,
		Workers: *workers, TraceSample: *traceSample,
		Precond: sel.Name, PrecondSource: sel.Source,
	})
	tracer := sess.Tracer()
	if tracer != nil {
		if picked := strideSample(*traceRanks, *traceSample); picked != nil {
			tracer.SampleVRanks(picked)
		}
	}
	var obs *instrument.Server
	if *listen != "" {
		obs = startServe(*listen, reg, sess.Progress())
		defer obs.Close()
	}
	fmt.Printf("case=%s  K=%d  N=%d  dofs/component=%d  workers=%d\n",
		*caseName, s.M.K, s.M.N, s.M.K*s.M.Np, *workers)
	fmt.Printf("%6s %9s %6s %8s %8s %8s %12s\n",
		"step", "t", "CFL", "p-iters", "h-iters", "basis", "KE")
	d := s.Disc()
	d.ResetFlops()
	if _, err := sess.StepN(*steps); err != nil {
		log.Fatalf("step %d: %v", sess.Step()+1, err)
	}
	if nonconverged > 0 {
		slog.Warn("pressure solve did not converge on some steps",
			"nonconverged", nonconverged, "steps", *steps)
	}
	fmt.Printf("\nmetered flops (velocity-grid operators): %.3e\n", float64(d.Flops()))

	if tracer != nil {
		// The shared-memory stepper gives the wall-clock track; the rank
		// timeline of Figs. 6/8 comes from running the distributed
		// Schwarz+XXT-preconditioned solve on the same mesh.
		res, err := parrun.PoissonSchwarz(s.M, parrun.Config{
			P: *traceRanks, Registry: reg, Tracer: tracer,
		})
		if err != nil {
			log.Fatalf("traced distributed solve: %v", err)
		}
		fmt.Printf("traced distributed solve: P=%d iters=%d res=%.2e virtual=%.3es traffic=%.1fkB/%d msgs\n",
			res.P, res.Iterations, res.FinalRes, res.VirtualSeconds,
			float64(res.TotalBytes)/1024, res.TotalMsgs)
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatalf("trace: %v", err)
		}
		if err := tracer.WriteJSON(f); err != nil {
			log.Fatalf("trace: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("trace: %v", err)
		}
		fmt.Printf("wrote %d trace events to %s (load in https://ui.perfetto.dev)\n",
			tracer.Len(), *traceOut)
	}
	if *historyOut != "" {
		history := sess.History()
		f, err := os.Create(*historyOut)
		if err != nil {
			log.Fatalf("history: %v", err)
		}
		if err := history.WriteJSONL(f); err != nil {
			log.Fatalf("history: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("history: %v", err)
		}
		fmt.Printf("wrote %d per-step telemetry records to %s\n", history.Len(), *historyOut)
	}
	if *stats || *statsJSON {
		rep := reg.Report()
		if *statsJSON {
			j, err := rep.JSON()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\n%s\n", j)
		} else {
			fmt.Printf("\n%s", rep.String())
		}
	}
	finishServe(obs, sess.Progress(), *linger)
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatalf("memprofile: %v", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatalf("memprofile: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("memprofile: %v", err)
		}
	}
}

// distOpts bundles the CLI switches of a distributed run.
type distOpts struct {
	caseName             string
	ranks, steps, n, nel int
	kx, ky               int // channel mesh size (0,0: case default 5x3)
	piters               int // pressure CG iteration cap (0: case default)
	alpha                float64
	every                int
	stats, statsJSON     bool
	traceOut, historyOut string
	traceSample          int           // full span tracks for this many ranks (0: all)
	listen               string        // live observability endpoint address ("" off)
	linger               time.Duration // keep the endpoint up after the run
	faultsPath, ckptDir  string
	ckptEvery            int
	resume               bool
	precond              string // pressure preconditioner variant ("" = case default)
	precondCache         string // persisted -precond auto selections
}

// runDistributed runs the selected case's whole time loop as an SPMD
// program on the simulated machine (parrun.NavierStokes): RSB element
// ownership per rank, distributed gather–scatter assembly, allreduce inner
// products, and a per-rank virtual-clock trace track for every stepper
// phase. The same -trace/-history/-stats artifacts come out of the
// distributed run directly — no separate traced Poisson solve is needed.
// -faults degrades the simulated machine with a seeded plan, -checkpoint
// snapshots the stepper every -checkpoint-every steps, and -resume picks up
// a bitwise-identical continuation from the latest snapshot.
func runDistributed(o distOpts) {
	var cfg ns.Config
	var init flowcases.InitFunc
	var err error
	switch o.caseName {
	case "shearlayer":
		cfg, init, err = flowcases.ShearLayerSpec(flowcases.ShearLayerConfig{
			Nel: o.nel, N: o.n, Rho: 30, Re: 1e5, Dt: 0.002, Alpha: o.alpha,
		})
	case "channel":
		cfg, init, _, err = flowcases.ChannelSpec(flowcases.ChannelConfig{
			Re: 7500, Alpha: 1, N: o.n, Dt: 0.003125, Order: 2, Filter: o.alpha,
			KX: o.kx, KY: o.ky,
		})
	case "hairpin":
		cfg, init, err = flowcases.HairpinSpec(flowcases.HairpinConfig{
			Nx: 6, Ny: 4, Nz: 3, N: o.n, Re: 1600, Dt: 0.05, FilterA: o.alpha,
		})
	case "convection":
		err = fmt.Errorf("case convection carries scalar transport, which the distributed stepper does not support")
	default:
		err = fmt.Errorf("unknown case %q", o.caseName)
	}
	if err != nil {
		log.Fatal(err)
	}
	if o.piters > 0 {
		cfg.PMaxIter = o.piters
	}
	if o.precond != "" {
		cfg.PressurePrecond = o.precond
	}
	var plan *fault.Plan
	if o.faultsPath != "" {
		if plan, err = fault.Load(o.faultsPath); err != nil {
			log.Fatal(err)
		}
	}
	var ck *parrun.Checkpoint
	if o.resume {
		if o.ckptDir == "" {
			log.Fatal("-resume needs -checkpoint DIR to find the snapshots")
		}
		path, err := parrun.LatestCheckpoint(o.ckptDir)
		if err != nil {
			log.Fatal(err)
		}
		if path == "" {
			log.Fatalf("-resume: no snapshots in %s", o.ckptDir)
		}
		if ck, err = parrun.LoadCheckpoint(path); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("resuming from %s (completed steps: %d)\n", path, ck.Step)
	}
	m := cfg.Mesh
	var reg *instrument.Registry
	if o.stats || o.statsJSON || o.listen != "" {
		reg = instrument.New()
		var seed int64
		if plan != nil {
			seed = plan.Seed
		}
		reg.SetMeta(instrument.RunMeta{
			Case: o.caseName, Ranks: o.ranks, Elements: m.K, Order: m.N,
			Steps: o.steps, PIters: o.piters, FaultSeed: seed,
			TraceSample: o.traceSample,
		})
	}
	var tracer *instrument.Tracer
	if o.traceOut != "" {
		tracer = instrument.NewTracer()
		if picked := strideSample(o.ranks, o.traceSample); picked != nil {
			tracer.SampleVRanks(picked)
			slog.Info("trace rank sampling on", "tracks", o.traceSample, "ranks", o.ranks)
		}
	}
	var history *instrument.TimeSeries
	if o.historyOut != "" {
		history = instrument.NewTimeSeries()
	}
	var prog *instrument.Progress
	var obs *instrument.Server
	var onStep func(st ns.StepStats, vsec float64)
	if o.listen != "" {
		prog = instrument.NewProgress()
		obs = startServe(o.listen, reg, prog)
		defer obs.Close()
		onStep = func(st ns.StepStats, vsec float64) {
			prog.Update(instrument.ProgressSnapshot{
				Case: o.caseName, Ranks: o.ranks, Step: st.Step, TotalSteps: o.steps,
				Time: st.Time, VirtualSeconds: vsec, CFL: st.CFL,
				PressureIters: st.PressureIters, PressureRes: st.PressureResFinal,
				Converged: st.PressureConverged,
			})
		}
	}
	fmt.Printf("case=%s  K=%d  N=%d  dofs/component=%d  ranks=%d (distributed)\n",
		o.caseName, m.K, m.N, m.K*m.Np, o.ranks)
	res, err := parrun.NavierStokes(cfg, parrun.NSConfig{
		P: o.ranks, Steps: o.steps, Init: init,
		Faults:        plan,
		CheckpointDir: o.ckptDir, CheckpointEvery: o.ckptEvery,
		Resume:   ck,
		Registry: reg, Tracer: tracer, History: history,
		OnStep: onStep,
	})
	if err != nil {
		log.Fatalf("distributed run: %v", err)
	}
	if res.P != res.RequestedP {
		slog.Info("rank count clamped (one element minimum per rank)",
			"requested", res.RequestedP, "effective", res.P)
	}
	reportPrecond(res.PrecondSel)
	savePrecondCache(o.precondCache)
	if reg != nil {
		// Refresh the metadata with the resolved variant: for -precond auto
		// the selection only exists once the template has run its trials.
		var seed int64
		if plan != nil {
			seed = plan.Seed
		}
		reg.SetMeta(instrument.RunMeta{
			Case: o.caseName, Ranks: o.ranks, Elements: m.K, Order: m.N,
			Steps: o.steps, PIters: o.piters, FaultSeed: seed,
			TraceSample: o.traceSample,
			Precond:     res.Precond, PrecondSource: res.PrecondSel.Source,
		})
	}
	fmt.Printf("%6s %9s %6s %8s %8s %8s %12s\n",
		"step", "t", "CFL", "p-iters", "h-iters", "basis", "p-res")
	for _, st := range res.StepStats {
		if st.Step%o.every != 0 {
			continue
		}
		fmt.Printf("%6d %9.4f %6.2f %8d %8d %8d %12.3e\n",
			st.Step, st.Time, st.CFL, st.PressureIters,
			st.HelmholtzIters[0], st.ProjectionBasis, st.PressureResFinal)
	}
	if !res.Converged {
		slog.Warn("some steps did not converge",
			"nonconverged", res.NonconvergedSteps, "steps", res.Steps)
	}
	fmt.Printf("\ndistributed run: P=%d steps=%d virtual=%.3es traffic=%.1fkB/%d msgs cut-edges=%d\n",
		res.P, res.Steps, res.VirtualSeconds,
		float64(res.TotalBytes)/1024, res.TotalMsgs, res.CutEdges)
	if plan != nil {
		fmt.Printf("fault recovery: drops=%d retries=%d pauses=%d stall=%.3es (virtual, summed over ranks)\n",
			res.Drops, res.Retries, res.Pauses, res.FaultStallSec)
	}
	if res.CheckpointsWritten > 0 {
		fmt.Printf("wrote %d snapshots to %s (every %d steps)\n",
			res.CheckpointsWritten, o.ckptDir, o.ckptEvery)
	}
	if tracer != nil {
		f, err := os.Create(o.traceOut)
		if err != nil {
			log.Fatalf("trace: %v", err)
		}
		if err := tracer.WriteJSON(f); err != nil {
			log.Fatalf("trace: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("trace: %v", err)
		}
		fmt.Printf("wrote %d trace events to %s (load in https://ui.perfetto.dev)\n",
			tracer.Len(), o.traceOut)
	}
	if history != nil {
		f, err := os.Create(o.historyOut)
		if err != nil {
			log.Fatalf("history: %v", err)
		}
		if err := history.WriteJSONL(f); err != nil {
			log.Fatalf("history: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("history: %v", err)
		}
		fmt.Printf("wrote %d per-step telemetry records to %s\n", history.Len(), o.historyOut)
	}
	if reg != nil && (o.stats || o.statsJSON) {
		rep := reg.Report()
		if o.statsJSON {
			j, err := rep.JSON()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\n%s\n", j)
		} else {
			fmt.Printf("\n%s", rep.String())
		}
	}
	finishServe(obs, prog, o.linger)
}

// strideSample picks r evenly spaced ranks out of p — the deterministic
// choice behind -trace-sample, so reruns record the same tracks. nil means
// "trace everything" (r = 0 or r covers all of p).
// loadPrecondCache installs persisted -precond auto selections before any
// solver is built. A stale or foreign cache (other machine, other Go
// version) is re-selected, never trusted — the same policy as the matmul
// autotune cache.
func loadPrecondCache(path string) {
	if path == "" {
		return
	}
	pt, err := solver.LoadPrecondCache(path)
	if err == nil {
		solver.InstallPrecondTable(pt)
		fmt.Printf("precond: reusing %d cached selections from %s\n", pt.Len(), path)
		return
	}
	if !errors.Is(err, os.ErrNotExist) {
		slog.Warn("precond cache unusable, re-selecting", "err", err)
	}
}

// savePrecondCache persists the process-wide selection table (if any).
func savePrecondCache(path string) {
	t := solver.InstalledPrecondTable()
	if path == "" || t.Len() == 0 {
		return
	}
	if err := solver.SavePrecondCache(path, t); err != nil {
		slog.Warn("precond cache not written", "err", err)
	} else {
		fmt.Printf("precond: %d selections cached to %s\n", t.Len(), path)
	}
}

// reportPrecond prints the resolved pressure preconditioner and, after an
// auto trial tournament, the per-candidate stats.
func reportPrecond(sel solver.PrecondSelection) {
	if sel.Name == "" {
		return
	}
	fmt.Printf("precond: %s (%s)\n", sel.Name, sel.Source)
	for _, tr := range sel.Trials {
		fmt.Printf("  trial %-12s %4d iters  converged=%-5v  %.3fs\n",
			tr.Name, tr.Iterations, tr.Converged, tr.Seconds)
	}
}

func strideSample(p, r int) []int {
	if r <= 0 || r >= p {
		return nil
	}
	out := make([]int, r)
	for i := range out {
		out[i] = i * p / r
	}
	return out
}

// startServe binds the live observability endpoint and prints the resolved
// address (port 0 requests pick a free port) so scrapers can find it.
func startServe(addr string, reg *instrument.Registry, prog *instrument.Progress) *instrument.Server {
	srv, err := instrument.Serve(addr, reg, prog)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	fmt.Printf("observability: listening on http://%s (/metrics /progress /debug/pprof)\n", srv.Addr)
	return srv
}

// finishServe marks the run done on /progress and keeps the endpoint up for
// the linger window so post-run scrapes see the final state.
func finishServe(obs *instrument.Server, prog *instrument.Progress, linger time.Duration) {
	if obs == nil {
		return
	}
	snap := prog.Snapshot()
	snap.Done = true
	prog.Update(snap)
	if linger > 0 {
		slog.Info("run complete, endpoint lingering", "addr", obs.Addr, "for", linger.String())
		time.Sleep(linger)
	}
}
