// Command benchjson converts `go test -bench -benchmem` output into a
// machine-readable JSON document (the BENCH_<n>.json artifact of
// scripts/bench.sh). It parses the standard benchmark result lines from
// stdin (or -in), records the run environment, and can embed
//
//   - a baseline document (-baseline): prior hand-recorded or previously
//     generated measurements, carried verbatim under "baseline" so a single
//     artifact holds the before/after pair, and
//   - a kernel-tuning report (-tune N:dim): the per-shape matmul
//     micro-benchmarks of la.Tuner for the given discretization order,
//     i.e. the data behind the dispatch table the solvers install.
//
// The output schema ("repro-bench/1") is documented in DESIGN.md.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/la"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Procs      int     `json:"procs"`
	Iterations int     `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	MBPerS     float64 `json:"mb_per_s,omitempty"`
	// Pointers: a measured 0 (the allocation-free hot path) must stay
	// distinguishable from "not run with -benchmem".
	BytesPerOp  *int64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`
}

// Doc is the emitted artifact.
type Doc struct {
	Schema     string           `json:"schema"`
	Label      string           `json:"label,omitempty"`
	Generated  string           `json:"generated,omitempty"`
	Go         string           `json:"go"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	CPUs       int              `json:"cpus"`
	CPUModel   string           `json:"cpu_model,omitempty"`
	Baseline   json.RawMessage  `json:"baseline,omitempty"`
	Benchmarks []Result         `json:"benchmarks"`
	Tuning     []la.ShapeResult `json:"tuning,omitempty"`
}

// benchLine matches e.g.
//
//	BenchmarkTable1ChannelStep-4   30   35123456 ns/op   7248992 B/op   1874 allocs/op
//	BenchmarkTable3Naive16         69850  755.9 ns/op  3174.88 MB/s
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

func main() {
	in := flag.String("in", "", "benchmark output to parse (default stdin)")
	out := flag.String("out", "", "output JSON path (default stdout)")
	label := flag.String("label", "", "free-form label recorded in the artifact")
	baseline := flag.String("baseline", "", "JSON file embedded verbatim under \"baseline\"")
	tune := flag.String("tune", "", "N:dim — also run the la.Tuner shape sweep for this order and embed the per-shape kernel MFLOPS")
	tuneMs := flag.Int("tune-ms", 25, "tuner measurement window per (shape, kernel), milliseconds")
	stamp := flag.Bool("stamp", true, "record the generation time (disable for byte-reproducible output)")
	flag.Parse()

	doc := Doc{
		Schema: "repro-bench/1",
		Label:  *label,
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
	}
	if *stamp {
		doc.Generated = time.Now().UTC().Format(time.RFC3339)
	}

	r := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatalf("benchjson: %v", err)
		}
		defer f.Close()
		r = f
	}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if cm, ok := strings.CutPrefix(line, "cpu: "); ok {
			doc.CPUModel = strings.TrimSpace(cm)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		res := Result{Name: strings.TrimPrefix(m[1], "Benchmark"), Procs: 1}
		if m[2] != "" {
			res.Procs, _ = strconv.Atoi(m[2])
		}
		res.Iterations, _ = strconv.Atoi(m[3])
		res.NsPerOp, _ = strconv.ParseFloat(m[4], 64)
		rest := strings.Fields(m[5])
		for i := 0; i+1 < len(rest); i += 2 {
			v := rest[i]
			switch rest[i+1] {
			case "MB/s":
				res.MBPerS, _ = strconv.ParseFloat(v, 64)
			case "B/op":
				if n, err := strconv.ParseInt(v, 10, 64); err == nil {
					res.BytesPerOp = &n
				}
			case "allocs/op":
				if n, err := strconv.ParseInt(v, 10, 64); err == nil {
					res.AllocsPerOp = &n
				}
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("benchjson: %v", err)
	}

	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			log.Fatalf("benchjson: baseline: %v", err)
		}
		if !json.Valid(raw) {
			log.Fatalf("benchjson: baseline %s is not valid JSON", *baseline)
		}
		doc.Baseline = json.RawMessage(raw)
	}

	if *tune != "" {
		var n, dim int
		if _, err := fmt.Sscanf(*tune, "%d:%d", &n, &dim); err != nil || n < 2 || (dim != 2 && dim != 3) {
			log.Fatalf("benchjson: -tune wants N:dim (e.g. 9:2), got %q", *tune)
		}
		tn := &la.Tuner{MinTime: time.Duration(*tuneMs) * time.Millisecond}
		mul, abt := la.ShapesForOrder(n, dim)
		_, doc.Tuning = tn.Tune(mul, abt)
	}

	enc, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatalf("benchjson: %v", err)
	}
}
