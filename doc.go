// Package repro is a from-scratch Go reproduction of "Terascale Spectral
// Element Algorithms and Implementations" (Tufo & Fischer, SC 1999): a
// spectral element Navier–Stokes solver with tensor-product matrix-free
// operators, filter stabilization, OIFS time advancement, projection-
// accelerated pressure solves, an FDM additive-Schwarz + coarse-grid
// preconditioner, the XXT parallel coarse-grid solver, a gather–scatter
// communication layer on a simulated message-passing machine, and a
// performance model for the paper's ASCI-Red results.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// hardware-substitution rationale, and EXPERIMENTS.md for the per-table /
// per-figure reproduction record. The top-level benchmarks in bench_test.go
// exercise one representative kernel per table/figure; `go run ./cmd/tables`
// regenerates the full rows/series.
package repro
