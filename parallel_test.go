package repro_test

import (
	"runtime"
	"runtime/debug"
	"testing"
	"time"
)

// drainPoolFinalizers runs pending finalizers now. Discretizations with
// workers>1 register one to stop their element pool, so earlier tests'
// discarded solvers hold queued finalizers whose one-time runtime setup
// (the finalizer goroutine and its argument frame) allocates; letting
// that fire inside an AllocsPerRun or MemStats window is a spurious
// failure. The sentinel finalizer proves the queue has been serviced;
// GC must be re-forced in a loop because one cycle only queues the
// sentinel and the next cycle may never come — with debug.SetGCPercent(-1)
// in effect, blocking on a single runtime.GC() deadlocks (and with GC on,
// it stalls until the runtime's 2-minute forced-GC tick).
func drainPoolFinalizers() {
	done := make(chan struct{})
	runtime.SetFinalizer(new(int), func(*int) { close(done) })
	for i := 0; i < 100; i++ {
		runtime.GC()
		select {
		case <-done:
			return
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

// Three channel steps at workers=4 under forced GOMAXPROCS(4): every
// element loop dispatches through the persistent pool, so the race
// detector sees the full arena protocol — the caller's fn publish, the
// per-worker wakeup sends, disjoint writes into per-worker scratch and
// element blocks, and the WaitGroup join back to the caller. Deliberately
// not skipped under -short: this is the one stepper test the tier-2
// -race -short sweep must always exercise.
func TestWorkerPoolStepRace(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	s := channelSolver(t, 4)
	stepN(t, s, 3)
}

// Steady-state zero-alloc regression for the workers=4 step, measured as
// a MemStats delta with GC pinned off. testing.AllocsPerRun cannot see
// this path: it forces GOMAXPROCS(1) for the measured window, which flips
// the pool into its serial fallback, so only a raw Mallocs delta counts
// what the parallel dispatch itself costs. Warm-up matches the benchmark
// protocol (BDF ramp plus one full projection cycle); after it, the wakeup
// channels, chunk table, and per-worker arenas are all preallocated and
// the delta over 8 further steps must be exactly zero.
func TestWorkerStepSteadyStateZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second warm-up")
	}
	if raceEnabled {
		t.Skip("the race runtime allocates for its own bookkeeping")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	s := channelSolver(t, 4)
	stepN(t, s, 24)
	// The drain's forced GCs empty the sync.Pool-backed element scratch, so
	// re-warm a couple of steps to repopulate it before the measured window
	// (GC stays off, so nothing empties it again).
	drainPoolFinalizers()
	stepN(t, s, 2)
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	stepN(t, s, 8)
	runtime.ReadMemStats(&m1)
	if d := m1.Mallocs - m0.Mallocs; d > 0 {
		t.Errorf("workers=4 steady-state steps allocated %d times over 8 steps, want 0", d)
	}
}
