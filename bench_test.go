package repro_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/coarse"
	"repro/internal/comm"
	"repro/internal/flowcases"
	"repro/internal/instrument"
	"repro/internal/la"
	"repro/internal/mesh"
	"repro/internal/ns"
	"repro/internal/parrun"
	"repro/internal/perfmodel"
	"repro/internal/schwarz"
	"repro/internal/sem"
	"repro/internal/solver"
)

// ---- Table 1: Orr-Sommerfeld channel stepping ----

// channelStepWarmup is the steady-state warm-up of the Table 1 stepping
// benchmarks: b.ResetTimer() zeroes the allocation counters, so stepping
// past the BDF ramp, scratch sizing, and one full projection-basis cycle
// (L=20 plus restart) first makes allocs/op report the true steady state —
// 0 — instead of smearing one-time construction over the first b.N steps.
// TestChannelStepAllocationFree and the MemStats tests pin the same bound.
const channelStepWarmup = 24

func benchChannelStep(b *testing.B, cfg flowcases.ChannelConfig) {
	s, _, err := flowcases.Channel(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < channelStepWarmup; i++ {
		if _, err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
	benchRewarm(b, s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRewarm runs pending pool finalizers (their one-time runtime setup
// must not be charged to the measured window — see drainPoolFinalizers)
// and then repopulates the sync.Pool-backed scratch that the drain's
// forced GCs emptied, so allocs/op reports a true steady-state 0 even at
// -benchtime=1x (the CI gate).
func benchRewarm(b *testing.B, s *ns.Solver) {
	b.Helper()
	drainPoolFinalizers()
	for i := 0; i < 2; i++ {
		if _, err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1ChannelStep(b *testing.B) {
	benchChannelStep(b, flowcases.ChannelConfig{
		Re: 7500, Alpha: 1, N: 9, Dt: 0.003125, Order: 2,
	})
}

// BenchmarkTable1ChannelStepW4 runs the same case with a 4-worker element
// pool — the acceptance benchmark of the element-parallel hot paths. Run it
// with -cpu 1,4 to see both sides: at GOMAXPROCS>1 the persistent chunk
// workers carry the element loops; at GOMAXPROCS=1 the pool's serial
// fallback must stay within a few percent of workers=1. Results are bitwise
// identical to the workers=1 run either way (disjoint element blocks,
// deterministic work assignment; see TestWorkersChannelGolden).
func BenchmarkTable1ChannelStepW4(b *testing.B) {
	benchChannelStep(b, flowcases.ChannelConfig{
		Re: 7500, Alpha: 1, N: 9, Dt: 0.003125, Order: 2, Workers: 4,
	})
}

// BenchmarkTable1ChannelStepUnbatched is the per-component viscous solve
// (Config.UnbatchedViscous): the delta against BenchmarkTable1ChannelStep
// is the multi-RHS batching gain at identical results (the batched path is
// bitwise identical — TestBatchedViscousGolden).
func BenchmarkTable1ChannelStepUnbatched(b *testing.B) {
	cfg, init, _, err := flowcases.ChannelSpec(flowcases.ChannelConfig{
		Re: 7500, Alpha: 1, N: 9, Dt: 0.003125, Order: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg.UnbatchedViscous = true
	s, err := ns.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	s.SetVelocity(init)
	for i := 0; i < channelStepWarmup; i++ {
		if _, err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
	benchRewarm(b, s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrecondChannelStep* step the Table 1 channel under each pressure
// preconditioner variant. The pressure solve dominates the step, so the
// deltas here are (up to the fixed advection/viscous cost) the per-variant
// pressure-solve cost the runtime tuner trades off; the per-solve iteration
// counts behind them land in solver/pressure.iters.hist and the selection
// gate (TestPrecondSelectionGateChannel) pins the auto pick against the
// Schwarz reference.
func BenchmarkPrecondChannelStepSchwarz(b *testing.B) {
	benchChannelStep(b, flowcases.ChannelConfig{
		Re: 7500, Alpha: 1, N: 9, Dt: 0.003125, Order: 2, Precond: ns.PrecondSchwarz,
	})
}

func BenchmarkPrecondChannelStepChebJacobi(b *testing.B) {
	benchChannelStep(b, flowcases.ChannelConfig{
		Re: 7500, Alpha: 1, N: 9, Dt: 0.003125, Order: 2, Precond: ns.PrecondChebJacobi,
	})
}

func BenchmarkPrecondChannelStepChebSchwarz(b *testing.B) {
	benchChannelStep(b, flowcases.ChannelConfig{
		Re: 7500, Alpha: 1, N: 9, Dt: 0.003125, Order: 2, Precond: ns.PrecondChebSchwarz,
	})
}

// BenchmarkTable1ChannelStepTuned steps with a Strict auto-tuned dispatch
// table installed for the case's matmul shapes. Strict tuning only considers
// bitwise-identical kernels, so the delta over BenchmarkTable1ChannelStep is
// pure dispatch gain (see TestTunedDispatchChannelGolden).
func BenchmarkTable1ChannelStepTuned(b *testing.B) {
	defer la.ResetDispatch()
	la.AutoTune(9, 2)
	benchChannelStep(b, flowcases.ChannelConfig{
		Re: 7500, Alpha: 1, N: 9, Dt: 0.003125, Order: 2,
	})
}

// BenchmarkTable1ChannelStepInstrumented is the same stepping loop with a
// live metrics registry attached; comparing against BenchmarkTable1ChannelStep
// bounds the instrumentation overhead (target: enabled <2% — disabled
// instrumentation is a nil-receiver branch and costs nothing measurable).
func BenchmarkTable1ChannelStepInstrumented(b *testing.B) {
	s, _, err := flowcases.Channel(flowcases.ChannelConfig{
		Re: 7500, Alpha: 1, N: 9, Dt: 0.003125, Order: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	s.AttachMetrics(instrument.New())
	for i := 0; i < channelStepWarmup; i++ {
		if _, err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
	benchRewarm(b, s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1ChannelStepTraced adds the full observability stack —
// metrics registry, tracer, and per-step telemetry — on top of the
// instrumented run. The delta over BenchmarkTable1ChannelStep bounds the
// everything-on cost; BenchmarkTable1ChannelStep itself is the baseline
// guarding the nil-receiver disabled path (tracing off must cost nothing
// beyond the PR-1 instrumentation bound).
func BenchmarkTable1ChannelStepTraced(b *testing.B) {
	s, _, err := flowcases.Channel(flowcases.ChannelConfig{
		Re: 7500, Alpha: 1, N: 9, Dt: 0.003125, Order: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	s.AttachMetrics(instrument.New())
	s.AttachTracer(instrument.NewTracer())
	s.AttachHistory(instrument.NewTimeSeries())
	for i := 0; i < channelStepWarmup; i++ {
		if _, err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
	benchRewarm(b, s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChannelStepDistributed steps the channel as a 4-rank SPMD
// program on the simulated machine (parrun.NavierStokes). Per-op cost is
// real work per time step — every rank executes its element subset of all
// stepper phases plus the message-passing simulation — with the one-time
// setup (operator template, RSB partition, XXT factorization, network
// spin-up) amortized over b.N steps. N=5 keeps the CI 1x smoke fast; the
// serial reference at the same resolution is the flowcases channel with
// N: 5 rather than Table 1's N: 9.
func BenchmarkChannelStepDistributed(b *testing.B) {
	cfg, init, _, err := flowcases.ChannelSpec(flowcases.ChannelConfig{
		Re: 7500, Alpha: 1, N: 5, Dt: 0.003125, Order: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	res, err := parrun.NavierStokes(cfg, parrun.NSConfig{
		P: 4, Steps: b.N, Init: init,
	})
	if err != nil {
		b.Fatal(err)
	}
	if res.P != 4 {
		b.Fatalf("ran on %d ranks, want 4", res.P)
	}
}

// BenchmarkChannelStepDistributedP64 is the paper-scale variant: the same
// channel flow on a 16x4 element mesh spread over 64 simulated ranks (one
// element per rank). Per-op cost is dominated by the message-passing
// simulation itself — ~5k point-to-point messages and the log2(64)-round
// scalar allreduces of each pressure iteration — so this benchmark tracks
// the comm/gs hot path (pooled payloads, indexed mailboxes, overlapped
// exchange) rather than the floating-point work.
func BenchmarkChannelStepDistributedP64(b *testing.B) {
	cfg, init, _, err := flowcases.ChannelSpec(flowcases.ChannelConfig{
		Re: 7500, Alpha: 1, N: 5, Dt: 0.003125, Order: 2, KX: 16, KY: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	res, err := parrun.NavierStokes(cfg, parrun.NSConfig{
		P: 64, Steps: b.N, Init: init,
	})
	if err != nil {
		b.Fatal(err)
	}
	if res.P != 64 {
		b.Fatalf("ran on %d ranks, want 64", res.P)
	}
}

// ---- Table 2: Schwarz-preconditioned pressure-like solve ----

func benchCylinderSolve(b *testing.B, opt schwarz.Options) {
	spec := mesh.CylinderOGrid(mesh.CylinderOGridSpec{NTheta: 16, NLayer: 6, R: 0.5, H: 6, WallRatio: 12})
	m, err := mesh.Discretize(spec, 7)
	if err != nil {
		b.Fatal(err)
	}
	d := sem.New(m, nil, 1)
	n := m.K * m.Np
	one := make([]float64, n)
	for i := range one {
		one[i] = 1
	}
	vol := d.Integrate(one)
	deflate := func(u []float64) {
		mn := d.Integrate(u) / vol
		for i := range u {
			u[i] -= mn
		}
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = m.B[i] * m.X[i]
	}
	d.Assemble(rhs)
	deflate(rhs)
	opt.Neumann = true
	p, err := schwarz.New(d, opt)
	if err != nil {
		b.Fatal(err)
	}
	apply := func(out, in []float64) { d.Laplacian(out, in); deflate(out) }
	pre := func(out, in []float64) { p.Apply(out, in); deflate(out) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := make([]float64, n)
		st := solver.CG(apply, d.Dot, x, rhs, solver.Options{
			Tol: 1e-5, Relative: true, MaxIter: 2000, Precond: pre,
		})
		if !st.Converged {
			b.Fatal("solve failed")
		}
	}
}

func BenchmarkTable2FDMSchwarz(b *testing.B) {
	benchCylinderSolve(b, schwarz.Options{Method: schwarz.FDM, UseCoarse: true})
}

func BenchmarkTable2FEMSchwarzNo1(b *testing.B) {
	benchCylinderSolve(b, schwarz.Options{Method: schwarz.FEM, Overlap: 1, UseCoarse: true})
}

func BenchmarkTable2NoCoarse(b *testing.B) {
	benchCylinderSolve(b, schwarz.Options{Method: schwarz.FDM, UseCoarse: false})
}

// ---- Table 3: matrix-matrix kernels ----

func benchMatMul(b *testing.B, k la.MatMulKernel, n1, n2, n3 int) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, n1*n2)
	bb := make([]float64, n2*n3)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range bb {
		bb[i] = rng.NormFloat64()
	}
	c := make([]float64, n1*n3)
	b.SetBytes(int64(8 * (n1*n2 + n2*n3 + n1*n3)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		la.MatMul(k, c, a, bb, n1, n2, n3)
	}
}

func benchABt(b *testing.B, k la.ABtKernel, n1, n2, n3 int) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, n1*n2)
	bb := make([]float64, n3*n2)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range bb {
		bb[i] = rng.NormFloat64()
	}
	c := make([]float64, n1*n3)
	b.SetBytes(int64(8 * (n1*n2 + n3*n2 + n1*n3)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		la.MatMulABt(k, c, a, bb, n1, n2, n3)
	}
}

// benchAutoMul times the dispatched entry point la.Mul itself: with tuned =
// true it installs a Strict-tuned table for the shape first, so the pair of
// benchmarks measures heuristic dispatch vs tuned dispatch end to end
// (lookup cost included).
func benchAutoMul(b *testing.B, tuned bool, n1, n2, n3 int) {
	defer la.ResetDispatch()
	la.ResetDispatch()
	if tuned {
		dt, _ := (&la.Tuner{Strict: true}).Tune([][3]int{{n1, n2, n3}}, nil)
		la.Install(dt)
	}
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, n1*n2)
	bb := make([]float64, n2*n3)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range bb {
		bb[i] = rng.NormFloat64()
	}
	c := make([]float64, n1*n3)
	b.SetBytes(int64(8 * (n1*n2 + n2*n3 + n1*n3)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		la.Mul(c, a, bb, n1, n2, n3)
	}
}

func BenchmarkTable3Naive16(b *testing.B)   { benchMatMul(b, la.KernelNaive, 16, 16, 16) }
func BenchmarkTable3IKJ16(b *testing.B)     { benchMatMul(b, la.KernelIKJ, 16, 16, 16) }
func BenchmarkTable3F2_16(b *testing.B)     { benchMatMul(b, la.KernelF2, 16, 16, 16) }
func BenchmarkTable3F3_16(b *testing.B)     { benchMatMul(b, la.KernelF3, 16, 16, 16) }
func BenchmarkTable3Blocked16(b *testing.B) { benchMatMul(b, la.KernelBlocked, 16, 16, 16) }
func BenchmarkTable3F2Small(b *testing.B)   { benchMatMul(b, la.KernelF2, 14, 2, 14) }
func BenchmarkTable3BlockedWide(b *testing.B) {
	benchMatMul(b, la.KernelBlocked, 16, 16, 256)
}

// ABt variants on the order-9 2D square shape (the ApplyR2D configuration).
func BenchmarkTable3ABtSimple10(b *testing.B)   { benchABt(b, la.ABtSimple, 10, 10, 10) }
func BenchmarkTable3ABtUnrolled10(b *testing.B) { benchABt(b, la.ABtUnrolled, 10, 10, 10) }
func BenchmarkTable3ABtBlocked10(b *testing.B)  { benchABt(b, la.ABtBlocked, 10, 10, 10) }

// Dispatched la.Mul end to end, heuristic vs Strict-tuned (Table 3 "auto").
func BenchmarkTable3AutoMulDefault10(b *testing.B) { benchAutoMul(b, false, 10, 10, 10) }
func BenchmarkTable3AutoMulTuned10(b *testing.B)   { benchAutoMul(b, true, 10, 10, 10) }

// ---- Table 4: performance-model evaluation ----

func BenchmarkTable4Predict(b *testing.B) {
	press, helm, sub := perfmodel.PaperIterationHistory(26, 45, 8, 10)
	run := perfmodel.HairpinRun(press, helm, sub)
	m := perfmodel.ASCIRedPerf()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run.Predict(m, 2048, true)
	}
}

// ---- Fig 3: filtered shear-layer stepping ----

func BenchmarkFig3ShearLayerStep(b *testing.B) {
	s, err := flowcases.ShearLayer(flowcases.ShearLayerConfig{
		Nel: 8, N: 8, Rho: 30, Re: 1e5, Dt: 0.002, Alpha: 0.3, Workers: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Fig 4: projected pressure solves in the convection cell ----

func BenchmarkFig4ConvectionStepProjected(b *testing.B) {
	s, err := flowcases.Convection(flowcases.ConvectionConfig{
		Nel: 4, N: 6, Ra: 1e4, Dt: 0.002, ProjectionL: 26, Workers: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4ConvectionStepUnprojected(b *testing.B) {
	s, err := flowcases.Convection(flowcases.ConvectionConfig{
		Nel: 4, N: 6, Ra: 1e4, Dt: 0.002, ProjectionL: 0, Workers: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Fig 6: distributed XXT coarse solve ----

func BenchmarkFig6XXTSolveP16(b *testing.B) {
	nx := 63
	a := coarse.Poisson5pt(nx, nx)
	n := a.Rows
	p := 16
	xxt, err := coarse.NewXXT(a, nx, nx, p)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	bp := make([]float64, n)
	for i := range bp {
		bp[i] = rng.NormFloat64()
	}
	m := comm.ASCIRed(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comm.NewNetwork(m).Run(func(r *comm.Rank) {
			xxt.SolveOn(r, bp[xxt.BlockLo[r.ID]:xxt.BlockHi[r.ID]])
		})
	}
}

func BenchmarkFig6XXTSerial(b *testing.B) {
	nx := 63
	a := coarse.Poisson5pt(nx, nx)
	xxt, err := coarse.NewXXT(a, nx, nx, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	rhs := make([]float64, a.Rows)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xxt.SolveSerial(rhs)
	}
}

// ---- Fig 8: 3D hairpin-box stepping ----

func BenchmarkFig8HairpinStep(b *testing.B) {
	s, err := flowcases.Hairpin(flowcases.HairpinConfig{
		Nx: 4, Ny: 3, Nz: 3, N: 5, Re: 850, Dt: 0.05, Workers: 2, FilterA: 0.1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablations: design choices called out in DESIGN.md ----

// Worker-count ablation of the operator kernel (the dual-processor mode of
// Sec. 6).
func benchStiffnessWorkers(b *testing.B, workers int) {
	spec := mesh.Box3D(mesh.Box3DSpec{Nx: 4, Ny: 4, Nz: 4, X1: 1, Y1: 1, Z1: 1})
	m, err := mesh.Discretize(spec, 9)
	if err != nil {
		b.Fatal(err)
	}
	d := sem.New(m, nil, workers)
	n := m.K * m.Np
	u := make([]float64, n)
	for i := range u {
		u[i] = math.Sin(float64(i))
	}
	out := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.StiffnessLocal(out, u)
	}
}

func BenchmarkAblationStiffness1Worker(b *testing.B)  { benchStiffnessWorkers(b, 1) }
func BenchmarkAblationStiffness2Workers(b *testing.B) { benchStiffnessWorkers(b, 2) }
func BenchmarkAblationStiffness4Workers(b *testing.B) { benchStiffnessWorkers(b, 4) }

// FDM local solve vs dense-factored FEM local solve (the Table 2 cost
// asymmetry: same O(N^{d+1}) application for FDM, O(N^{2d}) for dense FEM).
func BenchmarkAblationFDMPrecondApply(b *testing.B) {
	spec := mesh.Box2D(mesh.Box2DSpec{Nx: 4, Ny: 4, X1: 1, Y1: 1})
	m, err := mesh.Discretize(spec, 11)
	if err != nil {
		b.Fatal(err)
	}
	d := sem.New(m, m.BoundaryMask(nil), 1)
	p, err := schwarz.New(d, schwarz.Options{Method: schwarz.FDM, UseCoarse: true})
	if err != nil {
		b.Fatal(err)
	}
	n := m.K * m.Np
	r := make([]float64, n)
	for i := range r {
		r[i] = math.Cos(float64(i))
	}
	out := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Apply(out, r)
	}
}

func BenchmarkAblationFEMPrecondApply(b *testing.B) {
	spec := mesh.Box2D(mesh.Box2DSpec{Nx: 4, Ny: 4, X1: 1, Y1: 1})
	m, err := mesh.Discretize(spec, 11)
	if err != nil {
		b.Fatal(err)
	}
	d := sem.New(m, m.BoundaryMask(nil), 1)
	p, err := schwarz.New(d, schwarz.Options{Method: schwarz.FEM, Overlap: 1, UseCoarse: true})
	if err != nil {
		b.Fatal(err)
	}
	n := m.K * m.Np
	r := make([]float64, n)
	for i := range r {
		r[i] = math.Cos(float64(i))
	}
	out := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Apply(out, r)
	}
}

// Gather-scatter assembly throughput (the principal communication kernel).
func BenchmarkAblationGatherScatter(b *testing.B) {
	spec := mesh.Box3D(mesh.Box3DSpec{Nx: 4, Ny: 4, Nz: 4, X1: 1, Y1: 1, Z1: 1})
	m, err := mesh.Discretize(spec, 7)
	if err != nil {
		b.Fatal(err)
	}
	d := sem.New(m, nil, 1)
	u := make([]float64, m.K*m.Np)
	for i := range u {
		u[i] = float64(i % 17)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Assemble(u)
	}
}
