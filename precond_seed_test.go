package repro_test

// Acceptance test for the runtime-selected pressure preconditioners: every
// variant must converge each of the four seed flow cases to that case's own
// pressure tolerance, with the per-solve iteration counts landing in the
// shared pressure-iteration histogram.

import (
	"testing"

	"repro/internal/flowcases"
	"repro/internal/instrument"
	"repro/internal/ns"
	"repro/internal/solver"
)

// seedCase builds one of the four canonical cases at test size with the
// given pressure preconditioner variant.
func seedCase(t *testing.T, name, precond string) *ns.Solver {
	t.Helper()
	var s *ns.Solver
	var err error
	switch name {
	case "shearlayer":
		s, err = flowcases.ShearLayer(flowcases.ShearLayerConfig{
			Nel: 4, N: 5, Rho: 30, Re: 1e5, Dt: 0.002, Alpha: 0.3, Precond: precond,
		})
	case "channel":
		s, _, err = flowcases.Channel(flowcases.ChannelConfig{
			Re: 7500, Alpha: 1, N: 5, Dt: 0.003125, Order: 2, Precond: precond,
		})
	case "convection":
		s, err = flowcases.Convection(flowcases.ConvectionConfig{
			Nel: 4, N: 5, Ra: 5e3, Dt: 0.005, ProjectionL: 10, Precond: precond,
		})
	case "hairpin":
		// Built through the spec so the impulsive start's pressure iteration
		// cap can be raised: the Schwarz reference needs ~1300 iterations on
		// the first step at this size (a seed property, same as at HEAD), and
		// the point of this test is convergence to tolerance, not speed.
		var cfg ns.Config
		var init flowcases.InitFunc
		cfg, init, err = flowcases.HairpinSpec(flowcases.HairpinConfig{
			Nx: 4, Ny: 3, Nz: 3, N: 4, Re: 850, Dt: 0.02, Workers: 2,
			FilterA: 0.1, Precond: precond,
		})
		if err == nil {
			cfg.PMaxIter = 4000
			s, err = ns.New(cfg)
			if err == nil {
				s.SetVelocity(init)
			}
		}
	default:
		t.Fatalf("unknown seed case %q", name)
	}
	if err != nil {
		t.Fatalf("%s/%s: %v", name, precond, err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestPrecondVariantsConvergeSeedCases: schwarz, chebjacobi and chebschwarz
// each converge the shear layer, channel, convection cell and hairpin cases.
func TestPrecondVariantsConvergeSeedCases(t *testing.T) {
	if testing.Short() {
		t.Skip("steps all four cases under three preconditioners")
	}
	const steps = 3
	for _, cn := range []string{"shearlayer", "channel", "convection", "hairpin"} {
		iters := map[string]int{}
		for _, pn := range ns.PrecondNames() {
			s := seedCase(t, cn, pn)
			if got := s.PrecondName(); got != pn {
				t.Fatalf("%s: resolved %q, want %q", cn, got, pn)
			}
			reg := instrument.New()
			s.AttachMetrics(reg)
			for i := 0; i < steps; i++ {
				st, err := s.Step()
				if err != nil {
					t.Fatalf("%s/%s step %d: %v", cn, pn, i+1, err)
				}
				if !st.PressureConverged {
					t.Errorf("%s/%s step %d: pressure solve hit the cap (%d iters, res %g)",
						cn, pn, i+1, st.PressureIters, st.PressureResFinal)
				}
				iters[pn] += st.PressureIters
			}
			if h := reg.Histogram("solver/pressure.iters.hist"); h.Count() != steps {
				t.Errorf("%s/%s: iteration histogram has %d observations, want %d",
					cn, pn, h.Count(), steps)
			}
		}
		t.Logf("%s pressure iterations over %d steps: %v", cn, steps, iters)
	}
}

// TestPrecondSelectionGateChannel is the bench-tier regression gate: on the
// Table 1 channel case, the auto-selected preconditioner's trial solve must
// converge and must not take more iterations than the Schwarz reference
// trial. A variant regressing past the reference would silently give back
// the win this selection machinery exists to bank.
func TestPrecondSelectionGateChannel(t *testing.T) {
	solver.ResetPrecondTable()
	defer solver.ResetPrecondTable()
	s, _, err := flowcases.Channel(flowcases.ChannelConfig{
		Re: 7500, Alpha: 1, N: 5, Dt: 0.003125, Order: 2, Precond: ns.PrecondAuto,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sel := s.PrecondSelection()
	if sel.Source != "trial" {
		t.Fatalf("selection source = %q, want trial (table not reset?)", sel.Source)
	}
	var ref, won *solver.PrecondTrial
	for i := range sel.Trials {
		if sel.Trials[i].Name == ns.PrecondSchwarz {
			ref = &sel.Trials[i]
		}
		if sel.Trials[i].Name == sel.Name {
			won = &sel.Trials[i]
		}
	}
	if ref == nil || won == nil {
		t.Fatalf("trials missing schwarz reference or winner %q: %+v", sel.Name, sel.Trials)
	}
	if !ref.Converged {
		t.Fatalf("schwarz reference trial did not converge: %+v", *ref)
	}
	if !won.Converged {
		t.Fatalf("selected %q trial did not converge: %+v", sel.Name, *won)
	}
	if won.Iterations > ref.Iterations {
		t.Errorf("selected %q takes %d trial iterations, schwarz reference takes %d",
			sel.Name, won.Iterations, ref.Iterations)
	}
	t.Logf("channel selection: %s (schwarz ref %d iters, winner %d iters)",
		sel.Name, ref.Iterations, won.Iterations)
}
