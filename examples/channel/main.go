// Tollmien–Schlichting channel (the Table 1 configuration): superimpose a
// small-amplitude TS eigenfunction on plane Poiseuille flow at Re = 7500
// and compare the measured perturbation growth rate with linear theory —
// the library computes the Orr–Sommerfeld reference itself.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/flowcases"
)

func main() {
	n := flag.Int("n", 9, "polynomial order")
	dt := flag.Float64("dt", 0.003125, "time step")
	steps := flag.Int("steps", 96, "time steps")
	filter := flag.Float64("alpha", 0, "filter strength")
	flag.Parse()

	s, osr, err := flowcases.Channel(flowcases.ChannelConfig{
		Re: 7500, Alpha: 1, N: *n, Dt: *dt, Order: 2, Filter: *filter,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plane Poiseuille + TS wave: Re=7500, alpha=1, K=15, N=%d, dt=%g\n", *n, *dt)
	fmt.Printf("Orr–Sommerfeld eigenvalue: c = %.8f%+.8fi\n", real(osr.C), imag(osr.C))
	fmt.Printf("linear-theory growth rate: %.8f\n\n", osr.GrowthRate())

	e0 := flowcases.PerturbationEnergy(s)
	t0 := s.Time()
	fmt.Printf("%6s %10s %14s %14s\n", "step", "t", "pert. energy", "running rate")
	for i := 1; i <= *steps; i++ {
		if _, err := s.Step(); err != nil {
			log.Fatalf("step %d: %v", i, err)
		}
		if i%(*steps/8) == 0 {
			e := flowcases.PerturbationEnergy(s)
			rate := 0.5 * math.Log(e/e0) / (s.Time() - t0)
			fmt.Printf("%6d %10.4f %14.6e %14.8f\n", i, s.Time(), e, rate)
		}
	}
	e1 := flowcases.PerturbationEnergy(s)
	g := 0.5 * math.Log(e1/e0) / (s.Time() - t0)
	fmt.Printf("\nmeasured growth rate: %.8f (rel. error vs linear theory: %.2e)\n",
		g, math.Abs(g-osr.GrowthRate())/osr.GrowthRate())
}
