// Quickstart: solve a Poisson problem with the spectral element method and
// the paper's solver stack — matrix-free tensor-product operators, CG, and
// the FDM additive-Schwarz + coarse-grid preconditioner — and watch the
// error converge exponentially in the polynomial order N.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/mesh"
	"repro/internal/schwarz"
	"repro/internal/sem"
	"repro/internal/solver"
)

func main() {
	fmt.Println("SEM quickstart: -∇²u = f on [0,1]², u|∂Ω = 0, u_exact = sin(πx)sin(πy)")
	fmt.Printf("%4s %10s %14s %8s\n", "N", "dofs", "max error", "CG iters")
	for _, n := range []int{4, 6, 8, 10, 12} {
		spec := mesh.Box2D(mesh.Box2DSpec{Nx: 4, Ny: 4, X0: 0, X1: 1, Y0: 0, Y1: 1})
		m, err := mesh.Discretize(spec, n)
		if err != nil {
			log.Fatal(err)
		}
		d := sem.New(m, m.BoundaryMask(nil), 2)
		// Weak-form right-hand side: B f.
		b := make([]float64, m.K*m.Np)
		for i := range b {
			f := 2 * math.Pi * math.Pi * math.Sin(math.Pi*m.X[i]) * math.Sin(math.Pi*m.Y[i])
			b[i] = m.B[i] * f
		}
		d.Assemble(b)
		// Preconditioner: FDM local solves + vertex-mesh coarse grid.
		pre, err := schwarz.New(d, schwarz.Options{Method: schwarz.FDM, UseCoarse: true})
		if err != nil {
			log.Fatal(err)
		}
		x := make([]float64, len(b))
		st := solver.CG(d.Laplacian, d.Dot, x, b, solver.Options{
			Tol: 1e-12, Relative: true, MaxIter: 500, Precond: pre.Apply,
		})
		var maxErr float64
		for i := range x {
			exact := math.Sin(math.Pi*m.X[i]) * math.Sin(math.Pi*m.Y[i])
			maxErr = math.Max(maxErr, math.Abs(x[i]-exact))
		}
		fmt.Printf("%4d %10d %14.3e %8d\n", n, m.NGlobal, maxErr, st.Iterations)
	}
	fmt.Println("\nNote the spectral (exponential) convergence: each +2 in order buys")
	fmt.Println("orders of magnitude, while the Schwarz-preconditioned iteration")
	fmt.Println("count stays flat — the paper's Sec. 2 and Sec. 5 story in one table.")
}
