// Parallel SPMD Poisson solve on the simulated message-passing machine:
// the element mesh is partitioned by recursive spectral bisection (Sec. 6
// of the paper), each simulated rank assembles residuals with the
// distributed gather–scatter (gs_init / gs_op), and Jacobi-preconditioned
// CG runs with allreduce inner products — the same SPMD structure the
// production code used on ASCI-Red, executed on goroutine ranks with an
// α–β virtual clock.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/comm"
	"repro/internal/gs"
	"repro/internal/mesh"
	"repro/internal/partition"
	"repro/internal/sem"
)

func main() {
	p := flag.Int("p", 8, "simulated ranks")
	nel := flag.Int("nel", 8, "elements per direction")
	n := flag.Int("n", 6, "polynomial order")
	flag.Parse()

	spec := mesh.Box2D(mesh.Box2DSpec{Nx: *nel, Ny: *nel, X0: 0, X1: 1, Y0: 0, Y1: 1})
	m, err := mesh.Discretize(spec, *n)
	if err != nil {
		log.Fatal(err)
	}
	mask := m.BoundaryMask(nil)

	// Partition elements with recursive spectral bisection.
	part := partition.RSB(m.Adj, *p)
	cut := partition.CutEdges(m.Adj, part)
	fmt.Printf("mesh: K=%d elements, N=%d, %d global dofs; RSB cut %d element faces on %d ranks\n",
		m.K, m.N, m.NGlobal, cut, *p)

	elems := make([][]int, *p)
	for e, q := range part {
		elems[q] = append(elems[q], e)
	}

	results := make([][]float64, *p)
	iters := make([]int, *p)
	net := comm.NewNetwork(comm.ASCIRed(*p))
	ranks := net.Run(func(r *comm.Rank) {
		mine := elems[r.ID]
		nloc := len(mine) * m.Np
		// Local views.
		gids := make([]int64, nloc)
		lmask := make([]float64, nloc)
		b := make([]float64, nloc)
		for li, e := range mine {
			for l := 0; l < m.Np; l++ {
				gi := e*m.Np + l
				gids[li*m.Np+l] = m.GID[gi]
				lmask[li*m.Np+l] = mask[gi]
				f := 2 * math.Pi * math.Pi * math.Sin(math.Pi*m.X[gi]) * math.Sin(math.Pi*m.Y[gi])
				b[li*m.Np+l] = m.B[gi] * f
			}
		}
		h := gs.ParInit(r, gids)
		d := sem.New(m, mask, 1) // per-rank operator workspace
		mult := make([]float64, nloc)
		for i := range mult {
			mult[i] = 1
		}
		h.Apply(mult, gs.Sum)

		apply := func(out, in []float64) {
			for li, e := range mine {
				d.StiffnessElement(out[li*m.Np:(li+1)*m.Np], in[li*m.Np:(li+1)*m.Np], e)
			}
			h.Apply(out, gs.Sum)
			for i := range out {
				out[i] *= lmask[i]
			}
		}
		dot := func(u, v []float64) float64 {
			var s float64
			for i := range u {
				s += u[i] * v[i] / mult[i]
			}
			return r.AllreduceScalar(s, comm.OpSum)
		}
		// Assemble the RHS.
		h.Apply(b, gs.Sum)
		for i := range b {
			b[i] *= lmask[i]
		}
		// Jacobi diagonal: HelmholtzDiag assembles the global diagonal (the
		// shared mesh is read-only), restrict it to my elements.
		diagFull := d.HelmholtzDiag(1, 0)
		diag := make([]float64, nloc)
		for li, e := range mine {
			copy(diag[li*m.Np:(li+1)*m.Np], diagFull[e*m.Np:(e+1)*m.Np])
		}

		// Preconditioned CG, SPMD.
		x := make([]float64, nloc)
		rres := make([]float64, nloc)
		z := make([]float64, nloc)
		pp := make([]float64, nloc)
		q := make([]float64, nloc)
		copy(rres, b)
		prec := func(out, in []float64) {
			for i := range in {
				out[i] = in[i] / diag[i]
			}
		}
		prec(z, rres)
		copy(pp, z)
		rz := dot(rres, z)
		tol := 1e-10 * math.Sqrt(dot(b, b))
		it := 0
		for ; it < 500; it++ {
			if math.Sqrt(dot(rres, rres)) <= tol {
				break
			}
			apply(q, pp)
			alpha := rz / dot(pp, q)
			for i := range x {
				x[i] += alpha * pp[i]
				rres[i] -= alpha * q[i]
			}
			prec(z, rres)
			rz2 := dot(rres, z)
			beta := rz2 / rz
			rz = rz2
			for i := range pp {
				pp[i] = z[i] + beta*pp[i]
			}
		}
		results[r.ID] = x
		iters[r.ID] = it
	})

	// Verify against the exact solution.
	var maxErr float64
	for q := 0; q < *p; q++ {
		for li, e := range elems[q] {
			for l := 0; l < m.Np; l++ {
				gi := e*m.Np + l
				exact := math.Sin(math.Pi*m.X[gi]) * math.Sin(math.Pi*m.Y[gi])
				maxErr = math.Max(maxErr, math.Abs(results[q][li*m.Np+l]-exact))
			}
		}
	}
	fmt.Printf("CG iterations: %d, max error vs exact solution: %.3e\n", iters[0], maxErr)
	fmt.Printf("virtual parallel time: %.3e s; total traffic: %.1f kB over %d messages\n",
		comm.MaxTime(ranks), float64(comm.TotalBytes(ranks))/1024, totalMsgs(ranks))
}

func totalMsgs(ranks []*comm.Rank) int64 {
	var n int64
	for _, r := range ranks {
		n += r.MsgsSent
	}
	return n
}
