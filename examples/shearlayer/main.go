// Shear layer roll-up (Fig. 3 of the paper): a doubly periodic double shear
// layer at Re = 10^5 that is unrunnable without stabilization; the
// Fischer–Mullen filter (α = 0.3) keeps the spectral element method stable
// through roll-up at marginal resolution. Prints vorticity extrema and an
// ASCII vorticity picture as the layers roll up.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/flowcases"
	"repro/internal/ns"
)

func main() {
	nel := flag.Int("nel", 8, "elements per direction")
	n := flag.Int("n", 8, "polynomial order")
	alpha := flag.Float64("alpha", 0.3, "filter strength (0 = unfiltered)")
	steps := flag.Int("steps", 300, "time steps (dt = 0.002)")
	flag.Parse()

	s, err := flowcases.ShearLayer(flowcases.ShearLayerConfig{
		Nel: *nel, N: *n, Rho: 30, Re: 1e5, Dt: 0.002, Alpha: *alpha, Workers: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	fmt.Printf("double shear layer: %dx%d elements, N=%d, alpha=%g\n", *nel, *nel, *n, *alpha)
	for i := 1; i <= *steps; i++ {
		st, err := s.Step()
		if err != nil {
			fmt.Printf("step %d: BLOW UP (%v) — rerun with -alpha 0.3\n", i, err)
			return
		}
		if i%50 == 0 {
			lo, hi := flowcases.FieldRange(flowcases.Vorticity(s))
			fmt.Printf("step %4d  t=%.3f  CFL=%.2f  p-iters=%3d  vorticity [%7.1f, %6.1f]\n",
				i, s.Time(), st.CFL, st.PressureIters, lo, hi)
		}
	}
	fmt.Println("\nvorticity field (coarse ASCII rendering):")
	render(s)
}

// render prints a coarse ASCII picture of the vorticity field.
func render(s *ns.Solver) {
	w := flowcases.Vorticity(s)
	m := s.M
	const nx, ny = 64, 32
	grid := make([]float64, nx*ny)
	count := make([]int, nx*ny)
	for i := range w {
		ix := int(m.X[i] * nx)
		iy := int(m.Y[i] * ny)
		if ix >= nx {
			ix = nx - 1
		}
		if iy >= ny {
			iy = ny - 1
		}
		grid[iy*nx+ix] += w[i]
		count[iy*nx+ix]++
	}
	glyphs := []byte(" .:-=+*#%@")
	lo, hi := flowcases.FieldRange(w)
	span := hi - lo
	if span == 0 {
		span = 1
	}
	for iy := ny - 1; iy >= 0; iy-- {
		line := make([]byte, nx)
		for ix := 0; ix < nx; ix++ {
			v := 0.0
			if c := count[iy*nx+ix]; c > 0 {
				v = grid[iy*nx+ix] / float64(c)
			}
			g := int((v - lo) / span * float64(len(glyphs)-1))
			if g < 0 {
				g = 0
			}
			if g >= len(glyphs) {
				g = len(glyphs) - 1
			}
			line[ix] = glyphs[g]
		}
		fmt.Println(string(line))
	}
}
