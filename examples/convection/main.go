// Buoyancy-driven convection (the Fig. 4 setting in a box): a Boussinesq
// cell heated from below, demonstrating the projection-onto-previous-
// solutions acceleration of the successive pressure solves.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/flowcases"
)

func main() {
	nel := flag.Int("nel", 6, "elements per direction")
	n := flag.Int("n", 7, "polynomial order")
	ra := flag.Float64("ra", 1e4, "buoyancy (Rayleigh-like) parameter")
	steps := flag.Int("steps", 40, "time steps")
	l := flag.Int("L", 26, "projection basis size (0 = off)")
	flag.Parse()

	s, err := flowcases.Convection(flowcases.ConvectionConfig{
		Nel: *nel, N: *n, Ra: *ra, Dt: 0.002, ProjectionL: *l, Workers: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	fmt.Printf("convection cell: %dx%d elements, N=%d, Ra=%g, projection L=%d\n",
		*nel, *nel, *n, *ra, *l)
	fmt.Printf("%6s %12s %12s %14s %12s\n", "step", "KE", "p-iters", "res before CG", "basis")
	for i := 1; i <= *steps; i++ {
		st, err := s.Step()
		if err != nil {
			log.Fatalf("step %d: %v", i, err)
		}
		if i%4 == 0 {
			fmt.Printf("%6d %12.4e %12d %14.3e %12d\n",
				i, flowcases.KineticEnergy(s), st.PressureIters, st.PressureRes0, st.ProjectionBasis)
		}
	}
	fmt.Println("\nRerun with -L 0 to see the iteration counts without projection")
	fmt.Println("(the Fig. 4 comparison: 2.5-5x more iterations, residuals orders")
	fmt.Println("of magnitude larger before each solve).")
}
