package fault

import (
	"math"
	"testing"
)

func TestParseAndDefaults(t *testing.T) {
	p, err := Parse([]byte(`{
		"seed": 7,
		"stragglers": [{"rank": 1, "factor": 3, "from": 0.01, "until": 0.02}],
		"links": [{"from": -1, "to": 2, "max_delay": 0.0002}],
		"drops": [{"from": 0, "to": -1, "prob": 0.1}],
		"pauses": [{"rank": 2, "at": 0.05, "duration": 0.01}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.RetryTimeout != DefaultRetryTimeout || p.MaxRetries != DefaultMaxRetries {
		t.Fatalf("defaults not applied: timeout %g retries %d", p.RetryTimeout, p.MaxRetries)
	}
	if !p.Active() {
		t.Fatal("plan with rules reports inactive")
	}
}

func TestParseRejectsBadPlans(t *testing.T) {
	bad := []string{
		`{"stragglers": [{"rank": 0, "factor": 0}]}`,
		`{"stragglers": [{"rank": 0, "factor": 2, "from": 1, "until": 0.5}]}`,
		`{"links": [{"from": 0, "to": 1, "max_delay": -1}]}`,
		`{"drops": [{"from": 0, "to": 1, "prob": 1.5}]}`,
		`{"pauses": [{"rank": 0, "at": 0, "duration": -1}]}`,
		`{"retry_timeout": -1}`,
		`not json`,
	}
	for _, s := range bad {
		if _, err := Parse([]byte(s)); err == nil {
			t.Errorf("Parse(%s) accepted an invalid plan", s)
		}
	}
}

func TestComputeFactorWindow(t *testing.T) {
	p := &Plan{Stragglers: []Straggler{
		{Rank: 1, Factor: 3, From: 0.01, Until: 0.02},
		{Rank: 1, Factor: 2}, // forever
	}}
	if got := p.ComputeFactor(0, 0.015); got != 1 {
		t.Fatalf("healthy rank slowed: factor %g", got)
	}
	if got := p.ComputeFactor(1, 0.015); got != 6 {
		t.Fatalf("inside window: factor %g, want 6", got)
	}
	if got := p.ComputeFactor(1, 0.5); got != 2 {
		t.Fatalf("outside window: factor %g, want 2", got)
	}
}

func TestPauseEnd(t *testing.T) {
	p := &Plan{Pauses: []Pause{{Rank: 2, At: 0.5, Duration: 0.25}}}
	if _, hit := p.PauseEnd(2, 0.4); hit {
		t.Fatal("pause before window")
	}
	if end, hit := p.PauseEnd(2, 0.625); !hit || end != 0.75 {
		t.Fatalf("pause in window: end %g hit %v", end, hit)
	}
	if _, hit := p.PauseEnd(1, 0.625); hit {
		t.Fatal("pause hit wrong rank")
	}
	if _, hit := p.PauseEnd(2, 0.75); hit {
		t.Fatal("pause window end is exclusive")
	}
}

func TestDeterministicDraws(t *testing.T) {
	a := &Plan{Seed: 42, Drops: []Drop{{From: -1, To: -1, Prob: 0.5}},
		Links: []LinkJitter{{From: -1, To: -1, MaxDelay: 1e-4}}}
	b := &Plan{Seed: 42, Drops: []Drop{{From: -1, To: -1, Prob: 0.5}},
		Links: []LinkJitter{{From: -1, To: -1, MaxDelay: 1e-4}}}
	for seq := int64(0); seq < 100; seq++ {
		if a.DropAttempt(0, 1, seq, 0) != b.DropAttempt(0, 1, seq, 0) {
			t.Fatalf("drop draw seq %d differs between identical plans", seq)
		}
		if a.SendDelay(0, 1, seq) != b.SendDelay(0, 1, seq) {
			t.Fatalf("jitter draw seq %d differs between identical plans", seq)
		}
	}
	// Different seeds decorrelate.
	c := &Plan{Seed: 43, Drops: a.Drops, Links: a.Links}
	same := 0
	for seq := int64(0); seq < 200; seq++ {
		if a.DropAttempt(0, 1, seq, 0) == c.DropAttempt(0, 1, seq, 0) {
			same++
		}
	}
	if same == 200 {
		t.Fatal("seed has no effect on drop draws")
	}
}

func TestDrawStatistics(t *testing.T) {
	p := &Plan{Seed: 9, Drops: []Drop{{From: -1, To: -1, Prob: 0.3}},
		Links: []LinkJitter{{From: -1, To: -1, MaxDelay: 2e-4}}}
	drops := 0
	var maxDelay float64
	const n = 10000
	for seq := int64(0); seq < n; seq++ {
		if p.DropAttempt(3, 5, seq, 0) {
			drops++
		}
		d := p.SendDelay(3, 5, seq)
		if d < 0 || d >= 2e-4 {
			t.Fatalf("jitter %g outside [0, max_delay)", d)
		}
		if d > maxDelay {
			maxDelay = d
		}
	}
	frac := float64(drops) / n
	if math.Abs(frac-0.3) > 0.03 {
		t.Fatalf("drop fraction %.3f far from prob 0.3", frac)
	}
	if maxDelay < 1e-4 {
		t.Fatalf("jitter never exceeds half its range (max seen %g)", maxDelay)
	}
}

func TestWildcardMatching(t *testing.T) {
	p := &Plan{Seed: 1, Drops: []Drop{{From: 0, To: 2, Prob: 1}}}
	if p.DropAttempt(1, 2, 0, 0) {
		t.Fatal("rule for 0->2 matched 1->2")
	}
	if !p.DropAttempt(0, 2, 0, 0) {
		t.Fatal("prob-1 rule did not drop")
	}
	if p.Active() != true {
		t.Fatal("Active")
	}
	var nilPlan *Plan
	if nilPlan.Active() {
		t.Fatal("nil plan active")
	}
}
