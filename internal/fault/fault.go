// Package fault defines seeded, deterministic fault plans for the simulated
// machine: per-rank straggler slowdowns, per-link latency jitter, message
// drops, and rank pauses (a stand-in for transient node loss). The paper's
// terascale numbers assume a flawless 2048-node machine; production runs at
// that scale live with degraded hardware, so comm.Network consults a Plan on
// every Send/Recv/Compute and the solver must complete anyway.
//
// Every decision is a pure function of (seed, link, per-sender message
// sequence, attempt): no shared RNG stream exists, so fault injection is
// deterministic regardless of goroutine scheduling, and the same plan seed
// yields byte-identical traces run after run. A nil *Plan injects nothing
// and costs the fault-free paths nothing but one pointer check, so runs
// without a plan stay bitwise identical to the pre-fault code.
package fault

import (
	"encoding/json"
	"fmt"
	"os"
)

// Default protocol parameters applied by Normalize when the plan leaves
// them zero.
const (
	// DefaultRetryTimeout is the sender-side retransmit timeout in virtual
	// seconds (25x the ASCI-Red message latency).
	DefaultRetryTimeout = 500e-6
	// DefaultMaxRetries bounds the retransmissions per message; exceeding it
	// makes delivery fail loudly instead of hanging the run.
	DefaultMaxRetries = 8
)

// Straggler slows one rank's local compute by Factor inside a virtual-time
// window ([From, Until); Until = 0 means forever).
type Straggler struct {
	Rank   int     `json:"rank"`
	Factor float64 `json:"factor"`          // compute-time multiplier (> 1 is slower)
	From   float64 `json:"from,omitempty"`  // window start, virtual seconds
	Until  float64 `json:"until,omitempty"` // window end; 0 = no end
}

// LinkJitter adds a seeded uniform [0, MaxDelay) extra latency to every
// message on matching links. From/To of -1 match any rank.
type LinkJitter struct {
	From     int     `json:"from"`
	To       int     `json:"to"`
	MaxDelay float64 `json:"max_delay"` // virtual seconds
}

// Drop loses messages on matching links with probability Prob per delivery
// attempt (retransmissions redraw). From/To of -1 match any rank.
type Drop struct {
	From int     `json:"from"`
	To   int     `json:"to"`
	Prob float64 `json:"prob"`
}

// Pause freezes one rank for Duration virtual seconds starting at virtual
// time At: any operation the rank would start inside the window waits until
// the window ends. It models a transient node loss (the node comes back
// with its state intact; permanent loss is a restart from a checkpoint).
type Pause struct {
	Rank     int     `json:"rank"`
	At       float64 `json:"at"`
	Duration float64 `json:"duration"`
}

// Plan is a complete deterministic fault schedule plus the recovery-protocol
// parameters of the transport (retransmit timeout, retry bound).
type Plan struct {
	Seed         int64        `json:"seed"`
	RetryTimeout float64      `json:"retry_timeout,omitempty"` // virtual seconds; 0 = default
	MaxRetries   int          `json:"max_retries,omitempty"`   // 0 = default
	Stragglers   []Straggler  `json:"stragglers,omitempty"`
	Links        []LinkJitter `json:"links,omitempty"`
	Drops        []Drop       `json:"drops,omitempty"`
	Pauses       []Pause      `json:"pauses,omitempty"`
}

// Parse decodes, validates, and normalizes a JSON plan.
func Parse(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p.Normalize()
	return &p, nil
}

// Load reads and parses a plan file.
func Load(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	p, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("fault: %s: %w", path, err)
	}
	return p, nil
}

// Validate rejects physically meaningless entries.
func (p *Plan) Validate() error {
	for i, s := range p.Stragglers {
		if s.Factor <= 0 {
			return fmt.Errorf("fault: straggler %d: factor %g must be > 0", i, s.Factor)
		}
		if s.Until != 0 && s.Until <= s.From {
			return fmt.Errorf("fault: straggler %d: until %g <= from %g", i, s.Until, s.From)
		}
	}
	for i, l := range p.Links {
		if l.MaxDelay < 0 {
			return fmt.Errorf("fault: link %d: negative max_delay %g", i, l.MaxDelay)
		}
	}
	for i, d := range p.Drops {
		if d.Prob < 0 || d.Prob > 1 {
			return fmt.Errorf("fault: drop %d: prob %g outside [0,1]", i, d.Prob)
		}
	}
	for i, ps := range p.Pauses {
		if ps.Duration < 0 {
			return fmt.Errorf("fault: pause %d: negative duration %g", i, ps.Duration)
		}
	}
	if p.RetryTimeout < 0 {
		return fmt.Errorf("fault: negative retry_timeout %g", p.RetryTimeout)
	}
	if p.MaxRetries < 0 {
		return fmt.Errorf("fault: negative max_retries %d", p.MaxRetries)
	}
	return nil
}

// Normalize fills defaulted protocol parameters in place.
func (p *Plan) Normalize() {
	if p.RetryTimeout == 0 {
		p.RetryTimeout = DefaultRetryTimeout
	}
	if p.MaxRetries == 0 {
		p.MaxRetries = DefaultMaxRetries
	}
}

// matchLink reports whether a (from, to) rule term matches a concrete link.
func matchLink(ruleFrom, ruleTo, from, to int) bool {
	return (ruleFrom == -1 || ruleFrom == from) && (ruleTo == -1 || ruleTo == to)
}

// splitmix64 is the finalizer of the SplitMix64 generator: a bijective
// avalanche mix, the standard way to turn structured integers into
// independent uniform bits.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// rand01 maps the seed and the given identifiers to a uniform [0,1) double.
// Deterministic by construction: no stream state, so concurrent ranks never
// contend or perturb each other's draws.
func (p *Plan) rand01(vals ...int64) float64 {
	h := splitmix64(uint64(p.Seed))
	for _, v := range vals {
		h = splitmix64(h ^ uint64(v))
	}
	return float64(h>>11) / float64(uint64(1)<<53)
}

// ComputeFactor returns the compute-time multiplier for rank at virtual
// time t (the product of all matching straggler windows; 1 = healthy).
func (p *Plan) ComputeFactor(rank int, t float64) float64 {
	f := 1.0
	for _, s := range p.Stragglers {
		if s.Rank != rank {
			continue
		}
		if t < s.From || (s.Until != 0 && t >= s.Until) {
			continue
		}
		f *= s.Factor
	}
	return f
}

// SendDelay returns the extra seeded latency for message seq on from->to
// (the sum over matching jitter rules of a uniform [0, MaxDelay) draw).
func (p *Plan) SendDelay(from, to int, seq int64) float64 {
	var d float64
	for i, l := range p.Links {
		if !matchLink(l.From, l.To, from, to) || l.MaxDelay == 0 {
			continue
		}
		d += l.MaxDelay * p.rand01(1, int64(i), int64(from), int64(to), seq)
	}
	return d
}

// DropAttempt reports whether delivery attempt `attempt` (0 = first try) of
// message seq on from->to is lost.
func (p *Plan) DropAttempt(from, to int, seq int64, attempt int) bool {
	for i, d := range p.Drops {
		if !matchLink(d.From, d.To, from, to) || d.Prob == 0 {
			continue
		}
		if p.rand01(2, int64(i), int64(from), int64(to), seq, int64(attempt)) < d.Prob {
			return true
		}
	}
	return false
}

// PauseEnd reports whether rank is inside a pause window at virtual time t,
// and if so when the window (the latest matching one) ends.
func (p *Plan) PauseEnd(rank int, t float64) (float64, bool) {
	end := t
	hit := false
	for _, ps := range p.Pauses {
		if ps.Rank != rank || ps.Duration == 0 {
			continue
		}
		if t >= ps.At && t < ps.At+ps.Duration && ps.At+ps.Duration > end {
			end = ps.At + ps.Duration
			hit = true
		}
	}
	return end, hit
}

// Active reports whether the plan can inject anything at all.
func (p *Plan) Active() bool {
	if p == nil {
		return false
	}
	return len(p.Stragglers) > 0 || len(p.Links) > 0 || len(p.Drops) > 0 || len(p.Pauses) > 0
}
