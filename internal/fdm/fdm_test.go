package fdm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fem"
	"repro/internal/la"
)

// buildSeparable2D expands B_y⊗A_x + A_y⊗B_x densely for verification.
func buildSeparable2D(ax, bx []float64, nx int, ay, by []float64, ny int) []float64 {
	n := nx * ny
	out := make([]float64, n*n)
	for j1 := 0; j1 < ny; j1++ {
		for i1 := 0; i1 < nx; i1++ {
			for j2 := 0; j2 < ny; j2++ {
				for i2 := 0; i2 < nx; i2++ {
					r := j1*nx + i1
					c := j2*nx + i2
					out[r*n+c] = by[j1*ny+j2]*ax[i1*nx+i2] + ay[j1*ny+j2]*bx[i1*nx+i2]
				}
			}
		}
	}
	return out
}

func spdPair(t *testing.T, n int, seed int64) (a, b []float64) {
	t.Helper()
	// 1D FEM pair on a random graded grid: A SPD after Dirichlet trim.
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n+3)
	xs[0] = 0
	for i := 1; i < len(xs); i++ {
		xs[i] = xs[i-1] + 0.5 + rng.Float64()
	}
	aFull, bd := fem.Line1D(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i + 1
	}
	a = fem.Restrict(aFull, n+3, idx)
	b = make([]float64, n*n)
	for i := 0; i < n; i++ {
		b[i*n+i] = bd[idx[i]]
	}
	return a, b
}

func TestFDM2DExactInverse(t *testing.T) {
	nx, ny := 6, 5
	ax, bx := spdPair(t, nx, 1)
	ay, by := spdPair(t, ny, 2)
	s, err := New2D(ax, bx, nx, ay, by, ny)
	if err != nil {
		t.Fatal(err)
	}
	dense := buildSeparable2D(ax, bx, nx, ay, by, ny)
	n := nx * ny
	rng := rand.New(rand.NewSource(3))
	r := make([]float64, n)
	for i := range r {
		r[i] = rng.NormFloat64()
	}
	got := make([]float64, n)
	work := make([]float64, s.WorkLen2D())
	s.Apply(got, r, work)
	// Check A * got == r.
	check := make([]float64, n)
	la.MatVec(check, dense, got, n, n)
	for i := range r {
		if math.Abs(check[i]-r[i]) > 1e-9 {
			t.Fatalf("FDM not an exact inverse at %d: %g vs %g", i, check[i], r[i])
		}
	}
	if s.Flops() <= 0 {
		t.Error("flop count must be positive")
	}
}

func TestFDM3DExactInverse(t *testing.T) {
	nx, ny, nz := 4, 3, 5
	ax, bx := spdPair(t, nx, 4)
	ay, by := spdPair(t, ny, 5)
	az, bz := spdPair(t, nz, 6)
	s, err := New3D(ax, bx, nx, ay, by, ny, az, bz, nz)
	if err != nil {
		t.Fatal(err)
	}
	n := nx * ny * nz
	// Dense operator: Bz⊗By⊗Ax + Bz⊗Ay⊗Bx + Az⊗By⊗Bx.
	dense := make([]float64, n*n)
	idx := func(i, j, k int) int { return (k*ny+j)*nx + i }
	for k1 := 0; k1 < nz; k1++ {
		for j1 := 0; j1 < ny; j1++ {
			for i1 := 0; i1 < nx; i1++ {
				for k2 := 0; k2 < nz; k2++ {
					for j2 := 0; j2 < ny; j2++ {
						for i2 := 0; i2 < nx; i2++ {
							v := bz[k1*nz+k2]*by[j1*ny+j2]*ax[i1*nx+i2] +
								bz[k1*nz+k2]*ay[j1*ny+j2]*bx[i1*nx+i2] +
								az[k1*nz+k2]*by[j1*ny+j2]*bx[i1*nx+i2]
							dense[idx(i1, j1, k1)*n+idx(i2, j2, k2)] = v
						}
					}
				}
			}
		}
	}
	rng := rand.New(rand.NewSource(7))
	r := make([]float64, n)
	for i := range r {
		r[i] = rng.NormFloat64()
	}
	got := make([]float64, n)
	work := make([]float64, s.WorkLen3D())
	s.Apply(got, r, work)
	check := make([]float64, n)
	la.MatVec(check, dense, got, n, n)
	for i := range r {
		if math.Abs(check[i]-r[i]) > 1e-8 {
			t.Fatalf("3D FDM not exact at %d: %g vs %g", i, check[i], r[i])
		}
	}
	if s.Flops() <= 0 {
		t.Error("flop count must be positive")
	}
}

func TestFDMNullModeClamped(t *testing.T) {
	// Pure Neumann 1D operators have a zero eigenvalue in each direction;
	// the (0,0) combination must be clamped, not inverted.
	n := 4
	xs := []float64{0, 1, 2, 3}
	a1, bd := fem.Line1D(xs)
	_ = n
	nn := len(xs)
	b1 := make([]float64, nn*nn)
	for i := 0; i < nn; i++ {
		b1[i*nn+i] = bd[i]
	}
	s, err := New2D(a1, b1, nn, a1, b1, nn)
	if err != nil {
		t.Fatal(err)
	}
	// Applying to a constant (the null mode) must not produce Inf/NaN.
	r := make([]float64, nn*nn)
	for i := range r {
		r[i] = 1
	}
	out := make([]float64, nn*nn)
	work := make([]float64, s.WorkLen2D())
	s.Apply(out, r, work)
	for i, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("null mode not clamped: out[%d] = %g", i, v)
		}
	}
}
