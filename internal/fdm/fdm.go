// Package fdm implements the fast diagonalization method (Lynch, Rice &
// Thomas 1964) used by the paper's overlapping Schwarz preconditioner
// (Sec. 5): the inverse of a separable operator
//
//	Ã = B_y ⊗ A_x + A_y ⊗ B_x            (2D, eq. (2) of the paper)
//
// is applied as (S_y ⊗ S_x)[Λ_y ⊕ Λ_x]⁻¹(S_yᵀ B_y ⊗ S_xᵀ B_x) … with the
// B-orthonormal generalized eigenvectors S solving A z = λ B z, the whole
// local solve costs the same O(N^{d+1}) as a matrix-vector product.
package fdm

import (
	"fmt"

	"repro/internal/la"
	"repro/internal/tensor"
)

// Solver2D applies Ã⁻¹ for one separable 2D operator.
type Solver2D struct {
	nx, ny   int
	Sx, Sy   []float64 // eigenvector matrices (columns B-orthonormal)
	SxT, SyT []float64
	Dinv     []float64 // 1/(λx_i + λy_j), 0 where the sum is (near) zero
}

// eps below which an eigenvalue sum is treated as a null mode.
const nullEps = 1e-12

// New2D builds the solver from the 1D stiffness/mass pairs (ax, bx) and
// (ay, by), each n x n dense with b symmetric positive definite.
func New2D(ax, bx []float64, nx int, ay, by []float64, ny int) (*Solver2D, error) {
	lx, zx, err := la.GenSymEig(ax, bx, nx)
	if err != nil {
		return nil, fmt.Errorf("fdm: x eigenproblem: %w", err)
	}
	ly, zy, err := la.GenSymEig(ay, by, ny)
	if err != nil {
		return nil, fmt.Errorf("fdm: y eigenproblem: %w", err)
	}
	s := &Solver2D{nx: nx, ny: ny, Sx: zx, Sy: zy}
	s.SxT = transposeOf(zx, nx)
	s.SyT = transposeOf(zy, ny)
	s.Dinv = make([]float64, nx*ny)
	scale := maxAbs(lx) + maxAbs(ly)
	if scale == 0 {
		scale = 1
	}
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			d := lx[i] + ly[j]
			if d > nullEps*scale || d < -nullEps*scale {
				s.Dinv[j*nx+i] = 1 / d
			}
		}
	}
	return s, nil
}

// transposeOf returns Zᵀ. With B-orthonormal eigenvectors (Zᵀ B Z = I) the
// operator factorizes as Ã = (B_yZ_y ⊗ B_xZ_x)(Λ_y ⊕ Λ_x)(Z_yᵀ ⊗ Z_xᵀ)·…,
// whose inverse is exactly (Z_y ⊗ Z_x)(Λ_y ⊕ Λ_x)⁻¹(Z_yᵀ ⊗ Z_xᵀ): the
// analysis stage uses the plain transpose.
func transposeOf(z []float64, n int) []float64 {
	t := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			t[j*n+i] = z[i*n+j]
		}
	}
	return t
}

func maxAbs(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if x > m {
			m = x
		} else if -x > m {
			m = -x
		}
	}
	return m
}

// Apply computes out = Ã⁻¹ in (sizes nx*ny, r fastest). work must have
// length ≥ WorkLen2D(); out must not alias in or work.
func (s *Solver2D) Apply(out, in, work []float64) {
	n := s.nx * s.ny
	w1, w2 := work[:n], work[n:2*n]
	tensor.Apply2D(w1, s.SxT, s.SyT, in, w2, s.nx, s.nx, s.ny, s.ny)
	for i := 0; i < n; i++ {
		w1[i] *= s.Dinv[i]
	}
	tensor.Apply2D(out, s.Sx, s.Sy, w1, w2, s.nx, s.nx, s.ny, s.ny)
}

// WorkLen2D returns the scratch size Apply requires.
func (s *Solver2D) WorkLen2D() int { return 2 * s.nx * s.ny }

// Flops returns the operation count of one Apply.
func (s *Solver2D) Flops() int64 {
	return 2*tensor.FlopsApply2D(s.nx, s.nx, s.ny, s.ny) + int64(s.nx*s.ny)
}

// Solver3D applies Ã⁻¹ for a separable 3D operator
// B⊗B⊗A + B⊗A⊗B + A⊗B⊗B.
type Solver3D struct {
	nx, ny, nz    int
	Sx, Sy, Sz    []float64
	SxT, SyT, SzT []float64
	Dinv          []float64
}

// New3D builds the 3D fast diagonalization solver.
func New3D(ax, bx []float64, nx int, ay, by []float64, ny int, az, bz []float64, nz int) (*Solver3D, error) {
	lx, zx, err := la.GenSymEig(ax, bx, nx)
	if err != nil {
		return nil, fmt.Errorf("fdm: x eigenproblem: %w", err)
	}
	ly, zy, err := la.GenSymEig(ay, by, ny)
	if err != nil {
		return nil, fmt.Errorf("fdm: y eigenproblem: %w", err)
	}
	lz, zz, err := la.GenSymEig(az, bz, nz)
	if err != nil {
		return nil, fmt.Errorf("fdm: z eigenproblem: %w", err)
	}
	s := &Solver3D{nx: nx, ny: ny, nz: nz, Sx: zx, Sy: zy, Sz: zz}
	s.SxT = transposeOf(zx, nx)
	s.SyT = transposeOf(zy, ny)
	s.SzT = transposeOf(zz, nz)
	s.Dinv = make([]float64, nx*ny*nz)
	scale := maxAbs(lx) + maxAbs(ly) + maxAbs(lz)
	if scale == 0 {
		scale = 1
	}
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				d := lx[i] + ly[j] + lz[k]
				if d > nullEps*scale || d < -nullEps*scale {
					s.Dinv[(k*ny+j)*nx+i] = 1 / d
				}
			}
		}
	}
	return s, nil
}

// Apply computes out = Ã⁻¹ in. work must have length ≥
// tensor.Work3DLen(nx,nx,ny,ny,nz,nz) + nx*ny*nz.
func (s *Solver3D) Apply(out, in, work []float64) {
	n := s.nx * s.ny * s.nz
	tw := work[:len(work)-n]
	tmp := work[len(work)-n:]
	tensor.Apply3D(tmp, s.SxT, s.SyT, s.SzT, in, tw, s.nx, s.nx, s.ny, s.ny, s.nz, s.nz)
	for i := 0; i < n; i++ {
		tmp[i] *= s.Dinv[i]
	}
	tensor.Apply3D(out, s.Sx, s.Sy, s.Sz, tmp, tw, s.nx, s.nx, s.ny, s.ny, s.nz, s.nz)
}

// WorkLen3D returns the scratch size Apply requires.
func (s *Solver3D) WorkLen3D() int {
	return tensor.Work3DLen(s.nx, s.nx, s.ny, s.ny, s.nz, s.nz) + s.nx*s.ny*s.nz
}

// Flops returns the operation count of one Apply.
func (s *Solver3D) Flops() int64 {
	return 2*tensor.FlopsApply3D(s.nx, s.nx, s.ny, s.ny, s.nz, s.nz) + int64(s.nx*s.ny*s.nz)
}
