package sem

// pool.go implements the persistent element-loop worker pool behind
// Disc.ForElements. The seed spawned W goroutines per call, which put the
// scheduler on the per-step hot path (~25k allocs per channel step at W=4,
// and W4 never beat W1). The pool instead keeps W-1 long-lived workers, each
// pinned to one contiguous element chunk computed once at construction, and
// wakes them with a buffered-channel send — allocation-free in steady state,
// and deterministic: the (element, worker) assignment never depends on
// scheduling, so disjoint-block loops produce bitwise-identical fields for
// any worker count.

import (
	"runtime"
	"sync"
)

// elemPool runs an element loop over fixed contiguous chunks. Worker 0 is
// the calling goroutine; workers 1..len(chunks)-1 are long-lived goroutines
// parked on their wake channel.
type elemPool struct {
	chunks   [][2]int        // per-worker [e0, e1) element ranges
	wake     []chan struct{} // one per extra worker (chunk index i+1)
	stop     chan struct{}   // closed by shutdown (Disc.Close or finalizer)
	stopOnce sync.Once       // makes shutdown idempotent
	wg       sync.WaitGroup
	fn       func(e, w int) // current loop body; nil between runs
}

// newElemPool partitions k elements into up to `workers` contiguous chunks
// and starts the extra workers. With fewer than two chunks the pool is inert
// (run degenerates to a serial loop and no goroutines exist).
func newElemPool(k, workers int) *elemPool {
	p := &elemPool{stop: make(chan struct{})}
	chunk := (k + workers - 1) / workers
	for w := 0; w < workers; w++ {
		e0 := w * chunk
		e1 := e0 + chunk
		if e1 > k {
			e1 = k
		}
		if e0 >= e1 {
			break
		}
		p.chunks = append(p.chunks, [2]int{e0, e1})
	}
	if len(p.chunks) > 1 {
		p.wake = make([]chan struct{}, len(p.chunks)-1)
		for i := range p.wake {
			p.wake[i] = make(chan struct{}, 1)
			go p.worker(p.wake[i], i+1)
		}
	}
	return p
}

// worker is the long-lived loop of one extra worker. It captures only the
// pool (never the Disc), so the Disc can become unreachable and its
// finalizer can shut the pool down.
func (p *elemPool) worker(wake chan struct{}, w int) {
	e0, e1 := p.chunks[w][0], p.chunks[w][1]
	for {
		select {
		case <-p.stop:
			return
		case <-wake:
			fn := p.fn
			for e := e0; e < e1; e++ {
				fn(e, w)
			}
			p.wg.Done()
		}
	}
}

// run executes fn over all elements: the extra workers take chunks 1..W-1
// while the caller runs chunk 0, then all join. The channel send/receive
// pairs order the p.fn write before every worker read, and the WaitGroup
// orders all worker writes before run returns. fn is cleared afterwards so
// the pool retains no reference into the caller between runs.
func (p *elemPool) run(fn func(e, w int)) {
	p.fn = fn
	p.wg.Add(len(p.wake))
	for _, ch := range p.wake {
		ch <- struct{}{}
	}
	for e, e1 := p.chunks[0][0], p.chunks[0][1]; e < e1; e++ {
		fn(e, 0)
	}
	p.wg.Wait()
	p.fn = nil
}

// parallel reports whether dispatching to the pool can help right now:
// it needs extra workers and more than one scheduling slot. At
// GOMAXPROCS=1 the chunks would run sequentially anyway, so the caller
// inlines the serial loop and pays zero coordination overhead (results are
// bitwise identical either way — the parallel path exists purely for speed).
func (p *elemPool) parallel() bool {
	return p != nil && len(p.wake) > 0 && runtime.GOMAXPROCS(0) > 1
}

// shutdown releases the workers. Called by Disc.Close and, as a backstop,
// by the owning Disc's finalizer; idempotent, so both may fire.
func (p *elemPool) shutdown() {
	if p == nil {
		return
	}
	p.stopOnce.Do(func() { close(p.stop) })
}
