package sem

// elem.go exposes the per-element operator kernels on rank-local block
// storage for SPMD execution on the simulated machine (internal/parrun): a
// rank holding a subset of elements applies the stiffness, gradient, filter
// and Helmholtz-diagonal kernels of one global element e to local blocks of
// length Np, with scratch drawn from the Disc's concurrent pool. These are
// the same kernels the serial full-mesh loops run — the serial paths
// delegate to them — so a distributed stepper reproduces the serial
// arithmetic exactly, element by element.

import "repro/internal/tensor"

// GradElement computes element e's physical-space gradient of the local
// nodal block ue (length Np) into the local blocks o0, o1 (and o2 in 3D;
// pass nil in 2D). Scratch comes from the internal pool, so concurrent
// callers may share one Disc.
func (d *Disc) GradElement(o0, o1, o2, ue []float64, e int) {
	sp := d.scratchPool.Get().(*[]float64)
	d.gradElementBlocks(o0, o1, o2, ue, e, *sp)
	d.scratchPool.Put(sp)
}

// gradElementBlocks is the block-local gradient kernel shared by the serial
// full-mesh loop and the distributed per-rank path.
func (d *Disc) gradElementBlocks(o0, o1, o2, ue []float64, e int, s []float64) {
	m := d.M
	np1 := m.N + 1
	np := m.Np
	off := e * np
	if m.Dim == 2 {
		ur, us := s[:np], s[np:2*np]
		tensor.ApplyR2D(ur, m.D, ue, np1, np1, np1)
		tensor.ApplyS2D(us, m.D, ue, np1, np1, np1)
		rx, ry, sx, sy := m.RX[0], m.RX[1], m.RX[2], m.RX[3]
		for i := 0; i < np; i++ {
			o0[i] = rx[off+i]*ur[i] + sx[off+i]*us[i]
			o1[i] = ry[off+i]*ur[i] + sy[off+i]*us[i]
		}
		return
	}
	ur, us, ut := s[:np], s[np:2*np], s[2*np:3*np]
	tensor.ApplyR3D(ur, m.D, ue, np1, np1, np1, np1)
	tensor.ApplyS3D(us, m.D, ue, np1, np1, np1, np1)
	tensor.ApplyT3D(ut, m.D, ue, np1, np1, np1, np1)
	for i := 0; i < np; i++ {
		gi := off + i
		o0[i] = m.RX[0][gi]*ur[i] + m.RX[3][gi]*us[i] + m.RX[6][gi]*ut[i]
		o1[i] = m.RX[1][gi]*ur[i] + m.RX[4][gi]*us[i] + m.RX[7][gi]*ut[i]
		o2[i] = m.RX[2][gi]*ur[i] + m.RX[5][gi]*us[i] + m.RX[8][gi]*ut[i]
	}
}

// FilterElement applies the tensor-product filter to the local block ue in
// place (element index is irrelevant: the filter is geometry-free). Scratch
// comes from the internal pool, so concurrent callers may share one Disc.
func (d *Disc) FilterElement(f *Filter, ue []float64) {
	if f == nil || f.Alpha == 0 {
		return
	}
	sp := d.scratchPool.Get().(*[]float64)
	d.filterElementBlock(f, ue, *sp)
	d.scratchPool.Put(sp)
}

// filterElementBlock filters one local block in place with caller scratch.
func (d *Disc) filterElementBlock(f *Filter, ue []float64, s []float64) {
	m := d.M
	np1 := f.np1
	np := m.Np
	if m.Dim == 2 {
		work, out := s[:np], s[np:2*np]
		tensor.Apply2D(out, f.F, f.F, ue, work, np1, np1, np1, np1)
		copy(ue, out)
		return
	}
	need := tensor.Work3DLen(np1, np1, np1, np1, np1, np1)
	work := s[:need]
	out := s[need : need+np]
	tensor.Apply3D(out, f.F, f.F, f.F, ue, work, np1, np1, np1, np1, np1, np1)
	copy(ue, out)
}

// HelmholtzDiagElement writes element e's unassembled diagonal of
// h1·A + h2·B into the local block de (length Np). The caller assembles the
// blocks (distributed gs sum) and sets Dirichlet rows to one, mirroring the
// serial HelmholtzDiag.
func (d *Disc) HelmholtzDiagElement(de []float64, e int, h1, h2 float64) {
	m := d.M
	np1 := m.N + 1
	np := m.Np
	off := e * np
	if m.Dim == 2 {
		for j := 0; j < np1; j++ {
			for i := 0; i < np1; i++ {
				var s float64
				for p := 0; p < np1; p++ {
					dpi := m.D[p*np1+i]
					s += dpi * dpi * m.G[0][off+j*np1+p]
				}
				for p := 0; p < np1; p++ {
					dpj := m.D[p*np1+j]
					s += dpj * dpj * m.G[2][off+p*np1+i]
				}
				s += 2 * m.D[i*np1+i] * m.D[j*np1+j] * m.G[1][off+j*np1+i]
				l := j*np1 + i
				de[l] = h1*s + h2*m.B[off+l]
			}
		}
		return
	}
	idx := func(i, j, k int) int { return off + (k*np1+j)*np1 + i }
	for k := 0; k < np1; k++ {
		for j := 0; j < np1; j++ {
			for i := 0; i < np1; i++ {
				var s float64
				for p := 0; p < np1; p++ {
					dpi := m.D[p*np1+i]
					s += dpi * dpi * m.G[0][idx(p, j, k)]
					dpj := m.D[p*np1+j]
					s += dpj * dpj * m.G[3][idx(i, p, k)]
					dpk := m.D[p*np1+k]
					s += dpk * dpk * m.G[5][idx(i, j, p)]
				}
				dii, djj, dkk := m.D[i*np1+i], m.D[j*np1+j], m.D[k*np1+k]
				s += 2 * dii * djj * m.G[1][idx(i, j, k)]
				s += 2 * dii * dkk * m.G[2][idx(i, j, k)]
				s += 2 * djj * dkk * m.G[4][idx(i, j, k)]
				l := (k*np1+j)*np1 + i
				de[l] = h1*s + h2*m.B[off+l]
			}
		}
	}
}
