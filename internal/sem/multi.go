package sem

// multi.go applies the stiffness/Helmholtz operators to several fields in
// one element sweep — the multi-RHS form behind the batched velocity-
// component solves. Batching pays twice: the element's geometric factors and
// derivative matrices are loaded once for all columns, and the r-direction
// tensor contraction becomes one wider C = U·Dᵀ product (the input columns
// stack contiguously along MulABt's row dimension). Because every MulABt
// kernel computes each output row as one sequential dot product, the wide
// product is bitwise identical to the per-column calls — batching changes
// speed, never fields. The s- (and 3D t-) direction contractions keep their
// per-column slab structure, which is already identical by construction.

import "repro/internal/tensor"

// batchBuffers returns the number of nc·Np-sized scratch blocks one worker
// needs for a batched stiffness application.
func (d *Disc) batchBuffers() int {
	if d.M.Dim == 3 {
		return 8
	}
	return 6
}

// EnsureBatch sizes the per-worker batch scratch for up to nc simultaneous
// right-hand sides, so later StiffnessLocalMulti/HelmholtzMulti calls
// allocate nothing. Call at solver build; not concurrent-safe with running
// operator applications.
func (d *Disc) EnsureBatch(nc int) {
	if nc <= d.batchCols {
		return
	}
	d.batchCols = nc
	d.batchScratch = make([][]float64, d.Workers)
	for w := range d.batchScratch {
		d.batchScratch[w] = make([]float64, d.batchBuffers()*nc*d.M.Np)
	}
	if d.stiffMultiLoop == nil {
		d.stiffMultiLoop = func(e, w int) { d.stiffnessMultiOneElement(e, d.batchScratch[w]) }
	}
}

// StiffnessLocalMulti applies the unassembled element stiffness to every
// column: outs[c] = A us[c], one element sweep for all columns. Results are
// bitwise identical to per-column StiffnessLocal calls.
func (d *Disc) StiffnessLocalMulti(outs, us [][]float64) {
	nc := len(us)
	if nc == 1 {
		d.StiffnessLocal(outs[0], us[0])
		return
	}
	d.EnsureBatch(nc)
	m := d.M
	np1 := m.N + 1
	np := m.Np
	d.curMultiOuts, d.curMultiIns = outs, us
	d.forElements(d.stiffMultiLoop)
	d.curMultiOuts, d.curMultiIns = nil, nil
	if m.Dim == 2 {
		d.flops.Add(int64(nc) * int64(m.K) * (4*2*int64(np1)*int64(np1)*int64(np1) + 7*int64(np)))
		return
	}
	n4 := int64(np1) * int64(np1) * int64(np1) * int64(np1)
	d.flops.Add(int64(nc) * int64(m.K) * (12*n4 + 17*int64(np)))
}

// HelmholtzMulti applies outs[c] = M QQᵀ (h1·A + h2·B) us[c] for all columns
// with one batched stiffness sweep; the pointwise mass term and the
// gather-scatter assembly stay per column and match Helmholtz exactly.
func (d *Disc) HelmholtzMulti(outs, us [][]float64, h1, h2 float64) {
	d.StiffnessLocalMulti(outs, us)
	b := d.M.B
	for c := range outs {
		out, u := outs[c], us[c]
		if h1 != 1 {
			for i := range out {
				out[i] *= h1
			}
		}
		for i := range out {
			out[i] += h2 * b[i] * u[i]
		}
		d.flops.Add(3 * int64(len(out)))
		d.Assemble(out)
	}
}

// stiffnessMultiOneElement applies element e's stiffness to every current
// input column using the worker's column-stacked scratch s (length
// batchBuffers()·nc·Np).
func (d *Disc) stiffnessMultiOneElement(e int, s []float64) {
	m := d.M
	np1 := m.N + 1
	np := m.Np
	ins, outs := d.curMultiIns, d.curMultiOuts
	nc := len(ins)
	cn := nc * np
	if m.Dim == 2 {
		ub, ob := s[:cn], s[cn:2*cn]
		ur, us := s[2*cn:3*cn], s[3*cn:4*cn]
		tr, ts := s[4*cn:5*cn], s[5*cn:6*cn]
		for c, u := range ins {
			copy(ub[c*np:(c+1)*np], u[e*np:(e+1)*np])
		}
		// One wide r-contraction over all columns (rows stack along ns).
		tensor.ApplyR2D(ur, m.D, ub, np1, np1, np1*nc)
		for c := 0; c < nc; c++ {
			tensor.ApplyS2D(us[c*np:(c+1)*np], m.D, ub[c*np:(c+1)*np], np1, np1, np1)
		}
		g0, g1, g2 := m.G[0][e*np:], m.G[1][e*np:], m.G[2][e*np:]
		for c := 0; c < nc; c++ {
			urc, usc := ur[c*np:(c+1)*np], us[c*np:(c+1)*np]
			trc, tsc := tr[c*np:(c+1)*np], ts[c*np:(c+1)*np]
			for i := 0; i < np; i++ {
				trc[i] = g0[i]*urc[i] + g1[i]*usc[i]
				tsc[i] = g1[i]*urc[i] + g2[i]*usc[i]
			}
		}
		tensor.ApplyR2D(ob, d.Dt, tr, np1, np1, np1*nc)
		for c := 0; c < nc; c++ {
			tensor.ApplyS2D(us[c*np:(c+1)*np], d.Dt, ts[c*np:(c+1)*np], np1, np1, np1)
		}
		for c, o := range outs {
			oe := o[e*np : (e+1)*np]
			obc, usc := ob[c*np:(c+1)*np], us[c*np:(c+1)*np]
			for i := 0; i < np; i++ {
				oe[i] = obc[i] + usc[i]
			}
		}
		return
	}
	ub, ob := s[:cn], s[cn:2*cn]
	ur, us, ut := s[2*cn:3*cn], s[3*cn:4*cn], s[4*cn:5*cn]
	tr, ts, tt := s[5*cn:6*cn], s[6*cn:7*cn], s[7*cn:8*cn]
	for c, u := range ins {
		copy(ub[c*np:(c+1)*np], u[e*np:(e+1)*np])
	}
	// r: one wide MulABt (rows stack along ns·nt); s: the stacked field is
	// nt·nc contiguous slabs, so one ApplyS3D call covers every column with
	// the exact per-slab products of the serial path; t: per column (t is the
	// slowest index, the stack breaks its layout).
	tensor.ApplyR3D(ur, m.D, ub, np1, np1, np1, np1*nc)
	tensor.ApplyS3D(us, m.D, ub, np1, np1, np1, np1*nc)
	for c := 0; c < nc; c++ {
		tensor.ApplyT3D(ut[c*np:(c+1)*np], m.D, ub[c*np:(c+1)*np], np1, np1, np1, np1)
	}
	g := m.G
	off := e * np
	for c := 0; c < nc; c++ {
		urc, usc, utc := ur[c*np:(c+1)*np], us[c*np:(c+1)*np], ut[c*np:(c+1)*np]
		trc, tsc, ttc := tr[c*np:(c+1)*np], ts[c*np:(c+1)*np], tt[c*np:(c+1)*np]
		for i := 0; i < np; i++ {
			r, sv, tv := urc[i], usc[i], utc[i]
			trc[i] = g[0][off+i]*r + g[1][off+i]*sv + g[2][off+i]*tv
			tsc[i] = g[1][off+i]*r + g[3][off+i]*sv + g[4][off+i]*tv
			ttc[i] = g[2][off+i]*r + g[4][off+i]*sv + g[5][off+i]*tv
		}
	}
	tensor.ApplyR3D(ob, d.Dt, tr, np1, np1, np1, np1*nc)
	tensor.ApplyS3D(us, d.Dt, ts, np1, np1, np1, np1*nc)
	for c := 0; c < nc; c++ {
		tensor.ApplyT3D(ut[c*np:(c+1)*np], d.Dt, tt[c*np:(c+1)*np], np1, np1, np1, np1)
	}
	for c, o := range outs {
		oe := o[e*np : (e+1)*np]
		obc, usc, utc := ob[c*np:(c+1)*np], us[c*np:(c+1)*np], ut[c*np:(c+1)*np]
		for i := 0; i < np; i++ {
			// Association matches the serial `oe += us + ut`.
			oe[i] = obc[i] + (usc[i] + utc[i])
		}
	}
}
