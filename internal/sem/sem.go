// Package sem assembles the matrix-free spectral element operators of
// Secs. 2–3 of the paper on top of a mesh: the deformed-geometry stiffness
// (discrete Laplacian, eq. (4)), the diagonal mass matrix, Helmholtz
// operators, physical-space gradients, and the Fischer–Mullen stabilizing
// filter. All operators act on element-local vectors (length K·Np) and are
// assembled with the gather–scatter; Dirichlet conditions enter through a
// multiplicative mask. An element-loop worker pool mirrors the paper's
// dual-processor loop-splitting mode, and every application is counted by
// an analytic flop meter for the performance model.
package sem

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/gs"
	"repro/internal/la"
	"repro/internal/mesh"
	"repro/internal/poly"
	"repro/internal/tensor"
)

// Disc is a discretized scalar-field operator set over one mesh.
type Disc struct {
	M    *mesh.Mesh
	GS   *gs.Handle
	Mask []float64 // 1 on free nodes, 0 on Dirichlet nodes (nil = no mask)
	Mult []float64 // nodal multiplicity

	Workers int // element-loop parallelism (1 = serial)

	Dt      []float64 // transpose of the 1D derivative matrix
	flops   atomic.Int64
	pool    *elemPool   // persistent element-loop workers (nil when serial)
	scratch [][]float64 // per-worker scratch, each 6*Np (2D) / 9*Np (3D)
	// scratchPool hands out extra scratch slices (*[]float64, same size as
	// the per-worker ones) to entry points that may run concurrently on one
	// Disc outside the worker pool (StiffnessElement).
	scratchPool sync.Pool

	// Prebuilt forElements bodies for the per-iteration operators, so the
	// steady-state hot path allocates no closures. The cur* fields carry the
	// operands during one call; the operators were never safe for concurrent
	// calls on one Disc (shared per-worker scratch), so this adds no new
	// restriction.
	stiffLoop  func(e, w int)
	gradLoop   func(e, w int)
	filterLoop func(e, w int)
	curOut     []float64
	curIn      []float64
	curOuts    [][]float64
	curFilter  *Filter

	// Batched multi-RHS state (EnsureBatch / StiffnessLocalMulti): per-worker
	// column-stacked scratch and the prebuilt loop body with its operands.
	batchCols      int
	batchScratch   [][]float64
	stiffMultiLoop func(e, w int)
	curMultiOuts   [][]float64
	curMultiIns    [][]float64
}

// New builds the operator set. mask may be nil (pure Neumann / periodic).
func New(m *mesh.Mesh, mask []float64, workers int) *Disc {
	if workers < 1 {
		workers = 1
	}
	d := &Disc{M: m, GS: gs.Init(m.GID), Mask: mask, Workers: workers, Dt: m.Dt}
	d.Mult = d.GS.Multiplicity()
	ns := 6
	if m.Dim == 3 {
		ns = 9
	}
	d.scratch = make([][]float64, workers)
	for w := range d.scratch {
		d.scratch[w] = make([]float64, ns*m.Np)
	}
	d.scratchPool.New = func() any {
		s := make([]float64, ns*m.Np)
		return &s
	}
	np := m.Np
	d.stiffLoop = func(e, w int) {
		d.stiffnessOneElement(d.curOut[e*np:(e+1)*np], d.curIn[e*np:(e+1)*np], e, d.scratch[w])
	}
	d.gradLoop = func(e, w int) {
		d.gradOneElement(d.curOuts, d.curIn, e, d.scratch[w])
	}
	d.filterLoop = func(e, w int) {
		d.filterOneElement(d.curFilter, d.curIn, e, d.scratch[w])
	}
	if workers > 1 && m.K >= 2 {
		d.pool = newElemPool(m.K, workers)
		// Backstop only: the owner is expected to call Close. The workers
		// reference only the pool, never the Disc, and every prebuilt loop
		// body is cleared from p.fn between runs — so when a Disc is leaked
		// without Close, this finalizer still parks the goroutines for
		// collection (eventually, at GC's discretion; a server creating many
		// Discs must not rely on it).
		pool := d.pool
		runtime.SetFinalizer(d, func(*Disc) { pool.shutdown() })
	}
	return d
}

// Close stops the element-loop worker pool. It is idempotent and safe on a
// pool-less (serial) Disc; after Close the operators remain fully usable
// but run their element loops serially. Long-lived processes that create
// many Discs (the session service) must call Close when a Disc is retired —
// the finalizer registered by New is only a GC-timed backstop, and until it
// fires each abandoned Disc pins Workers-1 parked goroutines.
func (d *Disc) Close() {
	if d.pool != nil {
		d.pool.shutdown()
		d.pool = nil // subsequent ForElements calls fall back to the serial loop
		runtime.SetFinalizer(d, nil)
	}
}

// Flops returns the cumulative analytic flop count of all operator
// applications since construction (or the last ResetFlops).
func (d *Disc) Flops() int64 { return d.flops.Load() }

// ResetFlops zeroes the flop meter.
func (d *Disc) ResetFlops() { d.flops.Store(0) }

// CountFlops adds externally-performed work to the meter.
func (d *Disc) CountFlops(n int64) { d.flops.Add(n) }

// ForElements runs fn(e, worker) over all elements, split across the worker
// pool — the shared-memory analogue of the paper's dual-processor mode.
// Callers that need scratch must index it by the worker id w (in
// [0, Workers)); element blocks are disjoint, so loops that only write their
// own element's output are deterministic for any worker count.
func (d *Disc) ForElements(fn func(e, w int)) { d.forElements(fn) }

// forElements is the internal form of ForElements: dispatch to the
// persistent pool when it can actually run chunks concurrently, else the
// plain serial loop (worker id 0). Both orders produce identical fields for
// the disjoint-block loops this drives, so the choice is pure speed.
func (d *Disc) forElements(fn func(e, w int)) {
	if d.pool.parallel() {
		d.pool.run(fn)
		return
	}
	for e, k := 0, d.M.K; e < k; e++ {
		fn(e, 0)
	}
}

// StiffnessLocal applies the unassembled element stiffness matrices:
// out^k = A^k u^k per eq. (4). out must not alias u.
func (d *Disc) StiffnessLocal(out, u []float64) {
	m := d.M
	np1 := m.N + 1
	np := m.Np
	d.curOut, d.curIn = out, u
	d.forElements(d.stiffLoop)
	d.curOut, d.curIn = nil, nil
	if m.Dim == 2 {
		// 4 tensor ops (2N³ each... here 2·np1³) + 6np pointwise + np add.
		d.flops.Add(int64(m.K) * (4*2*int64(np1)*int64(np1)*int64(np1) + 7*int64(np)))
		return
	}
	// The paper's count: 12N⁴ + 15N³ per element (here with N+1 = np1).
	n4 := int64(np1) * int64(np1) * int64(np1) * int64(np1)
	d.flops.Add(int64(m.K) * (12*n4 + 17*int64(np)))
}

// Assemble performs the gather-scatter sum and applies the Dirichlet mask.
func (d *Disc) Assemble(u []float64) {
	d.GS.Apply(u, gs.Sum)
	d.ApplyMask(u)
	d.flops.Add(int64(len(u)))
}

// ApplyMask zeroes Dirichlet entries.
func (d *Disc) ApplyMask(u []float64) {
	if d.Mask == nil {
		return
	}
	for i, m := range d.Mask {
		u[i] *= m
	}
}

// Laplacian applies the assembled, masked stiffness operator:
// out = M QQᵀ A u. The input should already be continuous and masked.
func (d *Disc) Laplacian(out, u []float64) {
	d.StiffnessLocal(out, u)
	d.Assemble(out)
}

// Helmholtz applies out = M QQᵀ (h1·A + h2·B) u, the velocity operator H of
// Sec. 4 (h1 = 1/Re·Δt factor absorbed by the caller, h2 = BDF mass factor).
func (d *Disc) Helmholtz(out, u []float64, h1, h2 float64) {
	d.StiffnessLocal(out, u)
	if h1 != 1 {
		for i := range out {
			out[i] *= h1
		}
	}
	b := d.M.B
	for i := range out {
		out[i] += h2 * b[i] * u[i]
	}
	d.flops.Add(3 * int64(len(out)))
	d.Assemble(out)
}

// MassApply computes out = B u (diagonal, unassembled quadrature mass).
func (d *Disc) MassApply(out, u []float64) {
	b := d.M.B
	for i := range u {
		out[i] = b[i] * u[i]
	}
	d.flops.Add(int64(len(u)))
}

// HelmholtzDiag returns the assembled diagonal of h1·A + h2·B, the Jacobi
// preconditioner of the velocity solves.
func (d *Disc) HelmholtzDiag(h1, h2 float64) []float64 {
	m := d.M
	np := m.Np
	diag := make([]float64, m.K*np)
	// Diagonal of the tensor stiffness: A_ll = Σ_q D_ql² G... computed
	// exactly from the factorized form: for node l=(i,j[,k]),
	// diag += Σ_p Dᵀ... Using the identity
	// (A)_{ll} = Σ_m D[m][i]² Grr(m,j) + 2 D[i][i] D[j][j] Grs(i,j) + Σ_m D[m][j]² Gss(i,m).
	for e := 0; e < m.K; e++ {
		d.HelmholtzDiagElement(diag[e*np:(e+1)*np], e, h1, h2)
	}
	d.GS.Apply(diag, gs.Sum)
	// Dirichlet rows: unit diagonal so Jacobi inversion stays defined.
	if d.Mask != nil {
		for i, mk := range d.Mask {
			if mk == 0 {
				diag[i] = 1
			}
		}
	}
	return diag
}

// Grad computes the physical-space gradient of u per element (unassembled):
// outs[c] = ∂u/∂x_c.
func (d *Disc) Grad(outs [][]float64, u []float64) {
	m := d.M
	np1 := m.N + 1
	np := m.Np
	d.curOuts, d.curIn = outs, u
	d.forElements(d.gradLoop)
	d.curOuts, d.curIn = nil, nil
	if m.Dim == 2 {
		d.flops.Add(int64(m.K) * (2*2*int64(np1)*int64(np1)*int64(np1) + 6*int64(np)))
		return
	}
	n4 := int64(np1) * int64(np1) * int64(np1) * int64(np1)
	d.flops.Add(int64(m.K) * (3*2*n4 + 15*int64(np)))
}

// gradOneElement computes element e's physical-space gradient using the
// supplied scratch.
func (d *Disc) gradOneElement(outs [][]float64, u []float64, e int, s []float64) {
	np := d.M.Np
	i0, i1 := e*np, (e+1)*np
	var o2 []float64
	if d.M.Dim == 3 {
		o2 = outs[2][i0:i1]
	}
	d.gradElementBlocks(outs[0][i0:i1], outs[1][i0:i1], o2, u[i0:i1], e, s)
}

// Dot is the inner product for element-local redundant storage: each global
// node is counted once (division by multiplicity).
func (d *Disc) Dot(u, v []float64) float64 {
	var s float64
	mult := d.Mult
	for i := range u {
		s += u[i] * v[i] / mult[i]
	}
	d.flops.Add(3 * int64(len(u)))
	return s
}

// Integrate returns ∫ u dΩ by GLL quadrature.
func (d *Disc) Integrate(u []float64) float64 {
	var s float64
	for i, b := range d.M.B {
		s += b * u[i]
	}
	return s
}

// L2Norm returns the L2 norm of the element-local field u.
func (d *Disc) L2Norm(u []float64) float64 {
	var s float64
	for i, b := range d.M.B {
		s += b * u[i] * u[i]
	}
	return math.Sqrt(s)
}

// DirectStiffnessAverage replaces each shared value by the multiplicity-
// weighted average, turning a discontinuous field into a continuous one.
func (d *Disc) DirectStiffnessAverage(u []float64) {
	d.GS.Apply(u, gs.Sum)
	for i := range u {
		u[i] /= d.Mult[i]
	}
	d.flops.Add(2 * int64(len(u)))
}

// Filter holds the per-dimension Fischer–Mullen filter operator F_α.
type Filter struct {
	F     []float64 // (N+1)x(N+1)
	Alpha float64
	np1   int
}

// NewFilter builds the interpolation-based filter of strength alpha on the
// mesh's GLL basis (damps the N-th mode only — the paper's description).
func NewFilter(m *mesh.Mesh, alpha float64) *Filter {
	return &Filter{F: poly.FilterMatrix(alpha, m.Z), Alpha: alpha, np1: m.N + 1}
}

// NewFilterRamp builds the generalized Fischer–Mullen filter that damps the
// modes from `cutoff` up to N with a quadratic ramp reaching strength alpha
// at mode N. With cutoff = N it reduces to the single-mode filter; damping
// the last two or three modes is the robust production setting for strongly
// under-resolved runs.
func NewFilterRamp(m *mesh.Mesh, alpha float64, cutoff int) (*Filter, error) {
	f, err := poly.ModalFilterMatrix(alpha, cutoff, m.Z)
	if err != nil {
		return nil, err
	}
	return &Filter{F: f, Alpha: alpha, np1: m.N + 1}, nil
}

// Apply filters the field in place, element by element, as a tensor product
// F⊗F(⊗F) — the once-per-timestep local interpolation of Sec. 2.
func (d *Disc) ApplyFilter(f *Filter, u []float64) {
	if f == nil || f.Alpha == 0 {
		return
	}
	m := d.M
	np1 := f.np1
	d.curFilter, d.curIn = f, u
	d.forElements(d.filterLoop)
	d.curFilter, d.curIn = nil, nil
	if m.Dim == 2 {
		d.flops.Add(int64(m.K) * 2 * 2 * int64(np1) * int64(np1) * int64(np1))
		return
	}
	n4 := int64(np1) * int64(np1) * int64(np1) * int64(np1)
	d.flops.Add(int64(m.K) * 3 * 2 * n4)
}

// filterOneElement applies the tensor-product filter to element e in place.
func (d *Disc) filterOneElement(f *Filter, u []float64, e int, s []float64) {
	np := d.M.Np
	d.filterElementBlock(f, u[e*np:(e+1)*np], s)
}

// BuildAssembledCSR materializes the assembled, masked stiffness operator as
// a sparse matrix over global node ids (for tests and for the coarse-grid
// and FEM-preconditioner paths that need explicit matrices). Dirichlet rows
// and columns are replaced by the identity.
func (d *Disc) BuildAssembledCSR() *la.CSR {
	m := d.M
	n := m.NGlobal
	b := la.NewCOO(n, n)
	np := m.Np
	// Column-by-column through local element matrices would be O((KNp)²);
	// instead assemble from element dense blocks built by applying the
	// element stiffness to local basis vectors.
	ue := make([]float64, np)
	oe := make([]float64, np)
	dirich := make([]bool, n)
	if d.Mask != nil {
		for i, mk := range d.Mask {
			if mk == 0 {
				dirich[m.GID[i]] = true
			}
		}
	}
	sp := d.scratchPool.Get().(*[]float64)
	defer d.scratchPool.Put(sp)
	for e := 0; e < m.K; e++ {
		for j := 0; j < np; j++ {
			for i := range ue {
				ue[i] = 0
			}
			ue[j] = 1
			// Apply the single-element stiffness.
			d.stiffnessOneElement(oe, ue, e, *sp)
			gj := m.GID[e*np+j]
			for i := 0; i < np; i++ {
				if oe[i] == 0 {
					continue
				}
				gi := m.GID[e*np+i]
				if dirich[int(gi)] || dirich[int(gj)] {
					continue
				}
				b.Add(int(gi), int(gj), oe[i])
			}
		}
	}
	for i := 0; i < n; i++ {
		if dirich[i] {
			b.Add(i, i, 1)
		}
	}
	return b.ToCSR()
}

// StiffnessElement applies element e's stiffness matrix to the local nodal
// vector ue (length Np), writing into oe. Scratch comes from an internal
// pool, so it is safe to call concurrently on one Disc from many goroutines.
func (d *Disc) StiffnessElement(oe, ue []float64, e int) {
	sp := d.scratchPool.Get().(*[]float64)
	d.stiffnessOneElement(oe, ue, e, *sp)
	d.scratchPool.Put(sp)
}

// stiffnessOneElement applies element e's stiffness to the local vector ue,
// using the caller-supplied scratch s (length ≥ 6*Np in 2D, 9*Np in 3D).
func (d *Disc) stiffnessOneElement(oe, ue []float64, e int, s []float64) {
	m := d.M
	np1 := m.N + 1
	np := m.Np
	if m.Dim == 2 {
		ur, us := s[:np], s[np:2*np]
		tr, ts := s[2*np:3*np], s[3*np:4*np]
		tensor.ApplyR2D(ur, m.D, ue, np1, np1, np1)
		tensor.ApplyS2D(us, m.D, ue, np1, np1, np1)
		g0, g1, g2 := m.G[0][e*np:], m.G[1][e*np:], m.G[2][e*np:]
		for i := 0; i < np; i++ {
			tr[i] = g0[i]*ur[i] + g1[i]*us[i]
			ts[i] = g1[i]*ur[i] + g2[i]*us[i]
		}
		tensor.ApplyR2D(oe, d.Dt, tr, np1, np1, np1)
		tensor.ApplyS2D(us, d.Dt, ts, np1, np1, np1)
		for i := 0; i < np; i++ {
			oe[i] += us[i]
		}
		return
	}
	ur, us, ut := s[:np], s[np:2*np], s[2*np:3*np]
	tr, ts, tt := s[3*np:4*np], s[4*np:5*np], s[5*np:6*np]
	tensor.ApplyR3D(ur, m.D, ue, np1, np1, np1, np1)
	tensor.ApplyS3D(us, m.D, ue, np1, np1, np1, np1)
	tensor.ApplyT3D(ut, m.D, ue, np1, np1, np1, np1)
	g := m.G
	off := e * np
	for i := 0; i < np; i++ {
		r, sv, tv := ur[i], us[i], ut[i]
		tr[i] = g[0][off+i]*r + g[1][off+i]*sv + g[2][off+i]*tv
		ts[i] = g[1][off+i]*r + g[3][off+i]*sv + g[4][off+i]*tv
		tt[i] = g[2][off+i]*r + g[4][off+i]*sv + g[5][off+i]*tv
	}
	tensor.ApplyR3D(oe, d.Dt, tr, np1, np1, np1, np1)
	tensor.ApplyS3D(us, d.Dt, ts, np1, np1, np1, np1)
	tensor.ApplyT3D(ut, d.Dt, tt, np1, np1, np1, np1)
	for i := 0; i < np; i++ {
		oe[i] += us[i] + ut[i]
	}
}

// GatherGlobal compresses an element-local continuous field to one value
// per global node.
func (d *Disc) GatherGlobal(u []float64) []float64 {
	g := make([]float64, d.M.NGlobal)
	for i, gid := range d.M.GID {
		g[gid] = u[i]
	}
	return g
}

// ScatterGlobal expands a global-node vector to the element-local layout.
func (d *Disc) ScatterGlobal(g []float64) []float64 {
	u := make([]float64, len(d.M.GID))
	for i, gid := range d.M.GID {
		u[i] = g[gid]
	}
	return u
}
