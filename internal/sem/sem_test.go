package sem

import (
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/mesh"
	"repro/internal/solver"
)

func boxDisc(t *testing.T, nx, ny, n, workers int) *Disc {
	t.Helper()
	spec := mesh.Box2D(mesh.Box2DSpec{Nx: nx, Ny: ny, X0: 0, X1: 1, Y0: 0, Y1: 1})
	m, err := mesh.Discretize(spec, n)
	if err != nil {
		t.Fatal(err)
	}
	return New(m, m.BoundaryMask(nil), workers)
}

// solvePoisson solves -∇²u = f with homogeneous Dirichlet BCs and compares
// against the exact solution u = sin(πx)sin(πy).
func solvePoisson(t *testing.T, d *Disc) float64 {
	t.Helper()
	m := d.M
	n := m.K * m.Np
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		f := 2 * math.Pi * math.Pi * math.Sin(math.Pi*m.X[i]) * math.Sin(math.Pi*m.Y[i])
		b[i] = m.B[i] * f // weak-form RHS: B f
	}
	d.Assemble(b)
	x := make([]float64, n)
	st := solver.CG(d.Laplacian, d.Dot, x, b, solver.Options{Tol: 1e-12, Relative: true, MaxIter: 2000})
	if !st.Converged {
		t.Fatalf("Poisson CG did not converge: %+v", st)
	}
	var maxErr float64
	for i := 0; i < n; i++ {
		exact := math.Sin(math.Pi*m.X[i]) * math.Sin(math.Pi*m.Y[i])
		if e := math.Abs(x[i] - exact); e > maxErr {
			maxErr = e
		}
	}
	return maxErr
}

func TestPoissonSpectralConvergence(t *testing.T) {
	var prev float64
	for i, n := range []int{4, 6, 8} {
		d := boxDisc(t, 2, 2, n, 1)
		err := solvePoisson(t, d)
		if i > 0 && err > prev/5 {
			t.Errorf("N=%d: error %g did not drop spectrally from %g", n, err, prev)
		}
		prev = err
	}
	if prev > 1e-7 {
		t.Errorf("N=8 Poisson error too large: %g", prev)
	}
}

func TestWorkersGiveIdenticalResults(t *testing.T) {
	d1 := boxDisc(t, 4, 4, 6, 1)
	d4 := boxDisc(t, 4, 4, 6, 4)
	n := d1.M.K * d1.M.Np
	u := make([]float64, n)
	for i := range u {
		u[i] = math.Sin(3*d1.M.X[i]) * math.Cos(2*d1.M.Y[i])
	}
	o1 := make([]float64, n)
	o4 := make([]float64, n)
	d1.StiffnessLocal(o1, u)
	d4.StiffnessLocal(o4, u)
	for i := range o1 {
		if o1[i] != o4[i] {
			t.Fatalf("worker pool changed result at %d: %g vs %g", i, o1[i], o4[i])
		}
	}
}

func TestLaplacianSymmetricSPD(t *testing.T) {
	d := boxDisc(t, 2, 2, 5, 1)
	n := d.M.K * d.M.Np
	u := make([]float64, n)
	v := make([]float64, n)
	for i := range u {
		u[i] = math.Sin(float64(i))
		v[i] = math.Cos(float64(2 * i))
	}
	// Make continuous and masked (domain of the assembled operator).
	d.DirectStiffnessAverage(u)
	d.DirectStiffnessAverage(v)
	d.ApplyMask(u)
	d.ApplyMask(v)
	au := make([]float64, n)
	av := make([]float64, n)
	d.Laplacian(au, u)
	d.Laplacian(av, v)
	lhs := d.Dot(au, v)
	rhs := d.Dot(u, av)
	if math.Abs(lhs-rhs) > 1e-8*math.Abs(lhs) {
		t.Errorf("Laplacian not symmetric: %g vs %g", lhs, rhs)
	}
	if e := d.Dot(au, u); e <= 0 {
		t.Errorf("Laplacian not positive on a nonzero masked field: %g", e)
	}
}

func TestLaplacianAnnihilatesConstantsUnmasked(t *testing.T) {
	spec := mesh.Box2D(mesh.Box2DSpec{Nx: 3, Ny: 2, X1: 3, Y1: 2})
	m, err := mesh.Discretize(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	d := New(m, nil, 1) // pure Neumann
	n := m.K * m.Np
	u := make([]float64, n)
	for i := range u {
		u[i] = 7.5
	}
	out := make([]float64, n)
	d.Laplacian(out, u)
	for i := range out {
		if math.Abs(out[i]) > 1e-9 {
			t.Fatalf("Laplacian of constant not zero: %g at %d", out[i], i)
		}
	}
}

func TestHelmholtzAddsMass(t *testing.T) {
	d := boxDisc(t, 2, 2, 4, 1)
	n := d.M.K * d.M.Np
	u := make([]float64, n)
	for i := range u {
		u[i] = math.Sin(d.M.X[i] + d.M.Y[i])
	}
	d.DirectStiffnessAverage(u)
	d.ApplyMask(u)
	a := make([]float64, n)
	h := make([]float64, n)
	d.Laplacian(a, u)
	lambda := 3.7
	d.Helmholtz(h, u, 1, lambda)
	// h - a should equal assembled lambda*B*u.
	bu := make([]float64, n)
	d.MassApply(bu, u)
	for i := range bu {
		bu[i] *= lambda
	}
	d.Assemble(bu)
	for i := range h {
		if math.Abs(h[i]-a[i]-bu[i]) > 1e-9 {
			t.Fatalf("Helmholtz != A + λB at %d: %g", i, h[i]-a[i]-bu[i])
		}
	}
}

func TestHelmholtzDiagMatchesOperator(t *testing.T) {
	d := boxDisc(t, 2, 2, 4, 1)
	n := d.M.K * d.M.Np
	diag := d.HelmholtzDiag(1.0, 2.0)
	// Compare against applying the operator to unit global basis vectors:
	// diag_g = e_gᵀ H e_g.
	e := make([]float64, n)
	out := make([]float64, n)
	checked := 0
	for g := 0; g < d.M.NGlobal && checked < 25; g += 7 {
		for i := range e {
			e[i] = 0
			if d.M.GID[i] == int64(g) {
				e[i] = 1
			}
		}
		if d.Mask != nil {
			masked := false
			for i := range e {
				if e[i] == 1 && d.Mask[i] == 0 {
					masked = true
				}
			}
			if masked {
				continue
			}
		}
		d.Helmholtz(out, e, 1.0, 2.0)
		var got float64
		var want float64
		for i := range e {
			if e[i] == 1 {
				got = out[i]
				want = diag[i]
				break
			}
		}
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Fatalf("diag mismatch at global %d: %g vs %g", g, got, want)
		}
		checked++
	}
	if checked < 5 {
		t.Fatal("too few diagonal entries checked")
	}
}

func TestJacobiPCGFasterThanCG(t *testing.T) {
	d := boxDisc(t, 3, 3, 7, 1)
	n := d.M.K * d.M.Np
	b := make([]float64, n)
	for i := range b {
		b[i] = d.M.B[i] * math.Sin(2*math.Pi*d.M.X[i])
	}
	d.Assemble(b)
	lambda := 100.0
	apply := func(out, in []float64) { d.Helmholtz(out, in, 1, lambda) }
	x1 := make([]float64, n)
	plain := solver.CG(apply, d.Dot, x1, b, solver.Options{Tol: 1e-10, Relative: true, MaxIter: 3000})
	diag := d.HelmholtzDiag(1, lambda)
	pre := func(out, in []float64) {
		for i := range in {
			out[i] = in[i] / diag[i]
		}
	}
	x2 := make([]float64, n)
	jac := solver.CG(apply, d.Dot, x2, b, solver.Options{Tol: 1e-10, Relative: true, MaxIter: 3000, Precond: pre})
	if !plain.Converged || !jac.Converged {
		t.Fatalf("CG failed: plain %+v jacobi %+v", plain, jac)
	}
	if jac.Iterations >= plain.Iterations {
		t.Errorf("Jacobi PCG (%d iters) not faster than CG (%d iters)", jac.Iterations, plain.Iterations)
	}
	for i := range x1 {
		if math.Abs(x1[i]-x2[i]) > 1e-6 {
			t.Fatalf("solutions disagree at %d", i)
		}
	}
}

func TestGradOfLinearFieldIsExact(t *testing.T) {
	// On the deformed cylinder mesh the gradient of 3x - 2y must be (3,-2).
	spec := mesh.CylinderOGrid(mesh.CylinderOGridSpec{NTheta: 8, NLayer: 3, R: 0.5, H: 2, WallRatio: 4})
	m, err := mesh.Discretize(spec, 6)
	if err != nil {
		t.Fatal(err)
	}
	d := New(m, nil, 2)
	n := m.K * m.Np
	u := make([]float64, n)
	for i := range u {
		u[i] = 3*m.X[i] - 2*m.Y[i]
	}
	gx := make([]float64, n)
	gy := make([]float64, n)
	d.Grad([][]float64{gx, gy}, u)
	for i := range gx {
		if math.Abs(gx[i]-3) > 1e-8 || math.Abs(gy[i]+2) > 1e-8 {
			t.Fatalf("gradient wrong at %d: (%g, %g)", i, gx[i], gy[i])
		}
	}
}

func TestGrad3D(t *testing.T) {
	spec := mesh.Box3D(mesh.Box3DSpec{Nx: 2, Ny: 2, Nz: 2, X1: 1, Y1: 2, Z1: 3})
	m, err := mesh.Discretize(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	d := New(m, nil, 1)
	n := m.K * m.Np
	u := make([]float64, n)
	for i := range u {
		u[i] = m.X[i]*m.X[i] + 2*m.Y[i]*m.Zc[i]
	}
	g := [][]float64{make([]float64, n), make([]float64, n), make([]float64, n)}
	d.Grad(g, u)
	for i := range u {
		if math.Abs(g[0][i]-2*m.X[i]) > 1e-8 ||
			math.Abs(g[1][i]-2*m.Zc[i]) > 1e-8 ||
			math.Abs(g[2][i]-2*m.Y[i]) > 1e-8 {
			t.Fatalf("3D gradient wrong at %d", i)
		}
	}
}

func TestPoisson3D(t *testing.T) {
	spec := mesh.Box3D(mesh.Box3DSpec{Nx: 2, Ny: 2, Nz: 2, X1: 1, Y1: 1, Z1: 1})
	m, err := mesh.Discretize(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	d := New(m, m.BoundaryMask(nil), 2)
	n := m.K * m.Np
	b := make([]float64, n)
	pi := math.Pi
	for i := 0; i < n; i++ {
		f := 3 * pi * pi * math.Sin(pi*m.X[i]) * math.Sin(pi*m.Y[i]) * math.Sin(pi*m.Zc[i])
		b[i] = m.B[i] * f
	}
	d.Assemble(b)
	x := make([]float64, n)
	st := solver.CG(d.Laplacian, d.Dot, x, b, solver.Options{Tol: 1e-11, Relative: true, MaxIter: 3000})
	if !st.Converged {
		t.Fatalf("3D Poisson CG did not converge: %+v", st)
	}
	var maxErr float64
	for i := 0; i < n; i++ {
		exact := math.Sin(pi*m.X[i]) * math.Sin(pi*m.Y[i]) * math.Sin(pi*m.Zc[i])
		if e := math.Abs(x[i] - exact); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 5e-4 {
		t.Errorf("3D Poisson error %g too large", maxErr)
	}
}

func TestFilterStrengthOrdering(t *testing.T) {
	d := boxDisc(t, 2, 2, 8, 1)
	n := d.M.K * d.M.Np
	mkField := func() []float64 {
		u := make([]float64, n)
		for i := range u {
			u[i] = math.Sin(20*d.M.X[i]) * math.Cos(17*d.M.Y[i]) // rough field
		}
		return u
	}
	norm := func(u []float64) float64 { return d.L2Norm(u) }
	u0 := mkField()
	u3 := mkField()
	u10 := mkField()
	d.ApplyFilter(NewFilter(d.M, 0), u0)
	d.ApplyFilter(NewFilter(d.M, 0.3), u3)
	d.ApplyFilter(NewFilter(d.M, 1.0), u10)
	if norm(u0) != norm(mkField()) {
		t.Error("alpha=0 filter changed the field")
	}
	if !(norm(u10) < norm(u3) && norm(u3) < norm(u0)) {
		t.Errorf("filter strength ordering violated: %g %g %g", norm(u0), norm(u3), norm(u10))
	}
	// Smooth (degree < N) fields are untouched by any alpha.
	s := make([]float64, n)
	for i := range s {
		s[i] = 1 + d.M.X[i] + d.M.Y[i]*d.M.X[i]
	}
	sc := append([]float64(nil), s...)
	d.ApplyFilter(NewFilter(d.M, 0.9), sc)
	for i := range s {
		if math.Abs(sc[i]-s[i]) > 1e-10 {
			t.Fatal("filter damaged a low-order field")
		}
	}
}

func TestFilter3D(t *testing.T) {
	spec := mesh.Box3D(mesh.Box3DSpec{Nx: 1, Ny: 1, Nz: 1, X1: 1, Y1: 1, Z1: 1})
	m, err := mesh.Discretize(spec, 6)
	if err != nil {
		t.Fatal(err)
	}
	d := New(m, nil, 1)
	u := make([]float64, m.Np)
	for i := range u {
		u[i] = 1 + m.X[i]*m.Y[i]*m.Zc[i]
	}
	uc := append([]float64(nil), u...)
	d.ApplyFilter(NewFilter(m, 0.5), uc)
	for i := range u {
		if math.Abs(uc[i]-u[i]) > 1e-10 {
			t.Fatal("3D filter damaged a low-order field")
		}
	}
}

func TestBuildAssembledCSRMatchesMatrixFree(t *testing.T) {
	d := boxDisc(t, 2, 2, 4, 1)
	a := d.BuildAssembledCSR()
	if a.Rows != d.M.NGlobal {
		t.Fatalf("CSR size %d vs NGlobal %d", a.Rows, d.M.NGlobal)
	}
	n := d.M.K * d.M.Np
	u := make([]float64, n)
	for i := range u {
		u[i] = math.Sin(1.3*d.M.X[i]) + d.M.Y[i]
	}
	d.DirectStiffnessAverage(u)
	d.ApplyMask(u)
	// Matrix-free application.
	mf := make([]float64, n)
	d.Laplacian(mf, u)
	// CSR application on globals.
	ug := d.GatherGlobal(u)
	og := make([]float64, d.M.NGlobal)
	a.MulVec(og, ug)
	back := d.ScatterGlobal(og)
	for i := range mf {
		if d.Mask != nil && d.Mask[i] == 0 {
			continue // CSR uses identity rows on Dirichlet nodes
		}
		if math.Abs(mf[i]-back[i]) > 1e-9 {
			t.Fatalf("CSR vs matrix-free mismatch at %d: %g vs %g", i, mf[i], back[i])
		}
	}
}

func TestIntegrateAndNorms(t *testing.T) {
	d := boxDisc(t, 3, 3, 6, 1)
	n := d.M.K * d.M.Np
	one := make([]float64, n)
	for i := range one {
		one[i] = 1
	}
	if a := d.Integrate(one); math.Abs(a-1) > 1e-12 {
		t.Errorf("∫1 = %g, want 1", a)
	}
	// ∫ sin²(πx)sin²(πy) = 1/4 on the unit square.
	u := make([]float64, n)
	for i := range u {
		u[i] = math.Sin(math.Pi*d.M.X[i]) * math.Sin(math.Pi*d.M.Y[i])
	}
	if l2 := d.L2Norm(u); math.Abs(l2-0.5) > 1e-6 {
		t.Errorf("L2 norm %g, want 0.5", l2)
	}
}

func TestFlopCounteradvances(t *testing.T) {
	d := boxDisc(t, 2, 2, 4, 1)
	d.ResetFlops()
	n := d.M.K * d.M.Np
	u := make([]float64, n)
	out := make([]float64, n)
	d.StiffnessLocal(out, u)
	if d.Flops() <= 0 {
		t.Error("flop counter did not advance")
	}
	before := d.Flops()
	d.CountFlops(100)
	if d.Flops() != before+100 {
		t.Error("CountFlops broken")
	}
}

// StiffnessElement draws scratch from a pool, so many goroutines may hammer
// one Disc concurrently; the results must still match the serial local
// stiffness bitwise. Run under -race to exercise the hazard this replaces.
func TestStiffnessElementConcurrent(t *testing.T) {
	d := boxDisc(t, 4, 4, 7, 2)
	m := d.M
	np := m.Np
	n := m.K * np
	u := make([]float64, n)
	for i := range u {
		u[i] = math.Sin(2*m.X[i]) + math.Cos(3*m.Y[i])
	}
	want := make([]float64, n)
	d.StiffnessLocal(want, u)

	got := make([]float64, n)
	const gor = 8
	var wg sync.WaitGroup
	for g := 0; g < gor; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for e := g; e < m.K; e += gor {
				d.StiffnessElement(got[e*np:(e+1)*np], u[e*np:(e+1)*np], e)
			}
		}(g)
	}
	wg.Wait()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("concurrent StiffnessElement differs at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

// countPoolGoroutines waits (briefly) for the runtime's goroutine count to
// settle at or below want, returning the last observed count. Goroutine
// exit is asynchronous after a pool shutdown, so a bounded retry loop is
// the only race-free way to observe it.
func settleGoroutines(want int) int {
	n := runtime.NumGoroutine()
	for i := 0; i < 200 && n > want; i++ {
		time.Sleep(5 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// TestDiscCloseStopsPoolGoroutines is the regression test for the session
// service's pool leak: before Disc.Close existed, every retired Disc kept
// its Workers-1 goroutines parked until GC happened to run its finalizer,
// so a server creating many Discs accumulated them without bound.
func TestDiscCloseStopsPoolGoroutines(t *testing.T) {
	base := settleGoroutines(0)
	const cycles = 8
	for i := 0; i < cycles; i++ {
		d := boxDisc(t, 4, 4, 5, 4)
		// Exercise the pool once so the test covers a used pool, not a
		// freshly built one.
		u := make([]float64, d.M.K*d.M.Np)
		out := make([]float64, len(u))
		d.Laplacian(out, u)
		d.Close()
		d.Close() // idempotent
	}
	if n := settleGoroutines(base); n > base {
		t.Fatalf("goroutines leaked across %d Disc create/Close cycles: %d before, %d after",
			cycles, base, n)
	}
}

// TestDiscUsableAfterClose: Close retires the pool, not the operators — a
// closed Disc keeps producing bitwise-identical fields via the serial loop.
func TestDiscUsableAfterClose(t *testing.T) {
	d := boxDisc(t, 3, 3, 5, 4)
	n := d.M.K * d.M.Np
	u := make([]float64, n)
	for i := range u {
		u[i] = math.Sin(float64(3 * i % 17)) // deterministic non-trivial field
	}
	before := make([]float64, n)
	d.Laplacian(before, u)
	d.Close()
	after := make([]float64, n)
	d.Laplacian(after, u)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("Laplacian differs after Close at %d: %g vs %g", i, before[i], after[i])
		}
	}
}

// TestDiscCloseSerial: Close on a workers=1 Disc (no pool) is a no-op.
func TestDiscCloseSerial(t *testing.T) {
	d := boxDisc(t, 3, 3, 5, 1)
	d.Close()
	d.Close()
}
