// Package coarse implements the paper's parallel coarse-grid solvers
// (Sec. 5, Fig. 6). The workhorse is the Tufo–Fischer XXT method: a sparse
// A-conjugate basis X (Xᵀ A X = I, so A⁻¹ = X Xᵀ) obtained from a
// nested-dissection sparse Cholesky (X = L⁻ᵀ), distributed column-wise so
// the solve is a pair of fully concurrent matrix-vector products plus one
// log₂P-depth combine restricted to the separator-crossing columns — total
// communication volume O(n^{(d-1)/d} log₂ P), against the O(n log₂ P) of
// the redundant banded-LU and row-distributed A⁻¹ baselines it is compared
// with in Fig. 6.
package coarse

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/comm"
	"repro/internal/instrument"
	"repro/internal/la"
)

// Poisson5pt builds the n = nx*ny five-point Dirichlet Poisson matrix on a
// regular grid, the Fig. 6 model problem.
func Poisson5pt(nx, ny int) *la.CSR {
	b := la.NewCOO(nx*ny, nx*ny)
	id := func(ix, iy int) int { return iy*nx + ix }
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			i := id(ix, iy)
			b.Add(i, i, 4)
			if ix > 0 {
				b.Add(i, id(ix-1, iy), -1)
			}
			if ix < nx-1 {
				b.Add(i, id(ix+1, iy), -1)
			}
			if iy > 0 {
				b.Add(i, id(ix, iy-1), -1)
			}
			if iy < ny-1 {
				b.Add(i, id(ix, iy+1), -1)
			}
		}
	}
	return b.ToCSR()
}

// XXT is the factorized coarse solver, set up once and shared (read-only)
// by all simulated ranks.
type XXT struct {
	N    int
	P    int
	Perm []int // nested-dissection permutation, perm[new] = old

	x *la.SparseCols // X = L⁻ᵀ in permuted index space

	BlockLo []int // dof-block [BlockLo[p], BlockHi[p]) per rank (permuted ids)
	BlockHi []int

	// Column classification: columns whose support stays inside the owning
	// rank's block are "local"; the rest are "cross" and participate in the
	// log P combine.
	crossOf   []int // column -> compact cross index, -1 if local
	CrossCols []int // cross column ids
	ownerOf   []int // column -> owning rank (the rank owning dof j)

	// FactorSeconds is the wall-clock time of ordering + factorization +
	// inverse-factor formation in NewXXT (the setup half of the paper's
	// solve/factor split).
	FactorSeconds float64

	solveTime  *instrument.Timer  // nil = off; accumulated per-rank solve time
	solveVTime *instrument.Timer  // nil = off; virtual seconds per SolveOn, summed over ranks
	tracer     *instrument.Tracer // nil = off; per-solve spans
}

// Attach wires the solve timer into reg and records the one-off factor
// cost as a gauge; a nil registry detaches.
func (s *XXT) Attach(reg *instrument.Registry) {
	s.solveTime = reg.Timer("coarse/xxt.solve")
	s.solveVTime = reg.Timer("coarse/xxt.vtime")
	reg.Gauge("coarse/xxt.factor_seconds").Set(s.FactorSeconds)
	reg.Gauge("coarse/xxt.cross_cols").Set(float64(len(s.CrossCols)))
}

// AttachTracer makes every solve emit a span — virtual-clock on the calling
// rank's track for SolveOn, wall-clock for SolveSerial; nil detaches.
func (s *XXT) AttachTracer(tr *instrument.Tracer) { s.tracer = tr }

// NewXXT orders the SPD matrix with nested dissection (grid-aware when
// nx*ny == a.Rows and nx > 0), factorizes it, forms the sparse inverse
// factor, and partitions the permuted dofs into p contiguous blocks.
func NewXXT(a *la.CSR, nx, ny, p int) (*XXT, error) {
	tFactor := time.Now()
	n := a.Rows
	var perm []int
	if nx > 0 && nx*ny == n {
		perm = la.NDPermGrid(nx, ny)
	} else {
		adj := make([][]int, n)
		for i := 0; i < n; i++ {
			for q := a.Ptr[i]; q < a.Ptr[i+1]; q++ {
				if j := a.Col[q]; j != i {
					adj[i] = append(adj[i], j)
				}
			}
		}
		perm = la.NDPermGraph(adj)
	}
	chol, err := la.FactorSparseChol(a.Permute(perm))
	if err != nil {
		return nil, fmt.Errorf("coarse: XXT factorization: %w", err)
	}
	s := &XXT{N: n, P: p, Perm: perm, x: chol.InverseTransposeCols()}
	s.BlockLo = make([]int, p)
	s.BlockHi = make([]int, p)
	for r := 0; r < p; r++ {
		s.BlockLo[r] = r * n / p
		s.BlockHi[r] = (r + 1) * n / p
	}
	rankOf := func(i int) int {
		// Blocks are near-uniform; locate by division then fix up.
		r := i * p / n
		if r >= p {
			r = p - 1
		}
		for i < s.BlockLo[r] {
			r--
		}
		for i >= s.BlockHi[r] {
			r++
		}
		return r
	}
	s.crossOf = make([]int, n)
	s.ownerOf = make([]int, n)
	for j := 0; j < n; j++ {
		s.ownerOf[j] = rankOf(j)
		idx := s.x.Idx[j]
		s.crossOf[j] = -1
		if len(idx) == 0 {
			continue
		}
		lo, hi := int(idx[0]), int(idx[len(idx)-1])
		if rankOf(lo) != rankOf(hi) {
			s.crossOf[j] = len(s.CrossCols)
			s.CrossCols = append(s.CrossCols, j)
		}
	}
	s.FactorSeconds = time.Since(tFactor).Seconds()
	return s, nil
}

// NNZ returns the stored size of the inverse factor.
func (s *XXT) NNZ() int { return s.x.NNZ() }

// CrossCount returns the number of separator-crossing columns (the combine
// payload per log P stage, ≈ 3·n^{1/2} in 2D).
func (s *XXT) CrossCount() int { return len(s.CrossCols) }

// SolveSerial computes u = A⁻¹ b (natural ordering) through the factor, for
// reference and testing.
func (s *XXT) SolveSerial(b []float64) []float64 {
	t0 := s.solveTime.Begin()
	defer s.solveTime.End(t0)
	sp := s.tracer.Begin(instrument.PidWall, 0, "coarse/xxt.solve", "coarse")
	defer sp.End()
	n := s.N
	bp := make([]float64, n)
	inv := la.InvPerm(s.Perm)
	for old := 0; old < n; old++ {
		bp[inv[old]] = b[old]
	}
	z := make([]float64, n)
	for j := 0; j < n; j++ {
		var sum float64
		for k, i := range s.x.Idx[j] {
			sum += s.x.Val[j][k] * bp[i]
		}
		z[j] = sum
	}
	up := make([]float64, n)
	for j := 0; j < n; j++ {
		v := z[j]
		if v == 0 {
			continue
		}
		for k, i := range s.x.Idx[j] {
			up[i] += s.x.Val[j][k] * v
		}
	}
	u := make([]float64, n)
	for old := 0; old < n; old++ {
		u[old] = up[inv[old]]
	}
	return u
}

// SolveWork is the per-rank scratch of SolveOn, reusable across calls so
// the steady-state coarse solve allocates nothing. Each simulated rank
// needs its own (SolveOn runs concurrently on all ranks).
type SolveWork struct {
	zCross  []float64
	zLocalJ []int
	zLocalV []float64
	u       []float64
}

// NewSolveWork sizes a SolveWork for the given rank's block.
func (s *XXT) NewSolveWork(rank int) *SolveWork {
	return &SolveWork{
		zCross:  make([]float64, len(s.CrossCols)),
		zLocalJ: make([]int, 0, s.N/max(len(s.BlockLo), 1)+1),
		zLocalV: make([]float64, 0, s.N/max(len(s.BlockLo), 1)+1),
		u:       make([]float64, s.BlockHi[rank]-s.BlockLo[rank]),
	}
}

// SolveOn executes the distributed solve on one simulated rank. bLocal is
// the rank's block of the right-hand side in permuted order
// (b[BlockLo[r]:BlockHi[r]]); the rank's block of the solution is returned.
// Local floating-point work is charged to the rank's virtual clock; the
// combine over the cross columns is a real recursive-doubling allreduce.
func (s *XXT) SolveOn(r *comm.Rank, bLocal []float64) []float64 {
	return s.SolveOnW(r, bLocal, nil)
}

// SolveOnW is SolveOn with caller-owned scratch (nil allocates fresh
// buffers, reproducing SolveOn). The returned slice aliases w.u and is
// valid until the next call with the same work.
func (s *XXT) SolveOnW(r *comm.Rank, bLocal []float64, w *SolveWork) []float64 {
	t0 := s.solveTime.Begin()
	defer s.solveTime.End(t0)
	v0 := r.Time
	if s.tracer.WantsV(r.ID) {
		defer func() {
			s.tracer.SpanV(r.ID, "coarse/xxt.solve", "coarse", v0, r.Time,
				map[string]any{"cross_cols": len(s.CrossCols), "n": s.N})
		}()
	}
	defer func() {
		s.solveVTime.Add(time.Duration((r.Time - v0) * float64(time.Second)))
	}()
	me := r.ID
	if w == nil {
		w = s.NewSolveWork(me)
	}
	lo, hi := s.BlockLo[me], s.BlockHi[me]
	// Stage 1: z = Xᵀ b. Local columns owned by me are complete from my
	// rows; cross columns get partial sums from every rank.
	zCross := w.zCross
	// Owned-column partials, kept in ascending column order: stage 3
	// accumulates them into u, and a map here would make that accumulation
	// order (hence the roundoff) vary run to run.
	zLocalJ := w.zLocalJ[:0]
	zLocalV := w.zLocalV[:0]
	var flops int64
	for j := 0; j < s.N; j++ {
		ci := s.crossOf[j]
		if ci < 0 {
			if s.ownerOf[j] != me {
				continue
			}
			var sum float64
			idx, val := s.x.Idx[j], s.x.Val[j]
			for k, i := range idx {
				sum += val[k] * bLocal[int(i)-lo]
			}
			zLocalJ = append(zLocalJ, j)
			zLocalV = append(zLocalV, sum)
			flops += int64(2 * len(idx))
			continue
		}
		// Partial over my rows only (support indices are sorted: binary
		// search the block window).
		idx, val := s.x.Idx[j], s.x.Val[j]
		k0, k1 := rowWindow(idx, lo, hi)
		var sum float64
		for k := k0; k < k1; k++ {
			sum += val[k] * bLocal[int(idx[k])-lo]
		}
		flops += int64(2 * (k1 - k0))
		zCross[ci] = sum
	}
	r.Compute(flops)
	w.zLocalJ, w.zLocalV = zLocalJ, zLocalV // keep any growth for reuse
	// Stage 2: combine the cross-column partials (log₂P stages, payload =
	// CrossCount words — the separator volume of the paper's bound).
	r.Allreduce(zCross, comm.OpSum)
	// Stage 3: u = X z restricted to my rows.
	u := w.u[:hi-lo]
	for i := range u {
		u[i] = 0
	}
	flops = 0
	for t, j := range zLocalJ {
		z := zLocalV[t]
		idx, val := s.x.Idx[j], s.x.Val[j]
		for k, i := range idx {
			u[int(i)-lo] += val[k] * z
		}
		flops += int64(2 * len(idx))
	}
	for ci, j := range s.CrossCols {
		z := zCross[ci]
		if z == 0 {
			continue
		}
		idx, val := s.x.Idx[j], s.x.Val[j]
		k0, k1 := rowWindow(idx, lo, hi)
		for k := k0; k < k1; k++ {
			u[int(idx[k])-lo] += val[k] * z
		}
		flops += int64(2 * (k1 - k0))
	}
	r.Compute(flops)
	return u
}

// rowWindow returns the half-open index range [k0, k1) of the sorted row
// list idx falling inside [lo, hi).
func rowWindow(idx []int32, lo, hi int) (int, int) {
	k0 := sort.Search(len(idx), func(k int) bool { return int(idx[k]) >= lo })
	k1 := sort.Search(len(idx), func(k int) bool { return int(idx[k]) >= hi })
	return k0, k1
}

// RedundantLU is the redundant banded-solve baseline: every rank holds the
// full banded Cholesky factor and solves the whole system after an
// allreduce assembles the full right-hand side (the O(n log₂ P)
// communication the paper contrasts with).
type RedundantLU struct {
	N   int
	P   int
	fac *la.BandedCholesky
	lo  []int
	hi  []int
}

// NewRedundantLU factorizes the banded SPD matrix (half-bandwidth bw taken
// from the natural grid ordering).
func NewRedundantLU(a *la.CSR, bw, p int) (*RedundantLU, error) {
	n := a.Rows
	band := make([][]float64, bw+1)
	for d := range band {
		band[d] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for q := a.Ptr[i]; q < a.Ptr[i+1]; q++ {
			j := a.Col[q]
			if j <= i && i-j <= bw {
				band[i-j][j] = a.Val[q]
			}
		}
	}
	fac, err := la.FactorBanded(band, n, bw)
	if err != nil {
		return nil, err
	}
	s := &RedundantLU{N: n, P: p, fac: fac, lo: make([]int, p), hi: make([]int, p)}
	for r := 0; r < p; r++ {
		s.lo[r] = r * n / p
		s.hi[r] = (r + 1) * n / p
	}
	return s, nil
}

// SolveOn runs the redundant solve on one rank: allreduce the padded RHS,
// then a full local banded solve; returns the rank's solution block. The
// solve flops are always charged to the virtual clock; when wantResult is
// false the (redundant, bit-identical) numeric solve is skipped so that
// large-P simulations do not pay P times the real work of one solve.
func (s *RedundantLU) SolveOn(r *comm.Rank, bLocal []float64, wantResult bool) []float64 {
	me := r.ID
	full := make([]float64, s.N)
	copy(full[s.lo[me]:s.hi[me]], bLocal)
	r.Allreduce(full, comm.OpSum)
	r.Compute(s.fac.SolveFlops())
	if !wantResult {
		return nil
	}
	x := make([]float64, s.N)
	s.fac.Solve(x, full)
	return x[s.lo[me]:s.hi[me]]
}

// DistInv is the row-distributed A⁻¹ baseline: each rank conceptually holds
// n/P dense rows of A⁻¹ and needs the full right-hand side. The dense
// matvec flops are charged to the virtual clock; the numerical values are
// produced through a shared sparse factorization so the baseline stays
// exact without materializing the O(n²) inverse.
type DistInv struct {
	N   int
	P   int
	fac *la.SparseChol
	lo  []int
	hi  []int
}

// NewDistInv prepares the baseline.
func NewDistInv(a *la.CSR, p int) (*DistInv, error) {
	fac, err := la.FactorSparseChol(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	s := &DistInv{N: n, P: p, fac: fac, lo: make([]int, p), hi: make([]int, p)}
	for r := 0; r < p; r++ {
		s.lo[r] = r * n / p
		s.hi[r] = (r + 1) * n / p
	}
	return s, nil
}

// SolveOn runs the distributed-inverse solve on one rank. The dense
// row-block matvec cost (2·n·n/P flops) is charged to the virtual clock;
// the numeric values are produced through the shared sparse factorization
// only when wantResult is true (they are what the dense rows would give).
func (s *DistInv) SolveOn(r *comm.Rank, bLocal []float64, wantResult bool) []float64 {
	me := r.ID
	full := make([]float64, s.N)
	copy(full[s.lo[me]:s.hi[me]], bLocal)
	r.Allreduce(full, comm.OpSum)
	// Dense row-block matvec cost: 2 * n * (rows I own).
	rows := s.hi[me] - s.lo[me]
	r.Compute(int64(2 * s.N * rows))
	if !wantResult {
		return nil
	}
	x := make([]float64, s.N)
	s.fac.Solve(x, full)
	return x[s.lo[me]:s.hi[me]]
}

// LatencyBound returns the paper's lower-bound curve 2·α·log₂P for a
// contention-free fan-in/fan-out binary tree.
func LatencyBound(m comm.Machine) float64 {
	logp := 0
	for q := 1; q < m.P; q <<= 1 {
		logp++
	}
	return 2 * m.Latency * float64(logp)
}
