package coarse

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/la"
)

func net(p int) *comm.Network {
	return comm.NewNetwork(comm.Machine{P: p, Latency: 2e-5, ByteSec: 1 / 310e6, FlopSec: 1e-8})
}

func refSolve(t *testing.T, a *la.CSR, b []float64) []float64 {
	t.Helper()
	fac, err := la.FactorSparseChol(a)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.Rows)
	fac.Solve(x, b)
	return x
}

func TestXXTSerialMatchesCholesky(t *testing.T) {
	a := Poisson5pt(13, 11)
	n := a.Rows
	rng := rand.New(rand.NewSource(1))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	xxt, err := NewXXT(a, 13, 11, 4)
	if err != nil {
		t.Fatal(err)
	}
	got := xxt.SolveSerial(b)
	want := refSolve(t, a, b)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("XXT serial mismatch at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestXXTDistributedMatchesSerial(t *testing.T) {
	a := Poisson5pt(15, 15)
	n := a.Rows
	rng := rand.New(rand.NewSource(2))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	for _, p := range []int{1, 2, 4, 8, 16} {
		xxt, err := NewXXT(a, 15, 15, p)
		if err != nil {
			t.Fatal(err)
		}
		want := xxt.SolveSerial(b)
		// Permute b into block layout.
		inv := la.InvPerm(xxt.Perm)
		bp := make([]float64, n)
		for old := 0; old < n; old++ {
			bp[inv[old]] = b[old]
		}
		got := make([]float64, n)
		net(p).Run(func(r *comm.Rank) {
			lo, hi := xxt.BlockLo[r.ID], xxt.BlockHi[r.ID]
			u := xxt.SolveOn(r, bp[lo:hi])
			copy(got[lo:hi], u)
		})
		// got is in permuted layout.
		for old := 0; old < n; old++ {
			if math.Abs(got[inv[old]]-want[old]) > 1e-9 {
				t.Fatalf("P=%d: distributed XXT mismatch at %d", p, old)
			}
		}
	}
}

func TestXXTCrossCountScalesLikeSqrtN(t *testing.T) {
	// Separator-crossing columns should grow like c·√n, far slower than n.
	p := 16
	a1 := Poisson5pt(31, 31)
	a2 := Poisson5pt(63, 63)
	x1, err := NewXXT(a1, 31, 31, p)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := NewXXT(a2, 63, 63, p)
	if err != nil {
		t.Fatal(err)
	}
	r1 := float64(x1.CrossCount())
	r2 := float64(x2.CrossCount())
	// n grows ~4x; cross count should grow well under 3x (≈2x).
	if r2/r1 > 3 {
		t.Errorf("cross count not sublinear: %g -> %g", r1, r2)
	}
	if x2.CrossCount() >= a2.Rows/2 {
		t.Errorf("cross count %d too close to n=%d", x2.CrossCount(), a2.Rows)
	}
}

func TestRedundantLUAndDistInv(t *testing.T) {
	nx, ny := 12, 9
	a := Poisson5pt(nx, ny)
	n := a.Rows
	rng := rand.New(rand.NewSource(3))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want := refSolve(t, a, b)
	p := 4
	lu, err := NewRedundantLU(a, nx, p)
	if err != nil {
		t.Fatal(err)
	}
	di, err := NewDistInv(a, p)
	if err != nil {
		t.Fatal(err)
	}
	gotLU := make([]float64, n)
	gotDI := make([]float64, n)
	net(p).Run(func(r *comm.Rank) {
		lo, hi := r.ID*n/p, (r.ID+1)*n/p
		u := lu.SolveOn(r, b[lo:hi], true)
		copy(gotLU[lo:hi], u)
		v := di.SolveOn(r, b[lo:hi], true)
		copy(gotDI[lo:hi], v)
	})
	for i := range want {
		if math.Abs(gotLU[i]-want[i]) > 1e-9 {
			t.Fatalf("redundant LU mismatch at %d", i)
		}
		if math.Abs(gotDI[i]-want[i]) > 1e-9 {
			t.Fatalf("distributed inverse mismatch at %d", i)
		}
	}
}

func TestWantResultFalseSkipsNumerics(t *testing.T) {
	nx, ny := 8, 8
	a := Poisson5pt(nx, ny)
	n := a.Rows
	p := 2
	lu, err := NewRedundantLU(a, nx, p)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	ranks := net(p).Run(func(r *comm.Rank) {
		lo, hi := r.ID*n/p, (r.ID+1)*n/p
		if got := lu.SolveOn(r, b[lo:hi], false); got != nil {
			t.Errorf("wantResult=false should return nil")
		}
	})
	// The clock must still have been charged.
	for _, r := range ranks {
		if r.Time <= 0 {
			t.Error("virtual time not charged")
		}
	}
}

func TestFig6TimeOrderingAtScale(t *testing.T) {
	// At large P the XXT modeled time must beat both baselines, and at
	// small P it must beat distributed A⁻¹ (work-dominated regime).
	nx := 63
	a := Poisson5pt(nx, nx)
	n := a.Rows
	rng := rand.New(rand.NewSource(4))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	times := func(p int) (txxt, tlu, tdi float64) {
		m := comm.ASCIRed(p)
		xxt, err := NewXXT(a, nx, nx, p)
		if err != nil {
			t.Fatal(err)
		}
		inv := la.InvPerm(xxt.Perm)
		bp := make([]float64, n)
		for old := 0; old < n; old++ {
			bp[inv[old]] = b[old]
		}
		rs := comm.NewNetwork(m).Run(func(r *comm.Rank) {
			xxt.SolveOn(r, bp[xxt.BlockLo[r.ID]:xxt.BlockHi[r.ID]])
		})
		txxt = comm.MaxTime(rs)
		lu, err := NewRedundantLU(a, nx, p)
		if err != nil {
			t.Fatal(err)
		}
		rs = comm.NewNetwork(m).Run(func(r *comm.Rank) {
			lo, hi := r.ID*n/p, (r.ID+1)*n/p
			lu.SolveOn(r, b[lo:hi], r.ID == 0)
		})
		tlu = comm.MaxTime(rs)
		di, err := NewDistInv(a, p)
		if err != nil {
			t.Fatal(err)
		}
		rs = comm.NewNetwork(m).Run(func(r *comm.Rank) {
			lo, hi := r.ID*n/p, (r.ID+1)*n/p
			di.SolveOn(r, b[lo:hi], r.ID == 0)
		})
		tdi = comm.MaxTime(rs)
		return
	}
	x16, lu16, di16 := times(16)
	x256, lu256, _ := times(256)
	if x16 >= di16 {
		t.Errorf("P=16: XXT (%g) should beat distributed A⁻¹ (%g)", x16, di16)
	}
	if x256 >= lu256 {
		t.Errorf("P=256: XXT (%g) should beat redundant LU (%g)", x256, lu256)
	}
	if lb := LatencyBound(comm.ASCIRed(256)); x256 < lb {
		t.Errorf("P=256: XXT time %g below the latency lower bound %g", x256, lb)
	}
	_ = lu16
	t.Logf("P=16: xxt=%.2e lu=%.2e di=%.2e; P=256: xxt=%.2e lu=%.2e", x16, lu16, di16, x256, lu256)
}
