// Package gs implements the gather–scatter utility of Sec. 6 of the paper
// (Tufo's gs_init / gs_op): the direct-stiffness residual assembly of the
// spectral element method as a single local-to-local transformation, in
// which nodal values shared by adjacent elements are combined in place with
// a commutative/associative operation (sum, min, max, mul) and written back
// to every copy. A vector mode applies the same topology to several fields
// at once. The serial Handle backs the shared-memory solvers; ParHandle
// runs the same operation across ranks of a comm network via pairwise
// neighbour exchange.
package gs

import (
	"slices"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/instrument"
)

// Op is the reduction applied to shared nodal values.
type Op int

// Supported reductions.
const (
	Sum Op = iota
	Mul
	Min
	Max
)

func combine(op Op, a, b float64) float64 {
	switch op {
	case Sum:
		return a + b
	case Mul:
		return a * b
	case Min:
		if b < a {
			return b
		}
		return a
	case Max:
		if b > a {
			return b
		}
		return a
	}
	return a
}

// Handle is the serial gather–scatter operator for one connectivity.
type Handle struct {
	n      int
	groups [][]int32 // local indices sharing one global id (multiplicity > 1 only)

	multOnce sync.Once
	mult     []float64 // cached nodal multiplicity
}

// Init builds a handle from the per-local-node global ids (the
// "global-node-numbers" argument of the paper's gs-init). Groups are
// ordered by their smallest local index and indices within a group ascend,
// so the floating-point assembly order — and therefore every assembled
// sum — is identical run to run (a map-ordered build would randomize it).
func Init(gids []int64) *Handle {
	slot := make(map[int64]int, len(gids))
	groups := make([][]int32, 0, len(gids))
	for i, g := range gids {
		if j, ok := slot[g]; ok {
			groups[j] = append(groups[j], int32(i))
		} else {
			slot[g] = len(groups)
			groups = append(groups, []int32{int32(i)})
		}
	}
	h := &Handle{n: len(gids)}
	for _, idxs := range groups {
		if len(idxs) > 1 {
			h.groups = append(h.groups, idxs)
		}
	}
	return h
}

// N returns the local vector length the handle was built for.
func (h *Handle) N() int { return h.n }

// Apply performs the gather–scatter on u in place: each group of local
// copies of a shared node is reduced with op and the result written back to
// all copies (the paper's gs-op).
func (h *Handle) Apply(u []float64, op Op) {
	for _, g := range h.groups {
		acc := u[g[0]]
		for _, i := range g[1:] {
			acc = combine(op, acc, u[i])
		}
		for _, i := range g {
			u[i] = acc
		}
	}
}

// ApplyFields is the vector mode: the same exchange applied to several
// fields (e.g. the d velocity components) in one pass over the topology.
func (h *Handle) ApplyFields(op Op, fields ...[]float64) {
	for _, g := range h.groups {
		for _, u := range fields {
			acc := u[g[0]]
			for _, i := range g[1:] {
				acc = combine(op, acc, u[i])
			}
			for _, i := range g {
				u[i] = acc
			}
		}
	}
}

// multiplicity returns the cached per-node copy count, computing it once
// (sync.Once: DotAssembled sits inside concurrent PCG inner products).
func (h *Handle) multiplicity() []float64 {
	h.multOnce.Do(func() {
		m := make([]float64, h.n)
		for i := range m {
			m[i] = 1
		}
		h.Apply(m, Sum)
		h.mult = m
	})
	return h.mult
}

// Multiplicity returns, per local node, the number of local copies sharing
// its global id (the inverse of this vector converts assembled sums to
// averages). The caller owns the returned slice.
func (h *Handle) Multiplicity() []float64 {
	return append([]float64(nil), h.multiplicity()...)
}

// DotAssembled computes the global inner product Σ_g u_g v_g over distinct
// global nodes, given element-local vectors (each shared node counted
// once): it divides by multiplicity.
func (h *Handle) DotAssembled(u, v []float64) float64 {
	m := h.multiplicity()
	var s float64
	for i := range u {
		s += u[i] * v[i] / m[i]
	}
	return s
}

// ---- Distributed gather–scatter ----

// ParHandle runs the gather–scatter across ranks: local groups are combined
// first, then contributions for globals shared with other ranks are
// exchanged pairwise with each neighbour, exactly the paper's single
// communication phase.
type ParHandle struct {
	local *Handle
	rank  *comm.Rank
	// For each neighbour rank: the shared global ids (sorted) plus the
	// precomputed gather/accumulate indices the steady-state Apply uses.
	neighbours []neighbour
	fromRanks  []int       // neighbour ranks, ascending (the RecvEach sources)
	recvBufs   [][]float64 // RecvEach destination scratch (pooled payloads)

	// Flat accumulator replacing the per-call map: every distinct shared
	// gid owns one slot. slotRep seeds the slot from the locally combined
	// value; the write-back scatters slot s to the local indices
	// slotLoc[slotPtr[s]:slotPtr[s+1]].
	slotVal []float64
	slotRep []int32
	slotPtr []int32
	slotLoc []int32

	// Exchange-volume instrumentation (nil = off): messages and 8-byte
	// words sent per Apply, plus the virtual time each exchange spans
	// (which a fault plan inflates: retries and stragglers land here).
	exchMsgs  *instrument.Counter
	exchWords *instrument.Counter
	exchVTime *instrument.Timer
	exchVHist *instrument.Histogram // per-Apply virtual time, all ranks merged
	tracer    *instrument.Tracer
}

type neighbour struct {
	rank    int
	gids    []int64   // sorted shared gids
	sendIdx []int32   // per gid: representative local index to gather from
	sendBuf []float64 // preallocated outgoing payload
	slotIdx []int32   // per gid: accumulator slot the reply folds into
}

const (
	tagSetupToOwner = 1000
	tagSetupFromOwn = 2000
	tagExchange     = 3000
)

// ParInit builds a distributed handle. Every rank calls it collectively
// with its local global ids. Neighbour discovery routes through hashed
// "owner" ranks (setup only); the recurring exchange is pairwise.
func ParInit(r *comm.Rank, gids []int64) *ParHandle {
	p := r.P()
	h := &ParHandle{local: Init(gids), rank: r}
	// Setup-only lookup tables; the steady-state Apply uses the flat index
	// arrays built at the end instead.
	repIdx := make(map[int64]int32, len(gids))
	allIdx := make(map[int64][]int32, len(gids))
	for i, g := range gids {
		if _, ok := repIdx[g]; !ok {
			repIdx[g] = int32(i)
		}
		allIdx[g] = append(allIdx[g], int32(i))
	}
	if p == 1 {
		return h
	}
	owner := func(g int64) int { return int(g % int64(p)) }
	// 1. Tell each owner which of its gids we hold (iterating gids, not the
	// map, so setup messages are deterministic).
	toOwner := make([][]float64, p)
	for i, g := range gids {
		if repIdx[g] != int32(i) {
			continue // not the first occurrence
		}
		o := owner(g)
		toOwner[o] = append(toOwner[o], float64(g))
	}
	for q := 0; q < p; q++ {
		if q == r.ID {
			continue
		}
		r.Send(q, tagSetupToOwner, toOwner[q])
	}
	holders := make(map[int64][]int) // for gids owned here
	record := func(src int, list []float64) {
		for _, gf := range list {
			g := int64(gf)
			holders[g] = append(holders[g], src)
		}
	}
	record(r.ID, toOwner[r.ID])
	for q := 0; q < p; q++ {
		if q == r.ID {
			continue
		}
		lst := r.Recv(q, tagSetupToOwner)
		record(q, lst)
		r.Free(lst)
	}
	// 2. Owners answer every holder with (gid, holder list) for shared gids.
	reply := make([][]float64, p)
	for g, hs := range holders {
		if len(hs) < 2 {
			continue
		}
		for _, dst := range hs {
			msg := []float64{float64(g), float64(len(hs))}
			for _, other := range hs {
				if other != dst {
					msg = append(msg, float64(other))
				}
			}
			reply[dst] = append(reply[dst], msg...)
		}
	}
	for q := 0; q < p; q++ {
		if q == r.ID {
			continue
		}
		r.Send(q, tagSetupFromOwn, reply[q])
	}
	shared := make(map[int][]int64) // neighbour rank -> shared gids
	parse := func(list []float64) {
		for i := 0; i < len(list); {
			g := int64(list[i])
			cnt := int(list[i+1])
			for k := 0; k < cnt-1; k++ {
				q := int(list[i+2+k])
				shared[q] = append(shared[q], g)
			}
			i += 1 + cnt
		}
	}
	parse(reply[r.ID])
	for q := 0; q < p; q++ {
		if q == r.ID {
			continue
		}
		lst := r.Recv(q, tagSetupFromOwn)
		parse(lst)
		r.Free(lst)
	}
	for q, gs := range shared {
		slices.Sort(gs)
		h.neighbours = append(h.neighbours, neighbour{rank: q, gids: gs})
	}
	// Deterministic neighbour order.
	slices.SortFunc(h.neighbours, func(a, b neighbour) int { return a.rank - b.rank })

	// Precompute the steady-state exchange: gather indices and payload
	// buffers per neighbour, and one accumulator slot per distinct shared
	// gid. Slots are assigned on first appearance in neighbour order; the
	// fold itself always runs in neighbour order seeded from the
	// representative copy, so the floating-point combine order — and with it
	// every assembled value — is exactly the sequential formulation's.
	slotOf := make(map[int64]int32)
	var sharedGids []int64
	for ni := range h.neighbours {
		nb := &h.neighbours[ni]
		nb.sendIdx = make([]int32, len(nb.gids))
		nb.sendBuf = make([]float64, len(nb.gids))
		nb.slotIdx = make([]int32, len(nb.gids))
		for i, g := range nb.gids {
			nb.sendIdx[i] = repIdx[g]
			s, ok := slotOf[g]
			if !ok {
				s = int32(len(sharedGids))
				slotOf[g] = s
				sharedGids = append(sharedGids, g)
			}
			nb.slotIdx[i] = s
		}
		h.fromRanks = append(h.fromRanks, nb.rank)
	}
	h.recvBufs = make([][]float64, len(h.neighbours))
	h.slotVal = make([]float64, len(sharedGids))
	h.slotRep = make([]int32, len(sharedGids))
	h.slotPtr = make([]int32, len(sharedGids)+1)
	for s, g := range sharedGids {
		h.slotRep[s] = repIdx[g]
		h.slotPtr[s+1] = h.slotPtr[s] + int32(len(allIdx[g]))
	}
	h.slotLoc = make([]int32, h.slotPtr[len(sharedGids)])
	for s, g := range sharedGids {
		copy(h.slotLoc[h.slotPtr[s]:], allIdx[g])
	}
	return h
}

// Attach wires exchange-volume counters (messages and words sent per
// Apply) into reg; a nil registry detaches.
func (h *ParHandle) Attach(reg *instrument.Registry) {
	h.exchMsgs = reg.Counter("gs/exchange.msgs")
	h.exchWords = reg.Counter("gs/exchange.words")
	h.exchVTime = reg.Timer("gs/exchange.vtime")
	h.exchVHist = reg.Histogram("gs/exchange.vtime.hist")
}

// AttachTracer makes every Apply emit a virtual-clock span on the owning
// rank's track covering the neighbour exchange; nil detaches.
func (h *ParHandle) AttachTracer(tr *instrument.Tracer) { h.tracer = tr }

// Apply performs the distributed gather–scatter on the local vector u.
// The steady-state exchange is allocation-free: payloads gather into
// buffers preallocated by ParInit, all sends post before any receive is
// waited on, and RecvEach consumes replies in arrival order — a slow
// neighbour never blocks the pickup of a fast one — while the fold into
// the fixed slot accumulators runs in neighbour order, keeping every
// assembled value bitwise identical to the sequential formulation.
func (h *ParHandle) Apply(u []float64, op Op) {
	// Local combine first.
	h.local.Apply(u, op)
	if len(h.neighbours) == 0 {
		return
	}
	t0 := h.rank.Time
	var words int
	// Pairwise exchange: send my combined value for each shared gid.
	for ni := range h.neighbours {
		nb := &h.neighbours[ni]
		for i, idx := range nb.sendIdx {
			nb.sendBuf[i] = u[idx]
		}
		h.rank.Send(nb.rank, tagExchange, nb.sendBuf)
		h.exchMsgs.Inc()
		h.exchWords.Add(int64(len(nb.sendBuf)))
		words += len(nb.sendBuf)
	}
	h.rank.RecvEach(h.fromRanks, tagExchange, h.recvBufs)
	// Accumulate neighbour contributions on top of the local combined
	// values (op is commutative/associative, so pairwise folding is exact
	// in the same sense as the paper's implementation).
	for s, idx := range h.slotRep {
		h.slotVal[s] = u[idx]
	}
	for ni := range h.neighbours {
		nb := &h.neighbours[ni]
		got := h.recvBufs[ni]
		for i, s := range nb.slotIdx {
			h.slotVal[s] = combine(op, h.slotVal[s], got[i])
		}
		h.rank.Free(got)
		h.recvBufs[ni] = nil
	}
	for s, v := range h.slotVal {
		for t := h.slotPtr[s]; t < h.slotPtr[s+1]; t++ {
			u[h.slotLoc[t]] = v
		}
	}
	if h.tracer.WantsV(h.rank.ID) {
		h.tracer.SpanV(h.rank.ID, "gs/exchange", "gs", t0, h.rank.Time,
			map[string]any{"neighbours": len(h.neighbours), "words": words})
	}
	h.exchVTime.Add(time.Duration((h.rank.Time - t0) * float64(time.Second)))
	h.exchVHist.Observe(h.rank.Time - t0)
}

// Local returns the serial handle for rank-local operations.
func (h *ParHandle) Local() *Handle { return h.local }
