package gs

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/comm"
	"repro/internal/mesh"
)

func TestApplySum(t *testing.T) {
	gids := []int64{0, 1, 1, 2, 0, 3}
	h := Init(gids)
	u := []float64{1, 2, 3, 4, 5, 6}
	h.Apply(u, Sum)
	want := []float64{6, 5, 5, 4, 6, 6}
	for i := range u {
		if u[i] != want[i] {
			t.Fatalf("sum: got %v want %v", u, want)
		}
	}
}

func TestApplyMinMaxMul(t *testing.T) {
	gids := []int64{7, 7, 7, 9}
	h := Init(gids)
	u := []float64{3, -1, 2, 5}
	h.Apply(u, Min)
	if u[0] != -1 || u[1] != -1 || u[2] != -1 || u[3] != 5 {
		t.Fatalf("min: %v", u)
	}
	u = []float64{3, -1, 2, 5}
	h.Apply(u, Max)
	if u[0] != 3 || u[2] != 3 {
		t.Fatalf("max: %v", u)
	}
	u = []float64{3, -1, 2, 5}
	h.Apply(u, Mul)
	if u[0] != -6 || u[1] != -6 || u[2] != -6 || u[3] != 5 {
		t.Fatalf("mul: %v", u)
	}
}

func TestMultiplicity(t *testing.T) {
	gids := []int64{0, 1, 1, 2, 0, 0}
	h := Init(gids)
	m := h.Multiplicity()
	want := []float64{3, 2, 2, 1, 3, 3}
	for i := range m {
		if m[i] != want[i] {
			t.Fatalf("multiplicity %v want %v", m, want)
		}
	}
}

func TestApplyFieldsMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gids := make([]int64, 50)
	for i := range gids {
		gids[i] = int64(rng.Intn(20))
	}
	h := Init(gids)
	u1 := make([]float64, 50)
	u2 := make([]float64, 50)
	for i := range u1 {
		u1[i] = rng.NormFloat64()
		u2[i] = rng.NormFloat64()
	}
	v1 := append([]float64(nil), u1...)
	v2 := append([]float64(nil), u2...)
	h.Apply(v1, Sum)
	h.Apply(v2, Sum)
	h.ApplyFields(Sum, u1, u2)
	for i := range u1 {
		if u1[i] != v1[i] || u2[i] != v2[i] {
			t.Fatal("vector mode disagrees with scalar mode")
		}
	}
}

func TestApplyIdempotentAfterAssembly(t *testing.T) {
	// Property: after one Sum gather-scatter, all copies of a global agree,
	// so Min/Max leave the vector unchanged, and the second Sum multiplies
	// shared values by their multiplicity.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		gids := make([]int64, n)
		for i := range gids {
			gids[i] = int64(rng.Intn(n/2 + 1))
		}
		h := Init(gids)
		u := make([]float64, n)
		for i := range u {
			u[i] = rng.NormFloat64()
		}
		h.Apply(u, Sum)
		v := append([]float64(nil), u...)
		h.Apply(v, Min)
		for i := range u {
			if v[i] != u[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDotAssembledCountsGlobalsOnce(t *testing.T) {
	gids := []int64{0, 0, 1}
	h := Init(gids)
	u := []float64{2, 2, 3} // assembled field: global 0 has value 2
	if got := h.DotAssembled(u, u); math.Abs(got-(4+9)) > 1e-14 {
		t.Errorf("DotAssembled = %g, want 13", got)
	}
}

func TestMeshAssemblyConstantField(t *testing.T) {
	// On a mesh, gather-scatter of the constant 1 gives the multiplicity;
	// dividing back must recover 1 everywhere.
	spec := mesh.Box2D(mesh.Box2DSpec{Nx: 3, Ny: 2, X1: 3, Y1: 2})
	m, err := mesh.Discretize(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	h := Init(m.GID)
	u := make([]float64, len(m.GID))
	for i := range u {
		u[i] = 1
	}
	h.Apply(u, Sum)
	mult := h.Multiplicity()
	for i := range u {
		if u[i] != mult[i] {
			t.Fatal("assembled constant != multiplicity")
		}
		if mult[i] != 1 && mult[i] != 2 && mult[i] != 4 {
			t.Fatalf("unexpected multiplicity %g on structured quad mesh", mult[i])
		}
	}
}

// parallel gather-scatter across a partitioned strip of elements.
func TestParallelMatchesSerial(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		spec := mesh.Box2D(mesh.Box2DSpec{Nx: 8, Ny: 1, X1: 8, Y1: 1})
		m, err := mesh.Discretize(spec, 4)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		u := make([]float64, len(m.GID))
		for i := range u {
			u[i] = rng.NormFloat64()
		}
		// Serial reference.
		ref := append([]float64(nil), u...)
		Init(m.GID).Apply(ref, Sum)

		// Partition elements blockwise: elements e with e%p == rank? use
		// contiguous blocks so neighbours are cross-rank.
		perRank := m.K / p
		net := comm.NewNetwork(comm.Machine{P: p, Latency: 1e-6, ByteSec: 1e-9, FlopSec: 1e-9})
		results := make([][]float64, p)
		net.Run(func(r *comm.Rank) {
			e0 := r.ID * perRank
			e1 := e0 + perRank
			gids := m.GID[e0*m.Np : e1*m.Np]
			local := append([]float64(nil), u[e0*m.Np:e1*m.Np]...)
			h := ParInit(r, gids)
			h.Apply(local, Sum)
			results[r.ID] = local
		})
		for rk := 0; rk < p; rk++ {
			off := rk * perRank * m.Np
			for i, v := range results[rk] {
				if math.Abs(v-ref[off+i]) > 1e-12 {
					t.Fatalf("P=%d rank %d: parallel gs mismatch at %d: %g vs %g",
						p, rk, i, v, ref[off+i])
				}
			}
		}
	}
}

func TestParallelMinOp(t *testing.T) {
	p := 3
	// Three ranks each hold gids {0, rank+1}; gid 0 shared by all.
	net := comm.NewNetwork(comm.Machine{P: p, Latency: 1e-6, ByteSec: 1e-9, FlopSec: 1e-9})
	results := make([][]float64, p)
	net.Run(func(r *comm.Rank) {
		gids := []int64{0, int64(r.ID + 1)}
		u := []float64{float64(10 - r.ID), float64(r.ID)}
		h := ParInit(r, gids)
		h.Apply(u, Min)
		results[r.ID] = u
	})
	for rk := 0; rk < p; rk++ {
		if results[rk][0] != 8 { // min(10, 9, 8)
			t.Fatalf("rank %d: shared min = %g, want 8", rk, results[rk][0])
		}
		if results[rk][1] != float64(rk) {
			t.Fatalf("rank %d: private value clobbered", rk)
		}
	}
}
