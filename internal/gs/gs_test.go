package gs

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/comm"
	"repro/internal/instrument"
	"repro/internal/mesh"
)

func TestApplySum(t *testing.T) {
	gids := []int64{0, 1, 1, 2, 0, 3}
	h := Init(gids)
	u := []float64{1, 2, 3, 4, 5, 6}
	h.Apply(u, Sum)
	want := []float64{6, 5, 5, 4, 6, 6}
	for i := range u {
		if u[i] != want[i] {
			t.Fatalf("sum: got %v want %v", u, want)
		}
	}
}

func TestApplyMinMaxMul(t *testing.T) {
	gids := []int64{7, 7, 7, 9}
	h := Init(gids)
	u := []float64{3, -1, 2, 5}
	h.Apply(u, Min)
	if u[0] != -1 || u[1] != -1 || u[2] != -1 || u[3] != 5 {
		t.Fatalf("min: %v", u)
	}
	u = []float64{3, -1, 2, 5}
	h.Apply(u, Max)
	if u[0] != 3 || u[2] != 3 {
		t.Fatalf("max: %v", u)
	}
	u = []float64{3, -1, 2, 5}
	h.Apply(u, Mul)
	if u[0] != -6 || u[1] != -6 || u[2] != -6 || u[3] != 5 {
		t.Fatalf("mul: %v", u)
	}
}

func TestMultiplicity(t *testing.T) {
	gids := []int64{0, 1, 1, 2, 0, 0}
	h := Init(gids)
	m := h.Multiplicity()
	want := []float64{3, 2, 2, 1, 3, 3}
	for i := range m {
		if m[i] != want[i] {
			t.Fatalf("multiplicity %v want %v", m, want)
		}
	}
}

func TestApplyFieldsMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gids := make([]int64, 50)
	for i := range gids {
		gids[i] = int64(rng.Intn(20))
	}
	h := Init(gids)
	u1 := make([]float64, 50)
	u2 := make([]float64, 50)
	for i := range u1 {
		u1[i] = rng.NormFloat64()
		u2[i] = rng.NormFloat64()
	}
	v1 := append([]float64(nil), u1...)
	v2 := append([]float64(nil), u2...)
	h.Apply(v1, Sum)
	h.Apply(v2, Sum)
	h.ApplyFields(Sum, u1, u2)
	for i := range u1 {
		if u1[i] != v1[i] || u2[i] != v2[i] {
			t.Fatal("vector mode disagrees with scalar mode")
		}
	}
}

func TestApplyIdempotentAfterAssembly(t *testing.T) {
	// Property: after one Sum gather-scatter, all copies of a global agree,
	// so Min/Max leave the vector unchanged, and the second Sum multiplies
	// shared values by their multiplicity.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		gids := make([]int64, n)
		for i := range gids {
			gids[i] = int64(rng.Intn(n/2 + 1))
		}
		h := Init(gids)
		u := make([]float64, n)
		for i := range u {
			u[i] = rng.NormFloat64()
		}
		h.Apply(u, Sum)
		v := append([]float64(nil), u...)
		h.Apply(v, Min)
		for i := range u {
			if v[i] != u[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestInitDeterministicAssembly(t *testing.T) {
	// Shuffled duplicate gids: many shared groups whose float summation
	// order would differ run to run if Init iterated a map. Two independent
	// Init+Apply(Sum) passes must produce bitwise-identical vectors.
	rng := rand.New(rand.NewSource(42))
	n := 400
	gids := make([]int64, n)
	for i := range gids {
		gids[i] = int64(rng.Intn(n / 6)) // heavy duplication
	}
	rng.Shuffle(n, func(i, j int) { gids[i], gids[j] = gids[j], gids[i] })
	u0 := make([]float64, n)
	for i := range u0 {
		// Values chosen so summation order changes the rounded result.
		u0[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(16)-8))
	}
	ref := append([]float64(nil), u0...)
	Init(gids).Apply(ref, Sum)
	for pass := 0; pass < 10; pass++ {
		u := append([]float64(nil), u0...)
		Init(gids).Apply(u, Sum)
		for i := range u {
			if u[i] != ref[i] {
				t.Fatalf("pass %d: assembly not bitwise deterministic at %d: %x vs %x",
					pass, i, math.Float64bits(u[i]), math.Float64bits(ref[i]))
			}
		}
	}
}

func TestInitGroupOrderCanonical(t *testing.T) {
	// Groups must be ordered by smallest local index with ascending indices
	// inside each group, independent of gid values.
	h := Init([]int64{9, 5, 9, 7, 5, 9})
	want := [][]int32{{0, 2, 5}, {1, 4}}
	if len(h.groups) != len(want) {
		t.Fatalf("groups %v", h.groups)
	}
	for g := range want {
		if len(h.groups[g]) != len(want[g]) {
			t.Fatalf("group %d: %v want %v", g, h.groups[g], want[g])
		}
		for k := range want[g] {
			if h.groups[g][k] != want[g][k] {
				t.Fatalf("group %d: %v want %v", g, h.groups[g], want[g])
			}
		}
	}
}

func TestMultiplicityCachedAndCopied(t *testing.T) {
	h := Init([]int64{0, 0, 1})
	m1 := h.Multiplicity()
	m1[0] = -100 // caller owns the copy; must not poison the cache
	if got := h.DotAssembled([]float64{2, 2, 3}, []float64{2, 2, 3}); math.Abs(got-13) > 1e-14 {
		t.Errorf("DotAssembled after mutated Multiplicity copy = %g, want 13", got)
	}
}

func TestDotAssembledCountsGlobalsOnce(t *testing.T) {
	gids := []int64{0, 0, 1}
	h := Init(gids)
	u := []float64{2, 2, 3} // assembled field: global 0 has value 2
	if got := h.DotAssembled(u, u); math.Abs(got-(4+9)) > 1e-14 {
		t.Errorf("DotAssembled = %g, want 13", got)
	}
}

func TestMeshAssemblyConstantField(t *testing.T) {
	// On a mesh, gather-scatter of the constant 1 gives the multiplicity;
	// dividing back must recover 1 everywhere.
	spec := mesh.Box2D(mesh.Box2DSpec{Nx: 3, Ny: 2, X1: 3, Y1: 2})
	m, err := mesh.Discretize(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	h := Init(m.GID)
	u := make([]float64, len(m.GID))
	for i := range u {
		u[i] = 1
	}
	h.Apply(u, Sum)
	mult := h.Multiplicity()
	for i := range u {
		if u[i] != mult[i] {
			t.Fatal("assembled constant != multiplicity")
		}
		if mult[i] != 1 && mult[i] != 2 && mult[i] != 4 {
			t.Fatalf("unexpected multiplicity %g on structured quad mesh", mult[i])
		}
	}
}

// parallel gather-scatter across a partitioned strip of elements.
func TestParallelMatchesSerial(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		spec := mesh.Box2D(mesh.Box2DSpec{Nx: 8, Ny: 1, X1: 8, Y1: 1})
		m, err := mesh.Discretize(spec, 4)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		u := make([]float64, len(m.GID))
		for i := range u {
			u[i] = rng.NormFloat64()
		}
		// Serial reference.
		ref := append([]float64(nil), u...)
		Init(m.GID).Apply(ref, Sum)

		// Partition elements blockwise: elements e with e%p == rank? use
		// contiguous blocks so neighbours are cross-rank.
		perRank := m.K / p
		net := comm.NewNetwork(comm.Machine{P: p, Latency: 1e-6, ByteSec: 1e-9, FlopSec: 1e-9})
		results := make([][]float64, p)
		net.Run(func(r *comm.Rank) {
			e0 := r.ID * perRank
			e1 := e0 + perRank
			gids := m.GID[e0*m.Np : e1*m.Np]
			local := append([]float64(nil), u[e0*m.Np:e1*m.Np]...)
			h := ParInit(r, gids)
			h.Apply(local, Sum)
			results[r.ID] = local
		})
		for rk := 0; rk < p; rk++ {
			off := rk * perRank * m.Np
			for i, v := range results[rk] {
				if math.Abs(v-ref[off+i]) > 1e-12 {
					t.Fatalf("P=%d rank %d: parallel gs mismatch at %d: %g vs %g",
						p, rk, i, v, ref[off+i])
				}
			}
		}
	}
}

func TestParallelMinOp(t *testing.T) {
	p := 3
	// Three ranks each hold gids {0, rank+1}; gid 0 shared by all.
	net := comm.NewNetwork(comm.Machine{P: p, Latency: 1e-6, ByteSec: 1e-9, FlopSec: 1e-9})
	results := make([][]float64, p)
	net.Run(func(r *comm.Rank) {
		gids := []int64{0, int64(r.ID + 1)}
		u := []float64{float64(10 - r.ID), float64(r.ID)}
		h := ParInit(r, gids)
		h.Apply(u, Min)
		results[r.ID] = u
	})
	for rk := 0; rk < p; rk++ {
		if results[rk][0] != 8 { // min(10, 9, 8)
			t.Fatalf("rank %d: shared min = %g, want 8", rk, results[rk][0])
		}
		if results[rk][1] != float64(rk) {
			t.Fatalf("rank %d: private value clobbered", rk)
		}
	}
}

func TestParExchangeCounters(t *testing.T) {
	// Each rank shares gid 0 with every other rank, so one Apply exchanges
	// one single-word message per neighbour pair and direction.
	p := 3
	net := comm.NewNetwork(comm.Machine{P: p, Latency: 1e-6, ByteSec: 1e-9, FlopSec: 1e-9})
	reg := instrument.New()
	net.Run(func(r *comm.Rank) {
		h := ParInit(r, []int64{0, int64(r.ID + 1)})
		h.Attach(reg)
		u := []float64{1, float64(r.ID)}
		h.Apply(u, Sum)
		if u[0] != float64(p) {
			t.Errorf("rank %d: shared sum = %g, want %g", r.ID, u[0], float64(p))
		}
	})
	wantMsgs := int64(p * (p - 1)) // every ordered neighbour pair sends once
	if got := reg.Counter("gs/exchange.msgs").Value(); got != wantMsgs {
		t.Errorf("exchange msgs = %d, want %d", got, wantMsgs)
	}
	if got := reg.Counter("gs/exchange.words").Value(); got != wantMsgs {
		t.Errorf("exchange words = %d, want %d (one shared word per message)", got, wantMsgs)
	}
}
