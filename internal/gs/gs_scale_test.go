package gs

import (
	"math"
	"math/rand"
	"runtime"
	"runtime/debug"
	"testing"

	"repro/internal/comm"
	"repro/internal/mesh"
)

// These tests pin the two properties the paper-scale runs lean on: the
// overlapped neighbour exchange must stay bitwise deterministic even though
// replies are consumed in arrival order, and the steady-state Apply must
// not allocate.

func TestParallelExchangeDeterministicLargeP(t *testing.T) {
	// One element per rank on a 16x4 box: interior ranks have up to 8
	// neighbours (edges and corners), so each Apply really does fold
	// multiple out-of-order arrivals per slot. Goroutine scheduling varies
	// the mailbox arrival order between runs; assembled values and clocks
	// must not. Part of the -race coverage.
	const p = 64
	spec := mesh.Box2D(mesh.Box2DSpec{Nx: 16, Ny: 4, X1: 16, Y1: 4})
	m, err := mesh.Discretize(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.K != p {
		t.Fatalf("mesh has %d elements, want %d", m.K, p)
	}
	rng := rand.New(rand.NewSource(99))
	u0 := make([]float64, len(m.GID))
	for i := range u0 {
		// Spread magnitudes so summation order changes rounded results.
		u0[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(12)-6))
	}
	const applies = 5
	run := func() (first, final, clocks []float64) {
		first = make([]float64, len(u0))
		final = make([]float64, len(u0))
		ranks := comm.NewNetwork(comm.Machine{P: p, Latency: 1e-6, ByteSec: 1e-9, FlopSec: 1e-9}).Run(func(r *comm.Rank) {
			lo := r.ID * m.Np
			hi := lo + m.Np
			local := append([]float64(nil), u0[lo:hi]...)
			h := ParInit(r, m.GID[lo:hi])
			r.Compute(int64(50 * (r.ID % 13))) // skew arrival order
			for it := 0; it < applies; it++ {
				h.Apply(local, Sum)
				if it == 0 {
					copy(first[lo:hi], local)
				}
			}
			copy(final[lo:hi], local)
		})
		clocks = make([]float64, p)
		for i, rk := range ranks {
			clocks[i] = rk.Time
		}
		return first, final, clocks
	}
	first1, final1, clocks1 := run()
	_, final2, clocks2 := run()
	for i := range final1 {
		if math.Float64bits(final1[i]) != math.Float64bits(final2[i]) {
			t.Fatalf("assembled value %d not bitwise deterministic: %x vs %x",
				i, math.Float64bits(final1[i]), math.Float64bits(final2[i]))
		}
	}
	for q := range clocks1 {
		if math.Float64bits(clocks1[q]) != math.Float64bits(clocks2[q]) {
			t.Fatalf("rank %d clock not deterministic: %v vs %v", q, clocks1[q], clocks2[q])
		}
	}
	// The first Apply must also agree with the serial assembly (different
	// fold order, so tolerance rather than bitwise).
	ref := append([]float64(nil), u0...)
	Init(m.GID).Apply(ref, Sum)
	for i := range ref {
		if math.Abs(first1[i]-ref[i]) > 1e-12*(1+math.Abs(ref[i])) {
			t.Fatalf("parallel assembly differs from serial at %d: %g vs %g", i, first1[i], ref[i])
		}
	}
}

func TestParApplySteadyStateZeroAlloc(t *testing.T) {
	// After ParInit, Apply must run entirely out of preallocated buffers:
	// gathers into the per-neighbour send buffers, pooled receive payloads,
	// the flat slot accumulator, and the CSR write-back. Measured as a
	// MemStats delta on rank 0 across a synchronized window with GC off —
	// see the comm package's allreduce twin for why AllocsPerRun can't be
	// used under the network's goroutines.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	const p = 4
	spec := mesh.Box2D(mesh.Box2DSpec{Nx: 8, Ny: 1, X1: 8, Y1: 1})
	m, err := mesh.Discretize(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	perRank := m.K / p
	const warm, iters = 25, 200
	var steady uint64
	comm.NewNetwork(comm.Machine{P: p, Latency: 1e-6, ByteSec: 1e-9, FlopSec: 1e-9}).Run(func(r *comm.Rank) {
		lo := r.ID * perRank * m.Np
		hi := lo + perRank*m.Np
		h := ParInit(r, m.GID[lo:hi])
		u := make([]float64, hi-lo)
		for i := range u {
			u[i] = float64(i%7) - 3
		}
		// Max is idempotent on the assembled field, so repeated applies
		// neither overflow nor drift.
		for it := 0; it < warm; it++ {
			h.Apply(u, Max)
		}
		r.AllreduceScalar(0, comm.OpSum)
		var m0, m1 runtime.MemStats
		if r.ID == 0 {
			runtime.ReadMemStats(&m0)
		}
		for it := 0; it < iters; it++ {
			h.Apply(u, Max)
		}
		r.AllreduceScalar(0, comm.OpSum)
		if r.ID == 0 {
			runtime.ReadMemStats(&m1)
			steady = m1.Mallocs - m0.Mallocs
		}
	})
	if steady > 64 {
		t.Errorf("steady-state gs exchange allocated %d objects over %d applies, want ~0", steady, iters)
	}
}
