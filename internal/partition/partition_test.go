package partition

import (
	"math/rand"
	"testing"

	"repro/internal/mesh"
)

func gridGraph(nx, ny int) ([][]int, [][3]float64) {
	n := nx * ny
	adj := make([][]int, n)
	coords := make([][3]float64, n)
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			i := iy*nx + ix
			coords[i] = [3]float64{float64(ix), float64(iy), 0}
			if ix > 0 {
				adj[i] = append(adj[i], i-1)
			}
			if ix < nx-1 {
				adj[i] = append(adj[i], i+1)
			}
			if iy > 0 {
				adj[i] = append(adj[i], i-nx)
			}
			if iy < ny-1 {
				adj[i] = append(adj[i], i+nx)
			}
		}
	}
	return adj, coords
}

func checkBalance(t *testing.T, part []int, p int) {
	t.Helper()
	sizes := Sizes(part, p)
	n := len(part)
	for q, s := range sizes {
		lo, hi := n/p-n/(2*p)-1, n/p+n/(2*p)+1
		if s < lo || s > hi {
			t.Errorf("part %d has %d of %d vertices (p=%d): %v", q, s, n, p, sizes)
		}
	}
}

func TestRSBBalanced(t *testing.T) {
	adj, _ := gridGraph(16, 8)
	for _, p := range []int{2, 4, 8} {
		part := RSB(adj, p)
		checkBalance(t, part, p)
	}
}

func TestRSBBeatsRandomCut(t *testing.T) {
	adj, _ := gridGraph(16, 16)
	p := 4
	part := RSB(adj, p)
	cut := CutEdges(adj, part)
	rng := rand.New(rand.NewSource(1))
	randPart := make([]int, len(adj))
	for i := range randPart {
		randPart[i] = rng.Intn(p)
	}
	randCut := CutEdges(adj, randPart)
	if cut*3 > randCut {
		t.Errorf("RSB cut %d not clearly better than random %d", cut, randCut)
	}
	// Ideal 4-way cut of a 16x16 grid is 2 straight lines = 32 edges;
	// RSB should be within a small factor.
	if cut > 96 {
		t.Errorf("RSB cut %d too large for a 16x16 grid", cut)
	}
	t.Logf("RSB cut %d, random cut %d", cut, randCut)
}

func TestRSBOnStripFindsStripCuts(t *testing.T) {
	// A 32x2 strip: bisection should cut across the strip (2 edges), not
	// along it (32 edges).
	adj, _ := gridGraph(32, 2)
	part := RSB(adj, 2)
	if cut := CutEdges(adj, part); cut > 6 {
		t.Errorf("strip bisection cut %d, want ~2", cut)
	}
}

func TestRCBBalancedAndReasonable(t *testing.T) {
	adj, coords := gridGraph(16, 8)
	for _, p := range []int{2, 4, 8} {
		part := RCB(coords, p)
		checkBalance(t, part, p)
		if cut := CutEdges(adj, part); cut > 120 {
			t.Errorf("p=%d: RCB cut %d unreasonably large", p, cut)
		}
	}
}

func TestNonPowerOfTwoParts(t *testing.T) {
	adj, coords := gridGraph(15, 9)
	for _, p := range []int{3, 5, 7} {
		checkBalance(t, RSB(adj, p), p)
		checkBalance(t, RCB(coords, p), p)
	}
}

func TestRSBOnSEMMesh(t *testing.T) {
	// Partition a real element adjacency graph from the mesh package.
	spec := mesh.CylinderOGrid(mesh.CylinderOGridSpec{NTheta: 16, NLayer: 6, R: 0.5, H: 4, WallRatio: 6})
	m, err := mesh.Discretize(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	coords := make([][3]float64, m.K)
	for e := 0; e < m.K; e++ {
		coords[e] = [3]float64{m.X[e*m.Np], m.Y[e*m.Np], 0}
	}
	p := 8
	rsb := RSB(m.Adj, p)
	rcb := RCB(coords, p)
	checkBalance(t, rsb, p)
	cutS := CutEdges(m.Adj, rsb)
	cutC := CutEdges(m.Adj, rcb)
	t.Logf("cylinder element graph: RSB cut %d, RCB cut %d", cutS, cutC)
	if cutS > 2*cutC+8 {
		t.Errorf("RSB (%d) much worse than RCB (%d)", cutS, cutC)
	}
}

func TestDegenerateInputs(t *testing.T) {
	// Single vertex, p larger than n.
	part := RSB([][]int{nil}, 4)
	if part[0] < 0 || part[0] >= 4 {
		t.Error("single-vertex partition out of range")
	}
	part2 := RCB([][3]float64{{0, 0, 0}, {1, 0, 0}}, 8)
	if len(part2) != 2 {
		t.Error("RCB length wrong")
	}
}
