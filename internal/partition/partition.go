// Package partition distributes spectral elements to processors. The
// paper's production code uses recursive spectral bisection (Pothen, Simon
// & Liou 1990) on the element adjacency graph to minimize the number of
// vertices shared between processors (Sec. 6); a recursive coordinate
// bisection baseline is provided for comparison.
package partition

import (
	"math"
	"sort"

	"repro/internal/la"
)

// RSB partitions the undirected graph (adjacency lists) into p parts by
// recursive spectral bisection: at each level the subset is split at the
// median of the Fiedler vector of the induced subgraph Laplacian. The
// returned slice maps vertex -> part in [0, p).
func RSB(adj [][]int, p int) []int {
	n := len(adj)
	part := make([]int, n)
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	var split func(set []int, base, parts int)
	split = func(set []int, base, parts int) {
		if parts <= 1 || len(set) <= 1 {
			for _, v := range set {
				part[v] = base
			}
			return
		}
		pl := parts / 2
		pr := parts - pl
		target := len(set) * pl / parts
		if target == 0 {
			target = 1
		}
		order := fiedlerOrder(adj, set)
		left := order[:target]
		right := order[target:]
		split(left, base, pl)
		split(right, base+pl, pr)
	}
	split(all, 0, p)
	return part
}

// fiedlerOrder returns the subset ordered by the Fiedler vector of the
// induced subgraph Laplacian (computed by Lanczos with deflation of the
// constant vector); disconnected pieces sort before/after naturally because
// indicator-like vectors dominate the low spectrum.
func fiedlerOrder(adj [][]int, set []int) []int {
	n := len(set)
	local := make(map[int]int, n)
	for i, v := range set {
		local[v] = i
	}
	deg := make([]float64, n)
	nbrs := make([][]int, n)
	for i, v := range set {
		for _, w := range adj[v] {
			if j, ok := local[w]; ok {
				nbrs[i] = append(nbrs[i], j)
				deg[i]++
			}
		}
	}
	apply := func(out, in []float64) {
		for i := range out {
			s := deg[i] * in[i]
			for _, j := range nbrs[i] {
				s -= in[j]
			}
			out[i] = s
		}
	}
	f := fiedlerVector(apply, n)
	order := make([]int, n)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return f[idx[a]] < f[idx[b]] })
	for i, li := range idx {
		order[i] = set[li]
	}
	return order
}

// fiedlerVector approximates the second-smallest eigenvector of the
// operator by Lanczos with full reorthogonalization against both the
// constant vector and previous Lanczos vectors.
func fiedlerVector(apply func(out, in []float64), n int) []float64 {
	if n <= 2 {
		f := make([]float64, n)
		for i := range f {
			f[i] = float64(i)
		}
		return f
	}
	m := 40
	if m > n-1 {
		m = n - 1
	}
	vs := make([][]float64, 0, m)
	alpha := make([]float64, 0, m)
	beta := make([]float64, 0, m)
	// Deterministic pseudo-random start, deflated of constants.
	v := make([]float64, n)
	for i := range v {
		v[i] = math.Sin(float64(3*i + 1)) // arbitrary but reproducible
	}
	deflate := func(x []float64) {
		var mean float64
		for _, xv := range x {
			mean += xv
		}
		mean /= float64(n)
		for i := range x {
			x[i] -= mean
		}
	}
	deflate(v)
	normalize := func(x []float64) float64 {
		nrm := la.Nrm2(x)
		if nrm > 0 {
			la.Scale(1/nrm, x)
		}
		return nrm
	}
	normalize(v)
	w := make([]float64, n)
	for it := 0; it < m; it++ {
		vs = append(vs, append([]float64(nil), v...))
		apply(w, v)
		deflate(w)
		a := la.Dot(w, v)
		alpha = append(alpha, a)
		// w = w - a v - beta_prev v_prev, then full reorth.
		la.Axpy(-a, v, w)
		if it > 0 {
			la.Axpy(-beta[it-1], vs[it-1], w)
		}
		for _, u := range vs {
			la.Axpy(-la.Dot(w, u), u, w)
		}
		b := normalize(w)
		if b < 1e-12 {
			break
		}
		beta = append(beta, b)
		copy(v, w)
	}
	k := len(alpha)
	// Solve the k x k tridiagonal eigenproblem.
	tri := make([]float64, k*k)
	for i := 0; i < k; i++ {
		tri[i*k+i] = alpha[i]
		if i+1 < k && i < len(beta) {
			tri[i*k+i+1] = beta[i]
			tri[(i+1)*k+i] = beta[i]
		}
	}
	wv, z, err := la.SymEig(tri, k)
	if err != nil {
		// Fall back to the start vector ordering.
		return vs[0]
	}
	_ = wv
	// Smallest Ritz pair (eigenvalues ascending).
	f := make([]float64, n)
	for i := 0; i < k; i++ {
		la.Axpy(z[i*k+0], vs[i], f)
	}
	return f
}

// RCB partitions by recursive coordinate bisection: split along the longest
// coordinate extent at the median.
func RCB(coords [][3]float64, p int) []int {
	n := len(coords)
	part := make([]int, n)
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	var split func(set []int, base, parts int)
	split = func(set []int, base, parts int) {
		if parts <= 1 || len(set) <= 1 {
			for _, v := range set {
				part[v] = base
			}
			return
		}
		// Longest extent dimension.
		var mins, maxs [3]float64
		for d := 0; d < 3; d++ {
			mins[d], maxs[d] = math.Inf(1), math.Inf(-1)
		}
		for _, v := range set {
			for d := 0; d < 3; d++ {
				mins[d] = math.Min(mins[d], coords[v][d])
				maxs[d] = math.Max(maxs[d], coords[v][d])
			}
		}
		dim := 0
		for d := 1; d < 3; d++ {
			if maxs[d]-mins[d] > maxs[dim]-mins[dim] {
				dim = d
			}
		}
		sorted := append([]int(nil), set...)
		sort.SliceStable(sorted, func(a, b int) bool {
			return coords[sorted[a]][dim] < coords[sorted[b]][dim]
		})
		pl := parts / 2
		pr := parts - pl
		target := len(set) * pl / parts
		if target == 0 {
			target = 1
		}
		split(sorted[:target], base, pl)
		split(sorted[target:], base+pl, pr)
	}
	split(all, 0, p)
	return part
}

// CutEdges counts graph edges whose endpoints land in different parts (a
// proxy for the shared-vertex communication volume the RSB scheme
// minimizes).
func CutEdges(adj [][]int, part []int) int {
	cut := 0
	for v, ns := range adj {
		for _, w := range ns {
			if w > v && part[v] != part[w] {
				cut++
			}
		}
	}
	return cut
}

// Sizes returns the number of vertices per part.
func Sizes(part []int, p int) []int {
	s := make([]int, p)
	for _, v := range part {
		s[v]++
	}
	return s
}
