// Package core is the façade over the paper's primary contribution: the
// stabilized spectral element Navier–Stokes solver and its scalable
// elliptic solver stack. It re-exports the main entry points so that a
// downstream user can drive the whole system from one import; the
// subsystem packages (mesh, sem, solver, schwarz, coarse, ns, …) remain
// the homes of the implementations.
package core

import (
	"repro/internal/mesh"
	"repro/internal/ns"
	"repro/internal/schwarz"
	"repro/internal/sem"
	"repro/internal/solver"
)

// Navier–Stokes solver (Secs. 2, 4, 5 of the paper).
type (
	// Solver integrates the incompressible Navier–Stokes equations.
	Solver = ns.Solver
	// Config selects the problem, splitting order, filter and solver knobs.
	Config = ns.Config
	// ScalarConfig adds Boussinesq scalar transport.
	ScalarConfig = ns.ScalarConfig
	// StepStats reports per-step iteration counts and CFL.
	StepStats = ns.StepStats
)

// NewSolver builds a Navier–Stokes solver.
func NewSolver(cfg Config) (*Solver, error) { return ns.New(cfg) }

// Discretization and meshes.
type (
	// Mesh is a discretized spectral element mesh.
	Mesh = mesh.Mesh
	// MeshSpec describes a mesh before discretization.
	MeshSpec = mesh.Spec
	// Disc bundles the matrix-free operators over one mesh.
	Disc = sem.Disc
)

// Discretize builds the order-N spectral element mesh from a spec.
func Discretize(spec *MeshSpec, n int) (*Mesh, error) { return mesh.Discretize(spec, n) }

// NewDisc builds the operator set for a mesh (mask may be nil).
func NewDisc(m *Mesh, mask []float64, workers int) *Disc { return sem.New(m, mask, workers) }

// Elliptic solvers (Sec. 5).
type (
	// SchwarzOptions configures the additive overlapping Schwarz
	// preconditioner (FDM or FEM local solves, coarse grid on/off).
	SchwarzOptions = schwarz.Options
	// SchwarzPrecond is the ready preconditioner.
	SchwarzPrecond = schwarz.Precond
	// CGOptions controls conjugate gradient iterations.
	CGOptions = solver.Options
	// CGStats reports one linear solve.
	CGStats = solver.Stats
	// Projector accelerates successive right-hand sides (Fischer 1998).
	Projector = solver.Projector
)

// NewSchwarz builds the Schwarz preconditioner for a discretization.
func NewSchwarz(d *Disc, opt SchwarzOptions) (*SchwarzPrecond, error) {
	return schwarz.New(d, opt)
}

// CG runs preconditioned conjugate gradients.
func CG(apply solver.Operator, dot solver.Dot, x, b []float64, opt CGOptions) CGStats {
	return solver.CG(apply, dot, x, b, opt)
}

// NewProjector creates a projection accelerator with basis capacity l.
func NewProjector(l int, apply solver.Operator, dot solver.Dot) *Projector {
	return solver.NewProjector(l, apply, dot)
}
