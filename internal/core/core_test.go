package core

import (
	"math"
	"testing"

	"repro/internal/mesh"
)

// TestFacadeEndToEnd drives the whole stack through the façade: build a
// mesh, a discretization, a Schwarz-preconditioned CG Poisson solve, and a
// few Navier-Stokes steps.
func TestFacadeEndToEnd(t *testing.T) {
	spec := boxSpec()
	m, err := Discretize(spec, 6)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDisc(m, m.BoundaryMask(nil), 2)
	b := make([]float64, m.K*m.Np)
	for i := range b {
		b[i] = m.B[i] * 2 * math.Pi * math.Pi *
			math.Sin(math.Pi*m.X[i]) * math.Sin(math.Pi*m.Y[i])
	}
	d.Assemble(b)
	pre, err := NewSchwarz(d, SchwarzOptions{UseCoarse: true})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, len(b))
	st := CG(d.Laplacian, d.Dot, x, b, CGOptions{Tol: 1e-10, Relative: true, MaxIter: 300, Precond: pre.Apply})
	if !st.Converged {
		t.Fatalf("CG failed: %+v", st)
	}
	var maxErr float64
	for i := range x {
		exact := math.Sin(math.Pi*m.X[i]) * math.Sin(math.Pi*m.Y[i])
		maxErr = math.Max(maxErr, math.Abs(x[i]-exact))
	}
	if maxErr > 1e-6 {
		t.Errorf("Poisson error %g", maxErr)
	}

	s, err := NewSolver(Config{
		Mesh: m, Re: 100, Dt: 0.01,
		DirichletMask: func(x, y, z float64) bool { return true },
		DirichletVal:  func(x, y, z, t float64) (float64, float64, float64) { return 0, 0, 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	s.SetVelocity(func(x, y, z float64) (float64, float64, float64) {
		return math.Sin(math.Pi*x) * math.Cos(math.Pi*y), 0, 0
	})
	for i := 0; i < 2; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if s.DivergenceNorm() > 1e-6 {
		t.Errorf("NS step not divergence free: %g", s.DivergenceNorm())
	}
}

func boxSpec() *MeshSpec {
	// A 3x3 unit box built directly as a spec (exercising the public
	// mesh-construction path rather than the generators).
	spec := &MeshSpec{Dim: 2}
	nv := 4
	for j := 0; j < nv; j++ {
		for i := 0; i < nv; i++ {
			spec.Verts = append(spec.Verts, [3]float64{float64(i) / 3, float64(j) / 3, 0})
		}
	}
	for j := 0; j < 3; j++ {
		for i := 0; i < 3; i++ {
			spec.Elems = append(spec.Elems, mesh.Element{
				Verts: []int{j*nv + i, j*nv + i + 1, (j+1)*nv + i, (j+1)*nv + i + 1},
			})
		}
	}
	return spec
}
