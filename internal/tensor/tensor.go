// Package tensor implements the tensor-product operator application at the
// heart of spectral element efficiency (Sec. 3 of the paper): matrix-vector
// products with Kronecker-product operators are recast as small dense
// matrix-matrix products, giving O(K N^{d+1}) work and O(K N^d) storage for
// K elements of order N in d dimensions.
//
// Layout convention: element-local fields are stored with the first
// reference coordinate (r) fastest, i.e. u[(t*ns+s)*nr + r] in 3D, which
// makes "apply along r" a (ns·nt) x nr by nr x mr matrix product.
package tensor

import "repro/internal/la"

// ApplyR2D computes out = (I ⊗ A) u: the operator A (mr x nr) acts along
// the r (fastest) dimension of the nr x ns field u. out has shape mr x ns
// (r fastest) and must not alias u.
func ApplyR2D(out, a, u []float64, mr, nr, ns int) {
	// out[s][r'] = Σ_r u[s][r] A[r'][r]  =>  Out = U Aᵀ with U (ns x nr).
	la.MulABt(out, u, a, ns, nr, mr)
}

// ApplyS2D computes out = (B ⊗ I) u: B (ms x ns) acts along the s (slow)
// dimension of the nr x ns field u. out has shape nr x ms and must not
// alias u.
func ApplyS2D(out, b, u []float64, ms, ns, nr int) {
	// Out = B U with U (ns x nr) row-major.
	la.Mul(out, b, u, ms, ns, nr)
}

// Apply2D computes out = (B ⊗ A) u for A (mr x nr), B (ms x ns) and the
// nr x ns field u, using work as scratch (len >= ns*mr). out must not alias
// u or work.
func Apply2D(out, a, b, u, work []float64, mr, nr, ms, ns int) {
	ApplyR2D(work, a, u, mr, nr, ns)
	ApplyS2D(out, b, work, ms, ns, mr)
}

// ApplyR3D applies A (mr x nr) along r of the nr x ns x nt field u; out has
// shape mr x ns x nt.
func ApplyR3D(out, a, u []float64, mr, nr, ns, nt int) {
	la.MulABt(out, u, a, ns*nt, nr, mr)
}

// ApplyS3D applies B (ms x ns) along s of the nr x ns x nt field u; out has
// shape nr x ms x nt.
func ApplyS3D(out, b, u []float64, ms, ns, nr, nt int) {
	for k := 0; k < nt; k++ {
		la.Mul(out[k*ms*nr:(k+1)*ms*nr], b, u[k*ns*nr:(k+1)*ns*nr], ms, ns, nr)
	}
}

// ApplyT3D applies C (mt x nt) along t of the nr x ns x nt field u; out has
// shape nr x ns x mt.
func ApplyT3D(out, c, u []float64, mt, nt, nr, ns int) {
	la.Mul(out, c, u, mt, nt, nr*ns)
}

// Apply3D computes out = (C ⊗ B ⊗ A) u. work must have length at least
// Work3DLen(mr, nr, ms, ns, mt, nt); out must not alias u or work, but may
// alias nothing else is required.
func Apply3D(out, a, b, c, u, work []float64, mr, nr, ms, ns, mt, nt int) {
	w1 := work[:mr*ns*nt]
	w2 := work[mr*ns*nt : mr*ns*nt+mr*ms*nt]
	ApplyR3D(w1, a, u, mr, nr, ns, nt)
	ApplyS3D(w2, b, w1, ms, ns, mr, nt)
	ApplyT3D(out, c, w2, mt, nt, mr, ms)
}

// ApplyDim applies the square operator A (n x n) along reference dimension
// dim (0 = r, 1 = s, 2 = t) of a field with extent n in each of dims (2 or
// 3) dimensions. out must not alias u.
func ApplyDim(out, a, u []float64, n, dims, dim int) {
	if dims == 2 {
		if dim == 0 {
			ApplyR2D(out, a, u, n, n, n)
		} else {
			ApplyS2D(out, a, u, n, n, n)
		}
		return
	}
	switch dim {
	case 0:
		ApplyR3D(out, a, u, n, n, n, n)
	case 1:
		ApplyS3D(out, a, u, n, n, n, n)
	default:
		ApplyT3D(out, a, u, n, n, n, n)
	}
}

// Work3DLen returns the scratch length Apply3D may need for the given shape.
func Work3DLen(mr, nr, ms, ns, mt, nt int) int {
	return mr*ns*nt + mr*ms*nt
}

// FlopsApply2D returns the floating point operations of Apply2D.
func FlopsApply2D(mr, nr, ms, ns int) int64 {
	return 2 * (int64(mr)*int64(nr)*int64(ns) + int64(ms)*int64(ns)*int64(mr))
}

// FlopsApply3D returns the floating point operations of Apply3D.
func FlopsApply3D(mr, nr, ms, ns, mt, nt int) int64 {
	return 2 * (int64(mr)*int64(nr)*int64(ns)*int64(nt) +
		int64(ms)*int64(ns)*int64(mr)*int64(nt) +
		int64(mt)*int64(nt)*int64(mr)*int64(ms))
}
