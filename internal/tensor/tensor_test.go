package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// kron2Ref computes (B ⊗ A) u by explicit Kronecker expansion for reference:
// v[s'*mr+r'] = Σ_{s,r} B[s'][s] A[r'][r] u[s*nr+r].
func kron2Ref(a, b, u []float64, mr, nr, ms, ns int) []float64 {
	v := make([]float64, mr*ms)
	for sp := 0; sp < ms; sp++ {
		for rp := 0; rp < mr; rp++ {
			var sum float64
			for s := 0; s < ns; s++ {
				for r := 0; r < nr; r++ {
					sum += b[sp*ns+s] * a[rp*nr+r] * u[s*nr+r]
				}
			}
			v[sp*mr+rp] = sum
		}
	}
	return v
}

func kron3Ref(a, b, c, u []float64, mr, nr, ms, ns, mt, nt int) []float64 {
	v := make([]float64, mr*ms*mt)
	for tp := 0; tp < mt; tp++ {
		for sp := 0; sp < ms; sp++ {
			for rp := 0; rp < mr; rp++ {
				var sum float64
				for tt := 0; tt < nt; tt++ {
					for s := 0; s < ns; s++ {
						for r := 0; r < nr; r++ {
							sum += c[tp*nt+tt] * b[sp*ns+s] * a[rp*nr+r] * u[(tt*ns+s)*nr+r]
						}
					}
				}
				v[(tp*ms+sp)*mr+rp] = sum
			}
		}
	}
	return v
}

func randSlice(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestApply2DMatchesKronecker(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := [][4]int{{3, 3, 3, 3}, {2, 5, 4, 3}, {7, 7, 7, 7}, {1, 4, 6, 2}}
	for _, cs := range cases {
		mr, nr, ms, ns := cs[0], cs[1], cs[2], cs[3]
		a := randSlice(rng, mr*nr)
		b := randSlice(rng, ms*ns)
		u := randSlice(rng, nr*ns)
		want := kron2Ref(a, b, u, mr, nr, ms, ns)
		got := make([]float64, mr*ms)
		work := make([]float64, ns*mr)
		Apply2D(got, a, b, u, work, mr, nr, ms, ns)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-11 {
				t.Fatalf("case %v: mismatch at %d: %g vs %g", cs, i, got[i], want[i])
			}
		}
	}
}

func TestApply3DMatchesKronecker(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cases := [][6]int{{3, 3, 3, 3, 3, 3}, {2, 4, 3, 5, 4, 2}, {5, 5, 5, 5, 5, 5}}
	for _, cs := range cases {
		mr, nr, ms, ns, mt, nt := cs[0], cs[1], cs[2], cs[3], cs[4], cs[5]
		a := randSlice(rng, mr*nr)
		b := randSlice(rng, ms*ns)
		c := randSlice(rng, mt*nt)
		u := randSlice(rng, nr*ns*nt)
		want := kron3Ref(a, b, c, u, mr, nr, ms, ns, mt, nt)
		got := make([]float64, mr*ms*mt)
		work := make([]float64, Work3DLen(mr, nr, ms, ns, mt, nt))
		Apply3D(got, a, b, c, u, work, mr, nr, ms, ns, mt, nt)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-10 {
				t.Fatalf("case %v: mismatch at %d: %g vs %g", cs, i, got[i], want[i])
			}
		}
	}
}

func TestApply3DQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := func() int { return 1 + rng.Intn(5) }
		mr, nr, ms, ns, mt, nt := dim(), dim(), dim(), dim(), dim(), dim()
		a := randSlice(rng, mr*nr)
		b := randSlice(rng, ms*ns)
		c := randSlice(rng, mt*nt)
		u := randSlice(rng, nr*ns*nt)
		want := kron3Ref(a, b, c, u, mr, nr, ms, ns, mt, nt)
		got := make([]float64, mr*ms*mt)
		work := make([]float64, Work3DLen(mr, nr, ms, ns, mt, nt))
		Apply3D(got, a, b, c, u, work, mr, nr, ms, ns, mt, nt)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestIdentityApply(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 4
	id := make([]float64, n*n)
	for i := 0; i < n; i++ {
		id[i*n+i] = 1
	}
	u := randSlice(rng, n*n*n)
	out := make([]float64, n*n*n)
	work := make([]float64, Work3DLen(n, n, n, n, n, n))
	Apply3D(out, id, id, id, u, work, n, n, n, n, n, n)
	for i := range u {
		if math.Abs(out[i]-u[i]) > 1e-13 {
			t.Fatalf("identity tensor apply changed the field at %d", i)
		}
	}
}

func TestSingleDimensionApplications(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	nr, ns, nt := 3, 4, 5
	u := randSlice(rng, nr*ns*nt)
	a := randSlice(rng, 2*nr)
	id := func(n int) []float64 {
		m := make([]float64, n*n)
		for i := 0; i < n; i++ {
			m[i*n+i] = 1
		}
		return m
	}
	// ApplyR3D == Apply3D with identity B, C.
	wantFull := kron3Ref(a, id(ns), id(nt), u, 2, nr, ns, ns, nt, nt)
	got := make([]float64, 2*ns*nt)
	ApplyR3D(got, a, u, 2, nr, ns, nt)
	for i := range wantFull {
		if math.Abs(got[i]-wantFull[i]) > 1e-12 {
			t.Fatalf("ApplyR3D mismatch at %d", i)
		}
	}
	b := randSlice(rng, 3*ns)
	wantS := kron3Ref(id(nr), b, id(nt), u, nr, nr, 3, ns, nt, nt)
	gotS := make([]float64, nr*3*nt)
	ApplyS3D(gotS, b, u, 3, ns, nr, nt)
	for i := range wantS {
		if math.Abs(gotS[i]-wantS[i]) > 1e-12 {
			t.Fatalf("ApplyS3D mismatch at %d", i)
		}
	}
	c := randSlice(rng, 2*nt)
	wantT := kron3Ref(id(nr), id(ns), c, u, nr, nr, ns, ns, 2, nt)
	gotT := make([]float64, nr*ns*2)
	ApplyT3D(gotT, c, u, 2, nt, nr, ns)
	for i := range wantT {
		if math.Abs(gotT[i]-wantT[i]) > 1e-12 {
			t.Fatalf("ApplyT3D mismatch at %d", i)
		}
	}
}

func TestFlopCounts(t *testing.T) {
	if f := FlopsApply2D(4, 4, 4, 4); f != 2*(64+64) {
		t.Errorf("FlopsApply2D = %d", f)
	}
	if f := FlopsApply3D(2, 2, 2, 2, 2, 2); f != 2*3*16 {
		t.Errorf("FlopsApply3D = %d", f)
	}
}
