package instrument

import (
	"bytes"
	"strings"
	"testing"
)

func TestSampleVRanksFiltersTracks(t *testing.T) {
	tr := NewTracer()
	tr.DisableWallClock()
	tr.SampleVRanks([]int{0, 2})
	tr.SetProcessName(PidMachine, "machine")
	for tid := 0; tid < 4; tid++ {
		tr.SetThreadName(PidMachine, tid, "rank")
		if want := tid == 0 || tid == 2; tr.WantsV(tid) != want {
			t.Fatalf("WantsV(%d) = %v, want %v", tid, tr.WantsV(tid), want)
		}
		tr.SpanV(tid, "work", "test", 0, 1, nil)
		tr.InstantV(tid, "mark", "test", 0.5, nil)
	}
	// Flow pair between two sampled ranks survives; events touching an
	// unsampled rank are dropped.
	tr.FlowV("s", 0, "msg", 1, "0.1")
	tr.FlowV("f", 2, "msg", 1, "0.1")
	tr.FlowV("s", 1, "msg", 1, "1.1") // unsampled sender: dropped
	tr.FlowV("f", 3, "msg", 1, "1.1") // unsampled receiver: dropped

	tids := map[int]bool{}
	for _, ev := range tr.Events() {
		if ev.Pid == PidMachine {
			tids[ev.Tid] = true
		}
	}
	if len(tids) != 2 || !tids[0] || !tids[2] {
		t.Fatalf("machine tracks = %v, want exactly {0, 2}", tids)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes(), 2); err != nil {
		t.Fatalf("sampled trace invalid: %v", err)
	}
	if err := ValidateFlowClosure(buf.Bytes()); err != nil {
		t.Fatalf("sampled trace not flow-closed: %v", err)
	}
	// Thread-name metadata for unsampled ranks must not leak into the trace.
	if got := strings.Count(buf.String(), `"thread_name"`); got != 2 {
		t.Fatalf("trace names %d threads, want 2", got)
	}
}

func TestSampleVRanksEmptyRestoresFullTracing(t *testing.T) {
	tr := NewTracer()
	tr.SampleVRanks([]int{1})
	tr.SampleVRanks(nil)
	if !tr.WantsV(0) || !tr.WantsV(7) {
		t.Fatal("nil SampleVRanks should restore full tracing")
	}
	var nilTr *Tracer
	if nilTr.WantsV(0) {
		t.Fatal("nil tracer wants nothing")
	}
}

func TestValidateFlowClosureCatchesOpenFlows(t *testing.T) {
	open := []byte(`{"traceEvents":[
		{"ph":"s","ts":1,"pid":1,"tid":0,"id":"a.1"},
		{"ph":"s","ts":2,"pid":1,"tid":0,"id":"a.2"},
		{"ph":"f","ts":3,"pid":1,"tid":1,"id":"a.1"}]}`)
	// The structural validator accepts s-without-f...
	if err := ValidateChromeTrace(open, 0); err != nil {
		t.Fatalf("structural check should pass: %v", err)
	}
	// ...the closure validator does not.
	if err := ValidateFlowClosure(open); err == nil {
		t.Fatal("ValidateFlowClosure missed an unmatched flow start")
	}
	closed := []byte(`{"traceEvents":[
		{"ph":"s","ts":1,"pid":1,"tid":0,"id":"a.1"},
		{"ph":"f","ts":3,"pid":1,"tid":1,"id":"a.1"}]}`)
	if err := ValidateFlowClosure(closed); err != nil {
		t.Fatalf("closed trace rejected: %v", err)
	}
}
