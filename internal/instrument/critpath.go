package instrument

// critpath.go analyzes the virtual-clock span DAG of a recorded trace: the
// per-rank X spans are the nodes' work, and the s/f flow arrows (emitted by
// comm.Send/deliver) are the dependency edges between ranks. Walking the
// arrows backward from the last rank to finish yields the run's critical
// path — the single chain of local work and message waits that determines
// the modeled completion time — which is then attributed to phase ×
// category × rank. This is the measured counterpart of the paper's Sec. 7
// performance model: instead of predicting where P=1024 time goes, it reads
// it off the trace.
//
// The walk exploits an exactness property of the simulated machine: a
// receive gates its receiver if and only if the flow-finish timestamp
// equals the flow-start timestamp. The sender emits "s" at its clock after
// paying the send cost (= the message arrival time), and the receiver
// emits "f" at its clock after delivery, which is max(arrival, own time).
// Equality therefore means the receiver was waiting — float-exact, no
// epsilon. At such an arrow the path hops to the sender and continues
// behind its send span; everything between two gating receives is the
// rank's own (critical) local work.

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// CPSegment is one hop of the critical path, forward in time. Wire
// segments cover a gating message's transmit cost on the sender's clock;
// local segments cover work (or modeled comm cost inside collectives) on
// one rank.
type CPSegment struct {
	Rank     int     `json:"rank"`
	T0       float64 `json:"t0"` // seconds, virtual
	T1       float64 `json:"t1"`
	Wire     bool    `json:"wire,omitempty"`
	Category string  `json:"category"` // allreduce, gs, send, coarse, schwarz/*, fault, compute
	Phase    string  `json:"phase"`    // convect, viscous, pressure, filter, or setup
	Step     int     `json:"step"`     // 0 = outside any step (setup)
}

// CPStep aggregates the critical path inside one time step.
type CPStep struct {
	Step       int                `json:"step"`
	Seconds    float64            `json:"seconds"`
	ByCategory map[string]float64 `json:"by_category"`
	ByPhase    map[string]float64 `json:"by_phase"`
	ByRank     map[int]float64    `json:"by_rank"`
}

// CPRank is one rank's share of the critical path: OnPath is the virtual
// time the path spent on the rank, Slack how much of the run's total it
// was off the path.
type CPRank struct {
	Rank    int     `json:"rank"`
	OnPath  float64 `json:"on_path"`
	Slack   float64 `json:"slack"`
	EndTime float64 `json:"end_time"` // rank's final clock
}

// CritPath is the analyzer's result.
type CritPath struct {
	TotalSeconds float64            `json:"total_seconds"` // modeled completion time (path length)
	EndRank      int                `json:"end_rank"`      // rank whose finish defines the total
	Ranks        int                `json:"ranks"`         // rank tracks present in the trace
	Hops         int                `json:"hops"`          // gating receives on the path
	ByCategory   map[string]float64 `json:"by_category"`
	ByPhase      map[string]float64 `json:"by_phase"`
	Steps        []CPStep           `json:"steps"`
	PerRank      []CPRank           `json:"per_rank"` // sorted by OnPath descending
	Segments     []CPSegment        `json:"segments,omitempty"`
}

// cpSpan is a parsed X span on a machine track.
type cpSpan struct {
	t0, t1 float64 // seconds
	prio   int     // attribution priority, 0 = not an attribution span
	label  string
}

// cpPhase is a parsed ns/* phase span.
type cpPhase struct {
	t0, t1 float64
	phase  string
	step   int
}

// cpFlow is a flow-finish on a rank, annotated with its start.
type cpFlow struct {
	ts     float64 // receiver timestamp (seconds)
	sTs    float64 // sender timestamp
	sRank  int
	gating bool // ts == sTs: the receiver was waiting on this message
}

// attrClass ranks a span for time attribution. Collectives win over the
// spans that contain them (an allreduce inside the Schwarz coarse solve is
// allreduce time, which is exactly the latency story the strong-scaling
// study tells); point-to-point sends and exchanges come next; preconditioner
// and fault windows claim what no comm span covers; the rest is compute.
func attrClass(name, cat string) (int, string) {
	switch name {
	case "allreduce", "bcast", "gather", "barrier":
		return 1, name
	case "gs/exchange":
		return 2, "gs"
	case "send":
		return 3, "send"
	}
	if cat == "fault" {
		return 4, "fault"
	}
	if name == "coarse/xxt.solve" {
		return 5, "coarse"
	}
	if cat == "precond" {
		return 6, name // schwarz/local, schwarz/coarse
	}
	return 0, ""
}

// rankTL is one rank's parsed timeline.
type rankTL struct {
	spans   []cpSpan // attribution spans sorted by t0
	maxDur  float64  // longest attribution span (bounds overlap scans)
	phases  []cpPhase
	flows   []cpFlow           // sorted by ts
	sendEnd map[float64]cpSpan // send-span lookup by end time
	end     float64            // final clock (max span end)
}

// AnalyzeCriticalPath parses a Chrome trace produced by the simulated
// machine and walks its critical path. The trace may be rank-sampled: the
// walk then runs over the recorded tracks only (flow arrows exist only
// between sampled ranks), which bounds the true critical path from below.
func AnalyzeCriticalPath(data []byte) (*CritPath, error) {
	var top struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &top); err != nil {
		return nil, fmt.Errorf("critpath: not a JSON trace: %w", err)
	}
	tls := make(map[int]*rankTL)
	tl := func(tid int) *rankTL {
		t, ok := tls[tid]
		if !ok {
			t = &rankTL{sendEnd: make(map[float64]cpSpan)}
			tls[tid] = t
		}
		return t
	}
	// First pass: spans, phases, and flow starts.
	type flowStart struct {
		rank int
		ts   float64
	}
	starts := make(map[string]flowStart)
	type rawFlowEnd struct {
		rank int
		ts   float64
		id   string
	}
	var ends []rawFlowEnd
	for i, raw := range top.TraceEvents {
		var ev TraceEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("critpath: event %d: %w", i, err)
		}
		if ev.Pid != PidMachine {
			continue
		}
		t := tl(ev.Tid)
		switch ev.Ph {
		case "X":
			t0, t1 := ev.Ts/1e6, (ev.Ts+ev.Dur)/1e6
			if t1 > t.end {
				t.end = t1
			}
			if prio, label := attrClass(ev.Name, ev.Cat); prio > 0 {
				t.spans = append(t.spans, cpSpan{t0: t0, t1: t1, prio: prio, label: label})
				if d := t1 - t0; d > t.maxDur {
					t.maxDur = d
				}
				if ev.Name == "send" {
					t.sendEnd[t1] = cpSpan{t0: t0, t1: t1, prio: 3, label: "send"}
				}
			}
			if ev.Cat == "ns" {
				step := 0
				if s, ok := ev.Args["step"].(float64); ok {
					step = int(s)
				}
				phase := ev.Name
				if len(phase) > 3 && phase[:3] == "ns/" {
					phase = phase[3:]
				}
				t.phases = append(t.phases, cpPhase{t0: t0, t1: t1, phase: phase, step: step})
			}
		case "s":
			starts[ev.ID] = flowStart{rank: ev.Tid, ts: ev.Ts / 1e6}
		case "f":
			ends = append(ends, rawFlowEnd{rank: ev.Tid, ts: ev.Ts / 1e6, id: ev.ID})
		}
	}
	if len(tls) == 0 {
		return nil, fmt.Errorf("critpath: no machine-rank events (pid %d) in trace", PidMachine)
	}
	for _, fe := range ends {
		st, ok := starts[fe.id]
		if !ok {
			return nil, fmt.Errorf("critpath: flow finish %q without start", fe.id)
		}
		t := tl(fe.rank)
		t.flows = append(t.flows, cpFlow{ts: fe.ts, sTs: st.ts, sRank: st.rank, gating: fe.ts == st.ts})
	}
	for _, t := range tls {
		sort.Slice(t.spans, func(i, j int) bool { return t.spans[i].t0 < t.spans[j].t0 })
		sort.Slice(t.phases, func(i, j int) bool { return t.phases[i].t0 < t.phases[j].t0 })
		sort.Slice(t.flows, func(i, j int) bool { return t.flows[i].ts < t.flows[j].ts })
	}

	// Walk backward from the rank that finishes last.
	endRank, endTime := -1, math.Inf(-1)
	ranksSorted := make([]int, 0, len(tls))
	for id, t := range tls {
		ranksSorted = append(ranksSorted, id)
		if t.end > endTime || (t.end == endTime && id < endRank) {
			endRank, endTime = id, t.end
		}
	}
	sort.Ints(ranksSorted)

	var segs []CPSegment // built backward, reversed at the end
	hops := 0
	rank, t := endRank, endTime
	for t > 0 {
		cur := tls[rank]
		// Latest gating receive at or before t.
		idx := sort.Search(len(cur.flows), func(i int) bool { return cur.flows[i].ts > t }) - 1
		for idx >= 0 && !cur.flows[idx].gating {
			idx--
		}
		if idx < 0 {
			segs = appendAttributed(segs, tls, rank, 0, t, false)
			break
		}
		f := cur.flows[idx]
		segs = appendAttributed(segs, tls, rank, f.ts, t, false)
		// Hop to the sender, crossing its send span (the wire time).
		sender := tls[f.sRank]
		send, ok := sender.sendEnd[f.sTs]
		if !ok || send.t0 >= f.ts {
			// No send span recorded (shouldn't happen) or no progress
			// possible; attribute the rest locally and stop.
			segs = appendAttributed(segs, tls, rank, 0, f.ts, false)
			break
		}
		segs = appendAttributed(segs, tls, f.sRank, send.t0, send.t1, true)
		hops++
		rank, t = f.sRank, send.t0
	}
	// Reverse into forward time order.
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}

	cp := &CritPath{
		TotalSeconds: endTime,
		EndRank:      endRank,
		Ranks:        len(tls),
		Hops:         hops,
		ByCategory:   map[string]float64{},
		ByPhase:      map[string]float64{},
		Segments:     segs,
	}
	stepAgg := map[int]*CPStep{}
	onPath := map[int]float64{}
	for _, s := range segs {
		d := s.T1 - s.T0
		if d <= 0 {
			continue
		}
		cp.ByCategory[s.Category] += d
		cp.ByPhase[s.Phase] += d
		onPath[s.Rank] += d
		st, ok := stepAgg[s.Step]
		if !ok {
			st = &CPStep{Step: s.Step,
				ByCategory: map[string]float64{}, ByPhase: map[string]float64{}, ByRank: map[int]float64{}}
			stepAgg[s.Step] = st
		}
		st.Seconds += d
		st.ByCategory[s.Category] += d
		st.ByPhase[s.Phase] += d
		st.ByRank[s.Rank] += d
	}
	stepIDs := make([]int, 0, len(stepAgg))
	for id := range stepAgg {
		stepIDs = append(stepIDs, id)
	}
	sort.Ints(stepIDs)
	for _, id := range stepIDs {
		cp.Steps = append(cp.Steps, *stepAgg[id])
	}
	for _, id := range ranksSorted {
		cp.PerRank = append(cp.PerRank, CPRank{
			Rank: id, OnPath: onPath[id], Slack: endTime - onPath[id], EndTime: tls[id].end,
		})
	}
	sort.SliceStable(cp.PerRank, func(i, j int) bool { return cp.PerRank[i].OnPath > cp.PerRank[j].OnPath })
	return cp, nil
}

// appendAttributed splits [a, b] on rank by attribution span coverage and
// phase windows and appends the resulting segments (backward order is fine
// — the caller reverses once at the end).
func appendAttributed(segs []CPSegment, tls map[int]*rankTL, rank int, a, b float64, wire bool) []CPSegment {
	if b <= a {
		return segs
	}
	t := tls[rank]
	// Candidate attribution spans overlapping [a, b]: spans are sorted by
	// t0 and nested, so scanning left is bounded by the longest span.
	var cands []cpSpan
	hi := sort.Search(len(t.spans), func(i int) bool { return t.spans[i].t0 >= b })
	for i := hi - 1; i >= 0 && t.spans[i].t0+t.maxDur > a; i-- {
		if sp := t.spans[i]; sp.t1 > a {
			cands = append(cands, sp)
		}
	}
	// Elementary intervals between all span boundaries inside [a, b].
	cuts := []float64{a, b}
	for _, sp := range cands {
		if sp.t0 > a && sp.t0 < b {
			cuts = append(cuts, sp.t0)
		}
		if sp.t1 > a && sp.t1 < b {
			cuts = append(cuts, sp.t1)
		}
	}
	sort.Float64s(cuts)
	// Emit backward in time: the caller builds the whole path backward and
	// reverses once, which restores forward order inside each stretch too.
	for i := len(cuts) - 2; i >= 0; i-- {
		lo, hi := cuts[i], cuts[i+1]
		if hi <= lo {
			continue
		}
		mid := lo + (hi-lo)/2
		cat := "compute"
		best := int(^uint(0) >> 1)
		for _, sp := range cands {
			if sp.t0 <= mid && mid < sp.t1 && sp.prio < best {
				best, cat = sp.prio, sp.label
			}
		}
		phase, step := phaseAt(t, mid)
		segs = append(segs, CPSegment{Rank: rank, T0: lo, T1: hi, Wire: wire,
			Category: cat, Phase: phase, Step: step})
	}
	return segs
}

// phaseAt finds the ns phase window covering time ts on a rank ("setup"
// outside any step).
func phaseAt(t *rankTL, ts float64) (string, int) {
	idx := sort.Search(len(t.phases), func(i int) bool { return t.phases[i].t0 > ts }) - 1
	// Phase spans partition each step but steps abut; scan left a little in
	// case of zero-length phases sharing a start.
	for i := idx; i >= 0 && i > idx-4; i-- {
		if ph := t.phases[i]; ph.t0 <= ts && ts < ph.t1 {
			return ph.phase, ph.step
		}
	}
	return "setup", 0
}
