package instrument

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryNoOps(t *testing.T) {
	var r *Registry
	tm := r.Timer("a")
	c := r.Counter("b")
	g := r.Gauge("c")
	if tm != nil || c != nil || g != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	// All recording calls must be safe no-ops on nil handles.
	tm.End(tm.Begin())
	tm.Add(time.Second)
	c.Inc()
	c.Add(5)
	g.Set(3)
	if tm.Total() != 0 || tm.Count() != 0 || c.Value() != 0 || g.Last() != 0 || g.Mean() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	rep := r.Report()
	if len(rep.Timers)+len(rep.Counters)+len(rep.Gauges) != 0 {
		t.Fatal("nil registry report not empty")
	}
}

func TestTimerAccumulates(t *testing.T) {
	r := New()
	tm := r.Timer("phase")
	if r.Timer("phase") != tm {
		t.Fatal("Timer must return the same handle per name")
	}
	tm.Add(10 * time.Millisecond)
	tm.Add(5 * time.Millisecond)
	if tm.Total() != 15*time.Millisecond || tm.Count() != 2 {
		t.Fatalf("total %v count %d", tm.Total(), tm.Count())
	}
	start := tm.Begin()
	if start.IsZero() {
		t.Fatal("Begin on a live timer must read the clock")
	}
	tm.End(start)
	if tm.Count() != 3 {
		t.Fatal("End must count the section")
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := New()
	c := r.Counter("iters")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter %d", c.Value())
	}
	g := r.Gauge("basis")
	for _, v := range []float64{4, 2, 6} {
		g.Set(v)
	}
	if g.Last() != 6 || g.Mean() != 4 {
		t.Fatalf("gauge last %g mean %g", g.Last(), g.Mean())
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("shared").Inc()
				r.Timer("t").Add(time.Nanosecond)
				r.Gauge("g").Set(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("counter %d want 8000", got)
	}
	if got := r.Timer("t").Count(); got != 8000 {
		t.Fatalf("timer count %d want 8000", got)
	}
}

func TestReportSortedAndRendered(t *testing.T) {
	r := New()
	r.Timer("b/two").Add(time.Second)
	r.Timer("a/one").Add(3 * time.Second)
	r.Counter("z").Add(7)
	r.Counter("a").Add(1)
	r.Gauge("g").Set(2.5)
	rep := r.Report()
	if rep.Timers[0].Name != "a/one" || rep.Counters[0].Name != "a" {
		t.Fatal("report not sorted by name")
	}
	if rep.Timers[0].Seconds != 3 || rep.Timers[0].Count != 1 {
		t.Fatalf("timer stat %+v", rep.Timers[0])
	}
	s := rep.String()
	for _, want := range []string{"a/one", "b/two", "75.0%", "z", "2.5"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered report missing %q:\n%s", want, s)
		}
	}
	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Timers) != 2 || back.Timers[1].Name != "b/two" {
		t.Fatal("JSON round-trip lost data")
	}
}
