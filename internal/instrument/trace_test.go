package instrument

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestNilTracerNoOp: the nil *Tracer must absorb every call, matching the
// Timer/Counter/Gauge contract.
func TestNilTracerNoOp(t *testing.T) {
	var tr *Tracer
	sp := tr.Begin(PidWall, 0, "x", "c")
	sp.End()
	sp.EndWith(map[string]any{"k": 1})
	tr.SpanV(0, "x", "c", 0, 1, nil)
	tr.InstantV(0, "x", "c", 0, nil)
	tr.FlowV("s", 0, "x", 0, "id")
	tr.SetProcessName(0, "p")
	tr.SetThreadName(0, 0, "t")
	tr.DisableWallClock()
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer recorded events")
	}
	if err := tr.WriteJSON(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteJSON on nil tracer should error")
	}
}

// TestTracerGoldenShape builds a trace by hand — nested wall spans, virtual
// spans on two rank tracks, a flow pair — and checks the serialized JSON
// validates and has the golden structure.
func TestTracerGoldenShape(t *testing.T) {
	tr := NewTracer()
	tr.DisableWallClock()
	tr.SetProcessName(PidWall, "wall")
	tr.SetProcessName(PidMachine, "machine")
	tr.SetThreadName(PidMachine, 0, "rank 0")
	tr.SetThreadName(PidMachine, 1, "rank 1")

	outer := tr.Begin(PidWall, 0, "step", "ns")
	inner := tr.Begin(PidWall, 0, "cg", "solver")
	inner.EndWith(map[string]any{"iterations": 3})
	outer.End()

	// Rank 0: enclosing collective emitted after its nested send (emission
	// order inverted vs time order, as the real producers do).
	tr.SpanV(0, "send", "comm", 1e-6, 2e-6, nil)
	tr.FlowV("s", 0, "msg", 2e-6, "0.1")
	tr.SpanV(0, "allreduce", "comm", 1e-6, 5e-6, nil)
	tr.FlowV("f", 1, "msg", 3e-6, "0.1")
	tr.InstantV(1, "recv", "comm", 3e-6, nil)
	tr.SpanV(1, "allreduce", "comm", 0, 5e-6, nil)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes(), 2); err != nil {
		t.Fatal(err)
	}
	// Serialized order per track must be time-sorted with enclosing X spans
	// first despite later emission.
	evs := tr.Events()
	var rank0 []TraceEvent
	for _, ev := range evs {
		if ev.Pid == PidMachine && ev.Tid == 0 {
			rank0 = append(rank0, ev)
		}
	}
	if len(rank0) != 3 {
		t.Fatalf("rank 0 track has %d events, want 3", len(rank0))
	}
	if rank0[0].Name != "allreduce" || rank0[1].Name != "send" {
		t.Fatalf("enclosing allreduce must sort before nested send, got %q then %q",
			rank0[0].Name, rank0[1].Name)
	}
	// displayTimeUnit and top-level shape.
	var top map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
		t.Fatal(err)
	}
	if _, ok := top["traceEvents"]; !ok {
		t.Fatal("missing traceEvents")
	}
}

// TestValidateChromeTraceRejects: the validator must catch the failure
// modes it exists for.
func TestValidateChromeTraceRejects(t *testing.T) {
	cases := []struct {
		name, trace, wantErr string
	}{
		{"missing ts", `{"traceEvents":[{"ph":"i","pid":0,"tid":0}]}`, "missing required field"},
		{"unbalanced B", `{"traceEvents":[{"ph":"B","ts":0,"pid":0,"tid":0,"name":"a"}]}`, "unclosed"},
		{"E without B", `{"traceEvents":[{"ph":"E","ts":0,"pid":0,"tid":0,"name":"a"}]}`, "no open B"},
		{"mismatched E", `{"traceEvents":[{"ph":"B","ts":0,"pid":0,"tid":0,"name":"a"},{"ph":"E","ts":1,"pid":0,"tid":0,"name":"b"}]}`, "closes"},
		{"time reversal", `{"traceEvents":[{"ph":"i","ts":5,"pid":1,"tid":0},{"ph":"i","ts":1,"pid":1,"tid":0}]}`, "decreases"},
		{"negative dur", `{"traceEvents":[{"ph":"X","ts":0,"dur":-1,"pid":1,"tid":0,"name":"a"}]}`, "negative dur"},
		{"orphan flow", `{"traceEvents":[{"ph":"f","ts":0,"pid":1,"tid":0,"id":"7"}]}`, "without matching start"},
		{"not json", `[]`, "not a JSON object"},
	}
	for _, c := range cases {
		err := ValidateChromeTrace([]byte(c.trace), 0)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: got %v, want error containing %q", c.name, err, c.wantErr)
		}
	}
	// Rank-count floor.
	ok := `{"traceEvents":[{"ph":"i","ts":0,"pid":1,"tid":0}]}`
	if err := ValidateChromeTrace([]byte(ok), 2); err == nil {
		t.Error("want error for too few rank tracks")
	}
	if err := ValidateChromeTrace([]byte(ok), 1); err != nil {
		t.Errorf("valid single-rank trace rejected: %v", err)
	}
}

// TestTimeSeriesJSONL: records serialize one per line; the nil collector
// no-ops.
func TestTimeSeriesJSONL(t *testing.T) {
	var nilTS *TimeSeries
	nilTS.Append(1)
	if nilTS.Len() != 0 || nilTS.Records() != nil {
		t.Fatal("nil TimeSeries recorded")
	}
	if err := nilTS.WriteJSONL(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteJSONL on nil TimeSeries should error")
	}

	ts := NewTimeSeries()
	type rec struct {
		Step int     `json:"step"`
		Res  float64 `json:"res"`
	}
	ts.Append(rec{1, 0.5})
	ts.Append(rec{2, 0.25})
	var buf bytes.Buffer
	if err := ts.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2", len(lines))
	}
	for i, ln := range lines {
		var got rec
		if err := json.Unmarshal([]byte(ln), &got); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if got.Step != i+1 {
			t.Fatalf("line %d: step %d", i, got.Step)
		}
	}
}

func TestCountCategory(t *testing.T) {
	tr := NewTracer()
	tr.DisableWallClock()
	tr.SpanV(0, "fault/retry", "fault", 0, 1e-6, nil)
	tr.SpanV(1, "fault/pause", "fault", 0, 2e-6, nil)
	tr.SpanV(0, "gs/exchange", "gs", 1e-6, 3e-6, nil)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if n, err := CountCategory(buf.Bytes(), "fault"); err != nil || n != 2 {
		t.Fatalf("fault count %d (err %v), want 2", n, err)
	}
	if n, err := CountCategory(buf.Bytes(), "nope"); err != nil || n != 0 {
		t.Fatalf("absent category count %d (err %v), want 0", n, err)
	}
	if _, err := CountCategory([]byte("not json"), "fault"); err == nil {
		t.Fatal("malformed trace accepted")
	}
}
