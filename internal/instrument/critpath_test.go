package instrument

import (
	"bytes"
	"math"
	"testing"
)

// buildCritTrace constructs a two-rank trace with one gating message:
// rank 0 computes for 5 µs, spends 3 µs sending, and rank 1 (idle after
// 2 µs of setup work) resumes at the arrival and works 12 µs more inside
// a pressure phase window. The critical path is rank0 [0,5] compute →
// wire [5,8] → rank1 [8,20] pressure.
func buildCritTrace(t *testing.T) []byte {
	t.Helper()
	us := 1e-6
	tr := NewTracer()
	tr.DisableWallClock()
	tr.SpanV(0, "setup.work", "compute", 0, 5*us, nil)
	tr.SpanV(0, "send", "comm", 5*us, 8*us, nil)
	tr.FlowV("s", 0, "msg", 8*us, "0.1")

	tr.SpanV(1, "early.work", "compute", 0, 2*us, nil)
	tr.FlowV("f", 1, "msg", 8*us, "0.1") // gating: ts_f == ts_s
	tr.SpanV(1, "ns/pressure", "ns", 8*us, 20*us, map[string]any{"step": 2})
	tr.SpanV(1, "allreduce", "comm", 14*us, 17*us, nil)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestAnalyzeCriticalPathSyntheticChain(t *testing.T) {
	cp, err := AnalyzeCriticalPath(buildCritTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	us := 1e-6
	if cp.EndRank != 1 || math.Abs(cp.TotalSeconds-20*us) > 1e-18 {
		t.Fatalf("end rank %d total %g, want rank 1 at 20µs", cp.EndRank, cp.TotalSeconds)
	}
	if cp.Hops != 1 {
		t.Fatalf("hops = %d, want 1 gating receive", cp.Hops)
	}
	// Segment sum covers the whole path.
	var sum float64
	for _, s := range cp.Segments {
		sum += s.T1 - s.T0
	}
	if math.Abs(sum-cp.TotalSeconds) > 1e-15 {
		t.Fatalf("segments sum to %g, want %g", sum, cp.TotalSeconds)
	}
	// Segments are forward in time and alternate rank 0 → wire → rank 1.
	for i := 1; i < len(cp.Segments); i++ {
		if cp.Segments[i].T0 < cp.Segments[i-1].T1-1e-18 {
			t.Fatalf("segments not forward-ordered at %d: %+v", i, cp.Segments)
		}
	}
	if cp.Segments[0].Rank != 0 || cp.Segments[len(cp.Segments)-1].Rank != 1 {
		t.Fatalf("path endpoints wrong: %+v", cp.Segments)
	}
	// Attribution: 3 µs wire (send), 3 µs allreduce inside the pressure
	// window, 5+9 µs compute.
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-12 }
	if !approx(cp.ByCategory["send"], 3*us) {
		t.Errorf("send time %g, want 3µs", cp.ByCategory["send"])
	}
	if !approx(cp.ByCategory["allreduce"], 3*us) {
		t.Errorf("allreduce time %g, want 3µs", cp.ByCategory["allreduce"])
	}
	if !approx(cp.ByCategory["compute"], 14*us) {
		t.Errorf("compute time %g, want 14µs", cp.ByCategory["compute"])
	}
	// Phase attribution: rank 1's work after the receive is step 2 pressure;
	// everything on rank 0 is setup.
	if !approx(cp.ByPhase["pressure"], 12*us) {
		t.Errorf("pressure time %g, want 12µs", cp.ByPhase["pressure"])
	}
	if !approx(cp.ByPhase["setup"], 8*us) {
		t.Errorf("setup time %g, want 8µs", cp.ByPhase["setup"])
	}
	foundStep2 := false
	for _, st := range cp.Steps {
		if st.Step == 2 {
			foundStep2 = true
			if !approx(st.Seconds, 12*us) {
				t.Errorf("step 2 path time %g, want 12µs", st.Seconds)
			}
		}
	}
	if !foundStep2 {
		t.Fatalf("no step-2 aggregate: %+v", cp.Steps)
	}
	// Per-rank slack: rank 1 carries 12 µs of path, rank 0 carries 8 µs
	// (5 compute + 3 wire, charged to the sender's clock).
	onPath := map[int]float64{}
	for _, pr := range cp.PerRank {
		onPath[pr.Rank] = pr.OnPath
		if !approx(pr.Slack, cp.TotalSeconds-pr.OnPath) {
			t.Errorf("rank %d slack %g inconsistent", pr.Rank, pr.Slack)
		}
	}
	if !approx(onPath[1], 12*us) || !approx(onPath[0], 8*us) {
		t.Errorf("on-path split %v, want rank0=8µs rank1=12µs", onPath)
	}
}

// A receive that arrives early (receiver already past the arrival time)
// must not divert the path: the walk should run straight through it.
func TestAnalyzeCriticalPathIgnoresNonGatingReceives(t *testing.T) {
	us := 1e-6
	tr := NewTracer()
	tr.DisableWallClock()
	tr.SpanV(0, "send", "comm", 0, 2*us, nil)
	tr.FlowV("s", 0, "msg", 2*us, "0.1")
	tr.SpanV(1, "work", "compute", 0, 10*us, nil)
	tr.FlowV("f", 1, "msg", 5*us, "0.1") // ts_f > ts_s: receiver was busy
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	cp, err := AnalyzeCriticalPath(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if cp.Hops != 0 {
		t.Fatalf("hops = %d, want 0 (receive was not gating)", cp.Hops)
	}
	if cp.EndRank != 1 || math.Abs(cp.TotalSeconds-10*us) > 1e-18 {
		t.Fatalf("path should be rank 1's local work: %+v", cp)
	}
}

func TestAnalyzeCriticalPathRejectsGarbage(t *testing.T) {
	if _, err := AnalyzeCriticalPath([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := AnalyzeCriticalPath([]byte(`{"traceEvents":[]}`)); err == nil {
		t.Fatal("empty trace accepted")
	}
}
