// Package instrument is the solver-wide metrics layer: named wall-clock
// timers, monotonic counters, and last/min/max/mean gauges that the hot
// layers (ns stepping, CG, Schwarz, the XXT coarse solver, the simulated
// comm network, and the gather–scatter) thread through their phases so a
// run can report the per-phase breakdowns of the paper's Sec. 7 —
// compute vs. communication time, iteration counts, projection savings —
// instead of a single end-to-end wall clock.
//
// The default is off and costs (almost) nothing: every handle type
// no-ops on a nil receiver, so instrumented code holds plain possibly-nil
// pointers and pays one predictable branch per event when no Registry is
// attached. Recording methods are safe for concurrent use (the comm ranks
// are goroutines), backed by atomics on the hot paths.
package instrument

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Timer accumulates elapsed time and an event count under one name.
// The zero registry handle (nil *Timer) is a no-op.
type Timer struct {
	name  string
	ns    atomic.Int64
	count atomic.Int64
}

// Begin returns the start instant of a timed section. On a nil timer it
// returns the zero time without reading the clock.
func (t *Timer) Begin() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// End closes a section opened with Begin, accumulating the elapsed time.
func (t *Timer) End(start time.Time) {
	if t == nil {
		return
	}
	t.ns.Add(int64(time.Since(start)))
	t.count.Add(1)
}

// Add accumulates an externally-measured duration (one event). This is also
// how virtual (modeled) clocks are recorded: convert seconds to a Duration.
func (t *Timer) Add(d time.Duration) {
	if t == nil {
		return
	}
	t.ns.Add(int64(d))
	t.count.Add(1)
}

// Total returns the accumulated time.
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.ns.Load())
}

// Count returns the number of recorded sections.
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// Counter is a monotonically increasing integer (iterations, messages,
// words exchanged). Nil receivers no-op.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge records a sampled value, keeping last/min/max and the mean over
// all samples (projection basis size, residual savings). Nil receivers
// no-op.
type Gauge struct {
	name string
	mu   sync.Mutex
	last float64
	min  float64
	max  float64
	sum  float64
	n    int64
}

// Set records one sample.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	if g.n == 0 || v < g.min {
		g.min = v
	}
	if g.n == 0 || v > g.max {
		g.max = v
	}
	g.last = v
	g.sum += v
	g.n++
	g.mu.Unlock()
}

// Last returns the most recent sample (0 before any Set).
func (g *Gauge) Last() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.last
}

// Mean returns the mean of all samples (0 before any Set).
func (g *Gauge) Mean() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.n == 0 {
		return 0
	}
	return g.sum / float64(g.n)
}

// RunMeta identifies the run a report came from: the case and machine
// configuration that make a stats artifact self-describing and diffable
// across runs. Attach it with Registry.SetMeta; it is serialized ahead of
// the metric sections.
type RunMeta struct {
	Case        string `json:"case,omitempty"`
	Ranks       int    `json:"ranks,omitempty"`
	Elements    int    `json:"elements,omitempty"`
	Order       int    `json:"order,omitempty"`
	Steps       int    `json:"steps,omitempty"`
	PIters      int    `json:"piters,omitempty"`
	Workers     int    `json:"workers,omitempty"`
	FaultSeed   int64  `json:"fault_seed,omitempty"`
	TraceSample int    `json:"trace_sample,omitempty"`

	// Pressure preconditioner: the resolved variant and how it was chosen
	// ("forced", "default", "table", "trial").
	Precond       string `json:"precond,omitempty"`
	PrecondSource string `json:"precond_source,omitempty"`
}

// Registry is a collection of named metrics. The nil *Registry is the
// disabled default: its lookup methods return nil handles, which no-op.
type Registry struct {
	mu         sync.Mutex
	timers     map[string]*Timer
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	meta       *RunMeta
}

// New returns an enabled, empty registry.
func New() *Registry {
	return &Registry{
		timers:     make(map[string]*Timer),
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// SetMeta attaches run metadata to the registry (no-op on nil).
func (r *Registry) SetMeta(m RunMeta) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.meta = &m
	r.mu.Unlock()
}

// Timer returns (creating if needed) the named timer; nil on a nil registry.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{name: name}
		r.timers[name] = t
	}
	return t
}

// Counter returns (creating if needed) the named counter; nil on a nil
// registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge; nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram; nil on a nil
// registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(name)
		r.histograms[name] = h
	}
	return h
}

// TimerStat is one timer's snapshot.
type TimerStat struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Count   int64   `json:"count"`
}

// CounterStat is one counter's snapshot.
type CounterStat struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeStat is one gauge's snapshot.
type GaugeStat struct {
	Name string  `json:"name"`
	Last float64 `json:"last"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

// Report is a structured snapshot of a registry, sorted by name.
type Report struct {
	Meta       *RunMeta        `json:"meta,omitempty"`
	Timers     []TimerStat     `json:"timers"`
	Counters   []CounterStat   `json:"counters"`
	Gauges     []GaugeStat     `json:"gauges"`
	Histograms []HistogramStat `json:"histograms,omitempty"`
}

// Report snapshots the registry. A nil registry yields an empty report.
func (r *Registry) Report() Report {
	var rep Report
	if r == nil {
		return rep
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, t := range r.timers {
		rep.Timers = append(rep.Timers, TimerStat{
			Name: name, Seconds: t.Total().Seconds(), Count: t.Count(),
		})
	}
	for name, c := range r.counters {
		rep.Counters = append(rep.Counters, CounterStat{Name: name, Value: c.Value()})
	}
	if r.meta != nil {
		m := *r.meta
		rep.Meta = &m
	}
	for _, h := range r.histograms {
		rep.Histograms = append(rep.Histograms, h.snapshot())
	}
	for name, g := range r.gauges {
		g.mu.Lock()
		rep.Gauges = append(rep.Gauges, GaugeStat{
			Name: name, Last: g.last, Min: g.min, Max: g.max,
			Mean: func() float64 {
				if g.n == 0 {
					return 0
				}
				return g.sum / float64(g.n)
			}(),
		})
		g.mu.Unlock()
	}
	sort.Slice(rep.Timers, func(i, j int) bool { return rep.Timers[i].Name < rep.Timers[j].Name })
	sort.Slice(rep.Counters, func(i, j int) bool { return rep.Counters[i].Name < rep.Counters[j].Name })
	sort.Slice(rep.Gauges, func(i, j int) bool { return rep.Gauges[i].Name < rep.Gauges[j].Name })
	sort.Slice(rep.Histograms, func(i, j int) bool { return rep.Histograms[i].Name < rep.Histograms[j].Name })
	return rep
}

// String renders the report as an aligned text table. Timer shares are
// relative to the sum of top-level phase timers (names without '/' beyond
// the first segment get no special treatment — shares are of total timer
// time).
func (rep Report) String() string {
	var b strings.Builder
	if m := rep.Meta; m != nil {
		fmt.Fprintf(&b, "run: case=%s ranks=%d elements=%d order=%d steps=%d",
			m.Case, m.Ranks, m.Elements, m.Order, m.Steps)
		if m.PIters > 0 {
			fmt.Fprintf(&b, " piters=%d", m.PIters)
		}
		if m.Workers > 0 {
			fmt.Fprintf(&b, " workers=%d", m.Workers)
		}
		if m.FaultSeed != 0 {
			fmt.Fprintf(&b, " fault_seed=%d", m.FaultSeed)
		}
		if m.TraceSample > 0 {
			fmt.Fprintf(&b, " trace_sample=%d", m.TraceSample)
		}
		b.WriteString("\n\n")
	}
	if len(rep.Timers) > 0 {
		var total float64
		for _, t := range rep.Timers {
			total += t.Seconds
		}
		fmt.Fprintf(&b, "%-34s %12s %10s %7s\n", "timer", "seconds", "count", "share")
		for _, t := range rep.Timers {
			share := 0.0
			if total > 0 {
				share = 100 * t.Seconds / total
			}
			fmt.Fprintf(&b, "%-34s %12.4f %10d %6.1f%%\n", t.Name, t.Seconds, t.Count, share)
		}
	}
	if len(rep.Counters) > 0 {
		if b.Len() > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%-34s %12s\n", "counter", "value")
		for _, c := range rep.Counters {
			fmt.Fprintf(&b, "%-34s %12d\n", c.Name, c.Value)
		}
	}
	if len(rep.Gauges) > 0 {
		if b.Len() > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%-34s %10s %10s %10s %10s\n", "gauge", "last", "min", "max", "mean")
		for _, g := range rep.Gauges {
			fmt.Fprintf(&b, "%-34s %10.4g %10.4g %10.4g %10.4g\n", g.Name, g.Last, g.Min, g.Max, g.Mean)
		}
	}
	if len(rep.Histograms) > 0 {
		if b.Len() > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%-34s %10s %10s %10s %10s %10s %10s\n",
			"histogram", "count", "min", "p50", "p90", "p99", "max")
		for _, h := range rep.Histograms {
			fmt.Fprintf(&b, "%-34s %10d %10.4g %10.4g %10.4g %10.4g %10.4g\n",
				h.Name, h.Count, h.Min, h.P50, h.P90, h.P99, h.Max)
		}
	}
	return b.String()
}

// JSON renders the report as indented JSON.
func (rep Report) JSON() ([]byte, error) {
	return json.MarshalIndent(rep, "", "  ")
}
