package instrument

// histogram.go adds the distribution member of the metrics family: where a
// Timer answers "how much in total" and a Gauge "last/min/max/mean", the
// Histogram answers "how is it distributed" — message virtual latencies,
// per-step phase times, CG iteration counts, fault stall draws. It is built
// for the simulated machine's hot paths and for paper-scale rank counts:
//
//   - Observe is allocation-free and lock-free (atomic bucket counters), so
//     a P=1024 run where every rank records every message costs nothing but
//     a few atomic adds per event;
//   - buckets are log-spaced (a fixed number of sub-buckets per power of
//     two), so one fixed 4 KB layout covers twelve decades — microsecond
//     latencies and kilo-iteration counts land in the same type with ~19 %
//     relative resolution;
//   - histograms sharing a Registry name are the merge: every rank Observes
//     into the same handle, and Merge folds separately collected histograms
//     (e.g. per-shard registries) by plain bucket addition, which is exact —
//     so a P=1024 run needs no per-rank trace tracks to report per-phase
//     distributions over all ranks.
//
// The nil-receiver no-op contract of the package applies.

import (
	"math"
	"sync/atomic"
	"time"
)

// Bucket geometry: histSubBits sub-buckets per power of two, covering
// 2^histExpLo .. 2^histExpHi. Values outside clamp to the end buckets; zero
// and negative values count in a dedicated underflow slot (index 0).
const (
	histSubBits = 2 // 4 sub-buckets per octave: ~19% relative width
	histSubs    = 1 << histSubBits
	histExpLo   = -64 // 2^-64 ~ 5.4e-20: below any virtual latency
	histExpHi   = 40  // 2^40 ~ 1.1e12: above any count or seconds value
	histBuckets = (histExpHi-histExpLo)*histSubs + 2
)

// Histogram is a log-bucketed distribution of non-negative float64 samples.
// All methods are safe for concurrent use; Observe is lock-free and
// allocation-free. Handles come from Registry.Histogram; a nil handle
// (disabled instrumentation) no-ops.
type Histogram struct {
	name    string
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	minBits atomic.Uint64 // float64 bits; init +Inf
	maxBits atomic.Uint64 // float64 bits; init -Inf
	buckets [histBuckets]atomic.Int64
}

func newHistogram(name string) *Histogram {
	h := &Histogram{name: name}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// bucketIndex maps a sample to its bucket. Index 0 holds v <= 0 (and NaN);
// the rest are log-spaced with histSubs sub-buckets per octave, read
// straight off the float64 exponent and mantissa top bits.
func bucketIndex(v float64) int {
	if !(v > 0) {
		return 0
	}
	bits := math.Float64bits(v)
	exp := int(bits>>52&0x7ff) - 1023 // unbiased; subnormals collapse to the floor
	sub := int(bits >> (52 - histSubBits) & (histSubs - 1))
	i := (exp-histExpLo)*histSubs + sub + 1
	if i < 1 {
		return 1
	}
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// bucketLower returns the lower bound of bucket i (i >= 1).
func bucketLower(i int) float64 {
	i--
	exp := histExpLo + i/histSubs
	sub := i % histSubs
	return math.Ldexp(1+float64(sub)/histSubs, exp)
}

// bucketUpper returns the exclusive upper bound of bucket i (i >= 1).
func bucketUpper(i int) float64 {
	if i >= histBuckets-1 {
		return math.Inf(1)
	}
	return bucketLower(i + 1)
}

// Observe records one sample. Lock-free, allocation-free, nil no-op.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if math.Float64frombits(old) <= v {
			break
		}
		if h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if math.Float64frombits(old) >= v {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveSince records the wall-clock seconds elapsed since start,
// matching Timer.Begin/End sections. Nil receivers return before reading
// the clock.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Min returns the smallest sample (0 before any Observe).
func (h *Histogram) Min() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.minBits.Load())
}

// Max returns the largest sample (0 before any Observe).
func (h *Histogram) Max() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Mean returns the arithmetic mean (0 before any Observe).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) from the
// bucket counts: the geometric midpoint of the bucket holding the q-th
// sample, clamped to the observed min/max so p0/p100 are exact. Estimates
// are deterministic functions of the bucket counts, so merged histograms
// report identical quantiles regardless of merge order.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			var v float64
			if i == 0 {
				v = 0
			} else {
				lo, hi := bucketLower(i), bucketUpper(i)
				if math.IsInf(hi, 1) {
					v = lo
				} else {
					v = math.Sqrt(lo * hi)
				}
			}
			if min := h.Min(); v < min {
				v = min
			}
			if max := h.Max(); v > max {
				v = max
			}
			return v
		}
	}
	return h.Max()
}

// Merge folds o's samples into h by bucket addition — exact, order-
// independent, and safe to run concurrently with Observes on either side.
// This is how separately collected histograms (per-shard registries, future
// semflowd sessions) roll up into one distribution.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	for i := 0; i < histBuckets; i++ {
		if c := o.buckets[i].Load(); c != 0 {
			h.buckets[i].Add(c)
		}
	}
	oc := o.count.Load()
	if oc == 0 {
		return
	}
	h.count.Add(oc)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+o.Sum())) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if math.Float64frombits(old) <= o.Min() {
			break
		}
		if h.minBits.CompareAndSwap(old, math.Float64bits(o.Min())) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if math.Float64frombits(old) >= o.Max() {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(o.Max())) {
			break
		}
	}
}

// HistBucket is one non-empty bucket in a snapshot: Lower is the bucket's
// inclusive lower bound (0 for the underflow bucket).
type HistBucket struct {
	Lower float64 `json:"lower"`
	Count int64   `json:"count"`
}

// HistogramStat is one histogram's snapshot: summary statistics, the
// standard quantiles, and the non-empty buckets (so a JSON report
// round-trips the full distribution, not just the summary).
type HistogramStat struct {
	Name    string       `json:"name"`
	Count   int64        `json:"count"`
	Sum     float64      `json:"sum"`
	Min     float64      `json:"min"`
	Max     float64      `json:"max"`
	Mean    float64      `json:"mean"`
	P50     float64      `json:"p50"`
	P90     float64      `json:"p90"`
	P99     float64      `json:"p99"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// snapshot captures the histogram's current state.
func (h *Histogram) snapshot() HistogramStat {
	st := HistogramStat{
		Name: h.name, Count: h.Count(), Sum: h.Sum(),
		Min: h.Min(), Max: h.Max(), Mean: h.Mean(),
		P50: h.Quantile(0.5), P90: h.Quantile(0.9), P99: h.Quantile(0.99),
	}
	for i := 0; i < histBuckets; i++ {
		if c := h.buckets[i].Load(); c != 0 {
			lo := 0.0
			if i > 0 {
				lo = bucketLower(i)
			}
			st.Buckets = append(st.Buckets, HistBucket{Lower: lo, Count: c})
		}
	}
	return st
}
