package instrument

import (
	"encoding/json"
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"
)

func TestNilHistogramNoOps(t *testing.T) {
	var r *Registry
	h := r.Histogram("x")
	if h != nil {
		t.Fatalf("nil registry returned non-nil histogram")
	}
	h.Observe(1.5) // must not panic
	h.Merge(nil)
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 ||
		h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("nil histogram reported non-zero stats")
	}
}

func TestHistogramSummaryStats(t *testing.T) {
	r := New()
	h := r.Histogram("lat")
	for _, v := range []float64{1e-6, 2e-6, 4e-6, 8e-6, 16e-6} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 31e-6; math.Abs(got-want) > 1e-12 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	if h.Min() != 1e-6 || h.Max() != 16e-6 {
		t.Fatalf("min/max = %g/%g, want 1e-6/16e-6", h.Min(), h.Max())
	}
	if got, want := h.Mean(), 31e-6/5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("mean = %g, want %g", got, want)
	}
}

// Quantiles are bucket estimates: within one bucket width (~19%) of truth,
// exact at the extremes.
func TestHistogramQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("q")
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("p0 = %g, want exact min 1", got)
	}
	if got := h.Quantile(1); got != 1000 {
		t.Fatalf("p100 = %g, want exact max 1000", got)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 500}, {0.9, 900}, {0.99, 990},
	} {
		got := h.Quantile(tc.q)
		if rel := math.Abs(got-tc.want) / tc.want; rel > 0.2 {
			t.Errorf("p%g = %g, want within 20%% of %g", 100*tc.q, got, tc.want)
		}
	}
}

func TestHistogramZeroAndExtremeValues(t *testing.T) {
	r := New()
	h := r.Histogram("edge")
	h.Observe(0)
	h.Observe(-3)
	h.Observe(math.NaN())
	h.Observe(1e-300) // far below range: clamps to lowest bucket
	h.Observe(1e300)  // far above range: clamps to highest bucket
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	// Quantiles stay clamped to observed extremes and never return Inf/NaN.
	for _, q := range []float64{0, 0.5, 0.9, 1} {
		v := h.Quantile(q)
		if math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("Quantile(%g) = %g", q, v)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	r := New()
	a, b := r.Histogram("a"), r.Histogram("b")
	for i := 1; i <= 100; i++ {
		a.Observe(float64(i))
	}
	for i := 101; i <= 200; i++ {
		b.Observe(float64(i))
	}
	m := r.Histogram("m")
	m.Merge(a)
	m.Merge(b)
	if m.Count() != 200 {
		t.Fatalf("merged count = %d, want 200", m.Count())
	}
	if m.Min() != 1 || m.Max() != 200 {
		t.Fatalf("merged min/max = %g/%g, want 1/200", m.Min(), m.Max())
	}
	if got, want := m.Sum(), a.Sum()+b.Sum(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("merged sum = %g, want %g", got, want)
	}
	// Merge is bucket addition: quantiles of the merge equal quantiles of a
	// histogram that observed everything directly.
	direct := r.Histogram("direct")
	for i := 1; i <= 200; i++ {
		direct.Observe(float64(i))
	}
	for _, q := range []float64{0.25, 0.5, 0.75, 0.9, 0.99} {
		if m.Quantile(q) != direct.Quantile(q) {
			t.Errorf("Quantile(%g): merged %g != direct %g", q, m.Quantile(q), direct.Quantile(q))
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := New()
	h := r.Histogram("conc")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w*per + i + 1))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	want := float64(workers*per) * float64(workers*per+1) / 2
	if math.Abs(h.Sum()-want) > 1e-6*want {
		t.Fatalf("sum = %g, want %g", h.Sum(), want)
	}
	if h.Min() != 1 || h.Max() != float64(workers*per) {
		t.Fatalf("min/max = %g/%g", h.Min(), h.Max())
	}
}

// Observe is on the per-message hot path of every simulated rank; it must
// never allocate. Checked both via AllocsPerRun and a MemStats delta (the
// latter catches allocations AllocsPerRun's averaging could round away).
func TestHistogramObserveZeroAlloc(t *testing.T) {
	r := New()
	h := r.Histogram("hot")
	if n := testing.AllocsPerRun(1000, func() { h.Observe(3.7e-5) }); n != 0 {
		t.Fatalf("Observe allocates %v allocs/op, want 0", n)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < 100000; i++ {
		h.Observe(float64(i) * 1e-6)
	}
	runtime.ReadMemStats(&after)
	if d := after.Mallocs - before.Mallocs; d > 50 { // slack for runtime noise
		t.Fatalf("100k Observes performed %d mallocs, want ~0", d)
	}
}

func TestReportWithHistogramsGoldenAndJSON(t *testing.T) {
	r := New()
	r.SetMeta(RunMeta{Case: "channel", Ranks: 4, Elements: 8, Order: 5, Steps: 2})
	r.Timer("ns/step").Add(1e9)
	r.Counter("comm/msgs").Add(42)
	hb := r.Histogram("b/lat")
	ha := r.Histogram("a/lat")
	for i := 1; i <= 4; i++ {
		ha.Observe(float64(i))
		hb.Observe(2 * float64(i))
	}
	rep := r.Report()

	// Golden ordering: meta header first, then sections, histograms sorted
	// by name.
	s := rep.String()
	if !strings.HasPrefix(s, "run: case=channel ranks=4 elements=8 order=5 steps=2") {
		t.Fatalf("String() missing meta header:\n%s", s)
	}
	ia, ib := strings.Index(s, "a/lat"), strings.Index(s, "b/lat")
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("histograms missing or unsorted in String():\n%s", s)
	}
	if strings.Index(s, "histogram") < strings.Index(s, "counter") {
		t.Fatalf("histogram section should follow counters:\n%s", s)
	}

	// JSON round-trip preserves meta, summary stats, and the full bucket
	// vector.
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Meta == nil || *back.Meta != *rep.Meta {
		t.Fatalf("meta did not round-trip: %+v", back.Meta)
	}
	if len(back.Histograms) != 2 {
		t.Fatalf("histograms did not round-trip: %d", len(back.Histograms))
	}
	for i, h := range back.Histograms {
		orig := rep.Histograms[i]
		if h.Name != orig.Name || h.Count != orig.Count || h.Sum != orig.Sum ||
			h.Min != orig.Min || h.Max != orig.Max ||
			h.P50 != orig.P50 || h.P90 != orig.P90 || h.P99 != orig.P99 {
			t.Fatalf("histogram %d summary mismatch: %+v vs %+v", i, h, orig)
		}
		if len(h.Buckets) != len(orig.Buckets) {
			t.Fatalf("histogram %d buckets lost: %d vs %d", i, len(h.Buckets), len(orig.Buckets))
		}
		var n int64
		for j, bk := range h.Buckets {
			if bk != orig.Buckets[j] {
				t.Fatalf("bucket %d mismatch: %+v vs %+v", j, bk, orig.Buckets[j])
			}
			n += bk.Count
		}
		if n != h.Count {
			t.Fatalf("bucket counts sum to %d, want %d", n, h.Count)
		}
	}
}

func TestBucketBoundsConsistent(t *testing.T) {
	// Every representable positive sample must land in a bucket whose
	// [lower, upper) interval contains it.
	for _, v := range []float64{1e-18, 3.3e-7, 1, 1.5, 2, 3.999, 1e6, 7.7e11} {
		i := bucketIndex(v)
		if i < 1 || i >= histBuckets {
			t.Fatalf("bucketIndex(%g) = %d out of range", v, i)
		}
		lo, hi := bucketLower(i), bucketUpper(i)
		if v < lo || v >= hi {
			t.Errorf("v=%g in bucket %d with bounds [%g,%g)", v, i, lo, hi)
		}
	}
}
