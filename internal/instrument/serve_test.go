package instrument

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// get fetches a URL from the test server and returns body + content type.
func get(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

// The endpoint must stay scrapeable while a run records into the registry
// and progress concurrently — this test is the -race gate for the server.
func TestServeLiveScrapeUnderLoad(t *testing.T) {
	reg := New()
	reg.SetMeta(RunMeta{Case: "channel", Ranks: 4, Steps: 8})
	prog := NewProgress()
	srv, err := Serve("127.0.0.1:0", reg, prog)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the "run": hammer the registry while scrapes happen
		defer wg.Done()
		h := reg.Histogram("comm/send.vlat")
		tm := reg.Timer("ns/step")
		c := reg.Counter("comm/send.msgs")
		step := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			h.Observe(2.5e-5)
			tm.Add(1000)
			c.Inc()
			step++
			prog.Update(ProgressSnapshot{Step: step, PressureIters: 40, Converged: true})
		}
	}()

	base := "http://" + srv.Addr
	for i := 0; i < 20; i++ {
		body, ctype := get(t, base+"/metrics")
		if !strings.HasPrefix(ctype, "text/plain") {
			t.Fatalf("/metrics content type %q", ctype)
		}
		if !strings.Contains(body, `semflow_counter{name="comm/send.msgs"}`) ||
			!strings.Contains(body, `semflow_histogram{name="comm/send.vlat",quantile="0.5"}`) {
			t.Fatalf("/metrics missing expected families:\n%s", body)
		}
		pbody, pctype := get(t, base+"/progress")
		if !strings.HasPrefix(pctype, "application/json") {
			t.Fatalf("/progress content type %q", pctype)
		}
		var snap ProgressSnapshot
		if err := json.Unmarshal([]byte(pbody), &snap); err != nil {
			t.Fatalf("/progress not JSON: %v\n%s", err, pbody)
		}
	}
	close(stop)
	wg.Wait()

	// /stats serves the full JSON report including the meta header.
	sbody, _ := get(t, base+"/stats")
	var rep Report
	if err := json.Unmarshal([]byte(sbody), &rep); err != nil {
		t.Fatalf("/stats not a Report: %v", err)
	}
	if rep.Meta == nil || rep.Meta.Case != "channel" {
		t.Fatalf("/stats missing run meta: %+v", rep.Meta)
	}
	if len(rep.Histograms) == 0 {
		t.Fatal("/stats missing histograms")
	}

	// pprof index answers.
	if body, _ := get(t, base+"/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatal("/debug/pprof/ index missing profiles")
	}
	// The root page lists the routes.
	if body, _ := get(t, base+"/"); !strings.Contains(body, "/metrics") {
		t.Fatal("root index missing route list")
	}
}

func TestWritePrometheusEscapesLabels(t *testing.T) {
	rep := Report{
		Counters: []CounterStat{{Name: `weird"name\x`, Value: 3}},
	}
	var b strings.Builder
	if err := WritePrometheus(&b, rep); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("semflow_counter{name=%q} 3\n", `weird"name\x`)
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaping wrong:\n%s", b.String())
	}
}

func TestNilProgressNoOps(t *testing.T) {
	var p *Progress
	p.Update(ProgressSnapshot{Step: 1})
	if s := p.Snapshot(); s.Step != 0 {
		t.Fatal("nil progress returned data")
	}
}
