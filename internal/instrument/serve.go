package instrument

// serve.go is the live side of the observability layer: where Report is a
// post-run artifact, Serve exposes the same registry over HTTP while the
// run is still going — /metrics in Prometheus text exposition (histograms
// as quantile summaries), /progress as a JSON snapshot of the stepper's
// position (current step, residuals, virtual time), and /debug/pprof for
// the real process underneath the simulated machine. This is the endpoint
// the ROADMAP's semflowd scheduler will scrape; until then it lets a
// multi-minute P=1024 run be watched instead of waited on.

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Progress is a mutex-guarded snapshot of a run's position, updated by the
// driver after every step and served as JSON at /progress. The nil
// *Progress no-ops, matching the package contract.
type Progress struct {
	mu   sync.Mutex
	snap ProgressSnapshot
}

// ProgressSnapshot is the /progress payload.
type ProgressSnapshot struct {
	Case           string  `json:"case,omitempty"`
	Ranks          int     `json:"ranks,omitempty"`
	Step           int     `json:"step"`
	TotalSteps     int     `json:"total_steps,omitempty"`
	Time           float64 `json:"time"`            // simulation time
	VirtualSeconds float64 `json:"virtual_seconds"` // max rank virtual clock
	CFL            float64 `json:"cfl,omitempty"`
	PressureIters  int     `json:"pressure_iters"`
	PressureRes    float64 `json:"pressure_res"`
	Converged      bool    `json:"converged"`
	Done           bool    `json:"done"`
	UpdatedUnixMs  int64   `json:"updated_unix_ms"`
}

// NewProgress returns an enabled progress tracker.
func NewProgress() *Progress { return &Progress{} }

// Update replaces the snapshot (stamping the update time).
func (p *Progress) Update(s ProgressSnapshot) {
	if p == nil {
		return
	}
	s.UpdatedUnixMs = time.Now().UnixMilli()
	p.mu.Lock()
	p.snap = s
	p.mu.Unlock()
}

// Snapshot returns the current snapshot.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.snap
}

// WritePrometheus renders a Report in the Prometheus text exposition
// format (version 0.0.4). Registry names become a "name" label on a small
// set of metric families, so arbitrary slash-and-dot metric names survive
// the Prometheus data model; histograms are exposed as summaries with
// p50/p90/p99 quantiles plus _sum and _count.
func WritePrometheus(w io.Writer, rep Report) error {
	write := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if len(rep.Timers) > 0 {
		if err := write("# HELP semflow_timer_seconds Accumulated time per named timer.\n# TYPE semflow_timer_seconds counter\n"); err != nil {
			return err
		}
		for _, t := range rep.Timers {
			if err := write("semflow_timer_seconds{name=%q} %g\nsemflow_timer_count{name=%q} %d\n",
				t.Name, t.Seconds, t.Name, t.Count); err != nil {
				return err
			}
		}
	}
	if len(rep.Counters) > 0 {
		if err := write("# HELP semflow_counter Monotonic event counters.\n# TYPE semflow_counter counter\n"); err != nil {
			return err
		}
		for _, c := range rep.Counters {
			if err := write("semflow_counter{name=%q} %d\n", c.Name, c.Value); err != nil {
				return err
			}
		}
	}
	if len(rep.Gauges) > 0 {
		if err := write("# HELP semflow_gauge Last sampled value per named gauge.\n# TYPE semflow_gauge gauge\n"); err != nil {
			return err
		}
		for _, g := range rep.Gauges {
			if err := write("semflow_gauge{name=%q} %g\nsemflow_gauge_mean{name=%q} %g\n",
				g.Name, g.Last, g.Name, g.Mean); err != nil {
				return err
			}
		}
	}
	if len(rep.Histograms) > 0 {
		if err := write("# HELP semflow_histogram Distribution summaries (log-bucketed estimates).\n# TYPE semflow_histogram summary\n"); err != nil {
			return err
		}
		for _, h := range rep.Histograms {
			n := h.Name
			for _, q := range []struct {
				q string
				v float64
			}{{"0.5", h.P50}, {"0.9", h.P90}, {"0.99", h.P99}} {
				if err := write("semflow_histogram{name=%q,quantile=%q} %g\n", n, q.q, q.v); err != nil {
					return err
				}
			}
			if err := write("semflow_histogram_sum{name=%q} %g\nsemflow_histogram_count{name=%q} %d\n",
				n, h.Sum, n, h.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// Server is a live observability endpoint bound to a registry and an
// optional progress tracker.
type Server struct {
	Addr string // actual bound address (resolves ":0" requests)
	ln   net.Listener
	srv  *http.Server
}

// MetricsHandler serves reg as Prometheus text exposition — the /metrics
// payload of Serve, reusable under any mux (semflowd mounts one per
// session). The registry may be updated concurrently; the handler
// snapshots it under the package's usual locks.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WritePrometheus(w, reg.Report()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// ProgressHandler serves prog as the /progress JSON snapshot, reusable
// under any mux.
func ProgressHandler(prog *Progress) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		data, err := json.MarshalIndent(prog.Snapshot(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(data)
	})
}

// StatsHandler serves reg's full Report as JSON (the /stats payload).
func StatsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		data, err := reg.Report().JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(data)
	})
}

// Serve starts an HTTP server on addr (host:port; port 0 picks a free
// port) exposing /metrics, /progress, and /debug/pprof/*. It returns once
// the listener is bound; requests are served on a background goroutine
// until Close. The registry and progress may be updated concurrently —
// handlers snapshot under the package's usual locks.
func Serve(addr string, reg *Registry, prog *Progress) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("instrument: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(reg))
	mux.Handle("/progress", ProgressHandler(prog))
	mux.Handle("/stats", StatsHandler(reg))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "semflow observability endpoint\n\n")
		for _, p := range []string{"/metrics", "/progress", "/stats", "/debug/pprof/"} {
			fmt.Fprintf(w, "  %s\n", p)
		}
	})
	s := &Server{Addr: ln.Addr().String(), ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Close shuts the server down immediately.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
