package instrument

// trace.go is the event layer of the instrumentation package: where the
// Timer/Counter/Gauge registry answers "how much per phase in aggregate",
// the Tracer answers "when": it records spans and instants stamped with
// either the real wall clock or a simulated rank's virtual clock, and
// serializes them as Chrome trace-event JSON loadable in Perfetto or
// chrome://tracing. The same nil-receiver contract applies: every method
// no-ops on a nil *Tracer, so traced code holds possibly-nil pointers and
// pays one branch per event when tracing is off.
//
// Track layout: process PidWall (pid 0) carries wall-clock spans of the
// real solver process as B/E begin–end pairs (one thread, tid 0); process
// PidMachine (pid 1) carries the simulated machine, one thread (track) per
// rank, with complete "X" spans whose timestamps are the per-rank virtual
// clocks in microseconds. Message traffic appears as flow events ("s" at
// the sender, "f" at the receiver) so Perfetto draws the arrows of the
// communication timeline. The two clocks share one time axis but never mix
// on one track.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Track process ids.
const (
	// PidWall is the wall-clock process: spans of the real solver process.
	PidWall = 0
	// PidMachine is the simulated machine: one thread (tid) per rank,
	// timestamped by the per-rank virtual clocks.
	PidMachine = 1
)

// TraceEvent is one Chrome trace-event. Ts and Dur are microseconds.
type TraceEvent struct {
	Name string         `json:"name,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Tracer collects trace events. The nil *Tracer is the disabled default:
// every method returns immediately.
type Tracer struct {
	mu      sync.Mutex
	events  []TraceEvent
	names   []TraceEvent // metadata (process/thread name) events
	noWall  bool
	sampled map[int]bool // nil: every virtual rank track is recorded
	t0      time.Time
}

// NewTracer returns an enabled, empty tracer with the wall-clock epoch at
// the call instant.
func NewTracer() *Tracer { return &Tracer{t0: time.Now()} }

// DisableWallClock stops the tracer reading the real clock: wall-clock
// spans get zero timestamps and virtual events drop their wall-time args.
// Traces of a deterministic simulated run then serialize bit-identically
// across runs (the determinism regression tests rely on this).
func (t *Tracer) DisableWallClock() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.noWall = true
	t.mu.Unlock()
}

// SampleVRanks restricts the virtual-machine tracks (PidMachine) to the
// given rank ids: SpanV/InstantV/FlowV calls for other ranks are dropped,
// as are their thread-name metadata events. Aggregate instrumentation
// (registry histograms, timers) is unaffected — this is what makes
// paper-scale runs traceable: every rank still contributes to the merged
// rollups while only the sampled ranks pay the per-event trace cost.
// Call before the simulated machine starts; nil or empty restores full
// tracing.
func (t *Tracer) SampleVRanks(ranks []int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(ranks) == 0 {
		t.sampled = nil
		return
	}
	t.sampled = make(map[int]bool, len(ranks))
	for _, r := range ranks {
		t.sampled[r] = true
	}
}

// WantsV reports whether virtual events for rank tid will be recorded.
// This is the hot-path guard: callers check it before building an args map,
// so unsampled ranks pay one branch and zero allocations per would-be
// event. Nil tracers want nothing; a tracer without sampling wants every
// rank. The sampling set is fixed before the ranks start, so the read is
// unsynchronized by design.
func (t *Tracer) WantsV(tid int) bool {
	if t == nil {
		return false
	}
	return t.sampled == nil || t.sampled[tid]
}

// wallUS returns microseconds since the tracer epoch (0 when disabled).
// Caller holds no lock; noWall is only written before concurrent use.
func (t *Tracer) wallUS() float64 {
	if t.noWall {
		return 0
	}
	return float64(time.Since(t.t0)) / float64(time.Microsecond)
}

func (t *Tracer) emit(ev TraceEvent) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Span is an open wall-clock section started with Begin. The zero Span
// no-ops on End.
type Span struct {
	t        *Tracer
	pid, tid int
	name     string
}

// Begin opens a wall-clock span (a "B" event) on the given track and
// returns the handle that closes it. Nil tracers return the no-op Span.
func (t *Tracer) Begin(pid, tid int, name, cat string) Span {
	if t == nil {
		return Span{}
	}
	t.emit(TraceEvent{Name: name, Cat: cat, Ph: "B", Ts: t.wallUS(), Pid: pid, Tid: tid})
	return Span{t: t, pid: pid, tid: tid, name: name}
}

// End closes the span (an "E" event).
func (s Span) End() { s.EndWith(nil) }

// EndWith closes the span attaching args to the end event.
func (s Span) EndWith(args map[string]any) {
	if s.t == nil {
		return
	}
	s.t.emit(TraceEvent{Name: s.name, Ph: "E", Ts: s.t.wallUS(), Pid: s.pid, Tid: s.tid, Args: args})
}

// SpanV records a complete ("X") span on the virtual-machine track of rank
// tid, with start/end in virtual seconds. When the wall clock is enabled
// the emission instant is attached as args["wall_us"], so every virtual
// event is stamped with both clocks.
func (t *Tracer) SpanV(tid int, name, cat string, t0, t1 float64, args map[string]any) {
	if !t.WantsV(tid) {
		return
	}
	if !t.noWall {
		if args == nil {
			args = map[string]any{}
		}
		args["wall_us"] = t.wallUS()
	}
	t.emit(TraceEvent{Name: name, Cat: cat, Ph: "X", Ts: t0 * 1e6, Dur: (t1 - t0) * 1e6,
		Pid: PidMachine, Tid: tid, Args: args})
}

// InstantV records an instant ("i") event on rank tid's virtual track.
func (t *Tracer) InstantV(tid int, name, cat string, ts float64, args map[string]any) {
	if !t.WantsV(tid) {
		return
	}
	if !t.noWall {
		if args == nil {
			args = map[string]any{}
		}
		args["wall_us"] = t.wallUS()
	}
	t.emit(TraceEvent{Name: name, Cat: cat, Ph: "i", Ts: ts * 1e6,
		Pid: PidMachine, Tid: tid, Args: args})
}

// FlowV records a flow event (ph "s" for start at the sender, "f" for
// finish at the receiver) binding two rank tracks with the shared id.
func (t *Tracer) FlowV(ph string, tid int, name string, ts float64, id string) {
	if !t.WantsV(tid) {
		return
	}
	t.emit(TraceEvent{Name: name, Cat: "msg", Ph: ph, Ts: ts * 1e6,
		Pid: PidMachine, Tid: tid, ID: id})
}

// SetProcessName attaches a metadata name to a pid track group.
func (t *Tracer) SetProcessName(pid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.names = append(t.names, TraceEvent{Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": name}})
	t.mu.Unlock()
}

// SetThreadName attaches a metadata name to one track. Machine-rank tracks
// excluded by SampleVRanks are dropped, so a sampled trace names exactly
// the tracks it carries.
func (t *Tracer) SetThreadName(pid, tid int, name string) {
	if t == nil {
		return
	}
	if pid == PidMachine && !t.WantsV(tid) {
		return
	}
	t.mu.Lock()
	t.names = append(t.names, TraceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name}})
	t.mu.Unlock()
}

// Events returns the recorded events in serialization order: grouped by
// track (pid, then tid), within a track sorted by timestamp; ties keep
// emission order except that longer "X" spans precede shorter ones so
// nesting renders correctly. Each track's events come from one goroutine
// (a rank, or the main solver loop), so this order — and therefore the
// serialized trace of a deterministic simulated run — is reproducible.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	evs := append([]TraceEvent(nil), t.events...)
	t.mu.Unlock()
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		if a.Ph == "X" && b.Ph == "X" && a.Dur != b.Dur {
			return a.Dur > b.Dur // enclosing span first
		}
		return false
	})
	return evs
}

// Len returns the number of recorded events (metadata excluded).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// chromeTrace is the serialized top-level object.
type chromeTrace struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteJSON serializes the trace as Chrome trace-event JSON (metadata
// events first, then the track-ordered events).
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("instrument: WriteJSON on nil Tracer")
	}
	t.mu.Lock()
	meta := append([]TraceEvent(nil), t.names...)
	t.mu.Unlock()
	all := append(meta, t.Events()...)
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: all, DisplayTimeUnit: "ms"})
}

// ValidateChromeTrace checks that data is a structurally valid Chrome
// trace: a traceEvents array whose events all carry ph/ts/pid, balanced
// B/E pairs per track, non-negative X durations, matched flow start/finish
// ids, and per-track non-decreasing timestamps. minMachineRanks requires at
// least that many distinct rank tracks under PidMachine. It is shared by
// the trace tests and the cmd/tracecheck CI gate.
func ValidateChromeTrace(data []byte, minMachineRanks int) error {
	var top struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &top); err != nil {
		return fmt.Errorf("trace: not a JSON object: %w", err)
	}
	if top.TraceEvents == nil {
		return fmt.Errorf("trace: missing traceEvents array")
	}
	type track struct{ pid, tid int }
	stacks := make(map[track][]string)
	lastTs := make(map[track]float64)
	flowStart := make(map[string]bool)
	flowEnd := make(map[string]bool)
	machineRanks := make(map[int]bool)
	for i, raw := range top.TraceEvents {
		var fields map[string]json.RawMessage
		if err := json.Unmarshal(raw, &fields); err != nil {
			return fmt.Errorf("trace: event %d: %w", i, err)
		}
		for _, req := range []string{"ph", "ts", "pid"} {
			if _, ok := fields[req]; !ok {
				return fmt.Errorf("trace: event %d: missing required field %q", i, req)
			}
		}
		var ev TraceEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			return fmt.Errorf("trace: event %d: %w", i, err)
		}
		if ev.Ph == "M" {
			continue
		}
		tr := track{ev.Pid, ev.Tid}
		if prev, ok := lastTs[tr]; ok && ev.Ts < prev {
			return fmt.Errorf("trace: event %d (%s %q): timestamp %g decreases below %g on track pid=%d tid=%d",
				i, ev.Ph, ev.Name, ev.Ts, prev, ev.Pid, ev.Tid)
		}
		lastTs[tr] = ev.Ts
		if ev.Pid == PidMachine {
			machineRanks[ev.Tid] = true
		}
		switch ev.Ph {
		case "B":
			stacks[tr] = append(stacks[tr], ev.Name)
		case "E":
			st := stacks[tr]
			if len(st) == 0 {
				return fmt.Errorf("trace: event %d: E %q with no open B on track pid=%d tid=%d", i, ev.Name, ev.Pid, ev.Tid)
			}
			if open := st[len(st)-1]; ev.Name != "" && open != "" && ev.Name != open {
				return fmt.Errorf("trace: event %d: E %q closes B %q", i, ev.Name, open)
			}
			stacks[tr] = st[:len(st)-1]
		case "X":
			if _, ok := fields["dur"]; ok && ev.Dur < 0 {
				return fmt.Errorf("trace: event %d: X %q with negative dur %g", i, ev.Name, ev.Dur)
			}
		case "s":
			if ev.ID == "" {
				return fmt.Errorf("trace: event %d: flow start without id", i)
			}
			flowStart[ev.ID] = true
		case "f":
			if ev.ID == "" {
				return fmt.Errorf("trace: event %d: flow finish without id", i)
			}
			flowEnd[ev.ID] = true
		case "i", "I":
			// instant: nothing beyond the common checks
		default:
			return fmt.Errorf("trace: event %d: unknown phase %q", i, ev.Ph)
		}
	}
	for tr, st := range stacks {
		if len(st) > 0 {
			return fmt.Errorf("trace: track pid=%d tid=%d: %d unclosed B events (first %q)",
				tr.pid, tr.tid, len(st), st[0])
		}
	}
	for id := range flowEnd {
		if !flowStart[id] {
			return fmt.Errorf("trace: flow finish %q without matching start", id)
		}
	}
	if len(machineRanks) < minMachineRanks {
		return fmt.Errorf("trace: %d rank tracks under pid %d, want >= %d",
			len(machineRanks), PidMachine, minMachineRanks)
	}
	return nil
}

// ValidateFlowClosure checks that the trace's flow events close in both
// directions: every flow start ("s") has a matching finish ("f") and vice
// versa. ValidateChromeTrace only rejects f-without-s, so a dropped
// send→recv binding (a send whose delivery never emitted its arrow)
// passes the structural check silently; this is the stricter gate. The
// comm layer emits a flow pair only when both endpoint ranks are traced,
// so closure holds for full and rank-sampled traces alike.
func ValidateFlowClosure(data []byte) error {
	var top struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &top); err != nil {
		return fmt.Errorf("trace: not a JSON object: %w", err)
	}
	starts := make(map[string]bool)
	ends := make(map[string]bool)
	for i, raw := range top.TraceEvents {
		var ev TraceEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			return fmt.Errorf("trace: event %d: %w", i, err)
		}
		switch ev.Ph {
		case "s":
			starts[ev.ID] = true
		case "f":
			ends[ev.ID] = true
		}
	}
	for id := range starts {
		if !ends[id] {
			return fmt.Errorf("trace: flow start %q without matching finish (dropped send/recv binding)", id)
		}
	}
	for id := range ends {
		if !starts[id] {
			return fmt.Errorf("trace: flow finish %q without matching start", id)
		}
	}
	return nil
}

// CountCategory returns how many events in a Chrome trace carry category
// cat (e.g. "fault" for the fault-injection spans). It shares the trace
// format with ValidateChromeTrace but does no structural checking.
func CountCategory(data []byte, cat string) (int, error) {
	var top struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &top); err != nil {
		return 0, fmt.Errorf("trace: not a JSON object: %w", err)
	}
	n := 0
	for i, raw := range top.TraceEvents {
		var ev TraceEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			return 0, fmt.Errorf("trace: event %d: %w", i, err)
		}
		if ev.Cat == cat {
			n++
		}
	}
	return n, nil
}

// TimeSeries is an append-only per-step record collector serialized as
// JSON Lines (one record per line). The nil *TimeSeries no-ops, matching
// the Timer/Counter/Gauge contract.
type TimeSeries struct {
	mu   sync.Mutex
	recs []any
}

// NewTimeSeries returns an enabled, empty collector.
func NewTimeSeries() *TimeSeries { return &TimeSeries{} }

// Append adds one record.
func (s *TimeSeries) Append(rec any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.recs = append(s.recs, rec)
	s.mu.Unlock()
}

// Len returns the number of records.
func (s *TimeSeries) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Records returns a snapshot of the collected records.
func (s *TimeSeries) Records() []any {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]any(nil), s.recs...)
}

// WriteJSONL writes one JSON object per line.
func (s *TimeSeries) WriteJSONL(w io.Writer) error {
	if s == nil {
		return fmt.Errorf("instrument: WriteJSONL on nil TimeSeries")
	}
	enc := json.NewEncoder(w)
	for _, rec := range s.Records() {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}
