package session

// http.go is semflowd's job API: submit a flow case + config, poll status,
// stream per-step StepRecord JSONL and trace artifacts, and scrape
// per-session /metrics and /progress (the same instrument handlers the
// one-shot semflow -listen endpoint serves, mounted per session).
//
//	POST /api/sessions                    {case, steps, ...} or {resume_from, steps}
//	GET  /api/sessions                    list job statuses
//	GET  /api/sessions/{id}               one job's status
//	POST /api/sessions/{id}/cancel        stop at the next step boundary
//	POST /api/sessions/{id}/checkpoint    deposit checkpoint.gob now
//	GET  /api/sessions/{id}/history       per-step JSONL (live while running)
//	GET  /api/sessions/{id}/artifacts     stored artifact names
//	GET  /api/sessions/{id}/artifacts/{name}  one stored artifact
//	GET  /api/sessions/{id}/metrics       per-session Prometheus text
//	GET  /api/sessions/{id}/progress      per-session progress JSON
//	GET  /healthz                         liveness
//
// /history serves the live in-memory series for known jobs (readable mid-
// run — this is the streaming surface) and falls back to the stored
// history.jsonl for sessions from a previous server life.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/instrument"
)

// SubmitRequest is the POST /api/sessions body: either a Config for a new
// session, or ResumeFrom naming a stored session to continue.
type SubmitRequest struct {
	Config
	// ResumeFrom continues a stored session from its latest checkpoint
	// artifact; Steps, when set, replaces the step target.
	ResumeFrom string `json:"resume_from,omitempty"`
}

// SubmitResponse is the POST /api/sessions reply.
type SubmitResponse struct {
	ID string `json:"id"`
}

// HTTPHandler serves the job API for a manager.
func HTTPHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()

	writeJSON := func(w http.ResponseWriter, code int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v)
	}
	writeErr := func(w http.ResponseWriter, err error) {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrNotFound):
			code = http.StatusNotFound
		case errors.Is(err, ErrClosed):
			code = http.StatusConflict
		}
		writeJSON(w, code, map[string]string{"error": err.Error()})
	}
	job := func(w http.ResponseWriter, r *http.Request) (*Job, bool) {
		id := r.PathValue("id")
		j, ok := m.Get(id)
		if !ok {
			writeErr(w, fmt.Errorf("%w: %s", ErrNotFound, id))
			return nil, false
		}
		return j, true
	}

	mux.HandleFunc("POST /api/sessions", func(w http.ResponseWriter, r *http.Request) {
		var req SubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		var j *Job
		var err error
		if req.ResumeFrom != "" {
			j, err = m.ResumeJob(req.ResumeFrom, req.Steps)
		} else {
			j, err = m.Submit(req.Config)
		}
		if err != nil {
			if errors.Is(err, ErrNotFound) {
				writeErr(w, err)
			} else {
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			}
			return
		}
		writeJSON(w, http.StatusCreated, SubmitResponse{ID: j.ID})
	})

	mux.HandleFunc("GET /api/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.List())
	})

	mux.HandleFunc("GET /api/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		if j, ok := job(w, r); ok {
			writeJSON(w, http.StatusOK, j.Status())
		}
	})

	mux.HandleFunc("POST /api/sessions/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		if j, ok := job(w, r); ok {
			j.sess.Cancel()
			writeJSON(w, http.StatusOK, j.Status())
		}
	})

	mux.HandleFunc("POST /api/sessions/{id}/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		j, ok := job(w, r)
		if !ok {
			return
		}
		step, err := m.Checkpoint(j.ID)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"id": j.ID, "step": step, "artifact": ArtifactCheckpoint})
	})

	mux.HandleFunc("GET /api/sessions/{id}/history", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		w.Header().Set("Content-Type", "application/x-ndjson")
		if j, ok := m.Get(id); ok {
			if err := j.sess.History().WriteJSONL(w); err != nil {
				writeErr(w, err)
			}
			return
		}
		b, err := m.Store().Get(id, ArtifactHistory)
		if err != nil {
			writeErr(w, err)
			return
		}
		w.Write(b)
	})

	mux.HandleFunc("GET /api/sessions/{id}/artifacts", func(w http.ResponseWriter, r *http.Request) {
		names, err := m.Store().List(r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, names)
	})

	mux.HandleFunc("GET /api/sessions/{id}/artifacts/{name}", func(w http.ResponseWriter, r *http.Request) {
		b, err := m.Store().Get(r.PathValue("id"), r.PathValue("name"))
		if err != nil {
			writeErr(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(b)
	})

	mux.HandleFunc("GET /api/sessions/{id}/metrics", func(w http.ResponseWriter, r *http.Request) {
		if j, ok := job(w, r); ok {
			instrument.MetricsHandler(j.sess.Registry()).ServeHTTP(w, r)
		}
	})

	mux.HandleFunc("GET /api/sessions/{id}/progress", func(w http.ResponseWriter, r *http.Request) {
		if j, ok := job(w, r); ok {
			instrument.ProgressHandler(j.sess.Progress()).ServeHTTP(w, r)
		}
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	mux.HandleFunc("GET /", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "semflowd session service\n\n")
		for _, p := range []string{
			"POST /api/sessions", "GET  /api/sessions", "GET  /api/sessions/{id}",
			"POST /api/sessions/{id}/cancel", "POST /api/sessions/{id}/checkpoint",
			"GET  /api/sessions/{id}/history", "GET  /api/sessions/{id}/artifacts",
			"GET  /api/sessions/{id}/artifacts/{name}",
			"GET  /api/sessions/{id}/metrics", "GET  /api/sessions/{id}/progress",
			"GET  /healthz",
		} {
			fmt.Fprintf(w, "  %s\n", p)
		}
	})

	return mux
}
