package session

// manager.go multiplexes many concurrent sessions over a bounded number of
// active element-worker pools. Every session owns its pools (fixed chunk
// assignment is what makes stepping bitwise deterministic), but only
// MaxActive sessions may be *stepping* — and therefore have awake pools —
// at any instant: the scheduler is a counting semaphore that each job
// acquires for one batch of steps (Config.BatchSteps) and then releases,
// so long jobs cannot starve short ones. When a job reaches its step
// target, is cancelled, or fails, the manager deposits its artifacts in
// the Store (history.jsonl, checkpoint.gob, trace.json, result.json) and
// closes the session, releasing its worker pools — the lifecycle the
// Disc.Close bugfix exists for.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"repro/internal/ns"
)

// Artifact names deposited by the manager.
const (
	ArtifactConfig     = "config.json"
	ArtifactHistory    = "history.jsonl"
	ArtifactCheckpoint = "checkpoint.gob"
	ArtifactTrace      = "trace.json"
	ArtifactResult     = "result.json"
)

// State is a job's lifecycle position.
type State string

const (
	StateRunning   State = "running"
	StateDone      State = "done"
	StateCancelled State = "cancelled"
	StateFailed    State = "failed"
)

// Status is one job's externally visible state (the HTTP status payload).
type Status struct {
	ID          string  `json:"id"`
	State       State   `json:"state"`
	Case        string  `json:"case"`
	Step        int     `json:"step"`
	TotalSteps  int     `json:"total_steps"`
	Time        float64 `json:"time"`
	Error       string  `json:"error,omitempty"`
	ResumedFrom string  `json:"resumed_from,omitempty"`

	// Last completed step's headline stats.
	CFL              float64 `json:"cfl,omitempty"`
	PressureIters    int     `json:"pressure_iters,omitempty"`
	PressureResFinal float64 `json:"pressure_res_final,omitempty"`
}

// Result is the result.json artifact: the final Status.
type Result = Status

// Job is one managed session run.
type Job struct {
	ID   string
	Cfg  Config
	sess *Session

	resumedFrom string

	mu    sync.Mutex
	state State
	err   string
	last  ns.StepStats
	step  int
	time  float64

	done chan struct{} // closed when the runner finishes
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID: j.ID, State: j.state, Case: j.Cfg.Case,
		Step: j.step, TotalSteps: j.Cfg.Steps, Time: j.time,
		Error: j.err, ResumedFrom: j.resumedFrom,
		CFL: j.last.CFL, PressureIters: j.last.PressureIters,
		PressureResFinal: j.last.PressureResFinal,
	}
}

// Session exposes the job's session (for per-job /metrics, /progress,
// /history). Valid after the job finishes too — a closed session's
// instruments stay readable.
func (j *Job) Session() *Session { return j.sess }

// Done returns a channel closed when the job's runner has finished and all
// artifacts are deposited.
func (j *Job) Done() <-chan struct{} { return j.done }

// Manager owns the job table, the scheduler, and the artifact store.
type Manager struct {
	store Store
	slots chan struct{} // scheduler: one token per concurrently stepping session

	mu   sync.Mutex
	jobs map[string]*Job
	seq  int

	wg sync.WaitGroup
}

// NewManager builds a manager multiplexing jobs over at most maxActive
// concurrently stepping sessions (minimum 1).
func NewManager(store Store, maxActive int) *Manager {
	if maxActive < 1 {
		maxActive = 1
	}
	return &Manager{
		store: store,
		slots: make(chan struct{}, maxActive),
		jobs:  map[string]*Job{},
	}
}

// Submit creates a session for cfg and schedules it for cfg.Steps steps.
func (m *Manager) Submit(cfg Config) (*Job, error) {
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("session: submit needs steps > 0")
	}
	sess, err := Create(cfg)
	if err != nil {
		return nil, err
	}
	return m.launch(sess, "")
}

// ResumeJob builds a new job continuing a stored session: its config.json
// fixes the case, its checkpoint.gob fixes the state. steps, when > 0,
// replaces the step target (it must exceed the checkpoint's step count);
// 0 keeps the original target. Works across manager (and process)
// restarts — both artifacts live in the store.
func (m *Manager) ResumeJob(fromID string, steps int) (*Job, error) {
	rawCfg, err := m.store.Get(fromID, ArtifactConfig)
	if err != nil {
		return nil, err
	}
	var cfg Config
	if err := json.Unmarshal(rawCfg, &cfg); err != nil {
		return nil, fmt.Errorf("session: resume %s: config: %w", fromID, err)
	}
	rawCk, err := m.store.Get(fromID, ArtifactCheckpoint)
	if err != nil {
		return nil, err
	}
	ck, err := ns.ReadCheckpoint(bytes.NewReader(rawCk))
	if err != nil {
		return nil, fmt.Errorf("session: resume %s: %w", fromID, err)
	}
	if steps > 0 {
		cfg.Steps = steps
	}
	if cfg.Steps <= ck.Step {
		return nil, fmt.Errorf("session: resume %s: checkpoint already at step %d, target is %d",
			fromID, ck.Step, cfg.Steps)
	}
	sess, err := Resume(cfg, ck)
	if err != nil {
		return nil, err
	}
	return m.launch(sess, fromID)
}

// launch registers a job for sess and starts its runner.
func (m *Manager) launch(sess *Session, resumedFrom string) (*Job, error) {
	m.mu.Lock()
	m.seq++
	id := fmt.Sprintf("s%04d-%s", m.seq, sess.Config().Case)
	j := &Job{
		ID: id, Cfg: sess.Config(), sess: sess,
		resumedFrom: resumedFrom,
		state:       StateRunning,
		step:        sess.Step(), time: sess.Time(),
		done: make(chan struct{}),
	}
	m.jobs[id] = j
	m.mu.Unlock()

	cfgJSON, err := json.MarshalIndent(j.Cfg, "", "  ")
	if err == nil {
		err = m.store.Put(id, ArtifactConfig, cfgJSON)
	}
	if err != nil {
		sess.Close()
		m.mu.Lock()
		delete(m.jobs, id)
		m.mu.Unlock()
		return nil, fmt.Errorf("session: persist config: %w", err)
	}

	m.wg.Add(1)
	go m.run(j)
	return j, nil
}

// run is the job's scheduler loop: acquire a slot, step one batch,
// release, until the target, a cancel, or an error — then deposit the
// artifacts and close the session.
func (m *Manager) run(j *Job) {
	defer m.wg.Done()
	defer close(j.done)

	final := StateDone
	errMsg := ""
	lastCkpt := j.sess.Step()
	for {
		step := j.sess.Step()
		if step >= j.Cfg.Steps {
			break
		}
		if j.sess.Cancelled() {
			final = StateCancelled
			break
		}
		batch := j.Cfg.BatchSteps
		if rem := j.Cfg.Steps - step; batch > rem {
			batch = rem
		}
		m.slots <- struct{}{}
		st, err := j.sess.StepN(batch)
		<-m.slots
		if st.Step > 0 {
			j.mu.Lock()
			j.last, j.step, j.time = st, st.Step, st.Time
			j.mu.Unlock()
		}
		if err == ErrCancelled {
			final = StateCancelled
			break
		}
		if err != nil {
			final = StateFailed
			errMsg = err.Error()
			break
		}
		if every := j.Cfg.CheckpointEvery; every > 0 && j.sess.Step()-lastCkpt >= every {
			if err := m.depositCheckpoint(j); err == nil {
				lastCkpt = j.sess.Step()
			}
		}
	}
	m.finish(j, final, errMsg)
}

// depositCheckpoint snapshots the session into the store.
func (m *Manager) depositCheckpoint(j *Job) error {
	ck, err := j.sess.Checkpoint()
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := ck.Encode(&buf); err != nil {
		return err
	}
	return m.store.Put(j.ID, ArtifactCheckpoint, buf.Bytes())
}

// finish deposits the job's artifacts, closes its session, and publishes
// the final state. Failed sessions keep their last checkpoint rather than
// a post-mortem one; done and cancelled sessions get a final snapshot so
// they can be resumed (cancelled) or extended (done).
func (m *Manager) finish(j *Job, final State, errMsg string) {
	if final != StateFailed {
		if err := m.depositCheckpoint(j); err != nil && errMsg == "" {
			errMsg = fmt.Sprintf("checkpoint artifact: %v", err)
		}
	}
	var hist bytes.Buffer
	if err := j.sess.History().WriteJSONL(&hist); err == nil {
		if err := m.store.Put(j.ID, ArtifactHistory, hist.Bytes()); err != nil && errMsg == "" {
			errMsg = fmt.Sprintf("history artifact: %v", err)
		}
	}
	if tr := j.sess.Tracer(); tr != nil {
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err == nil {
			if err := m.store.Put(j.ID, ArtifactTrace, buf.Bytes()); err != nil && errMsg == "" {
				errMsg = fmt.Sprintf("trace artifact: %v", err)
			}
		}
	}
	j.sess.Close()

	j.mu.Lock()
	j.state = final
	j.err = errMsg
	st := j.sess.Step()
	j.step, j.time = st, j.sess.Time()
	status := Status{
		ID: j.ID, State: j.state, Case: j.Cfg.Case,
		Step: j.step, TotalSteps: j.Cfg.Steps, Time: j.time,
		Error: j.err, ResumedFrom: j.resumedFrom,
		CFL: j.last.CFL, PressureIters: j.last.PressureIters,
		PressureResFinal: j.last.PressureResFinal,
	}
	j.mu.Unlock()
	j.sess.updateProgress(ns.StepStats{Step: status.Step, Time: status.Time,
		CFL: status.CFL, PressureIters: status.PressureIters,
		PressureResFinal: status.PressureResFinal}, true)
	if b, err := json.MarshalIndent(status, "", "  "); err == nil {
		m.store.Put(j.ID, ArtifactResult, b)
	}
}

// Get returns a job by id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List returns all jobs' statuses, sorted by id.
func (m *Manager) List() []Status {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Cancel requests a job stop at its next step boundary.
func (m *Manager) Cancel(id string) error {
	j, ok := m.Get(id)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	j.sess.Cancel()
	return nil
}

// Checkpoint snapshots a running job into the store and returns the
// completed step count of the snapshot.
func (m *Manager) Checkpoint(id string) (int, error) {
	j, ok := m.Get(id)
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if err := m.depositCheckpoint(j); err != nil {
		return 0, err
	}
	return j.sess.Step(), nil
}

// Store exposes the artifact store (the HTTP layer serves from it).
func (m *Manager) Store() Store { return m.store }

// Close cancels every running job and waits for all runners to deposit
// their artifacts and release their sessions.
func (m *Manager) Close() {
	m.mu.Lock()
	for _, j := range m.jobs {
		j.sess.Cancel()
	}
	m.mu.Unlock()
	m.wg.Wait()
}
