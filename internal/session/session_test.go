package session

import (
	"bytes"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/ns"
)

// testCfg is a small fast case for lifecycle tests.
func testCfg(steps, workers int) Config {
	return Config{
		Case: "shearlayer", Steps: steps, Nel: 4, N: 5,
		Alpha: 0.2, Workers: workers,
	}
}

// historyJSONL renders a session's per-step records — the bitwise
// comparison surface (StepRecord has no wall-clock fields).
func historyJSONL(t *testing.T, s *Session) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.History().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// soloRun steps a fresh session to completion and returns its history
// JSONL, final u-velocity, and final step stats.
func soloRun(t *testing.T, cfg Config) ([]byte, []float64, ns.StepStats) {
	t.Helper()
	s, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	last, err := s.StepN(cfg.Steps)
	if err != nil {
		t.Fatal(err)
	}
	u := append([]float64(nil), s.Solver().U[0]...)
	return historyJSONL(t, s), u, last
}

func TestSessionLifecycle(t *testing.T) {
	cfg := testCfg(8, 2)
	wantHist, wantU, wantLast := soloRun(t, cfg)

	// Step half, checkpoint, step the rest: same history as one shot.
	s, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.StepN(4); err != nil {
		t.Fatal(err)
	}
	ck, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	last, err := s.StepN(4)
	if err != nil {
		t.Fatal(err)
	}
	if last != wantLast {
		t.Fatalf("split-run last stats differ:\n got %+v\nwant %+v", last, wantLast)
	}
	if !bytes.Equal(historyJSONL(t, s), wantHist) {
		t.Fatal("split-run history differs from one-shot run")
	}

	// Resume the checkpoint in a fresh session: identical continuation.
	r, err := Resume(cfg, ck)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Step(); got != 4 {
		t.Fatalf("resumed at step %d, want 4", got)
	}
	rLast, err := r.StepN(4)
	if err != nil {
		t.Fatal(err)
	}
	if rLast != wantLast {
		t.Fatalf("resumed last stats differ:\n got %+v\nwant %+v", rLast, wantLast)
	}
	for i, v := range r.Solver().U[0] {
		if v != wantU[i] {
			t.Fatalf("resumed u[%d] = %v, want %v", i, v, wantU[i])
		}
	}

	// Cancel stops at the next boundary; the session stays usable.
	c, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.StepN(2); err != nil {
		t.Fatal(err)
	}
	c.Cancel()
	if _, err := c.StepN(2); !errors.Is(err, ErrCancelled) {
		t.Fatalf("StepN after Cancel: %v, want ErrCancelled", err)
	}
	if _, err := c.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint after Cancel: %v", err)
	}

	// Close is idempotent and fences stepping.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.StepN(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("StepN after Close: %v, want ErrClosed", err)
	}
	if _, err := c.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Checkpoint after Close: %v, want ErrClosed", err)
	}
}

func TestSessionOnStepSeesEveryStep(t *testing.T) {
	cfg := testCfg(5, 1)
	var steps []int
	cfg.OnStep = func(st ns.StepStats) { steps = append(steps, st.Step) }
	s, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.StepN(5); err != nil {
		t.Fatal(err)
	}
	if len(steps) != 5 {
		t.Fatalf("OnStep fired %d times, want 5", len(steps))
	}
	for i, st := range steps {
		if st != i+1 {
			t.Fatalf("OnStep order %v", steps)
		}
	}
}

func TestCreateRejectsUnknownCase(t *testing.T) {
	if _, err := Create(Config{Case: "vortexstreet"}); err == nil {
		t.Fatal("unknown case accepted")
	}
}

// TestManagerConcurrentBitwiseIdentical is the PR's acceptance test: two
// sessions multiplexed by one manager over a shared scheduler produce
// exactly — bitwise — the per-step stats and final fields each produces
// running alone.
func TestManagerConcurrentBitwiseIdentical(t *testing.T) {
	cfgA := testCfg(8, 2)
	cfgA.BatchSteps = 2
	cfgB := Config{Case: "channel", Steps: 8, N: 5, KX: 3, KY: 2,
		Alpha: 0.2, Workers: 3, BatchSteps: 3}

	histA, uA, lastA := soloRun(t, cfgA)
	histB, uB, lastB := soloRun(t, cfgB)

	m := NewManager(NewMemStore(), 2)
	jobA, err := m.Submit(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	jobB, err := m.Submit(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, jobA)
	waitJob(t, jobB)
	m.Close()

	check := func(name string, j *Job, hist []byte, u []float64, last ns.StepStats) {
		st := j.Status()
		if st.State != StateDone {
			t.Fatalf("%s: state %s (err %q)", name, st.State, st.Error)
		}
		if st.Step != last.Step || st.Time != last.Time || st.CFL != last.CFL ||
			st.PressureIters != last.PressureIters ||
			st.PressureResFinal != last.PressureResFinal {
			t.Fatalf("%s: final status %+v differs from solo stats %+v", name, st, last)
		}
		stored, err := m.Store().Get(j.ID, ArtifactHistory)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(stored, hist) {
			t.Fatalf("%s: concurrent per-step history differs from solo run", name)
		}
		got := j.Session().Solver().U[0]
		for i := range got {
			if got[i] != u[i] {
				t.Fatalf("%s: u[%d] = %v, want %v (not bitwise identical)", name, i, got[i], u[i])
			}
		}
	}
	check("A", jobA, histA, uA, lastA)
	check("B", jobB, histB, uB, lastB)
}

func TestManagerResumeAcrossRestart(t *testing.T) {
	cfg := testCfg(10, 2)
	wantHist, wantU, wantLast := soloRun(t, cfg)

	// First manager life: run 4 of the 10 steps, then "crash" (close).
	store := NewMemStore()
	m1 := NewManager(store, 1)
	short := cfg
	short.Steps = 4
	j1, err := m1.Submit(short)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j1)
	m1.Close()

	// Second life: a fresh manager resumes from the stored artifacts and
	// raises the target to the full 10 steps.
	m2 := NewManager(store, 1)
	j2, err := m2.ResumeJob(j1.ID, 10)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j2)
	defer m2.Close()

	st := j2.Status()
	if st.State != StateDone || st.ResumedFrom != j1.ID {
		t.Fatalf("resumed job status %+v", st)
	}
	if st.Step != wantLast.Step || st.Time != wantLast.Time || st.CFL != wantLast.CFL {
		t.Fatalf("resumed final %+v, want %+v", st, wantLast)
	}
	got := j2.Session().Solver().U[0]
	for i := range got {
		if got[i] != wantU[i] {
			t.Fatalf("resumed u[%d] = %v, want %v", i, got[i], wantU[i])
		}
	}
	// The resumed job's history holds steps 5..10; it must match the tail
	// of the solo run's record stream.
	resumedHist, err := store.Get(j2.ID, ArtifactHistory)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(wantHist, resumedHist) {
		t.Fatal("resumed history is not the solo run's tail")
	}

	// Resuming a finished job without extending the target is an error.
	if _, err := m2.ResumeJob(j2.ID, 10); err == nil {
		t.Fatal("resume past the final step accepted")
	}
}

func TestManagerCancelAndFailurePaths(t *testing.T) {
	m := NewManager(NewMemStore(), 1)
	defer m.Close()

	// A long job cancelled mid-flight deposits a resumable checkpoint.
	cfg := testCfg(10_000, 1)
	j, err := m.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for j.Status().Step == 0 {
		time.Sleep(time.Millisecond)
	}
	if err := m.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	st := j.Status()
	if st.State != StateCancelled {
		t.Fatalf("state %s, want cancelled", st.State)
	}
	if st.Step == 0 || st.Step >= cfg.Steps {
		t.Fatalf("cancelled at step %d", st.Step)
	}
	if _, err := m.Store().Get(j.ID, ArtifactCheckpoint); err != nil {
		t.Fatalf("cancelled job checkpoint: %v", err)
	}
	r, err := m.ResumeJob(j.ID, st.Step+2)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, r)
	if got := r.Status(); got.State != StateDone || got.Step != st.Step+2 {
		t.Fatalf("resumed cancelled job: %+v", got)
	}

	if _, err := m.Submit(Config{Case: "shearlayer"}); err == nil {
		t.Fatal("Submit with 0 steps accepted")
	}
	if _, err := m.ResumeJob("nope", 5); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ResumeJob(nope): %v, want ErrNotFound", err)
	}
	if err := m.Cancel("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Cancel(nope): %v, want ErrNotFound", err)
	}
}

// TestManagerReleasesWorkerPools is the leak half of the acceptance
// criterion: after every session closes, the process is back to its
// baseline goroutine count — no element-pool workers survive.
func TestManagerReleasesWorkerPools(t *testing.T) {
	base := runtime.NumGoroutine()
	m := NewManager(NewMemStore(), 2)
	var jobs []*Job
	for i := 0; i < 4; i++ {
		cfg := testCfg(3, 3) // 3 workers → 2 pool goroutines per disc pair
		cfg.BatchSteps = 1
		j, err := m.Submit(cfg)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		waitJob(t, j)
	}
	m.Close()
	settleGoroutines(t, base)
}

func waitJob(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(120 * time.Second):
		t.Fatalf("job %s did not finish: %+v", j.ID, j.Status())
	}
}

// settleGoroutines retries until the goroutine count drops back to at most
// want (GC and scheduler need a moment to retire pool workers).
func settleGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines did not settle: have %d, want <= %d\n%s",
				runtime.NumGoroutine(), want, buf[:n])
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
}
