package session

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestAPI(t *testing.T) (*Manager, *httptest.Server) {
	t.Helper()
	m := NewManager(NewMemStore(), 2)
	srv := httptest.NewServer(HTTPHandler(m))
	t.Cleanup(func() {
		srv.Close()
		m.Close()
	})
	return m, srv
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJSON(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func getBody(t *testing.T, url string, wantCode int) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s = %d, want %d (%s)", url, resp.StatusCode, wantCode, b)
	}
	return b
}

func pollDone(t *testing.T, base, id string) Status {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		var st Status
		resp, err := http.Get(base + "/api/sessions/" + id)
		if err != nil {
			t.Fatal(err)
		}
		decodeJSON(t, resp, &st)
		if st.State != StateRunning {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still running: %+v", id, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHTTPSubmitPollHistory(t *testing.T) {
	_, srv := newTestAPI(t)
	const steps = 6

	resp := postJSON(t, srv.URL+"/api/sessions", Config{
		Case: "shearlayer", Steps: steps, Nel: 4, N: 5, Workers: 2, Trace: true,
	})
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit = %d: %s", resp.StatusCode, b)
	}
	var sub SubmitResponse
	decodeJSON(t, resp, &sub)
	if sub.ID == "" {
		t.Fatal("empty id")
	}

	st := pollDone(t, srv.URL, sub.ID)
	if st.State != StateDone || st.Step != steps {
		t.Fatalf("final status %+v", st)
	}

	// Per-step JSONL: one record per step, parseable, in order.
	hist := getBody(t, srv.URL+"/api/sessions/"+sub.ID+"/history", http.StatusOK)
	lines := strings.Split(strings.TrimSpace(string(hist)), "\n")
	if len(lines) != steps {
		t.Fatalf("%d history lines, want %d", len(lines), steps)
	}
	for i, ln := range lines {
		var rec struct {
			Step int `json:"step"`
		}
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if rec.Step != i+1 {
			t.Fatalf("line %d has step %d", i, rec.Step)
		}
	}

	// The job shows up in the listing.
	var list []Status
	if err := json.Unmarshal(getBody(t, srv.URL+"/api/sessions", http.StatusOK), &list); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range list {
		found = found || s.ID == sub.ID
	}
	if !found {
		t.Fatalf("job %s missing from listing %+v", sub.ID, list)
	}

	// Artifacts: config, checkpoint, history, result, trace.
	var names []string
	if err := json.Unmarshal(getBody(t, srv.URL+"/api/sessions/"+sub.ID+"/artifacts", http.StatusOK), &names); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{ArtifactConfig, ArtifactCheckpoint, ArtifactHistory, ArtifactResult, ArtifactTrace} {
		ok := false
		for _, n := range names {
			ok = ok || n == want
		}
		if !ok {
			t.Fatalf("artifact %s missing from %v", want, names)
		}
	}
	trace := getBody(t, srv.URL+"/api/sessions/"+sub.ID+"/artifacts/"+ArtifactTrace, http.StatusOK)
	if !bytes.Contains(trace, []byte("traceEvents")) {
		t.Fatal("trace artifact is not a Chrome trace")
	}

	// Per-session observability endpoints.
	metrics := getBody(t, srv.URL+"/api/sessions/"+sub.ID+"/metrics", http.StatusOK)
	if !bytes.Contains(metrics, []byte("semflow_")) {
		t.Fatalf("metrics payload: %.120s", metrics)
	}
	var prog struct {
		Step int  `json:"step"`
		Done bool `json:"done"`
	}
	if err := json.Unmarshal(getBody(t, srv.URL+"/api/sessions/"+sub.ID+"/progress", http.StatusOK), &prog); err != nil {
		t.Fatal(err)
	}
	if prog.Step != steps || !prog.Done {
		t.Fatalf("progress %+v, want step=%d done", prog, steps)
	}
}

func TestHTTPCheckpointResumeCancel(t *testing.T) {
	_, srv := newTestAPI(t)

	// A long job: checkpoint it mid-flight, then cancel it.
	resp := postJSON(t, srv.URL+"/api/sessions", Config{
		Case: "shearlayer", Steps: 100_000, Nel: 4, N: 5, Workers: 1,
	})
	var sub SubmitResponse
	decodeJSON(t, resp, &sub)

	for {
		var st Status
		r, err := http.Get(srv.URL + "/api/sessions/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		decodeJSON(t, r, &st)
		if st.Step > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	ck := postJSON(t, srv.URL+"/api/sessions/"+sub.ID+"/checkpoint", nil)
	if ck.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint = %d", ck.StatusCode)
	}
	var ckResp struct {
		Step int `json:"step"`
	}
	decodeJSON(t, ck, &ckResp)
	if ckResp.Step == 0 {
		t.Fatal("checkpoint at step 0")
	}

	cancel := postJSON(t, srv.URL+"/api/sessions/"+sub.ID+"/cancel", nil)
	if cancel.StatusCode != http.StatusOK {
		t.Fatalf("cancel = %d", cancel.StatusCode)
	}
	cancel.Body.Close()
	st := pollDone(t, srv.URL, sub.ID)
	if st.State != StateCancelled {
		t.Fatalf("state %s, want cancelled", st.State)
	}

	// Resume over HTTP from the deposited checkpoint.
	resume := postJSON(t, srv.URL+"/api/sessions",
		SubmitRequest{ResumeFrom: sub.ID, Config: Config{Steps: st.Step + 3}})
	if resume.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resume.Body)
		t.Fatalf("resume = %d: %s", resume.StatusCode, b)
	}
	var sub2 SubmitResponse
	decodeJSON(t, resume, &sub2)
	st2 := pollDone(t, srv.URL, sub2.ID)
	if st2.State != StateDone || st2.Step != st.Step+3 || st2.ResumedFrom != sub.ID {
		t.Fatalf("resumed status %+v", st2)
	}
}

func TestHTTPErrors(t *testing.T) {
	_, srv := newTestAPI(t)

	getBody(t, srv.URL+"/api/sessions/nope", http.StatusNotFound)
	getBody(t, srv.URL+"/api/sessions/nope/history", http.StatusNotFound)
	getBody(t, srv.URL+"/api/sessions/nope/artifacts", http.StatusNotFound)

	for _, body := range []string{
		`{"case":"vortexstreet","steps":5}`, // unknown case
		`{"case":"shearlayer"}`,             // no steps
		`{not json`,
	} {
		resp, err := http.Post(srv.URL+"/api/sessions", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("submit %s = %d, want 400", body, resp.StatusCode)
		}
	}
	resp := postJSON(t, srv.URL+"/api/sessions", SubmitRequest{ResumeFrom: "nope", Config: Config{Steps: 5}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("resume from unknown = %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	b := getBody(t, srv.URL+"/healthz", http.StatusOK)
	if !bytes.Contains(b, []byte("ok")) {
		t.Fatalf("healthz: %s", b)
	}
}

// TestHTTPHistoryStreamsLive asserts the history endpoint is readable
// mid-run — the "stream telemetry while it runs" contract.
func TestHTTPHistoryStreamsLive(t *testing.T) {
	_, srv := newTestAPI(t)
	resp := postJSON(t, srv.URL+"/api/sessions", Config{
		Case: "shearlayer", Steps: 100_000, Nel: 4, N: 5, Workers: 1,
	})
	var sub SubmitResponse
	decodeJSON(t, resp, &sub)
	defer func() {
		postJSON(t, srv.URL+"/api/sessions/"+sub.ID+"/cancel", nil).Body.Close()
		pollDone(t, srv.URL, sub.ID)
	}()

	deadline := time.Now().Add(60 * time.Second)
	for {
		hist := getBody(t, srv.URL+"/api/sessions/"+sub.ID+"/history", http.StatusOK)
		if n := len(strings.Split(strings.TrimSpace(string(hist)), "\n")); n >= 2 && len(hist) > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("history never streamed mid-run")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
