package session

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// storeBackends returns one of each backend for conformance testing.
func storeBackends(t *testing.T) map[string]Store {
	t.Helper()
	fs, err := NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"fs": fs, "mem": NewMemStore()}
}

func TestStoreConformance(t *testing.T) {
	for name, st := range storeBackends(t) {
		t.Run(name, func(t *testing.T) {
			defer st.Close()

			if _, err := st.Get("s1", "a.json"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get on empty store: %v, want ErrNotFound", err)
			}
			if _, err := st.List("s1"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("List on empty store: %v, want ErrNotFound", err)
			}

			if err := st.Put("s1", "a.json", []byte("alpha")); err != nil {
				t.Fatal(err)
			}
			if err := st.Put("s1", "b.gob", []byte("beta")); err != nil {
				t.Fatal(err)
			}
			if err := st.Put("s2", "a.json", []byte("other")); err != nil {
				t.Fatal(err)
			}
			// Overwrite replaces.
			if err := st.Put("s1", "a.json", []byte("alpha2")); err != nil {
				t.Fatal(err)
			}

			b, err := st.Get("s1", "a.json")
			if err != nil || string(b) != "alpha2" {
				t.Fatalf("Get = %q, %v; want alpha2", b, err)
			}
			names, err := st.List("s1")
			if err != nil {
				t.Fatal(err)
			}
			if want := []string{"a.json", "b.gob"}; !equalStrings(names, want) {
				t.Fatalf("List = %v, want %v", names, want)
			}
			ids, err := st.Sessions()
			if err != nil {
				t.Fatal(err)
			}
			if want := []string{"s1", "s2"}; !equalStrings(ids, want) {
				t.Fatalf("Sessions = %v, want %v", ids, want)
			}

			// Mutating a returned slice must not alias the stored bytes.
			b[0] = 'X'
			b2, _ := st.Get("s1", "a.json")
			if string(b2) != "alpha2" {
				t.Fatalf("stored bytes aliased: %q", b2)
			}

			if err := st.Delete("s1"); err != nil {
				t.Fatal(err)
			}
			if _, err := st.Get("s1", "a.json"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get after Delete: %v, want ErrNotFound", err)
			}
			if err := st.Delete("s1"); err != nil {
				t.Fatalf("second Delete: %v", err)
			}
		})
	}
}

func TestStoreRejectsEscapingKeys(t *testing.T) {
	bad := []string{"", ".", "..", "a/b", `a\b`, "../etc", "x..y"}
	for name, st := range storeBackends(t) {
		t.Run(name, func(t *testing.T) {
			defer st.Close()
			for _, k := range bad {
				if err := st.Put(k, "a", nil); err == nil {
					t.Errorf("Put(session=%q) accepted", k)
				}
				if err := st.Put("s", k, nil); err == nil {
					t.Errorf("Put(name=%q) accepted", k)
				}
			}
		})
	}
}

func TestFSStoreAtomicNoLitter(t *testing.T) {
	root := t.TempDir()
	st, err := NewFSStore(root)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := st.Put("s1", "a.json", bytes.Repeat([]byte("x"), 1<<12)); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(filepath.Join(root, "s1"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file littered: %s", e.Name())
		}
	}
	// List must hide in-flight dot-temp files even if one were left behind.
	os.WriteFile(filepath.Join(root, "s1", ".a.json.tmp-999"), []byte("junk"), 0o644)
	names, err := st.List("s1")
	if err != nil {
		t.Fatal(err)
	}
	if !equalStrings(names, []string{"a.json"}) {
		t.Fatalf("List = %v, want [a.json]", names)
	}
}

func TestOpenStoreDispatch(t *testing.T) {
	if st, err := OpenStore("mem://"); err != nil {
		t.Fatal(err)
	} else if _, ok := st.(*MemStore); !ok {
		t.Fatalf("mem:// opened %T", st)
	}

	dir := t.TempDir()
	for _, dsn := range []string{dir, "file://" + dir} {
		st, err := OpenStore(dsn)
		if err != nil {
			t.Fatalf("OpenStore(%q): %v", dsn, err)
		}
		if _, ok := st.(*FSStore); !ok {
			t.Fatalf("OpenStore(%q) opened %T", dsn, st)
		}
	}

	if _, err := OpenStore("redis://localhost"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := OpenStore(""); err == nil {
		t.Fatal("empty dsn accepted")
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
