package session

// store.go is the pluggable artifact storage behind semflowd, following
// the multi-backend database.go pattern from gorse: one small interface,
// backends selected by the scheme of a data-source string, so a sqlite or
// S3-style backend can slot in later without touching the callers. Two
// backends ship today: the filesystem (one directory per session, atomic
// writes) and memory (tests, ephemeral servers).

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound reports a missing session or artifact.
var ErrNotFound = errors.New("session: artifact not found")

// Store persists per-session artifacts (history JSONL, checkpoints, trace
// JSON, result summaries) under (session id, artifact name) keys.
// Implementations must make Put atomic: a reader never observes a
// half-written artifact. All methods are safe for concurrent use.
type Store interface {
	// Put writes an artifact, replacing any previous content.
	Put(session, name string, data []byte) error
	// Get reads an artifact (ErrNotFound if absent).
	Get(session, name string) ([]byte, error)
	// List returns the sorted artifact names of one session.
	List(session string) ([]string, error)
	// Sessions returns the sorted ids that hold at least one artifact.
	Sessions() ([]string, error)
	// Delete removes a session and all its artifacts (no-op if absent).
	Delete(session string) error
	// Close releases backend resources.
	Close() error
}

// OpenStore opens a store from a data-source string:
//
//	mem://            in-memory (ephemeral)
//	file:///var/data  filesystem rooted at /var/data
//	./data            filesystem (plain paths are file: shorthand)
func OpenStore(dsn string) (Store, error) {
	switch {
	case dsn == "mem://" || dsn == "mem:":
		return NewMemStore(), nil
	case strings.HasPrefix(dsn, "file://"):
		return NewFSStore(strings.TrimPrefix(dsn, "file://"))
	case strings.Contains(dsn, "://"):
		return nil, fmt.Errorf("session: unsupported store scheme in %q (have mem://, file://)", dsn)
	default:
		return NewFSStore(dsn)
	}
}

// checkKey rejects ids/names that would escape the per-session namespace
// (path separators, "..", empty).
func checkKey(k string) error {
	if k == "" || k == "." || k == ".." ||
		strings.ContainsAny(k, "/\\") || strings.Contains(k, "..") {
		return fmt.Errorf("session: invalid store key %q", k)
	}
	return nil
}

// --- filesystem backend ---

// FSStore stores artifacts as root/<session>/<name>. Writes go through a
// uniquely named temp file, fsync, and rename, so crashes and concurrent
// writers never expose partial artifacts — the same discipline as the
// stepper's checkpoint files.
type FSStore struct {
	root string
}

// NewFSStore creates (if needed) the root directory and returns the store.
func NewFSStore(root string) (*FSStore, error) {
	if root == "" {
		return nil, fmt.Errorf("session: empty store root")
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("session: store root: %w", err)
	}
	return &FSStore{root: root}, nil
}

func (s *FSStore) Put(session, name string, data []byte) error {
	if err := checkKey(session); err != nil {
		return err
	}
	if err := checkKey(name); err != nil {
		return err
	}
	dir := filepath.Join(s.root, session)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("session: store: %w", err)
	}
	f, err := os.CreateTemp(dir, "."+name+".tmp-*")
	if err != nil {
		return fmt.Errorf("session: store: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("session: store: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Chmod(0o644); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("session: store: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("session: store: %w", err)
	}
	return nil
}

func (s *FSStore) Get(session, name string) ([]byte, error) {
	if err := checkKey(session); err != nil {
		return nil, err
	}
	if err := checkKey(name); err != nil {
		return nil, err
	}
	b, err := os.ReadFile(filepath.Join(s.root, session, name))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, session, name)
	}
	return b, err
}

func (s *FSStore) List(session string) ([]string, error) {
	if err := checkKey(session); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(filepath.Join(s.root, session))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, session)
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && !strings.HasPrefix(e.Name(), ".") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (s *FSStore) Sessions() ([]string, error) {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

func (s *FSStore) Delete(session string) error {
	if err := checkKey(session); err != nil {
		return err
	}
	return os.RemoveAll(filepath.Join(s.root, session))
}

func (s *FSStore) Close() error { return nil }

// --- memory backend ---

// MemStore keeps artifacts in a map; contents are copied on Put and Get so
// callers cannot alias the stored bytes.
type MemStore struct {
	mu   sync.RWMutex
	data map[string]map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{data: map[string]map[string][]byte{}}
}

func (s *MemStore) Put(session, name string, data []byte) error {
	if err := checkKey(session); err != nil {
		return err
	}
	if err := checkKey(name); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.data[session]
	if !ok {
		m = map[string][]byte{}
		s.data[session] = m
	}
	m[name] = append([]byte(nil), data...)
	return nil
}

func (s *MemStore) Get(session, name string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.data[session][name]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, session, name)
	}
	return append([]byte(nil), b...), nil
}

func (s *MemStore) List(session string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.data[session]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, session)
	}
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

func (s *MemStore) Sessions() ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]string, 0, len(s.data))
	for id := range s.data {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

func (s *MemStore) Delete(session string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.data, session)
	return nil
}

func (s *MemStore) Close() error { return nil }
