// Package session promotes a stable simulation-session API out of the
// solver internals: Create a flow case, StepN it forward, Checkpoint /
// Resume it across process lifetimes, Cancel it mid-flight, and Close it —
// releasing every element-loop worker pool it holds. It is the substrate
// of the semflowd multi-tenant service (Manager + HTTPHandler multiplex
// many concurrent sessions over a bounded scheduler, with artifacts behind
// a pluggable Store), and of the one-shot semflow CLI, so there is exactly
// one code path from "flow case + config" to stepped fields.
//
// A Session wraps the serial shared-memory stepper (ns.Solver). Per-session
// observability is always on: a metrics Registry, a per-step StepRecord
// TimeSeries (the JSONL artifact), and a Progress snapshot — the same
// instruments PR 7's live endpoint serves, mounted per session by semflowd.
// Stepping is bitwise deterministic and isolated: two sessions running
// concurrently in one process produce exactly the fields each would have
// produced alone (worker chunks are fixed at build; nothing numeric is
// shared), which the lifecycle tests assert.
package session

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/flowcases"
	"repro/internal/instrument"
	"repro/internal/ns"
)

// ErrCancelled reports a StepN interrupted by Cancel. The session's state
// stays valid: it can be checkpointed, resumed, or closed.
var ErrCancelled = errors.New("session: cancelled")

// ErrClosed reports an operation on a closed session.
var ErrClosed = errors.New("session: closed")

// Config selects a flow case and its knobs — the JSON body of semflowd's
// submit endpoint, and the struct semflow's serial flags map onto. Zero
// values mean "case default" (channel: KX=5 KY=3; all cases: N=8, Nel=8).
type Config struct {
	Case  string `json:"case"`  // shearlayer, channel, convection, hairpin
	Steps int    `json:"steps"` // job length (Manager); Create itself does not step

	N           int     `json:"n,omitempty"`            // polynomial order
	Nel         int     `json:"nel,omitempty"`          // elements per direction (shearlayer, convection)
	KX          int     `json:"kx,omitempty"`           // channel: elements along the channel
	KY          int     `json:"ky,omitempty"`           // channel: elements across the channel
	Precond     string  `json:"precond,omitempty"`      // pressure preconditioner: schwarz (default), chebjacobi, chebschwarz, none, auto
	Alpha       float64 `json:"alpha,omitempty"`        // filter strength (0 = unfiltered)
	ProjectionL int     `json:"projection_l,omitempty"` // pressure projection basis (convection/hairpin; 0 = case default)
	Workers     int     `json:"workers,omitempty"`      // element-loop workers (default 1)

	// Trace attaches a wall-clock tracer; the Manager stores the Chrome
	// trace JSON as a per-session artifact when the job finishes.
	Trace bool `json:"trace,omitempty"`

	// BatchSteps is the scheduler quantum: how many steps a session runs
	// per acquired slot before yielding to other sessions (default 1).
	BatchSteps int `json:"batch_steps,omitempty"`

	// CheckpointEvery > 0 makes the Manager deposit a checkpoint.gob
	// artifact every that-many steps (in addition to the final snapshot),
	// so a killed server can resume its jobs from the store.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`

	// OnStep, when set, observes every completed step (the CLI's per-step
	// report). Not part of the wire format.
	OnStep func(ns.StepStats) `json:"-"`
}

func (c *Config) applyDefaults() {
	if c.N == 0 {
		c.N = 8
	}
	if c.Nel == 0 {
		c.Nel = 8
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.BatchSteps < 1 {
		c.BatchSteps = 1
	}
}

// buildSolver constructs the case's solver — the single switch both
// semflow and semflowd go through.
func buildSolver(c Config) (*ns.Solver, error) {
	switch c.Case {
	case "shearlayer":
		return flowcases.ShearLayer(flowcases.ShearLayerConfig{
			Nel: c.Nel, N: c.N, Rho: 30, Re: 1e5, Dt: 0.002, Alpha: c.Alpha, Workers: c.Workers,
			Precond: c.Precond,
		})
	case "channel":
		s, _, err := flowcases.Channel(flowcases.ChannelConfig{
			Re: 7500, Alpha: 1, N: c.N, Dt: 0.003125, Order: 2, Filter: c.Alpha,
			Workers: c.Workers, KX: c.KX, KY: c.KY, Precond: c.Precond,
		})
		return s, err
	case "convection":
		l := c.ProjectionL
		if l == 0 {
			l = 20
		}
		return flowcases.Convection(flowcases.ConvectionConfig{
			Nel: c.Nel, N: c.N, Ra: 1e4, Dt: 0.002, ProjectionL: l, Workers: c.Workers,
			Precond: c.Precond,
		})
	case "hairpin":
		return flowcases.Hairpin(flowcases.HairpinConfig{
			Nx: 6, Ny: 4, Nz: 3, N: c.N, Re: 1600, Dt: 0.05,
			Workers: c.Workers, FilterA: c.Alpha, ProjL: c.ProjectionL,
			Precond: c.Precond,
		})
	default:
		return nil, fmt.Errorf("session: unknown case %q", c.Case)
	}
}

// Session is one live simulation: a solver plus its per-session
// instruments. Methods are safe for concurrent use; stepping itself is
// serialized by the session's lock, so Checkpoint always observes a
// between-steps state.
type Session struct {
	cfg Config

	mu     sync.Mutex // guards solver access and closed
	solver *ns.Solver
	closed bool

	cancelled atomic.Bool

	reg     *instrument.Registry
	history *instrument.TimeSeries
	prog    *instrument.Progress
	tracer  *instrument.Tracer // nil unless cfg.Trace
}

// Create builds a session for the configured case.
func Create(cfg Config) (*Session, error) {
	cfg.applyDefaults()
	if cfg.Steps < 0 {
		return nil, fmt.Errorf("session: negative steps")
	}
	solver, err := buildSolver(cfg)
	if err != nil {
		return nil, err
	}
	s := &Session{
		cfg:     cfg,
		solver:  solver,
		reg:     instrument.New(),
		history: instrument.NewTimeSeries(),
		prog:    instrument.NewProgress(),
	}
	sel := solver.PrecondSelection()
	s.reg.SetMeta(instrument.RunMeta{
		Case: cfg.Case, Elements: solver.M.K, Order: solver.M.N,
		Steps: cfg.Steps, Workers: cfg.Workers,
		Precond: sel.Name, PrecondSource: sel.Source,
	})
	solver.AttachMetrics(s.reg)
	solver.AttachHistory(s.history)
	if cfg.Trace {
		s.tracer = instrument.NewTracer()
		solver.AttachTracer(s.tracer)
	}
	return s, nil
}

// Resume builds a session of the same configuration and restores a
// checkpoint into it; stepping continues bitwise identically to the
// session the snapshot was taken from.
func Resume(cfg Config, ck *ns.Checkpoint) (*Session, error) {
	s, err := Create(cfg)
	if err != nil {
		return nil, err
	}
	if err := s.solver.Restore(ck); err != nil {
		s.Close()
		return nil, err
	}
	s.updateProgress(ns.StepStats{Step: ck.Step, Time: ck.Time}, false)
	return s, nil
}

// Config returns the session's configuration (defaults applied).
func (s *Session) Config() Config { return s.cfg }

// StepN advances the solver up to n steps, stopping early on Cancel (with
// ErrCancelled) or a solver error. It returns the stats of the last
// completed step.
func (s *Session) StepN(n int) (ns.StepStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var last ns.StepStats
	if s.closed {
		return last, ErrClosed
	}
	for i := 0; i < n; i++ {
		if s.cancelled.Load() {
			return last, ErrCancelled
		}
		st, err := s.solver.Step()
		if err != nil {
			return last, err
		}
		last = st
		s.updateProgress(st, false)
		if s.cfg.OnStep != nil {
			s.cfg.OnStep(st)
		}
	}
	return last, nil
}

func (s *Session) updateProgress(st ns.StepStats, done bool) {
	s.prog.Update(instrument.ProgressSnapshot{
		Case: s.cfg.Case, Step: st.Step, TotalSteps: s.cfg.Steps,
		Time: st.Time, CFL: st.CFL,
		PressureIters: st.PressureIters, PressureRes: st.PressureResFinal,
		Converged: st.PressureConverged, Done: done,
	})
}

// Checkpoint captures a between-steps snapshot (it waits for any StepN in
// flight on another goroutine to finish its current batch).
func (s *Session) Checkpoint() (*ns.Checkpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	return s.solver.Checkpoint(), nil
}

// Cancel makes the next step boundary return ErrCancelled. Idempotent;
// safe from any goroutine.
func (s *Session) Cancel() { s.cancelled.Store(true) }

// Cancelled reports whether Cancel was called.
func (s *Session) Cancelled() bool { return s.cancelled.Load() }

// Step returns the number of completed steps.
func (s *Session) Step() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.solver.StepCount()
}

// Time returns the current simulation time.
func (s *Session) Time() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.solver.Time()
}

// Close releases the solver's worker pools. Idempotent. A closed session
// rejects StepN/Checkpoint with ErrClosed; its instruments (History,
// Registry, Progress, Tracer) stay readable.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.solver.Close()
	return nil
}

// Solver exposes the underlying stepper for embedding drivers (semflow
// prints kinetic energy, runs autotune against the mesh, attaches extra
// tracers). Callers must not Step it directly while a Manager owns the
// session.
func (s *Session) Solver() *ns.Solver { return s.solver }

// History is the per-step StepRecord series (the JSONL artifact).
func (s *Session) History() *instrument.TimeSeries { return s.history }

// Registry is the per-session metrics registry (/metrics).
func (s *Session) Registry() *instrument.Registry { return s.reg }

// Progress is the per-session progress snapshot (/progress).
func (s *Session) Progress() *instrument.Progress { return s.prog }

// Tracer is the wall-clock tracer (nil unless Config.Trace).
func (s *Session) Tracer() *instrument.Tracer { return s.tracer }
