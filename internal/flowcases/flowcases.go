// Package flowcases configures the canonical flow problems of the paper's
// evaluation: the doubly-periodic shear-layer roll-up of Fig. 3 (Brown &
// Minion's test), the Tollmien–Schlichting channel of Table 1, a
// buoyancy-driven convection cell standing in for the GFFC spherical
// convection of Fig. 4, and the impulsively-started boundary-layer box with
// a hemispherical roughness element standing in for the hairpin-vortex
// production run of Figs. 7–8 and Table 4.
package flowcases

import (
	"fmt"
	"math"

	"repro/internal/mesh"
	"repro/internal/ns"
	"repro/internal/orrsomm"
)

// ShearLayerConfig selects a Fig. 3 case.
type ShearLayerConfig struct {
	Nel     int     // elements per direction (paper: 16 or 32)
	N       int     // polynomial order (paper: 8, 16, 32)
	Rho     float64 // shear layer thickness parameter (30 thick, 100 thin)
	Re      float64 // 1e5 thick, 4e4 thin
	Dt      float64 // paper: 0.002
	Alpha   float64 // filter strength (0 none, 0.3 partial, 1 full)
	Order   int     // BDF order (default 2)
	Workers int
	Precond string // pressure preconditioner variant ("" = schwarz)
}

// InitFunc is an initial velocity field. Specs return the problem as an
// (ns.Config, InitFunc) pair so the serial solver (ns.New + SetVelocity)
// and the distributed stepper (parrun.NavierStokes) run the exact same
// case from the exact same initial condition.
type InitFunc = func(x, y, z float64) (u, v, w float64)

// ShearLayerSpec builds the Fig. 3 problem definition without constructing
// a solver.
func ShearLayerSpec(c ShearLayerConfig) (ns.Config, InitFunc, error) {
	if c.Dt == 0 {
		c.Dt = 0.002
	}
	spec := mesh.Box2D(mesh.Box2DSpec{
		Nx: c.Nel, Ny: c.Nel, X0: 0, X1: 1, Y0: 0, Y1: 1,
		PeriodicX: true, PeriodicY: true,
	})
	m, err := mesh.Discretize(spec, c.N)
	if err != nil {
		return ns.Config{}, nil, err
	}
	// Production filter setting: ramp over the top ~20% of modes (at least
	// two), reaching strength alpha at mode N — the robust variant of the
	// Fischer–Mullen filter for strongly under-resolved runs.
	cutoff := c.N - c.N/5
	if cutoff > c.N-2 {
		cutoff = c.N - 2
	}
	cfg := ns.Config{
		Mesh: m, Re: c.Re, Dt: c.Dt, Order: c.Order,
		FilterAlpha: c.Alpha, FilterCutoff: cutoff, Workers: c.Workers,
		ProjectionL: 20, PTol: 1e-7, SubCFL: 0.25,
		PressurePrecond: c.Precond,
	}
	rho := c.Rho
	init := func(x, y, z float64) (float64, float64, float64) {
		var u float64
		if y <= 0.5 {
			u = math.Tanh(rho * (y - 0.25))
		} else {
			u = math.Tanh(rho * (0.75 - y))
		}
		return u, 0.05 * math.Sin(2*math.Pi*x), 0
	}
	return cfg, init, nil
}

// ShearLayer builds the doubly periodic shear layer solver with the paper's
// initial condition.
func ShearLayer(c ShearLayerConfig) (*ns.Solver, error) {
	cfg, init, err := ShearLayerSpec(c)
	if err != nil {
		return nil, err
	}
	s, err := ns.New(cfg)
	if err != nil {
		return nil, err
	}
	s.SetVelocity(init)
	return s, nil
}

// Vorticity returns the z-vorticity ω = ∂v/∂x - ∂u/∂y of the current
// velocity (element-local, C0-averaged).
func Vorticity(s *ns.Solver) []float64 {
	d := s.Disc()
	n := len(s.Velocity(0))
	gx := make([]float64, n)
	gy := make([]float64, n)
	w := make([]float64, n)
	d.Grad([][]float64{gx, gy}, s.Velocity(1))
	copy(w, gx)
	d.Grad([][]float64{gx, gy}, s.Velocity(0))
	for i := range w {
		w[i] -= gy[i]
	}
	d.DirectStiffnessAverage(w)
	return w
}

// FieldRange returns (min, max) of a field.
func FieldRange(f []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range f {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// KineticEnergy returns ½∫|u|² dΩ.
func KineticEnergy(s *ns.Solver) float64 {
	d := s.Disc()
	var e float64
	for c := 0; c < s.M.Dim; c++ {
		u := s.Velocity(c)
		n := d.L2Norm(u)
		e += 0.5 * n * n
	}
	return e
}

// Enstrophy returns ½∫ω² dΩ (2D).
func Enstrophy(s *ns.Solver) float64 {
	w := Vorticity(s)
	n := s.Disc().L2Norm(w)
	return 0.5 * n * n
}

// ChannelConfig selects a Table 1 configuration.
type ChannelConfig struct {
	Re      float64 // paper: 7500
	Alpha   float64 // streamwise wavenumber (paper: 1)
	N       int     // polynomial order
	KX, KY  int     // element grid (paper: K = 15, e.g. 5 x 3)
	Dt      float64
	Order   int     // 2 or 3
	Filter  float64 // filter strength (Table 1's α)
	Eps     float64 // perturbation amplitude (paper: 1e-5)
	Workers int
	Precond string // pressure preconditioner variant ("" = schwarz)
}

// ChannelSpec builds the Table 1 problem definition without constructing a
// solver.
func ChannelSpec(c ChannelConfig) (ns.Config, InitFunc, *orrsomm.Result, error) {
	if c.KX == 0 {
		c.KX, c.KY = 5, 3
	}
	if c.Eps == 0 {
		c.Eps = 1e-5
	}
	osr, err := orrsomm.Solve(c.Re, c.Alpha, 128, complex(0.25, 0.002))
	if err != nil {
		return ns.Config{}, nil, nil, fmt.Errorf("flowcases: OS reference: %w", err)
	}
	lx := 2 * math.Pi / c.Alpha
	spec := mesh.Box2D(mesh.Box2DSpec{
		Nx: c.KX, Ny: c.KY, X0: 0, X1: lx, Y0: -1, Y1: 1, PeriodicX: true,
	})
	m, err := mesh.Discretize(spec, c.N)
	if err != nil {
		return ns.Config{}, nil, nil, err
	}
	re := c.Re
	cfg := ns.Config{
		Mesh: m, Re: re, Dt: c.Dt, Order: c.Order, FilterAlpha: c.Filter,
		Workers: c.Workers, ProjectionL: 20, PTol: 1e-9, VTol: 1e-11,
		PressurePrecond: c.Precond,
		DirichletMask: func(x, y, z float64) bool { return true }, // walls
		DirichletVal: func(x, y, z, t float64) (float64, float64, float64) {
			return 0, 0, 0
		},
		// Pressure-gradient forcing that sustains the laminar base flow.
		Forcing: func(x, y, z, t float64) (float64, float64, float64) {
			return 2 / re, 0, 0
		},
	}
	eps := c.Eps
	init := func(x, y, z float64) (float64, float64, float64) {
		up, vp := osr.Velocity(x, y, 0, eps)
		return orrsomm.BaseFlow(y) + up, vp, 0
	}
	return cfg, init, osr, nil
}

// Channel builds the TS-wave channel problem and returns the solver along
// with the Orr–Sommerfeld reference solution.
func Channel(c ChannelConfig) (*ns.Solver, *orrsomm.Result, error) {
	cfg, init, osr, err := ChannelSpec(c)
	if err != nil {
		return nil, nil, err
	}
	s, err := ns.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	s.SetVelocity(init)
	return s, osr, nil
}

// PerturbationEnergy returns ∫ (u-U_base)² + v² dΩ for the channel problem.
func PerturbationEnergy(s *ns.Solver) float64 {
	d := s.Disc()
	m := s.M
	n := len(s.Velocity(0))
	du := make([]float64, n)
	for i := 0; i < n; i++ {
		du[i] = s.Velocity(0)[i] - orrsomm.BaseFlow(m.Y[i])
	}
	eu := d.L2Norm(du)
	ev := d.L2Norm(s.Velocity(1))
	return eu*eu + ev*ev
}

// MeasuredGrowthRate runs the channel solver from t0 to t1 and returns the
// fitted amplitude growth rate ½·d(ln E)/dt over that window.
func MeasuredGrowthRate(s *ns.Solver, steps int) (float64, error) {
	e0 := PerturbationEnergy(s)
	t0 := s.Time()
	for i := 0; i < steps; i++ {
		if _, err := s.Step(); err != nil {
			return 0, err
		}
	}
	e1 := PerturbationEnergy(s)
	t1 := s.Time()
	if e0 <= 0 || e1 <= 0 {
		return 0, fmt.Errorf("flowcases: non-positive perturbation energy")
	}
	return 0.5 * math.Log(e1/e0) / (t1 - t0), nil
}

// ConvectionConfig is the Fig. 4 stand-in: a buoyancy-driven convection
// cell whose successive pressure systems exercise the projection method.
type ConvectionConfig struct {
	Nel, N      int
	Ra          float64 // Rayleigh-like buoyancy strength
	Dt          float64
	ProjectionL int
	Workers     int
	Precond     string // pressure preconditioner variant ("" = schwarz)
}

// Convection builds a closed 2D box heated from below (Boussinesq).
func Convection(c ConvectionConfig) (*ns.Solver, error) {
	spec := mesh.Box2D(mesh.Box2DSpec{Nx: c.Nel, Ny: c.Nel, X0: 0, X1: 2, Y0: 0, Y1: 1})
	m, err := mesh.Discretize(spec, c.N)
	if err != nil {
		return nil, err
	}
	pr := 1.0
	s, err := ns.New(ns.Config{
		Mesh: m, Re: 1 / pr, Dt: c.Dt, Workers: c.Workers,
		ProjectionL: c.ProjectionL, PTol: 1e-8,
		PressurePrecond: c.Precond,
		DirichletMask: func(x, y, z float64) bool { return true },
		DirichletVal: func(x, y, z, t float64) (float64, float64, float64) {
			return 0, 0, 0
		},
		Scalar: &ns.ScalarConfig{
			Diffusivity: 1,
			Buoyancy:    [3]float64{0, c.Ra, 0},
			DirichletMask: func(x, y, z float64) bool {
				return y < 1e-12 || y > 1-1e-12 // top and bottom walls
			},
			DirichletVal: func(x, y, z, t float64) float64 {
				if y < 0.5 {
					return 1 // hot floor
				}
				return 0
			},
			Initial: func(x, y, z float64) float64 {
				// Conduction profile plus a symmetry-breaking perturbation.
				return (1 - y) + 0.01*math.Sin(math.Pi*x)*math.Sin(math.Pi*y)
			},
		},
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// HairpinConfig is the Figs. 7–8 / Table 4 stand-in: an impulsively started
// boundary layer over a wall with a hemispherical roughness element.
type HairpinConfig struct {
	Nx, Ny, Nz int
	N          int
	Re         float64 // based on the roughness radius
	Dt         float64
	Delta      float64 // boundary layer thickness (paper: 1.2 R)
	Workers    int
	FilterA    float64
	ProjL      int
	Precond    string // pressure preconditioner variant ("" = schwarz)
}

// HairpinSpec builds the Figs. 7–8 problem definition without constructing
// a solver.
func HairpinSpec(c HairpinConfig) (ns.Config, InitFunc, error) {
	const r = 1.0 // roughness radius sets the unit
	lx, ly, lz := 12*r, 6*r, 4*r
	spec := mesh.HemisphereBox(mesh.HemisphereBoxSpec{
		Nx: c.Nx, Ny: c.Ny, Nz: c.Nz,
		Lx: lx, Ly: ly, Lz: lz,
		Cx: 3 * r, Cy: 3 * r,
		Radius: r, Height: 0.8 * r,
		WallRatio: 3,
	})
	m, err := mesh.Discretize(spec, c.N)
	if err != nil {
		return ns.Config{}, nil, err
	}
	delta := c.Delta
	if delta == 0 {
		delta = 1.2 * r
	}
	blasius := func(z float64) float64 {
		eta := z / delta
		if eta >= 1 {
			return 1
		}
		// Polynomial Blasius approximation (Pohlhausen).
		return 2*eta - 2*eta*eta*eta + eta*eta*eta*eta
	}
	if c.ProjL == 0 {
		c.ProjL = 20
	}
	cfg := ns.Config{
		Mesh: m, Re: c.Re, Dt: c.Dt, Workers: c.Workers,
		FilterAlpha: c.FilterA, ProjectionL: c.ProjL, PTol: 1e-6, VTol: 1e-8,
		PressurePrecond: c.Precond,
		// Dirichlet on inflow (x=0), floor (z=0 including the bump, which
		// lifts it to at most 0.8) and top; outflow (x=Lx) and the spanwise
		// sides are left natural.
		DirichletMask: func(x, y, z float64) bool {
			return x < 1e-9 || z > lz-1e-9 || z < 0.85
		},
		DirichletVal: func(x, y, z, t float64) (float64, float64, float64) {
			if z > lz-1e-9 || x < 1e-9 {
				return blasius(z), 0, 0 // free stream / inflow profile
			}
			return 0, 0, 0 // no-slip floor
		},
	}
	init := func(x, y, z float64) (float64, float64, float64) {
		return blasius(z), 0, 0
	}
	return cfg, init, nil
}

// Hairpin builds the 3D roughness-element boundary-layer problem.
func Hairpin(c HairpinConfig) (*ns.Solver, error) {
	cfg, init, err := HairpinSpec(c)
	if err != nil {
		return nil, err
	}
	s, err := ns.New(cfg)
	if err != nil {
		return nil, err
	}
	s.SetVelocity(init)
	return s, nil
}
