package flowcases

import (
	"math"
	"testing"
)

func TestShearLayerFilterStabilizes(t *testing.T) {
	// Fig. 3 in miniature: at Re=1e5 with marginal resolution the
	// unfiltered scheme blows up while α=0.3 filtering survives the
	// roll-up window.
	if testing.Short() {
		t.Skip("multi-minute shear-layer run; skipped under -short (race tier)")
	}
	run := func(alpha float64, steps int) (blewUp bool, finalKE float64) {
		s, err := ShearLayer(ShearLayerConfig{
			Nel: 8, N: 8, Rho: 30, Re: 1e5, Dt: 0.002, Alpha: alpha,
		})
		if err != nil {
			t.Fatal(err)
		}
		ke0 := KineticEnergy(s)
		for i := 0; i < steps; i++ {
			if _, err := s.Step(); err != nil {
				return true, math.Inf(1)
			}
			ke := KineticEnergy(s)
			if math.IsNaN(ke) || ke > 10*ke0 {
				return true, ke
			}
		}
		return false, KineticEnergy(s)
	}
	blewFiltered, keF := run(0.3, 250)
	if blewFiltered {
		t.Fatalf("filtered shear layer blew up (KE %g)", keF)
	}
	blewRaw, _ := run(0, 250)
	if !blewRaw {
		t.Log("unfiltered case survived 250 steps (blowup expected later at this resolution)")
	}
	// Energy must not grow for the filtered case (dissipative flow).
	s, err := ShearLayer(ShearLayerConfig{Nel: 8, N: 8, Rho: 30, Re: 1e5, Dt: 0.002, Alpha: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	ke0 := KineticEnergy(s)
	for i := 0; i < 50; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if ke := KineticEnergy(s); ke > ke0*1.001 {
		t.Errorf("filtered shear layer gained energy: %g -> %g", ke0, ke)
	}
}

func TestShearLayerVorticityRange(t *testing.T) {
	// The initial tanh layer with rho=30 has peak vorticity ~rho.
	s, err := ShearLayer(ShearLayerConfig{Nel: 8, N: 8, Rho: 30, Re: 1e5, Dt: 0.002, Alpha: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := FieldRange(Vorticity(s))
	if hi < 25 || hi > 35 || lo > -25 {
		t.Errorf("initial vorticity range [%g, %g], want ≈ ±30", lo, hi)
	}
	if Enstrophy(s) <= 0 {
		t.Error("enstrophy must be positive")
	}
}

func TestChannelGrowthRateMatchesLinearTheory(t *testing.T) {
	// Table 1 in miniature: the measured TS growth rate converges to the
	// Orr–Sommerfeld value as N increases.
	rate := func(n int) (measured, reference float64) {
		s, osr, err := Channel(ChannelConfig{
			Re: 7500, Alpha: 1, N: n, Dt: 0.003125, Order: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		g, err := MeasuredGrowthRate(s, 64)
		if err != nil {
			t.Fatal(err)
		}
		return g, osr.GrowthRate()
	}
	g9, ref := rate(9)
	err9 := math.Abs(g9-ref) / math.Abs(ref)
	t.Logf("N=9: measured %g vs OS %g (rel err %g)", g9, ref, err9)
	if err9 > 0.05 {
		t.Errorf("N=9 growth-rate error %g too large", err9)
	}
	g7, _ := rate(7)
	err7 := math.Abs(g7-ref) / math.Abs(ref)
	t.Logf("N=7: rel err %g", err7)
	if err9 > err7 && err7 > 0.01 {
		t.Errorf("error did not shrink with N: N7 %g N9 %g", err7, err9)
	}
}

func TestConvectionCellDevelops(t *testing.T) {
	s, err := Convection(ConvectionConfig{Nel: 4, N: 5, Ra: 5e3, Dt: 0.005, ProjectionL: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if KineticEnergy(s) <= 0 {
		t.Error("convection cell has no motion")
	}
	// Temperature must stay within the wall values [0, 1] modulo small
	// over/undershoots.
	lo, hi := FieldRange(s.Scalar())
	if lo < -0.2 || hi > 1.2 {
		t.Errorf("temperature field out of bounds: [%g, %g]", lo, hi)
	}
}

func TestHairpinBoxRuns(t *testing.T) {
	s, err := Hairpin(HairpinConfig{
		Nx: 4, Ny: 3, Nz: 3, N: 5, Re: 850, Dt: 0.02, Workers: 2, FilterA: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var prevIters int
	for i := 0; i < 3; i++ {
		st, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if st.PressureIters <= 0 {
			t.Error("pressure solve did no iterations on an impulsive start")
		}
		prevIters = st.PressureIters
	}
	_ = prevIters
	// Velocity bounded by ~free stream.
	lo, hi := FieldRange(s.Velocity(0))
	if hi > 2 || lo < -2 {
		t.Errorf("streamwise velocity out of bounds: [%g, %g]", lo, hi)
	}
	// Flow must decelerate near the bump wall and stay ≈ free-stream at top.
	if KineticEnergy(s) <= 0 {
		t.Error("no kinetic energy")
	}
}
