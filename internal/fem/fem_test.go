package fem

import (
	"math"
	"testing"

	"repro/internal/la"
	"repro/internal/mesh"
)

func TestQuadStiffnessUnitSquare(t *testing.T) {
	ke := QuadStiffness([4][2]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}})
	// Known bilinear quad Laplacian: diag 2/3, edge-neighbours -1/6,
	// diagonal corner -1/3.
	want := [16]float64{
		2.0 / 3, -1.0 / 6, -1.0 / 6, -1.0 / 3,
		-1.0 / 6, 2.0 / 3, -1.0 / 3, -1.0 / 6,
		-1.0 / 6, -1.0 / 3, 2.0 / 3, -1.0 / 6,
		-1.0 / 3, -1.0 / 6, -1.0 / 6, 2.0 / 3,
	}
	for i := range ke {
		if math.Abs(ke[i]-want[i]) > 1e-12 {
			t.Fatalf("unit square quad stiffness wrong at %d: %g vs %g", i, ke[i], want[i])
		}
	}
}

func TestQuadStiffnessRowSumsZero(t *testing.T) {
	// Laplacian stiffness annihilates constants even on deformed quads.
	ke := QuadStiffness([4][2]float64{{0, 0}, {2, 0.3}, {-0.2, 1.5}, {2.5, 2}})
	for i := 0; i < 4; i++ {
		var s float64
		for j := 0; j < 4; j++ {
			s += ke[i*4+j]
		}
		if math.Abs(s) > 1e-13 {
			t.Fatalf("row %d sum %g", i, s)
		}
	}
}

func TestHexStiffnessUnitCube(t *testing.T) {
	var xyz [8][3]float64
	for a := 0; a < 8; a++ {
		xyz[a] = [3]float64{float64(a & 1), float64((a >> 1) & 1), float64((a >> 2) & 1)}
	}
	ke := HexStiffness(xyz)
	// Known trilinear hex Laplacian diagonal: 1/3; row sums zero; symmetry.
	for a := 0; a < 8; a++ {
		if math.Abs(ke[a*8+a]-1.0/3) > 1e-12 {
			t.Fatalf("hex diagonal %g, want 1/3", ke[a*8+a])
		}
		var s float64
		for b := 0; b < 8; b++ {
			s += ke[a*8+b]
			if math.Abs(ke[a*8+b]-ke[b*8+a]) > 1e-13 {
				t.Fatal("hex stiffness not symmetric")
			}
		}
		if math.Abs(s) > 1e-12 {
			t.Fatalf("hex row sum %g", s)
		}
	}
}

func TestLine1D(t *testing.T) {
	a, b := Line1D([]float64{0, 0.5, 1.5})
	// Stiffness: [[2,-2,0],[-2,2+2/3... h0=0.5: 1/h=2; h1=1: 1/h=1.
	want := []float64{2, -2, 0, -2, 3, -1, 0, -1, 1}
	for i := range want {
		if math.Abs(a[i]-want[i]) > 1e-14 {
			t.Fatalf("Line1D stiffness wrong at %d: %g", i, a[i])
		}
	}
	wantB := []float64{0.25, 0.75, 0.5}
	for i := range wantB {
		if math.Abs(b[i]-wantB[i]) > 1e-14 {
			t.Fatalf("Line1D mass wrong at %d: %g", i, b[i])
		}
	}
}

func TestRestrict(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	sub := Restrict(a, 3, []int{0, 2})
	if sub[0] != 1 || sub[1] != 3 || sub[2] != 7 || sub[3] != 9 {
		t.Fatalf("Restrict wrong: %v", sub)
	}
}

func TestAssembleGLL2DSolvesPoisson(t *testing.T) {
	// The low-order FEM Laplacian on the GLL subgrid must itself solve a
	// Poisson problem to low-order accuracy.
	spec := mesh.Box2D(mesh.Box2DSpec{Nx: 4, Ny: 4, X1: 1, Y1: 1})
	m, err := mesh.Discretize(spec, 6)
	if err != nil {
		t.Fatal(err)
	}
	a := AssembleGLL2D(m)
	if a.Rows != m.NGlobal {
		t.Fatalf("size %d vs %d", a.Rows, m.NGlobal)
	}
	// Dirichlet reduction: interior nodes only.
	interior := []int{}
	isB := make([]bool, m.NGlobal)
	for i, b := range m.OnBoundary {
		if b {
			isB[m.GID[i]] = true
		}
	}
	gidX := make([]float64, m.NGlobal)
	gidY := make([]float64, m.NGlobal)
	for i, g := range m.GID {
		gidX[g], gidY[g] = m.X[i], m.Y[i]
	}
	for g := 0; g < m.NGlobal; g++ {
		if !isB[g] {
			interior = append(interior, g)
		}
	}
	ad := a.Dense()
	sub := Restrict(ad, m.NGlobal, interior)
	fac, err := la.FactorCholesky(sub, len(interior))
	if err != nil {
		t.Fatal(err)
	}
	// RHS from lumped load f = 2π² sin sin: use FEM row sums of mass ≈
	// nodal quadrature; simpler: manufacture the solution u = x(1-x)y(1-y)
	// with f = 2(y(1-y) + x(1-x)).
	b := make([]float64, len(interior))
	// Lumped mass: diagonal of the FEM mass is awkward here; use the
	// Galerkin projection of f through quadrature on the SEM mass instead.
	bl := make([]float64, m.K*m.Np)
	for i := range bl {
		bl[i] = m.B[i] * 2 * (m.Y[i]*(1-m.Y[i]) + m.X[i]*(1-m.X[i]))
	}
	bg := make([]float64, m.NGlobal)
	for i, g := range m.GID {
		bg[g] += bl[i]
	}
	for k, g := range interior {
		b[k] = bg[g]
	}
	x := make([]float64, len(interior))
	fac.Solve(x, b)
	var maxErr float64
	for k, g := range interior {
		exact := gidX[g] * (1 - gidX[g]) * gidY[g] * (1 - gidY[g])
		if e := math.Abs(x[k] - exact); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 5e-3 {
		t.Errorf("FEM Poisson error %g too large for a low-order method", maxErr)
	}
}

func TestAssembleCoarseMatchesVertexCount(t *testing.T) {
	spec := mesh.Box3D(mesh.Box3DSpec{Nx: 2, Ny: 2, Nz: 2, X1: 1, Y1: 1, Z1: 1})
	m, err := mesh.Discretize(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	a0 := AssembleCoarse(m)
	if a0.Rows != m.NVert {
		t.Fatalf("coarse size %d vs NVert %d", a0.Rows, m.NVert)
	}
	// Row sums zero (Neumann Laplacian).
	x := make([]float64, m.NVert)
	for i := range x {
		x[i] = 1
	}
	y := make([]float64, m.NVert)
	a0.MulVec(y, x)
	for i, v := range y {
		if math.Abs(v) > 1e-12 {
			t.Fatalf("coarse row %d sum %g", i, v)
		}
	}
}

func TestNodeAdjacencySymmetricAndLocal(t *testing.T) {
	spec := mesh.Box2D(mesh.Box2DSpec{Nx: 2, Ny: 2, X1: 1, Y1: 1})
	m, err := mesh.Discretize(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	adj := NodeAdjacency(m)
	if len(adj) != m.NGlobal {
		t.Fatal("adjacency length wrong")
	}
	for g, ns := range adj {
		for _, nb := range ns {
			found := false
			for _, back := range adj[nb] {
				if int(back) == g {
					found = true
				}
			}
			if !found {
				t.Fatalf("adjacency not symmetric: %d -> %d", g, nb)
			}
		}
		if len(ns) > 8 {
			t.Fatalf("node %d has %d neighbours (max 8 on a quad grid)", g, len(ns))
		}
	}
}
