// Package fem supplies the low-order finite element building blocks that
// the paper's Schwarz preconditioner rests on (Sec. 5, Fig. 5): bilinear
// quadrilateral and trilinear hexahedral Laplacian element matrices, a
// global low-order Laplacian assembled on the GLL subgrid of a spectral
// element mesh (the FEM-based local solves of Table 2), 1D linear-element
// stiffness/lumped-mass pairs on arbitrary node sets (the separable
// operators fed to the fast diagonalization method), and the coarse-grid
// operator A₀ on the spectral element vertex mesh.
package fem

import (
	"math"

	"repro/internal/la"
	"repro/internal/mesh"
)

var gauss2 = [2]float64{-1 / math.Sqrt(3.0), 1 / math.Sqrt(3.0)}

// QuadStiffness returns the 4x4 Laplacian stiffness matrix of a bilinear
// quadrilateral with corner coordinates xy in tensor order
// ((-,-),(+,-),(-,+),(+,+)), integrated with 2x2 Gauss quadrature.
func QuadStiffness(xy [4][2]float64) [16]float64 {
	var ke [16]float64
	for _, gr := range gauss2 {
		for _, gss := range gauss2 {
			// Shape function derivatives on the reference square.
			dNr := [4]float64{-(1 - gss) / 4, (1 - gss) / 4, -(1 + gss) / 4, (1 + gss) / 4}
			dNs := [4]float64{-(1 - gr) / 4, -(1 + gr) / 4, (1 - gr) / 4, (1 + gr) / 4}
			var xr, xs, yr, ys float64
			for a := 0; a < 4; a++ {
				xr += dNr[a] * xy[a][0]
				xs += dNs[a] * xy[a][0]
				yr += dNr[a] * xy[a][1]
				ys += dNs[a] * xy[a][1]
			}
			jac := xr*ys - xs*yr
			// Physical derivatives of shape functions.
			var dNx, dNy [4]float64
			for a := 0; a < 4; a++ {
				dNx[a] = (dNr[a]*ys - dNs[a]*yr) / jac
				dNy[a] = (-dNr[a]*xs + dNs[a]*xr) / jac
			}
			for a := 0; a < 4; a++ {
				for b := 0; b < 4; b++ {
					ke[a*4+b] += (dNx[a]*dNx[b] + dNy[a]*dNy[b]) * jac
				}
			}
		}
	}
	return ke
}

// HexStiffness returns the 8x8 Laplacian stiffness matrix of a trilinear
// hexahedron with corners in tensor order, via 2x2x2 Gauss quadrature.
func HexStiffness(xyz [8][3]float64) [64]float64 {
	var ke [64]float64
	sign := func(a, bit int) float64 {
		if a&bit != 0 {
			return 1
		}
		return -1
	}
	for _, gr := range gauss2 {
		for _, gss := range gauss2 {
			for _, gt := range gauss2 {
				var dNr, dNs, dNt [8]float64
				for a := 0; a < 8; a++ {
					sr, ss, st := sign(a, 1), sign(a, 2), sign(a, 4)
					fr, fs, ft := 1+sr*gr, 1+ss*gss, 1+st*gt
					dNr[a] = sr * fs * ft / 8
					dNs[a] = fr * ss * ft / 8
					dNt[a] = fr * fs * st / 8
				}
				var j [9]float64 // rows: d(x,y,z)/d(r,s,t) columns... j[c*3+d] = dx_c/dref_d
				for a := 0; a < 8; a++ {
					for c := 0; c < 3; c++ {
						j[c*3+0] += dNr[a] * xyz[a][c]
						j[c*3+1] += dNs[a] * xyz[a][c]
						j[c*3+2] += dNt[a] * xyz[a][c]
					}
				}
				det := j[0]*(j[4]*j[8]-j[5]*j[7]) - j[1]*(j[3]*j[8]-j[5]*j[6]) + j[2]*(j[3]*j[7]-j[4]*j[6])
				// Inverse Jacobian (dref_d/dx_c).
				var inv [9]float64
				inv[0] = (j[4]*j[8] - j[5]*j[7]) / det
				inv[1] = (j[2]*j[7] - j[1]*j[8]) / det
				inv[2] = (j[1]*j[5] - j[2]*j[4]) / det
				inv[3] = (j[5]*j[6] - j[3]*j[8]) / det
				inv[4] = (j[0]*j[8] - j[2]*j[6]) / det
				inv[5] = (j[2]*j[3] - j[0]*j[5]) / det
				inv[6] = (j[3]*j[7] - j[4]*j[6]) / det
				inv[7] = (j[1]*j[6] - j[0]*j[7]) / det
				inv[8] = (j[0]*j[4] - j[1]*j[3]) / det
				var dNx, dNy, dNz [8]float64
				for a := 0; a < 8; a++ {
					dNx[a] = inv[0]*dNr[a] + inv[1]*dNs[a] + inv[2]*dNt[a]
					dNy[a] = inv[3]*dNr[a] + inv[4]*dNs[a] + inv[5]*dNt[a]
					dNz[a] = inv[6]*dNr[a] + inv[7]*dNs[a] + inv[8]*dNt[a]
				}
				for a := 0; a < 8; a++ {
					for b := 0; b < 8; b++ {
						ke[a*8+b] += (dNx[a]*dNx[b] + dNy[a]*dNy[b] + dNz[a]*dNz[b]) * det
					}
				}
			}
		}
	}
	return ke
}

// Line1D returns the 1D linear-element stiffness matrix (dense n x n) and
// lumped mass diagonal on the node set x (ascending). These are the Â, B̂
// pairs fed to the fast diagonalization method on the extended subdomain
// grids.
func Line1D(x []float64) (a []float64, bDiag []float64) {
	n := len(x)
	a = make([]float64, n*n)
	bDiag = make([]float64, n)
	for e := 0; e+1 < n; e++ {
		h := x[e+1] - x[e]
		k := 1 / h
		a[e*n+e] += k
		a[e*n+e+1] -= k
		a[(e+1)*n+e] -= k
		a[(e+1)*n+e+1] += k
		bDiag[e] += h / 2
		bDiag[e+1] += h / 2
	}
	return a, bDiag
}

// Restrict returns the principal submatrix of a dense n x n matrix on the
// index set idx.
func Restrict(a []float64, n int, idx []int) []float64 {
	m := len(idx)
	out := make([]float64, m*m)
	for i, gi := range idx {
		for j, gj := range idx {
			out[i*m+j] = a[gi*n+gj]
		}
	}
	return out
}

// AssembleGLL2D assembles the global bilinear-FEM Laplacian on the GLL
// subgrid of a 2D spectral element mesh, over global node ids. No boundary
// conditions are applied; callers restrict to their free node sets.
func AssembleGLL2D(m *mesh.Mesh) *la.CSR {
	b := la.NewCOO(m.NGlobal, m.NGlobal)
	np1 := m.N + 1
	for e := 0; e < m.K; e++ {
		base := e * m.Np
		for j := 0; j < m.N; j++ {
			for i := 0; i < m.N; i++ {
				l00 := base + j*np1 + i
				l10 := l00 + 1
				l01 := l00 + np1
				l11 := l01 + 1
				locs := [4]int{l00, l10, l01, l11}
				var xy [4][2]float64
				for a, l := range locs {
					xy[a] = [2]float64{m.X[l], m.Y[l]}
				}
				ke := QuadStiffness(xy)
				for a := 0; a < 4; a++ {
					for c := 0; c < 4; c++ {
						b.Add(int(m.GID[locs[a]]), int(m.GID[locs[c]]), ke[a*4+c])
					}
				}
			}
		}
	}
	return b.ToCSR()
}

// AssembleCoarse assembles the coarse-grid operator A₀: the low-order FEM
// Laplacian on the spectral element vertex mesh (bilinear quads in 2D,
// trilinear hexes in 3D), over compressed vertex ids.
func AssembleCoarse(m *mesh.Mesh) *la.CSR {
	b := la.NewCOO(m.NVert, m.NVert)
	if m.Dim == 2 {
		for e := 0; e < m.K; e++ {
			vs := m.ElemVert[e]
			var xy [4][2]float64
			for a := 0; a < 4; a++ {
				p := m.ElemCorner(e, a) // element-local corner (periodic-safe)
				xy[a] = [2]float64{p[0], p[1]}
			}
			ke := QuadStiffness(xy)
			for a := 0; a < 4; a++ {
				for c := 0; c < 4; c++ {
					b.Add(vs[a], vs[c], ke[a*4+c])
				}
			}
		}
		return b.ToCSR()
	}
	for e := 0; e < m.K; e++ {
		vs := m.ElemVert[e]
		var xyz [8][3]float64
		for a := 0; a < 8; a++ {
			xyz[a] = m.ElemCorner(e, a) // element-local corner (periodic-safe)
		}
		ke := HexStiffness(xyz)
		for a := 0; a < 8; a++ {
			for c := 0; c < 8; c++ {
				b.Add(vs[a], vs[c], ke[a*8+c])
			}
		}
	}
	return b.ToCSR()
}

// NodeAdjacency returns, per global node, its distinct neighbouring global
// nodes under the low-order (GLL-subgrid) connectivity of the mesh. Used to
// grow the overlapping subdomains of the Schwarz method by graph distance.
func NodeAdjacency(m *mesh.Mesh) [][]int32 {
	adj := make(map[int32]map[int32]bool)
	link := func(a, b int64) {
		ia, ib := int32(a), int32(b)
		if adj[ia] == nil {
			adj[ia] = make(map[int32]bool)
		}
		if adj[ib] == nil {
			adj[ib] = make(map[int32]bool)
		}
		adj[ia][ib] = true
		adj[ib][ia] = true
	}
	np1 := m.N + 1
	if m.Dim == 2 {
		for e := 0; e < m.K; e++ {
			base := e * m.Np
			for j := 0; j < np1; j++ {
				for i := 0; i < np1; i++ {
					l := base + j*np1 + i
					if i+1 < np1 {
						link(m.GID[l], m.GID[l+1])
					}
					if j+1 < np1 {
						link(m.GID[l], m.GID[l+np1])
					}
				}
			}
		}
	} else {
		np2 := np1 * np1
		for e := 0; e < m.K; e++ {
			base := e * m.Np
			for k := 0; k < np1; k++ {
				for j := 0; j < np1; j++ {
					for i := 0; i < np1; i++ {
						l := base + (k*np1+j)*np1 + i
						if i+1 < np1 {
							link(m.GID[l], m.GID[l+1])
						}
						if j+1 < np1 {
							link(m.GID[l], m.GID[l+np1])
						}
						if k+1 < np1 {
							link(m.GID[l], m.GID[l+np2])
						}
					}
				}
			}
		}
	}
	out := make([][]int32, m.NGlobal)
	for g, set := range adj {
		lst := make([]int32, 0, len(set))
		for nb := range set {
			lst = append(lst, nb)
		}
		out[g] = lst
	}
	return out
}
