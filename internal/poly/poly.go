// Package poly supplies the one-dimensional polynomial machinery of the
// spectral element method: Gauss–Legendre (GL) and Gauss–Lobatto–Legendre
// (GLL) quadrature rules, barycentric Lagrange interpolation, spectral
// differentiation matrices, grid-to-grid interpolation matrices, and the
// Legendre modal transform used by the Fischer–Mullen stabilizing filter
// (Sec. 2 of the paper).
package poly

import (
	"fmt"
	"math"

	"repro/internal/la"
)

// Legendre evaluates the Legendre polynomial P_n and its derivative P'_n at
// x by the three-term recurrence.
func Legendre(n int, x float64) (p, dp float64) {
	if n == 0 {
		return 1, 0
	}
	pm1, p := 1.0, x
	dpm1, dp := 0.0, 1.0
	for k := 2; k <= n; k++ {
		fk := float64(k)
		pk := ((2*fk-1)*x*p - (fk-1)*pm1) / fk
		dpk := dpm1 + (2*fk-1)*p
		pm1, p = p, pk
		dpm1, dp = dp, dpk
	}
	return p, dp
}

// GaussLobatto returns the N+1 Gauss–Lobatto–Legendre quadrature points
// (ascending, including ±1) and weights on [-1, 1]. The rule is exact for
// polynomials of degree ≤ 2N-1. These are the nodal points of the spectral
// element basis (the "GL nodal lines" of Fig. 2 in the paper).
func GaussLobatto(n int) (x, w []float64) {
	if n < 1 {
		panic("poly: GaussLobatto requires n >= 1")
	}
	np := n + 1
	x = make([]float64, np)
	w = make([]float64, np)
	x[0], x[n] = -1, 1
	// Interior points are the roots of P'_N; Newton from Chebyshev-Lobatto
	// initial guesses.
	for j := 1; j < n; j++ {
		xi := -math.Cos(math.Pi * float64(j) / float64(n))
		for it := 0; it < 100; it++ {
			// P'_N(x) = N/(1-x²) (P_{N-1}(x) - x P_N(x)); iterate on the
			// derivative of (1-x²)P'_N which is -N(N+1)P_N... Use direct
			// Newton on g(x) = P'_N(x) with g'(x) = P''_N(x) obtained from
			// the Legendre ODE: (1-x²)P'' - 2xP' + N(N+1)P = 0.
			pn, dpn := Legendre(n, xi)
			d2 := (2*xi*dpn - float64(n)*float64(n+1)*pn) / (1 - xi*xi)
			dx := dpn / d2
			xi -= dx
			if math.Abs(dx) < 1e-15 {
				break
			}
		}
		x[j] = xi
	}
	nn := float64(n) * float64(n+1)
	for j := 0; j <= n; j++ {
		pn, _ := Legendre(n, x[j])
		w[j] = 2 / (nn * pn * pn)
	}
	return x, w
}

// Gauss returns the n Gauss–Legendre quadrature points (ascending) and
// weights on [-1, 1]; the rule is exact for degree ≤ 2n-1. These are the
// nodal points of the P_{N-2} pressure space.
func Gauss(n int) (x, w []float64) {
	if n < 1 {
		panic("poly: Gauss requires n >= 1")
	}
	x = make([]float64, n)
	w = make([]float64, n)
	for j := 0; j < n; j++ {
		// Chebyshev initial guess, refined by Newton on P_n.
		xi := -math.Cos(math.Pi * (float64(j) + 0.75) / (float64(n) + 0.5))
		var dpn float64
		for it := 0; it < 100; it++ {
			var pn float64
			pn, dpn = Legendre(n, xi)
			dx := pn / dpn
			xi -= dx
			if math.Abs(dx) < 1e-15 {
				break
			}
		}
		x[j] = xi
		w[j] = 2 / ((1 - xi*xi) * dpn * dpn)
	}
	return x, w
}

// BaryWeights returns the barycentric interpolation weights for the node set
// x, normalized to unit maximum magnitude for numerical robustness.
func BaryWeights(x []float64) []float64 {
	n := len(x)
	w := make([]float64, n)
	for j := 0; j < n; j++ {
		w[j] = 1
		for k := 0; k < n; k++ {
			if k != j {
				w[j] /= x[j] - x[k]
			}
		}
	}
	maxw := 0.0
	for _, v := range w {
		if a := math.Abs(v); a > maxw {
			maxw = a
		}
	}
	for j := range w {
		w[j] /= maxw
	}
	return w
}

// DerivMatrix returns the spectral differentiation matrix D for the Lagrange
// basis on nodes x: (D u)_i = u'(x_i) for u the interpolant of the nodal
// values. Row-major (len(x) x len(x)).
func DerivMatrix(x []float64) []float64 {
	n := len(x)
	w := BaryWeights(x)
	d := make([]float64, n*n)
	for i := 0; i < n; i++ {
		var rowSum float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := (w[j] / w[i]) / (x[i] - x[j])
			d[i*n+j] = v
			rowSum += v
		}
		d[i*n+i] = -rowSum // rows of D annihilate constants
	}
	return d
}

// InterpMatrix returns the matrix J mapping nodal values on grid x to values
// at points y: (J u)_i = u(y_i), using barycentric Lagrange interpolation.
// J is len(y) x len(x), row-major.
func InterpMatrix(y, x []float64) []float64 {
	nx, ny := len(x), len(y)
	w := BaryWeights(x)
	j := make([]float64, ny*nx)
	for i := 0; i < ny; i++ {
		// Exact node hit?
		hit := -1
		for k := 0; k < nx; k++ {
			if y[i] == x[k] {
				hit = k
				break
			}
		}
		if hit >= 0 {
			j[i*nx+hit] = 1
			continue
		}
		var denom float64
		for k := 0; k < nx; k++ {
			denom += w[k] / (y[i] - x[k])
		}
		for k := 0; k < nx; k++ {
			j[i*nx+k] = (w[k] / (y[i] - x[k])) / denom
		}
	}
	return j
}

// LegendreVandermonde returns V with V[i*(n+1)+k] = P_k(x_i) for the node
// set x of length n+1; it maps Legendre modal coefficients to nodal values.
func LegendreVandermonde(x []float64) []float64 {
	np := len(x)
	v := make([]float64, np*np)
	for i, xi := range x {
		for k := 0; k < np; k++ {
			p, _ := Legendre(k, xi)
			v[i*np+k] = p
		}
	}
	return v
}

// FilterMatrix builds the Fischer–Mullen stabilizing filter F_α on the node
// set x (GLL points of degree N = len(x)-1):
//
//	F_α = α Π_{N-1} + (1-α) I,
//
// where Π_{N-1} interpolates to the GLL grid of degree N-1 and back. α = 0
// is the identity (no filtering); α = 1 completely removes the highest mode.
// F preserves polynomials of degree ≤ N-1 exactly and, because the GLL
// endpoints are shared, leaves element-boundary values C0-conforming.
func FilterMatrix(alpha float64, x []float64) []float64 {
	np := len(x)
	n := np - 1
	if n < 2 {
		// Degree too low to filter; identity.
		f := make([]float64, np*np)
		for i := 0; i < np; i++ {
			f[i*np+i] = 1
		}
		return f
	}
	xc, _ := GaussLobatto(n - 1)
	down := InterpMatrix(xc, x)  // N grid -> N-1 grid
	up := InterpMatrix(x, xc)    // N-1 grid -> N grid
	pi := make([]float64, np*np) // Π_{N-1}
	la.Mul(pi, up, down, np, n, np)
	f := make([]float64, np*np)
	for i := 0; i < np*np; i++ {
		f[i] = alpha * pi[i]
	}
	for i := 0; i < np; i++ {
		f[i*np+i] += 1 - alpha
	}
	return f
}

// ModalFilterMatrix builds a filter that damps Legendre modes directly:
// F = V diag(σ) V⁻¹ with σ_k = 1 for k < cutoff and a smooth quadratic
// ramp from 1 down to 1-α for k ≥ cutoff. With cutoff = N it damps only the
// top mode, matching FilterMatrix's action in exact arithmetic.
func ModalFilterMatrix(alpha float64, cutoff int, x []float64) ([]float64, error) {
	np := len(x)
	v := LegendreVandermonde(x)
	lu, err := la.FactorLU(v, np)
	if err != nil {
		return nil, fmt.Errorf("poly: Vandermonde singular: %w", err)
	}
	vinv := lu.Inverse()
	sigma := make([]float64, np)
	for k := 0; k < np; k++ {
		switch {
		case k < cutoff:
			sigma[k] = 1
		case np == cutoff+1:
			sigma[k] = 1 - alpha
		default:
			t := float64(k-cutoff) / float64(np-1-cutoff)
			sigma[k] = 1 - alpha*t*t
		}
	}
	// F = V diag(sigma) V⁻¹.
	vs := make([]float64, np*np)
	for i := 0; i < np; i++ {
		for k := 0; k < np; k++ {
			vs[i*np+k] = v[i*np+k] * sigma[k]
		}
	}
	f := make([]float64, np*np)
	la.Mul(f, vs, vinv, np, np, np)
	return f, nil
}

// LagrangeEval evaluates the Lagrange interpolant of nodal values u on nodes
// x at the point t (barycentric formula).
func LagrangeEval(x, u []float64, t float64) float64 {
	w := BaryWeights(x)
	var num, den float64
	for k := range x {
		if t == x[k] {
			return u[k]
		}
		c := w[k] / (t - x[k])
		num += c * u[k]
		den += c
	}
	return num / den
}
