package poly

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLegendreValues(t *testing.T) {
	// P_0..P_4 at a few known points.
	cases := []struct {
		n    int
		x, p float64
	}{
		{0, 0.3, 1},
		{1, 0.3, 0.3},
		{2, 0.5, 0.5 * (3*0.25 - 1) * 0.5 / 0.5}, // (3x²-1)/2 = -0.125
		{3, 1, 1},
		{4, -1, 1},
		{5, -1, -1},
	}
	cases[2].p = (3*0.25 - 1) / 2
	for _, c := range cases {
		p, _ := Legendre(c.n, c.x)
		if math.Abs(p-c.p) > 1e-14 {
			t.Errorf("P_%d(%g) = %g, want %g", c.n, c.x, p, c.p)
		}
	}
	// Derivative check against finite differences.
	for n := 1; n <= 10; n++ {
		x := 0.37
		h := 1e-6
		pp, _ := Legendre(n, x+h)
		pm, _ := Legendre(n, x-h)
		_, dp := Legendre(n, x)
		if math.Abs(dp-(pp-pm)/(2*h)) > 1e-6 {
			t.Errorf("P'_%d mismatch", n)
		}
	}
}

func TestGaussLobattoExactness(t *testing.T) {
	for n := 1; n <= 16; n++ {
		x, w := GaussLobatto(n)
		if len(x) != n+1 {
			t.Fatalf("wrong point count for N=%d", n)
		}
		if x[0] != -1 || x[n] != 1 {
			t.Fatalf("endpoints missing for N=%d", n)
		}
		for j := 1; j <= n; j++ {
			if x[j] <= x[j-1] {
				t.Fatalf("points not ascending for N=%d", n)
			}
		}
		// Exact for monomials up to degree 2N-1.
		for d := 0; d <= 2*n-1; d++ {
			var q float64
			for j := range x {
				q += w[j] * math.Pow(x[j], float64(d))
			}
			want := 0.0
			if d%2 == 0 {
				want = 2 / float64(d+1)
			}
			if math.Abs(q-want) > 1e-12 {
				t.Errorf("N=%d: ∫x^%d quadrature error %g", n, d, q-want)
			}
		}
	}
}

func TestGaussExactness(t *testing.T) {
	for n := 1; n <= 16; n++ {
		x, w := Gauss(n)
		for d := 0; d <= 2*n-1; d++ {
			var q float64
			for j := range x {
				q += w[j] * math.Pow(x[j], float64(d))
			}
			want := 0.0
			if d%2 == 0 {
				want = 2 / float64(d+1)
			}
			if math.Abs(q-want) > 1e-12 {
				t.Errorf("n=%d: ∫x^%d quadrature error %g", n, d, q-want)
			}
		}
	}
}

func TestGaussKnownPoints(t *testing.T) {
	x, w := Gauss(2)
	if math.Abs(x[0]+1/math.Sqrt(3)) > 1e-14 || math.Abs(x[1]-1/math.Sqrt(3)) > 1e-14 {
		t.Errorf("2-point Gauss nodes wrong: %v", x)
	}
	if math.Abs(w[0]-1) > 1e-14 || math.Abs(w[1]-1) > 1e-14 {
		t.Errorf("2-point Gauss weights wrong: %v", w)
	}
	x3, _ := GaussLobatto(3)
	want := math.Sqrt(1.0 / 5.0)
	if math.Abs(x3[1]+want) > 1e-13 || math.Abs(x3[2]-want) > 1e-13 {
		t.Errorf("GLL N=3 interior nodes wrong: %v", x3)
	}
}

func TestDerivMatrixExactOnPolynomials(t *testing.T) {
	for n := 2; n <= 14; n += 3 {
		x, _ := GaussLobatto(n)
		d := DerivMatrix(x)
		np := n + 1
		// Differentiate x^k exactly for k <= n.
		for k := 0; k <= n; k++ {
			u := make([]float64, np)
			for i, xi := range x {
				u[i] = math.Pow(xi, float64(k))
			}
			for i := 0; i < np; i++ {
				var du float64
				for j := 0; j < np; j++ {
					du += d[i*np+j] * u[j]
				}
				want := 0.0
				if k > 0 {
					want = float64(k) * math.Pow(x[i], float64(k-1))
				}
				if math.Abs(du-want) > 1e-9 {
					t.Errorf("N=%d: D(x^%d) error %g at node %d", n, k, du-want, i)
				}
			}
		}
	}
}

func TestInterpMatrixExactAndNodal(t *testing.T) {
	x, _ := GaussLobatto(8)
	y, _ := Gauss(7)
	j := InterpMatrix(y, x)
	// Interpolation of polynomials of degree <= 8 is exact.
	for k := 0; k <= 8; k++ {
		u := make([]float64, len(x))
		for i, xi := range x {
			u[i] = math.Pow(xi, float64(k))
		}
		for i, yi := range y {
			var v float64
			for l := range x {
				v += j[i*len(x)+l] * u[l]
			}
			if math.Abs(v-math.Pow(yi, float64(k))) > 1e-10 {
				t.Errorf("interp x^%d error at y[%d]", k, i)
			}
		}
	}
	// Interpolating onto the same grid gives the identity.
	jj := InterpMatrix(x, x)
	for i := range x {
		for l := range x {
			want := 0.0
			if i == l {
				want = 1
			}
			if math.Abs(jj[i*len(x)+l]-want) > 1e-14 {
				t.Fatalf("self-interpolation not identity")
			}
		}
	}
}

func TestFilterPreservesLowModesDampsTop(t *testing.T) {
	n := 10
	x, _ := GaussLobatto(n)
	np := n + 1
	alpha := 0.3
	f := FilterMatrix(alpha, x)
	// Polynomials of degree <= N-1 pass through unchanged.
	for k := 0; k < n; k++ {
		u := make([]float64, np)
		for i, xi := range x {
			p, _ := Legendre(k, xi)
			u[i] = p
		}
		for i := 0; i < np; i++ {
			var v float64
			for l := 0; l < np; l++ {
				v += f[i*np+l] * u[l]
			}
			if math.Abs(v-u[i]) > 1e-10 {
				t.Fatalf("filter modified mode %d: diff %g", k, v-u[i])
			}
		}
	}
	// The N-th Legendre mode is damped: ||F u_N|| < ||u_N||, with
	// coefficient reduction close to α at the interior nodes.
	u := make([]float64, np)
	for i, xi := range x {
		p, _ := Legendre(n, xi)
		u[i] = p
	}
	var before, after float64
	for i := 0; i < np; i++ {
		var v float64
		for l := 0; l < np; l++ {
			v += f[i*np+l] * u[l]
		}
		before += u[i] * u[i]
		diff := v - (1-alpha)*u[i]
		after += diff * diff
	}
	// F u_N should be close to (1-α) u_N modulo the aliasing of Π_{N-1};
	// the residual must be far smaller than u_N itself.
	if after > 0.2*before {
		t.Errorf("top-mode damping incorrect: residual %g vs %g", after, before)
	}
}

func TestFilterIdentityWhenAlphaZero(t *testing.T) {
	x, _ := GaussLobatto(7)
	f := FilterMatrix(0, x)
	np := len(x)
	for i := 0; i < np; i++ {
		for j := 0; j < np; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(f[i*np+j]-want) > 1e-12 {
				t.Fatalf("alpha=0 filter not identity")
			}
		}
	}
	// Degenerate low degree: identity regardless of alpha.
	x1, _ := GaussLobatto(1)
	f1 := FilterMatrix(0.5, x1)
	if f1[0] != 1 || f1[3] != 1 || f1[1] != 0 {
		t.Error("low-degree filter should be identity")
	}
}

func TestModalFilterMatchesInterpFilterOnTopMode(t *testing.T) {
	n := 8
	x, _ := GaussLobatto(n)
	np := n + 1
	alpha := 0.4
	fm, err := ModalFilterMatrix(alpha, n, x)
	if err != nil {
		t.Fatal(err)
	}
	// Both preserve low modes; modal filter damps P_N exactly by (1-α).
	u := make([]float64, np)
	for i, xi := range x {
		p, _ := Legendre(n, xi)
		u[i] = p
	}
	for i := 0; i < np; i++ {
		var v float64
		for l := 0; l < np; l++ {
			v += fm[i*np+l] * u[l]
		}
		if math.Abs(v-(1-alpha)*u[i]) > 1e-9 {
			t.Fatalf("modal filter top mode: got %g want %g", v, (1-alpha)*u[i])
		}
	}
}

func TestLagrangeEvalProperty(t *testing.T) {
	// Interpolation reproduces arbitrary degree-N polynomials at random
	// evaluation points (property-based).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		x, _ := GaussLobatto(n)
		coef := make([]float64, n+1)
		for i := range coef {
			coef[i] = rng.NormFloat64()
		}
		evalPoly := func(t float64) float64 {
			v := 0.0
			for i := n; i >= 0; i-- {
				v = v*t + coef[i]
			}
			return v
		}
		u := make([]float64, n+1)
		for i, xi := range x {
			u[i] = evalPoly(xi)
		}
		for trial := 0; trial < 5; trial++ {
			pt := rng.Float64()*2 - 1
			if math.Abs(LagrangeEval(x, u, pt)-evalPoly(pt)) > 1e-8 {
				return false
			}
		}
		// Node hit path.
		return LagrangeEval(x, u, x[1]) == u[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGLLWeightsSumToTwo(t *testing.T) {
	for n := 1; n <= 24; n++ {
		_, w := GaussLobatto(n)
		var s float64
		for _, v := range w {
			s += v
		}
		if math.Abs(s-2) > 1e-12 {
			t.Errorf("N=%d: weights sum %g", n, s)
		}
	}
}

func TestBaryWeightsSymmetry(t *testing.T) {
	x, _ := GaussLobatto(9)
	w := BaryWeights(x)
	n := len(x)
	for i := 0; i < n; i++ {
		if math.Abs(math.Abs(w[i])-math.Abs(w[n-1-i])) > 1e-12 {
			t.Errorf("barycentric weights not symmetric at %d", i)
		}
	}
}
