package la

import (
	"math/rand"
	"testing"
	"time"
)

func randMatD(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// The strict kernel set and both default heuristics must be bitwise-identical
// to the naive loop: every output entry is one sequential accumulation over
// the contraction index, so no reassociation can creep in.
func TestStrictKernelsBitwiseIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][3]int{{1, 1, 1}, {2, 14, 2}, {14, 2, 14}, {10, 10, 10},
		{8, 10, 8}, {16, 16, 16}, {9, 7, 13}, {100, 10, 10}, {5, 5, 33}}
	for _, s := range shapes {
		n1, n2, n3 := s[0], s[1], s[2]
		a := randMatD(rng, n1*n2)
		b := randMatD(rng, n2*n3)
		want := make([]float64, n1*n3)
		MatMulNaive(want, a, b, n1, n2, n3)
		got := make([]float64, n1*n3)
		for _, k := range strictMulKernels {
			for i := range got {
				got[i] = -1
			}
			MatMul(k, got, a, b, n1, n2, n3)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("shape %v kernel %v: entry %d = %v, want bitwise %v",
						s, k, i, got[i], want[i])
				}
			}
		}
		for i := range got {
			got[i] = -1
		}
		mulDefault(got, a, b, n1, n2, n3)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shape %v mulDefault: entry %d differs", s, i)
			}
		}
	}
}

func TestABtKernelsBitwiseIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	shapes := [][3]int{{1, 1, 1}, {10, 10, 10}, {10, 10, 8}, {8, 8, 10},
		{100, 10, 10}, {7, 3, 9}, {64, 8, 6}, {5, 16, 5}, {3, 17, 3}}
	for _, s := range shapes {
		n1, n2, n3 := s[0], s[1], s[2]
		a := randMatD(rng, n1*n2)
		b := randMatD(rng, n3*n2)
		want := make([]float64, n1*n3)
		MulABtSimple(want, a, b, n1, n2, n3)
		got := make([]float64, n1*n3)
		for _, k := range ABtKernels {
			for i := range got {
				got[i] = -1
			}
			MatMulABt(k, got, a, b, n1, n2, n3)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("shape %v kernel %v: entry %d = %v, want bitwise %v",
						s, k, i, got[i], want[i])
				}
			}
		}
		for i := range got {
			got[i] = -1
		}
		abtDefault(got, a, b, n1, n2, n3)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shape %v abtDefault: entry %d differs", s, i)
			}
		}
	}
}

// f2/f3 reassociate (four partial sums), so they are only approximately
// equal — and excluded from Strict tables.
func TestAllKernelsApproxEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n1, n2, n3 := 16, 14, 16
	a := randMatD(rng, n1*n2)
	b := randMatD(rng, n2*n3)
	want := make([]float64, n1*n3)
	MatMulNaive(want, a, b, n1, n2, n3)
	got := make([]float64, n1*n3)
	for _, k := range Kernels {
		MatMul(k, got, a, b, n1, n2, n3)
		for i := range want {
			if d := got[i] - want[i]; d > 1e-10 || d < -1e-10 {
				t.Fatalf("kernel %v: entry %d = %v, want %v", k, i, got[i], want[i])
			}
		}
	}
}

func TestDispatchInstallRoutes(t *testing.T) {
	defer ResetDispatch()
	rng := rand.New(rand.NewSource(10))
	n1, n2, n3 := 10, 10, 10
	a := randMatD(rng, n1*n2)
	b := randMatD(rng, n2*n3)
	want := make([]float64, n1*n3)
	MatMulNaive(want, a, b, n1, n2, n3)
	for _, k := range strictMulKernels {
		dt := &DispatchTable{}
		dt.SetMul(n1, n2, n3, k)
		Install(dt)
		got := make([]float64, n1*n3)
		Mul(got, a, b, n1, n2, n3)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("installed %v: entry %d differs", k, i)
			}
		}
		if kk, ok := Installed().MulKernel(n1, n2, n3); !ok || kk != k {
			t.Fatalf("Installed().MulKernel = %v,%v want %v", kk, ok, k)
		}
	}
	ResetDispatch()
	if Installed() != nil {
		t.Fatal("ResetDispatch left a table installed")
	}
}

// A Strict-tuned installed table must not change Mul/MulABt results at all.
func TestStrictTunedTablePreservesResults(t *testing.T) {
	defer ResetDispatch()
	mulShapes, abtShapes := ShapesForOrder(9, 2)
	tn := &Tuner{Strict: true, MinTime: 200 * time.Microsecond}
	dt, res := tn.Tune(mulShapes, abtShapes)
	if len(res) != len(mulShapes)+len(abtShapes) {
		t.Fatalf("got %d results, want %d", len(res), len(mulShapes)+len(abtShapes))
	}
	for _, r := range res {
		if r.Best == "f2" || r.Best == "f3" {
			t.Fatalf("strict tuner picked reassociating kernel %q", r.Best)
		}
		if r.BestMFLOPS <= 0 {
			t.Fatalf("shape %v: nonpositive MFLOPS", r.Shape)
		}
	}
	rng := rand.New(rand.NewSource(11))
	for _, s := range mulShapes {
		n1, n2, n3 := s[0], s[1], s[2]
		a := randMatD(rng, n1*n2)
		b := randMatD(rng, n2*n3)
		before := make([]float64, n1*n3)
		ResetDispatch()
		Mul(before, a, b, n1, n2, n3)
		Install(dt)
		after := make([]float64, n1*n3)
		Mul(after, a, b, n1, n2, n3)
		for i := range before {
			if before[i] != after[i] {
				t.Fatalf("mul shape %v: tuned dispatch changed entry %d", s, i)
			}
		}
	}
	for _, s := range abtShapes {
		n1, n2, n3 := s[0], s[1], s[2]
		a := randMatD(rng, n1*n2)
		b := randMatD(rng, n3*n2)
		before := make([]float64, n1*n3)
		ResetDispatch()
		MulABt(before, a, b, n1, n2, n3)
		Install(dt)
		after := make([]float64, n1*n3)
		MulABt(after, a, b, n1, n2, n3)
		for i := range before {
			if before[i] != after[i] {
				t.Fatalf("abt shape %v: tuned dispatch changed entry %d", s, i)
			}
		}
	}
}

func TestShapesForOrder(t *testing.T) {
	mul2, abt2 := ShapesForOrder(9, 2)
	if len(mul2) == 0 || len(abt2) == 0 {
		t.Fatal("no shapes for order 9, dim 2")
	}
	// The square GLL application must be present in both conventions.
	wantMul := [3]int{10, 10, 10}
	found := false
	for _, s := range mul2 {
		if s == wantMul {
			found = true
		}
	}
	if !found {
		t.Fatalf("mul shapes %v missing %v", mul2, wantMul)
	}
	mul3, abt3 := ShapesForOrder(9, 3)
	// 3D adds the t-direction long-slab shape (np1, np1, np1^2).
	wantSlab := [3]int{10, 10, 100}
	found = false
	for _, s := range mul3 {
		if s == wantSlab {
			found = true
		}
	}
	if !found {
		t.Fatalf("3D mul shapes %v missing %v", mul3, wantSlab)
	}
	if len(abt3) == 0 {
		t.Fatal("no 3D abt shapes")
	}
	// No duplicates.
	seen := map[[3]int]bool{}
	for _, s := range mul3 {
		if seen[s] {
			t.Fatalf("duplicate shape %v", s)
		}
		seen[s] = true
	}
}

func TestShapeIndexBounds(t *testing.T) {
	if _, ok := shapeIndex(0, 1, 1); ok {
		t.Fatal("zero dimension indexed")
	}
	if _, ok := shapeIndex(32, 1, 1); ok {
		t.Fatal("out-of-range dimension indexed")
	}
	if i, ok := shapeIndex(31, 31, 31); !ok || i != 31*32*32+31*32+31 {
		t.Fatalf("bad index %d, %v", i, ok)
	}
	// Out-of-table shapes must still compute via the heuristic.
	n1, n2, n3 := 40, 40, 40
	rng := rand.New(rand.NewSource(12))
	a := randMatD(rng, n1*n2)
	b := randMatD(rng, n2*n3)
	want := make([]float64, n1*n3)
	MatMulNaive(want, a, b, n1, n2, n3)
	got := make([]float64, n1*n3)
	Mul(got, a, b, n1, n2, n3)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("large-shape Mul: entry %d differs", i)
		}
	}
}

func TestUnrolledDots(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for n := 2; n <= 16; n++ {
		a := randMatD(rng, n)
		b := randMatD(rng, n)
		dot := dotFuncs(n)
		if dot == nil {
			t.Fatalf("no unrolled dot for n=%d", n)
		}
		var want float64
		for i := range a {
			want += a[i] * b[i]
		}
		if got := dot(a, b); got != want {
			t.Fatalf("dot%d = %v, want bitwise %v", n, got, want)
		}
	}
	if dotFuncs(17) != nil || dotFuncs(1) != nil {
		t.Fatal("unexpected unrolled dot outside 2..16")
	}
}
