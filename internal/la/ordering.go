package la

// Fill-reducing orderings. Nested dissection is what gives the XXT factor
// X = L⁻ᵀ its quasi-sparse structure and the 3 n^{(d-1)/d} log₂P
// communication bound of the paper's coarse-grid solver.

// NDPermGrid returns a nested-dissection permutation for an nx x ny grid
// graph with 5-point connectivity and natural ordering old = iy*nx + ix.
// perm[new] = old.
func NDPermGrid(nx, ny int) []int {
	perm := make([]int, 0, nx*ny)
	var dissect func(x0, x1, y0, y1 int)
	dissect = func(x0, x1, y0, y1 int) {
		w, h := x1-x0, y1-y0
		if w <= 0 || h <= 0 {
			return
		}
		if w*h <= 4 || (w <= 2 && h <= 2) {
			for iy := y0; iy < y1; iy++ {
				for ix := x0; ix < x1; ix++ {
					perm = append(perm, iy*nx+ix)
				}
			}
			return
		}
		if w >= h {
			mid := x0 + w/2
			dissect(x0, mid, y0, y1)
			dissect(mid+1, x1, y0, y1)
			for iy := y0; iy < y1; iy++ {
				perm = append(perm, iy*nx+mid)
			}
		} else {
			mid := y0 + h/2
			dissect(x0, x1, y0, mid)
			dissect(x0, x1, mid+1, y1)
			for ix := x0; ix < x1; ix++ {
				perm = append(perm, mid*nx+ix)
			}
		}
	}
	dissect(0, nx, 0, ny)
	return perm
}

// NDPermGraph returns a nested-dissection permutation for a general
// undirected graph given by adjacency lists. Separators are found by
// level-set bisection from a pseudo-peripheral vertex (the same style of
// heuristic as recursive spectral bisection, but cheaper, which is adequate
// for coarse-grid-sized problems). perm[new] = old.
func NDPermGraph(adj [][]int) []int {
	n := len(adj)
	perm := make([]int, 0, n)
	level := make([]int, n)
	inSet := make([]bool, n)
	queue := make([]int, 0, n)

	// bfs computes levels within the vertex set `set` starting from root and
	// returns the visited order.
	bfs := func(set []int, root int) []int {
		for _, v := range set {
			level[v] = -1
		}
		order := queue[:0]
		level[root] = 0
		order = append(order, root)
		for head := 0; head < len(order); head++ {
			u := order[head]
			for _, v := range adj[u] {
				if inSet[v] && level[v] == -1 {
					level[v] = level[u] + 1
					order = append(order, v)
				}
			}
		}
		return order
	}

	var dissect func(set []int)
	dissect = func(set []int) {
		if len(set) == 0 {
			return
		}
		if len(set) <= 8 {
			perm = append(perm, set...)
			return
		}
		for _, v := range set {
			inSet[v] = true
		}
		// Pseudo-peripheral vertex: two BFS passes.
		order := bfs(set, set[0])
		if len(order) < len(set) {
			// Disconnected: split off the first component.
			comp := append([]int(nil), order...)
			rest := make([]int, 0, len(set)-len(comp))
			seen := make(map[int]bool, len(comp))
			for _, v := range comp {
				seen[v] = true
			}
			for _, v := range set {
				if !seen[v] {
					rest = append(rest, v)
				}
				inSet[v] = false
			}
			dissect(comp)
			dissect(rest)
			return
		}
		far := order[len(order)-1]
		order = bfs(set, far)
		maxLevel := level[order[len(order)-1]]
		if maxLevel < 2 {
			for _, v := range set {
				inSet[v] = false
			}
			perm = append(perm, set...)
			return
		}
		mid := maxLevel / 2
		var left, right, sep []int
		for _, v := range order {
			switch {
			case level[v] < mid:
				left = append(left, v)
			case level[v] > mid:
				right = append(right, v)
			default:
				sep = append(sep, v)
			}
		}
		for _, v := range set {
			inSet[v] = false
		}
		dissect(left)
		dissect(right)
		perm = append(perm, sep...)
	}

	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	dissect(all)
	return perm
}

// InvPerm returns the inverse permutation: if perm[new] = old then
// InvPerm(perm)[old] = new.
func InvPerm(perm []int) []int {
	inv := make([]int, len(perm))
	for newI, oldI := range perm {
		inv[oldI] = newI
	}
	return inv
}
