package la

import "sort"

// COO is a coordinate-format sparse matrix builder. Duplicate entries are
// summed when converted to CSR, which matches the additive assembly of
// finite/spectral element stiffness matrices.
type COO struct {
	Rows, Cols int
	I, J       []int
	V          []float64
}

// NewCOO returns an empty builder for an r x c sparse matrix.
func NewCOO(r, c int) *COO {
	return &COO{Rows: r, Cols: c}
}

// Add appends entry (i, j, v).
func (m *COO) Add(i, j int, v float64) {
	m.I = append(m.I, i)
	m.J = append(m.J, j)
	m.V = append(m.V, v)
}

// ToCSR converts to compressed sparse row format, summing duplicates and
// dropping explicit zeros produced by cancellation only if drop is true.
func (m *COO) ToCSR() *CSR {
	n := m.Rows
	count := make([]int, n+1)
	for _, i := range m.I {
		count[i+1]++
	}
	for i := 0; i < n; i++ {
		count[i+1] += count[i]
	}
	ptr := make([]int, n+1)
	copy(ptr, count)
	colIdx := make([]int, len(m.I))
	vals := make([]float64, len(m.I))
	next := make([]int, n)
	for i := 0; i < n; i++ {
		next[i] = ptr[i]
	}
	for k, i := range m.I {
		p := next[i]
		colIdx[p] = m.J[k]
		vals[p] = m.V[k]
		next[i]++
	}
	// Sort each row by column and merge duplicates.
	outPtr := make([]int, n+1)
	outCol := colIdx[:0:0]
	outVal := vals[:0:0]
	type cv struct {
		c int
		v float64
	}
	var row []cv
	for i := 0; i < n; i++ {
		row = row[:0]
		for p := ptr[i]; p < ptr[i+1]; p++ {
			row = append(row, cv{colIdx[p], vals[p]})
		}
		sort.Slice(row, func(a, b int) bool { return row[a].c < row[b].c })
		for k := 0; k < len(row); {
			c := row[k].c
			v := row[k].v
			k++
			for k < len(row) && row[k].c == c {
				v += row[k].v
				k++
			}
			outCol = append(outCol, c)
			outVal = append(outVal, v)
		}
		outPtr[i+1] = len(outCol)
	}
	return &CSR{Rows: n, Cols: m.Cols, Ptr: outPtr, Col: outCol, Val: outVal}
}

// CSR is a compressed sparse row matrix.
type CSR struct {
	Rows, Cols int
	Ptr        []int
	Col        []int
	Val        []float64
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// MulVec computes y = A*x.
func (m *CSR) MulVec(y, x []float64) {
	for i := 0; i < m.Rows; i++ {
		var s float64
		for p := m.Ptr[i]; p < m.Ptr[i+1]; p++ {
			s += m.Val[p] * x[m.Col[p]]
		}
		y[i] = s
	}
}

// At returns element (i, j), zero if not stored.
func (m *CSR) At(i, j int) float64 {
	for p := m.Ptr[i]; p < m.Ptr[i+1]; p++ {
		if m.Col[p] == j {
			return m.Val[p]
		}
	}
	return 0
}

// Diag returns a copy of the diagonal.
func (m *CSR) Diag() []float64 {
	d := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		d[i] = m.At(i, i)
	}
	return d
}

// Permute returns P A Pᵀ for the permutation perm, where perm[newIdx] =
// oldIdx; i.e. row/column newIdx of the result is row/column perm[newIdx]
// of A.
func (m *CSR) Permute(perm []int) *CSR {
	n := m.Rows
	inv := make([]int, n)
	for newI, oldI := range perm {
		inv[oldI] = newI
	}
	b := NewCOO(n, n)
	for i := 0; i < n; i++ {
		for p := m.Ptr[i]; p < m.Ptr[i+1]; p++ {
			b.Add(inv[i], inv[m.Col[p]], m.Val[p])
		}
	}
	return b.ToCSR()
}

// Dense expands the matrix to a dense row-major slice (for tests and small
// coarse-grid problems).
func (m *CSR) Dense() []float64 {
	d := make([]float64, m.Rows*m.Cols)
	for i := 0; i < m.Rows; i++ {
		for p := m.Ptr[i]; p < m.Ptr[i+1]; p++ {
			d[i*m.Cols+m.Col[p]] = m.Val[p]
		}
	}
	return d
}
