package la

import (
	"fmt"
	"math"
	"sort"
)

// SymEig computes all eigenvalues and eigenvectors of the symmetric n x n
// matrix a (row-major) using the cyclic Jacobi rotation method. It returns
// eigenvalues in ascending order and the matrix of eigenvectors stored
// column-wise (v[i*n+j] is component i of eigenvector j), so that
// A V = V diag(w).
func SymEig(a []float64, n int) (w []float64, v []float64, err error) {
	d := make([]float64, n*n)
	copy(d, a)
	v = make([]float64, n*n)
	for i := 0; i < n; i++ {
		v[i*n+i] = 1
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += d[i*n+j] * d[i*n+j]
			}
		}
		if off < 1e-300 {
			break
		}
		frob := 0.0
		for i := 0; i < n*n; i++ {
			frob += d[i] * d[i]
		}
		if off <= 1e-30*frob {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := d[p*n+q]
				if apq == 0 {
					continue
				}
				app, aqq := d[p*n+p], d[q*n+q]
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Apply rotation to rows/cols p and q of d.
				for k := 0; k < n; k++ {
					dkp, dkq := d[k*n+p], d[k*n+q]
					d[k*n+p] = c*dkp - s*dkq
					d[k*n+q] = s*dkp + c*dkq
				}
				for k := 0; k < n; k++ {
					dpk, dqk := d[p*n+k], d[q*n+k]
					d[p*n+k] = c*dpk - s*dqk
					d[q*n+k] = s*dpk + c*dqk
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v[k*n+p], v[k*n+q]
					v[k*n+p] = c*vkp - s*vkq
					v[k*n+q] = s*vkp + c*vkq
				}
			}
		}
		if sweep == maxSweeps-1 {
			return nil, nil, fmt.Errorf("la: Jacobi eigensolver did not converge in %d sweeps", maxSweeps)
		}
	}
	w = make([]float64, n)
	for i := 0; i < n; i++ {
		w[i] = d[i*n+i]
	}
	// Sort eigenpairs ascending by eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return w[idx[i]] < w[idx[j]] })
	ws := make([]float64, n)
	vs := make([]float64, n*n)
	for j, src := range idx {
		ws[j] = w[src]
		for i := 0; i < n; i++ {
			vs[i*n+j] = v[i*n+src]
		}
	}
	return ws, vs, nil
}

// GenSymEig solves the generalized symmetric-definite eigenproblem
// A z = λ B z, with A symmetric and B symmetric positive definite, by the
// standard reduction C = L⁻¹ A L⁻ᵀ where B = L Lᵀ. It returns eigenvalues in
// ascending order and B-orthonormal eigenvectors stored column-wise
// (Zᵀ B Z = I). This is the kernel of the fast diagonalization method
// (Sec. 5 of the paper, after Lynch, Rice & Thomas 1964).
func GenSymEig(a, b []float64, n int) (w []float64, z []float64, err error) {
	chol, err := FactorCholesky(b, n)
	if err != nil {
		return nil, nil, fmt.Errorf("la: GenSymEig mass matrix: %w", err)
	}
	// C = L⁻¹ A L⁻ᵀ: first Y = L⁻¹ A (solve L Y = A column-wise on rows),
	// then C = Y L⁻ᵀ, i.e. Cᵀ = L⁻¹ Yᵀ.
	c := make([]float64, n*n)
	col := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			col[i] = a[i*n+j]
		}
		chol.SolveLower(col, col)
		for i := 0; i < n; i++ {
			c[i*n+j] = col[i]
		}
	}
	for i := 0; i < n; i++ {
		row := c[i*n : i*n+n]
		chol.SolveLower(row, row) // row i of C = L⁻¹ (Y row i)ᵀ... (Y Lᵀ⁻¹ row)
	}
	w, y, err := SymEig(c, n)
	if err != nil {
		return nil, nil, err
	}
	// Back-transform: z_j = L⁻ᵀ y_j.
	z = make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			col[i] = y[i*n+j]
		}
		chol.SolveUpper(col, col)
		for i := 0; i < n; i++ {
			z[i*n+j] = col[i]
		}
	}
	return w, z, nil
}
