package la

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// NewDense allocates a zeroed r x c matrix.
func NewDense(r, c int) *Dense {
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// At returns element (i,j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i,j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates into element (i,j).
func (m *Dense) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns a view of row i.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*m.Rows+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// LU holds a dense LU factorization with partial pivoting (PA = LU).
type LU struct {
	n    int
	lu   []float64
	piv  []int
	sign int
}

// FactorLU computes the LU factorization of a (n x n, row-major), which is
// copied; a is not modified. It returns an error if the matrix is singular
// to working precision.
func FactorLU(a []float64, n int) (*LU, error) {
	f := &LU{n: n, lu: make([]float64, n*n), piv: make([]int, n), sign: 1}
	copy(f.lu, a)
	lu := f.lu
	for k := 0; k < n; k++ {
		// Pivot search.
		p, pmax := k, math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu[i*n+k]); v > pmax {
				p, pmax = i, v
			}
		}
		if pmax == 0 {
			return nil, fmt.Errorf("la: singular matrix at column %d", k)
		}
		f.piv[k] = p
		if p != k {
			rk, rp := lu[k*n:k*n+n], lu[p*n:p*n+n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			f.sign = -f.sign
		}
		pivv := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			m := lu[i*n+k] / pivv
			lu[i*n+k] = m
			if m == 0 {
				continue
			}
			ri, rk := lu[i*n:i*n+n], lu[k*n:k*n+n]
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return f, nil
}

// Solve overwrites x (length n) with A⁻¹ b, reading the right-hand side from
// b. b and x may alias.
func (f *LU) Solve(x, b []float64) {
	n := f.n
	if &x[0] != &b[0] {
		copy(x, b)
	}
	// Apply all row interchanges first (the factorization swaps full rows,
	// so the stored L is in final row order), then substitute.
	for k := 0; k < n; k++ {
		if p := f.piv[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	for k := 0; k < n; k++ {
		xk := x[k]
		if xk == 0 {
			continue
		}
		for i := k + 1; i < n; i++ {
			x[i] -= f.lu[i*n+k] * xk
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		ri := f.lu[i*n : i*n+n]
		for j := i + 1; j < n; j++ {
			s -= ri[j] * x[j]
		}
		x[i] = s / ri[i]
	}
}

// Det returns the determinant from the factorization.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// Inverse returns A⁻¹ as a new row-major n x n matrix.
func (f *LU) Inverse() []float64 {
	n := f.n
	inv := make([]float64, n*n)
	col := make([]float64, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		f.Solve(col, e)
		for i := 0; i < n; i++ {
			inv[i*n+j] = col[i]
		}
	}
	return inv
}

// Cholesky holds the lower-triangular factor of an SPD matrix, A = L Lᵀ.
type Cholesky struct {
	n int
	l []float64 // row-major lower triangle (full storage)
}

// FactorCholesky computes the Cholesky factorization of the SPD matrix a.
func FactorCholesky(a []float64, n int) (*Cholesky, error) {
	c := &Cholesky{n: n, l: make([]float64, n*n)}
	l := c.l
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a[i*n+j]
			for k := 0; k < j; k++ {
				s -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if s <= 0 {
					return nil, fmt.Errorf("la: matrix not positive definite at pivot %d (value %g)", i, s)
				}
				l[i*n+i] = math.Sqrt(s)
			} else {
				l[i*n+j] = s / l[j*n+j]
			}
		}
	}
	return c, nil
}

// Solve overwrites x with A⁻¹ b. b and x may alias.
func (c *Cholesky) Solve(x, b []float64) {
	n := c.n
	if &x[0] != &b[0] {
		copy(x, b)
	}
	// Forward: L y = b.
	for i := 0; i < n; i++ {
		s := x[i]
		ri := c.l[i*n : i*n+n]
		for j := 0; j < i; j++ {
			s -= ri[j] * x[j]
		}
		x[i] = s / ri[i]
	}
	// Backward: Lᵀ x = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= c.l[j*n+i] * x[j]
		}
		x[i] = s / c.l[i*n+i]
	}
}

// L returns the lower-triangular factor (row-major full storage).
func (c *Cholesky) L() []float64 { return c.l }

// SolveLower solves L y = b in place (forward substitution).
func (c *Cholesky) SolveLower(x, b []float64) {
	n := c.n
	if &x[0] != &b[0] {
		copy(x, b)
	}
	for i := 0; i < n; i++ {
		s := x[i]
		ri := c.l[i*n : i*n+n]
		for j := 0; j < i; j++ {
			s -= ri[j] * x[j]
		}
		x[i] = s / ri[i]
	}
}

// SolveUpper solves Lᵀ x = b in place (backward substitution).
func (c *Cholesky) SolveUpper(x, b []float64) {
	n := c.n
	if &x[0] != &b[0] {
		copy(x, b)
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= c.l[j*n+i] * x[j]
		}
		x[i] = s / c.l[i*n+i]
	}
}

// BandedCholesky is the Cholesky factorization of an SPD band matrix with
// half-bandwidth bw, stored by diagonals: band[d][i] holds A[i+d, i] for
// d = 0..bw. It backs the "redundant banded LU" coarse-solver baseline of
// Fig. 6.
type BandedCholesky struct {
	n, bw int
	l     [][]float64 // l[d][i] = L[i+d, i]
}

// FactorBanded factorizes the SPD band matrix given by diag(d)[i] = A[i+d,i].
func FactorBanded(band [][]float64, n, bw int) (*BandedCholesky, error) {
	f := &BandedCholesky{n: n, bw: bw, l: make([][]float64, bw+1)}
	for d := 0; d <= bw; d++ {
		f.l[d] = make([]float64, n)
		copy(f.l[d], band[d])
	}
	for j := 0; j < n; j++ {
		s := f.l[0][j]
		if s <= 0 {
			return nil, fmt.Errorf("la: band matrix not positive definite at pivot %d", j)
		}
		d0 := math.Sqrt(s)
		f.l[0][j] = d0
		for d := 1; d <= bw && j+d < n; d++ {
			f.l[d][j] /= d0
		}
		for k := 1; k <= bw && j+k < n; k++ {
			ljk := f.l[k][j]
			if ljk == 0 {
				continue
			}
			for d := k; d <= bw && j+d < n; d++ {
				// A[j+d, j+k] -= L[j+d,j]*L[j+k,j]
				f.l[d-k][j+k] -= f.l[d][j] * ljk
			}
		}
	}
	return f, nil
}

// Solve overwrites x with A⁻¹ b.
func (f *BandedCholesky) Solve(x, b []float64) {
	n, bw := f.n, f.bw
	if &x[0] != &b[0] {
		copy(x, b)
	}
	for i := 0; i < n; i++ {
		s := x[i]
		lo := i - bw
		if lo < 0 {
			lo = 0
		}
		for j := lo; j < i; j++ {
			s -= f.l[i-j][j] * x[j]
		}
		x[i] = s / f.l[0][i]
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		hi := i + bw
		if hi >= n {
			hi = n - 1
		}
		for j := i + 1; j <= hi; j++ {
			s -= f.l[j-i][i] * x[j]
		}
		x[i] = s / f.l[0][i]
	}
}

// SolveFlops returns the floating-point operation count of one banded solve,
// used by the coarse-solver performance model.
func (f *BandedCholesky) SolveFlops() int64 {
	// Forward + backward substitution: ~2 * (2*bw+1) * n flops.
	return int64(2*(2*f.bw+1)) * int64(f.n)
}
