package la

// tunecache.go persists a tuned DispatchTable across runs. Tuning is a
// micro-benchmark of this machine's cache hierarchy and this compiler's
// code generation, so a cached table is only trustworthy on the exact
// CPU model and Go toolchain that produced it: LoadCache rejects any
// other combination with ErrCacheMismatch and the caller re-tunes.
// Kernels are stored by name, not enum value, so the file survives
// kernel-set reordering and garbage files fail loudly.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// ErrCacheMismatch reports a tune cache produced on different hardware or
// a different toolchain; the table must be re-tuned, not trusted.
var ErrCacheMismatch = errors.New("la: tune cache key mismatch")

// CacheKey identifies the machine/toolchain combination a tuned dispatch
// table is valid for: the CPU model string plus the Go version.
func CacheKey() string { return cpuModel() + " | " + runtime.Version() }

// cpuModel reads the first "model name" line of /proc/cpuinfo; on systems
// without one (non-Linux, some arm64 kernels) it falls back to GOOS/GOARCH,
// which still fences the cache from crossing OS or architecture lines.
func cpuModel() string {
	if b, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(b), "\n") {
			if k, v, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(k) == "model name" {
				return strings.TrimSpace(v)
			}
		}
	}
	return runtime.GOOS + "/" + runtime.GOARCH
}

type cacheFile struct {
	Key string       `json:"key"`
	Mul []cacheEntry `json:"mul"`
	ABt []cacheEntry `json:"abt"`
}

type cacheEntry struct {
	Shape  [3]int `json:"shape"`
	Kernel string `json:"kernel"`
}

// SaveCache writes dt's pinned shapes to path as JSON under this machine's
// CacheKey. Only non-default entries are stored, so the file stays a few
// dozen lines regardless of the table's in-memory size.
//
// The write is atomic (unique temp file in the target directory, fsync,
// rename): concurrent semflowd sessions may autotune and save at once, and
// a direct os.WriteFile could interleave or be cut short, tearing the JSON
// — which LoadCache would then reject, silently forcing a re-tune on every
// later run. With rename, readers see either the old table or the new one,
// never a mix.
func SaveCache(path string, dt *DispatchTable) error {
	f := cacheFile{Key: CacheKey()}
	for i, v := range dt.mul {
		if v != 0 {
			f.Mul = append(f.Mul, cacheEntry{cacheShape(i), MatMulKernel(v - 1).String()})
		}
	}
	for i, v := range dt.abt {
		if v != 0 {
			f.ABt = append(f.ABt, cacheEntry{cacheShape(i), ABtKernel(v - 1).String()})
		}
	}
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := WriteFileAtomic(path, b); err != nil {
		return fmt.Errorf("la: tune cache: %w", err)
	}
	return nil
}

// WriteFileAtomic writes b to path through a unique temp file in the target
// directory, fsync, chmod 0644, rename. Concurrent writers (semflowd
// sessions autotuning at once) never tear the file: readers see either the
// old contents or the new, never a mix. Shared by the matmul tune cache and
// the solver's preconditioner-selection cache.
func WriteFileAtomic(path string, b []byte) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tf, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	tmp := tf.Name()
	fail := func(err error) error {
		tf.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := tf.Write(b); err != nil {
		return fail(err)
	}
	if err := tf.Sync(); err != nil {
		return fail(err)
	}
	if err := tf.Chmod(0o644); err != nil {
		return fail(err)
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

func cacheShape(i int) [3]int {
	return [3]int{i / (dispatchDim * dispatchDim), (i / dispatchDim) % dispatchDim, i % dispatchDim}
}

// LoadCache reads a table saved by SaveCache. It returns an error wrapping
// ErrCacheMismatch when the file was tuned on a different CPU model or Go
// version, and a plain error for unreadable or malformed files; in every
// error case no table is returned and the caller should re-tune.
func LoadCache(path string) (*DispatchTable, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f cacheFile
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("la: tune cache %s: %w", path, err)
	}
	if key := CacheKey(); f.Key != key {
		return nil, fmt.Errorf("%w: file tuned on %q, this machine is %q", ErrCacheMismatch, f.Key, key)
	}
	dt := &DispatchTable{}
	for _, e := range f.Mul {
		k, err := parseMulKernel(e.Kernel)
		if err != nil {
			return nil, fmt.Errorf("la: tune cache %s: %w", path, err)
		}
		dt.SetMul(e.Shape[0], e.Shape[1], e.Shape[2], k)
	}
	for _, e := range f.ABt {
		k, err := parseABtKernel(e.Kernel)
		if err != nil {
			return nil, fmt.Errorf("la: tune cache %s: %w", path, err)
		}
		dt.SetABt(e.Shape[0], e.Shape[1], e.Shape[2], k)
	}
	return dt, nil
}

func parseMulKernel(name string) (MatMulKernel, error) {
	for i, n := range kernelNames {
		if n == name {
			return MatMulKernel(i), nil
		}
	}
	return 0, fmt.Errorf("unknown mul kernel %q", name)
}

func parseABtKernel(name string) (ABtKernel, error) {
	for i, n := range abtNames {
		if n == name {
			return ABtKernel(i), nil
		}
	}
	return 0, fmt.Errorf("unknown abt kernel %q", name)
}
