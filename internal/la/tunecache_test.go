package la

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTuneCacheRoundTrip(t *testing.T) {
	dt := &DispatchTable{}
	dt.SetMul(10, 10, 10, KernelBlocked)
	dt.SetMul(8, 10, 8, KernelIKJ)
	dt.SetABt(10, 10, 10, ABtBlocked)
	dt.SetABt(20, 10, 10, ABtUnrolled)
	path := filepath.Join(t.TempDir(), "tune.json")
	if err := SaveCache(path, dt); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *dt {
		t.Error("loaded table differs from saved table")
	}
	if k, ok := got.MulKernel(10, 10, 10); !ok || k != KernelBlocked {
		t.Errorf("mul(10,10,10) = %v, %v; want blocked", k, ok)
	}
	if k, ok := got.ABtKernel(20, 10, 10); !ok || k != ABtUnrolled {
		t.Errorf("abt(20,10,10) = %v, %v; want abt-unroll", k, ok)
	}
}

func TestTuneCacheRejectsForeignKey(t *testing.T) {
	dt := &DispatchTable{}
	dt.SetMul(10, 10, 10, KernelBlocked)
	path := filepath.Join(t.TempDir(), "tune.json")
	if err := SaveCache(path, dt); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A table tuned on any other machine or toolchain must be rejected.
	forged := strings.Replace(string(b), CacheKey(), "other cpu | go0.0", 1)
	if forged == string(b) {
		t.Fatal("cache key not found in file")
	}
	if err := os.WriteFile(path, []byte(forged), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCache(path); !errors.Is(err, ErrCacheMismatch) {
		t.Errorf("LoadCache on foreign key: err = %v, want ErrCacheMismatch", err)
	}
}

func TestTuneCacheRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	missing := filepath.Join(dir, "nope.json")
	if _, err := LoadCache(missing); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("LoadCache on missing file: err = %v, want ErrNotExist", err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCache(bad); err == nil || errors.Is(err, ErrCacheMismatch) {
		t.Errorf("LoadCache on malformed file: err = %v, want a parse error", err)
	}
	// Right key, unknown kernel name: stale files from a future kernel set
	// must fail rather than silently map to a wrong kernel.
	unk := filepath.Join(dir, "unk.json")
	body := `{"key":` + string(mustJSON(CacheKey())) + `,"mul":[{"shape":[4,4,4],"kernel":"warp9"}]}`
	if err := os.WriteFile(unk, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCache(unk); err == nil || !strings.Contains(err.Error(), "warp9") {
		t.Errorf("LoadCache with unknown kernel: err = %v, want unknown-kernel error", err)
	}
}

func mustJSON(s string) []byte {
	b, err := json.Marshal(s)
	if err != nil {
		panic(err)
	}
	return b
}

// TestSaveCacheAtomicUnderConcurrency is the torn-write regression test:
// with the old non-atomic SaveCache (a plain WriteFile over the live
// path), concurrent semflowd sessions saving the autotune cache while
// others load it could observe interleaved or truncated JSON, which
// LoadCache rejects — silently forcing a re-tune on every later run. With
// the temp-file + rename write, every load must observe a complete,
// parseable table.
func TestSaveCacheAtomicUnderConcurrency(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tune.json")

	// Two distinguishable tables; any loaded file must be exactly one of
	// them, never a mixture or a parse failure.
	dtA := &DispatchTable{}
	dtA.SetMul(4, 4, 4, KernelNaive)
	dtB := &DispatchTable{}
	dtB.SetMul(4, 4, 4, KernelNaive)
	dtB.SetMul(6, 6, 6, KernelNaive)

	if err := SaveCache(path, dtA); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	errs := make(chan error, 4)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dt := dtA
			if w == 1 {
				dt = dtB
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := SaveCache(path, dt); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	deadline := time.Now().Add(500 * time.Millisecond)
	loads := 0
	for time.Now().Before(deadline) {
		dt, err := LoadCache(path)
		if err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("load %d observed a torn cache: %v", loads, err)
		}
		nMul := 0
		for _, v := range dt.mul {
			if v != 0 {
				nMul++
			}
		}
		if nMul != 1 && nMul != 2 {
			close(stop)
			wg.Wait()
			t.Fatalf("load %d observed a mixed table with %d mul entries", loads, nMul)
		}
		loads++
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if loads == 0 {
		t.Fatal("reader never ran")
	}
	// The writers must not leave temp litter behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "tune.json" {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}
