package la

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTuneCacheRoundTrip(t *testing.T) {
	dt := &DispatchTable{}
	dt.SetMul(10, 10, 10, KernelBlocked)
	dt.SetMul(8, 10, 8, KernelIKJ)
	dt.SetABt(10, 10, 10, ABtBlocked)
	dt.SetABt(20, 10, 10, ABtUnrolled)
	path := filepath.Join(t.TempDir(), "tune.json")
	if err := SaveCache(path, dt); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *dt {
		t.Error("loaded table differs from saved table")
	}
	if k, ok := got.MulKernel(10, 10, 10); !ok || k != KernelBlocked {
		t.Errorf("mul(10,10,10) = %v, %v; want blocked", k, ok)
	}
	if k, ok := got.ABtKernel(20, 10, 10); !ok || k != ABtUnrolled {
		t.Errorf("abt(20,10,10) = %v, %v; want abt-unroll", k, ok)
	}
}

func TestTuneCacheRejectsForeignKey(t *testing.T) {
	dt := &DispatchTable{}
	dt.SetMul(10, 10, 10, KernelBlocked)
	path := filepath.Join(t.TempDir(), "tune.json")
	if err := SaveCache(path, dt); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A table tuned on any other machine or toolchain must be rejected.
	forged := strings.Replace(string(b), CacheKey(), "other cpu | go0.0", 1)
	if forged == string(b) {
		t.Fatal("cache key not found in file")
	}
	if err := os.WriteFile(path, []byte(forged), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCache(path); !errors.Is(err, ErrCacheMismatch) {
		t.Errorf("LoadCache on foreign key: err = %v, want ErrCacheMismatch", err)
	}
}

func TestTuneCacheRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	missing := filepath.Join(dir, "nope.json")
	if _, err := LoadCache(missing); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("LoadCache on missing file: err = %v, want ErrNotExist", err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCache(bad); err == nil || errors.Is(err, ErrCacheMismatch) {
		t.Errorf("LoadCache on malformed file: err = %v, want a parse error", err)
	}
	// Right key, unknown kernel name: stale files from a future kernel set
	// must fail rather than silently map to a wrong kernel.
	unk := filepath.Join(dir, "unk.json")
	body := `{"key":` + string(mustJSON(CacheKey())) + `,"mul":[{"shape":[4,4,4],"kernel":"warp9"}]}`
	if err := os.WriteFile(unk, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCache(unk); err == nil || !strings.Contains(err.Error(), "warp9") {
		t.Errorf("LoadCache with unknown kernel: err = %v, want unknown-kernel error", err)
	}
}

func mustJSON(s string) []byte {
	b, err := json.Marshal(s)
	if err != nil {
		panic(err)
	}
	return b
}
