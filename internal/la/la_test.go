package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMat(rng *rand.Rand, n int) []float64 {
	m := make([]float64, n)
	for i := range m {
		m[i] = rng.NormFloat64()
	}
	return m
}

func maxAbsDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

func TestMatMulKernelsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := [][3]int{{1, 1, 1}, {2, 14, 2}, {14, 2, 14}, {16, 14, 16}, {5, 7, 3},
		{16, 16, 256}, {196, 16, 14}, {9, 9, 9}, {1, 8, 13}, {17, 1, 17}}
	for _, s := range shapes {
		n1, n2, n3 := s[0], s[1], s[2]
		a := randMat(rng, n1*n2)
		b := randMat(rng, n2*n3)
		ref := make([]float64, n1*n3)
		MatMulNaive(ref, a, b, n1, n2, n3)
		for _, k := range Kernels {
			c := make([]float64, n1*n3)
			MatMul(k, c, a, b, n1, n2, n3)
			if d := maxAbsDiff(ref, c); d > 1e-12*float64(n2) {
				t.Errorf("kernel %v shape %v: max diff %g", k, s, d)
			}
		}
	}
}

func TestMatMulQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n1, n2, n3 := 1+r.Intn(20), 1+r.Intn(20), 1+r.Intn(20)
		a := randMat(rng, n1*n2)
		b := randMat(rng, n2*n3)
		ref := make([]float64, n1*n3)
		MatMulNaive(ref, a, b, n1, n2, n3)
		for _, k := range Kernels[1:] {
			c := make([]float64, n1*n3)
			MatMul(k, c, a, b, n1, n2, n3)
			if maxAbsDiff(ref, c) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMulTransposeForms(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n1, n2, n3 := 6, 5, 7
	a := randMat(rng, n1*n2)
	bt := randMat(rng, n3*n2) // B is n3 x n2; we want A*Bᵀ.
	// Reference: expand Bᵀ.
	b := make([]float64, n2*n3)
	for i := 0; i < n3; i++ {
		for j := 0; j < n2; j++ {
			b[j*n3+i] = bt[i*n2+j]
		}
	}
	ref := make([]float64, n1*n3)
	MatMulNaive(ref, a, b, n1, n2, n3)
	c := make([]float64, n1*n3)
	MulABt(c, a, bt, n1, n2, n3)
	if d := maxAbsDiff(ref, c); d > 1e-12 {
		t.Errorf("MulABt: max diff %g", d)
	}
	// AtB: A is n2 x n1 (stored transposed).
	at := make([]float64, n2*n1)
	for i := 0; i < n1; i++ {
		for j := 0; j < n2; j++ {
			at[j*n1+i] = a[i*n2+j]
		}
	}
	c2 := make([]float64, n1*n3)
	MulAtB(c2, at, b, n1, n2, n3)
	if d := maxAbsDiff(ref, c2); d > 1e-12 {
		t.Errorf("MulAtB: max diff %g", d)
	}
}

func TestLUSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 5, 20, 50} {
		a := randMat(rng, n*n)
		for i := 0; i < n; i++ {
			a[i*n+i] += float64(n) // keep well conditioned
		}
		xTrue := randMat(rng, n)
		b := make([]float64, n)
		MatVec(b, a, xTrue, n, n)
		f, err := FactorLU(a, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		x := make([]float64, n)
		f.Solve(x, b)
		if d := maxAbsDiff(x, xTrue); d > 1e-9 {
			t.Errorf("n=%d: LU solve error %g", n, d)
		}
		inv := f.Inverse()
		prod := make([]float64, n*n)
		MatMulNaive(prod, a, inv, n, n, n)
		for i := 0; i < n; i++ {
			prod[i*n+i] -= 1
		}
		if d := Nrm2(prod); d > 1e-8 {
			t.Errorf("n=%d: inverse residual %g", n, d)
		}
	}
}

func TestLUSolveGeneralPivoting(t *testing.T) {
	// Regression: general matrices that force row interchanges (the
	// diagonally-dominant cases above never pivot).
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{3, 9, 30} {
		a := randMat(rng, n*n)
		xTrue := randMat(rng, n)
		b := make([]float64, n)
		MatVec(b, a, xTrue, n, n)
		f, err := FactorLU(a, n)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, n)
		f.Solve(x, b)
		if d := maxAbsDiff(x, xTrue); d > 1e-7 {
			t.Errorf("n=%d: pivoted LU solve error %g", n, d)
		}
	}
	// Hand-checked 3x3 with known solution and determinant.
	a := []float64{0, 2, 1, 1, 1, 1, 2, 0, 3}
	f, err := FactorLU(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 3)
	f.Solve(x, []float64{7, 6, 11})
	for i, want := range []float64{1, 2, 3} {
		if math.Abs(x[i]-want) > 1e-12 {
			t.Fatalf("hand-checked solve wrong: %v", x)
		}
	}
	if math.Abs(f.Det()+4) > 1e-12 {
		t.Errorf("det = %g, want -4", f.Det())
	}
}

func TestCLUSolveGeneralPivoting(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	n := 12
	a := make([]complex128, n*n)
	for i := range a {
		a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	xTrue := make([]complex128, n)
	for i := range xTrue {
		xTrue[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	b := make([]complex128, n)
	CMatVec(b, a, xTrue, n, n)
	f, err := FactorCLU(a, n)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]complex128, n)
	f.Solve(x, b)
	for i := range x {
		if d := x[i] - xTrue[i]; math.Hypot(real(d), imag(d)) > 1e-8 {
			t.Fatalf("pivoted complex solve error at %d: %v", i, d)
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := []float64{1, 2, 2, 4}
	if _, err := FactorLU(a, 2); err == nil {
		t.Error("expected error for singular matrix")
	}
}

func spdMatrix(rng *rand.Rand, n int) []float64 {
	m := randMat(rng, n*n)
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += m[k*n+i] * m[k*n+j]
			}
			a[i*n+j] = s
		}
		a[i*n+i] += float64(n)
	}
	return a
}

func TestCholesky(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 3, 10, 40} {
		a := spdMatrix(rng, n)
		c, err := FactorCholesky(a, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		xTrue := randMat(rng, n)
		b := make([]float64, n)
		MatVec(b, a, xTrue, n, n)
		x := make([]float64, n)
		c.Solve(x, b)
		if d := maxAbsDiff(x, xTrue); d > 1e-9 {
			t.Errorf("n=%d: Cholesky solve error %g", n, d)
		}
	}
}

func TestCholeskyNotSPD(t *testing.T) {
	a := []float64{1, 0, 0, -1}
	if _, err := FactorCholesky(a, 2); err == nil {
		t.Error("expected error for indefinite matrix")
	}
}

// laplace1D returns the band form and dense form of the 1D Dirichlet
// Laplacian (tridiagonal 2,-1).
func laplace1D(n int) (band [][]float64, dense []float64) {
	band = [][]float64{make([]float64, n), make([]float64, n)}
	dense = make([]float64, n*n)
	for i := 0; i < n; i++ {
		band[0][i] = 2
		dense[i*n+i] = 2
		if i+1 < n {
			band[1][i] = -1
			dense[i*n+i+1] = -1
			dense[(i+1)*n+i] = -1
		}
	}
	return band, dense
}

func TestBandedCholesky(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 25
	band, dense := laplace1D(n)
	f, err := FactorBanded(band, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	xTrue := randMat(rng, n)
	b := make([]float64, n)
	MatVec(b, dense, xTrue, n, n)
	x := make([]float64, n)
	f.Solve(x, b)
	if d := maxAbsDiff(x, xTrue); d > 1e-9 {
		t.Errorf("banded solve error %g", d)
	}
	if f.SolveFlops() <= 0 {
		t.Error("SolveFlops must be positive")
	}
}

func TestBandedCholeskyWide(t *testing.T) {
	// 2D 5-point Poisson on a 6x6 grid has half-bandwidth 6.
	nx := 6
	n := nx * nx
	bw := nx
	band := make([][]float64, bw+1)
	for d := range band {
		band[d] = make([]float64, n)
	}
	dense := make([]float64, n*n)
	add := func(i, j int, v float64) {
		dense[i*n+j] += v
		if i != j {
			dense[j*n+i] += v
		}
		if j <= i && i-j <= bw {
			band[i-j][j] += v
		}
	}
	for iy := 0; iy < nx; iy++ {
		for ix := 0; ix < nx; ix++ {
			i := iy*nx + ix
			add(i, i, 4)
			if ix > 0 {
				add(i, i-1, -1)
			}
			if iy > 0 {
				add(i, i-nx, -1)
			}
		}
	}
	f, err := FactorBanded(band, n, bw)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	xTrue := randMat(rng, n)
	b := make([]float64, n)
	MatVec(b, dense, xTrue, n, n)
	x := make([]float64, n)
	f.Solve(x, b)
	if d := maxAbsDiff(x, xTrue); d > 1e-8 {
		t.Errorf("banded 2D solve error %g", d)
	}
}

func TestSymEig(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 12
	a := spdMatrix(rng, n)
	w, v, err := SymEig(a, n)
	if err != nil {
		t.Fatal(err)
	}
	// A V = V diag(w).
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			var av float64
			for k := 0; k < n; k++ {
				av += a[i*n+k] * v[k*n+j]
			}
			if math.Abs(av-w[j]*v[i*n+j]) > 1e-8 {
				t.Fatalf("eigenpair %d residual too large: %g", j, av-w[j]*v[i*n+j])
			}
		}
	}
	for j := 1; j < n; j++ {
		if w[j] < w[j-1] {
			t.Error("eigenvalues not sorted ascending")
		}
	}
	// Orthonormality.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var d float64
			for k := 0; k < n; k++ {
				d += v[k*n+i] * v[k*n+j]
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(d-want) > 1e-9 {
				t.Fatalf("eigenvectors not orthonormal: (%d,%d)=%g", i, j, d)
			}
		}
	}
}

func TestSymEigKnown(t *testing.T) {
	// Tridiagonal (2,-1) has eigenvalues 2-2cos(k*pi/(n+1)).
	n := 9
	_, dense := laplace1D(n)
	w, _, err := SymEig(dense, n)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= n; k++ {
		want := 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
		if math.Abs(w[k-1]-want) > 1e-10 {
			t.Errorf("eigenvalue %d: got %g want %g", k, w[k-1], want)
		}
	}
}

func TestGenSymEig(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 10
	a := spdMatrix(rng, n)
	b := spdMatrix(rng, n)
	w, z, err := GenSymEig(a, b, n)
	if err != nil {
		t.Fatal(err)
	}
	// A z_j = w_j B z_j and Zᵀ B Z = I.
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			var az, bz float64
			for k := 0; k < n; k++ {
				az += a[i*n+k] * z[k*n+j]
				bz += b[i*n+k] * z[k*n+j]
			}
			if math.Abs(az-w[j]*bz) > 1e-7 {
				t.Fatalf("generalized eigenpair %d residual: %g", j, az-w[j]*bz)
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				var bz float64
				for l := 0; l < n; l++ {
					bz += b[k*n+l] * z[l*n+j]
				}
				s += z[k*n+i] * bz
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(s-want) > 1e-8 {
				t.Fatalf("Zᵀ B Z not identity at (%d,%d): %g", i, j, s)
			}
		}
	}
}

func TestCLUSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 15
	a := make([]complex128, n*n)
	for i := range a {
		a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	for i := 0; i < n; i++ {
		a[i*n+i] += complex(float64(n), 0)
	}
	xTrue := make([]complex128, n)
	for i := range xTrue {
		xTrue[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	b := make([]complex128, n)
	CMatVec(b, a, xTrue, n, n)
	f, err := FactorCLU(a, n)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]complex128, n)
	f.Solve(x, b)
	for i := range x {
		if d := x[i] - xTrue[i]; math.Hypot(real(d), imag(d)) > 1e-9 {
			t.Fatalf("complex solve error at %d: %v", i, d)
		}
	}
}

func TestCOOToCSRDuplicates(t *testing.T) {
	b := NewCOO(3, 3)
	b.Add(0, 0, 1)
	b.Add(0, 0, 2) // duplicate, must sum
	b.Add(2, 1, 5)
	b.Add(1, 2, -1)
	m := b.ToCSR()
	if got := m.At(0, 0); got != 3 {
		t.Errorf("duplicate sum: got %g want 3", got)
	}
	if got := m.At(2, 1); got != 5 {
		t.Errorf("At(2,1)=%g", got)
	}
	if got := m.At(1, 1); got != 0 {
		t.Errorf("missing entry should be 0, got %g", got)
	}
	if m.NNZ() != 3 {
		t.Errorf("NNZ=%d want 3", m.NNZ())
	}
}

func grid2DCSR(nx, ny int) *CSR {
	b := NewCOO(nx*ny, nx*ny)
	id := func(ix, iy int) int { return iy*nx + ix }
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			i := id(ix, iy)
			b.Add(i, i, 4.5) // shifted to be SPD even with Neumann-ish edges
			if ix > 0 {
				b.Add(i, id(ix-1, iy), -1)
			}
			if ix < nx-1 {
				b.Add(i, id(ix+1, iy), -1)
			}
			if iy > 0 {
				b.Add(i, id(ix, iy-1), -1)
			}
			if iy < ny-1 {
				b.Add(i, id(ix, iy+1), -1)
			}
		}
	}
	return b.ToCSR()
}

func TestSparseCholesky(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := grid2DCSR(7, 5)
	n := a.Rows
	f, err := FactorSparseChol(a)
	if err != nil {
		t.Fatal(err)
	}
	xTrue := randMat(rng, n)
	b := make([]float64, n)
	a.MulVec(b, xTrue)
	x := make([]float64, n)
	f.Solve(x, b)
	if d := maxAbsDiff(x, xTrue); d > 1e-9 {
		t.Errorf("sparse Cholesky solve error %g", d)
	}
}

func TestSparseCholeskyMatchesDense(t *testing.T) {
	a := grid2DCSR(4, 4)
	n := a.Rows
	f, err := FactorSparseChol(a)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := FactorCholesky(a.Dense(), n)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i + 1)
	}
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	f.Solve(x1, b)
	dc.Solve(x2, b)
	if d := maxAbsDiff(x1, x2); d > 1e-10 {
		t.Errorf("sparse vs dense Cholesky mismatch %g", d)
	}
}

func TestInverseTransposeColsIsExactInverseFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	nx, ny := 9, 9
	a := grid2DCSR(nx, ny)
	perm := NDPermGrid(nx, ny)
	ap := a.Permute(perm)
	f, err := FactorSparseChol(ap)
	if err != nil {
		t.Fatal(err)
	}
	x := f.InverseTransposeCols()
	n := a.Rows
	// X Xᵀ b must equal A_p⁻¹ b.
	b := randMat(rng, n)
	want := make([]float64, n)
	f.Solve(want, b)
	// z = Xᵀ b; y = X z.
	z := make([]float64, n)
	for j := 0; j < n; j++ {
		var s float64
		for k, i := range x.Idx[j] {
			s += x.Val[j][k] * b[i]
		}
		z[j] = s
	}
	y := make([]float64, n)
	for j := 0; j < n; j++ {
		v := z[j]
		for k, i := range x.Idx[j] {
			y[i] += x.Val[j][k] * v
		}
	}
	if d := maxAbsDiff(y, want); d > 1e-9 {
		t.Errorf("X Xᵀ != A⁻¹: max diff %g", d)
	}
	// The factor must also be A-conjugate: Xᵀ A X = I (spot check columns).
	ax := make([]float64, n)
	col := make([]float64, n)
	for j := 0; j < n; j += 7 {
		for i := range col {
			col[i] = 0
		}
		for k, i := range x.Idx[j] {
			col[i] = x.Val[j][k]
		}
		ap.MulVec(ax, col)
		for j2 := 0; j2 < n; j2 += 5 {
			var s float64
			for k, i := range x.Idx[j2] {
				s += x.Val[j2][k] * ax[i]
			}
			want := 0.0
			if j2 == j {
				want = 1
			}
			if math.Abs(s-want) > 1e-9 {
				t.Fatalf("XᵀAX(%d,%d) = %g, want %g", j2, j, s, want)
			}
		}
	}
}

func TestNDReducesInverseFactorFill(t *testing.T) {
	nx, ny := 15, 15
	a := grid2DCSR(nx, ny)
	fNat, err := FactorSparseChol(a)
	if err != nil {
		t.Fatal(err)
	}
	perm := NDPermGrid(nx, ny)
	fND, err := FactorSparseChol(a.Permute(perm))
	if err != nil {
		t.Fatal(err)
	}
	natNNZ := fNat.InverseTransposeCols().NNZ()
	ndNNZ := fND.InverseTransposeCols().NNZ()
	if ndNNZ >= natNNZ {
		t.Errorf("nested dissection did not reduce X fill: nat %d vs nd %d", natNNZ, ndNNZ)
	}
}

func checkPerm(t *testing.T, perm []int, n int) {
	t.Helper()
	if len(perm) != n {
		t.Fatalf("perm length %d want %d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			t.Fatalf("invalid permutation entry %d", p)
		}
		seen[p] = true
	}
}

func TestNDPermGridIsPermutation(t *testing.T) {
	for _, s := range [][2]int{{1, 1}, {2, 3}, {7, 7}, {13, 9}, {63, 63}} {
		perm := NDPermGrid(s[0], s[1])
		checkPerm(t, perm, s[0]*s[1])
	}
}

func TestNDPermGraphIsPermutation(t *testing.T) {
	// Grid graph as a general graph.
	nx, ny := 11, 8
	n := nx * ny
	adj := make([][]int, n)
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			i := iy*nx + ix
			if ix > 0 {
				adj[i] = append(adj[i], i-1)
			}
			if ix < nx-1 {
				adj[i] = append(adj[i], i+1)
			}
			if iy > 0 {
				adj[i] = append(adj[i], i-nx)
			}
			if iy < ny-1 {
				adj[i] = append(adj[i], i+nx)
			}
		}
	}
	perm := NDPermGraph(adj)
	checkPerm(t, perm, n)
	// Disconnected graph.
	adj2 := make([][]int, 10)
	adj2[0] = []int{1}
	adj2[1] = []int{0}
	perm2 := NDPermGraph(adj2)
	checkPerm(t, perm2, 10)
}

func TestInvPerm(t *testing.T) {
	perm := []int{2, 0, 3, 1}
	inv := InvPerm(perm)
	for newI, oldI := range perm {
		if inv[oldI] != newI {
			t.Fatalf("InvPerm wrong at %d", oldI)
		}
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	a := grid2DCSR(5, 4)
	perm := NDPermGrid(5, 4)
	ap := a.Permute(perm)
	// (PAPᵀ)[inv[i], inv[j]] == A[i,j].
	inv := InvPerm(perm)
	for i := 0; i < a.Rows; i++ {
		for p := a.Ptr[i]; p < a.Ptr[i+1]; p++ {
			j := a.Col[p]
			if got := ap.At(inv[i], inv[j]); got != a.Val[p] {
				t.Fatalf("permute mismatch at (%d,%d): %g vs %g", i, j, got, a.Val[p])
			}
		}
	}
}

func TestDenseHelpers(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2)
	if m.At(0, 1) != 7 {
		t.Error("Set/Add/At broken")
	}
	tt := m.T()
	if tt.At(1, 0) != 7 || tt.Rows != 3 || tt.Cols != 2 {
		t.Error("transpose broken")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Error("clone aliases original")
	}
	if len(m.Row(1)) != 3 {
		t.Error("Row length wrong")
	}
}

func TestBlasHelpers(t *testing.T) {
	x := []float64{3, 4}
	if Nrm2(x) != 5 {
		t.Error("Nrm2")
	}
	y := []float64{1, 1}
	Axpy(2, x, y)
	if y[0] != 7 || y[1] != 9 {
		t.Error("Axpy")
	}
	if Dot(x, y) != 3*7+4*9 {
		t.Error("Dot")
	}
	Scale(0.5, x)
	if x[0] != 1.5 || x[1] != 2 {
		t.Error("Scale")
	}
	z := make([]float64, 2)
	Copy(z, x)
	if z[0] != 1.5 {
		t.Error("Copy")
	}
	yv := make([]float64, 3)
	a := []float64{1, 2, 3, 4, 5, 6} // 2x3
	MatVecT(yv, a, []float64{1, 1}, 2, 3)
	if yv[0] != 5 || yv[1] != 7 || yv[2] != 9 {
		t.Errorf("MatVecT got %v", yv)
	}
}

func TestLUDeterminant(t *testing.T) {
	a := []float64{2, 0, 0, 3}
	f, err := FactorLU(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Det()-6) > 1e-12 {
		t.Errorf("det=%g want 6", f.Det())
	}
}
