// Package la provides the dense and sparse linear-algebra kernels that the
// spectral element method is built on: small-matrix multiply kernels in the
// shapes required by tensor-product operator evaluation (Sec. 6 of the
// paper), dense factorizations (LU, Cholesky, banded Cholesky), symmetric
// and generalized-symmetric eigensolvers (for the fast diagonalization
// method), complex LU (for the Orr–Sommerfeld reference eigensolver), and
// sparse matrices with a nested-dissection-ordered sparse Cholesky (for the
// XXT coarse-grid solver).
//
// All dense matrices are stored row-major in flat []float64 slices; the
// multiply kernels take explicit dimensions so they can be called on
// sub-blocks without allocation, matching the DGEMM calling style of the
// paper's computational kernel.
package la

import "math"

// MatMulKernel identifies one of the matrix-multiply variants benchmarked in
// Table 3 of the paper. The paper compares vendor DGEMMs (lkm, csm, ghm)
// against two hand-unrolled Fortran kernels (f2, f3); here the analogues are
// pure-Go kernels with different loop orders and unrolling strategies.
type MatMulKernel int

const (
	// KernelNaive is the textbook ijk triple loop (dot-product inner loop).
	KernelNaive MatMulKernel = iota
	// KernelIKJ is the cache-friendly ikj ordering (saxpy inner loop).
	KernelIKJ
	// KernelF2 unrolls the contraction (n2) dimension completely, with the
	// output column index controlling the outer loop, mirroring the paper's
	// hand-unrolled f2 kernel.
	KernelF2
	// KernelF3 unrolls the contraction dimension completely, with the output
	// row index controlling the outer loop, mirroring the f3 kernel.
	KernelF3
	// KernelBlocked is a register-blocked kernel (2x4 micro-tile), standing
	// in for the tuned vendor library (csm/ghm) of the paper.
	KernelBlocked
)

var kernelNames = [...]string{"naive", "ikj", "f2", "f3", "blocked"}

func (k MatMulKernel) String() string {
	if k < 0 || int(k) >= len(kernelNames) {
		return "unknown"
	}
	return kernelNames[k]
}

// Kernels lists every MatMulKernel, in Table 3 column order.
var Kernels = []MatMulKernel{KernelNaive, KernelIKJ, KernelF2, KernelF3, KernelBlocked}

// MatMul computes C = A*B with the given kernel, where A is n1 x n2, B is
// n2 x n3, and C is n1 x n3, all row-major. C must not alias A or B.
func MatMul(k MatMulKernel, c, a, b []float64, n1, n2, n3 int) {
	switch k {
	case KernelNaive:
		MatMulNaive(c, a, b, n1, n2, n3)
	case KernelIKJ:
		MatMulIKJ(c, a, b, n1, n2, n3)
	case KernelF2:
		MatMulF2(c, a, b, n1, n2, n3)
	case KernelF3:
		MatMulF3(c, a, b, n1, n2, n3)
	case KernelBlocked:
		MatMulBlocked(c, a, b, n1, n2, n3)
	default:
		MatMulIKJ(c, a, b, n1, n2, n3)
	}
}

// Mul is the default multiply used throughout the solvers: C = A*B.
// It routes through the per-shape dispatch table (see dispatch.go), which
// selects among the MatMul* kernels; the static default heuristic and every
// Strict-tuned table choose only kernels that are bitwise-identical to the
// textbook loop, so results do not depend on the installed table.
func Mul(c, a, b []float64, n1, n2, n3 int) {
	if k, ok := lookupMul(n1, n2, n3); ok {
		MatMul(k, c, a, b, n1, n2, n3)
		return
	}
	mulDefault(c, a, b, n1, n2, n3)
}

// MatMulNaive computes C = A*B with the textbook ijk loop order.
func MatMulNaive(c, a, b []float64, n1, n2, n3 int) {
	for i := 0; i < n1; i++ {
		ar := a[i*n2 : i*n2+n2]
		cr := c[i*n3 : i*n3+n3]
		for j := 0; j < n3; j++ {
			var s float64
			for k := 0; k < n2; k++ {
				s += ar[k] * b[k*n3+j]
			}
			cr[j] = s
		}
	}
}

// MatMulIKJ computes C = A*B with the ikj loop order, streaming rows of B.
func MatMulIKJ(c, a, b []float64, n1, n2, n3 int) {
	for i := 0; i < n1; i++ {
		cr := c[i*n3 : i*n3+n3]
		for j := range cr {
			cr[j] = 0
		}
		ar := a[i*n2 : i*n2+n2]
		for k := 0; k < n2; k++ {
			aik := ar[k]
			if aik == 0 {
				continue
			}
			br := b[k*n3 : k*n3+n3]
			for j, bv := range br {
				cr[j] += aik * bv
			}
		}
	}
}

// MatMulF2 mirrors the paper's f2 kernel: the contraction (n2) loop is fully
// unrolled (in chunks of four with a scalar remainder) and the output column
// index controls the outer loop.
func MatMulF2(c, a, b []float64, n1, n2, n3 int) {
	k4 := n2 &^ 3
	for j := 0; j < n3; j++ {
		for i := 0; i < n1; i++ {
			ar := a[i*n2 : i*n2+n2]
			var s0, s1, s2, s3 float64
			for k := 0; k < k4; k += 4 {
				s0 += ar[k] * b[k*n3+j]
				s1 += ar[k+1] * b[(k+1)*n3+j]
				s2 += ar[k+2] * b[(k+2)*n3+j]
				s3 += ar[k+3] * b[(k+3)*n3+j]
			}
			s := (s0 + s1) + (s2 + s3)
			for k := k4; k < n2; k++ {
				s += ar[k] * b[k*n3+j]
			}
			c[i*n3+j] = s
		}
	}
}

// MatMulF3 mirrors the paper's f3 kernel: the contraction loop is fully
// unrolled and the output row index controls the outer loop.
func MatMulF3(c, a, b []float64, n1, n2, n3 int) {
	k4 := n2 &^ 3
	for i := 0; i < n1; i++ {
		ar := a[i*n2 : i*n2+n2]
		cr := c[i*n3 : i*n3+n3]
		for j := 0; j < n3; j++ {
			var s0, s1, s2, s3 float64
			for k := 0; k < k4; k += 4 {
				s0 += ar[k] * b[k*n3+j]
				s1 += ar[k+1] * b[(k+1)*n3+j]
				s2 += ar[k+2] * b[(k+2)*n3+j]
				s3 += ar[k+3] * b[(k+3)*n3+j]
			}
			s := (s0 + s1) + (s2 + s3)
			for k := k4; k < n2; k++ {
				s += ar[k] * b[k*n3+j]
			}
			cr[j] = s
		}
	}
}

// MatMulBlocked computes C = A*B with a 2x4 register-blocked micro-kernel,
// the stand-in for the tuned vendor DGEMM of the paper.
func MatMulBlocked(c, a, b []float64, n1, n2, n3 int) {
	i2 := n1 &^ 1
	j4 := n3 &^ 3
	for i := 0; i < i2; i += 2 {
		a0 := a[i*n2 : i*n2+n2]
		a1 := a[(i+1)*n2 : (i+1)*n2+n2]
		c0 := c[i*n3 : i*n3+n3]
		c1 := c[(i+1)*n3 : (i+1)*n3+n3]
		for j := 0; j < j4; j += 4 {
			var s00, s01, s02, s03 float64
			var s10, s11, s12, s13 float64
			for k := 0; k < n2; k++ {
				br := b[k*n3+j : k*n3+j+4]
				v0, v1 := a0[k], a1[k]
				s00 += v0 * br[0]
				s01 += v0 * br[1]
				s02 += v0 * br[2]
				s03 += v0 * br[3]
				s10 += v1 * br[0]
				s11 += v1 * br[1]
				s12 += v1 * br[2]
				s13 += v1 * br[3]
			}
			c0[j], c0[j+1], c0[j+2], c0[j+3] = s00, s01, s02, s03
			c1[j], c1[j+1], c1[j+2], c1[j+3] = s10, s11, s12, s13
		}
		for j := j4; j < n3; j++ {
			var s0, s1 float64
			for k := 0; k < n2; k++ {
				bv := b[k*n3+j]
				s0 += a0[k] * bv
				s1 += a1[k] * bv
			}
			c0[j], c1[j] = s0, s1
		}
	}
	for i := i2; i < n1; i++ {
		ar := a[i*n2 : i*n2+n2]
		cr := c[i*n3 : i*n3+n3]
		for j := 0; j < n3; j++ {
			var s float64
			for k := 0; k < n2; k++ {
				s += ar[k] * b[k*n3+j]
			}
			cr[j] = s
		}
	}
}

// MulABt computes C = A*Bᵀ where A is n1 x n2, B is n3 x n2, C is n1 x n3.
// This is the natural kernel for applying a 1D operator along the second
// tensor dimension (u Bᵀ in eq. (3) of the paper). Like Mul it routes
// through the per-shape dispatch table; every ABt variant accumulates each
// output with a single sequential chain over k, so all are bitwise-identical.
func MulABt(c, a, b []float64, n1, n2, n3 int) {
	if k, ok := lookupABt(n1, n2, n3); ok {
		MatMulABt(k, c, a, b, n1, n2, n3)
		return
	}
	abtDefault(c, a, b, n1, n2, n3)
}

// ABtKernel identifies a MulABt variant.
type ABtKernel int

// MulABt kernel variants. All produce bitwise-identical results (each output
// entry is one sequential dot product over k), so tuning never changes the
// computed fields.
const (
	// ABtSimple is the plain row-by-row dot-product loop.
	ABtSimple ABtKernel = iota
	// ABtUnrolled fully unrolls the contraction for n2 in 2..16 (the shapes
	// an order-N SEM discretization produces), falling back to the plain
	// loop otherwise.
	ABtUnrolled
	// ABtBlocked computes a 2x2 output tile per inner loop: four independent
	// accumulator chains sharing each A/B load.
	ABtBlocked
)

var abtNames = [...]string{"abt", "abt-unroll", "abt-2x2"}

func (k ABtKernel) String() string {
	if k < 0 || int(k) >= len(abtNames) {
		return "unknown"
	}
	return abtNames[k]
}

// ABtKernels lists every MulABt variant.
var ABtKernels = []ABtKernel{ABtSimple, ABtUnrolled, ABtBlocked}

// MatMulABt computes C = A*Bᵀ with the given variant (same shapes as MulABt).
func MatMulABt(k ABtKernel, c, a, b []float64, n1, n2, n3 int) {
	switch k {
	case ABtUnrolled:
		MulABtUnrolled(c, a, b, n1, n2, n3)
	case ABtBlocked:
		MulABtBlocked(c, a, b, n1, n2, n3)
	default:
		MulABtSimple(c, a, b, n1, n2, n3)
	}
}

// MulABtSimple is the plain dot-product MulABt (the seed kernel).
func MulABtSimple(c, a, b []float64, n1, n2, n3 int) {
	for i := 0; i < n1; i++ {
		ar := a[i*n2 : i*n2+n2]
		cr := c[i*n3 : i*n3+n3]
		for j := 0; j < n3; j++ {
			br := b[j*n2 : j*n2+n2]
			var s float64
			for k, av := range ar {
				s += av * br[k]
			}
			cr[j] = s
		}
	}
}

// MulABtBlocked computes C = A*Bᵀ with 2x2 output tiles: the four dot
// products of a tile share each load of A and B rows, quadrupling the
// arithmetic per byte moved while keeping every output a single sequential
// accumulation over k (bitwise-identical to MulABtSimple).
func MulABtBlocked(c, a, b []float64, n1, n2, n3 int) {
	i2 := n1 &^ 1
	j2 := n3 &^ 1
	for i := 0; i < i2; i += 2 {
		a0 := a[i*n2 : i*n2+n2]
		a1 := a[(i+1)*n2 : (i+1)*n2+n2]
		c0 := c[i*n3 : i*n3+n3]
		c1 := c[(i+1)*n3 : (i+1)*n3+n3]
		for j := 0; j < j2; j += 2 {
			b0 := b[j*n2 : j*n2+n2]
			b1 := b[(j+1)*n2 : (j+1)*n2+n2]
			var s00, s01, s10, s11 float64
			for k := 0; k < n2; k++ {
				av0, av1 := a0[k], a1[k]
				bv0, bv1 := b0[k], b1[k]
				s00 += av0 * bv0
				s01 += av0 * bv1
				s10 += av1 * bv0
				s11 += av1 * bv1
			}
			c0[j], c0[j+1] = s00, s01
			c1[j], c1[j+1] = s10, s11
		}
		for j := j2; j < n3; j++ {
			br := b[j*n2 : j*n2+n2]
			var s0, s1 float64
			for k := 0; k < n2; k++ {
				bv := br[k]
				s0 += a0[k] * bv
				s1 += a1[k] * bv
			}
			c0[j], c1[j] = s0, s1
		}
	}
	for i := i2; i < n1; i++ {
		ar := a[i*n2 : i*n2+n2]
		cr := c[i*n3 : i*n3+n3]
		for j := 0; j < n3; j++ {
			br := b[j*n2 : j*n2+n2]
			var s float64
			for k, av := range ar {
				s += av * br[k]
			}
			cr[j] = s
		}
	}
}

// MulABtUnrolled dispatches each row dot product to a fully-unrolled kernel
// for the contraction lengths n2 in 2..16 covering the per-shape calls of an
// order-N SEM operator evaluation (np1, nm1 for N up to 15).
func MulABtUnrolled(c, a, b []float64, n1, n2, n3 int) {
	dot := dotFuncs(n2)
	if dot == nil {
		MulABtSimple(c, a, b, n1, n2, n3)
		return
	}
	for i := 0; i < n1; i++ {
		ar := a[i*n2 : i*n2+n2]
		cr := c[i*n3 : i*n3+n3]
		for j := 0; j < n3; j++ {
			cr[j] = dot(ar, b[j*n2:j*n2+n2])
		}
	}
}

// MulAtB computes C = Aᵀ*B where A is n2 x n1, B is n2 x n3, C is n1 x n3.
func MulAtB(c, a, b []float64, n1, n2, n3 int) {
	for i := 0; i < n1*n3; i++ {
		c[i] = 0
	}
	for k := 0; k < n2; k++ {
		ar := a[k*n1 : k*n1+n1]
		br := b[k*n3 : k*n3+n3]
		for i, av := range ar {
			if av == 0 {
				continue
			}
			cr := c[i*n3 : i*n3+n3]
			for j, bv := range br {
				cr[j] += av * bv
			}
		}
	}
}

// MatVec computes y = A*x where A is m x n row-major.
func MatVec(y, a, x []float64, m, n int) {
	for i := 0; i < m; i++ {
		ar := a[i*n : i*n+n]
		var s float64
		for j, v := range ar {
			s += v * x[j]
		}
		y[i] = s
	}
}

// MatVecT computes y = Aᵀ*x where A is m x n row-major (so y has length n).
func MatVecT(y, a, x []float64, m, n int) {
	for j := 0; j < n; j++ {
		y[j] = 0
	}
	for i := 0; i < m; i++ {
		ar := a[i*n : i*n+n]
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j, v := range ar {
			y[j] += xi * v
		}
	}
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Axpy computes y += alpha*x.
func Axpy(alpha float64, x, y []float64) {
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale computes x *= alpha.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Copy copies src into dst (lengths must match).
func Copy(dst, src []float64) {
	copy(dst, src)
}

// Nrm2 returns the Euclidean norm of x.
func Nrm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}
