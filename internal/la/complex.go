package la

import (
	"fmt"
	"math/cmplx"
)

// CLU is a complex dense LU factorization with partial pivoting, used by the
// Orr–Sommerfeld shift-invert eigensolver that supplies the Table 1
// reference growth rate.
type CLU struct {
	n   int
	lu  []complex128
	piv []int
}

// FactorCLU computes the LU factorization of the complex n x n matrix a
// (row-major); a is copied, not modified.
func FactorCLU(a []complex128, n int) (*CLU, error) {
	f := &CLU{n: n, lu: make([]complex128, n*n), piv: make([]int, n)}
	copy(f.lu, a)
	lu := f.lu
	for k := 0; k < n; k++ {
		p, pmax := k, cmplx.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := cmplx.Abs(lu[i*n+k]); v > pmax {
				p, pmax = i, v
			}
		}
		if pmax == 0 {
			return nil, fmt.Errorf("la: singular complex matrix at column %d", k)
		}
		f.piv[k] = p
		if p != k {
			rk, rp := lu[k*n:k*n+n], lu[p*n:p*n+n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
		}
		pivv := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			m := lu[i*n+k] / pivv
			lu[i*n+k] = m
			if m == 0 {
				continue
			}
			ri, rk := lu[i*n:i*n+n], lu[k*n:k*n+n]
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return f, nil
}

// Solve overwrites x with A⁻¹ b; b and x may alias.
func (f *CLU) Solve(x, b []complex128) {
	n := f.n
	if &x[0] != &b[0] {
		copy(x, b)
	}
	// Row interchanges first (full-row-swap factorization), then substitute.
	for k := 0; k < n; k++ {
		if p := f.piv[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	for k := 0; k < n; k++ {
		xk := x[k]
		if xk == 0 {
			continue
		}
		for i := k + 1; i < n; i++ {
			x[i] -= f.lu[i*n+k] * xk
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		ri := f.lu[i*n : i*n+n]
		for j := i + 1; j < n; j++ {
			s -= ri[j] * x[j]
		}
		x[i] = s / ri[i]
	}
}

// CMatVec computes y = A*x for a complex m x n row-major matrix.
func CMatVec(y, a, x []complex128, m, n int) {
	for i := 0; i < m; i++ {
		ar := a[i*n : i*n+n]
		var s complex128
		for j, v := range ar {
			s += v * x[j]
		}
		y[i] = s
	}
}
