package la

import (
	"fmt"
	"math"
)

// SparseChol is a sparse Cholesky factorization A = L Lᵀ stored by columns
// (compressed sparse column, diagonal entry first in each column). It uses
// the elimination tree for symbolic analysis (up-looking factorization, in
// the style of Davis' CSparse). The factor's inverse transpose, computed
// column-sparse, is the X of the XXT coarse-grid solver: X = L⁻ᵀ satisfies
// Xᵀ A X = I, so A⁻¹ = X Xᵀ, the (quasi-)sparse factorization of Sec. 5.
type SparseChol struct {
	N      int
	Lp     []int // column pointers, len N+1
	Li     []int // row indices
	Lx     []float64
	Parent []int // elimination tree
}

// etree computes the elimination tree of a symmetric matrix given in CSR
// (row i lists its nonzero columns; only entries j < i are used).
func etree(a *CSR) []int {
	n := a.Rows
	parent := make([]int, n)
	ancestor := make([]int, n)
	for i := range parent {
		parent[i] = -1
		ancestor[i] = -1
	}
	for k := 0; k < n; k++ {
		for p := a.Ptr[k]; p < a.Ptr[k+1]; p++ {
			i := a.Col[p]
			for i != -1 && i < k {
				next := ancestor[i]
				ancestor[i] = k
				if next == -1 {
					parent[i] = k
				}
				i = next
			}
		}
	}
	return parent
}

// ereach computes the nonzero pattern of row k of L as the reach of the
// entries of row k of A in the elimination tree. The pattern is written to
// s[top:] in topological order and the new top is returned.
func ereach(a *CSR, k int, parent, w, s []int) int {
	top := len(s)
	w[k] = k
	for p := a.Ptr[k]; p < a.Ptr[k+1]; p++ {
		i := a.Col[p]
		if i > k {
			continue
		}
		length := 0
		for w[i] != k {
			s[length] = i
			length++
			w[i] = k
			i = parent[i]
		}
		for length > 0 {
			length--
			top--
			s[top] = s[length]
		}
	}
	return top
}

// FactorSparseChol computes the sparse Cholesky factorization of the SPD
// matrix a (CSR, symmetric with both triangles stored).
func FactorSparseChol(a *CSR) (*SparseChol, error) {
	n := a.Rows
	parent := etree(a)
	w := make([]int, n)
	s := make([]int, n)
	for i := range w {
		w[i] = -1
	}
	// Pass 1: column counts.
	counts := make([]int, n)
	for k := 0; k < n; k++ {
		counts[k]++ // diagonal
		top := ereach(a, k, parent, w, s)
		for p := top; p < n; p++ {
			counts[s[p]]++
		}
	}
	lp := make([]int, n+1)
	for i := 0; i < n; i++ {
		lp[i+1] = lp[i] + counts[i]
	}
	nnz := lp[n]
	li := make([]int, nnz)
	lx := make([]float64, nnz)
	fill := make([]int, n) // next free slot in each column (after diagonal)
	for i := 0; i < n; i++ {
		fill[i] = lp[i] + 1
		li[lp[i]] = i // diagonal first
	}
	// Pass 2: numeric up-looking factorization.
	for i := range w {
		w[i] = -1
	}
	x := make([]float64, n)
	for k := 0; k < n; k++ {
		top := ereach(a, k, parent, w, s)
		x[k] = 0
		for p := a.Ptr[k]; p < a.Ptr[k+1]; p++ {
			if j := a.Col[p]; j <= k {
				x[j] = a.Val[p]
			}
		}
		d := x[k]
		x[k] = 0
		for p := top; p < n; p++ {
			i := s[p]
			lki := x[i] / lx[lp[i]]
			x[i] = 0
			for q := lp[i] + 1; q < fill[i]; q++ {
				x[li[q]] -= lx[q] * lki
			}
			d -= lki * lki
			li[fill[i]] = k
			lx[fill[i]] = lki
			fill[i]++
		}
		if d <= 0 {
			return nil, fmt.Errorf("la: sparse matrix not positive definite at pivot %d (value %g)", k, d)
		}
		lx[lp[k]] = math.Sqrt(d)
	}
	return &SparseChol{N: n, Lp: lp, Li: li, Lx: lx, Parent: parent}, nil
}

// Solve overwrites out with A⁻¹ b via forward and backward substitution.
// out and b may alias.
func (c *SparseChol) Solve(out, b []float64) {
	n := c.N
	if &out[0] != &b[0] {
		copy(out, b)
	}
	// L y = b.
	for j := 0; j < n; j++ {
		yj := out[j] / c.Lx[c.Lp[j]]
		out[j] = yj
		if yj == 0 {
			continue
		}
		for p := c.Lp[j] + 1; p < c.Lp[j+1]; p++ {
			out[c.Li[p]] -= c.Lx[p] * yj
		}
	}
	// Lᵀ x = y.
	for j := n - 1; j >= 0; j-- {
		s := out[j]
		for p := c.Lp[j] + 1; p < c.Lp[j+1]; p++ {
			s -= c.Lx[p] * out[c.Li[p]]
		}
		out[j] = s / c.Lx[c.Lp[j]]
	}
}

// NNZ returns the number of stored factor entries.
func (c *SparseChol) NNZ() int { return len(c.Lx) }

// SparseCols is a column-sparse matrix: column j has row indices Idx[j] and
// values Val[j]. It stores the X factor of the XXT solver.
type SparseCols struct {
	Rows, Cols int
	Idx        [][]int32
	Val        [][]float64
}

// NNZ returns the total number of stored entries.
func (m *SparseCols) NNZ() int {
	n := 0
	for _, c := range m.Idx {
		n += len(c)
	}
	return n
}

// InverseTransposeCols computes X = L⁻ᵀ column-sparse. Column i of X is the
// transpose of row i of L⁻¹; rows of L⁻¹ are gathered from the columns of
// W = L⁻¹, each of which is obtained by a sparse forward solve L w = e_j
// whose support lies on the elimination-tree path from j to the root. With
// a nested-dissection ordering the result is the quasi-sparse X of the
// paper's coarse-grid solver, with O(n log n)–O(n^{3/2}) total nonzeros.
func (c *SparseChol) InverseTransposeCols() *SparseCols {
	n := c.N
	x := &SparseCols{Rows: n, Cols: n, Idx: make([][]int32, n), Val: make([][]float64, n)}
	work := make([]float64, n)
	var path []int
	for j := 0; j < n; j++ {
		// Support of column j of W = L⁻¹ is contained in the etree path
		// from j to the root (in ascending index order by construction).
		path = path[:0]
		for i := j; i != -1; i = c.Parent[i] {
			path = append(path, i)
		}
		work[j] = 1
		for _, m := range path {
			wm := work[m]
			if wm == 0 {
				continue
			}
			wm /= c.Lx[c.Lp[m]]
			work[m] = wm
			for p := c.Lp[m] + 1; p < c.Lp[m+1]; p++ {
				work[c.Li[p]] -= c.Lx[p] * wm
			}
		}
		// W[i][j] becomes X[j-th row? no: X = Wᵀ, so W[i,j] = X[j,i]:
		// entry w_i of column j of W contributes to column i of X at row j.
		for _, m := range path {
			v := work[m]
			work[m] = 0
			if v == 0 {
				continue
			}
			x.Idx[m] = append(x.Idx[m], int32(j))
			x.Val[m] = append(x.Val[m], v)
		}
	}
	return x
}
