package la

// dispatch.go implements the per-shape matmul kernel dispatch of Sec. 6 /
// Table 3 of the paper: no single kernel wins every (n1 x n2) x (n2 x n3)
// calling configuration, so Mul and MulABt route each call through a shape-
// indexed table selecting the winning variant. The table is deterministic:
// the static default is a fixed heuristic, and a Tuner built with Strict
// (the solver-facing mode) only considers kernels that are bitwise-identical
// to the textbook loops — every output entry is a single sequential
// accumulation chain over the contraction index — so tuning changes speed,
// never results. Non-strict tuning (cmd/tables' "auto" column) may also pick
// the multi-accumulator f2/f3 kernels, which reassociate the sum.

import (
	"fmt"
	"sync/atomic"
	"time"
)

// dispatchDim bounds the shape dimensions covered by the dispatch table;
// calls with any dimension >= dispatchDim fall back to the size heuristic
// (which already favours the blocked kernels at large shapes).
const dispatchDim = 32

// DispatchTable maps small (n1, n2, n3) shapes to kernel choices. The zero
// value defers every shape to the static default heuristic.
type DispatchTable struct {
	mul [dispatchDim * dispatchDim * dispatchDim]uint8 // MatMulKernel + 1; 0 = default
	abt [dispatchDim * dispatchDim * dispatchDim]uint8 // ABtKernel + 1; 0 = default
}

// SetMul pins the C = A*B kernel for one shape (no-op outside table range).
func (t *DispatchTable) SetMul(n1, n2, n3 int, k MatMulKernel) {
	if i, ok := shapeIndex(n1, n2, n3); ok {
		t.mul[i] = uint8(k) + 1
	}
}

// SetABt pins the C = A*Bᵀ kernel for one shape.
func (t *DispatchTable) SetABt(n1, n2, n3 int, k ABtKernel) {
	if i, ok := shapeIndex(n1, n2, n3); ok {
		t.abt[i] = uint8(k) + 1
	}
}

// MulKernel reports the pinned C = A*B kernel for a shape.
func (t *DispatchTable) MulKernel(n1, n2, n3 int) (MatMulKernel, bool) {
	if i, ok := shapeIndex(n1, n2, n3); ok && t.mul[i] != 0 {
		return MatMulKernel(t.mul[i] - 1), true
	}
	return 0, false
}

// ABtKernel reports the pinned C = A*Bᵀ kernel for a shape.
func (t *DispatchTable) ABtKernel(n1, n2, n3 int) (ABtKernel, bool) {
	if i, ok := shapeIndex(n1, n2, n3); ok && t.abt[i] != 0 {
		return ABtKernel(t.abt[i] - 1), true
	}
	return 0, false
}

func shapeIndex(n1, n2, n3 int) (int, bool) {
	if n1 <= 0 || n2 <= 0 || n3 <= 0 ||
		n1 >= dispatchDim || n2 >= dispatchDim || n3 >= dispatchDim {
		return 0, false
	}
	return (n1*dispatchDim+n2)*dispatchDim + n3, true
}

// active holds the installed table; nil means "heuristic only".
var active atomic.Pointer[DispatchTable]

// Install makes t the live dispatch table for Mul/MulABt (nil restores the
// pure heuristic). Safe to call concurrently with running solvers: readers
// see either table atomically.
func Install(t *DispatchTable) { active.Store(t) }

// Installed returns the live dispatch table (nil when only the static
// heuristic is active).
func Installed() *DispatchTable { return active.Load() }

// ResetDispatch restores the static default heuristic.
func ResetDispatch() { active.Store(nil) }

func lookupMul(n1, n2, n3 int) (MatMulKernel, bool) {
	if t := active.Load(); t != nil {
		return t.MulKernel(n1, n2, n3)
	}
	return 0, false
}

func lookupABt(n1, n2, n3 int) (ABtKernel, bool) {
	if t := active.Load(); t != nil {
		return t.ABtKernel(n1, n2, n3)
	}
	return 0, false
}

// mulDefault is the static heuristic: the register-blocked kernel wherever
// its 2x4 tiles have work (it skips the zero-fill pass of ikj and runs eight
// accumulator chains), the saxpy ordering otherwise. Both are
// bitwise-identical to the naive loop.
func mulDefault(c, a, b []float64, n1, n2, n3 int) {
	if n1 >= 2 && n3 >= 4 {
		MatMulBlocked(c, a, b, n1, n2, n3)
		return
	}
	MatMulIKJ(c, a, b, n1, n2, n3)
}

// abtDefault: 2x2 tiles wherever they have work, plain loop otherwise.
func abtDefault(c, a, b []float64, n1, n2, n3 int) {
	if n1 >= 2 && n3 >= 2 {
		MulABtBlocked(c, a, b, n1, n2, n3)
		return
	}
	MulABtSimple(c, a, b, n1, n2, n3)
}

// strictMulKernels are the C = A*B variants whose outputs are
// bitwise-identical to the naive loop (single sequential accumulator per
// entry); f2/f3 split the sum into four chains and reassociate.
var strictMulKernels = []MatMulKernel{KernelNaive, KernelIKJ, KernelBlocked}

// Tuner micro-benchmarks the kernel variants on a set of shapes and builds a
// dispatch table of per-shape winners (the paper's Table 3 selection).
type Tuner struct {
	// MinTime is the measurement window per (shape, kernel); default 2ms.
	MinTime time.Duration
	// Strict restricts the candidates to bitwise-identical kernels, so an
	// installed tuned table cannot change computed fields. This is the mode
	// the solvers use; leave false only for reporting (Table 3's auto row).
	Strict bool
}

// ShapeResult reports one tuned shape.
type ShapeResult struct {
	Op         string    `json:"op"` // "mul" or "abt"
	N1, N2, N3 int       `json:"-"`
	Shape      [3]int    `json:"shape"`
	Kernels    []string  `json:"kernels"`
	MFLOPS     []float64 `json:"mflops"`
	Best       string    `json:"best"`
	BestMFLOPS float64   `json:"best_mflops"`
}

// Tune measures every candidate kernel on every shape and returns the
// winner table plus the per-shape measurements. mulShapes/abtShapes use
// MulABt's (n1, n2, n3) convention.
func (t *Tuner) Tune(mulShapes, abtShapes [][3]int) (*DispatchTable, []ShapeResult) {
	dt := &DispatchTable{}
	var results []ShapeResult
	for _, s := range mulShapes {
		r := t.tuneMul(dt, s)
		results = append(results, r)
	}
	for _, s := range abtShapes {
		r := t.tuneABt(dt, s)
		results = append(results, r)
	}
	return dt, results
}

func (t *Tuner) minTime() time.Duration {
	if t.MinTime > 0 {
		return t.MinTime
	}
	return 2 * time.Millisecond
}

func (t *Tuner) tuneMul(dt *DispatchTable, s [3]int) ShapeResult {
	n1, n2, n3 := s[0], s[1], s[2]
	cands := Kernels
	if t.Strict {
		cands = strictMulKernels
	}
	a, b, c := tuneOperands(n1, n2, n3)
	r := ShapeResult{Op: "mul", N1: n1, N2: n2, N3: n3, Shape: s}
	best, bestMF := cands[0], -1.0
	for _, k := range cands {
		mf := measure(t.minTime(), n1, n2, n3, func() { MatMul(k, c, a, b, n1, n2, n3) })
		r.Kernels = append(r.Kernels, k.String())
		r.MFLOPS = append(r.MFLOPS, mf)
		if mf > bestMF {
			best, bestMF = k, mf
		}
	}
	dt.SetMul(n1, n2, n3, best)
	r.Best, r.BestMFLOPS = best.String(), bestMF
	return r
}

func (t *Tuner) tuneABt(dt *DispatchTable, s [3]int) ShapeResult {
	n1, n2, n3 := s[0], s[1], s[2]
	a, b, c := tuneOperands(n1, n2, n3)
	r := ShapeResult{Op: "abt", N1: n1, N2: n2, N3: n3, Shape: s}
	best, bestMF := ABtSimple, -1.0
	for _, k := range ABtKernels {
		mf := measure(t.minTime(), n1, n2, n3, func() { MatMulABt(k, c, a, b, n1, n2, n3) })
		r.Kernels = append(r.Kernels, k.String())
		r.MFLOPS = append(r.MFLOPS, mf)
		if mf > bestMF {
			best, bestMF = k, mf
		}
	}
	dt.SetABt(n1, n2, n3, best)
	r.Best, r.BestMFLOPS = best.String(), bestMF
	return r
}

func tuneOperands(n1, n2, n3 int) (a, b, c []float64) {
	a = make([]float64, n1*n2)
	bn := n2 * n3
	if n3*n2 > bn {
		bn = n3 * n2
	}
	b = make([]float64, bn)
	c = make([]float64, n1*n3)
	// Deterministic non-trivial fill (an LCG; timing does not depend on
	// values, only on shapes).
	x := uint64(0x9e3779b97f4a7c15)
	fill := func(v []float64) {
		for i := range v {
			x = x*6364136223846793005 + 1442695040888963407
			v[i] = float64(int64(x>>20))/float64(1<<43) - 0.5
		}
	}
	fill(a)
	fill(b)
	return a, b, c
}

func measure(minTime time.Duration, n1, n2, n3 int, run func()) float64 {
	run() // warm up
	flops := 2 * float64(n1) * float64(n2) * float64(n3)
	// Batch so the timer overhead amortizes on tiny shapes.
	batch := 1 + int(1e5/flops)
	var reps int
	t0 := time.Now()
	for time.Since(t0) < minTime {
		for i := 0; i < batch; i++ {
			run()
		}
		reps += batch
	}
	el := time.Since(t0).Seconds()
	if el == 0 {
		return 0
	}
	return flops * float64(reps) / el / 1e6
}

// ShapesForOrder enumerates the matmul calling configurations an order-n
// discretization actually produces through tensor.Apply*: the square
// derivative/filter applications on the GLL grid (np1 = n+1) and the
// staggered-grid interpolations to/from the Gauss pressure grid
// (nm1 = n-1). Returned in MulABt's and Mul's (n1, n2, n3) conventions.
func ShapesForOrder(n, dim int) (mulShapes, abtShapes [][3]int) {
	np1, nm1 := n+1, n-1
	// Operator pairs (rows m x cols k): square, restrict (GLL->Gauss),
	// prolong (Gauss->GLL).
	ops := [][2]int{{np1, np1}, {nm1, np1}, {np1, nm1}}
	addMul := func(s [3]int) { mulShapes = appendShape(mulShapes, s) }
	addABt := func(s [3]int) { abtShapes = appendShape(abtShapes, s) }
	// Multi-RHS batching (sem.StiffnessLocalMulti) stacks bc input columns
	// along the row dimension of the r-direction MulABt, so batched solves
	// produce the same ABt shapes with bc times the rows. Only rows inside
	// the dispatch table are worth tuning; wider calls fall back to the size
	// heuristic anyway.
	addABtBatched := func(rows, k, m int) {
		addABt([3]int{rows, k, m})
		for bc := 2; bc <= 3; bc++ {
			if rows*bc < dispatchDim {
				addABt([3]int{rows * bc, k, m})
			}
		}
	}
	for _, op := range ops {
		m, k := op[0], op[1]
		if dim == 2 {
			// Apply2D on a k x k field: ApplyR2D -> MulABt(k, k, m);
			// ApplyS2D on the m x k intermediate -> Mul(m, k, m).
			addABtBatched(k, k, m)
			addMul([3]int{m, k, m})
			continue
		}
		// Apply3D on a k^3 field: ApplyR3D -> MulABt(k*k, k, m);
		// ApplyS3D slabs -> Mul(m, k, m) (k slabs of the m x k x k field);
		// ApplyT3D -> Mul(m, k, m*m).
		addABtBatched(k*k, k, m)
		addMul([3]int{m, k, m})
		addMul([3]int{m, k, m * m})
	}
	return mulShapes, abtShapes
}

func appendShape(list [][3]int, s [3]int) [][3]int {
	for _, e := range list {
		if e == s {
			return list
		}
	}
	return append(list, s)
}

// AutoTune tunes the shapes of an order-n, dim-dimensional discretization in
// Strict mode and installs the resulting table. Returns the per-shape
// measurements for reporting.
func AutoTune(n, dim int) []ShapeResult {
	tn := &Tuner{Strict: true}
	mul, abt := ShapesForOrder(n, dim)
	dt, res := tn.Tune(mul, abt)
	Install(dt)
	return res
}

// String renders one tuned shape as a table row.
func (r ShapeResult) String() string {
	return fmt.Sprintf("%s (%d x %d) x (%d x %d): %s (%.0f MFLOPS)",
		r.Op, r.N1, r.N2, r.N3, r.N2, r.Best, r.BestMFLOPS)
}

// dotFuncs returns a fully-unrolled dot product of fixed length n (nil when
// no unrolled variant exists). Each is a single sequential accumulation
// chain, bitwise-identical to the plain loop.
func dotFuncs(n int) func(a, b []float64) float64 {
	switch n {
	case 2:
		return dot2
	case 3:
		return dot3
	case 4:
		return dot4
	case 5:
		return dot5
	case 6:
		return dot6
	case 7:
		return dot7
	case 8:
		return dot8
	case 9:
		return dot9
	case 10:
		return dot10
	case 11:
		return dot11
	case 12:
		return dot12
	case 13:
		return dot13
	case 14:
		return dot14
	case 15:
		return dot15
	case 16:
		return dot16
	}
	return nil
}

func dot2(a, b []float64) float64 {
	a = a[:2]
	b = b[:2]
	s := a[0] * b[0]
	s += a[1] * b[1]
	return s
}

func dot3(a, b []float64) float64 {
	a = a[:3]
	b = b[:3]
	s := a[0] * b[0]
	s += a[1] * b[1]
	s += a[2] * b[2]
	return s
}

func dot4(a, b []float64) float64 {
	a = a[:4]
	b = b[:4]
	s := a[0] * b[0]
	s += a[1] * b[1]
	s += a[2] * b[2]
	s += a[3] * b[3]
	return s
}

func dot5(a, b []float64) float64 {
	a = a[:5]
	b = b[:5]
	s := a[0] * b[0]
	s += a[1] * b[1]
	s += a[2] * b[2]
	s += a[3] * b[3]
	s += a[4] * b[4]
	return s
}

func dot6(a, b []float64) float64 {
	a = a[:6]
	b = b[:6]
	s := a[0] * b[0]
	s += a[1] * b[1]
	s += a[2] * b[2]
	s += a[3] * b[3]
	s += a[4] * b[4]
	s += a[5] * b[5]
	return s
}

func dot7(a, b []float64) float64 {
	a = a[:7]
	b = b[:7]
	s := a[0] * b[0]
	s += a[1] * b[1]
	s += a[2] * b[2]
	s += a[3] * b[3]
	s += a[4] * b[4]
	s += a[5] * b[5]
	s += a[6] * b[6]
	return s
}

func dot8(a, b []float64) float64 {
	a = a[:8]
	b = b[:8]
	s := a[0] * b[0]
	s += a[1] * b[1]
	s += a[2] * b[2]
	s += a[3] * b[3]
	s += a[4] * b[4]
	s += a[5] * b[5]
	s += a[6] * b[6]
	s += a[7] * b[7]
	return s
}

func dot9(a, b []float64) float64 {
	a = a[:9]
	b = b[:9]
	s := a[0] * b[0]
	s += a[1] * b[1]
	s += a[2] * b[2]
	s += a[3] * b[3]
	s += a[4] * b[4]
	s += a[5] * b[5]
	s += a[6] * b[6]
	s += a[7] * b[7]
	s += a[8] * b[8]
	return s
}

func dot10(a, b []float64) float64 {
	a = a[:10]
	b = b[:10]
	s := a[0] * b[0]
	s += a[1] * b[1]
	s += a[2] * b[2]
	s += a[3] * b[3]
	s += a[4] * b[4]
	s += a[5] * b[5]
	s += a[6] * b[6]
	s += a[7] * b[7]
	s += a[8] * b[8]
	s += a[9] * b[9]
	return s
}

func dot11(a, b []float64) float64 {
	a = a[:11]
	b = b[:11]
	s := a[0] * b[0]
	s += a[1] * b[1]
	s += a[2] * b[2]
	s += a[3] * b[3]
	s += a[4] * b[4]
	s += a[5] * b[5]
	s += a[6] * b[6]
	s += a[7] * b[7]
	s += a[8] * b[8]
	s += a[9] * b[9]
	s += a[10] * b[10]
	return s
}

func dot12(a, b []float64) float64 {
	a = a[:12]
	b = b[:12]
	s := a[0] * b[0]
	s += a[1] * b[1]
	s += a[2] * b[2]
	s += a[3] * b[3]
	s += a[4] * b[4]
	s += a[5] * b[5]
	s += a[6] * b[6]
	s += a[7] * b[7]
	s += a[8] * b[8]
	s += a[9] * b[9]
	s += a[10] * b[10]
	s += a[11] * b[11]
	return s
}

func dot13(a, b []float64) float64 {
	a = a[:13]
	b = b[:13]
	s := a[0] * b[0]
	s += a[1] * b[1]
	s += a[2] * b[2]
	s += a[3] * b[3]
	s += a[4] * b[4]
	s += a[5] * b[5]
	s += a[6] * b[6]
	s += a[7] * b[7]
	s += a[8] * b[8]
	s += a[9] * b[9]
	s += a[10] * b[10]
	s += a[11] * b[11]
	s += a[12] * b[12]
	return s
}

func dot14(a, b []float64) float64 {
	a = a[:14]
	b = b[:14]
	s := a[0] * b[0]
	s += a[1] * b[1]
	s += a[2] * b[2]
	s += a[3] * b[3]
	s += a[4] * b[4]
	s += a[5] * b[5]
	s += a[6] * b[6]
	s += a[7] * b[7]
	s += a[8] * b[8]
	s += a[9] * b[9]
	s += a[10] * b[10]
	s += a[11] * b[11]
	s += a[12] * b[12]
	s += a[13] * b[13]
	return s
}

func dot15(a, b []float64) float64 {
	a = a[:15]
	b = b[:15]
	s := a[0] * b[0]
	s += a[1] * b[1]
	s += a[2] * b[2]
	s += a[3] * b[3]
	s += a[4] * b[4]
	s += a[5] * b[5]
	s += a[6] * b[6]
	s += a[7] * b[7]
	s += a[8] * b[8]
	s += a[9] * b[9]
	s += a[10] * b[10]
	s += a[11] * b[11]
	s += a[12] * b[12]
	s += a[13] * b[13]
	s += a[14] * b[14]
	return s
}

func dot16(a, b []float64) float64 {
	a = a[:16]
	b = b[:16]
	s := a[0] * b[0]
	s += a[1] * b[1]
	s += a[2] * b[2]
	s += a[3] * b[3]
	s += a[4] * b[4]
	s += a[5] * b[5]
	s += a[6] * b[6]
	s += a[7] * b[7]
	s += a[8] * b[8]
	s += a[9] * b[9]
	s += a[10] * b[10]
	s += a[11] * b[11]
	s += a[12] * b[12]
	s += a[13] * b[13]
	s += a[14] * b[14]
	s += a[15] * b[15]
	return s
}
