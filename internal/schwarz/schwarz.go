// Package schwarz implements the paper's additive overlapping Schwarz
// preconditioner (Sec. 5):
//
//	M₀⁻¹ = R₀ᵀ A₀⁻¹ R₀ + Σ_k R_kᵀ Ã_k⁻¹ R_k
//
// with one subdomain per spectral element. Local solves Ã_k⁻¹ come in two
// flavours: the tensor-product fast diagonalization method (FDM) on the
// one-point-extended element grid (the paper's production path), and
// dense-factored restrictions of a global low-order FEM Laplacian with
// overlap N_o ∈ {0,1,3} (the Table 2 comparison baselines). The coarse
// component solves the low-order Laplacian on the spectral element vertex
// mesh and can be disabled to reproduce the A₀ = 0 column of Table 2.
package schwarz

import (
	"fmt"
	"math"

	"repro/internal/fdm"
	"repro/internal/fem"
	"repro/internal/gs"
	"repro/internal/instrument"
	"repro/internal/la"
	"repro/internal/sem"
)

// Method selects the local solver.
type Method int

// Local solve flavours.
const (
	FDM Method = iota // fast diagonalization on the extended tensor grid
	FEM               // dense-factored low-order FEM subdomain solves
)

// Options configures the preconditioner.
type Options struct {
	Method    Method
	Overlap   int  // FEM only: N_o gridpoint layers beyond the element (0, 1, 3)
	UseCoarse bool // include the R₀ᵀ A₀⁻¹ R₀ term
	Neumann   bool // operator has the constant null space (pressure Poisson)
}

// Precond is a ready additive Schwarz preconditioner for the assembled
// Laplacian/Helmholtz of a sem.Disc.
type Precond struct {
	d   *sem.Disc
	opt Options

	// FDM path.
	fdm2 []*fdm.Solver2D
	fdm3 []*fdm.Solver3D

	// FEM path (2D): per-subdomain free global ids and factorizations.
	subIdx [][]int32
	subFac []*la.Cholesky
	// Jacobi fallback on nodes covered by no subdomain (N_o = 0 interfaces).
	uncovDiag []float64 // 0 where covered

	// Coarse path.
	coarse   *la.SparseChol
	coarseA  *la.CSR // coarse vertex operator (after BCs), for distributed solvers
	coarsePU []int   // permutation used for the coarse factorization (new->old)
	// Prolongation weights: for each element-local node, the 2^Dim corner
	// weights (tensor order).
	pWeights  [][]float64 // [corner][localNode]
	dirichVtx []bool

	// Per-worker scratch for the element-parallel FDM local solves (one
	// slice per Disc worker), sized to the largest WorkLen of any element.
	work [][]float64
	// Prebuilt ForElements bodies (allocated once here, not per Apply) and
	// the vectors they act on during a call.
	loop2, loop3 func(e, w int)
	aout, ain    []float64
	// Preallocated coarse-solve buffers and the inverse fill-reducing
	// permutation (Apply must not allocate in steady state).
	r0, rp, x0 []float64
	invPerm    []int
	// Preallocated FEM-path buffers.
	rg, og, rs []float64

	// Instrumentation (nil = off): local subdomain solves vs. the coarse
	// component of each Apply.
	localTime  *instrument.Timer
	coarseTime *instrument.Timer
	tracer     *instrument.Tracer
}

// Attach wires the local-solve and coarse-solve timers into reg; a nil
// registry detaches.
func (p *Precond) Attach(reg *instrument.Registry) {
	p.localTime = reg.Timer("schwarz/local")
	p.coarseTime = reg.Timer("schwarz/coarse")
}

// AttachTracer makes every Apply emit wall-clock spans for its local and
// coarse sections on the solver-process track; nil detaches.
func (p *Precond) AttachTracer(tr *instrument.Tracer) { p.tracer = tr }

// New builds the preconditioner for the discretization d.
func New(d *sem.Disc, opt Options) (*Precond, error) {
	p := &Precond{d: d, opt: opt}
	m := d.M
	switch opt.Method {
	case FDM:
		if err := p.setupFDM(); err != nil {
			return nil, err
		}
	case FEM:
		if m.Dim != 2 {
			return nil, fmt.Errorf("schwarz: FEM local solves are implemented in 2D only")
		}
		if err := p.setupFEM(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("schwarz: unknown method %d", opt.Method)
	}
	if opt.UseCoarse {
		if err := p.setupCoarse(); err != nil {
			return nil, err
		}
	}
	nw := 0
	for _, s := range p.fdm2 {
		if l := s.WorkLen2D(); l > nw {
			nw = l
		}
	}
	for _, s := range p.fdm3 {
		if l := s.WorkLen3D(); l > nw {
			nw = l
		}
	}
	workers := d.Workers
	if workers < 1 {
		workers = 1
	}
	p.work = make([][]float64, workers)
	for w := range p.work {
		p.work[w] = make([]float64, nw)
	}
	np := m.Np
	p.loop2 = func(e, w int) {
		p.fdm2[e].Apply(p.aout[e*np:(e+1)*np], p.ain[e*np:(e+1)*np], p.work[w])
		d.CountFlops(p.fdm2[e].Flops())
	}
	p.loop3 = func(e, w int) {
		p.fdm3[e].Apply(p.aout[e*np:(e+1)*np], p.ain[e*np:(e+1)*np], p.work[w])
		d.CountFlops(p.fdm3[e].Flops())
	}
	return p, nil
}

// extended1DGrid returns the one-point-extended local 1D grid for an
// element direction of physical length L: the GLL points scaled to [0, L],
// with one extra point on each side at the first interior spacing (the
// paper's single-gridpoint extension into the neighbours).
func extended1DGrid(z []float64, l float64) []float64 {
	n := len(z)
	xs := make([]float64, n+2)
	for i, zi := range z {
		xs[i+1] = (zi + 1) / 2 * l
	}
	h0 := xs[2] - xs[1]
	hn := xs[n] - xs[n-1]
	xs[0] = xs[1] - h0
	xs[n+1] = xs[n] + hn
	return xs
}

// dirLengths estimates the per-direction physical extents of element e from
// its corner vertices (the "rectilinear domain of roughly the same
// dimensions" of Sec. 5).
func dirLengths(d *sem.Disc, e int) [3]float64 {
	m := d.M
	dist := func(a, b int) float64 {
		pa := m.ElemCorner(e, a)
		pb := m.ElemCorner(e, b)
		dx, dy, dz := pb[0]-pa[0], pb[1]-pa[1], pb[2]-pa[2]
		return math.Sqrt(dx*dx + dy*dy + dz*dz)
	}
	var out [3]float64
	if m.Dim == 2 {
		out[0] = (dist(0, 1) + dist(2, 3)) / 2
		out[1] = (dist(0, 2) + dist(1, 3)) / 2
		return out
	}
	out[0] = (dist(0, 1) + dist(2, 3) + dist(4, 5) + dist(6, 7)) / 4
	out[1] = (dist(0, 2) + dist(1, 3) + dist(4, 6) + dist(5, 7)) / 4
	out[2] = (dist(0, 4) + dist(1, 5) + dist(2, 6) + dist(3, 7)) / 4
	return out
}

// local1DOperators builds the interior (Dirichlet-on-extension) 1D FEM
// stiffness and mass for one direction of one element.
func local1DOperators(z []float64, l float64) (a []float64, b []float64, n int) {
	xs := extended1DGrid(z, l)
	ne := len(xs)
	aFull, bDiag := fem.Line1D(xs)
	// Dirichlet at both extension points: keep indices 1..ne-2.
	idx := make([]int, ne-2)
	for i := range idx {
		idx[i] = i + 1
	}
	a = fem.Restrict(aFull, ne, idx)
	n = len(idx)
	b = make([]float64, n*n)
	for i := 0; i < n; i++ {
		b[i*n+i] = bDiag[idx[i]]
	}
	return a, b, n
}

func (p *Precond) setupFDM() error {
	d := p.d
	m := d.M
	if m.Dim == 2 {
		p.fdm2 = make([]*fdm.Solver2D, m.K)
		for e := 0; e < m.K; e++ {
			ls := dirLengths(d, e)
			ax, bx, nx := local1DOperators(m.Z, ls[0])
			ay, by, ny := local1DOperators(m.Z, ls[1])
			s, err := fdm.New2D(ax, bx, nx, ay, by, ny)
			if err != nil {
				return fmt.Errorf("schwarz: element %d: %w", e, err)
			}
			p.fdm2[e] = s
		}
		return nil
	}
	p.fdm3 = make([]*fdm.Solver3D, m.K)
	for e := 0; e < m.K; e++ {
		ls := dirLengths(d, e)
		ax, bx, nx := local1DOperators(m.Z, ls[0])
		ay, by, ny := local1DOperators(m.Z, ls[1])
		az, bz, nz := local1DOperators(m.Z, ls[2])
		s, err := fdm.New3D(ax, bx, nx, ay, by, ny, az, bz, nz)
		if err != nil {
			return fmt.Errorf("schwarz: element %d: %w", e, err)
		}
		p.fdm3[e] = s
	}
	return nil
}

func (p *Precond) setupFEM() error {
	d := p.d
	m := d.M
	aFEM := fem.AssembleGLL2D(m)
	adj := fem.NodeAdjacency(m)
	dirich := make([]bool, m.NGlobal)
	if d.Mask != nil {
		for i, mk := range d.Mask {
			if mk == 0 {
				dirich[m.GID[i]] = true
			}
		}
	}
	np1 := m.N + 1
	covered := make([]bool, m.NGlobal)
	p.subIdx = make([][]int32, m.K)
	p.subFac = make([]*la.Cholesky, m.K)
	mark := make([]int, m.NGlobal)
	for i := range mark {
		mark[i] = -1
	}
	for e := 0; e < m.K; e++ {
		var seed []int32
		if p.opt.Overlap == 0 {
			// Interior nodes of the element only.
			for j := 1; j < np1-1; j++ {
				for i := 1; i < np1-1; i++ {
					seed = append(seed, int32(m.GID[e*m.Np+j*np1+i]))
				}
			}
		} else {
			for l := 0; l < m.Np; l++ {
				seed = append(seed, int32(m.GID[e*m.Np+l]))
			}
		}
		// Grow by Overlap-1 layers beyond the element for Overlap >= 1
		// (Overlap 1 = the element itself as free set, matching the
		// one-point extension whose extension points are Dirichlet).
		frontier := seed
		set := make([]int32, 0, len(seed))
		for _, g := range seed {
			if mark[g] != e {
				mark[g] = e
				set = append(set, g)
			}
		}
		for layer := 1; layer < p.opt.Overlap; layer++ {
			var next []int32
			for _, g := range frontier {
				for _, nb := range adj[g] {
					if mark[nb] != e {
						mark[nb] = e
						set = append(set, nb)
						next = append(next, nb)
					}
				}
			}
			frontier = next
		}
		// Remove Dirichlet nodes.
		free := set[:0]
		for _, g := range set {
			if !dirich[g] {
				free = append(free, g)
			}
		}
		if len(free) == 0 {
			continue
		}
		idx := make([]int, len(free))
		for i, g := range free {
			idx[i] = int(g)
			covered[g] = true
		}
		sub := denseRestrictCSR(aFEM, idx)
		fac, err := la.FactorCholesky(sub, len(idx))
		if err != nil {
			return fmt.Errorf("schwarz: subdomain %d: %w", e, err)
		}
		cp := make([]int32, len(free))
		copy(cp, free)
		p.subIdx[e] = cp
		p.subFac[e] = fac
	}
	// Jacobi fallback for uncovered free nodes (interfaces at N_o = 0).
	p.uncovDiag = make([]float64, m.NGlobal)
	diag := aFEM.Diag()
	for g := 0; g < m.NGlobal; g++ {
		if !covered[g] && !dirich[g] && diag[g] != 0 {
			p.uncovDiag[g] = 1 / diag[g]
		}
	}
	p.rg = make([]float64, m.NGlobal)
	p.og = make([]float64, m.NGlobal)
	maxSub := 0
	for _, idx := range p.subIdx {
		if len(idx) > maxSub {
			maxSub = len(idx)
		}
	}
	p.rs = make([]float64, maxSub)
	return nil
}

// denseRestrictCSR extracts the dense principal submatrix of a CSR matrix.
func denseRestrictCSR(a *la.CSR, idx []int) []float64 {
	n := len(idx)
	pos := make(map[int]int, n)
	for i, g := range idx {
		pos[g] = i
	}
	out := make([]float64, n*n)
	for i, g := range idx {
		for p := a.Ptr[g]; p < a.Ptr[g+1]; p++ {
			if j, ok := pos[a.Col[p]]; ok {
				out[i*n+j] = a.Val[p]
			}
		}
	}
	return out
}

func (p *Precond) setupCoarse() error {
	d := p.d
	m := d.M
	a0 := fem.AssembleCoarse(m)
	// Dirichlet vertices: vertices whose global node is masked.
	p.dirichVtx = make([]bool, m.NVert)
	if d.Mask != nil {
		maskedG := make(map[int64]bool)
		for i, mk := range d.Mask {
			if mk == 0 {
				maskedG[m.GID[i]] = true
			}
		}
		for e := 0; e < m.K; e++ {
			nc := len(m.ElemVert[e])
			for c := 0; c < nc; c++ {
				li := e*m.Np + cornerLocal(m.Dim, m.N, c)
				if maskedG[m.GID[li]] {
					p.dirichVtx[m.ElemVert[e][c]] = true
				}
			}
		}
	}
	pinned := -1
	if p.opt.Neumann {
		// Singular Neumann operator: pin one vertex.
		pinned = 0
		p.dirichVtx[0] = true
	}
	_ = pinned
	// Apply identity rows/cols on Dirichlet vertices.
	b := la.NewCOO(m.NVert, m.NVert)
	for i := 0; i < m.NVert; i++ {
		if p.dirichVtx[i] {
			b.Add(i, i, 1)
			continue
		}
		for q := a0.Ptr[i]; q < a0.Ptr[i+1]; q++ {
			j := a0.Col[q]
			if !p.dirichVtx[j] {
				b.Add(i, j, a0.Val[q])
			}
		}
	}
	abc := b.ToCSR()
	p.coarseA = abc
	// Fill-reducing order + sparse Cholesky.
	adj := make([][]int, m.NVert)
	for i := 0; i < m.NVert; i++ {
		for q := abc.Ptr[i]; q < abc.Ptr[i+1]; q++ {
			if j := abc.Col[q]; j != i {
				adj[i] = append(adj[i], j)
			}
		}
	}
	perm := la.NDPermGraph(adj)
	fac, err := la.FactorSparseChol(abc.Permute(perm))
	if err != nil {
		return fmt.Errorf("schwarz: coarse factorization: %w", err)
	}
	p.coarse = fac
	p.coarsePU = perm
	p.invPerm = la.InvPerm(perm)
	p.r0 = make([]float64, m.NVert)
	p.rp = make([]float64, m.NVert)
	p.x0 = make([]float64, m.NVert)
	// Prolongation weights per corner per local node.
	nc := 1 << m.Dim
	p.pWeights = make([][]float64, nc)
	np1 := m.N + 1
	for c := 0; c < nc; c++ {
		w := make([]float64, m.Np)
		for l := 0; l < m.Np; l++ {
			var r, s, t float64
			if m.Dim == 2 {
				r, s = m.Z[l%np1], m.Z[l/np1]
			} else {
				r, s, t = m.Z[l%np1], m.Z[(l/np1)%np1], m.Z[l/(np1*np1)]
			}
			wv := cornerWeight(c&1 != 0, r) * cornerWeight(c&2 != 0, s)
			if m.Dim == 3 {
				wv *= cornerWeight(c&4 != 0, t)
			}
			w[l] = wv
		}
		p.pWeights[c] = w
	}
	return nil
}

func cornerWeight(plus bool, r float64) float64 {
	if plus {
		return (1 + r) / 2
	}
	return (1 - r) / 2
}

func cornerLocal(dim, n, c int) int {
	np1 := n + 1
	i, j, k := 0, 0, 0
	if c&1 != 0 {
		i = n
	}
	if c&2 != 0 {
		j = n
	}
	if c&4 != 0 {
		k = n
	}
	if dim == 2 {
		return j*np1 + i
	}
	return (k*np1+j)*np1 + i
}

// Apply computes out = M⁻¹ r for the element-local, assembled residual r.
func (p *Precond) Apply(out, r []float64) { p.apply(out, r, p.opt.UseCoarse) }

// ApplyLocal computes the additive-Schwarz sum without the coarse XXT
// vertex term, even when UseCoarse is set — the cheap smoothing sweep the
// Chebyshev-accelerated Schwarz preconditioner wraps (the polynomial
// supplies the global coupling the coarse solve otherwise provides).
func (p *Precond) ApplyLocal(out, r []float64) { p.apply(out, r, false) }

func (p *Precond) apply(out, r []float64, coarse bool) {
	d := p.d
	m := d.M
	for i := range out {
		out[i] = 0
	}
	tLoc := p.localTime.Begin()
	sp := p.tracer.Begin(instrument.PidWall, 0, "schwarz/local", "precond")
	switch p.opt.Method {
	case FDM:
		// Element subdomains are disjoint in out, so the local solves run on
		// the Disc worker pool with per-worker scratch; work assignment is
		// deterministic and each entry is written once, so the result is
		// bitwise independent of the worker count. The loop bodies are built
		// once in New so steady-state Apply allocates nothing.
		p.aout, p.ain = out, r
		if m.Dim == 2 {
			d.ForElements(p.loop2)
		} else {
			d.ForElements(p.loop3)
		}
		p.aout, p.ain = nil, nil
	case FEM:
		rg := p.rg
		for i, gid := range m.GID {
			rg[gid] = r[i]
		}
		og := p.og
		for i := range og {
			og[i] = 0
		}
		for e := 0; e < m.K; e++ {
			idx := p.subIdx[e]
			if idx == nil {
				continue
			}
			n := len(idx)
			rs := p.rs[:n]
			for i, g := range idx {
				rs[i] = rg[g]
			}
			p.subFac[e].Solve(rs, rs)
			for i, g := range idx {
				og[g] += rs[i]
			}
			d.CountFlops(int64(2 * n * n))
		}
		for g, inv := range p.uncovDiag {
			if inv != 0 {
				og[g] += rg[g] * inv
			}
		}
		// Scatter to element-local layout.
		for i, gid := range m.GID {
			out[i] = og[gid]
		}
	}
	if p.opt.Method == FDM {
		// Sum overlapping element contributions (R_kᵀ of the additive sum).
		d.GS.Apply(out, gs.Sum)
	}
	p.localTime.End(tLoc)
	sp.End()
	if coarse {
		// The coarse term is a continuous field: add it after assembly.
		tCrs := p.coarseTime.Begin()
		spc := p.tracer.Begin(instrument.PidWall, 0, "schwarz/coarse", "precond")
		p.applyCoarse(out, r)
		spc.End()
		p.coarseTime.End(tCrs)
	}
	d.ApplyMask(out)
}

// globalOnce compresses the continuous element-local field to one value per
// global node.
func globalOnce(d *sem.Disc, r []float64) []float64 {
	g := make([]float64, d.M.NGlobal)
	for i, gid := range d.M.GID {
		g[gid] = r[i]
	}
	return g
}

// applyCoarse adds R₀ᵀ A₀⁻¹ R₀ r into out (element-local layout).
func (p *Precond) applyCoarse(out, r []float64) {
	d := p.d
	m := d.M
	nv := m.NVert
	r0 := p.r0
	for i := range r0 {
		r0[i] = 0
	}
	nc := 1 << m.Dim
	// R₀ = Pᵀ W with W = diag(1/multiplicity): restrict the residual.
	for e := 0; e < m.K; e++ {
		base := e * m.Np
		for c := 0; c < nc; c++ {
			v := m.ElemVert[e][c]
			if p.dirichVtx[v] {
				continue
			}
			w := p.pWeights[c]
			var s float64
			for l := 0; l < m.Np; l++ {
				if w[l] == 0 {
					continue
				}
				s += w[l] * r[base+l] / d.Mult[base+l]
			}
			r0[v] += s
		}
	}
	// Coarse solve (with the fill-reducing permutation).
	rp := p.rp
	inv := p.invPerm
	for old := 0; old < nv; old++ {
		rp[inv[old]] = r0[old]
	}
	p.coarse.Solve(rp, rp)
	x0 := p.x0
	for old := 0; old < nv; old++ {
		x0[old] = rp[inv[old]]
	}
	d.CountFlops(int64(4 * p.coarse.NNZ()))
	// Prolong: out += P x0. Every local copy of a shared node receives the
	// same (continuous) interpolated value, so no multiplicity weighting.
	for e := 0; e < m.K; e++ {
		base := e * m.Np
		for c := 0; c < nc; c++ {
			v := m.ElemVert[e][c]
			if p.dirichVtx[v] {
				continue
			}
			xv := x0[v]
			if xv == 0 {
				continue
			}
			w := p.pWeights[c]
			for l := 0; l < m.Np; l++ {
				out[base+l] += w[l] * xv
			}
		}
	}
}

// AsOperator adapts the preconditioner to the solver.Operator signature.
func (p *Precond) AsOperator() func(out, in []float64) {
	return p.Apply
}
