package schwarz

import (
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/mesh"
	"repro/internal/sem"
	"repro/internal/solver"
)

func poissonSetup(t *testing.T, nx, ny, n int) (*sem.Disc, []float64) {
	t.Helper()
	spec := mesh.Box2D(mesh.Box2DSpec{Nx: nx, Ny: ny, X0: 0, X1: 1, Y0: 0, Y1: 1})
	m, err := mesh.Discretize(spec, n)
	if err != nil {
		t.Fatal(err)
	}
	d := sem.New(m, m.BoundaryMask(nil), 1)
	b := make([]float64, m.K*m.Np)
	for i := range b {
		f := 2 * math.Pi * math.Pi * math.Sin(math.Pi*m.X[i]) * math.Sin(math.Pi*m.Y[i])
		b[i] = m.B[i] * f
	}
	d.Assemble(b)
	return d, b
}

func solveWith(t *testing.T, d *sem.Disc, b []float64, pre solver.Operator) (solver.Stats, []float64) {
	t.Helper()
	x := make([]float64, len(b))
	st := solver.CG(d.Laplacian, d.Dot, x, b, solver.Options{
		Tol: 1e-10, Relative: true, MaxIter: 2000, Precond: pre,
	})
	if !st.Converged {
		t.Fatalf("CG did not converge: %+v", st)
	}
	return st, x
}

func maxErrVsExact(d *sem.Disc, x []float64) float64 {
	m := d.M
	var maxErr float64
	for i := range x {
		exact := math.Sin(math.Pi*m.X[i]) * math.Sin(math.Pi*m.Y[i])
		if e := math.Abs(x[i] - exact); e > maxErr {
			maxErr = e
		}
	}
	return maxErr
}

func TestFDMSchwarzSolvesPoissonFewerIterations(t *testing.T) {
	d, b := poissonSetup(t, 4, 4, 7)
	plain, x0 := solveWith(t, d, b, nil)
	if e := maxErrVsExact(d, x0); e > 1e-6 {
		t.Fatalf("unpreconditioned solution wrong: %g", e)
	}
	p, err := New(d, Options{Method: FDM, UseCoarse: true})
	if err != nil {
		t.Fatal(err)
	}
	st, x := solveWith(t, d, b, p.Apply)
	if e := maxErrVsExact(d, x); e > 1e-6 {
		t.Fatalf("FDM-Schwarz solution wrong: %g", e)
	}
	if st.Iterations >= plain.Iterations {
		t.Errorf("FDM Schwarz not effective: %d vs plain %d", st.Iterations, plain.Iterations)
	}
	t.Logf("plain CG %d iters, FDM+coarse %d iters", plain.Iterations, st.Iterations)
}

func TestCoarseGridMatters(t *testing.T) {
	// With more elements, dropping the coarse grid must cost iterations
	// (the A₀ = 0 column of Table 2).
	d, b := poissonSetup(t, 8, 8, 5)
	pc, err := New(d, Options{Method: FDM, UseCoarse: true})
	if err != nil {
		t.Fatal(err)
	}
	pn, err := New(d, Options{Method: FDM, UseCoarse: false})
	if err != nil {
		t.Fatal(err)
	}
	stc, _ := solveWith(t, d, b, pc.Apply)
	stn, _ := solveWith(t, d, b, pn.Apply)
	if stc.Iterations >= stn.Iterations {
		t.Errorf("coarse grid did not help: with %d, without %d", stc.Iterations, stn.Iterations)
	}
	t.Logf("with coarse %d, without %d", stc.Iterations, stn.Iterations)
}

// cylinderNeumannSetup reproduces the Table 2 setting: the pressure-like
// (pure Neumann) Poisson system on the high-aspect cylinder O-grid.
func cylinderNeumannSetup(t *testing.T) (*sem.Disc, []float64, func([]float64)) {
	t.Helper()
	spec := mesh.CylinderOGrid(mesh.CylinderOGridSpec{NTheta: 12, NLayer: 4, R: 0.5, H: 4, WallRatio: 10})
	m, err := mesh.Discretize(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	d := sem.New(m, nil, 1)
	n := m.K * m.Np
	one := make([]float64, n)
	for i := range one {
		one[i] = 1
	}
	vol := d.Integrate(one)
	deflate := func(u []float64) {
		mn := d.Integrate(u) / vol
		for i := range u {
			u[i] -= mn
		}
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = m.B[i] * m.X[i]
	}
	d.Assemble(b)
	deflate(b)
	return d, b, deflate
}

func cylinderSolve(t *testing.T, d *sem.Disc, b []float64, deflate func([]float64), opt Options) int {
	t.Helper()
	opt.Neumann = true
	p, err := New(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	apply := func(out, in []float64) { d.Laplacian(out, in); deflate(out) }
	pre := func(out, in []float64) { p.Apply(out, in); deflate(out) }
	x := make([]float64, len(b))
	st := solver.CG(apply, d.Dot, x, b, solver.Options{Tol: 1e-5, Relative: true, MaxIter: 4000, Precond: pre})
	if !st.Converged {
		t.Fatalf("cylinder solve (%+v) did not converge: %+v", opt, st)
	}
	return st.Iterations
}

func TestFEMOverlapVariantsTable2Ordering(t *testing.T) {
	// On the Table 2 mesh (high-aspect cylinder O-grid, pressure-like
	// Neumann system): more overlap → fewer iterations, and N_o=0 markedly
	// worse than N_o=1 — the paper's ordering.
	d, b, deflate := cylinderNeumannSetup(t)
	iters := map[int]int{}
	for _, no := range []int{0, 1, 3} {
		iters[no] = cylinderSolve(t, d, b, deflate, Options{Method: FEM, Overlap: no, UseCoarse: true})
	}
	if !(iters[3] <= iters[1] && iters[1] < iters[0]) {
		t.Errorf("Table 2 overlap ordering violated: %v", iters)
	}
	// FDM is competitive with FEM N_o=1 (the paper's headline comparison).
	fdmIters := cylinderSolve(t, d, b, deflate, Options{Method: FDM, UseCoarse: true})
	if fdmIters > 2*iters[1] {
		t.Errorf("FDM (%d) far worse than FEM N_o=1 (%d)", fdmIters, iters[1])
	}
	// Dropping the coarse grid costs a multiple in iterations.
	noCoarse := cylinderSolve(t, d, b, deflate, Options{Method: FDM, UseCoarse: false})
	if noCoarse < 2*fdmIters {
		t.Errorf("A0=0 (%d) should be ≫ coarse-grid case (%d)", noCoarse, fdmIters)
	}
	t.Logf("cylinder: FDM %d, FEM{0:%d 1:%d 3:%d}, A0=0 %d", fdmIters, iters[0], iters[1], iters[3], noCoarse)
}

func TestFDMCompetitiveWithFEMMinimalOverlap(t *testing.T) {
	d, b := poissonSetup(t, 4, 4, 7)
	pf, err := New(d, Options{Method: FDM, UseCoarse: true})
	if err != nil {
		t.Fatal(err)
	}
	pm, err := New(d, Options{Method: FEM, Overlap: 1, UseCoarse: true})
	if err != nil {
		t.Fatal(err)
	}
	stf, _ := solveWith(t, d, b, pf.Apply)
	stm, _ := solveWith(t, d, b, pm.Apply)
	// Table 2: FDM iteration counts are comparable to FEM N_o=1 (within ~2x).
	if stf.Iterations > 2*stm.Iterations {
		t.Errorf("FDM (%d) much worse than FEM N_o=1 (%d)", stf.Iterations, stm.Iterations)
	}
	t.Logf("FDM %d vs FEM(N_o=1) %d", stf.Iterations, stm.Iterations)
}

func TestSchwarzOnDeformedCylinderMesh(t *testing.T) {
	spec := mesh.CylinderOGrid(mesh.CylinderOGridSpec{NTheta: 12, NLayer: 4, R: 0.5, H: 3, WallRatio: 6})
	m, err := mesh.Discretize(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	d := sem.New(m, m.BoundaryMask(nil), 1)
	b := make([]float64, m.K*m.Np)
	for i := range b {
		b[i] = m.B[i]
	}
	d.Assemble(b)
	p, err := New(d, Options{Method: FDM, UseCoarse: true})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, len(b))
	st := solver.CG(d.Laplacian, d.Dot, x, b, solver.Options{
		Tol: 1e-8, Relative: true, MaxIter: 600, Precond: p.Apply,
	})
	if !st.Converged {
		t.Fatalf("deformed-mesh Schwarz CG failed: %+v", st)
	}
	t.Logf("cylinder mesh: %d iterations", st.Iterations)
}

func TestSchwarz3D(t *testing.T) {
	spec := mesh.Box3D(mesh.Box3DSpec{Nx: 2, Ny: 2, Nz: 2, X1: 1, Y1: 1, Z1: 1})
	m, err := mesh.Discretize(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	d := sem.New(m, m.BoundaryMask(nil), 1)
	b := make([]float64, m.K*m.Np)
	pi := math.Pi
	for i := range b {
		b[i] = m.B[i] * 3 * pi * pi * math.Sin(pi*m.X[i]) * math.Sin(pi*m.Y[i]) * math.Sin(pi*m.Zc[i])
	}
	d.Assemble(b)
	p, err := New(d, Options{Method: FDM, UseCoarse: true})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, len(b))
	stPre := solver.CG(d.Laplacian, d.Dot, x, b, solver.Options{
		Tol: 1e-9, Relative: true, MaxIter: 500, Precond: p.Apply,
	})
	if !stPre.Converged {
		t.Fatalf("3D Schwarz CG failed: %+v", stPre)
	}
	var maxErr float64
	for i := range x {
		exact := math.Sin(pi*m.X[i]) * math.Sin(pi*m.Y[i]) * math.Sin(pi*m.Zc[i])
		if e := math.Abs(x[i] - exact); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 1e-3 {
		t.Errorf("3D solution error %g", maxErr)
	}
	// And it should beat unpreconditioned CG.
	x2 := make([]float64, len(b))
	plain := solver.CG(d.Laplacian, d.Dot, x2, b, solver.Options{
		Tol: 1e-9, Relative: true, MaxIter: 2000,
	})
	if stPre.Iterations >= plain.Iterations {
		t.Errorf("3D Schwarz (%d) not better than plain CG (%d)", stPre.Iterations, plain.Iterations)
	}
	t.Logf("3D: Schwarz %d vs plain %d", stPre.Iterations, plain.Iterations)
}

func TestNeumannPressureLikeSolve(t *testing.T) {
	// Pure Neumann Poisson (pressure-like): RHS with zero mean, solution
	// defined up to a constant. The Schwarz preconditioner must keep CG
	// convergent with the pinned-vertex coarse solve.
	spec := mesh.Box2D(mesh.Box2DSpec{Nx: 4, Ny: 4, X1: 1, Y1: 1})
	m, err := mesh.Discretize(spec, 6)
	if err != nil {
		t.Fatal(err)
	}
	d := sem.New(m, nil, 1)
	n := m.K * m.Np
	b := make([]float64, n)
	for i := range b {
		b[i] = m.B[i] * math.Cos(math.Pi*m.X[i]) * math.Cos(math.Pi*m.Y[i])
	}
	d.Assemble(b)
	p, err := New(d, Options{Method: FDM, UseCoarse: true, Neumann: true})
	if err != nil {
		t.Fatal(err)
	}
	// Deflate the constant null space inside the operator and preconditioner.
	vol := d.Integrate(onesLike(n))
	deflate := func(u []float64) {
		mean := d.Integrate(u) / vol
		for i := range u {
			u[i] -= mean
		}
	}
	apply := func(out, in []float64) {
		d.Laplacian(out, in)
		deflate(out)
	}
	pre := func(out, in []float64) {
		p.Apply(out, in)
		deflate(out)
	}
	x := make([]float64, n)
	st := solver.CG(apply, d.Dot, x, b, solver.Options{
		Tol: 1e-8, Relative: true, MaxIter: 400, Precond: pre,
	})
	if !st.Converged {
		t.Fatalf("Neumann Schwarz CG failed: %+v", st)
	}
	// Exact solution: cos(πx)cos(πy)/(2π²), zero-mean.
	deflate(x)
	var maxErr float64
	for i := range x {
		exact := math.Cos(math.Pi*m.X[i]) * math.Cos(math.Pi*m.Y[i]) / (2 * math.Pi * math.Pi)
		if e := math.Abs(x[i] - exact); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 1e-6 {
		t.Errorf("Neumann solution error %g", maxErr)
	}
	t.Logf("Neumann solve: %d iterations, err %g", st.Iterations, maxErr)
}

func onesLike(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

func TestOptionsValidation(t *testing.T) {
	spec := mesh.Box3D(mesh.Box3DSpec{Nx: 1, Ny: 1, Nz: 1, X1: 1, Y1: 1, Z1: 1})
	m, err := mesh.Discretize(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	d := sem.New(m, nil, 1)
	if _, err := New(d, Options{Method: FEM}); err == nil {
		t.Error("FEM in 3D should be rejected")
	}
	if _, err := New(d, Options{Method: Method(99)}); err == nil {
		t.Error("unknown method should be rejected")
	}
}

// The FDM local solves now run on the element worker pool; with any worker
// count the preconditioner must be bitwise identical to workers=1 (element
// blocks are disjoint and each written once), and steady-state Apply must
// not allocate.
func TestFDMApplyParallelBitwiseAndAllocFree(t *testing.T) {
	spec := mesh.Box2D(mesh.Box2DSpec{Nx: 4, Ny: 4, X0: 0, X1: 1, Y0: 0, Y1: 1})
	m, err := mesh.Discretize(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	d1 := sem.New(m, m.BoundaryMask(nil), 1)
	d4 := sem.New(m, m.BoundaryMask(nil), 4)
	n := m.K * m.Np
	r := make([]float64, n)
	for i := range r {
		r[i] = math.Sin(5*m.X[i]) * math.Cos(4*m.Y[i])
	}
	d1.Assemble(r)
	r4 := make([]float64, n)
	copy(r4, r)
	p1, err := New(d1, Options{Method: FDM, UseCoarse: true})
	if err != nil {
		t.Fatal(err)
	}
	p4, err := New(d4, Options{Method: FDM, UseCoarse: true})
	if err != nil {
		t.Fatal(err)
	}
	o1 := make([]float64, n)
	o4 := make([]float64, n)
	p1.Apply(o1, r)
	p4.Apply(o4, r4)
	for i := range o1 {
		if o1[i] != o4[i] {
			t.Fatalf("workers=4 Apply differs at %d: %g vs %g", i, o4[i], o1[i])
		}
	}
	// Run pending finalizers first: discarded workers>1 discretizations from
	// earlier tests queue a pool-shutdown finalizer, and the runtime's
	// one-time finalizer-goroutine setup would otherwise be charged to this
	// measurement. The sentinel proves the queue has been serviced; GC is
	// re-forced in a loop because one cycle only queues the sentinel and a
	// bare wait would stall until the runtime's 2-minute forced-GC tick.
	fdone := make(chan struct{})
	runtime.SetFinalizer(new(int), func(*int) { close(fdone) })
drain:
	for i := 0; i < 100; i++ {
		runtime.GC()
		select {
		case <-fdone:
			break drain
		default:
			time.Sleep(time.Millisecond)
		}
	}
	allocs := testing.AllocsPerRun(5, func() { p1.Apply(o1, r) })
	if allocs > 0 {
		t.Errorf("steady-state Apply allocated %v times, want 0", allocs)
	}
}
