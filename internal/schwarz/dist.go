package schwarz

// dist.go exposes element-subset pieces of the additive Schwarz
// preconditioner for SPMD execution on the simulated machine (see
// internal/parrun): a rank holding a subset of elements performs its FDM
// local solves on rank-local storage with caller-owned scratch (the shared
// p.work1/p.work2 buffers of the serial path are not safe under concurrent
// ranks), and the coarse term is split into restrict / solve / prolong so
// the vertex solve can be routed through the distributed XXT solver.

import (
	"fmt"

	"repro/internal/la"
)

// LocalWork is per-caller scratch for LocalSolveElems, so concurrent ranks
// never share buffers.
type LocalWork struct {
	w1, w2 []float64
}

// NewLocalWork allocates scratch sized for p's elements.
func (p *Precond) NewLocalWork() *LocalWork {
	m := p.d.M
	nw := 2 * m.Np
	if m.Dim == 3 {
		nw = 4 * m.Np
	}
	return &LocalWork{w1: make([]float64, nw), w2: make([]float64, m.Np)}
}

// LocalSolveElems applies the FDM local solves of the listed (global)
// elements to the rank-local residual r, writing out (both of length
// len(elems)*Np, element blocks in elems order). It returns the flop count
// of the solves; the caller charges it to its rank's virtual clock. FDM
// only: the FEM path needs global overlap and has no distributed form here.
func (p *Precond) LocalSolveElems(out, r []float64, elems []int, w *LocalWork) (int64, error) {
	if p.opt.Method != FDM {
		return 0, fmt.Errorf("schwarz: LocalSolveElems requires the FDM method")
	}
	m := p.d.M
	var flops int64
	for li, e := range elems {
		blk := r[li*m.Np : (li+1)*m.Np]
		if m.Dim == 2 {
			p.fdm2[e].Apply(w.w2, blk, w.w1)
			flops += p.fdm2[e].Flops()
		} else {
			if len(w.w1) < p.fdm3[e].WorkLen3D() {
				w.w1 = make([]float64, p.fdm3[e].WorkLen3D())
			}
			p.fdm3[e].Apply(w.w2, blk, w.w1)
			flops += p.fdm3[e].Flops()
		}
		copy(out[li*m.Np:(li+1)*m.Np], w.w2)
	}
	return flops, nil
}

// CoarseOperator returns the coarse vertex-mesh operator A₀ with boundary
// conditions applied (nil unless the preconditioner was built with
// UseCoarse). Distributed solvers hand it to coarse.NewXXT.
func (p *Precond) CoarseOperator() *la.CSR { return p.coarseA }

// DirichletVtx reports whether coarse vertex v is held at zero (Dirichlet
// or the Neumann pin).
func (p *Precond) DirichletVtx(v int) bool { return p.dirichVtx[v] }

// CoarseRestrictElems accumulates R₀ r over the listed (global) elements
// into the full vertex vector r0: the restriction half of applyCoarse, with
// r in rank-local layout (len(elems)*Np). Returns the flop count.
func (p *Precond) CoarseRestrictElems(r0, r []float64, elems []int) int64 {
	d := p.d
	m := d.M
	nc := 1 << m.Dim
	var flops int64
	for li, e := range elems {
		base := e * m.Np
		lbase := li * m.Np
		for c := 0; c < nc; c++ {
			v := m.ElemVert[e][c]
			if p.dirichVtx[v] {
				continue
			}
			w := p.pWeights[c]
			var s float64
			for l := 0; l < m.Np; l++ {
				if w[l] == 0 {
					continue
				}
				s += w[l] * r[lbase+l] / d.Mult[base+l]
				flops += 3
			}
			r0[v] += s
		}
	}
	return flops
}

// CoarseProlongElems adds the prolonged coarse correction P x0 into the
// rank-local vector out over the listed (global) elements: the
// prolongation half of applyCoarse. Returns the flop count.
func (p *Precond) CoarseProlongElems(out, x0 []float64, elems []int) int64 {
	m := p.d.M
	nc := 1 << m.Dim
	var flops int64
	for li, e := range elems {
		lbase := li * m.Np
		for c := 0; c < nc; c++ {
			v := m.ElemVert[e][c]
			if p.dirichVtx[v] {
				continue
			}
			xv := x0[v]
			if xv == 0 {
				continue
			}
			w := p.pWeights[c]
			for l := 0; l < m.Np; l++ {
				out[lbase+l] += w[l] * xv
			}
			flops += int64(2 * m.Np)
		}
	}
	return flops
}
