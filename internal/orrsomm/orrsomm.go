// Package orrsomm solves the Orr–Sommerfeld eigenproblem for plane
// Poiseuille flow (U = 1 - y²) by Chebyshev collocation with complex
// shift-invert power iteration. It supplies the linear-theory reference
// growth rate and the Tollmien–Schlichting eigenfunction used as the
// initial condition of the Table 1 convergence study (Re = 7500, α = 1,
// following Malik, Zang & Hussaini).
//
// The perturbation streamfunction ψ = φ(y) e^{iα(x - ct)} satisfies
//
//	(U - c)(φ'' - α²φ) - U'' φ = (1/(iαRe)) (φ'''' - 2α²φ'' + α⁴φ)
//
// with clamped boundary conditions φ(±1) = φ'(±1) = 0; the temporal growth
// rate of the perturbation energy amplitude is α·Im(c).
package orrsomm

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/la"
	"repro/internal/poly"
)

// Result is a converged Orr–Sommerfeld eigenpair.
type Result struct {
	Re, Alpha float64
	C         complex128   // complex phase speed
	Y         []float64    // Chebyshev collocation points (descending from +1)
	Phi       []complex128 // streamfunction eigenfunction, max-normalized
	DPhi      []complex128 // dφ/dy at the collocation points
	baryW     []float64
}

// GrowthRate returns the temporal amplitude growth rate α·Im(c).
func (r *Result) GrowthRate() float64 { return r.Alpha * imag(r.C) }

// Solve computes the eigenvalue of the Orr–Sommerfeld operator nearest the
// shift sigma, with n+1 Chebyshev collocation points. For the
// Tollmien–Schlichting branch at Re = 7500, α = 1 use sigma ≈ 0.25+0.002i.
func Solve(re, alpha float64, n int, sigma complex128) (*Result, error) {
	np := n + 1
	// Chebyshev–Gauss–Lobatto points, y_0 = 1 … y_n = -1.
	y := make([]float64, np)
	for j := 0; j < np; j++ {
		y[j] = math.Cos(math.Pi * float64(j) / float64(n))
	}
	d1 := poly.DerivMatrix(y)
	d2 := matmulSq(d1, d1, np)
	d4 := matmulSq(d2, d2, np)

	a2 := alpha * alpha
	a4 := a2 * a2
	ialphaRe := complex(0, alpha*re)
	l := make([]complex128, np*np)
	m := make([]complex128, np*np)
	for i := 0; i < np; i++ {
		u := 1 - y[i]*y[i]
		upp := -2.0
		for j := 0; j < np; j++ {
			lap := d2[i*np+j]
			if i == j {
				lap -= a2
			}
			visc := d4[i*np+j] - 2*a2*d2[i*np+j]
			if i == j {
				visc += a4
			}
			l[i*np+j] = complex(u*lap, 0) - complex(visc, 0)/ialphaRe
			if i == j {
				l[i*np+j] -= complex(upp, 0)
			}
			m[i*np+j] = complex(lap, 0)
		}
	}
	// Boundary rows: φ(±1) = 0 on rows 0 and n; φ'(±1) = 0 on rows 1, n-1.
	setRow := func(row int, lrow []complex128) {
		for j := 0; j < np; j++ {
			l[row*np+j] = lrow[j]
			m[row*np+j] = 0
		}
	}
	e0 := make([]complex128, np)
	e0[0] = 1
	en := make([]complex128, np)
	en[np-1] = 1
	dp0 := make([]complex128, np)
	dpn := make([]complex128, np)
	for j := 0; j < np; j++ {
		dp0[j] = complex(d1[0*np+j], 0)
		dpn[j] = complex(d1[n*np+j], 0)
	}
	setRow(0, e0)
	setRow(1, dp0)
	setRow(n-1, dpn)
	setRow(n, en)

	// Shift-invert power iteration on (L - σM)⁻¹ M.
	shifted := make([]complex128, np*np)
	for i := range shifted {
		shifted[i] = l[i] - sigma*m[i]
	}
	lu, err := la.FactorCLU(shifted, np)
	if err != nil {
		return nil, fmt.Errorf("orrsomm: shifted operator singular: %w", err)
	}
	x := make([]complex128, np)
	for i := range x {
		x[i] = complex(math.Sin(float64(i)+1), math.Cos(2*float64(i)))
	}
	w := make([]complex128, np)
	var theta complex128
	for it := 0; it < 200; it++ {
		la.CMatVec(w, m, x, np, np)
		lu.Solve(w, w)
		// θ = xᴴ w / xᴴ x, then normalize.
		var num, den complex128
		for i := range x {
			num += cmplx.Conj(x[i]) * w[i]
			den += cmplx.Conj(x[i]) * x[i]
		}
		thetaNew := num / den
		var nrm float64
		for _, v := range w {
			nrm += real(v)*real(v) + imag(v)*imag(v)
		}
		inv := complex(1/math.Sqrt(nrm), 0)
		for i := range x {
			x[i] = w[i] * inv
		}
		if it > 2 && cmplx.Abs(thetaNew-theta) < 1e-14*cmplx.Abs(thetaNew) {
			theta = thetaNew
			break
		}
		theta = thetaNew
	}
	if theta == 0 {
		return nil, fmt.Errorf("orrsomm: power iteration failed to converge")
	}
	c := sigma + 1/theta

	// Normalize the eigenfunction to unit max magnitude.
	var maxAbs float64
	var at complex128 = 1
	for _, v := range x {
		if a := cmplx.Abs(v); a > maxAbs {
			maxAbs = a
			at = v
		}
	}
	// Dividing by the max-magnitude entry makes that entry exactly 1 (real),
	// fixing both scale and phase of the eigenfunction.
	for i := range x {
		x[i] = x[i] / at
	}
	dphi := make([]complex128, np)
	for i := 0; i < np; i++ {
		var s complex128
		for j := 0; j < np; j++ {
			s += complex(d1[i*np+j], 0) * x[j]
		}
		dphi[i] = s
	}
	return &Result{
		Re: re, Alpha: alpha, C: c, Y: y,
		Phi: x, DPhi: dphi,
		baryW: poly.BaryWeights(y),
	}, nil
}

func matmulSq(a, b []float64, n int) []float64 {
	c := make([]float64, n*n)
	la.Mul(c, a, b, n, n, n)
	return c
}

// interp evaluates a complex nodal field at y by barycentric interpolation.
func (r *Result) interp(f []complex128, y float64) complex128 {
	var num, den complex128
	for k, yk := range r.Y {
		if y == yk {
			return f[k]
		}
		c := complex(r.baryW[k]/(y-yk), 0)
		num += c * f[k]
		den += c
	}
	return num / den
}

// Velocity returns the real perturbation velocity (u', v') of the TS wave
// at position (x, y) and time t, scaled to amplitude eps:
// u' = Re[φ'(y) e^{iα(x-ct)}], v' = Re[-iα φ(y) e^{iα(x-ct)}].
func (r *Result) Velocity(x, y, t, eps float64) (float64, float64) {
	phase := cmplx.Exp(complex(0, r.Alpha) * (complex(x, 0) - r.C*complex(t, 0)))
	up := r.interp(r.DPhi, y) * phase
	vp := complex(0, -r.Alpha) * r.interp(r.Phi, y) * phase
	return eps * real(up), eps * real(vp)
}

// BaseFlow returns the plane Poiseuille base profile U(y) = 1 - y².
func BaseFlow(y float64) float64 { return 1 - y*y }
