package orrsomm

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestOrszagEigenvalue(t *testing.T) {
	// Orszag (1971): plane Poiseuille, Re = 10000, α = 1:
	// c = 0.23752649 + 0.00373967i.
	r, err := Solve(10000, 1, 128, complex(0.237, 0.0037))
	if err != nil {
		t.Fatal(err)
	}
	want := complex(0.23752649, 0.00373967)
	if cmplx.Abs(r.C-want) > 2e-6 {
		t.Errorf("c = %v, want %v (|diff| = %g)", r.C, want, cmplx.Abs(r.C-want))
	}
}

func TestRe7500Unstable(t *testing.T) {
	// The Table 1 configuration: Re = 7500, α = 1 is linearly unstable.
	r, err := Solve(7500, 1, 128, complex(0.25, 0.002))
	if err != nil {
		t.Fatal(err)
	}
	if imag(r.C) <= 0 {
		t.Errorf("Re=7500 TS mode should be unstable, got c = %v", r.C)
	}
	if r.GrowthRate() < 1e-3 || r.GrowthRate() > 4e-3 {
		t.Errorf("growth rate %g outside the expected TS band", r.GrowthRate())
	}
	t.Logf("Re=7500 alpha=1: c = %v, growth rate = %.8f", r.C, r.GrowthRate())
}

func TestEigenvalueGridConverged(t *testing.T) {
	r1, err := Solve(7500, 1, 96, complex(0.25, 0.002))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Solve(7500, 1, 144, complex(0.25, 0.002))
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(r1.C-r2.C) > 1e-7 {
		t.Errorf("eigenvalue not grid converged: %v vs %v", r1.C, r2.C)
	}
}

func TestBoundaryConditions(t *testing.T) {
	r, err := Solve(7500, 1, 128, complex(0.25, 0.002))
	if err != nil {
		t.Fatal(err)
	}
	n := len(r.Phi) - 1
	for _, idx := range []int{0, n} {
		if cmplx.Abs(r.Phi[idx]) > 1e-10 {
			t.Errorf("phi(%g) = %v, want 0", r.Y[idx], r.Phi[idx])
		}
		if cmplx.Abs(r.DPhi[idx]) > 1e-7 {
			t.Errorf("phi'(%g) = %v, want 0", r.Y[idx], r.DPhi[idx])
		}
	}
	// Max-normalized.
	var maxAbs float64
	for _, v := range r.Phi {
		if a := cmplx.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if math.Abs(maxAbs-1) > 1e-12 {
		t.Errorf("eigenfunction not max-normalized: %g", maxAbs)
	}
}

func TestVelocityPerturbationDivergenceFree(t *testing.T) {
	// u' = ∂ψ/∂y, v' = -∂ψ/∂x is analytically divergence free; check by
	// finite differences of the evaluated field.
	r, err := Solve(7500, 1, 128, complex(0.25, 0.002))
	if err != nil {
		t.Fatal(err)
	}
	h := 1e-5
	for _, pt := range [][2]float64{{0.3, 0.2}, {1.1, -0.5}, {2.0, 0.7}} {
		x, y := pt[0], pt[1]
		up, _ := r.Velocity(x+h, y, 0, 1)
		um, _ := r.Velocity(x-h, y, 0, 1)
		_, vp := r.Velocity(x, y+h, 0, 1)
		_, vm := r.Velocity(x, y-h, 0, 1)
		div := (up-um)/(2*h) + (vp-vm)/(2*h)
		if math.Abs(div) > 1e-4 {
			t.Errorf("perturbation divergence %g at (%g,%g)", div, x, y)
		}
	}
	// Amplitude scales linearly with eps.
	u1, v1 := r.Velocity(0.5, 0.1, 0, 1)
	u2, v2 := r.Velocity(0.5, 0.1, 0, 1e-5)
	if math.Abs(u2-1e-5*u1) > 1e-18 || math.Abs(v2-1e-5*v1) > 1e-18 {
		t.Error("eps scaling broken")
	}
}

func TestTemporalGrowthMatchesEigenvalue(t *testing.T) {
	// |e^{-iαct}| = e^{α Im(c) t}: the Velocity amplitude at t must equal
	// the t=0 amplitude times the growth factor.
	r, err := Solve(7500, 1, 96, complex(0.25, 0.002))
	if err != nil {
		t.Fatal(err)
	}
	tEnd := 3.0
	growth := math.Exp(r.GrowthRate() * tEnd)
	// Compare complex amplitudes: sample u' over a period in x and fit the
	// amplitude via RMS.
	rms := func(tt float64) float64 {
		var s float64
		n := 64
		for i := 0; i < n; i++ {
			x := 2 * math.Pi * float64(i) / float64(n)
			u, _ := r.Velocity(x, 0.2, tt, 1)
			s += u * u
		}
		return math.Sqrt(s / float64(n))
	}
	ratio := rms(tEnd) / rms(0)
	if math.Abs(ratio-growth) > 1e-6*growth {
		t.Errorf("amplitude ratio %g, want %g", ratio, growth)
	}
}

func TestBaseFlow(t *testing.T) {
	if BaseFlow(0) != 1 || BaseFlow(1) != 0 || BaseFlow(-1) != 0 {
		t.Error("base flow wrong")
	}
}
