package comm

import (
	"math"
	"math/rand"
	"testing"
)

// collectiveRankCounts covers P = 1, non-powers of two (including primes),
// powers of two, and the paper-scale counts 64/255/256, so the
// recursive-doubling and binomial-tree code paths both run at small and
// large fan-in. These tests deliberately have no -short gate: they are the
// -race coverage for the collectives.
var collectiveRankCounts = []int{1, 2, 3, 5, 6, 7, 8, 12, 64, 255, 256}

// largeRankCounts extends the sweep to the Fig. 6/8 machine size; skipped
// under -short so the race-detector tier stays fast.
var largeRankCounts = []int{1024}

// rankCounts returns the per-test sweep: every awkward small count always,
// P = 1024 only outside -short.
func rankCounts() []int {
	counts := append([]int(nil), collectiveRankCounts...)
	if !testing.Short() {
		counts = append(counts, largeRankCounts...)
	}
	return counts
}

// refReduce folds the per-rank vectors serially (rank order), matching the
// deterministic reduction the simulated collectives promise.
func refReduce(vecs [][]float64, op ReduceOp) []float64 {
	out := append([]float64(nil), vecs[0]...)
	for _, v := range vecs[1:] {
		op(out, v)
	}
	return out
}

func TestAllreduceEdgeRankCounts(t *testing.T) {
	ops := map[string]ReduceOp{"sum": OpSum, "max": OpMax, "min": OpMin}
	for _, p := range rankCounts() {
		for name, op := range ops {
			rng := rand.New(rand.NewSource(int64(100*p) + int64(len(name))))
			n := 5
			in := make([][]float64, p)
			for q := range in {
				in[q] = make([]float64, n)
				for i := range in[q] {
					in[q][i] = rng.NormFloat64()
				}
			}
			// Sum is order-sensitive in floating point: compare against a
			// tolerance. Max/min are exact.
			want := refReduce(in, op)
			got := make([][]float64, p)
			NewNetwork(Machine{P: p, Latency: 1e-6, ByteSec: 1e-9}).Run(func(r *Rank) {
				buf := append([]float64(nil), in[r.ID]...)
				r.Allreduce(buf, op)
				got[r.ID] = buf
			})
			for q := 1; q < p; q++ {
				for i := range got[0] {
					if got[q][i] != got[0][i] {
						t.Fatalf("P=%d %s: rank %d result differs from rank 0 at %d (%g vs %g)",
							p, name, q, i, got[q][i], got[0][i])
					}
				}
			}
			for i := range want {
				if math.Abs(got[0][i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
					t.Fatalf("P=%d %s: element %d = %g, want %g", p, name, i, got[0][i], want[i])
				}
			}
		}
	}
}

func TestBcastEdgeRankCounts(t *testing.T) {
	for _, p := range rankCounts() {
		roots := []int{0}
		if p > 1 {
			roots = append(roots, p-1)
		}
		for _, root := range roots {
			want := []float64{3.5, -1.25, float64(root)}
			got := make([][]float64, p)
			NewNetwork(Machine{P: p, Latency: 1e-6, ByteSec: 1e-9}).Run(func(r *Rank) {
				buf := make([]float64, len(want))
				if r.ID == root {
					copy(buf, want)
				}
				r.Bcast(buf, root)
				got[r.ID] = buf
			})
			for q := 0; q < p; q++ {
				for i := range want {
					if got[q][i] != want[i] {
						t.Fatalf("P=%d root=%d: rank %d got %v, want %v", p, root, q, got[q], want)
					}
				}
			}
		}
	}
}

func TestGatherEdgeRankCounts(t *testing.T) {
	for _, p := range rankCounts() {
		roots := []int{0}
		if p > 1 {
			roots = append(roots, p/2, p-1)
		}
		for _, root := range roots {
			n := 3
			got := make([][]float64, p)
			NewNetwork(Machine{P: p, Latency: 1e-6, ByteSec: 1e-9}).Run(func(r *Rank) {
				data := make([]float64, n)
				for i := range data {
					data[i] = float64(10*r.ID + i)
				}
				got[r.ID] = r.Gather(data, root)
			})
			for q := 0; q < p; q++ {
				if q != root {
					if got[q] != nil {
						t.Fatalf("P=%d root=%d: non-root rank %d got non-nil", p, root, q)
					}
					continue
				}
				if len(got[q]) != p*n {
					t.Fatalf("P=%d root=%d: gathered %d values, want %d", p, root, len(got[q]), p*n)
				}
				for src := 0; src < p; src++ {
					for i := 0; i < n; i++ {
						if got[q][src*n+i] != float64(10*src+i) {
							t.Fatalf("P=%d root=%d: block %d element %d = %g, want %g",
								p, root, src, i, got[q][src*n+i], float64(10*src+i))
						}
					}
				}
			}
		}
	}
}

func TestBarrierEdgeRankCounts(t *testing.T) {
	for _, p := range rankCounts() {
		ranks := NewNetwork(Machine{P: p, Latency: 1e-6, ByteSec: 1e-9, FlopSec: 1e-8}).Run(func(r *Rank) {
			// Skew the clocks so the barrier has real work to synchronize.
			r.Compute(int64(1000 * (r.ID + 1)))
			r.Barrier()
		})
		if p > 1 {
			// After a barrier every rank has seen every other rank's clock.
			tmax := MaxTime(ranks)
			for _, r := range ranks {
				if r.Time < tmax*0.5 {
					t.Fatalf("P=%d: rank %d clock %g far below barrier completion %g", p, r.ID, r.Time, tmax)
				}
			}
		}
	}
}
