package comm

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/instrument"
)

func testMachine(p int) Machine {
	return Machine{P: p, Latency: 20e-6, ByteSec: 1 / 310e6, FlopSec: 1e-8}
}

// TestFaultFreePlanIsBitwiseIdentical pins the golden-path contract: a nil
// plan, and an installed plan none of whose rules match, must leave every
// virtual clock bitwise identical to the unfaulted run.
func TestFaultFreePlanIsBitwiseIdentical(t *testing.T) {
	body := func(r *Rank) {
		r.Compute(12345)
		buf := []float64{float64(r.ID), 2, 3}
		r.Allreduce(buf, OpSum)
		r.Barrier()
	}
	base := NewNetwork(testMachine(4)).Run(body)

	// A plan whose rules target ranks/links that never match this run.
	net := NewNetwork(testMachine(4))
	net.SetFaults(&fault.Plan{Seed: 1,
		Stragglers: []fault.Straggler{{Rank: 99, Factor: 10}},
		Drops:      []fault.Drop{{From: 17, To: 18, Prob: 1}},
		Pauses:     []fault.Pause{{Rank: 0, At: 1e9, Duration: 1}},
	})
	got := net.Run(body)
	for q := range base {
		if base[q].Time != got[q].Time {
			t.Fatalf("rank %d: non-matching plan perturbed the clock (%g vs %g)",
				q, base[q].Time, got[q].Time)
		}
		if got[q].Drops != 0 || got[q].Retries != 0 || got[q].Pauses != 0 || got[q].StallSec != 0 {
			t.Fatalf("rank %d: non-matching plan recorded faults", q)
		}
	}
}

func TestStragglerSlowsTheMachine(t *testing.T) {
	body := func(r *Rank) {
		for i := 0; i < 5; i++ {
			r.Compute(100000)
			r.Barrier()
		}
	}
	base := NewNetwork(testMachine(3)).Run(body)
	net := NewNetwork(testMachine(3))
	net.SetFaults(&fault.Plan{Seed: 2,
		Stragglers: []fault.Straggler{{Rank: 1, Factor: 4}}})
	slow := net.Run(body)
	if MaxTime(slow) <= MaxTime(base) {
		t.Fatalf("straggler did not slow the run: %g <= %g", MaxTime(slow), MaxTime(base))
	}
	if slow[1].StallSec <= 0 {
		t.Fatal("straggling rank recorded no stall time")
	}
	// The barrier makes everyone wait for the straggler: all clocks inflate.
	for q, r := range slow {
		if r.Time <= base[q].Time {
			t.Fatalf("rank %d did not wait for the straggler", q)
		}
	}
}

func TestDropsRetryAndRecover(t *testing.T) {
	reg := instrument.New()
	net := NewNetwork(testMachine(4))
	net.Attach(reg)
	net.SetFaults(&fault.Plan{Seed: 3,
		Drops: []fault.Drop{{From: -1, To: -1, Prob: 0.4}}})
	want := make([]float64, 4)
	for i := range want {
		want[i] = float64(i + 1)
	}
	ranks := net.Run(func(r *Rank) {
		// Enough traffic that prob-0.4 drops are overwhelmingly likely.
		for i := 0; i < 20; i++ {
			buf := []float64{1, 2, 3, 4}
			r.Allreduce(buf, OpSum)
		}
	})
	var drops, retries int64
	for _, r := range ranks {
		drops += r.Drops
		retries += r.Retries
	}
	if drops == 0 {
		t.Fatal("prob-0.4 plan dropped nothing over 20 allreduces on 4 ranks")
	}
	if retries != drops {
		t.Fatalf("retries %d != drops %d (every recovered drop is one retry)", retries, drops)
	}
	if got := reg.Report(); got.String() == "" {
		t.Fatal("empty instrumentation report")
	}
}

func TestDropAllPanicsAfterRetryBudget(t *testing.T) {
	net := NewNetwork(testMachine(2))
	net.SetFaults(&fault.Plan{Seed: 4, MaxRetries: 3,
		Drops: []fault.Drop{{From: 0, To: 1, Prob: 1}}})
	panicked := make(chan string, 1)
	net.Run(func(r *Rank) {
		if r.ID == 0 {
			defer func() {
				if msg := recover(); msg != nil {
					panicked <- msg.(string)
				} else {
					panicked <- ""
				}
			}()
			r.Send(1, 7, []float64{1})
		} else {
			// Receiver: the message never arrives; don't block on Recv.
		}
	})
	msg := <-panicked
	if !strings.Contains(msg, "lost after 4 attempts") {
		t.Fatalf("expected bounded-retry loss panic, got %q", msg)
	}
}

func TestPauseFreezesRank(t *testing.T) {
	net := NewNetwork(testMachine(2))
	net.SetFaults(&fault.Plan{Seed: 5,
		Pauses: []fault.Pause{{Rank: 1, At: 0, Duration: 0.5}}})
	ranks := net.Run(func(r *Rank) {
		r.Compute(100)
		r.Barrier()
	})
	if ranks[1].Pauses != 1 {
		t.Fatalf("paused rank recorded %d pauses, want 1", ranks[1].Pauses)
	}
	// Both ranks must end past the pause window: rank 1 waited it out and
	// rank 0's barrier waited for rank 1.
	for q, r := range ranks {
		if r.Time < 0.5 {
			t.Fatalf("rank %d clock %g ended inside the pause window", q, r.Time)
		}
	}
}

func TestClockSaveRestore(t *testing.T) {
	net := NewNetwork(testMachine(2))
	net.SetFaults(&fault.Plan{Seed: 6, Drops: []fault.Drop{{From: -1, To: -1, Prob: 0.3}}})
	var saved ClockState
	net.Run(func(r *Rank) {
		buf := []float64{1}
		for i := 0; i < 10; i++ {
			r.Allreduce(buf, OpSum)
		}
		if r.ID == 0 {
			saved = r.Clock()
		}
	})
	if saved.Time == 0 || saved.MsgsSent == 0 || saved.SendSeq == 0 {
		t.Fatalf("clock capture empty: %+v", saved)
	}
	net2 := NewNetwork(testMachine(2))
	net2.SetFaults(&fault.Plan{Seed: 6, Drops: []fault.Drop{{From: -1, To: -1, Prob: 0.3}}})
	restored := net2.Run(func(r *Rank) {
		if r.ID == 0 {
			r.SetClock(saved)
		}
	})
	if got := restored[0].Clock(); got != saved {
		t.Fatalf("restore round-trip mismatch:\n got %+v\nwant %+v", got, saved)
	}
}
