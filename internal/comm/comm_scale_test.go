package comm

import (
	"math"
	"runtime"
	"runtime/debug"
	"testing"
)

// These tests pin the hot-path properties the large-P runs depend on:
// RecvEach's arrival-order consumption must be observationally identical to
// a sequential Recv loop (payloads, clocks, traces), the payload pool must
// actually be reused, and a steady-state allreduce must allocate nothing.

// runAllToAll executes `rounds` of an all-to-all exchange on P ranks,
// receiving either with a sequential Recv loop or with RecvEach, and
// returns every rank's received values (in (round, source) order) and
// final virtual clock.
func runAllToAll(p, rounds int, useEach bool) (vals [][]float64, clocks []float64) {
	vals = make([][]float64, p)
	ranks := NewNetwork(Machine{P: p, Latency: 2e-6, ByteSec: 1e-9, FlopSec: 1e-9}).Run(func(r *Rank) {
		froms := make([]int, 0, p-1)
		for q := 0; q < p; q++ {
			if q != r.ID {
				froms = append(froms, q)
			}
		}
		out := make([][]float64, len(froms))
		for round := 0; round < rounds; round++ {
			// Skew the clocks so message arrival order differs from source
			// order at most receivers.
			r.Compute(int64(1000 * ((r.ID*7 + round*3) % 11)))
			buf := []float64{float64(r.ID*1000 + round), float64(round)}
			for _, q := range froms {
				r.Send(q, 7, buf)
			}
			if useEach {
				r.RecvEach(froms, 7, out)
				for i := range out {
					vals[r.ID] = append(vals[r.ID], out[i]...)
					r.Free(out[i])
					out[i] = nil
				}
			} else {
				for _, q := range froms {
					got := r.Recv(q, 7)
					vals[r.ID] = append(vals[r.ID], got...)
					r.Free(got)
				}
			}
		}
	})
	clocks = make([]float64, p)
	for i, rk := range ranks {
		clocks[i] = rk.Time
	}
	return vals, clocks
}

func TestRecvEachMatchesSequentialRecv(t *testing.T) {
	for _, p := range []int{2, 3, 8, 13} {
		refVals, refClocks := runAllToAll(p, 4, false)
		gotVals, gotClocks := runAllToAll(p, 4, true)
		for q := 0; q < p; q++ {
			if gotClocks[q] != refClocks[q] {
				t.Fatalf("P=%d rank %d: RecvEach clock %v != sequential Recv clock %v",
					p, q, gotClocks[q], refClocks[q])
			}
			if len(gotVals[q]) != len(refVals[q]) {
				t.Fatalf("P=%d rank %d: received %d values, want %d",
					p, q, len(gotVals[q]), len(refVals[q]))
			}
			for i := range refVals[q] {
				if gotVals[q][i] != refVals[q][i] {
					t.Fatalf("P=%d rank %d: value %d = %g, want %g",
						p, q, i, gotVals[q][i], refVals[q][i])
				}
			}
		}
	}
}

func TestRecvEachOutOfOrderStress(t *testing.T) {
	// Unbarriered rounds on a ring-with-chords topology: fast ranks run
	// ahead, so a receiver regularly sees a neighbour's round r+1 message
	// while still collecting round r. RecvEach must hold at most one message
	// per source (parking the early next-round arrival), and unrelated-tag
	// traffic interleaved on the same links must park and drain intact. Two
	// runs must agree bitwise on every clock — goroutine scheduling, which
	// really does vary arrival order in the mailboxes, must not leak into
	// the simulated machine. This test is part of the -race coverage.
	const p = 32
	const rounds = 20
	run := func() []float64 {
		clocks := make([]float64, p)
		NewNetwork(Machine{P: p, Latency: 1e-6, ByteSec: 1e-9, FlopSec: 1e-9}).Run(func(r *Rank) {
			seen := make(map[int]bool)
			froms := make([]int, 0, 6)
			for _, o := range []int{-3, -2, -1, 1, 2, 3} {
				q := (r.ID + o + p) % p
				if q != r.ID && !seen[q] {
					seen[q] = true
					froms = append(froms, q)
				}
			}
			// RecvEach requires ascending sources.
			for i := 1; i < len(froms); i++ {
				for j := i; j > 0 && froms[j] < froms[j-1]; j-- {
					froms[j], froms[j-1] = froms[j-1], froms[j]
				}
			}
			out := make([][]float64, len(froms))
			next := (r.ID + 1) % p
			prev := (r.ID - 1 + p) % p
			for round := 0; round < rounds; round++ {
				r.Compute(int64(100 * ((r.ID*13 + round*5) % 17)))
				payload := []float64{float64(r.ID), float64(round)}
				for _, q := range froms {
					r.Send(q, 7, payload)
				}
				// Side stream on another tag: must park across the whole run.
				r.Send(next, 9, []float64{float64(round)})
				r.RecvEach(froms, 7, out)
				for i, got := range out {
					if len(got) != 2 || got[0] != float64(froms[i]) || got[1] != float64(round) {
						t.Errorf("rank %d round %d: from %d got %v, want [%d %d]",
							r.ID, round, froms[i], got, froms[i], round)
					}
					r.Free(got)
					out[i] = nil
				}
			}
			// The parked side stream drains in FIFO order.
			for round := 0; round < rounds; round++ {
				got := r.Recv(prev, 9)
				if len(got) != 1 || got[0] != float64(round) {
					t.Errorf("rank %d: side-stream message %d = %v", r.ID, round, got)
				}
				r.Free(got)
			}
			clocks[r.ID] = r.Time
		})
		return clocks
	}
	c1 := run()
	c2 := run()
	for q := range c1 {
		if math.Float64bits(c1[q]) != math.Float64bits(c2[q]) {
			t.Fatalf("rank %d: clock not deterministic across runs: %v vs %v", q, c1[q], c2[q])
		}
	}
}

func TestClassFor(t *testing.T) {
	cases := []struct{ n, class int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

func TestFreePoolSafety(t *testing.T) {
	NewNetwork(Machine{P: 1, Latency: 1e-6, ByteSec: 1e-9}).Run(func(r *Rank) {
		// Nil and foreign (non-power-of-two capacity) slices are ignored.
		r.Free(nil)
		r.Free(make([]float64, 5, 5))
		r.Free(make([]float64, 0, 12))

		if got := r.getPayload(0); got != nil {
			t.Errorf("getPayload(0) = %v, want nil", got)
		}
		b := r.getPayload(100)
		if len(b) != 100 || cap(b) != 128 {
			t.Fatalf("getPayload(100): len %d cap %d, want 100/128", len(b), cap(b))
		}
		r.Free(b)
		// A same-class request must reuse the returned backing array.
		b2 := r.getPayload(70)
		if len(b2) != 70 || &b[0] != &b2[0] {
			t.Errorf("pooled buffer not reused: len %d, same backing %v", len(b2), &b[0] == &b2[0])
		}
		// A different class allocates fresh.
		b3 := r.getPayload(300)
		if cap(b3) != 512 {
			t.Errorf("getPayload(300) cap = %d, want 512", cap(b3))
		}
	})
}

func TestAllreduceSteadyStateZeroAlloc(t *testing.T) {
	// The regression the large-P runs depend on: after warmup, vector and
	// scalar allreduces must run out of the per-rank payload pools with no
	// heap allocation at all. testing.AllocsPerRun cannot express this (the
	// network's Run goroutines allocate), so the measurement is a MemStats
	// delta taken on rank 0 across a collectively-synchronized window while
	// GC is disabled (GC assists could otherwise attribute noise here).
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	const p = 8
	const warm, iters = 25, 200
	var steady uint64
	NewNetwork(Machine{P: p, Latency: 1e-6, ByteSec: 1e-9}).Run(func(r *Rank) {
		buf := make([]float64, 33) // non-power-of-two: rounds up inside its size class
		for i := range buf {
			buf[i] = float64(r.ID + i)
		}
		for it := 0; it < warm; it++ {
			r.Allreduce(buf, OpMax)
			r.AllreduceScalar(float64(r.ID+it), OpMax)
		}
		// Line every rank up at the measurement boundary, then measure.
		r.AllreduceScalar(0, OpSum)
		var m0, m1 runtime.MemStats
		if r.ID == 0 {
			runtime.ReadMemStats(&m0)
		}
		for it := 0; it < iters; it++ {
			r.Allreduce(buf, OpMax)
			r.AllreduceScalar(float64(it), OpMin)
		}
		r.AllreduceScalar(0, OpSum)
		if r.ID == 0 {
			runtime.ReadMemStats(&m1)
			steady = m1.Mallocs - m0.Mallocs
		}
	})
	// Zero is the design point; allow a handful of runtime-internal
	// allocations. A per-message regression would show up as thousands
	// (iters * collectives * log2(P) sends).
	if steady > 64 {
		t.Errorf("steady-state allreduce allocated %d objects over %d iterations, want ~0", steady, iters)
	}
}
