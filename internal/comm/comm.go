// Package comm provides a simulated distributed-memory message-passing
// machine: P ranks run as goroutines exchanging real data over channels,
// while a LogP-style α–β (latency–bandwidth) cost model advances per-rank
// virtual clocks. This substitutes for the paper's ASCI-Red NX/MPI layer:
// the distributed algorithms (gather–scatter, XXT coarse solver, collective
// trees) execute exactly as they would on real hardware — same messages,
// same data, same dependency structure — and the virtual clocks yield the
// communication-time curves of Fig. 6 without 2048 physical nodes.
package comm

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/instrument"
)

// Machine models the network of the target platform.
type Machine struct {
	P       int
	Latency float64 // α: seconds per message
	ByteSec float64 // β: seconds per byte
	FlopSec float64 // seconds per flop for modeled local compute
}

// ASCIRed returns a machine model with ASCI-Red-like constants: ~20 µs MPI
// latency, ~310 MB/s per-link bandwidth, and ~100 MFLOPS sustained
// per-processor compute (the Table 3 ballpark).
func ASCIRed(p int) Machine {
	return Machine{P: p, Latency: 20e-6, ByteSec: 1 / 310e6, FlopSec: 1 / 100e6}
}

type message struct {
	from, tag int
	data      []float64
	arrival   float64 // virtual arrival time at the receiver
	flow      string  // trace flow id binding send to receive ("" untraced)
}

// mailbox is an unbounded per-rank delivery queue. A bounded channel here
// deadlocks real communication patterns: a sender blocked on a full inbox
// whose receiver is itself blocked sending never progresses, and the
// simulated machine models a network with buffering at the receiver, not a
// rendezvous. Senders therefore never block; receivers wait on a condition
// variable.
// The queue is a head-indexed slice: take advances head instead of
// reslicing (`q = q[1:]` strands the backing array and re-allocates
// forever under sustained traffic), and once drained the slice rewinds to
// q[:0] so steady-state delivery reuses one backing array.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    []message
	head int
}

func newMailbox() *mailbox {
	b := &mailbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *mailbox) put(m message) {
	b.mu.Lock()
	b.q = append(b.q, m)
	b.mu.Unlock()
	b.cond.Signal()
}

func (b *mailbox) take() message {
	b.mu.Lock()
	for b.head >= len(b.q) {
		b.cond.Wait()
	}
	m := b.q[b.head]
	b.q[b.head] = message{} // drop the payload reference while it sits parked
	b.head++
	if b.head == len(b.q) {
		b.q = b.q[:0]
		b.head = 0
	}
	b.mu.Unlock()
	return m
}

// collectiveInstr groups the metrics of one collective kind.
type collectiveInstr struct {
	calls *instrument.Counter
	msgs  *instrument.Counter
	bytes *instrument.Counter
	vtime *instrument.Timer     // accumulated per-rank virtual time
	vhist *instrument.Histogram // per-call virtual time, all ranks merged
}

func (c *collectiveInstr) record(dt float64, msgs, bytes int64) {
	c.calls.Inc()
	c.msgs.Add(msgs)
	c.bytes.Add(bytes)
	c.vtime.Add(time.Duration(dt * float64(time.Second)))
	c.vhist.Observe(dt)
}

// netInstr holds the network's metric handles (nil Network.instr = off).
type netInstr struct {
	sendMsgs  *instrument.Counter
	sendBytes *instrument.Counter
	allreduce collectiveInstr
	bcast     collectiveInstr
	gather    collectiveInstr
	barrier   collectiveInstr

	// Distribution rollups: per-message virtual latency and per-event fault
	// stall draws. Histograms observe lock-free, so every rank records every
	// message even at paper-scale P.
	sendVLat  *instrument.Histogram
	faultHist *instrument.Histogram

	// Fault-injection bookkeeping (all zero without a plan).
	faultDrops   *instrument.Counter
	faultRetries *instrument.Counter
	faultPauses  *instrument.Counter
	faultStall   *instrument.Timer // virtual time lost to faults
}

// stall records one fault-induced stall of dt virtual seconds.
func (in *netInstr) stall(dt float64) {
	in.faultStall.Add(time.Duration(dt * float64(time.Second)))
	in.faultHist.Observe(dt)
}

// Network is an instantiated machine: use Run to execute an SPMD function.
type Network struct {
	Machine
	inboxes []*mailbox
	instr   *netInstr
	tracer  *instrument.Tracer
	faults  *fault.Plan
}

// NewNetwork allocates the communication structure for the machine.
func NewNetwork(m Machine) *Network {
	n := &Network{Machine: m, inboxes: make([]*mailbox, m.P)}
	for i := range n.inboxes {
		n.inboxes[i] = newMailbox()
	}
	return n
}

// Attach wires per-message and per-collective counters (messages, bytes,
// summed per-rank virtual time) into reg. Call before Run; the handles are
// shared by all ranks and recorded atomically.
func (n *Network) Attach(reg *instrument.Registry) {
	if reg == nil {
		n.instr = nil
		return
	}
	col := func(name string) collectiveInstr {
		return collectiveInstr{
			calls: reg.Counter("comm/" + name + ".calls"),
			msgs:  reg.Counter("comm/" + name + ".msgs"),
			bytes: reg.Counter("comm/" + name + ".bytes"),
			vtime: reg.Timer("comm/" + name + ".vtime"),
			vhist: reg.Histogram("comm/" + name + ".vtime.hist"),
		}
	}
	n.instr = &netInstr{
		sendMsgs:     reg.Counter("comm/send.msgs"),
		sendBytes:    reg.Counter("comm/send.bytes"),
		sendVLat:     reg.Histogram("comm/send.vlat"),
		faultHist:    reg.Histogram("comm/fault.stall.draws"),
		allreduce:    col("allreduce"),
		bcast:        col("bcast"),
		gather:       col("gather"),
		barrier:      col("barrier"),
		faultDrops:   reg.Counter("comm/fault.drops"),
		faultRetries: reg.Counter("comm/fault.retries"),
		faultPauses:  reg.Counter("comm/fault.pauses"),
		faultStall:   reg.Timer("comm/fault.stall"),
	}
}

// SetFaults installs a fault plan: from now on every Send, Recv delivery,
// and Compute consults it (seeded deterministic stragglers, link jitter,
// message drops with timeout + bounded-retry recovery, and rank pauses).
// Call before Run; nil detaches and restores the exact fault-free
// arithmetic. The plan is normalized in place (retry protocol defaults).
func (n *Network) SetFaults(p *fault.Plan) {
	if p != nil {
		p.Normalize()
	}
	n.faults = p
}

// AttachTracer wires span emission into tr: every collective becomes a
// complete span on the calling rank's virtual-clock track, and every
// point-to-point message a send span plus a flow-event arrow to the
// receiving rank. Call before Run; nil detaches. The per-rank track names
// are registered on the tracer.
func (n *Network) AttachTracer(tr *instrument.Tracer) {
	n.tracer = tr
	if tr != nil {
		tr.SetProcessName(instrument.PidMachine, "simulated machine (virtual clock)")
		for p := 0; p < n.P; p++ {
			tr.SetThreadName(instrument.PidMachine, p, fmt.Sprintf("rank %d", p))
		}
	}
}

// Rank is the per-process handle passed to the SPMD body.
type Rank struct {
	ID  int
	net *Network

	Time      float64 // virtual clock, seconds
	BytesSent int64
	MsgsSent  int64
	Flops     int64

	// Fault bookkeeping (zero without a plan). Drops counts delivery
	// attempts the network lost; Retries the retransmissions that recovered
	// them (equal unless a message exhausted its retry budget, which
	// panics); Pauses the pause windows this rank waited out; StallSec the
	// total virtual time the faults cost this rank.
	Drops    int64
	Retries  int64
	Pauses   int64
	StallSec float64

	// pending indexes parked messages by (from, tag): Recv with a backlog of
	// B unrelated messages costs one map probe instead of an O(B) scan, which
	// is the difference between P = 12 and P = 1024 on one box (the dense
	// gs setup all-to-all parks ~P messages per rank). Keys are never
	// deleted — the tag set is small and fixed (per-round collective tags
	// plus the gs exchange tag) — so queue storage is reused across calls.
	pending  map[pendingKey]*pendQ
	recvHold []message // RecvEach scratch: at most one held message per source

	// pool holds received payload buffers by power-of-two size class,
	// rank-local so no locking is needed: callers return consumed buffers
	// with Free, and this rank's next Send copies into one of them. A
	// steady-state exchange (gs, allreduce) therefore allocates nothing.
	// Deliberately not a sync.Pool: the GC may drain one at any time, which
	// would break the zero-allocation guarantee the hot-path tests pin.
	pool [payloadClasses][][]float64

	scalBuf [1]float64 // AllreduceScalar scratch (collectives never nest)
	flowSeq int64      // per-sender flow-id sequence (deterministic, no global state)
	sendSeq int64      // per-sender message sequence feeding the fault plan's draws
}

// pendingKey identifies one (source rank, tag) stream of parked messages.
type pendingKey struct{ from, tag int }

// pendQ is a head-indexed FIFO of parked messages from one (from, tag).
type pendQ struct {
	q    []message
	head int
}

func (p *pendQ) push(m message) { p.q = append(p.q, m) }

func (p *pendQ) pop() (message, bool) {
	if p.head >= len(p.q) {
		return message{}, false
	}
	m := p.q[p.head]
	p.q[p.head] = message{}
	p.head++
	if p.head == len(p.q) {
		p.q = p.q[:0]
		p.head = 0
	}
	return m, true
}

// payloadClasses bounds the pooled size classes at 2^(payloadClasses-1)
// words (larger payloads fall back to plain allocation).
const payloadClasses = 28

// classFor returns the power-of-two size class holding n words (n >= 1).
func classFor(n int) int { return bits.Len(uint(n - 1)) }

// getPayload returns a buffer of length n backed by a pooled power-of-two
// allocation (nil for n == 0).
func (r *Rank) getPayload(n int) []float64 {
	if n == 0 {
		return nil
	}
	c := classFor(n)
	if c < payloadClasses {
		if fl := r.pool[c]; len(fl) > 0 {
			b := fl[len(fl)-1]
			fl[len(fl)-1] = nil
			r.pool[c] = fl[:len(fl)-1]
			return b[:n]
		}
	}
	return make([]float64, n, 1<<c)
}

// Free returns a payload obtained from Recv or RecvEach to this rank's
// buffer pool, to be reused by a later Send. Calling it is optional — an
// unreturned buffer is simply garbage-collected — but the steady-state
// exchanges (gather–scatter, allreduce) free every payload they consume,
// which is what makes them allocation-free. The caller must not touch the
// slice afterwards. Nil and non-pooled slices are ignored.
func (r *Rank) Free(buf []float64) {
	c := cap(buf)
	if c == 0 || c&(c-1) != 0 {
		return // not one of our power-of-two pooled buffers
	}
	cl := classFor(c)
	if cl >= payloadClasses {
		return
	}
	r.pool[cl] = append(r.pool[cl], buf[:0])
}

// ClockState is the checkpointable slice of a rank's communication state:
// the virtual clock, the traffic counters, and the deterministic sequence
// counters that feed trace flow ids and fault draws. Restoring it makes a
// resumed rank continue exactly where the snapshot left off.
type ClockState struct {
	Time      float64
	BytesSent int64
	MsgsSent  int64
	Flops     int64
	Drops     int64
	Retries   int64
	Pauses    int64
	StallSec  float64
	FlowSeq   int64
	SendSeq   int64
}

// Clock captures the rank's current clock state for a checkpoint.
func (r *Rank) Clock() ClockState {
	return ClockState{Time: r.Time, BytesSent: r.BytesSent, MsgsSent: r.MsgsSent,
		Flops: r.Flops, Drops: r.Drops, Retries: r.Retries, Pauses: r.Pauses,
		StallSec: r.StallSec, FlowSeq: r.flowSeq, SendSeq: r.sendSeq}
}

// SetClock restores a checkpointed clock state.
func (r *Rank) SetClock(cs ClockState) {
	r.Time, r.BytesSent, r.MsgsSent, r.Flops = cs.Time, cs.BytesSent, cs.MsgsSent, cs.Flops
	r.Drops, r.Retries, r.Pauses, r.StallSec = cs.Drops, cs.Retries, cs.Pauses, cs.StallSec
	r.flowSeq, r.sendSeq = cs.FlowSeq, cs.SendSeq
}

// maybePause advances the clock past any pause window the rank's clock sits
// inside (the node-loss stand-in: the rank freezes, then resumes with its
// state intact). Called at the start of every clock-advancing operation.
func (r *Rank) maybePause() {
	pl := r.net.faults
	if pl == nil {
		return
	}
	end, hit := pl.PauseEnd(r.ID, r.Time)
	if !hit {
		return
	}
	t0 := r.Time
	r.Time = end
	r.Pauses++
	r.StallSec += end - t0
	if in := r.net.instr; in != nil {
		in.faultPauses.Inc()
		in.stall(end - t0)
	}
	if tr := r.net.tracer; tr.WantsV(r.ID) {
		tr.SpanV(r.ID, "fault/pause", "fault", t0, end, nil)
	}
}

// Run executes body on every rank concurrently and returns the per-rank
// states after completion (for clock/traffic inspection).
func (n *Network) Run(body func(r *Rank)) []*Rank {
	ranks := make([]*Rank, n.P)
	var wg sync.WaitGroup
	wg.Add(n.P)
	for p := 0; p < n.P; p++ {
		r := &Rank{ID: p, net: n, pending: make(map[pendingKey]*pendQ)}
		ranks[p] = r
		go func() {
			defer wg.Done()
			body(r)
		}()
	}
	wg.Wait()
	return ranks
}

// Send transmits data to rank `to` with the given tag. The sender's clock
// advances by the full message cost α + β·bytes (single-port model); the
// message carries its arrival time. Delivery is unbounded: Send never
// blocks, whatever the receiver's backlog.
//
// Under a fault plan, every delivery attempt may be dropped: a dropped
// attempt costs the sender the transmit time plus the retransmit timeout
// before the next try, bounded by the plan's MaxRetries (exhaustion panics
// — a lost message is a simulation-level failure, not a silent hang).
// Matching jitter rules add seeded extra latency. Without a plan the
// arithmetic is bitwise identical to the fault-free path.
func (r *Rank) Send(to, tag int, data []float64) {
	if to == r.ID {
		panic("comm: self-send")
	}
	r.maybePause()
	bytes := 8 * len(data)
	base := r.net.Latency + float64(bytes)*r.net.ByteSec
	var extra float64
	if pl := r.net.faults; pl != nil {
		r.sendSeq++
		extra = pl.SendDelay(r.ID, to, r.sendSeq)
		if extra > 0 {
			r.StallSec += extra
			if in := r.net.instr; in != nil {
				in.stall(extra)
			}
		}
		for attempt := 0; pl.DropAttempt(r.ID, to, r.sendSeq, attempt); attempt++ {
			if attempt >= pl.MaxRetries {
				panic(fmt.Sprintf("comm: message rank %d -> %d (tag %d) lost after %d attempts",
					r.ID, to, tag, attempt+1))
			}
			ta := r.Time
			r.Time += base + pl.RetryTimeout
			r.BytesSent += int64(bytes)
			r.MsgsSent++
			r.Drops++
			r.Retries++
			r.StallSec += base + pl.RetryTimeout
			if in := r.net.instr; in != nil {
				in.sendMsgs.Inc()
				in.sendBytes.Add(int64(bytes))
				in.faultDrops.Inc()
				in.faultRetries.Inc()
				in.stall(base + pl.RetryTimeout)
			}
			if tr := r.net.tracer; tr.WantsV(r.ID) {
				tr.SpanV(r.ID, "fault/retry", "fault", ta, r.Time,
					map[string]any{"to": to, "tag": tag, "attempt": attempt + 1, "bytes": bytes})
			}
		}
	}
	t0 := r.Time
	r.Time += base + extra
	r.BytesSent += int64(bytes)
	r.MsgsSent++
	if in := r.net.instr; in != nil {
		in.sendMsgs.Inc()
		in.sendBytes.Add(int64(bytes))
		in.sendVLat.Observe(base + extra)
	}
	// A flow arrow needs both of its endpoints: under rank sampling the id
	// is generated only when sender and receiver tracks are both recorded,
	// so sampled traces keep every "s" matched by an "f" (tracecheck
	// -flows-closed relies on this).
	var flow string
	if tr := r.net.tracer; tr.WantsV(r.ID) {
		tr.SpanV(r.ID, "send", "comm", t0, r.Time,
			map[string]any{"to": to, "tag": tag, "bytes": bytes})
		if tr.WantsV(to) {
			r.flowSeq++
			flow = fmt.Sprintf("%d.%d", r.ID, r.flowSeq)
			tr.FlowV("s", r.ID, "msg", r.Time, flow)
		}
	}
	// The payload copy keeps Send/Recv value semantics (the caller may
	// overwrite data immediately); the buffer comes from the sender's pool so
	// sustained traffic recycles returned receive buffers instead of
	// allocating per message.
	cp := r.getPayload(len(data))
	copy(cp, data)
	r.net.inboxes[to].put(message{from: r.ID, tag: tag, data: cp, arrival: r.Time, flow: flow})
}

// Recv blocks until a message with the given source and tag arrives and
// returns its payload, advancing the receiver's clock to at least the
// message arrival time. The returned buffer may be handed back with Free
// once consumed; holding on to it is also fine.
func (r *Rank) Recv(from, tag int) []float64 {
	if q := r.pending[pendingKey{from, tag}]; q != nil {
		if m, ok := q.pop(); ok {
			return r.deliver(m)
		}
	}
	for {
		m := r.net.inboxes[r.ID].take()
		if m.from == from && m.tag == tag {
			return r.deliver(m)
		}
		r.park(m)
	}
}

// park files a non-matching message under its (from, tag) stream.
func (r *Rank) park(m message) {
	k := pendingKey{m.from, m.tag}
	q := r.pending[k]
	if q == nil {
		q = &pendQ{}
		r.pending[k] = q
	}
	q.push(m)
}

// RecvEach receives exactly one message with the given tag from every rank
// in froms (which must be strictly ascending), storing the payload from
// froms[i] into out[i]. Unlike a loop of Recv calls, it consumes arrivals
// in whatever order the network delivers them — the caller never blocks on
// a slow sender while faster neighbours' messages queue up — holding at
// most one message per source so a fast neighbour's *next*-round message
// stays parked for the next call. Clock advancement, pause handling, and
// trace emission then run in froms order, so traces, fault draws, and the
// final clock are identical to the sequential-Recv formulation (deliver
// only max-advances the clock, making the result order-independent) and
// deterministic run to run. Pass consumed payloads to Free.
func (r *Rank) RecvEach(froms []int, tag int, out [][]float64) {
	if len(out) != len(froms) {
		panic("comm: RecvEach out length mismatch")
	}
	if cap(r.recvHold) < len(froms) {
		r.recvHold = make([]message, len(froms))
	}
	hold := r.recvHold[:len(froms)]
	remaining := 0
	for i, f := range froms {
		hold[i] = message{from: -1}
		if q := r.pending[pendingKey{f, tag}]; q != nil {
			if m, ok := q.pop(); ok {
				hold[i] = m
				continue
			}
		}
		remaining++
	}
	for remaining > 0 {
		m := r.net.inboxes[r.ID].take()
		if m.tag == tag {
			if i := sort.SearchInts(froms, m.from); i < len(froms) && froms[i] == m.from && hold[i].from < 0 {
				hold[i] = m
				remaining--
				continue
			}
		}
		r.park(m)
	}
	for i := range hold {
		out[i] = r.deliver(hold[i])
		hold[i] = message{}
	}
}

// deliver advances the receiver's clock to the message arrival time and
// closes the trace flow arrow opened by the matching Send. A receiver
// paused when the message lands picks it up once the pause window ends.
func (r *Rank) deliver(m message) []float64 {
	if m.arrival > r.Time {
		r.Time = m.arrival
	}
	r.maybePause()
	if tr := r.net.tracer; tr.WantsV(r.ID) {
		if m.flow != "" {
			tr.FlowV("f", r.ID, "msg", r.Time, m.flow)
		}
		tr.InstantV(r.ID, "recv", "comm", r.Time,
			map[string]any{"from": m.from, "tag": m.tag, "bytes": 8 * len(m.data)})
	}
	return m.data
}

// Compute advances the virtual clock by the modeled time of nflops local
// floating-point operations. Under a fault plan, matching straggler windows
// multiply the cost; the excess appears as a fault span on the rank's track
// so the trace shows exactly where the straggler bit.
func (r *Rank) Compute(nflops int64) {
	r.Flops += nflops
	dt := float64(nflops) * r.net.FlopSec
	if pl := r.net.faults; pl != nil {
		r.maybePause()
		if f := pl.ComputeFactor(r.ID, r.Time); f != 1 {
			t0 := r.Time
			r.Time += dt * f
			extra := dt*f - dt
			r.StallSec += extra
			if in := r.net.instr; in != nil {
				in.stall(extra)
			}
			if tr := r.net.tracer; extra > 0 && tr.WantsV(r.ID) {
				tr.SpanV(r.ID, "fault/straggler", "fault", t0+dt, r.Time,
					map[string]any{"factor": f})
			}
			return
		}
	}
	r.Time += dt
}

// P returns the number of ranks.
func (r *Rank) P() int { return r.net.P }

// ---- Collectives ----

// tagBase offsets keep collective traffic distinct from user tags; user tags
// must stay below 1<<20.
const (
	tagAllreduce = 1 << 20
	tagBcast     = 1 << 21
	tagGather    = 1 << 22
	tagBarrier   = 1 << 23
)

// ReduceOp combines two equal-length vectors elementwise into dst.
type ReduceOp func(dst, src []float64)

// OpSum adds src into dst.
func OpSum(dst, src []float64) {
	for i, v := range src {
		dst[i] += v
	}
}

// OpMax takes the elementwise maximum.
func OpMax(dst, src []float64) {
	for i, v := range src {
		if v > dst[i] {
			dst[i] = v
		}
	}
}

// OpMin takes the elementwise minimum.
func OpMin(dst, src []float64) {
	for i, v := range src {
		if v < dst[i] {
			dst[i] = v
		}
	}
}

// Allreduce combines data across all ranks with op, leaving the result in
// data on every rank. Power-of-two rank counts use recursive doubling
// (log₂P rounds); general counts fall back to a binomial-tree reduce+bcast.
func (r *Rank) Allreduce(data []float64, op ReduceOp) {
	in, tr := r.net.instr, r.net.tracer
	if in == nil && tr == nil {
		r.allreduce(data, op)
		return
	}
	t0, m0, b0 := r.Time, r.MsgsSent, r.BytesSent
	r.allreduce(data, op)
	if in != nil {
		in.allreduce.record(r.Time-t0, r.MsgsSent-m0, r.BytesSent-b0)
	}
	if tr.WantsV(r.ID) {
		tr.SpanV(r.ID, "allreduce", "comm", t0, r.Time,
			map[string]any{"words": len(data), "msgs": r.MsgsSent - m0, "bytes": r.BytesSent - b0})
	}
}

func (r *Rank) allreduce(data []float64, op ReduceOp) {
	p := r.net.P
	if p == 1 {
		return
	}
	if p&(p-1) == 0 {
		for dist, round := 1, 0; dist < p; dist, round = dist<<1, round+1 {
			peer := r.ID ^ dist
			tag := tagAllreduce + round
			r.Send(peer, tag, data)
			got := r.Recv(peer, tag)
			op(data, got)
			r.Free(got)
		}
		return
	}
	r.reduceTree(data, op)
	r.bcastTree(data)
}

// reduceTree reduces to rank 0 along a binomial tree.
func (r *Rank) reduceTree(data []float64, op ReduceOp) {
	p := r.net.P
	for dist := 1; dist < p; dist <<= 1 {
		if r.ID&(2*dist-1) == 0 {
			src := r.ID + dist
			if src < p {
				got := r.Recv(src, tagAllreduce+dist)
				op(data, got)
				r.Free(got)
			}
		} else if r.ID&(dist-1) == 0 {
			r.Send(r.ID-dist, tagAllreduce+dist, data)
			return
		}
	}
}

// bcastTree broadcasts rank 0's data along a binomial tree (fan-out): in
// round dist, every rank that already holds the data and is a multiple of
// 2·dist forwards it to rank+dist.
func (r *Rank) bcastTree(data []float64) {
	p := r.net.P
	mask := 1
	for mask < p {
		mask <<= 1
	}
	received := r.ID == 0
	for dist := mask >> 1; dist >= 1; dist >>= 1 {
		switch {
		case received && r.ID%(2*dist) == 0 && r.ID+dist < p:
			r.Send(r.ID+dist, tagBcast+dist, data)
		case !received && r.ID%(2*dist) == dist:
			got := r.Recv(r.ID-dist, tagBcast+dist)
			copy(data, got)
			r.Free(got)
			received = true
		}
	}
	if !received {
		panic(fmt.Sprintf("comm: bcast failed to reach rank %d", r.ID))
	}
}

// Bcast broadcasts root's data to all ranks (binomial tree rooted at 0;
// non-zero roots relay through 0).
func (r *Rank) Bcast(data []float64, root int) {
	in, tr := r.net.instr, r.net.tracer
	if in == nil && tr == nil {
		r.bcast(data, root)
		return
	}
	t0, m0, b0 := r.Time, r.MsgsSent, r.BytesSent
	r.bcast(data, root)
	if in != nil {
		in.bcast.record(r.Time-t0, r.MsgsSent-m0, r.BytesSent-b0)
	}
	if tr.WantsV(r.ID) {
		tr.SpanV(r.ID, "bcast", "comm", t0, r.Time,
			map[string]any{"words": len(data), "root": root, "msgs": r.MsgsSent - m0, "bytes": r.BytesSent - b0})
	}
}

func (r *Rank) bcast(data []float64, root int) {
	if r.net.P == 1 {
		return
	}
	if root != 0 {
		if r.ID == root {
			r.Send(0, tagBcast, data)
		} else if r.ID == 0 {
			got := r.Recv(root, tagBcast)
			copy(data, got)
			r.Free(got)
		}
	}
	r.bcastTree(data)
}

// Barrier synchronizes all ranks (allreduce of a scalar).
func (r *Rank) Barrier() {
	buf := []float64{0}
	in, tr := r.net.instr, r.net.tracer
	if in == nil && tr == nil {
		r.allreduce(buf, OpSum)
		return
	}
	t0, m0, b0 := r.Time, r.MsgsSent, r.BytesSent
	r.allreduce(buf, OpSum)
	if in != nil {
		in.barrier.record(r.Time-t0, r.MsgsSent-m0, r.BytesSent-b0)
	}
	if tr.WantsV(r.ID) {
		tr.SpanV(r.ID, "barrier", "comm", t0, r.Time,
			map[string]any{"msgs": r.MsgsSent - m0, "bytes": r.BytesSent - b0})
	}
}

// AllreduceScalar is a convenience for a single value. The scratch word
// lives on the rank (collectives never nest), so the per-iteration scalar
// reductions of a CG loop allocate nothing.
func (r *Rank) AllreduceScalar(v float64, op ReduceOp) float64 {
	r.scalBuf[0] = v
	r.Allreduce(r.scalBuf[:], op)
	return r.scalBuf[0]
}

// Gather collects each rank's data at root (concatenated by rank id, all
// slices must share one length) and returns the concatenation at root (nil
// elsewhere). Binomial-tree fan-in.
func (r *Rank) Gather(data []float64, root int) []float64 {
	in, tr := r.net.instr, r.net.tracer
	if in == nil && tr == nil {
		return r.gather(data, root)
	}
	t0, m0, b0 := r.Time, r.MsgsSent, r.BytesSent
	out := r.gather(data, root)
	if in != nil {
		in.gather.record(r.Time-t0, r.MsgsSent-m0, r.BytesSent-b0)
	}
	if tr.WantsV(r.ID) {
		tr.SpanV(r.ID, "gather", "comm", t0, r.Time,
			map[string]any{"words": len(data), "root": root, "msgs": r.MsgsSent - m0, "bytes": r.BytesSent - b0})
	}
	return out
}

func (r *Rank) gather(data []float64, root int) []float64 {
	p := r.net.P
	n := len(data)
	if p == 1 {
		out := make([]float64, n)
		copy(out, data)
		return out
	}
	// Shift ids so the tree is rooted at `root`.
	vid := (r.ID - root + p) % p
	// own[i]: accumulated block starting at vid.
	acc := make([]float64, n)
	copy(acc, data)
	for dist := 1; dist < p; dist <<= 1 {
		if vid&(2*dist-1) == 0 {
			srcV := vid + dist
			if srcV < p {
				src := (srcV + root) % p
				got := r.Recv(src, tagGather+dist)
				acc = append(acc, got...)
				r.Free(got)
			}
		} else if vid&(dist-1) == 0 {
			dst := (vid - dist + root) % p
			r.Send(dst, tagGather+dist, acc)
			return nil
		}
	}
	if r.ID != root {
		return nil
	}
	// acc holds blocks ordered by virtual id; rotate to physical order.
	out := make([]float64, p*n)
	for v := 0; v < p; v++ {
		phys := (v + root) % p
		copy(out[phys*n:(phys+1)*n], acc[v*n:(v+1)*n])
	}
	return out
}

// MaxTime returns the maximum virtual clock across ranks (the modeled
// parallel completion time).
func MaxTime(ranks []*Rank) float64 {
	t := 0.0
	for _, r := range ranks {
		if r.Time > t {
			t = r.Time
		}
	}
	return t
}

// TotalBytes returns the total traffic volume.
func TotalBytes(ranks []*Rank) int64 {
	var b int64
	for _, r := range ranks {
		b += r.BytesSent
	}
	return b
}
