package comm

import (
	"math"
	"sync/atomic"
	"testing"
)

func machine(p int) Machine {
	return Machine{P: p, Latency: 1e-5, ByteSec: 1e-8, FlopSec: 1e-8}
}

func TestSendRecv(t *testing.T) {
	net := NewNetwork(machine(2))
	var got atomic.Value
	net.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, 7, []float64{1, 2, 3})
		} else {
			got.Store(r.Recv(0, 7))
		}
	})
	d := got.Load().([]float64)
	if len(d) != 3 || d[0] != 1 || d[2] != 3 {
		t.Fatalf("bad payload %v", d)
	}
}

func TestRecvOutOfOrderTags(t *testing.T) {
	net := NewNetwork(machine(2))
	var a, b atomic.Value
	net.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, 1, []float64{1})
			r.Send(1, 2, []float64{2})
		} else {
			// Receive in reverse order: tag 2 first.
			b.Store(r.Recv(0, 2))
			a.Store(r.Recv(0, 1))
		}
	})
	if a.Load().([]float64)[0] != 1 || b.Load().([]float64)[0] != 2 {
		t.Fatal("out-of-order receive failed")
	}
}

func TestAllreduceSumAllP(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 7, 8, 16, 31} {
		net := NewNetwork(machine(p))
		results := make([]float64, p)
		net.Run(func(r *Rank) {
			data := []float64{float64(r.ID + 1)}
			r.Allreduce(data, OpSum)
			results[r.ID] = data[0]
		})
		want := float64(p*(p+1)) / 2
		for id, got := range results {
			if got != want {
				t.Fatalf("P=%d rank %d: allreduce sum %g want %g", p, id, got, want)
			}
		}
	}
}

func TestAllreduceMinMax(t *testing.T) {
	p := 8
	net := NewNetwork(machine(p))
	mins := make([]float64, p)
	maxs := make([]float64, p)
	net.Run(func(r *Rank) {
		mn := []float64{float64(r.ID)}
		r.Allreduce(mn, OpMin)
		mins[r.ID] = mn[0]
		mx := []float64{float64(r.ID)}
		r.Allreduce(mx, OpMax)
		maxs[r.ID] = mx[0]
	})
	for id := 0; id < p; id++ {
		if mins[id] != 0 || maxs[id] != float64(p-1) {
			t.Fatalf("rank %d: min %g max %g", id, mins[id], maxs[id])
		}
	}
}

func TestBcast(t *testing.T) {
	for _, p := range []int{2, 3, 6, 8, 13} {
		for _, root := range []int{0, p - 1} {
			net := NewNetwork(machine(p))
			results := make([]float64, p)
			net.Run(func(r *Rank) {
				data := []float64{-1}
				if r.ID == root {
					data[0] = 42
				}
				r.Bcast(data, root)
				results[r.ID] = data[0]
			})
			for id, got := range results {
				if got != 42 {
					t.Fatalf("P=%d root=%d rank %d: bcast got %g", p, root, id, got)
				}
			}
		}
	}
}

func TestGather(t *testing.T) {
	for _, p := range []int{1, 2, 4, 5, 8, 11} {
		for _, root := range []int{0, p / 2} {
			net := NewNetwork(machine(p))
			var out atomic.Value
			net.Run(func(r *Rank) {
				data := []float64{float64(10 * r.ID), float64(10*r.ID + 1)}
				g := r.Gather(data, root)
				if r.ID == root {
					out.Store(g)
				} else if g != nil {
					t.Errorf("non-root rank %d got non-nil gather", r.ID)
				}
			})
			g := out.Load().([]float64)
			if len(g) != 2*p {
				t.Fatalf("P=%d: gather length %d", p, len(g))
			}
			for id := 0; id < p; id++ {
				if g[2*id] != float64(10*id) || g[2*id+1] != float64(10*id+1) {
					t.Fatalf("P=%d root=%d: block %d wrong: %v", p, root, id, g[2*id:2*id+2])
				}
			}
		}
	}
}

func TestVirtualClockAdvances(t *testing.T) {
	net := NewNetwork(machine(2))
	ranks := net.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, 0, make([]float64, 100))
		} else {
			r.Recv(0, 0)
			r.Compute(1000)
		}
	})
	// Sender: α + 800 bytes * β = 1e-5 + 8e-6.
	if d := ranks[0].Time - (1e-5 + 800e-8); math.Abs(d) > 1e-12 {
		t.Errorf("sender clock %g", ranks[0].Time)
	}
	// Receiver: arrival + compute.
	want := ranks[0].Time + 1000e-8
	if d := ranks[1].Time - want; math.Abs(d) > 1e-12 {
		t.Errorf("receiver clock %g want %g", ranks[1].Time, want)
	}
	if ranks[0].BytesSent != 800 || ranks[0].MsgsSent != 1 {
		t.Error("traffic accounting wrong")
	}
	if TotalBytes(ranks) != 800 {
		t.Error("TotalBytes wrong")
	}
	if MaxTime(ranks) != ranks[1].Time {
		t.Error("MaxTime wrong")
	}
}

func TestAllreduceClockScalesLogP(t *testing.T) {
	// Virtual completion time of a scalar allreduce should grow ~ 2α·log₂P.
	times := map[int]float64{}
	for _, p := range []int{4, 16, 64} {
		net := NewNetwork(machine(p))
		ranks := net.Run(func(r *Rank) {
			r.AllreduceScalar(1, OpSum)
		})
		times[p] = MaxTime(ranks)
	}
	if !(times[4] < times[16] && times[16] < times[64]) {
		t.Errorf("allreduce time not increasing with P: %v", times)
	}
	// Recursive doubling: exactly log2(P) rounds, each round ≈ α+8β both ways.
	round := 1e-5 + 8e-8
	if math.Abs(times[16]-8*round) > 4*round {
		t.Errorf("P=16 allreduce time %g not near %g", times[16], 8*round)
	}
}

func TestBarrier(t *testing.T) {
	p := 9
	net := NewNetwork(machine(p))
	var counter atomic.Int64
	after := make([]int64, p)
	net.Run(func(r *Rank) {
		counter.Add(1)
		r.Barrier()
		after[r.ID] = counter.Load()
	})
	for id, v := range after {
		if v != int64(p) {
			t.Fatalf("rank %d passed barrier before all arrived (saw %d)", id, v)
		}
	}
}

func TestASCIRedModel(t *testing.T) {
	m := ASCIRed(512)
	if m.P != 512 || m.Latency <= 0 || m.ByteSec <= 0 || m.FlopSec <= 0 {
		t.Error("ASCIRed model malformed")
	}
}

func TestSendNeverBlocks(t *testing.T) {
	// Regression: inboxes used to be channels of capacity 8P+64, so a rank
	// sending more than that before its peer started receiving deadlocked
	// the whole network. Flood well past the old capacity while the
	// receiver provably waits for every send to finish first.
	p := 2
	flood := 8*p + 64 + 500
	net := NewNetwork(machine(p))
	allSent := make(chan struct{})
	var sum atomic.Int64
	net.Run(func(r *Rank) {
		if r.ID == 0 {
			for i := 0; i < flood; i++ {
				r.Send(1, i, []float64{float64(i)})
			}
			close(allSent)
			return
		}
		<-allSent // only start receiving once the flood is complete
		for i := 0; i < flood; i++ {
			sum.Add(int64(r.Recv(0, i)[0]))
		}
	})
	if want := int64(flood) * int64(flood-1) / 2; sum.Load() != want {
		t.Fatalf("flood sum %d want %d", sum.Load(), want)
	}
}

func TestPayloadIsolation(t *testing.T) {
	// Mutating the sender's buffer after Send must not corrupt the message.
	net := NewNetwork(machine(2))
	var got atomic.Value
	net.Run(func(r *Rank) {
		if r.ID == 0 {
			buf := []float64{5}
			r.Send(1, 0, buf)
			buf[0] = -1
		} else {
			got.Store(r.Recv(0, 0))
		}
	})
	if got.Load().([]float64)[0] != 5 {
		t.Error("message payload aliases sender buffer")
	}
}
