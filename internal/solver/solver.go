// Package solver provides the Krylov machinery of Sec. 5: preconditioned
// conjugate gradients with pluggable operator/preconditioner/inner-product
// (so the same code drives element-local SEM vectors and plain global
// vectors), and the projection-onto-previous-solutions accelerator for
// successive right-hand sides (Fischer 1998): the solution is first
// projected onto an A-orthonormal basis of up to L previous solutions and
// CG solves only for the perturbation, cutting pressure iterations by
// 2.5–5x (Fig. 4 of the paper).
package solver

import (
	"math"

	"repro/internal/instrument"
)

// Operator applies a linear operator: out = A·in. out never aliases in.
type Operator func(out, in []float64)

// Dot is an inner product (for element-local SEM storage it must count each
// global node once).
type Dot func(u, v []float64) float64

// Stats reports one linear solve.
type Stats struct {
	Iterations int
	Converged  bool
	InitialRes float64 // ‖b - A x₀‖ before iterating (after projection)
	FinalRes   float64
	ResHist    []float64 // residual norm after each iteration (incl. initial)
}

// Options controls CG.
type Options struct {
	Tol      float64 // convergence when ‖r‖ ≤ Tol (absolute) or Tol·‖b‖ (relative)
	Relative bool
	MaxIter  int
	Precond  Operator // nil = identity
	History  bool     // record ResHist

	// Instrumentation (optional; nil handles no-op): accumulated solve
	// wall time and iteration count across calls sharing these handles.
	Time  *instrument.Timer
	Iters *instrument.Counter
	// Converged is set to 1/0 after each solve (last-solve convergence
	// indicator; nil no-ops).
	Converged *instrument.Gauge
	// IterHist observes the iteration count of each solve, so the report
	// carries the distribution (p50/p99 of CG iterations per step) and not
	// just the total. Safe to share across ranks: Observe is atomic.
	IterHist *instrument.Histogram
	// Tracer wraps the whole solve in a wall-clock span named TraceName
	// (default "cg") carrying iterations/convergence args. Leave nil when
	// many solves run concurrently on one track (the begin/end pairs would
	// interleave).
	Tracer    *instrument.Tracer
	TraceName string

	// Scratch, when non-nil, supplies the four CG work vectors so repeated
	// solves (e.g. one per time step) allocate nothing. A Scratch must not
	// be shared by solves running concurrently.
	Scratch *Scratch
}

// Scratch holds the CG work vectors; it grows on demand and may be reused
// across solves of different sizes.
type Scratch struct {
	r, z, p, q, xb []float64
}

// vectors returns the five length-n work arrays, growing the backing
// storage if needed.
func (s *Scratch) vectors(n int) (r, z, p, q, xb []float64) {
	if cap(s.r) < n {
		s.r = make([]float64, n)
		s.z = make([]float64, n)
		s.p = make([]float64, n)
		s.q = make([]float64, n)
		s.xb = make([]float64, n)
	}
	return s.r[:n], s.z[:n], s.p[:n], s.q[:n], s.xb[:n]
}

// CG solves A x = b by preconditioned conjugate gradients, starting from
// the supplied x (commonly zero). Work arrays are allocated internally.
func CG(apply Operator, dot Dot, x, b []float64, opt Options) Stats {
	t0 := opt.Time.Begin()
	var sp instrument.Span
	if opt.Tracer != nil {
		name := opt.TraceName
		if name == "" {
			name = "cg"
		}
		sp = opt.Tracer.Begin(instrument.PidWall, 0, name, "solver")
	}
	st := cg(apply, dot, x, b, opt)
	if opt.Tracer != nil {
		sp.EndWith(map[string]any{
			"iterations": st.Iterations,
			"converged":  st.Converged,
			"final_res":  st.FinalRes,
		})
	}
	opt.Time.End(t0)
	opt.Iters.Add(int64(st.Iterations))
	opt.IterHist.Observe(float64(st.Iterations))
	if st.Converged {
		opt.Converged.Set(1)
	} else {
		opt.Converged.Set(0)
	}
	return st
}

func cg(apply Operator, dot Dot, x, b []float64, opt Options) Stats {
	n := len(b)
	var r, z, p, q, xb []float64
	if opt.Scratch != nil {
		r, z, p, q, xb = opt.Scratch.vectors(n)
	} else {
		r = make([]float64, n)
		z = make([]float64, n)
		p = make([]float64, n)
		q = make([]float64, n)
		xb = make([]float64, n)
	}

	// r = b - A x.
	xNonZero := false
	for _, v := range x {
		if v != 0 {
			xNonZero = true
			break
		}
	}
	if xNonZero {
		apply(q, x)
		for i := range r {
			r[i] = b[i] - q[i]
		}
	} else {
		copy(r, b)
	}
	tol := opt.Tol
	if opt.Relative {
		tol *= math.Sqrt(dot(b, b))
	}
	res := math.Sqrt(dot(r, r))
	st := Stats{InitialRes: res}
	if opt.History {
		st.ResHist = append(st.ResHist, res)
	}
	if res <= tol {
		st.Converged = true
		st.FinalRes = res
		return st
	}
	precond := opt.Precond
	if precond == nil {
		precond = func(out, in []float64) { copy(out, in) }
	}
	precond(z, r)
	copy(p, z)
	rz := dot(r, z)
	maxIter := opt.MaxIter
	if maxIter <= 0 {
		maxIter = n
	}
	// Every exit that is not a clean convergence returns the best iterate
	// seen, not the last one. When the tolerance sits below what finite
	// precision can deliver, CG idles at the roundoff floor where p·q can
	// be arbitrarily small but positive; a single step with the resulting
	// huge alpha catapults x far from the solution while the residual jumps
	// several orders. Which iteration that happens on depends on rounding,
	// so without the best-iterate restore the returned x is effectively
	// arbitrary — SPMD runs would disagree with serial by O(1e-3) from
	// reduction-order roundoff alone. All decisions below derive from
	// collective dots, so they are uniform across SPMD ranks.
	best := res
	copy(xb, x)
	for it := 1; it <= maxIter; it++ {
		apply(q, p)
		pq := dot(p, q)
		if pq <= 0 {
			// Operator not SPD on this subspace (or breakdown): stop.
			st.Iterations = it - 1
			st.FinalRes = best
			copy(x, xb)
			return st
		}
		alpha := rz / pq
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * q[i]
		}
		res = math.Sqrt(dot(r, r))
		if opt.History {
			st.ResHist = append(st.ResHist, res)
		}
		if res <= tol {
			st.Iterations = it
			st.Converged = true
			st.FinalRes = res
			return st
		}
		if res < best {
			best = res
			copy(xb, x)
		} else if !(res <= 1e4*best) {
			// Four orders above the best achieved (or NaN): diverging in
			// roundoff. Hand back the best iterate.
			st.Iterations = it
			st.FinalRes = best
			copy(x, xb)
			return st
		}
		precond(z, r)
		rz2 := dot(r, z)
		beta := rz2 / rz
		rz = rz2
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	st.Iterations = maxIter
	st.FinalRes = best
	copy(x, xb)
	return st
}

// Projector implements projection onto previous solutions. The basis
// {x₁…x_l} is kept A-orthonormal (x_iᵀ A x_j = δ_ij) together with the
// stored products A x_i, so the best previous-solution approximation of a
// new right-hand side costs only inner products, and maintaining the basis
// costs one extra operator application per solve — the paper's "two
// matrix-vector products in E per timestep".
type Projector struct {
	L     int // capacity (the paper uses L ~ 25)
	apply Operator
	dot   Dot
	xs    [][]float64 // A-orthonormal basis
	axs   [][]float64 // A·basis

	// Allocation-free steady state: retired basis vectors go on a freelist
	// for update() to reuse, and the per-solve work vectors live here.
	free   [][]float64
	alphas []float64
	xbar   []float64
	rhs    []float64

	// Instrumentation (optional; nil handles no-op).
	ProjectTime *instrument.Timer // projection + basis-update overhead
	BasisSize   *instrument.Gauge // basis dimension used per solve
	Savings     *instrument.Gauge // fraction of ‖b‖ removed by projection
}

// NewProjector creates a projector with basis capacity l.
func NewProjector(l int, apply Operator, dot Dot) *Projector {
	return &Projector{L: l, apply: apply, dot: dot}
}

// Len returns the current basis size.
func (p *Projector) Len() int { return len(p.xs) }

// State returns deep copies of the A-orthonormal basis and its operator
// images, the projector's whole cross-solve memory: restoring them into a
// fresh projector reproduces the projected solves bitwise. Used by the
// checkpoint/restart machinery.
func (p *Projector) State() (xs, axs [][]float64) {
	for k := range p.xs {
		xs = append(xs, append([]float64(nil), p.xs[k]...))
		axs = append(axs, append([]float64(nil), p.axs[k]...))
	}
	return xs, axs
}

// Restore replaces the basis with deep copies of a previously captured
// State, discarding whatever the projector currently holds.
func (p *Projector) Restore(xs, axs [][]float64) {
	p.Reset()
	for k := range xs {
		x := p.grab(len(xs[k]))
		copy(x, xs[k])
		ax := p.grab(len(axs[k]))
		copy(ax, axs[k])
		p.xs = append(p.xs, x)
		p.axs = append(p.axs, ax)
	}
}

// Reset discards the basis (the vectors are kept for reuse).
func (p *Projector) Reset() {
	p.free = append(p.free, p.xs...)
	p.free = append(p.free, p.axs...)
	p.xs, p.axs = p.xs[:0], p.axs[:0]
}

// grab returns a length-n work vector, reusing a retired basis vector when
// one is available.
func (p *Projector) grab(n int) []float64 {
	if k := len(p.free); k > 0 {
		v := p.free[k-1]
		p.free = p.free[:k-1]
		if cap(v) >= n {
			return v[:n]
		}
	}
	return make([]float64, n)
}

// ProjectAndSolve performs the full projected solve of A x = b:
// project onto the basis, run CG on the perturbation, update the basis with
// the new solution, and return the total solution and the CG stats.
func (p *Projector) ProjectAndSolve(x, b []float64, opt Options) Stats {
	n := len(b)
	t0 := p.ProjectTime.Begin()
	if cap(p.alphas) < p.L {
		p.alphas = make([]float64, p.L)
	}
	alphas := p.alphas[:len(p.xs)]
	for k, xk := range p.xs {
		alphas[k] = p.dot(xk, b)
	}
	if cap(p.xbar) < n {
		p.xbar = make([]float64, n)
		p.rhs = make([]float64, n)
	}
	xbar, rhs := p.xbar[:n], p.rhs[:n]
	for i := range xbar {
		xbar[i] = 0
	}
	copy(rhs, b)
	for k := range p.xs {
		a := alphas[k]
		xk, axk := p.xs[k], p.axs[k]
		for i := 0; i < n; i++ {
			xbar[i] += a * xk[i]
			rhs[i] -= a * axk[i]
		}
	}
	p.ProjectTime.End(t0)
	p.BasisSize.Set(float64(len(p.xs)))
	if p.Savings != nil {
		nb := math.Sqrt(p.dot(b, b))
		nr := math.Sqrt(p.dot(rhs, rhs))
		if nb > 0 {
			p.Savings.Set(1 - nr/nb)
		}
	}
	for i := range x {
		x[i] = 0
	}
	st := CG(p.apply, p.dot, x, rhs, opt)
	t1 := p.ProjectTime.Begin()
	for i := range x {
		x[i] += xbar[i]
	}
	p.update(x)
	p.ProjectTime.End(t1)
	return st
}

// update A-orthonormalizes x against the basis and appends it; when the
// basis is full it restarts from the current solution alone.
func (p *Projector) update(x []float64) {
	n := len(x)
	if len(p.xs) >= p.L {
		p.Reset()
	}
	w := p.grab(n)
	copy(w, x)
	aw := p.grab(n)
	p.apply(aw, w) // the one extra operator application per solve
	norm0 := p.dot(w, aw)
	// Two Gram-Schmidt passes for robustness against near-dependence.
	for pass := 0; pass < 2; pass++ {
		for k := range p.xs {
			beta := p.dot(p.axs[k], w)
			xk, axk := p.xs[k], p.axs[k]
			for i := 0; i < n; i++ {
				w[i] -= beta * xk[i]
				aw[i] -= beta * axk[i]
			}
		}
	}
	norm2 := p.dot(w, aw)
	// Reject candidates that are (numerically) inside the span: normalizing
	// roundoff noise would poison the basis and destabilize later solves.
	if norm2 <= 0 || math.IsNaN(norm2) || norm2 <= 1e-12*norm0 {
		p.free = append(p.free, w, aw)
		return
	}
	inv := 1 / math.Sqrt(norm2)
	for i := 0; i < n; i++ {
		w[i] *= inv
		aw[i] *= inv
	}
	p.xs = append(p.xs, w)
	p.axs = append(p.axs, aw)
}
