package solver

// precondcache.go persists the preconditioner-selection table across runs,
// keyed — like la's matmul tune cache — by CPU model + Go version: trial
// timings are machine-specific, so a selection tuned elsewhere is rejected
// with la.ErrCacheMismatch and the caller re-trials.

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/la"
)

type precondCacheFile struct {
	Key     string              `json:"key"`
	Entries []precondCacheEntry `json:"entries"`
}

type precondCacheEntry struct {
	K       int     `json:"k"`
	N       int     `json:"n"`
	Dim     int     `json:"dim"`
	P       int     `json:"p"`
	Tol     float64 `json:"tol"`
	Precond string  `json:"precond"`
}

// SavePrecondCache writes t to path as JSON under this machine's cache key,
// atomically (concurrent sessions may save at once).
func SavePrecondCache(path string, t *PrecondTable) error {
	f := precondCacheFile{Key: la.CacheKey()}
	for _, k := range t.Keys() {
		name, _ := t.Lookup(k)
		f.Entries = append(f.Entries, precondCacheEntry{
			K: k.K, N: k.N, Dim: k.Dim, P: k.P, Tol: k.Tol, Precond: name,
		})
	}
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := la.WriteFileAtomic(path, b); err != nil {
		return fmt.Errorf("solver: precond cache: %w", err)
	}
	return nil
}

// LoadPrecondCache reads a table saved by SavePrecondCache. A file tuned on
// a different CPU model or Go version returns an error wrapping
// la.ErrCacheMismatch; unreadable or malformed files return a plain error.
func LoadPrecondCache(path string) (*PrecondTable, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f precondCacheFile
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("solver: precond cache %s: %w", path, err)
	}
	if key := la.CacheKey(); f.Key != key {
		return nil, fmt.Errorf("%w: file tuned on %q, this machine is %q", la.ErrCacheMismatch, f.Key, key)
	}
	t := &PrecondTable{m: make(map[PrecondKey]string, len(f.Entries))}
	for _, e := range f.Entries {
		if e.Precond == "" {
			return nil, fmt.Errorf("solver: precond cache %s: empty variant name", path)
		}
		t.m[PrecondKey{K: e.K, N: e.N, Dim: e.Dim, P: e.P, Tol: e.Tol}] = e.Precond
	}
	return t, nil
}
