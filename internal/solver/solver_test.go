package solver

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/la"
)

func denseOp(a []float64, n int) Operator {
	return func(out, in []float64) { la.MatVec(out, a, in, n, n) }
}

func plainDot(u, v []float64) float64 { return la.Dot(u, v) }

func spd(rng *rand.Rand, n int) []float64 {
	m := make([]float64, n*n)
	for i := range m {
		m[i] = rng.NormFloat64()
	}
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += m[k*n+i] * m[k*n+j]
			}
			a[i*n+j] = s
		}
		a[i*n+i] += 1
	}
	return a
}

func TestCGSolvesSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 40
	a := spd(rng, n)
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	la.MatVec(b, a, xTrue, n, n)
	x := make([]float64, n)
	st := CG(denseOp(a, n), plainDot, x, b, Options{Tol: 1e-12, Relative: true, MaxIter: 500, History: true})
	if !st.Converged {
		t.Fatalf("CG failed: %+v", st)
	}
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-8 {
			t.Fatalf("CG solution wrong at %d", i)
		}
	}
	if len(st.ResHist) != st.Iterations+1 {
		t.Errorf("history length %d, iterations %d", len(st.ResHist), st.Iterations)
	}
	if st.ResHist[0] != st.InitialRes {
		t.Error("history[0] should be the initial residual")
	}
}

func TestCGWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 30
	a := spd(rng, n)
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	la.MatVec(b, a, xTrue, n, n)
	// Start exactly at the solution: zero iterations.
	x := append([]float64(nil), xTrue...)
	st := CG(denseOp(a, n), plainDot, x, b, Options{Tol: 1e-10, MaxIter: 100})
	if st.Iterations != 0 || !st.Converged {
		t.Errorf("warm start should converge immediately: %+v", st)
	}
}

func TestCGZeroRHS(t *testing.T) {
	n := 10
	a := spd(rand.New(rand.NewSource(3)), n)
	x := make([]float64, n)
	st := CG(denseOp(a, n), plainDot, x, make([]float64, n), Options{Tol: 1e-12, MaxIter: 10})
	if !st.Converged || st.Iterations != 0 {
		t.Errorf("zero RHS should converge instantly: %+v", st)
	}
}

func TestCGMaxIter(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 50
	a := spd(rng, n)
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	st := CG(denseOp(a, n), plainDot, x, b, Options{Tol: 1e-30, MaxIter: 3})
	if st.Converged || st.Iterations != 3 {
		t.Errorf("expected max-iter stop: %+v", st)
	}
}

func TestProjectorReducesIterations(t *testing.T) {
	// A sequence of slowly-varying right-hand sides, as in time stepping:
	// projection must cut the iteration count substantially (Fig. 4).
	rng := rand.New(rand.NewSource(5))
	n := 120
	a := spd(rng, n)
	apply := denseOp(a, n)
	base := make([]float64, n)
	drift := make([]float64, n)
	for i := range base {
		base[i] = rng.NormFloat64()
		drift[i] = rng.NormFloat64()
	}
	rhs := func(step int) []float64 {
		b := make([]float64, n)
		tt := float64(step) * 0.01
		for i := range b {
			b[i] = base[i] + tt*drift[i] + 0.001*math.Sin(float64(i)+tt)
		}
		return b
	}
	opt := Options{Tol: 1e-8, MaxIter: 1000}
	steps := 30
	var plainIters, projIters int
	x := make([]float64, n)
	for s := 0; s < steps; s++ {
		for i := range x {
			x[i] = 0
		}
		st := CG(apply, plainDot, x, rhs(s), opt)
		plainIters += st.Iterations
	}
	proj := NewProjector(20, apply, plainDot)
	for s := 0; s < steps; s++ {
		st := proj.ProjectAndSolve(x, rhs(s), opt)
		projIters += st.Iterations
		// Verify the returned solution really solves the system.
		r := make([]float64, n)
		apply(r, x)
		b := rhs(s)
		for i := range r {
			r[i] -= b[i]
		}
		if la.Nrm2(r) > 1e-6 {
			t.Fatalf("step %d: projected solution residual %g", s, la.Nrm2(r))
		}
	}
	if projIters*2 > plainIters {
		t.Errorf("projection did not cut iterations: %d vs %d", projIters, plainIters)
	}
	if proj.Len() == 0 {
		t.Error("projector basis empty after solves")
	}
}

func TestProjectorRestartAtCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 40
	a := spd(rng, n)
	apply := denseOp(a, n)
	proj := NewProjector(5, apply, plainDot)
	x := make([]float64, n)
	for s := 0; s < 12; s++ {
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		proj.ProjectAndSolve(x, b, Options{Tol: 1e-9, MaxIter: 500})
		if proj.Len() > 5 {
			t.Fatalf("basis exceeded capacity: %d", proj.Len())
		}
	}
	proj.Reset()
	if proj.Len() != 0 {
		t.Error("Reset did not clear the basis")
	}
}

func TestProjectorBasisAOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 30
	a := spd(rng, n)
	apply := denseOp(a, n)
	proj := NewProjector(10, apply, plainDot)
	x := make([]float64, n)
	for s := 0; s < 6; s++ {
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		proj.ProjectAndSolve(x, b, Options{Tol: 1e-10, MaxIter: 500})
	}
	for i := range proj.xs {
		for j := range proj.xs {
			v := plainDot(proj.xs[i], proj.axs[j])
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(v-want) > 1e-6 {
				t.Fatalf("basis not A-orthonormal: (%d,%d)=%g", i, j, v)
			}
		}
	}
}

func TestCGJacobiPreconditioner(t *testing.T) {
	// Strongly diagonal-scaled SPD system: Jacobi should nearly solve it.
	n := 60
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		a[i*n+i] = float64(1 + i*i)
		if i+1 < n {
			a[i*n+i+1] = 0.1
			a[(i+1)*n+i] = 0.1
		}
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	pre := func(out, in []float64) {
		for i := range in {
			out[i] = in[i] / a[i*n+i]
		}
	}
	x1 := make([]float64, n)
	st1 := CG(denseOp(a, n), plainDot, x1, b, Options{Tol: 1e-10, Relative: true, MaxIter: 500})
	x2 := make([]float64, n)
	st2 := CG(denseOp(a, n), plainDot, x2, b, Options{Tol: 1e-10, Relative: true, MaxIter: 500, Precond: pre})
	if st2.Iterations >= st1.Iterations {
		t.Errorf("Jacobi PCG %d iters vs CG %d", st2.Iterations, st1.Iterations)
	}
}

// With a Scratch supplied and History off, repeated CG solves must not
// allocate, and must produce bitwise the same answer as the allocating path.
func TestCGScratchAllocFreeAndIdentical(t *testing.T) {
	n := 64
	diag := make([]float64, n)
	b := make([]float64, n)
	for i := range diag {
		diag[i] = 2 + float64(i%7)
		b[i] = math.Sin(float64(i))
	}
	apply := func(out, in []float64) {
		for i := range out {
			out[i] = diag[i] * in[i]
		}
	}
	dot := func(u, v []float64) float64 {
		var s float64
		for i := range u {
			s += u[i] * v[i]
		}
		return s
	}
	opt := Options{Tol: 1e-12, Relative: true, MaxIter: 200}
	x1 := make([]float64, n)
	CG(apply, dot, x1, b, opt)

	sc := &Scratch{}
	opt.Scratch = sc
	x2 := make([]float64, n)
	CG(apply, dot, x2, b, opt) // warm-up sizes the scratch
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("scratch CG changed result at %d: %g vs %g", i, x2[i], x1[i])
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		for i := range x2 {
			x2[i] = 0
		}
		CG(apply, dot, x2, b, opt)
	})
	if allocs > 0 {
		t.Errorf("CG with Scratch allocated %v times per solve, want 0", allocs)
	}
}

// The projector must reach an allocation-free steady state: after the basis
// fills and restarts once, subsequent solves reuse retired vectors.
func TestProjectorSteadyStateAllocFree(t *testing.T) {
	n := 48
	diag := make([]float64, n)
	for i := range diag {
		diag[i] = 3 + float64(i%5)
	}
	apply := func(out, in []float64) {
		for i := range out {
			out[i] = diag[i] * in[i]
		}
	}
	dot := func(u, v []float64) float64 {
		var s float64
		for i := range u {
			s += u[i] * v[i]
		}
		return s
	}
	p := NewProjector(4, apply, dot)
	opt := Options{Tol: 1e-10, Relative: true, MaxIter: 200, Scratch: &Scratch{}}
	x := make([]float64, n)
	b := make([]float64, n)
	solve := func(k int) {
		for i := range b {
			b[i] = math.Sin(float64(i*k + 1)) // fresh RHS each call
		}
		p.ProjectAndSolve(x, b, opt)
	}
	// Fill the basis past one restart so the freelist is primed.
	for k := 0; k < 3*p.L; k++ {
		solve(k)
	}
	k := 1000
	allocs := testing.AllocsPerRun(8, func() {
		solve(k)
		k++
	})
	if allocs > 0 {
		t.Errorf("steady-state ProjectAndSolve allocated %v times, want 0", allocs)
	}
}
