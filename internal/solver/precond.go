package solver

// precond.go: the preconditioner abstraction the pressure solve selects
// over at runtime, and the Chebyshev acceleration shared by the Jacobi and
// Schwarz smoothing variants. The Schwarz(FDM)+XXT sandwich stays the
// bitwise reference path; Chebyshev smoothing wraps a cheap base sweep
// (point-Jacobi on diag(E), or a coarse-free Schwarz pass) in a fixed-degree
// polynomial whose coefficients come from estimated eigenvalue bounds of
// the preconditioned operator — the construction of Phillips et al.,
// "Tuning Spectral Element Preconditioners for Parallel Scalability".

import "math"

// Preconditioner is a named symmetric preconditioner application
// out ≈ M⁻¹ in. Implementations must tolerate out == previous contents
// (no aliasing with in) and must not allocate in steady state.
type Preconditioner interface {
	Name() string
	Apply(out, in []float64)
}

// FuncPrecond adapts a bare Operator to the Preconditioner interface.
type FuncPrecond struct {
	Label string
	Op    Operator
}

func (f *FuncPrecond) Name() string            { return f.Label }
func (f *FuncPrecond) Apply(out, in []float64) { f.Op(out, in) }

// Chebyshev accelerates a base preconditioner with a degree-k Chebyshev
// polynomial in the preconditioned operator Base∘A, using the standard
// three-term recurrence (theta/delta form). The result stays symmetric
// positive definite for CG as long as the spectrum of Base∘A lies in
// (0, LMax]: the error polynomial satisfies q(0)=1 and |q|<1 on (0, LMax],
// so only an *underestimated* LMax can break it — which Calibrate detects
// and repairs by inflating the bound.
type Chebyshev struct {
	Label  string
	A      Operator // the operator being preconditioned (e.g. the pressure E)
	Base   Operator // the base sweep M⁻¹ (Jacobi diagonal, local Schwarz, ...)
	Degree int      // polynomial degree k ≥ 1 (k base applies, k-1 A applies)
	LMin   float64  // lower eigenvalue bound of Base∘A (smoother convention: LMax/30)
	LMax   float64  // upper eigenvalue bound of Base∘A (safety-inflated estimate)

	r, z, d, ad []float64 // iteration arenas, sized on first Apply
}

func (c *Chebyshev) Name() string { return c.Label }

func (c *Chebyshev) grow(n int) {
	if cap(c.r) < n {
		c.r = make([]float64, n)
		c.z = make([]float64, n)
		c.d = make([]float64, n)
		c.ad = make([]float64, n)
	}
	c.r, c.z, c.d, c.ad = c.r[:n], c.z[:n], c.d[:n], c.ad[:n]
}

// Apply runs the preconditioned Chebyshev recurrence from a zero initial
// guess: out = p_k(Base∘A) Base in, with p_k the degree-k shifted Chebyshev
// polynomial on [LMin, LMax].
func (c *Chebyshev) Apply(out, in []float64) {
	n := len(in)
	c.grow(n)
	k := c.Degree
	if k < 1 {
		k = 1
	}
	theta := (c.LMax + c.LMin) / 2
	delta := (c.LMax - c.LMin) / 2
	if !(theta > 0) {
		theta = 1
	}
	if !(delta > 1e-12*theta) {
		// Degenerate spectrum (single eigenvalue, e.g. a 1-element periodic
		// mesh where the base sweep is exact up to scaling): one scaled base
		// application is the optimal polynomial.
		c.Base(c.z, in)
		for i := 0; i < n; i++ {
			out[i] = c.z[i] / theta
		}
		return
	}
	sigma := theta / delta
	rho := 1 / sigma
	copy(c.r, in)
	c.Base(c.z, c.r)
	for i := 0; i < n; i++ {
		c.d[i] = c.z[i] / theta
		out[i] = 0
	}
	for it := 1; ; it++ {
		for i := 0; i < n; i++ {
			out[i] += c.d[i]
		}
		if it == k {
			return
		}
		c.A(c.ad, c.d)
		for i := 0; i < n; i++ {
			c.r[i] -= c.ad[i]
		}
		c.Base(c.z, c.r)
		rhoNew := 1 / (2*sigma - rho)
		a, b := rhoNew*rho, 2*rhoNew/delta
		for i := 0; i < n; i++ {
			c.d[i] = a*c.d[i] + b*c.z[i]
		}
		rho = rhoNew
	}
}

// LCGFill fills v with a deterministic pseudo-random probe in [-0.5, 0.5)
// — the same splitmix-style LCG seeding used by the autotune harness, so
// bound estimates and trial right-hand sides are reproducible across runs
// and identical on every rank.
func LCGFill(v []float64, seed uint64) { lcgFill(v, seed) }

func lcgFill(v []float64, seed uint64) {
	s := seed ^ 0x9E3779B97F4A7C15
	for i := range v {
		s = s*6364136223846793005 + 1442695040888963407
		v[i] = float64(s>>11)/float64(1<<53) - 0.5
	}
}

// EstimateBounds sets c.LMax (and LMin = LMax/30, the usual smoother
// convention) from a short power iteration on Base∘A with a deterministic
// probe vector. deflate, when non-nil, removes the operator's null space
// from the iterate each step (constant pressure mode on enclosed domains).
// The estimate is inflated by 10% as a safety margin; a zero or NaN result
// (empty operator, degenerate mesh) falls back to LMax = 1.
func (c *Chebyshev) EstimateBounds(dot Dot, n, iters int, deflate func([]float64)) {
	if iters < 1 {
		iters = 20
	}
	v := make([]float64, n)
	w := make([]float64, n)
	t := make([]float64, n)
	lcgFill(v, 1)
	if deflate != nil {
		deflate(v)
	}
	lambda := 0.0
	for it := 0; it < iters; it++ {
		nv := math.Sqrt(dot(v, v))
		if !(nv > 0) {
			break
		}
		inv := 1 / nv
		for i := range v {
			v[i] *= inv
		}
		c.A(t, v)
		c.Base(w, t)
		if deflate != nil {
			deflate(w)
		}
		next := math.Sqrt(dot(w, w))
		copy(v, w)
		if it >= 2 && lambda > 0 && math.Abs(next-lambda) <= 1e-2*lambda {
			lambda = next
			break
		}
		lambda = next
	}
	if !(lambda > 0) || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		lambda = 1
	}
	c.LMax = 1.1 * lambda
	c.LMin = c.LMax / 30
}

// Calibrate verifies the bounds by power-iterating the Chebyshev error
// operator G = I - C·A (C this preconditioner): with correct bounds the
// error contracts, ‖Gv‖ < ‖v‖. If the iteration grows — LMax was
// underestimated and the polynomial amplifies the top of the spectrum —
// LMax is inflated 1.5× and re-checked, at most five rounds. Returns the
// number of inflation rounds applied (0 when the initial bounds hold).
func (c *Chebyshev) Calibrate(dot Dot, n int, deflate func([]float64)) int {
	v := make([]float64, n)
	w := make([]float64, n)
	t := make([]float64, n)
	rounds := 0
	for ; rounds <= 5; rounds++ {
		lcgFill(v, 2)
		if deflate != nil {
			deflate(v)
		}
		growth := 0.0
		for it := 0; it < 6; it++ {
			nv := math.Sqrt(dot(v, v))
			if !(nv > 0) {
				break
			}
			inv := 1 / nv
			for i := range v {
				v[i] *= inv
			}
			// w = G v = v - C A v
			c.A(t, v)
			c.Apply(w, t)
			for i := range w {
				w[i] = v[i] - w[i]
			}
			if deflate != nil {
				deflate(w)
			}
			growth = math.Sqrt(dot(w, w))
			copy(v, w)
		}
		if !(growth > 1.01) || math.IsNaN(growth) {
			return rounds
		}
		c.LMax *= 1.5
		c.LMin = c.LMax / 30
	}
	return rounds
}
