package solver

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/la"
)

// diagOp builds the operator of a diagonal SPD system.
func diagOp(d []float64) Operator {
	return func(out, in []float64) {
		for i := range in {
			out[i] = d[i] * in[i]
		}
	}
}

func identityOp(out, in []float64) { copy(out, in) }

// testSpectrum is a diagonal spread exercising both ends of the bounds.
func testSpectrum(n int) []float64 {
	d := make([]float64, n)
	for i := range d {
		d[i] = 1 + 9*float64(i)/float64(n-1) // eigenvalues in [1, 10]
	}
	return d
}

// TestChebyshevAcceleratesCG: with exact bounds the Chebyshev-wrapped
// identity must cut CG iterations well below the unpreconditioned count on
// a spread spectrum.
func TestChebyshevAcceleratesCG(t *testing.T) {
	const n = 200
	d := testSpectrum(n)
	A := diagOp(d)
	b := make([]float64, n)
	LCGFill(b, 7)
	opt := Options{Tol: 1e-10, MaxIter: 500}

	x0 := make([]float64, n)
	base := CG(A, plainDot, x0, b, opt)
	if !base.Converged {
		t.Fatal("unpreconditioned CG did not converge")
	}

	c := &Chebyshev{Label: "cheb", A: A, Base: identityOp, Degree: 4, LMin: 1, LMax: 10}
	x1 := make([]float64, n)
	opt.Precond = c.Apply
	acc := CG(A, plainDot, x1, b, opt)
	if !acc.Converged {
		t.Fatal("Chebyshev-preconditioned CG did not converge")
	}
	if acc.Iterations >= base.Iterations {
		t.Errorf("chebyshev CG took %d iterations, unpreconditioned %d", acc.Iterations, base.Iterations)
	}
	for i := range x0 {
		want := b[i] / d[i]
		if math.Abs(x1[i]-want) > 1e-8 {
			t.Fatalf("x[%d] = %g, want %g", i, x1[i], want)
		}
	}
}

// TestChebyshevDegenerateSpectrum: a 1-dof system has LMin == LMax; the
// delta→0 guard must reduce to a single exactly-scaled base application
// instead of dividing by zero.
func TestChebyshevDegenerateSpectrum(t *testing.T) {
	A := diagOp([]float64{4})
	c := &Chebyshev{Label: "cheb", A: A, Base: identityOp, Degree: 5, LMin: 4, LMax: 4}
	out := make([]float64, 1)
	c.Apply(out, []float64{8})
	if math.Abs(out[0]-2) > 1e-14 {
		t.Fatalf("degenerate Apply = %g, want 2 (exact inverse)", out[0])
	}
	if math.IsNaN(out[0]) {
		t.Fatal("degenerate spectrum produced NaN")
	}
	// CG on the 1-dof system must converge in one iteration.
	x := []float64{0}
	st := CG(A, plainDot, x, []float64{8}, Options{Tol: 1e-12, MaxIter: 10, Precond: c.Apply})
	if !st.Converged || st.Iterations > 1 {
		t.Fatalf("1-dof solve: converged=%v in %d iterations", st.Converged, st.Iterations)
	}
}

// TestChebyshevAlreadyConverged: an initial guess that already satisfies
// the system must return before the preconditioner is ever applied.
func TestChebyshevAlreadyConverged(t *testing.T) {
	const n = 50
	d := testSpectrum(n)
	A := diagOp(d)
	b := make([]float64, n)
	LCGFill(b, 11)
	x := make([]float64, n)
	for i := range x {
		x[i] = b[i] / d[i] // exact solution
	}
	applied := false
	pre := func(out, in []float64) { applied = true; copy(out, in) }
	st := CG(A, plainDot, x, b, Options{Tol: 1e-8, MaxIter: 100, Precond: pre})
	if !st.Converged || st.Iterations != 0 {
		t.Fatalf("converged=%v iterations=%d, want converged in 0", st.Converged, st.Iterations)
	}
	if applied {
		t.Error("preconditioner applied despite a converged initial guess")
	}
}

// TestEstimateBounds: the power iteration must bracket the true λmax of
// Base∘A from above (safety factor) without gross overestimation.
func TestEstimateBounds(t *testing.T) {
	const n = 300
	d := testSpectrum(n) // λmax = 10
	c := &Chebyshev{A: diagOp(d), Base: identityOp, Degree: 3}
	c.EstimateBounds(plainDot, n, 30, nil)
	if c.LMax < 10 || c.LMax > 13 {
		t.Errorf("LMax = %g, want within [10, 13] for a true λmax of 10", c.LMax)
	}
	if c.LMin <= 0 || c.LMin >= c.LMax {
		t.Errorf("LMin = %g out of (0, LMax)", c.LMin)
	}
}

// TestEstimateBoundsDegenerate: a zero operator (the degenerate-mesh limit)
// must fall back to usable bounds, not NaN.
func TestEstimateBoundsDegenerate(t *testing.T) {
	zero := func(out, in []float64) {
		for i := range out {
			out[i] = 0
		}
	}
	c := &Chebyshev{A: zero, Base: identityOp, Degree: 2}
	c.EstimateBounds(plainDot, 4, 10, nil)
	if !(c.LMax > 0) || math.IsNaN(c.LMax) {
		t.Fatalf("degenerate bounds LMax = %g, want positive finite fallback", c.LMax)
	}
}

// TestCalibrateRecoversUnderestimate: with λmax deliberately underestimated
// 10x the Chebyshev polynomial amplifies the top of the spectrum and CG
// would diverge; Calibrate must detect the growth, inflate the bound, and
// leave a preconditioner CG converges with.
func TestCalibrateRecoversUnderestimate(t *testing.T) {
	const n = 200
	d := testSpectrum(n) // λmax = 10
	A := diagOp(d)
	c := &Chebyshev{A: A, Base: identityOp, Degree: 4, LMax: 1, LMin: 1.0 / 30}
	rounds := c.Calibrate(plainDot, n, nil)
	if rounds == 0 {
		t.Fatal("Calibrate reported healthy bounds for a 10x underestimate")
	}
	if c.LMax < 10 {
		t.Errorf("calibrated LMax = %g still below the true λmax 10", c.LMax)
	}
	b := make([]float64, n)
	LCGFill(b, 13)
	x := make([]float64, n)
	st := CG(A, plainDot, x, b, Options{Tol: 1e-10, MaxIter: 500, Precond: c.Apply})
	if !st.Converged {
		t.Fatalf("CG did not converge after calibration (LMax=%g): %d iterations, res %g",
			c.LMax, st.Iterations, st.FinalRes)
	}
	// Correct bounds must pass through untouched.
	ok := &Chebyshev{A: A, Base: identityOp, Degree: 4, LMax: 11, LMin: 11.0 / 30}
	if r := ok.Calibrate(plainDot, n, nil); r != 0 {
		t.Errorf("Calibrate inflated already-correct bounds %d times", r)
	}
}

// TestPrecondTableRecordConcurrent: copy-on-write Record from many
// goroutines must lose no entries.
func TestPrecondTableRecordConcurrent(t *testing.T) {
	ResetPrecondTable()
	defer ResetPrecondTable()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				RecordPrecond(PrecondKey{K: w, N: i, Dim: 2, P: 1, Tol: 1e-7}, "chebjacobi")
			}
		}(w)
	}
	wg.Wait()
	tab := InstalledPrecondTable()
	if got := tab.Len(); got != workers*20 {
		t.Fatalf("table has %d entries, want %d", got, workers*20)
	}
	if name, ok := tab.Lookup(PrecondKey{K: 3, N: 7, Dim: 2, P: 1, Tol: 1e-7}); !ok || name != "chebjacobi" {
		t.Fatalf("lookup = %q, %v", name, ok)
	}
}

// TestSelectPrecondPrefersReference: on an iteration tie the first-listed
// candidate (the reference) must win, and a converged candidate must beat a
// non-converged one regardless of order.
func TestSelectPrecondPrefersReference(t *testing.T) {
	const n = 100
	d := testSpectrum(n)
	A := diagOp(d)
	b := make([]float64, n)
	LCGFill(b, 5)
	x := make([]float64, n)
	exact := func(out, in []float64) {
		for i := range in {
			out[i] = in[i] / d[i]
		}
	}
	opt := Options{Tol: 1e-10, MaxIter: 300}
	name, trials := SelectPrecond(A, plainDot, x, b, opt, []PrecondCandidate{
		{Name: "ref", Precond: exact},
		{Name: "same", Precond: exact},
	})
	if name != "ref" {
		t.Errorf("tie went to %q, want the reference", name)
	}
	if len(trials) != 2 || trials[0].Iterations != trials[1].Iterations {
		t.Fatalf("trials = %+v", trials)
	}
	// A capped (non-converging) reference must lose to a converging variant.
	capped := Options{Tol: 1e-14, MaxIter: 2}
	name, trials = SelectPrecond(A, plainDot, x, b, capped, []PrecondCandidate{
		{Name: "bad", Precond: nil},
		{Name: "good", Precond: exact},
	})
	if name != "good" {
		t.Errorf("selection = %q, want the converging candidate; trials %+v", name, trials)
	}
}

// TestPrecondCacheRoundtrip: Save → Load must reproduce the table, and a
// file keyed for another machine must be rejected with ErrCacheMismatch.
func TestPrecondCacheRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "precond.json")
	ResetPrecondTable()
	defer ResetPrecondTable()
	k1 := PrecondKey{K: 40, N: 5, Dim: 2, P: 1, Tol: 1e-9}
	k2 := PrecondKey{K: 40, N: 5, Dim: 2, P: 8, Tol: 1e-9}
	RecordPrecond(k1, "schwarz")
	tab := RecordPrecond(k2, "chebschwarz")
	if err := SavePrecondCache(path, tab); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPrecondCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("loaded %d entries, want 2", got.Len())
	}
	if name, ok := got.Lookup(k2); !ok || name != "chebschwarz" {
		t.Fatalf("lookup k2 = %q, %v", name, ok)
	}

	// Key mismatch: rewrite with a foreign key.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	foreign := strings.Replace(string(b), la.CacheKey(), "some other machine | go0.0", 1)
	if err := os.WriteFile(path, []byte(foreign), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPrecondCache(path); !errors.Is(err, la.ErrCacheMismatch) {
		t.Fatalf("foreign cache load error = %v, want ErrCacheMismatch", err)
	}

	if _, err := LoadPrecondCache(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file load succeeded")
	}
}
