package solver

// multi.go solves several right-hand sides against one operator in lockstep:
// every CG iteration applies the operator to all still-active columns in a
// single batched sweep (MultiOperator), amortizing the operator's element
// sweep and memory traffic across columns — the multi-RHS batching of the
// velocity-component Helmholtz solves. Each column's iteration arithmetic
// (dots, alpha/beta updates, tolerance and breakdown/divergence exits,
// best-iterate restore) is exactly CG's, touching only that column's
// vectors, so a CGMulti solve is bitwise identical to running CG per column
// whenever the batched operator is bitwise identical per column (which
// sem.HelmholtzMulti guarantees). Columns converge independently: a retired
// column simply drops out of later sweeps.

import (
	"math"

	"repro/internal/instrument"
)

// MultiOperator applies one linear operator to several columns in a single
// sweep: outs[c] = A·ins[c]. outs[c] never aliases ins[c]. The number of
// columns varies between calls (columns retire as they converge).
type MultiOperator func(outs, ins [][]float64)

// MultiScratch carries the per-column work vectors and iteration state of
// CGMulti so repeated batched solves (one per time step) allocate nothing.
// A MultiScratch must not be shared by solves running concurrently.
type MultiScratch struct {
	cols  []multiCol
	outs  [][]float64 // active-column headers for the batched operator call
	ins   [][]float64
	idx   []int // column index behind each active header
	stats []Stats
}

// multiCol is one column's CG state: the standard work vectors plus the
// scalars cg() keeps in locals.
type multiCol struct {
	r, z, p, q, xb []float64
	res, best      float64
	rz, tol        float64
	active         bool
}

// ensure sizes the scratch for nc columns of length n.
func (ms *MultiScratch) ensure(nc, n int) {
	if cap(ms.cols) < nc {
		ms.cols = make([]multiCol, nc)
		ms.outs = make([][]float64, 0, nc)
		ms.ins = make([][]float64, 0, nc)
		ms.idx = make([]int, 0, nc)
		ms.stats = make([]Stats, nc)
	}
	ms.cols = ms.cols[:nc]
	ms.stats = ms.stats[:nc]
	for c := range ms.cols {
		col := &ms.cols[c]
		if cap(col.r) < n {
			col.r = make([]float64, n)
			col.z = make([]float64, n)
			col.p = make([]float64, n)
			col.q = make([]float64, n)
			col.xb = make([]float64, n)
		}
		col.r, col.z, col.p = col.r[:n], col.z[:n], col.p[:n]
		col.q, col.xb = col.q[:n], col.xb[:n]
	}
}

// CGMulti solves A xs[c] = bs[c] for all columns simultaneously, one batched
// operator sweep per iteration. opt applies to every column (the
// preconditioner is called per column); the instrumentation handles observe
// each column's solve exactly as a separate CG call would. The returned
// slice aliases ms and is valid until the next CGMulti call on the same
// scratch.
func CGMulti(apply MultiOperator, dot Dot, xs, bs [][]float64, opt Options, ms *MultiScratch) []Stats {
	t0 := opt.Time.Begin()
	var sp instrument.Span
	if opt.Tracer != nil {
		name := opt.TraceName
		if name == "" {
			name = "cg.multi"
		}
		sp = opt.Tracer.Begin(instrument.PidWall, 0, name, "solver")
	}
	sts := cgMulti(apply, dot, xs, bs, opt, ms)
	if opt.Tracer != nil {
		total := 0
		all := true
		for c := range sts {
			total += sts[c].Iterations
			all = all && sts[c].Converged
		}
		sp.EndWith(map[string]any{
			"columns":    len(sts),
			"iterations": total,
			"converged":  all,
		})
	}
	opt.Time.End(t0)
	for c := range sts {
		opt.Iters.Add(int64(sts[c].Iterations))
		opt.IterHist.Observe(float64(sts[c].Iterations))
		if sts[c].Converged {
			opt.Converged.Set(1)
		} else {
			opt.Converged.Set(0)
		}
	}
	return sts
}

func cgMulti(apply MultiOperator, dot Dot, xs, bs [][]float64, opt Options, ms *MultiScratch) []Stats {
	nc := len(bs)
	n := len(bs[0])
	ms.ensure(nc, n)
	sts := ms.stats
	for c := range sts {
		sts[c] = Stats{}
	}

	// Initial residuals r = b - A x, the operator applied in one batched
	// sweep to the columns whose start vector is nonzero.
	ms.outs, ms.ins, ms.idx = ms.outs[:0], ms.ins[:0], ms.idx[:0]
	for c := range bs {
		col := &ms.cols[c]
		nonzero := false
		for _, v := range xs[c] {
			if v != 0 {
				nonzero = true
				break
			}
		}
		if nonzero {
			ms.outs = append(ms.outs, col.q)
			ms.ins = append(ms.ins, xs[c])
			ms.idx = append(ms.idx, c)
		} else {
			copy(col.r, bs[c])
		}
	}
	if len(ms.ins) > 0 {
		apply(ms.outs, ms.ins)
		for _, c := range ms.idx {
			col := &ms.cols[c]
			for i := range col.r {
				col.r[i] = bs[c][i] - col.q[i]
			}
		}
	}
	nActive := 0
	for c := range bs {
		col := &ms.cols[c]
		col.tol = opt.Tol
		if opt.Relative {
			col.tol *= math.Sqrt(dot(bs[c], bs[c]))
		}
		col.res = math.Sqrt(dot(col.r, col.r))
		sts[c].InitialRes = col.res
		if opt.History {
			sts[c].ResHist = append(sts[c].ResHist, col.res)
		}
		if col.res <= col.tol {
			col.active = false
			sts[c].Converged = true
			sts[c].FinalRes = col.res
			continue
		}
		col.active = true
		nActive++
	}
	if nActive == 0 {
		return sts
	}
	precond := opt.Precond
	if precond == nil {
		precond = func(out, in []float64) { copy(out, in) }
	}
	for c := range bs {
		col := &ms.cols[c]
		if !col.active {
			continue
		}
		precond(col.z, col.r)
		copy(col.p, col.z)
		col.rz = dot(col.r, col.z)
		// Best-iterate restore per column, exactly as cg() (see the comment
		// there on the roundoff-floor failure mode it guards against).
		col.best = col.res
		copy(col.xb, xs[c])
	}
	maxIter := opt.MaxIter
	if maxIter <= 0 {
		maxIter = n
	}
	for it := 1; it <= maxIter && nActive > 0; it++ {
		// One operator sweep over the still-active columns.
		ms.outs, ms.ins, ms.idx = ms.outs[:0], ms.ins[:0], ms.idx[:0]
		for c := range bs {
			col := &ms.cols[c]
			if col.active {
				ms.outs = append(ms.outs, col.q)
				ms.ins = append(ms.ins, col.p)
				ms.idx = append(ms.idx, c)
			}
		}
		apply(ms.outs, ms.ins)
		for _, c := range ms.idx {
			col := &ms.cols[c]
			x := xs[c]
			pq := dot(col.p, col.q)
			if pq <= 0 {
				// Operator not SPD on this subspace (or breakdown): stop.
				sts[c].Iterations = it - 1
				sts[c].FinalRes = col.best
				copy(x, col.xb)
				col.active = false
				nActive--
				continue
			}
			alpha := col.rz / pq
			for i := range x {
				x[i] += alpha * col.p[i]
				col.r[i] -= alpha * col.q[i]
			}
			col.res = math.Sqrt(dot(col.r, col.r))
			if opt.History {
				sts[c].ResHist = append(sts[c].ResHist, col.res)
			}
			if col.res <= col.tol {
				sts[c].Iterations = it
				sts[c].Converged = true
				sts[c].FinalRes = col.res
				col.active = false
				nActive--
				continue
			}
			if col.res < col.best {
				col.best = col.res
				copy(col.xb, x)
			} else if !(col.res <= 1e4*col.best) {
				// Diverging in roundoff: hand back the best iterate.
				sts[c].Iterations = it
				sts[c].FinalRes = col.best
				copy(x, col.xb)
				col.active = false
				nActive--
				continue
			}
			precond(col.z, col.r)
			rz2 := dot(col.r, col.z)
			beta := rz2 / col.rz
			col.rz = rz2
			for i := range col.p {
				col.p[i] = col.z[i] + beta*col.p[i]
			}
		}
	}
	for c := range bs {
		col := &ms.cols[c]
		if col.active {
			sts[c].Iterations = maxIter
			sts[c].FinalRes = col.best
			copy(xs[c], col.xb)
			col.active = false
		}
	}
	return sts
}
