package solver

// precondtune.go: runtime selection of the pressure preconditioner,
// mirroring la.Tuner's install-a-table idiom at the solver level. A
// PrecondTable maps (mesh size, order, rank count, tolerance) to a variant
// name; SelectPrecond fills it from short trial solves. The table is held
// behind an atomic pointer and updated copy-on-write, so concurrent
// semflowd sessions can record selections without locking the solve path.

import (
	"sort"
	"sync/atomic"
	"time"
)

// PrecondKey identifies a pressure-solve configuration for selection
// purposes: the spectral discretization (K elements, order N, dimension),
// the rank count the solve runs at, and the target tolerance. Two runs with
// the same key see the same operator conditioning, so the same variant wins.
type PrecondKey struct {
	K   int     // elements
	N   int     // polynomial order
	Dim int     // 2 or 3
	P   int     // ranks (1 for the serial stepper)
	Tol float64 // pressure tolerance
}

// PrecondTable maps configuration keys to the winning variant name.
type PrecondTable struct {
	m map[PrecondKey]string
}

// Lookup returns the recorded variant for k, if any.
func (t *PrecondTable) Lookup(k PrecondKey) (string, bool) {
	if t == nil || t.m == nil {
		return "", false
	}
	name, ok := t.m[k]
	return name, ok
}

// Len returns the number of recorded selections.
func (t *PrecondTable) Len() int {
	if t == nil {
		return 0
	}
	return len(t.m)
}

// Keys returns the recorded keys in deterministic order.
func (t *PrecondTable) Keys() []PrecondKey {
	if t == nil {
		return nil
	}
	ks := make([]PrecondKey, 0, len(t.m))
	for k := range t.m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool {
		a, b := ks[i], ks[j]
		if a.K != b.K {
			return a.K < b.K
		}
		if a.N != b.N {
			return a.N < b.N
		}
		if a.Dim != b.Dim {
			return a.Dim < b.Dim
		}
		if a.P != b.P {
			return a.P < b.P
		}
		return a.Tol < b.Tol
	})
	return ks
}

var activePrecond atomic.Pointer[PrecondTable]

// InstallPrecondTable makes t the process-wide selection table consulted by
// -precond auto before falling back to trial solves.
func InstallPrecondTable(t *PrecondTable) { activePrecond.Store(t) }

// InstalledPrecondTable returns the active table, or nil.
func InstalledPrecondTable() *PrecondTable { return activePrecond.Load() }

// ResetPrecondTable clears the process-wide table (tests).
func ResetPrecondTable() { activePrecond.Store(nil) }

// RecordPrecond adds k → name to the installed table copy-on-write (a CAS
// loop, so concurrent sessions recording different keys never lose one
// another's entries) and returns the updated table.
func RecordPrecond(k PrecondKey, name string) *PrecondTable {
	for {
		old := activePrecond.Load()
		nt := &PrecondTable{m: make(map[PrecondKey]string)}
		if old != nil {
			for ok, ov := range old.m {
				nt.m[ok] = ov
			}
		}
		nt.m[k] = name
		if activePrecond.CompareAndSwap(old, nt) {
			return nt
		}
	}
}

// PrecondCandidate is one variant entered into a trial-solve tournament.
type PrecondCandidate struct {
	Name    string
	Precond Operator // nil = unpreconditioned CG
}

// PrecondTrial reports one candidate's trial solve.
type PrecondTrial struct {
	Name       string  `json:"name"`
	Iterations int     `json:"iterations"`
	Converged  bool    `json:"converged"`
	Seconds    float64 `json:"seconds"`
}

// PrecondSelection reports how the active variant was chosen: Source is
// "forced" (explicit -precond), "table" (installed table hit), "trial"
// (won the trial tournament here), or "default" (no tuning requested).
type PrecondSelection struct {
	Name   string         `json:"name"`
	Source string         `json:"source"`
	Trials []PrecondTrial `json:"trials,omitempty"`
}

// SelectPrecond runs one trial CG per candidate against rhs from a zero
// initial guess and picks the winner: converged beats non-converged, then
// fewest iterations, then fastest wall clock, then earliest candidate
// order. Callers list the reference variant first, so the gate "the
// selection never iterates worse than the reference" holds by construction
// on ties. x and rhs are scratch the caller owns; x is zeroed per trial.
func SelectPrecond(apply Operator, dot Dot, x, rhs []float64, opt Options, cands []PrecondCandidate) (string, []PrecondTrial) {
	trials := make([]PrecondTrial, 0, len(cands))
	best := -1
	for ci, c := range cands {
		for i := range x {
			x[i] = 0
		}
		o := opt
		o.Precond = c.Precond
		t0 := time.Now()
		st := CG(apply, dot, x, rhs, o)
		tr := PrecondTrial{
			Name:       c.Name,
			Iterations: st.Iterations,
			Converged:  st.Converged,
			Seconds:    time.Since(t0).Seconds(),
		}
		trials = append(trials, tr)
		if best < 0 || trialBetter(tr, trials[best]) {
			best = ci
		}
	}
	if best < 0 {
		return "", trials
	}
	return cands[best].Name, trials
}

// trialBetter reports whether a strictly beats b (ties keep b, preserving
// candidate order). Convergence and iteration count are deterministic;
// wall time is not, so on an iteration tie the challenger must be faster
// both by a clear relative margin and by more than scheduling jitter —
// otherwise timing noise would displace the reference and the recorded
// (and cached) selection would differ run to run.
func trialBetter(a, b PrecondTrial) bool {
	if a.Converged != b.Converged {
		return a.Converged
	}
	if a.Iterations != b.Iterations {
		return a.Iterations < b.Iterations
	}
	return a.Seconds < 0.9*b.Seconds && b.Seconds-a.Seconds > 5e-3
}
