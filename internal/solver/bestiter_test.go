package solver

import (
	"math"
	"testing"
)

// TestCGReturnsBestIterateAtRoundoffFloor: when the tolerance sits below
// what finite precision can deliver, CG idles at the roundoff floor where a
// near-breakdown step (tiny positive p·q, huge alpha) can catapult the
// iterate far from the solution before a stopping guard fires. Whatever
// path the solve exits through — convergence of the recursive residual,
// breakdown, divergence guard, or MaxIter — the returned iterate must
// realize a residual at the floor, never the catapulted one. Sweeping many
// right-hand sides makes at least some trajectories take the bad step.
func TestCGReturnsBestIterateAtRoundoffFloor(t *testing.T) {
	n := 200
	apply := func(out, in []float64) {
		for i := range in {
			s := 2 * in[i]
			if i > 0 {
				s -= in[i-1]
			}
			if i < n-1 {
				s -= in[i+1]
			}
			out[i] = s
		}
	}
	dot := func(u, v []float64) float64 {
		var s float64
		for i := range u {
			s += u[i] * v[i]
		}
		return s
	}
	b := make([]float64, n)
	x := make([]float64, n)
	r := make([]float64, n)
	for seed := 1; seed <= 20; seed++ {
		for i := range b {
			b[i] = math.Sin(float64((i + 1) * seed))
		}
		for i := range x {
			x[i] = 0
		}
		st := CG(apply, dot, x, b, Options{Tol: 1e-30, Relative: true, MaxIter: 3000})
		apply(r, x)
		var res float64
		for i := range r {
			res += (b[i] - r[i]) * (b[i] - r[i])
		}
		res = math.Sqrt(res)
		// cond(A) ~ 1.6e4, so the true-residual floor is ~eps·cond·‖b‖.
		if res > 1e-9 {
			t.Errorf("seed %d: returned iterate has true residual %g (iters %d, conv %v, reported %g)",
				seed, res, st.Iterations, st.Converged, st.FinalRes)
		}
	}
}
