package perfmodel

import (
	"math"
	"testing"
)

func paperRun(nsteps int) *Run {
	press, helm, sub := PaperIterationHistory(nsteps, 45, 8, 10)
	return HairpinRun(press, helm, sub)
}

func TestTable4Shape(t *testing.T) {
	r := paperRun(26)
	std := ASCIRedStd()
	perf := ASCIRedPerf()
	type cell struct {
		time, gflops float64
	}
	table := map[string]cell{}
	for _, p := range []int{512, 1024, 2048} {
		for _, dual := range []bool{false, true} {
			for _, m := range []Machine{std, perf} {
				e := r.Predict(m, p, dual)
				key := m.Name
				if dual {
					key += "-dual"
				} else {
					key += "-single"
				}
				table[keyP(key, p)] = cell{e.TotalTime, e.GFLOPS}
			}
		}
	}
	// Strong scaling: doubling P roughly halves time (>= 1.7x speedup).
	for _, mode := range []string{"std-single", "std-dual", "perf-single", "perf-dual"} {
		t1 := table[keyP(mode, 512)].time
		t2 := table[keyP(mode, 1024)].time
		t4 := table[keyP(mode, 2048)].time
		if s := t1 / t2; s < 1.7 || s > 2.05 {
			t.Errorf("%s 512->1024 speedup %g out of band", mode, s)
		}
		if s := t2 / t4; s < 1.6 || s > 2.05 {
			t.Errorf("%s 1024->2048 speedup %g out of band", mode, s)
		}
	}
	// Dual mode faster than single but less than 2x (82% efficiency).
	for _, base := range []string{"std", "perf"} {
		for _, p := range []int{512, 1024, 2048} {
			s := table[keyP(base+"-single", p)].time / table[keyP(base+"-dual", p)].time
			if s < 1.3 || s > 1.99 {
				t.Errorf("%s P=%d dual speedup %g out of [1.3, 2)", base, p, s)
			}
		}
	}
	// perf kernels beat std kernels.
	for _, p := range []int{512, 2048} {
		if table[keyP("perf-dual", p)].time >= table[keyP("std-dual", p)].time {
			t.Errorf("P=%d: perf not faster than std", p)
		}
	}
	// GFLOPS ordering matches the Table 4 corners: best cell is
	// perf-dual at P=2048, worst is std-single at P=512.
	best := table[keyP("perf-dual", 2048)].gflops
	worst := table[keyP("std-single", 512)].gflops
	if best <= worst {
		t.Errorf("GFLOPS ordering wrong: best %g worst %g", best, worst)
	}
	// The paper's ratio 319/47 ≈ 6.8; ours should be within a factor ~1.5.
	ratio := best / worst
	if ratio < 4 || ratio > 10 {
		t.Errorf("corner GFLOPS ratio %g outside the plausible band", ratio)
	}
	t.Logf("P=2048 perf-dual: %.0f s, %.0f GFLOPS; P=512 std-single: %.0f s, %.0f GFLOPS",
		table[keyP("perf-dual", 2048)].time, best,
		table[keyP("std-single", 512)].time, worst)
}

func keyP(mode string, p int) string {
	return mode + "-" + string(rune('0'+p/512))
}

func TestFig8TimePerStepDecays(t *testing.T) {
	r := paperRun(26)
	e := r.Predict(ASCIRedPerf(), 2048, true)
	if len(e.TimePerStep) != 26 {
		t.Fatal("wrong step count")
	}
	// Time per step decays as the pressure projection warms up (Fig. 8).
	if e.TimePerStep[0] <= e.TimePerStep[25] {
		t.Errorf("time per step did not decay: %g -> %g", e.TimePerStep[0], e.TimePerStep[25])
	}
	// Late steps settle (last five nearly equal).
	last := e.TimePerStep[21:]
	for _, v := range last {
		if math.Abs(v-last[4]) > 0.1*last[4] {
			t.Errorf("late steps not settled: %v", last)
		}
	}
}

func TestIterationHistoryShape(t *testing.T) {
	press, helm, sub := PaperIterationHistory(26, 45, 8, 10)
	if press[0] <= press[25] {
		t.Error("pressure iterations should decay")
	}
	if press[25] < 45 || press[25] > 50 {
		t.Errorf("settled pressure iterations %d outside 45..50", press[25])
	}
	for i := range helm {
		if helm[i] != 8 || sub[i] != 10 {
			t.Error("helm/substep history wrong")
		}
	}
}

func TestGridPoints(t *testing.T) {
	r := paperRun(1)
	// K=8168, N=15: 8168 * 16^3 = 33,456,128 element-local points; the
	// paper's 27.8M figure counts assembled unique points, so ours must be
	// the same order and larger.
	gp := r.GridPoints()
	if gp < 27.8e6 || gp > 34e6 {
		t.Errorf("grid points %g implausible", gp)
	}
}

func TestCommDominatesAtHugeP(t *testing.T) {
	// With absurdly many nodes for a small problem the model must show the
	// communication floor (speedup saturates).
	press, helm, sub := PaperIterationHistory(5, 40, 8, 5)
	r := &Run{K: 512, N: 7, Dim: 3, CoarseN: 1000,
		PressIters: press, HelmIters: helm, Substeps: sub}
	m := ASCIRedStd()
	t512 := r.Predict(m, 512, false).TotalTime
	t4096 := r.Predict(m, 4096, false).TotalTime
	if sp := t512 / t4096; sp > 3 {
		t.Errorf("speedup %g should saturate in the latency regime", sp)
	}
}

func TestStepFlopsPositiveAndScale(t *testing.T) {
	r := paperRun(3)
	mm, vec := r.StepFlops(0)
	if mm <= 0 || vec <= 0 {
		t.Fatal("non-positive flop counts")
	}
	if mm < 9*vec {
		t.Errorf("MM share should dominate: mm=%g vec=%g", mm, vec)
	}
	// Flops grow ~N^4 per element at fixed K.
	r2 := &Run{K: 8168, N: 7, Dim: 3, CoarseN: 10142,
		PressIters: r.PressIters, HelmIters: r.HelmIters, Substeps: r.Substeps}
	mm2, _ := r2.StepFlops(0)
	if mm2 >= mm {
		t.Error("lower order should cost fewer flops")
	}
}
