// Package perfmodel predicts parallel run time and sustained FLOP rate for
// the production-scale configurations of the paper (Table 4, Fig. 8 left)
// that cannot be executed directly on this machine: a 28-million-gridpoint
// spectral element run on up to 2048 ASCI-Red nodes. The model combines
//
//   - exact analytic flop counts per operator evaluation (the same counts
//     the instrumented solver meters on reduced runs — 12N⁴+15N³ per
//     element per stiffness application, etc.),
//   - measured or paper-typical per-step iteration histories,
//   - per-processor floating-point rates in the Table 3 ballpark, with the
//     "std." vs "perf." DGEMM selections and the 82 % dual-processor
//     efficiency quoted in Sec. 6, and
//   - an α–β network model for gather–scatter exchanges, CG inner-product
//     allreduces, and the XXT coarse solve (3·n^{2/3}·log₂P volume).
package perfmodel

import "math"

// Machine describes per-node compute rates and the network.
type Machine struct {
	Name      string
	MFlopsMM  float64 // matrix-matrix kernel rate, MFLOPS (Table 3)
	MFlopsVec float64 // non-MM (vector/pointwise) rate, MFLOPS
	DualEff   float64 // dual-processor-mode efficiency (paper: 0.82)
	Alpha     float64 // message latency, s
	Beta      float64 // per-byte time, s
}

// ASCIRedStd is the 333 MHz ASCI-Red node with the standard-library DGEMM
// selection ("std." columns of Table 4).
func ASCIRedStd() Machine {
	return Machine{Name: "std", MFlopsMM: 95, MFlopsVec: 35, DualEff: 0.82,
		Alpha: 20e-6, Beta: 1 / 310e6}
}

// ASCIRedPerf is the tuned-kernel selection ("perf." columns, the best of
// Table 3 per shape).
func ASCIRedPerf() Machine {
	return Machine{Name: "perf", MFlopsMM: 113, MFlopsVec: 38, DualEff: 0.82,
		Alpha: 20e-6, Beta: 1 / 310e6}
}

// Run describes the simulation whose cost is modeled.
type Run struct {
	K, N    int // elements and polynomial order
	Dim     int // 3 for the hairpin problem
	CoarseN int // coarse-grid dofs (paper: 10142)
	// Per-step iteration history (len = number of steps).
	PressIters []int
	HelmIters  []int // per component per step (x-component history; y,z ≈ same)
	Substeps   []int // OIFS substeps per step
}

// PhaseFlops returns the modeled floating point operations of step i split
// by solver phase (viscous Helmholtz solves, pressure solve, convective
// subintegration, filter) — the same partition the instrumented stepper
// times on reduced runs, so measured shares can sit beside modeled ones.
func (r *Run) PhaseFlops(i int) (helm, press, conv, filt float64) {
	n1 := float64(r.N + 1)
	k := float64(r.K)
	var n4, n3 float64
	if r.Dim == 3 {
		n4 = n1 * n1 * n1 * n1
		n3 = n1 * n1 * n1
	} else {
		n4 = n1 * n1 * n1
		n3 = n1 * n1
	}
	stiff := 12*n4 + 15*n3 // eq. (4) work per element
	grad := 2 * float64(r.Dim) * n4
	dims := float64(r.Dim)

	// Helmholtz: dims components x iters x (stiffness + ~10 n3 vector ops).
	helm = float64(r.HelmIters[i]) * dims * (stiff*k + 10*n3*k)
	// Pressure: iters x (E apply ≈ 2 grads + divergence + FDM local solves
	// + coarse prolongation, ≈ 4 stiffness-equivalents MM + vector ops).
	press = float64(r.PressIters[i]) * ((2*grad+stiff)*k + stiff*k + 14*n3*k)
	// Convection: substeps x RK4 stages x dims fields x gradient work.
	conv = float64(r.Substeps[i]) * 4 * dims * (grad*k + 7*n3*k)
	// Filter once per step per field.
	filt = dims * 2 * dims * n4 * k
	return helm, press, conv, filt
}

// StepFlops returns the modeled floating point operations of step i, split
// into matrix-matrix and vector work.
func (r *Run) StepFlops(i int) (mm, vec float64) {
	helm, press, conv, filt := r.PhaseFlops(i)
	mmShare := 0.92 // the paper: >90% of flops are matrix-matrix products
	total := helm + press + conv + filt
	return total * mmShare, total * (1 - mmShare)
}

// commPerStep models the network time of one step on P nodes.
func (r *Run) commPerStep(i int, m Machine, p int) float64 {
	if p == 1 {
		return 0
	}
	logp := math.Log2(float64(p))
	n1 := float64(r.N + 1)
	kp := float64(r.K) / float64(p) // elements per node
	// Gather-scatter: ~6 faces of the local element block exchanged per
	// operator application; one application per CG iteration per solve.
	faceWords := 6 * math.Pow(kp, 2.0/3.0) * n1 * n1
	gsTime := 6*m.Alpha + faceWords*8*m.Beta
	// Two allreduces (dot products) per CG iteration.
	dotTime := 2 * 2 * m.Alpha * logp
	iters := float64(r.PressIters[i]) + 3*float64(r.HelmIters[i])
	// XXT coarse solve per pressure iteration: fan-in/out tree with the
	// separator-bounded volume.
	coarseWords := 3 * math.Pow(float64(r.CoarseN), 2.0/3.0)
	coarseTime := logp * (2*m.Alpha + coarseWords*8*m.Beta)
	return iters*(gsTime+dotTime) + float64(r.PressIters[i])*coarseTime +
		float64(r.Substeps[i])*4*(gsTime)
}

// Estimate is a modeled run.
type Estimate struct {
	TimePerStep []float64
	TotalTime   float64
	TotalFlops  float64
	GFLOPS      float64
}

// Predict models the run on P nodes of machine m, in single- or
// dual-processor mode.
func (r *Run) Predict(m Machine, p int, dual bool) Estimate {
	rateMM := m.MFlopsMM * 1e6
	rateVec := m.MFlopsVec * 1e6
	if dual {
		rateMM *= 2 * m.DualEff
		rateVec *= 2 * m.DualEff
	}
	est := Estimate{TimePerStep: make([]float64, len(r.PressIters))}
	for i := range r.PressIters {
		mm, vec := r.StepFlops(i)
		compute := mm/rateMM/float64(p) + vec/rateVec/float64(p)
		t := compute + r.commPerStep(i, m, p)
		est.TimePerStep[i] = t
		est.TotalTime += t
		est.TotalFlops += mm + vec
	}
	est.GFLOPS = est.TotalFlops / est.TotalTime / 1e9
	return est
}

// PaperIterationHistory synthesizes the Fig. 8 iteration history shape for
// nsteps steps: pressure iterations decay from the impulsive-start
// transient (~3x the settled count) to the settled band as the projection
// space fills; Helmholtz counts stay flat. Use measured histories from a
// reduced run when available — this is the documented fallback.
func PaperIterationHistory(nsteps, settledPress, helm, substeps int) ([]int, []int, []int) {
	press := make([]int, nsteps)
	hi := make([]int, nsteps)
	sub := make([]int, nsteps)
	for i := range press {
		decay := math.Exp(-float64(i) / 6.0)
		press[i] = settledPress + int(2.2*float64(settledPress)*decay)
		hi[i] = helm
		sub[i] = substeps
	}
	return press, hi, sub
}

// HairpinRun returns the paper's production configuration (K=8168, N=15,
// 10142 coarse dofs) with the given iteration history.
func HairpinRun(press, helm, substeps []int) *Run {
	return &Run{K: 8168, N: 15, Dim: 3, CoarseN: 10142,
		PressIters: press, HelmIters: helm, Substeps: substeps}
}

// GridPoints returns the velocity-grid point count of the run
// (K·(N+1)^dim; the paper quotes 27,799,110 for the globally assembled
// hairpin mesh).
func (r *Run) GridPoints() float64 {
	n1 := float64(r.N + 1)
	if r.Dim == 3 {
		return float64(r.K) * n1 * n1 * n1
	}
	return float64(r.K) * n1 * n1
}
