package parrun

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/comm"
	"repro/internal/instrument"
	"repro/internal/mesh"
	"repro/internal/ns"
	"repro/internal/solver"
)

// nsCase is a small enclosed 2D case: all-Dirichlet walls (so the pressure
// deflation path runs), a body force, a filter, and projection — every phase
// of the distributed stepper exercised. The tolerances are tightened well
// below the agreement tolerance so reduction-order differences cannot shift
// iteration counts between P values.
func nsCase(t *testing.T) (ns.Config, func(x, y, z float64) (float64, float64, float64)) {
	t.Helper()
	spec := mesh.Box2D(mesh.Box2DSpec{Nx: 4, Ny: 2, X0: 0, X1: 1, Y0: 0, Y1: 1})
	m, err := mesh.Discretize(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ns.Config{
		Mesh: m, Re: 100, Dt: 0.01, Order: 2,
		FilterAlpha: 0.05, ProjectionL: 8,
		PTol: 1e-12, VTol: 1e-13, PMaxIter: 400,
		DirichletMask: func(x, y, z float64) bool { return true },
		DirichletVal: func(x, y, z, t float64) (float64, float64, float64) {
			return 0, 0, 0
		},
		Forcing: func(x, y, z, t float64) (float64, float64, float64) {
			return 1, 0, 0
		},
	}
	init := func(x, y, z float64) (float64, float64, float64) {
		return math.Sin(math.Pi*x) * math.Sin(math.Pi*y),
			0.2 * math.Sin(2*math.Pi*x) * math.Sin(math.Pi*y), 0
	}
	return cfg, init
}

// runSerial advances the serial reference stepper.
func runSerial(t *testing.T, cfg ns.Config, init func(x, y, z float64) (float64, float64, float64), steps int) *ns.Solver {
	t.Helper()
	s, err := ns.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.SetVelocity(init)
	for i := 0; i < steps; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatalf("serial step %d: %v", i+1, err)
		}
	}
	return s
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// TestNavierStokesMatchesSerial: the distributed stepper's fields must agree
// with the serial solver over 10 steps for power-of-two and odd rank counts.
// P = 1 exercises the rank path with no reduction reordering at all; P > 1
// differs only by allreduce summation order.
func TestNavierStokesMatchesSerial(t *testing.T) {
	cfg, init := nsCase(t)
	const steps = 10
	ser := runSerial(t, cfg, init, steps)
	for _, p := range []int{1, 2, 3, 5, 8} {
		res, err := NavierStokes(cfg, NSConfig{P: p, Steps: steps, Init: init})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if res.P != p || res.RequestedP != p {
			t.Fatalf("P=%d: effective/requested %d/%d", p, res.P, res.RequestedP)
		}
		if !res.Converged {
			t.Fatalf("P=%d: %d steps did not converge", p, res.NonconvergedSteps)
		}
		if len(res.StepStats) != steps {
			t.Fatalf("P=%d: %d step stats, want %d", p, len(res.StepStats), steps)
		}
		tol := 1e-8
		for c := 0; c < cfg.Mesh.Dim; c++ {
			if d := maxAbsDiff(res.U[c], ser.Velocity(c)); d > tol {
				t.Errorf("P=%d: velocity component %d differs from serial by %g > %g", p, c, d, tol)
			}
		}
		if d := maxAbsDiff(res.Pressure, ser.Pressure()); d > tol {
			t.Errorf("P=%d: pressure differs from serial by %g > %g", p, d, tol)
		}
		if math.Abs(res.Time-ser.Time()) > 1e-12 {
			t.Errorf("P=%d: time %g, serial %g", p, res.Time, ser.Time())
		}
		if res.VirtualSeconds <= 0 {
			t.Errorf("P=%d: no modeled virtual time", p)
		}
	}
}

// TestNavierStokesStatsMatchSerial: per-step statistics at P = 1 must track
// the serial stepper — exactly for the integer phase structure (substeps,
// Helmholtz iterations, projection basis), and within a small band for the
// pressure iteration count and CFL, which see roundoff-level differences
// from the XXT coarse solve's rounding.
func TestNavierStokesStatsMatchSerial(t *testing.T) {
	cfg, init := nsCase(t)
	const steps = 5
	s, err := ns.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.SetVelocity(init)
	var serial []ns.StepStats
	for i := 0; i < steps; i++ {
		st, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		serial = append(serial, st)
	}
	res, err := NavierStokes(cfg, NSConfig{P: 1, Steps: steps, Init: init})
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range res.StepStats {
		ref := serial[i]
		if st.HelmholtzIters != ref.HelmholtzIters || st.Substeps != ref.Substeps ||
			st.ProjectionBasis != ref.ProjectionBasis {
			t.Errorf("step %d: distributed stats %+v != serial %+v", i+1, st, ref)
		}
		if d := st.PressureIters - ref.PressureIters; d > 10 || d < -10 {
			t.Errorf("step %d: pressure iterations %d vs serial %d", i+1, st.PressureIters, ref.PressureIters)
		}
		if ref.CFL != 0 && math.Abs(st.CFL-ref.CFL) > 1e-9*ref.CFL {
			t.Errorf("step %d: CFL %g vs serial %g", i+1, st.CFL, ref.CFL)
		}
	}
}

// nsTraceRun runs the distributed stepper with a wall-clock-free tracer and
// returns the serialized trace.
func nsTraceRun(t *testing.T, p, steps int) (*instrument.Tracer, []byte) {
	t.Helper()
	cfg, init := nsCase(t)
	tr := instrument.NewTracer()
	tr.DisableWallClock()
	if _, err := NavierStokes(cfg, NSConfig{P: p, Steps: steps, Init: init, Tracer: tr}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return tr, buf.Bytes()
}

// TestNavierStokesTraceShape: the distributed run's trace must validate and
// carry every stepper phase plus the communication substrate on the rank
// virtual tracks.
func TestNavierStokesTraceShape(t *testing.T) {
	const p = 4
	tr, data := nsTraceRun(t, p, 3)
	if err := instrument.ValidateChromeTrace(data, p); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"ns/convect":       false,
		"ns/viscous":       false,
		"ns/pressure":      false,
		"ns/filter":        false,
		"gs/exchange":      false,
		"allreduce":        false,
		"schwarz/local":    false,
		"schwarz/coarse":   false,
		"coarse/xxt.solve": false,
	}
	ranksSeen := map[int]bool{}
	for _, ev := range tr.Events() {
		if ev.Pid == instrument.PidMachine {
			ranksSeen[ev.Tid] = true
			if _, ok := want[ev.Name]; ok {
				want[ev.Name] = true
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("no %q span on any rank track", name)
		}
	}
	if len(ranksSeen) < p {
		t.Errorf("events on %d rank tracks, want %d", len(ranksSeen), p)
	}
}

// TestNavierStokesTraceDeterminism: two identical distributed runs must
// serialize to byte-identical traces with the wall clock disabled.
func TestNavierStokesTraceDeterminism(t *testing.T) {
	_, a := nsTraceRun(t, 4, 3)
	_, b := nsTraceRun(t, 4, 3)
	if !bytes.Equal(a, b) {
		t.Fatalf("traces differ between identical runs: %d vs %d bytes", len(a), len(b))
	}
}

// TestNavierStokesHistoryTelemetry: a distributed run must emit the same
// per-step StepRecord schema the serial stepper writes.
func TestNavierStokesHistoryTelemetry(t *testing.T) {
	cfg, init := nsCase(t)
	hist := instrument.NewTimeSeries()
	res, err := NavierStokes(cfg, NSConfig{P: 3, Steps: 4, Init: init, History: hist})
	if err != nil {
		t.Fatal(err)
	}
	if hist.Len() != 4 {
		t.Fatalf("history has %d records, want 4", hist.Len())
	}
	var buf bytes.Buffer
	if err := hist.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("history JSONL has %d lines, want 4", len(lines))
	}
	for _, key := range []string{"pressure_res_hist", "max_divergence", "pressure_converged"} {
		if !strings.Contains(lines[0], key) {
			t.Errorf("history record missing %q: %s", key, lines[0])
		}
	}
	if !res.Converged {
		t.Fatalf("unexpected nonconvergence")
	}
}

// TestNavierStokesNonconvergedPropagates: with an impossible iteration cap
// the run must report failure uniformly — result flag, counts, and the
// per-step telemetry — never success.
func TestNavierStokesNonconvergedPropagates(t *testing.T) {
	cfg, init := nsCase(t)
	cfg.PMaxIter = 1
	cfg.PTol = 1e-15
	hist := instrument.NewTimeSeries()
	res, err := NavierStokes(cfg, NSConfig{P: 2, Steps: 2, Init: init, History: hist})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("result claims convergence with a 1-iteration pressure cap")
	}
	if res.NonconvergedSteps != 2 {
		t.Fatalf("NonconvergedSteps = %d, want 2", res.NonconvergedSteps)
	}
	for i, st := range res.StepStats {
		if st.PressureConverged {
			t.Errorf("step %d reports a converged pressure solve", i+1)
		}
	}
	var buf bytes.Buffer
	if err := hist.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"pressure_converged":false`) {
		t.Error("history telemetry does not record the nonconverged pressure solves")
	}
}

// TestMachinePMismatchRejected: a caller-supplied Machine.P that disagrees
// with cfg.P must be an error, not a silent reshape — for both entry points.
func TestMachinePMismatchRejected(t *testing.T) {
	m := boxMesh(t, 4, 5)
	mach := comm.ASCIRed(3)
	if _, err := PoissonSchwarz(m, Config{P: 2, Machine: mach}); err == nil {
		t.Error("PoissonSchwarz accepted Machine.P=3 with P=2")
	}
	cfg, init := nsCase(t)
	if _, err := NavierStokes(cfg, NSConfig{P: 2, Machine: mach, Steps: 1, Init: init}); err == nil {
		t.Error("NavierStokes accepted Machine.P=3 with P=2")
	}
}

// TestRequestedPRecorded: clamping to the element count must be observable
// through RequestedP instead of silently rewriting the caller's request.
func TestRequestedPRecorded(t *testing.T) {
	m := boxMesh(t, 2, 5) // K = 4
	res, err := PoissonSchwarz(m, Config{P: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != m.K || res.RequestedP != 9 {
		t.Fatalf("effective/requested = %d/%d, want %d/9", res.P, res.RequestedP, m.K)
	}
}

// TestNavierStokesPrecondVariants: each Chebyshev variant must reproduce the
// serial solver's fields distributed (the bounds come off the shared
// template, so rank count cannot change the polynomial), converge every
// pressure solve, and report the resolved variant in the result.
func TestNavierStokesPrecondVariants(t *testing.T) {
	for _, name := range []string{ns.PrecondChebJacobi, ns.PrecondChebSchwarz} {
		cfg, init := nsCase(t)
		cfg.PressurePrecond = name
		const steps = 6
		ser := runSerial(t, cfg, init, steps)
		for _, p := range []int{1, 3} {
			res, err := NavierStokes(cfg, NSConfig{P: p, Steps: steps, Init: init})
			if err != nil {
				t.Fatalf("%s P=%d: %v", name, p, err)
			}
			if res.Precond != name || res.PrecondSel.Source != "forced" {
				t.Fatalf("%s P=%d: resolved %q (source %q)", name, p, res.Precond, res.PrecondSel.Source)
			}
			if !res.Converged {
				t.Fatalf("%s P=%d: %d steps did not converge", name, p, res.NonconvergedSteps)
			}
			tol := 1e-8
			for c := 0; c < cfg.Mesh.Dim; c++ {
				if d := maxAbsDiff(res.U[c], ser.Velocity(c)); d > tol {
					t.Errorf("%s P=%d: velocity component %d differs from serial by %g > %g", name, p, c, d, tol)
				}
			}
			if d := maxAbsDiff(res.Pressure, ser.Pressure()); d > tol {
				t.Errorf("%s P=%d: pressure differs from serial by %g > %g", name, p, d, tol)
			}
		}
	}
}

// TestNavierStokesPrecondAuto: "auto" distributed must resolve through the
// template's trial tournament, key the selection to the rank count, and run
// converged with the winner reported in the result.
func TestNavierStokesPrecondAuto(t *testing.T) {
	solver.ResetPrecondTable()
	defer solver.ResetPrecondTable()
	cfg, init := nsCase(t)
	cfg.PressurePrecond = ns.PrecondAuto
	res, err := NavierStokes(cfg, NSConfig{P: 3, Steps: 3, Init: init})
	if err != nil {
		t.Fatal(err)
	}
	if !ns.ValidPrecond(res.Precond) || res.Precond == ns.PrecondAuto || res.Precond == ns.PrecondNone {
		t.Fatalf("auto resolved to %q", res.Precond)
	}
	if res.PrecondSel.Source != "trial" || len(res.PrecondSel.Trials) == 0 {
		t.Fatalf("selection = %+v, want a trial tournament", res.PrecondSel)
	}
	if !res.Converged {
		t.Fatalf("auto-selected %q: %d steps did not converge", res.Precond, res.NonconvergedSteps)
	}
	// The selection must be keyed to this rank count, not the serial P=1 key.
	tab := solver.InstalledPrecondTable()
	key := solver.PrecondKey{K: cfg.Mesh.K, N: cfg.Mesh.N, Dim: cfg.Mesh.Dim, P: 3, Tol: cfg.PTol}
	if name, ok := tab.Lookup(key); !ok || name != res.Precond {
		t.Fatalf("table lookup for P=3 key = %q, %v; want %q", name, ok, res.Precond)
	}
}
