package parrun

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/fault"
	"repro/internal/ns"
)

// resumeFrom runs the stepper for ckSteps steps writing a snapshot at the
// end, then loads that snapshot back — the "kill the job at step k" half of
// a restart test.
func resumeFrom(t *testing.T, cfg ns.Config, nc NSConfig, ckSteps int) *Checkpoint {
	t.Helper()
	dir := t.TempDir()
	first := nc
	first.Steps = ckSteps
	first.CheckpointDir = dir
	first.CheckpointEvery = ckSteps
	res, err := NavierStokes(cfg, first)
	if err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	if res.CheckpointsWritten != 1 {
		t.Fatalf("wrote %d snapshots, want 1", res.CheckpointsWritten)
	}
	path, err := LatestCheckpoint(dir)
	if err != nil || path == "" {
		t.Fatalf("latest snapshot: %q, %v", path, err)
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Step != ckSteps {
		t.Fatalf("snapshot at step %d, want %d", ck.Step, ckSteps)
	}
	return ck
}

// requireBitwiseContinuation compares a resumed run against the tail of the
// uninterrupted run: per-step statistics, per-step modeled times, and the
// final fields must all be bitwise equal — restart is a continuation, not
// an approximation.
func requireBitwiseContinuation(t *testing.T, full, resumed *NSResult, ckSteps int) {
	t.Helper()
	if resumed.FirstStep != ckSteps {
		t.Fatalf("resumed FirstStep %d, want %d", resumed.FirstStep, ckSteps)
	}
	wantSteps := full.Steps - ckSteps
	if len(resumed.StepStats) != wantSteps || len(resumed.StepVirtual) != wantSteps {
		t.Fatalf("resumed run has %d stats / %d step times, want %d",
			len(resumed.StepStats), len(resumed.StepVirtual), wantSteps)
	}
	for s := 0; s < wantSteps; s++ {
		a, b := full.StepStats[ckSteps+s], resumed.StepStats[s]
		if a != b {
			t.Errorf("step %d statistics diverge after resume:\n full    %+v\n resumed %+v",
				ckSteps+s+1, a, b)
		}
		if full.StepVirtual[ckSteps+s] != resumed.StepVirtual[s] {
			t.Errorf("step %d modeled time diverges: %g vs %g",
				ckSteps+s+1, full.StepVirtual[ckSteps+s], resumed.StepVirtual[s])
		}
	}
	if full.VirtualSeconds != resumed.VirtualSeconds {
		t.Errorf("final virtual clock diverges: %g vs %g", full.VirtualSeconds, resumed.VirtualSeconds)
	}
	for c := range full.U {
		if full.U[c] == nil {
			continue
		}
		for i := range full.U[c] {
			if full.U[c][i] != resumed.U[c][i] {
				t.Fatalf("velocity component %d index %d diverges after resume: %g vs %g",
					c, i, full.U[c][i], resumed.U[c][i])
			}
		}
	}
	for i := range full.Pressure {
		if full.Pressure[i] != resumed.Pressure[i] {
			t.Fatalf("pressure index %d diverges after resume: %g vs %g",
				i, full.Pressure[i], resumed.Pressure[i])
		}
	}
}

// TestCheckpointResumeBitwise: killing the run after 2 of 4 steps and
// resuming from the snapshot must reproduce the uninterrupted run bitwise.
func TestCheckpointResumeBitwise(t *testing.T) {
	cfg, init := nsCase(t)
	const p, ckSteps, steps = 3, 2, 4
	base := NSConfig{P: p, Steps: steps, Init: init}
	full, err := NavierStokes(cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	ck := resumeFrom(t, cfg, base, ckSteps)
	re := base
	re.Resume = ck
	resumed, err := NavierStokes(cfg, re)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	requireBitwiseContinuation(t, full, resumed, ckSteps)
}

// TestCheckpointResumeBitwiseUnderFaults: the same kill-and-resume contract
// must hold on a degraded machine — the snapshot carries the fault plan's
// per-sender sequence counters, so every post-resume drop, jitter, and
// straggler draw lands exactly where the uninterrupted run put it.
func TestCheckpointResumeBitwiseUnderFaults(t *testing.T) {
	cfg, init := nsCase(t)
	const p, ckSteps, steps = 3, 2, 4
	plan := &fault.Plan{
		Seed:       11,
		Stragglers: []fault.Straggler{{Rank: 2, Factor: 2.5}},
		Drops:      []fault.Drop{{From: -1, To: -1, Prob: 0.01}},
		Links:      []fault.LinkJitter{{From: 0, To: -1, MaxDelay: 5e-6}},
	}
	base := NSConfig{P: p, Steps: steps, Init: init, Faults: plan}
	full, err := NavierStokes(cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	if full.Drops == 0 {
		t.Fatal("plan produced no drops; the resume test would not exercise fault-state restore")
	}
	ck := resumeFrom(t, cfg, base, ckSteps)
	re := base
	re.Resume = ck
	resumed, err := NavierStokes(cfg, re)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	requireBitwiseContinuation(t, full, resumed, ckSteps)
}

// TestCheckpointingIsInvisible: enabling snapshots must not perturb the run
// — the deposit happens outside the simulated machine.
func TestCheckpointingIsInvisible(t *testing.T) {
	cfg, init := nsCase(t)
	base := NSConfig{P: 3, Steps: 3, Init: init}
	plain, err := NavierStokes(cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	ck := base
	ck.CheckpointDir = t.TempDir()
	ck.CheckpointEvery = 1
	snapped, err := NavierStokes(cfg, ck)
	if err != nil {
		t.Fatal(err)
	}
	if snapped.CheckpointsWritten != 3 {
		t.Fatalf("wrote %d snapshots, want 3", snapped.CheckpointsWritten)
	}
	if plain.VirtualSeconds != snapped.VirtualSeconds {
		t.Fatalf("checkpointing moved the virtual clock: %g vs %g",
			plain.VirtualSeconds, snapped.VirtualSeconds)
	}
	for s := range plain.StepStats {
		if plain.StepStats[s] != snapped.StepStats[s] {
			t.Fatalf("checkpointing changed step %d statistics", s+1)
		}
	}
}

// TestCheckpointValidation: mismatched snapshots must be rejected with a
// diagnosable error, never silently restored.
func TestCheckpointValidation(t *testing.T) {
	cfg, init := nsCase(t)
	base := NSConfig{P: 3, Steps: 2, Init: init}
	ck := resumeFrom(t, cfg, base, 2)

	re := base
	re.P = 2
	re.Steps = 4
	re.Resume = ck
	if _, err := NavierStokes(cfg, re); err == nil ||
		!strings.Contains(err.Error(), "rank count") {
		t.Errorf("P mismatch accepted (err: %v)", err)
	}

	re = base
	re.Steps = 2 // snapshot already holds all of them
	re.Resume = ck
	if _, err := NavierStokes(cfg, re); err == nil ||
		!strings.Contains(err.Error(), "step") {
		t.Errorf("already-complete snapshot accepted (err: %v)", err)
	}

	if path, err := LatestCheckpoint(t.TempDir()); err != nil || path != "" {
		t.Errorf("empty dir: path %q, err %v", path, err)
	}
	if path, err := LatestCheckpoint("/does/not/exist"); err != nil || path != "" {
		t.Errorf("missing dir: path %q, err %v", path, err)
	}
}

// TestCheckpointWriteSharedDir is the regression test for the fixed-name
// temp-file collision: with the old path+".tmp" scheme, two sessions
// checkpointing the same step number into one directory raced on the same
// temp file and could rename each other's half-written bytes into place.
// With unique temp names every concurrently written snapshot must load
// back intact.
func TestCheckpointWriteSharedDir(t *testing.T) {
	dir := t.TempDir()
	mk := func(step, marker int) *Checkpoint {
		return &Checkpoint{
			Version: CheckpointVersion, Step: step, P: 1,
			K: marker, N: 5, Dim: 2, Np: 36, Npp: 16,
			Ranks: []RankCheckpoint{{Rank: 0, U: [3][]float64{
				make([]float64, 64), make([]float64, 64), nil,
			}}},
		}
	}
	const writers = 8
	const rounds = 20
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// All writers share the directory; each has its own final path
			// (two sessions, same step) but the temp names must not collide.
			path := filepath.Join(dir, fmt.Sprintf("sess%d-ckpt-000010.gob", w))
			for r := 0; r < rounds; r++ {
				if err := mk(10, w).WriteFile(path); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		path := filepath.Join(dir, fmt.Sprintf("sess%d-ckpt-000010.gob", w))
		c, err := LoadCheckpoint(path)
		if err != nil {
			t.Fatalf("writer %d: snapshot did not survive concurrent writes: %v", w, err)
		}
		if c.K != w || c.Step != 10 {
			t.Fatalf("writer %d: loaded someone else's snapshot: K=%d step=%d", w, c.K, c.Step)
		}
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}
