package parrun

import (
	"bytes"
	"testing"

	"repro/internal/fault"
	"repro/internal/instrument"
)

func degradedPlan() *fault.Plan {
	return &fault.Plan{
		Seed:       21,
		Stragglers: []fault.Straggler{{Rank: 1, Factor: 3}},
		Drops:      []fault.Drop{{From: -1, To: -1, Prob: 0.02}},
	}
}

// nsFaultTraceRun runs the degraded distributed stepper with a
// wall-clock-free tracer and returns the result plus the serialized trace.
func nsFaultTraceRun(t *testing.T, p, steps int, plan *fault.Plan) (*NSResult, []byte) {
	t.Helper()
	cfg, init := nsCase(t)
	tr := instrument.NewTracer()
	tr.DisableWallClock()
	res, err := NavierStokes(cfg, NSConfig{P: p, Steps: steps, Init: init, Tracer: tr, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// TestNavierStokesDegradedCompletes: under a straggler plus lossy links the
// full stepper must still complete and converge, with the recovery visible
// in the counters and the degradation visible on the virtual clock — while
// the solver statistics stay bitwise identical to the flawless machine's
// (faults move time, never values).
func TestNavierStokesDegradedCompletes(t *testing.T) {
	cfg, init := nsCase(t)
	const p, steps = 4, 3
	clean, err := NavierStokes(cfg, NSConfig{P: p, Steps: steps, Init: init})
	if err != nil {
		t.Fatal(err)
	}
	res, data := nsFaultTraceRun(t, p, steps, degradedPlan())
	if !res.Converged {
		t.Fatalf("degraded run did not converge (%d bad steps)", res.NonconvergedSteps)
	}
	if res.Drops == 0 {
		t.Fatal("prob-0.02 plan dropped nothing over a full stepper run")
	}
	if res.Retries != res.Drops {
		t.Fatalf("retries %d != drops %d (every recovered drop is one retry)", res.Retries, res.Drops)
	}
	if res.FaultStallSec <= 0 {
		t.Fatal("no virtual time attributed to faults")
	}
	if res.VirtualSeconds <= clean.VirtualSeconds {
		t.Fatalf("degraded run not slower: %g <= %g", res.VirtualSeconds, clean.VirtualSeconds)
	}
	for s := range clean.StepStats {
		if clean.StepStats[s] != res.StepStats[s] {
			t.Fatalf("step %d solver statistics differ between machines:\n clean    %+v\n degraded %+v",
				s+1, clean.StepStats[s], res.StepStats[s])
		}
	}
	if err := instrument.ValidateChromeTrace(data, p); err != nil {
		t.Fatal(err)
	}
	n, err := instrument.CountCategory(data, "fault")
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("degraded run's trace carries no fault-category spans")
	}
}

// TestNavierStokesFaultTraceDeterminism: the fault plan draws from pure
// hashes of (seed, link, sequence), not a shared RNG stream, so two
// identical degraded runs must serialize byte-identical traces.
func TestNavierStokesFaultTraceDeterminism(t *testing.T) {
	_, a := nsFaultTraceRun(t, 4, 3, degradedPlan())
	_, b := nsFaultTraceRun(t, 4, 3, degradedPlan())
	if !bytes.Equal(a, b) {
		t.Fatalf("traces differ between identical degraded runs: %d vs %d bytes", len(a), len(b))
	}
	// A different seed must change the trace — the determinism above is not
	// the plan being ignored.
	other := degradedPlan()
	other.Seed = 22
	_, c := nsFaultTraceRun(t, 4, 3, other)
	if bytes.Equal(a, c) {
		t.Fatal("changing the fault seed left the trace byte-identical")
	}
}
