// Package parrun executes the paper's production solver stack — additive
// Schwarz (FDM local solves + XXT coarse solve) preconditioned conjugate
// gradients — as a genuine SPMD program on the simulated message-passing
// machine: the element mesh is partitioned by recursive spectral bisection,
// each goroutine rank assembles residuals with the distributed
// gather–scatter, inner products are allreduces, and the coarse vertex
// solve routes through the distributed XXT solver. Its purpose is the
// per-rank communication timeline of Figs. 6/8: with a Tracer attached,
// every collective, gs exchange, Schwarz local solve, and XXT coarse solve
// appears as a span on the owning rank's virtual-clock track.
package parrun

import (
	"fmt"
	"math"

	"repro/internal/coarse"
	"repro/internal/comm"
	"repro/internal/gs"
	"repro/internal/instrument"
	"repro/internal/mesh"
	"repro/internal/partition"
	"repro/internal/schwarz"
	"repro/internal/sem"
	"repro/internal/solver"
)

// Config controls a distributed Poisson solve.
type Config struct {
	P        int                  // simulated ranks (clamped to the element count)
	Machine  comm.Machine         // zero value: ASCIRed(P)
	Tol      float64              // relative CG tolerance (default 1e-8)
	MaxIter  int                  // default 200
	Registry *instrument.Registry // optional metrics
	Tracer   *instrument.Tracer   // optional trace (per-rank virtual tracks)
}

// Result reports the solve and its modeled parallel cost.
type Result struct {
	P              int // effective ranks (after clamping to the element count)
	RequestedP     int // ranks the caller asked for
	Iterations     int
	Converged      bool
	InitialRes     float64
	FinalRes       float64
	VirtualSeconds float64 // max rank clock (modeled completion time)
	TotalBytes     int64
	TotalMsgs      int64
	CutEdges       int // RSB partition quality
	CrossCols      int // XXT separator-crossing columns
	Neumann        bool
	X              []float64 // solution reassembled to element-local layout (K*Np)
}

// PoissonSchwarz solves a Poisson problem on m with the Schwarz(FDM)+XXT
// preconditioned CG, distributed over cfg.P simulated ranks. Meshes without
// boundary (fully periodic) are handled as the pure-Neumann problem: the
// coarse operator pins one vertex and the right-hand side is deflated.
func PoissonSchwarz(m *mesh.Mesh, cfg Config) (*Result, error) {
	requested, mach, err := resolveRanks(cfg.P, cfg.Machine, m.K)
	if err != nil {
		return nil, err
	}
	p := mach.P
	if cfg.Tol == 0 {
		cfg.Tol = 1e-8
	}
	if cfg.MaxIter == 0 {
		cfg.MaxIter = 200
	}

	mask := m.BoundaryMask(nil)
	neumann := true
	for _, mk := range mask {
		if mk == 0 {
			neumann = false
			break
		}
	}
	dser := sem.New(m, maskOrNil(mask, neumann), 1)
	pre, err := schwarz.New(dser, schwarz.Options{
		Method: schwarz.FDM, UseCoarse: true, Neumann: neumann,
	})
	if err != nil {
		return nil, fmt.Errorf("parrun: schwarz setup: %w", err)
	}
	xxt, err := coarse.NewXXT(pre.CoarseOperator(), 0, 0, p)
	if err != nil {
		return nil, fmt.Errorf("parrun: coarse setup: %w", err)
	}
	xxt.Attach(cfg.Registry)
	xxt.AttachTracer(cfg.Tracer)

	part := partition.RSB(m.Adj, p)
	elems := make([][]int, p)
	for e, q := range part {
		elems[q] = append(elems[q], e)
	}

	net := comm.NewNetwork(mach)
	net.Attach(cfg.Registry)
	net.AttachTracer(cfg.Tracer)

	// Shared, read-only across ranks: computed once instead of per body.
	invPerm := make([]int, len(xxt.Perm))
	for newi, old := range xxt.Perm {
		invPerm[old] = newi
	}

	stats := make([]solver.Stats, p)
	xs := make([][]float64, p)
	ranks := net.Run(func(r *comm.Rank) {
		stats[r.ID], xs[r.ID] = rankBody(r, m, mask, neumann, elems[r.ID], pre, xxt, invPerm, cfg)
	})
	if err := checkStatsAgree(stats); err != nil {
		return nil, err
	}

	res := &Result{
		P:              p,
		RequestedP:     requested,
		Iterations:     stats[0].Iterations,
		Converged:      stats[0].Converged,
		InitialRes:     stats[0].InitialRes,
		FinalRes:       stats[0].FinalRes,
		VirtualSeconds: comm.MaxTime(ranks),
		TotalBytes:     comm.TotalBytes(ranks),
		CutEdges:       partition.CutEdges(m.Adj, part),
		CrossCols:      xxt.CrossCount(),
		Neumann:        neumann,
	}
	for _, rk := range ranks {
		res.TotalMsgs += rk.MsgsSent
	}
	res.X = make([]float64, m.K*m.Np)
	for q := range elems {
		for li, e := range elems[q] {
			copy(res.X[e*m.Np:(e+1)*m.Np], xs[q][li*m.Np:(li+1)*m.Np])
		}
	}
	return res, nil
}

// resolveRanks reconciles the requested rank count with the machine model
// and the element count: a caller-supplied Machine.P must agree with P
// (rather than being silently overwritten), and the effective count is
// clamped to K so every rank owns at least one element. It returns the
// requested count and the machine reshaped to the effective count.
func resolveRanks(p int, mach comm.Machine, k int) (requested int, out comm.Machine, err error) {
	requested = p
	if requested < 1 {
		if mach.P > 0 {
			requested = mach.P
		} else {
			requested = 1
		}
	}
	if mach.P != 0 && mach.P != requested {
		return 0, mach, fmt.Errorf("parrun: Machine.P = %d disagrees with cfg.P = %d (set one, or make them equal)",
			mach.P, p)
	}
	eff := requested
	if eff > k {
		eff = k
	}
	if mach.P == 0 {
		mach = comm.ASCIRed(eff)
	}
	mach.P = eff
	return requested, mach, nil
}

// checkStatsAgree verifies that every rank's CG saw identical statistics.
// The simulated collectives return bitwise-identical results on all ranks,
// so any disagreement means a rank diverged from the SPMD control flow —
// the classic silent replicated-scalar corruption.
func checkStatsAgree(stats []solver.Stats) error {
	for q := 1; q < len(stats); q++ {
		a, b := stats[0], stats[q]
		if a.Iterations != b.Iterations || a.Converged != b.Converged ||
			a.FinalRes != b.FinalRes || a.InitialRes != b.InitialRes {
			return fmt.Errorf("parrun: rank %d CG statistics disagree with rank 0 "+
				"(iters %d/%d, converged %v/%v, res %g/%g): replicated-scalar drift",
				q, a.Iterations, b.Iterations, a.Converged, b.Converged, a.FinalRes, b.FinalRes)
		}
	}
	return nil
}

func maskOrNil(mask []float64, neumann bool) []float64 {
	if neumann {
		return nil
	}
	return mask
}

// rankBody is the SPMD body of one simulated rank.
func rankBody(r *comm.Rank, m *mesh.Mesh, mask []float64, neumann bool,
	mine []int, pre *schwarz.Precond, xxt *coarse.XXT, invPerm []int, cfg Config) (solver.Stats, []float64) {
	tr := cfg.Tracer
	nloc := len(mine) * m.Np
	gids := make([]int64, nloc)
	lmask := make([]float64, nloc)
	b := make([]float64, nloc)
	for li, e := range mine {
		for l := 0; l < m.Np; l++ {
			gi := e*m.Np + l
			lj := li*m.Np + l
			gids[lj] = m.GID[gi]
			lmask[lj] = mask[gi]
			f := 2 * math.Pi * math.Pi * math.Sin(math.Pi*m.X[gi]) * math.Sin(math.Pi*m.Y[gi])
			b[lj] = m.B[gi] * f
		}
	}
	if neumann {
		for i := range lmask {
			lmask[i] = 1
		}
	}
	h := gs.ParInit(r, gids)
	h.Attach(cfg.Registry)
	h.AttachTracer(tr)
	d := sem.New(m, maskOrNil(mask, neumann), 1) // per-rank operator workspace
	mult := make([]float64, nloc)
	for i := range mult {
		mult[i] = 1
	}
	h.Apply(mult, gs.Sum)

	applyMask := func(u []float64) {
		if neumann {
			return
		}
		for i := range u {
			u[i] *= lmask[i]
		}
	}
	apply := func(out, in []float64) {
		f0 := d.Flops()
		for li, e := range mine {
			d.StiffnessElement(out[li*m.Np:(li+1)*m.Np], in[li*m.Np:(li+1)*m.Np], e)
		}
		r.Compute(d.Flops() - f0)
		h.Apply(out, gs.Sum)
		applyMask(out)
	}
	dot := func(u, v []float64) float64 {
		var s float64
		for i := range u {
			s += u[i] * v[i] / mult[i]
		}
		r.Compute(int64(3 * len(u)))
		return r.AllreduceScalar(s, comm.OpSum)
	}

	// Assemble the RHS; deflate its mean in the Neumann case (compatibility
	// with the constant null space).
	h.Apply(b, gs.Sum)
	applyMask(b)
	if neumann {
		bw := make([]float64, nloc)
		for li, e := range mine {
			copy(bw[li*m.Np:(li+1)*m.Np], m.B[e*m.Np:(e+1)*m.Np])
		}
		h.Apply(bw, gs.Sum)
		var sb, sw float64
		for i := range b {
			sb += b[i] / mult[i]
			sw += bw[i] / mult[i]
		}
		sb = r.AllreduceScalar(sb, comm.OpSum)
		sw = r.AllreduceScalar(sw, comm.OpSum)
		c := sb / sw
		for i := range b {
			b[i] -= c * bw[i]
		}
	}

	// Additive Schwarz: FDM local solves + distributed XXT coarse solve.
	// The coarse-term temporaries are arenas allocated once per rank — the
	// precond runs every CG iteration and its NVert-length buffers were the
	// dominant allocation at large P.
	work := pre.NewLocalWork()
	nv := m.NVert
	perm := xxt.Perm
	lo, hi := xxt.BlockLo[r.ID], xxt.BlockHi[r.ID]
	r0 := make([]float64, nv)
	up := make([]float64, nv)
	x0 := make([]float64, nv)
	bLocal := make([]float64, hi-lo)
	xw := xxt.NewSolveWork(r.ID)
	precond := func(out, in []float64) {
		t0 := r.Time
		flops, err := pre.LocalSolveElems(out, in, mine, work)
		if err != nil {
			panic(err)
		}
		r.Compute(flops)
		if tr.WantsV(r.ID) {
			tr.SpanV(r.ID, "schwarz/local", "precond", t0, r.Time,
				map[string]any{"elems": len(mine)})
		}
		h.Apply(out, gs.Sum)
		// Coarse term: restrict over my elements, allreduce the vertex RHS,
		// distributed XXT solve, allreduce the solution blocks, prolong.
		t1 := r.Time
		for i := range r0 {
			r0[i] = 0
		}
		cf := pre.CoarseRestrictElems(r0, in, mine)
		r.Compute(cf)
		r.Allreduce(r0, comm.OpSum)
		for newi := lo; newi < hi; newi++ {
			bLocal[newi-lo] = r0[perm[newi]]
		}
		uLocal := xxt.SolveOnW(r, bLocal, xw)
		for i := range up {
			up[i] = 0
		}
		copy(up[lo:hi], uLocal)
		r.Allreduce(up, comm.OpSum)
		for old := 0; old < nv; old++ {
			x0[old] = up[invPerm[old]]
		}
		cf = pre.CoarseProlongElems(out, x0, mine)
		r.Compute(cf)
		if tr.WantsV(r.ID) {
			tr.SpanV(r.ID, "schwarz/coarse", "precond", t1, r.Time,
				map[string]any{"nvert": nv})
		}
		applyMask(out)
	}

	x := make([]float64, nloc)
	// No solver.Options.Tracer here: P concurrent CG loops would interleave
	// begin/end pairs on the single wall-clock track.
	st := solver.CG(apply, dot, x, b, solver.Options{
		Tol: cfg.Tol, Relative: true, MaxIter: cfg.MaxIter, Precond: precond,
		History: true,
	})
	return st, x
}
