package parrun

// checkpoint.go implements checkpoint/restart for the distributed
// Navier–Stokes stepper. Every K steps each rank deposits a deep copy of
// its complete stepper state — velocity, BDF-OIFS history, pressure, the
// pressure-projection basis, and the comm clock state (virtual time,
// traffic counters, flow/fault sequence counters) — into a shared sink;
// when all P deposits for a step have landed, the sink writes one versioned
// snapshot file. The deposit happens outside the simulated machine (no
// messages, no virtual-clock cost), so a run with checkpointing enabled is
// bitwise identical to one without, and a run restarted from a snapshot is
// a bitwise-identical continuation of the uninterrupted run: same per-step
// statistics, same fields, same virtual clocks, same fault-plan draws.
//
// Serialization is encoding/gob: float64 values round-trip exactly (JSON
// would not), and the Version field guards the layout.

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/comm"
)

// CheckpointVersion is the snapshot layout version; Load rejects others.
const CheckpointVersion = 1

// RankCheckpoint is one rank's slice of the stepper state.
type RankCheckpoint struct {
	Rank  int
	Clock comm.ClockState

	U  [3][]float64   // velocity blocks (element-local, owned elements)
	Uh [][3][]float64 // BDF/OIFS velocity history (newest first)
	P  []float64      // pressure blocks

	ProjXs  [][]float64 // pressure-projection basis
	ProjAxs [][]float64 // operator images of the basis

	// Cached assembled Helmholtz Jacobi diagonal (nil if never built).
	// Restoring it keeps the resumed run from recomputing — and therefore
	// re-communicating — what the uninterrupted run had cached.
	Diag           []float64
	DiagH1, DiagH2 float64
}

// Checkpoint is a versioned snapshot of a distributed run after Step
// completed steps.
type Checkpoint struct {
	Version int
	Step    int     // completed steps
	Time    float64 // simulation time after Step steps
	P       int     // ranks of the run (restart requires the same count)

	// Mesh/discretization shape guard: a snapshot only restores onto the
	// problem it was taken from.
	K, N, Dim, Np, Npp int

	Ranks []RankCheckpoint
}

// checkpointPath names the snapshot for one step inside dir.
func checkpointPath(dir string, step int) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%06d.gob", step))
}

// WriteFile atomically serializes the checkpoint: a uniquely named temp
// file in the target directory, fsync'd before the rename. The fsync
// matters — rename alone orders the directory entry, not the data, so a
// crash shortly after an unsynced rename can leave an empty or truncated
// "atomic" snapshot. The unique temp name (os.CreateTemp) matters too: the
// old fixed path+".tmp" collided when two sessions checkpointed the same
// step into a shared directory, each clobbering the other's half-written
// temp file.
func (c *Checkpoint) WriteFile(path string) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmp := f.Name()
	fail := func(op string, err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %s: %w", op, err)
	}
	if err := gob.NewEncoder(f).Encode(c); err != nil {
		return fail("encode", err)
	}
	if err := f.Sync(); err != nil {
		return fail("sync", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	// Best-effort directory sync so the rename itself survives a crash.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// LoadCheckpoint reads and version-checks a snapshot file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	var c Checkpoint
	if err := gob.NewDecoder(f).Decode(&c); err != nil {
		return nil, fmt.Errorf("checkpoint: %s: decode: %w", path, err)
	}
	if c.Version != CheckpointVersion {
		return nil, fmt.Errorf("checkpoint: %s: version %d, this build reads %d",
			path, c.Version, CheckpointVersion)
	}
	if len(c.Ranks) != c.P {
		return nil, fmt.Errorf("checkpoint: %s: %d rank states for P=%d", path, len(c.Ranks), c.P)
	}
	return &c, nil
}

// LatestCheckpoint returns the highest-step snapshot path in dir ("" when
// the directory holds none).
func LatestCheckpoint(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return "", nil
		}
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && len(name) == len("ckpt-000000.gob") &&
			name[:5] == "ckpt-" && filepath.Ext(name) == ".gob" {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return "", nil
	}
	sort.Strings(names) // zero-padded step numbers sort lexicographically
	return filepath.Join(dir, names[len(names)-1]), nil
}

// ckptSink collects per-rank deposits and writes the snapshot once all P
// ranks have contributed for a step. Ranks at most one step apart can have
// pending deposits simultaneously (every step is full of allreduces), so
// the pending map stays tiny.
type ckptSink struct {
	mu      sync.Mutex
	dir     string
	p       int
	shape   Checkpoint // template carrying the shape-guard fields
	pending map[int]*Checkpoint
	written int
	err     error // first write error, surfaced after the run
}

func newCkptSink(dir string, p int, shape Checkpoint) *ckptSink {
	return &ckptSink{dir: dir, p: p, shape: shape, pending: map[int]*Checkpoint{}}
}

// deposit stores one rank's state for a step; the last deposit triggers the
// file write (wall-clock I/O only — the simulated machine never sees it).
func (s *ckptSink) deposit(step int, time float64, rs RankCheckpoint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.pending[step]
	if !ok {
		c = &Checkpoint{Version: CheckpointVersion, Step: step, Time: time, P: s.p,
			K: s.shape.K, N: s.shape.N, Dim: s.shape.Dim, Np: s.shape.Np, Npp: s.shape.Npp,
			Ranks: make([]RankCheckpoint, 0, s.p)}
		s.pending[step] = c
	}
	c.Ranks = append(c.Ranks, rs)
	if len(c.Ranks) < s.p {
		return
	}
	delete(s.pending, step)
	sort.Slice(c.Ranks, func(i, j int) bool { return c.Ranks[i].Rank < c.Ranks[j].Rank })
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		if s.err == nil {
			s.err = err
		}
		return
	}
	if err := c.WriteFile(checkpointPath(s.dir, step)); err != nil {
		if s.err == nil {
			s.err = err
		}
		return
	}
	s.written++
}

// validateFor checks a snapshot against the run it is restoring into.
func (c *Checkpoint) validateFor(p, k, n, dim, np, npp, steps int) error {
	if c.P != p {
		return fmt.Errorf("checkpoint: taken at P=%d, run uses P=%d (restart with the same rank count)", c.P, p)
	}
	if c.K != k || c.N != n || c.Dim != dim || c.Np != np || c.Npp != npp {
		return fmt.Errorf("checkpoint: mesh/discretization mismatch (snapshot K=%d N=%d dim=%d, run K=%d N=%d dim=%d)",
			c.K, c.N, c.Dim, k, n, dim)
	}
	if c.Step >= steps {
		return fmt.Errorf("checkpoint: snapshot already at step %d, run targets %d total steps", c.Step, steps)
	}
	return nil
}
