package parrun

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/instrument"
)

// TestCriticalPathMatchesNSAccounting cross-checks the trace-derived
// critical path against the stepper's own virtual-time accounting: the
// path's total must equal the modeled completion time (it ends at the last
// rank's clock), bound the per-rank average phase breakdown from above,
// and decompose into per-step stretches that cover every executed step.
func TestCriticalPathMatchesNSAccounting(t *testing.T) {
	cfg, init := nsCase(t)
	const p, steps = 4, 3
	tr := instrument.NewTracer()
	tr.DisableWallClock()
	res, err := NavierStokes(cfg, NSConfig{P: p, Steps: steps, Init: init, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	cp, err := instrument.AnalyzeCriticalPath(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if cp.Ranks != p {
		t.Fatalf("critical path saw %d rank tracks, want %d", cp.Ranks, p)
	}
	// The path ends at the last rank to finish, which is exactly the
	// result's modeled completion time.
	if d := math.Abs(cp.TotalSeconds - res.VirtualSeconds); d > 1e-12*res.VirtualSeconds {
		t.Fatalf("path total %g != modeled completion %g", cp.TotalSeconds, res.VirtualSeconds)
	}
	// It bounds the per-rank average phase sum from above (the max rank is
	// no faster than the average, and the path also carries setup).
	var phaseSum float64
	for _, v := range res.PhaseVirtual {
		phaseSum += v
	}
	if cp.TotalSeconds < phaseSum {
		t.Fatalf("path total %g < mean per-rank phase sum %g", cp.TotalSeconds, phaseSum)
	}
	// Segments partition [0, total] with no gaps or overlaps.
	var sum float64
	for i, s := range cp.Segments {
		sum += s.T1 - s.T0
		if i > 0 && s.T0 < cp.Segments[i-1].T1-1e-15 {
			t.Fatalf("segment %d overlaps predecessor", i)
		}
	}
	if d := math.Abs(sum - cp.TotalSeconds); d > 1e-9*cp.TotalSeconds {
		t.Fatalf("segments sum to %g, want %g", sum, cp.TotalSeconds)
	}
	// Every executed step appears on the path, and the per-step path time is
	// consistent with the stepper's own per-step elapsed accounting: each
	// step's critical stretch cannot exceed the global clock advance over
	// that step by more than boundary skew between ranks.
	seen := map[int]float64{}
	for _, st := range cp.Steps {
		seen[st.Step] = st.Seconds
	}
	for i := 1; i <= steps; i++ {
		if seen[i] <= 0 {
			t.Errorf("step %d missing from critical path: %v", i, seen)
		}
	}
	// The distributed pressure solve must put collective latency on the
	// path — this is the quantity the strong-scaling study attributes the
	// large-P regime to.
	if cp.ByCategory["allreduce"] <= 0 {
		t.Error("no allreduce time on the critical path")
	}
	if cp.ByPhase["pressure"] <= 0 {
		t.Error("no pressure-phase time on the critical path")
	}
	if cp.Hops == 0 {
		t.Error("critical path never crossed a message edge at P=4")
	}
	// Per-rank accounting closes: on-path + slack = total for every rank.
	var onPath float64
	for _, pr := range cp.PerRank {
		onPath += pr.OnPath
		if d := math.Abs(pr.OnPath + pr.Slack - cp.TotalSeconds); d > 1e-9*cp.TotalSeconds {
			t.Errorf("rank %d: on-path %g + slack %g != total %g", pr.Rank, pr.OnPath, pr.Slack, cp.TotalSeconds)
		}
	}
	if d := math.Abs(onPath - cp.TotalSeconds); d > 1e-9*cp.TotalSeconds {
		t.Errorf("per-rank on-path times sum to %g, want %g", onPath, cp.TotalSeconds)
	}
}

// TestCriticalPathOnSampledTrace: rank sampling keeps the analyzer usable —
// the walk runs over the recorded tracks only and still produces a
// gap-free path ending at the sampled ranks' last clock.
func TestCriticalPathOnSampledTrace(t *testing.T) {
	cfg, init := nsCase(t)
	const p, steps = 4, 2
	tr := instrument.NewTracer()
	tr.DisableWallClock()
	tr.SampleVRanks([]int{0, 2})
	if _, err := NavierStokes(cfg, NSConfig{P: p, Steps: steps, Init: init, Tracer: tr}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := instrument.ValidateFlowClosure(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	cp, err := instrument.AnalyzeCriticalPath(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if cp.Ranks != 2 {
		t.Fatalf("sampled trace has %d rank tracks, want 2", cp.Ranks)
	}
	var sum float64
	for _, s := range cp.Segments {
		if s.Rank != 0 && s.Rank != 2 {
			t.Fatalf("path visits unsampled rank %d", s.Rank)
		}
		sum += s.T1 - s.T0
	}
	if d := math.Abs(sum - cp.TotalSeconds); d > 1e-9*cp.TotalSeconds {
		t.Fatalf("sampled path has gaps: %g vs %g", sum, cp.TotalSeconds)
	}
}
