package parrun

import (
	"math"
	"testing"

	"repro/internal/flowcases"
)

// TestNavierStokesChannelPeriodicMatchesSerial: the paper's channel case on
// the periodic mesh, distributed over several rank counts, must agree with
// the serial solver. This is the hard regression for two subtle failure
// modes fixed together:
//
//   - the component-0 viscous Helmholtz solve starts so close to its
//     solution that the relative tolerance is below machine precision; CG
//     then idles at the roundoff floor where a single near-breakdown step
//     (tiny positive p·q, huge alpha) can catapult the iterate O(1e-3) away.
//     Reduction-order roundoff decides whether that step happens, so before
//     CG returned its best iterate the distributed fields disagreed with
//     serial by ~1e-2 at P >= 4 while P <= 2 happened to match;
//   - map-iteration-order nondeterminism (mesh adjacency, XXT owned-column
//     accumulation) made the failure appear and vanish between processes.
func TestNavierStokesChannelPeriodicMatchesSerial(t *testing.T) {
	cfg, init, _, err := flowcases.ChannelSpec(flowcases.ChannelConfig{
		Re: 7500, Alpha: 1, N: 5, Dt: 0.003125, Order: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	const steps = 3
	ser := runSerial(t, cfg, init, steps)
	for _, p := range []int{1, 2, 4, 8} {
		res, err := NavierStokes(cfg, NSConfig{P: p, Steps: steps, Init: init})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		const tol = 1e-8
		for c := 0; c < cfg.Mesh.Dim; c++ {
			if d := maxAbsDiff(res.U[c], ser.Velocity(c)); d > tol {
				t.Errorf("P=%d: velocity component %d differs from serial by %g > %g", p, c, d, tol)
			}
		}
		if d := maxAbsDiff(res.Pressure, ser.Pressure()); d > tol {
			t.Errorf("P=%d: pressure differs from serial by %g > %g", p, d, tol)
		}
		if math.Abs(res.Time-ser.Time()) > 1e-12 {
			t.Errorf("P=%d: time %g, serial %g", p, res.Time, ser.Time())
		}
	}
}
