package parrun

// ns.go runs the full operator-splitting Navier–Stokes time advancement as
// a genuine SPMD program on the simulated machine: each goroutine rank owns
// an RSB-partitioned subset of elements and keeps rank-local block storage
// for every field, the convective subintegration / viscous Helmholtz /
// pressure / filter phases run element-by-element on the owned blocks, and
// all coupling goes through the distributed gather–scatter, allreduce inner
// products, and the distributed XXT coarse solve — the per-step traffic of
// the paper's Figs. 6 and 8. The arithmetic per element is exactly the
// serial ns.Solver's (the rank kernels are the same code), so a P-rank run
// differs from the serial stepper only by the reduction order of the inner
// products and by the coarse vertex solve, which routes through the
// distributed XXT factorization instead of the serial sandwich's direct
// solve — same system, different rounding. Fields therefore agree with the
// serial solver to solver tolerance (1e-8 over tens of steps), not bitwise,
// even at P = 1.
//
// Cross-rank consistency: every CG/projection decision derives from
// allreduce results, which the simulated collectives make bitwise identical
// on all ranks, so the per-step statistics must agree exactly rank-to-rank.
// NavierStokes verifies that after the run and fails loudly on drift — the
// classic silent SPMD corruption — instead of reporting rank 0's view.

import (
	"fmt"
	"math"

	"repro/internal/coarse"
	"repro/internal/comm"
	"repro/internal/fault"
	"repro/internal/gs"
	"repro/internal/instrument"
	"repro/internal/ns"
	"repro/internal/partition"
	"repro/internal/schwarz"
	"repro/internal/sem"
	"repro/internal/solver"
)

// NSConfig controls a distributed Navier–Stokes run.
type NSConfig struct {
	P       int          // simulated ranks (clamped to the element count)
	Machine comm.Machine // zero value: ASCIRed(P); Machine.P must match P when set
	Steps   int          // total time steps of the run (default 1); a resumed
	// run executes steps Resume.Step+1 .. Steps

	// Init is the initial velocity field (nil leaves it zero). Dirichlet
	// values are applied at t = 0 exactly as ns.Solver.SetVelocity does.
	Init func(x, y, z float64) (u, v, w float64)

	// Faults optionally degrades the simulated machine with a seeded
	// deterministic plan (stragglers, link jitter, message drops with
	// bounded-retry recovery, rank pauses); nil runs the flawless machine.
	Faults *fault.Plan

	// CheckpointDir + CheckpointEvery write a versioned snapshot of the
	// full stepper state (fields, BDF-OIFS history, projection basis, step
	// index, virtual clocks) every CheckpointEvery steps. Snapshot I/O is
	// invisible to the simulated machine: enabling it changes nothing about
	// the run. CheckpointEvery <= 0 disables writing.
	CheckpointDir   string
	CheckpointEvery int

	// Resume continues a run from a snapshot: state, clocks, and fault-plan
	// sequence counters restore so the continuation is bitwise identical to
	// the uninterrupted run. The snapshot must come from the same problem
	// and rank count.
	Resume *Checkpoint

	Registry *instrument.Registry   // optional metrics
	Tracer   *instrument.Tracer     // optional trace (per-rank virtual tracks)
	History  *instrument.TimeSeries // optional per-step StepRecord telemetry

	// OnStep, when non-nil, is called by rank 0 after each completed step
	// with that step's statistics and rank 0's virtual clock. It runs on the
	// rank-0 goroutine while the machine is live — implementations must be
	// fast and concurrency-safe (the live /progress endpoint feeds on it).
	// It observes the run without perturbing it: no virtual-clock cost.
	OnStep func(st ns.StepStats, virtualSec float64)
}

// NSResult reports a distributed time advancement.
type NSResult struct {
	P          int // effective ranks (after clamping to the element count)
	RequestedP int // ranks the caller asked for
	Steps      int // total steps of the run (including any before a resume)
	FirstStep  int // completed steps inherited from a checkpoint (0 fresh)

	StepStats   []ns.StepStats // per executed step (identical on all ranks)
	StepVirtual []float64      // per executed step: modeled elapsed seconds (max across ranks)

	// PhaseVirtual breaks the modeled stepping time down by phase: the
	// per-rank average virtual seconds spent in convection subintegration,
	// the viscous Helmholtz solves, the pressure solve (the Schwarz/XXT/
	// allreduce-heavy phase), and the filter + end-of-step bookkeeping,
	// totalled over the executed steps. The strong-scaling study reads the
	// work-dominated → latency-dominated crossover from these four numbers.
	PhaseVirtual [4]float64

	// Precond is the resolved pressure preconditioner variant the run used;
	// PrecondSel reports how it was chosen (forced, default, table hit, or a
	// trial tournament with per-candidate stats), from the serial template.
	Precond    string
	PrecondSel solver.PrecondSelection

	// Converged is true only when every pressure and viscous solve of every
	// step hit its tolerance; NonconvergedSteps counts the offenders.
	Converged         bool
	NonconvergedSteps int

	VirtualSeconds float64 // max rank clock (modeled completion time)
	TotalBytes     int64
	TotalMsgs      int64
	CutEdges       int
	CrossCols      int

	// Fault-recovery accounting (all zero on a flawless machine).
	Drops         int64   // delivery attempts the network lost
	Retries       int64   // retransmissions that recovered them
	Pauses        int64   // pause windows ranks waited out
	FaultStallSec float64 // total virtual time lost to faults, summed over ranks

	CheckpointsWritten int

	Time     float64      // simulation time after the last step
	U        [3][]float64 // final velocity, reassembled to element-local layout
	Pressure []float64    // final pressure, reassembled (K*Npp)
}

// rankStep is one rank's record of one step, cross-checked by the driver.
type rankStep struct {
	stats   ns.StepStats
	resHist []float64
	maxDiv  float64
	filterE float64
	vEnd    float64    // rank virtual clock at the end of the step
	phase   [4]float64 // virtual seconds in convect/viscous/pressure/filter
}

type rankOut struct {
	steps  []rankStep
	u      [3][]float64
	p      []float64
	vStart float64 // rank virtual clock entering the first executed step
	err    error
}

// NavierStokes advances nscfg's problem by cfg.Steps time steps on cfg.P
// simulated ranks. The returned fields are the distributed run's, gathered
// back to the serial element-local layout.
func NavierStokes(nscfg ns.Config, cfg NSConfig) (*NSResult, error) {
	if nscfg.Scalar != nil {
		return nil, fmt.Errorf("parrun: scalar transport is not supported distributed")
	}
	if nscfg.SkewWeight != 0 {
		return nil, fmt.Errorf("parrun: skew-symmetric convection is not supported distributed")
	}
	if cfg.Steps < 1 {
		cfg.Steps = 1
	}
	m := nscfg.Mesh
	if m == nil {
		return nil, fmt.Errorf("parrun: nil mesh")
	}
	requested, mach, err := resolveRanks(cfg.P, cfg.Machine, m.K)
	if err != nil {
		return nil, err
	}
	p := mach.P

	// One serial solver, built once, shared by all ranks as a read-only
	// operator template: its per-element kernels take caller scratch or pool
	// scratch, never the solver's own arenas. TuneRanks keys any "auto"
	// preconditioner selection (and its cache entry) to this rank count, and
	// the template's resolved variant, Chebyshev bounds, and diag(E) are read
	// by every rank — SPMD-uniform coefficients by construction.
	nscfg.Workers = 1
	nscfg.TuneRanks = p
	tmpl, err := ns.New(nscfg)
	if err != nil {
		return nil, fmt.Errorf("parrun: %w", err)
	}
	if cfg.Init != nil {
		tmpl.SetVelocity(cfg.Init)
	}

	// The distributed coarse XXT is only paid for when the resolved variant
	// actually runs the coarse term (the Schwarz sandwich): the Chebyshev
	// variants replace it with polynomial global coupling.
	var xxt *coarse.XXT
	if tmpl.PressurePre() != nil && tmpl.PrecondName() == ns.PrecondSchwarz {
		xxt, err = coarse.NewXXT(tmpl.PressurePre().CoarseOperator(), 0, 0, p)
		if err != nil {
			return nil, fmt.Errorf("parrun: coarse setup: %w", err)
		}
		xxt.Attach(cfg.Registry)
		xxt.AttachTracer(cfg.Tracer)
	}

	part := partition.RSB(m.Adj, p)
	elems := make([][]int, p)
	for e, q := range part {
		elems[q] = append(elems[q], e)
	}

	firstStep := 0
	if ck := cfg.Resume; ck != nil {
		if err := ck.validateFor(p, m.K, m.N, m.Dim, m.Np, tmpl.Npp(), cfg.Steps); err != nil {
			return nil, fmt.Errorf("parrun: %w", err)
		}
		firstStep = ck.Step
	}
	var sink *ckptSink
	if cfg.CheckpointDir != "" && cfg.CheckpointEvery > 0 {
		sink = newCkptSink(cfg.CheckpointDir, p, Checkpoint{
			K: m.K, N: m.N, Dim: m.Dim, Np: m.Np, Npp: tmpl.Npp()})
	}

	net := comm.NewNetwork(mach)
	net.Attach(cfg.Registry)
	net.AttachTracer(cfg.Tracer)
	net.SetFaults(cfg.Faults)

	// The permuted-to-original vertex map is identical on every rank:
	// compute it once here instead of NVert-sized work and storage per rank.
	var invPerm []int
	if xxt != nil {
		invPerm = make([]int, len(xxt.Perm))
		for newi, old := range xxt.Perm {
			invPerm[old] = newi
		}
	}

	outs := make([]rankOut, p)
	ranks := net.Run(func(r *comm.Rank) {
		outs[r.ID] = nsRankBody(r, tmpl, elems[r.ID], xxt, invPerm, cfg, sink, firstStep)
	})
	if sink != nil && sink.err != nil {
		return nil, fmt.Errorf("parrun: checkpoint write: %w", sink.err)
	}
	for q := range outs {
		if outs[q].err != nil {
			return nil, fmt.Errorf("parrun: rank %d: %w", q, outs[q].err)
		}
	}
	// SPMD consistency: every rank must have seen identical per-step solver
	// statistics (all decisions derive from bitwise-uniform allreduces).
	for q := 1; q < p; q++ {
		if len(outs[q].steps) != len(outs[0].steps) {
			return nil, fmt.Errorf("parrun: rank %d ran %d steps, rank 0 ran %d (SPMD drift)",
				q, len(outs[q].steps), len(outs[0].steps))
		}
		for k := range outs[0].steps {
			a, b := outs[0].steps[k].stats, outs[q].steps[k].stats
			if a.PressureIters != b.PressureIters || a.PressureConverged != b.PressureConverged ||
				a.PressureResFinal != b.PressureResFinal || a.HelmholtzIters != b.HelmholtzIters ||
				a.ViscousConverged != b.ViscousConverged || a.Substeps != b.Substeps {
				return nil, fmt.Errorf("parrun: step %d statistics disagree between rank 0 and rank %d "+
					"(p-iters %d/%d, res %g/%g): replicated-scalar drift", k+1,
					q, a.PressureIters, b.PressureIters, a.PressureResFinal, b.PressureResFinal)
			}
		}
	}

	res := &NSResult{
		P:              p,
		RequestedP:     requested,
		Steps:          cfg.Steps,
		FirstStep:      firstStep,
		Precond:        tmpl.PrecondName(),
		PrecondSel:     tmpl.PrecondSelection(),
		Converged:      true,
		VirtualSeconds: comm.MaxTime(ranks),
		TotalBytes:     comm.TotalBytes(ranks),
		CutEdges:       partition.CutEdges(m.Adj, part),
		Time:           tmpl.Time() + float64(cfg.Steps)*nscfg.Dt,
	}
	if xxt != nil {
		res.CrossCols = xxt.CrossCount()
	}
	if sink != nil {
		res.CheckpointsWritten = sink.written
	}
	for _, rk := range ranks {
		res.TotalMsgs += rk.MsgsSent
		res.Drops += rk.Drops
		res.Retries += rk.Retries
		res.Pauses += rk.Pauses
		res.FaultStallSec += rk.StallSec
	}
	// Per-step modeled elapsed time: the cross-rank max clock at each step
	// boundary, differenced. This is the column the fault tables compare
	// between a flawless and a degraded machine.
	prevV := 0.0
	for q := range outs {
		if outs[q].vStart > prevV {
			prevV = outs[q].vStart
		}
	}
	for k := range outs[0].steps {
		endV := 0.0
		for q := range outs {
			if outs[q].steps[k].vEnd > endV {
				endV = outs[q].steps[k].vEnd
			}
			for i, v := range outs[q].steps[k].phase {
				res.PhaseVirtual[i] += v / float64(p)
			}
		}
		res.StepVirtual = append(res.StepVirtual, endV-prevV)
		prevV = endV
	}
	for si, rs := range outs[0].steps {
		res.StepStats = append(res.StepStats, rs.stats)
		if !rs.stats.PressureConverged || !rs.stats.ViscousConverged {
			res.Converged = false
			res.NonconvergedSteps++
		}
		if cfg.History != nil {
			cfg.History.Append(ns.StepRecord{
				VirtualSeconds:    res.StepVirtual[si],
				Step:              rs.stats.Step,
				Time:              rs.stats.Time,
				CFL:               rs.stats.CFL,
				Substeps:          rs.stats.Substeps,
				PressureIters:     rs.stats.PressureIters,
				PressureConverged: rs.stats.PressureConverged,
				PressureRes0:      rs.stats.PressureRes0,
				PressureResFinal:  rs.stats.PressureResFinal,
				PressureResHist:   rs.resHist,
				HelmholtzIters:    rs.stats.HelmholtzIters,
				ViscousConverged:  rs.stats.ViscousConverged,
				ProjectionBasis:   rs.stats.ProjectionBasis,
				MaxDivergence:     rs.maxDiv,
				FilterEnergy:      rs.filterE,
			})
		}
	}
	// Reassemble the final fields to the serial element-local layout.
	np, npp := m.Np, tmpl.Npp()
	for c := 0; c < m.Dim; c++ {
		res.U[c] = make([]float64, m.K*np)
	}
	res.Pressure = make([]float64, m.K*npp)
	for q := range elems {
		for li, e := range elems[q] {
			for c := 0; c < m.Dim; c++ {
				copy(res.U[c][e*np:(e+1)*np], outs[q].u[c][li*np:(li+1)*np])
			}
			copy(res.Pressure[e*npp:(e+1)*npp], outs[q].p[li*npp:(li+1)*npp])
		}
	}
	return res, nil
}

// nsRank is the per-rank state of the distributed stepper.
type nsRank struct {
	r    *comm.Rank
	tmpl *ns.Solver
	d    *sem.Disc // template's velocity-grid Disc (element kernels only)
	mine []int
	cfg  NSConfig

	np, npp     int
	nloc, nlocP int
	dim         int

	h    *gs.ParHandle
	mult []float64

	maskLoc   []float64 // velocity Dirichlet mask blocks (nil = none)
	bLoc      []float64 // quadrature mass blocks
	bAssemLoc []float64 // assembled mass blocks

	// Fields (rank-local blocks).
	U     [3][]float64
	Uh    [][3][]float64
	Pl    []float64
	ustar [3][]float64
	utils [][3][]float64

	// Scratch.
	bufPool  [][]float64 // velocity-grid length-nloc freelist
	iwork    []float64   // interpolation scratch
	tvWork   []float64
	weWork   []float64
	gp       [3][]float64
	bArena   []float64
	huArena  []float64
	duArena  []float64
	rpArena  []float64
	dpArena  []float64
	divArena []float64
	rinArena []float64
	zvArena  []float64
	rvArena  []float64
	histBuf  [][3][]float64

	diagLoc        []float64
	diagH1, diagH2 float64
	cgScratch      *solver.Scratch
	projector      *solver.Projector

	// Resolved pressure preconditioner: the variant name comes off the serial
	// template (so all ranks agree), pPrecondOp is the rank-side application.
	precond    string
	pPrecondOp func(out, r []float64)
	cheb       *solver.Chebyshev // Chebyshev wrapper (chebjacobi/chebschwarz)
	diagE      []float64         // rank blocks of the template's diag(E) (chebjacobi)

	// Distributed Schwarz+XXT pieces (nil xxt when the coarse term is off).
	// invPerm is shared, read-only, computed once by the driver — 1024 rank
	// bodies each rebuilding an NVert-length permutation is exactly the
	// replicated-setup cost the large-P path cannot afford.
	pre     *schwarz.Precond
	xxt     *coarse.XXT
	lwork   *schwarz.LocalWork
	invPerm []int
	lo, hi  int

	// Coarse-solve arenas: pressurePrecond runs every CG iteration and its
	// NVert-length temporaries dominated the allocation profile at large P.
	r0Arena []float64
	upArena []float64
	x0Arena []float64
	blArena []float64
	xxtWork *coarse.SolveWork

	gtBlocks [][]float64 // gradT per-component block headers
	advFlds  [][]float64 // advectInto field headers

	// phaseV accumulates the rank's virtual seconds per stepper phase
	// (convect, viscous, pressure, filter + step bookkeeping) across all
	// executed steps — the raw material of the strong-scaling breakdown.
	phaseV [4]float64

	// Distribution rollups shared by all ranks through the registry: each
	// rank Observes its own per-step phase times and CG iteration counts
	// into the same atomic histograms, so the merged per-phase distribution
	// over all P ranks exists without any per-rank trace track.
	phaseHist [4]*instrument.Histogram
	stepHist  *instrument.Histogram
	vIterHist *instrument.Histogram
	pIterHist *instrument.Histogram

	// Per-element flop charges for the rank's virtual clock.
	stiffF, gradF, filtF int64

	time float64
}

// nsRankBody is the SPMD body of one rank of the distributed stepper.
func nsRankBody(r *comm.Rank, tmpl *ns.Solver, mine []int, xxt *coarse.XXT, invPerm []int,
	cfg NSConfig, sink *ckptSink, firstStep int) rankOut {
	m := tmpl.M
	k := &nsRank{
		r: r, tmpl: tmpl, d: tmpl.Disc(), mine: mine, cfg: cfg,
		np: m.Np, npp: tmpl.Npp(), dim: tmpl.Dim(),
		nloc: len(mine) * m.Np, nlocP: len(mine) * tmpl.Npp(),
		xxt: xxt, pre: tmpl.PressurePre(),
		cgScratch: &solver.Scratch{},
		time:      tmpl.Time(),
	}
	np := k.np
	np1 := m.N + 1
	if k.dim == 2 {
		n3 := int64(np1) * int64(np1) * int64(np1)
		k.stiffF = 8*n3 + 7*int64(np)
		k.gradF = 4*n3 + 6*int64(np)
		k.filtF = 4 * n3
	} else {
		n4 := int64(np1) * int64(np1) * int64(np1) * int64(np1)
		k.stiffF = 12*n4 + 17*int64(np)
		k.gradF = 6*n4 + 15*int64(np)
		k.filtF = 6 * n4
	}

	gids := make([]int64, k.nloc)
	for li, e := range mine {
		copy(gids[li*np:(li+1)*np], m.GID[e*np:(e+1)*np])
	}
	k.h = gs.ParInit(r, gids)
	k.h.Attach(cfg.Registry)
	k.h.AttachTracer(cfg.Tracer)
	if reg := cfg.Registry; reg != nil {
		for i, name := range [4]string{"convect", "viscous", "pressure", "filter"} {
			k.phaseHist[i] = reg.Histogram("ns/" + name + ".vsec")
		}
		k.stepHist = reg.Histogram("ns/step.vsec")
		k.vIterHist = reg.Histogram("solver/viscous.iters.hist")
		k.pIterHist = reg.Histogram("solver/pressure.iters.hist")
	}
	k.mult = make([]float64, k.nloc)
	for i := range k.mult {
		k.mult[i] = 1
	}
	k.h.Apply(k.mult, gs.Sum)

	k.bLoc = k.gatherV(m.B)
	k.bAssemLoc = k.gatherV(tmpl.BAssem())
	if mv := tmpl.VelocityMask(); mv != nil {
		k.maskLoc = k.gatherV(mv)
	}
	for c := 0; c < 3; c++ {
		k.U[c] = k.gatherV(tmpl.Velocity(c))
		k.ustar[c] = make([]float64, k.nloc)
	}
	k.Pl = k.gatherP(tmpl.Pressure())
	order := tmpl.Cfg.Order
	k.utils = make([][3][]float64, order)
	for q := range k.utils {
		for c := 0; c < k.dim; c++ {
			k.utils[q][c] = make([]float64, k.nloc)
		}
	}
	k.iwork = make([]float64, tmpl.InterpWorkLen())
	k.tvWork = make([]float64, np)
	k.weWork = make([]float64, np)
	for c := 0; c < k.dim; c++ {
		k.gp[c] = make([]float64, k.nloc)
	}
	k.bArena = make([]float64, k.nloc)
	k.huArena = make([]float64, k.nloc)
	k.duArena = make([]float64, k.nloc)
	k.rpArena = make([]float64, k.nlocP)
	k.dpArena = make([]float64, k.nlocP)
	k.divArena = make([]float64, k.nlocP)
	k.rinArena = make([]float64, k.nlocP)
	k.zvArena = make([]float64, k.nloc)
	k.rvArena = make([]float64, k.nloc)
	k.histBuf = make([][3][]float64, 0, 4)

	if k.pre != nil {
		k.lwork = k.pre.NewLocalWork()
	}
	if xxt != nil {
		nv := m.NVert
		k.invPerm = invPerm
		k.lo, k.hi = xxt.BlockLo[r.ID], xxt.BlockHi[r.ID]
		k.r0Arena = make([]float64, nv)
		k.upArena = make([]float64, nv)
		k.x0Arena = make([]float64, nv)
		k.blArena = make([]float64, k.hi-k.lo)
		k.xxtWork = xxt.NewSolveWork(r.ID)
	}
	k.setupPrecond()
	k.gtBlocks = make([][]float64, k.dim)
	k.advFlds = make([][]float64, k.dim)
	if l := tmpl.Cfg.ProjectionL; l > 0 {
		k.projector = solver.NewProjector(l, k.applyE, k.pressureDot)
	}

	// Resume: overwrite the freshly built state with the snapshot's, then
	// restore the virtual clock last so the continuation picks up exactly
	// where the checkpointed run's clock stood (the setup traffic above
	// happened at earlier virtual times in the original run too).
	if ck := cfg.Resume; ck != nil {
		rs := ck.Ranks[r.ID]
		if len(rs.U[0]) != k.nloc || len(rs.P) != k.nlocP {
			return rankOut{err: fmt.Errorf(
				"checkpoint: rank %d holds blocks of %d/%d values, run needs %d/%d (partition drift)",
				r.ID, len(rs.U[0]), len(rs.P), k.nloc, k.nlocP)}
		}
		for c := 0; c < 3; c++ {
			copy(k.U[c], rs.U[c])
		}
		k.Uh = make([][3][]float64, len(rs.Uh))
		for q := range rs.Uh {
			for c := 0; c < 3; c++ {
				if rs.Uh[q][c] != nil {
					k.Uh[q][c] = append([]float64(nil), rs.Uh[q][c]...)
				}
			}
		}
		copy(k.Pl, rs.P)
		if k.projector != nil {
			k.projector.Restore(rs.ProjXs, rs.ProjAxs)
		}
		if rs.Diag != nil {
			k.diagLoc = append([]float64(nil), rs.Diag...)
			k.diagH1, k.diagH2 = rs.DiagH1, rs.DiagH2
		}
		k.time = ck.Time
		r.SetClock(rs.Clock)
	}

	vStart := r.Time
	var steps []rankStep
	for s := firstStep; s < cfg.Steps; s++ {
		rec, err := k.step(s + 1)
		if err != nil {
			return rankOut{steps: steps, vStart: vStart, err: err}
		}
		steps = append(steps, rec)
		if cfg.OnStep != nil && r.ID == 0 {
			cfg.OnStep(rec.stats, rec.vEnd)
		}
		if sink != nil && (s+1)%cfg.CheckpointEvery == 0 {
			sink.deposit(s+1, k.time, k.snapshot())
		}
	}
	return rankOut{steps: steps, u: k.U, p: k.Pl, vStart: vStart}
}

// snapshot deep-copies everything the next step depends on: fields, BDF-OIFS
// history, pressure, the projection basis, the cached Helmholtz diagonal
// (recomputing it on resume would cost gather–scatter traffic the
// uninterrupted run never pays), and the comm clock state.
func (k *nsRank) snapshot() RankCheckpoint {
	rs := RankCheckpoint{
		Rank:  k.r.ID,
		Clock: k.r.Clock(),
		P:     append([]float64(nil), k.Pl...),
	}
	for c := 0; c < 3; c++ {
		rs.U[c] = append([]float64(nil), k.U[c]...)
	}
	rs.Uh = make([][3][]float64, len(k.Uh))
	for q := range k.Uh {
		for c := 0; c < 3; c++ {
			if k.Uh[q][c] != nil {
				rs.Uh[q][c] = append([]float64(nil), k.Uh[q][c]...)
			}
		}
	}
	if k.projector != nil {
		rs.ProjXs, rs.ProjAxs = k.projector.State()
	}
	if k.diagLoc != nil {
		rs.Diag = append([]float64(nil), k.diagLoc...)
		rs.DiagH1, rs.DiagH2 = k.diagH1, k.diagH2
	}
	return rs
}

// gatherV copies a global velocity-grid field's owned blocks.
func (k *nsRank) gatherV(g []float64) []float64 {
	out := make([]float64, k.nloc)
	for li, e := range k.mine {
		copy(out[li*k.np:(li+1)*k.np], g[e*k.np:(e+1)*k.np])
	}
	return out
}

// gatherP copies a global pressure-grid field's owned blocks.
func (k *nsRank) gatherP(g []float64) []float64 {
	out := make([]float64, k.nlocP)
	for li, e := range k.mine {
		copy(out[li*k.npp:(li+1)*k.npp], g[e*k.npp:(e+1)*k.npp])
	}
	return out
}

func (k *nsRank) getBuf() []float64 {
	if n := len(k.bufPool); n > 0 {
		b := k.bufPool[n-1]
		k.bufPool = k.bufPool[:n-1]
		return b
	}
	return make([]float64, k.nloc)
}

func (k *nsRank) putBuf(b ...[]float64) { k.bufPool = append(k.bufPool, b...) }

func (k *nsRank) applyMask(u []float64) {
	if k.maskLoc == nil {
		return
	}
	for i, mk := range k.maskLoc {
		u[i] *= mk
	}
}

// assemble is the rank-local direct-stiffness summation + Dirichlet mask.
func (k *nsRank) assemble(u []float64) {
	k.h.Apply(u, gs.Sum)
	k.applyMask(u)
	k.r.Compute(int64(len(u)))
}

// dotV is the C0 inner product (each global node counted once) — local
// partial sums joined by an allreduce, so every rank sees the same value.
func (k *nsRank) dotV(u, v []float64) float64 {
	var s float64
	for i := range u {
		s += u[i] * v[i] / k.mult[i]
	}
	k.r.Compute(int64(3 * len(u)))
	return k.r.AllreduceScalar(s, comm.OpSum)
}

// pressureDot is the plain inner product on the discontinuous pressure
// space (no multiplicity: pressure nodes are never shared).
func (k *nsRank) pressureDot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	k.r.Compute(int64(2 * len(a)))
	return k.r.AllreduceScalar(s, comm.OpSum)
}

// deflate removes the global plain mean from a pressure-space vector.
func (k *nsRank) deflate(p []float64) {
	var s float64
	for _, v := range p {
		s += v
	}
	s = k.r.AllreduceScalar(s, comm.OpSum)
	mean := s / float64(k.tmpl.M.K*k.npp)
	for i := range p {
		p[i] -= mean
	}
	k.r.Compute(int64(2 * len(p)))
}

// helmholtz applies the assembled velocity Helmholtz operator
// QQᵀ(h1·A + h2·B) with the serial operator's exact arithmetic.
func (k *nsRank) helmholtz(out, in []float64, h1, h2 float64) {
	np := k.np
	for li, e := range k.mine {
		k.d.StiffnessElement(out[li*np:(li+1)*np], in[li*np:(li+1)*np], e)
	}
	if h1 != 1 {
		for i := range out {
			out[i] *= h1
		}
	}
	for i := range out {
		out[i] += h2 * k.bLoc[i] * in[i]
	}
	k.r.Compute(k.stiffF*int64(len(k.mine)) + 3*int64(len(out)))
	k.assemble(out)
}

// helmDiag returns the assembled Jacobi diagonal for (h1, h2), cached
// across steps exactly like the serial helmholtzDiagV.
func (k *nsRank) helmDiag(h1, h2 float64) []float64 {
	if k.diagLoc != nil && h1 == k.diagH1 && h2 == k.diagH2 {
		return k.diagLoc
	}
	if k.diagLoc == nil {
		k.diagLoc = make([]float64, k.nloc)
	}
	np := k.np
	for li, e := range k.mine {
		k.d.HelmholtzDiagElement(k.diagLoc[li*np:(li+1)*np], e, h1, h2)
	}
	k.h.Apply(k.diagLoc, gs.Sum)
	if k.maskLoc != nil {
		for i, mk := range k.maskLoc {
			if mk == 0 {
				k.diagLoc[i] = 1
			}
		}
	}
	k.diagH1, k.diagH2 = h1, h2
	k.r.Compute(k.stiffF * int64(len(k.mine)))
	return k.diagLoc
}

// gradT computes the unassembled momentum pressure term Dᵀp into outs.
func (k *nsRank) gradT(outs [][]float64, p []float64) {
	for c := 0; c < k.dim; c++ {
		for i := range outs[c] {
			outs[c][i] = 0
		}
	}
	np, npp := k.np, k.npp
	blocks := k.gtBlocks
	for li, e := range k.mine {
		for c := 0; c < k.dim; c++ {
			blocks[c] = outs[c][li*np : (li+1)*np]
		}
		k.tmpl.GradTElem(blocks, p[li*npp:(li+1)*npp], e, k.iwork, k.tvWork, k.weWork)
	}
	k.r.Compute(int64(k.dim) * 4 * int64(k.nlocP))
}

// divergence computes the weak divergence D u into the pressure space.
func (k *nsRank) divergence(out []float64, u [3][]float64) {
	np, npp := k.np, k.npp
	div := k.getBuf()
	g0, g1 := k.getBuf(), k.getBuf()
	var g2 []float64
	if k.dim == 3 {
		g2 = k.getBuf()
	}
	g := [3][]float64{g0, g1, g2}
	for i := range div {
		div[i] = 0
	}
	for c := 0; c < k.dim; c++ {
		for li, e := range k.mine {
			var b2 []float64
			if k.dim == 3 {
				b2 = g2[li*np : (li+1)*np]
			}
			k.d.GradElement(g0[li*np:(li+1)*np], g1[li*np:(li+1)*np], b2, u[c][li*np:(li+1)*np], e)
		}
		gc := g[c]
		for i := range div {
			div[i] += gc[i]
		}
	}
	for i := range div {
		div[i] *= k.bLoc[i]
	}
	for li := range k.mine {
		k.tmpl.RestrictVPElem(out[li*npp:(li+1)*npp], div[li*np:(li+1)*np], k.iwork)
	}
	k.r.Compute(int64(k.dim)*(k.gradF*int64(len(k.mine))+2*int64(k.nloc)) + int64(k.nlocP))
	k.putBuf(div, g0, g1)
	if g2 != nil {
		k.putBuf(g2)
	}
}

// applyE applies the consistent pressure Poisson operator E = D B̃⁻¹QQᵀ Dᵀ.
func (k *nsRank) applyE(out, p []float64) {
	g := k.gp
	k.gradT(g[:k.dim], p)
	var u3 [3][]float64
	for c := 0; c < k.dim; c++ {
		k.h.Apply(g[c], gs.Sum)
		k.applyMask(g[c])
		for i := range g[c] {
			g[c][i] /= k.bAssemLoc[i]
		}
		u3[c] = g[c]
	}
	k.r.Compute(int64(k.dim) * 2 * int64(k.nloc))
	k.divergence(out, u3)
	if k.tmpl.Enclosed() {
		k.deflate(out)
	}
}

// setupPrecond resolves the template's pressure preconditioner variant into
// this rank's application function. The Chebyshev variants reuse the
// template's tuned eigenvalue bounds and degree verbatim, so every rank (and
// the serial reference) runs identical polynomial coefficients.
func (k *nsRank) setupPrecond() {
	k.precond = k.tmpl.PrecondName()
	switch k.precond {
	case ns.PrecondSchwarz:
		k.pPrecondOp = k.pressurePrecond
	case ns.PrecondChebJacobi:
		k.diagE = k.gatherP(k.tmpl.PressureDiagE())
		diag := k.diagE
		lmin, lmax, deg, _ := k.tmpl.ChebBounds(k.precond)
		k.cheb = &solver.Chebyshev{
			Label: k.precond, A: k.applyE, Degree: deg, LMin: lmin, LMax: lmax,
			Base: func(out, in []float64) {
				for i := range in {
					out[i] = in[i] / diag[i]
				}
				k.r.Compute(int64(len(in)))
			},
		}
		k.pPrecondOp = k.chebPrecond
	case ns.PrecondChebSchwarz:
		lmin, lmax, deg, _ := k.tmpl.ChebBounds(k.precond)
		k.cheb = &solver.Chebyshev{
			Label: k.precond, A: k.applyE, Degree: deg, LMin: lmin, LMax: lmax,
			Base: func(out, in []float64) { k.precondSandwich(out, in, false) },
		}
		k.pPrecondOp = k.chebPrecond
	}
}

// pressurePrecond is the Schwarz-sandwich reference preconditioner: deflate,
// local FDM solves + coarse XXT vertex term, deflate.
func (k *nsRank) pressurePrecond(out, r []float64) {
	if k.pre == nil {
		copy(out, r)
		return
	}
	rin := r
	if k.tmpl.Enclosed() {
		rin = k.rinArena
		copy(rin, r)
		k.deflate(rin)
	}
	k.precondSandwich(out, rin, true)
	if k.tmpl.Enclosed() {
		k.deflate(out)
	}
}

// chebPrecond applies the rank's Chebyshev-accelerated variant with the same
// null-space handling as the reference: input and output projected off the
// constant mode on enclosed domains. (Chebyshev.Apply copies its input into
// its own arena before the base sweep runs, so reusing rinArena inside the
// sandwich base is safe.)
func (k *nsRank) chebPrecond(out, r []float64) {
	rin := r
	if k.tmpl.Enclosed() {
		rin = k.rinArena
		copy(rin, r)
		k.deflate(rin)
	}
	k.cheb.Apply(out, rin)
	if k.tmpl.Enclosed() {
		k.deflate(out)
	}
}

// precondSandwich is the prolong → Schwarz smooth → restrict core shared by
// the reference sandwich (coarse=true: local FDM solves plus the distributed
// XXT vertex term) and the Chebyshev-Schwarz base sweep (coarse=false: the
// polynomial supplies the global coupling instead). No deflation — callers
// own the null-space handling.
func (k *nsRank) precondSandwich(out, rin []float64, coarse bool) {
	rk := k.r
	tr := k.cfg.Tracer
	np, npp := k.np, k.npp
	rv := k.rvArena
	for li := range k.mine {
		k.tmpl.ProlongPVElem(rv[li*np:(li+1)*np], rin[li*npp:(li+1)*npp], k.iwork)
	}
	k.h.Apply(rv, gs.Sum)
	zv := k.zvArena
	t0 := rk.Time
	flops, err := k.pre.LocalSolveElems(zv, rv, k.mine, k.lwork)
	if err != nil {
		panic(err)
	}
	rk.Compute(flops)
	if tr.WantsV(rk.ID) {
		tr.SpanV(rk.ID, "schwarz/local", "precond", t0, rk.Time,
			map[string]any{"elems": len(k.mine)})
	}
	k.h.Apply(zv, gs.Sum)
	if coarse {
		// Coarse term from the assembled residual rv, as in the serial sandwich.
		t1 := rk.Time
		nv := k.tmpl.M.NVert
		r0 := k.r0Arena
		for i := range r0 {
			r0[i] = 0
		}
		cf := k.pre.CoarseRestrictElems(r0, rv, k.mine)
		rk.Compute(cf)
		rk.Allreduce(r0, comm.OpSum)
		bLocal := k.blArena
		for newi := k.lo; newi < k.hi; newi++ {
			bLocal[newi-k.lo] = r0[k.xxt.Perm[newi]]
		}
		uLocal := k.xxt.SolveOnW(rk, bLocal, k.xxtWork)
		up := k.upArena
		for i := range up {
			up[i] = 0
		}
		copy(up[k.lo:k.hi], uLocal)
		rk.Allreduce(up, comm.OpSum)
		x0 := k.x0Arena
		for old := 0; old < nv; old++ {
			x0[old] = up[k.invPerm[old]]
		}
		cf = k.pre.CoarseProlongElems(zv, x0, k.mine)
		rk.Compute(cf)
		if tr.WantsV(rk.ID) {
			tr.SpanV(rk.ID, "schwarz/coarse", "precond", t1, rk.Time,
				map[string]any{"nvert": nv})
		}
	}
	for li := range k.mine {
		k.tmpl.RestrictVPElem(out[li*npp:(li+1)*npp], zv[li*np:(li+1)*np], k.iwork)
	}
}

// setDirichlet writes component c's boundary values at time t.
func (k *nsRank) setDirichlet(u []float64, c int, t float64) {
	cfg := k.tmpl.Cfg
	if k.maskLoc == nil || cfg.DirichletVal == nil {
		return
	}
	m := k.tmpl.M
	np := k.np
	for li, e := range k.mine {
		for l := 0; l < np; l++ {
			lj := li*np + l
			if k.maskLoc[lj] == 0 {
				gi := e*np + l
				bu, bv, bw := cfg.DirichletVal(m.X[gi], m.Y[gi], m.Zc[gi], t)
				vals := [3]float64{bu, bv, bw}
				u[lj] = vals[c]
			}
		}
	}
}

// cflLimit mirrors the serial cflLimit with an allreduce-max of |u|.
func (k *nsRank) cflLimit() (dt, rate float64) {
	var umax float64
	for c := 0; c < k.dim; c++ {
		for _, v := range k.U[c] {
			if a := math.Abs(v); a > umax {
				umax = a
			}
		}
	}
	umax = k.r.AllreduceScalar(umax, comm.OpMax)
	if umax == 0 {
		return math.Inf(1), 0
	}
	rate = umax / k.tmpl.M.MinSpacing()
	return k.tmpl.Cfg.SubCFL / rate, rate
}

// advectingField evaluates the OIFS advecting velocity at relative time t.
func (k *nsRank) advectingField(t float64, hist [][3][]float64) [3][]float64 {
	coef := k.tmpl.AdvectCoeffs(t, len(hist))
	var c [3][]float64
	for d := 0; d < k.dim; d++ {
		c[d] = k.getBuf()
		cd := c[d]
		for i := range cd {
			cd[i] = 0
		}
		for q := range hist {
			cq := coef[q]
			if cq == 0 {
				continue
			}
			hq := hist[q][d]
			for i := range cd {
				cd[i] += cq * hq[i]
			}
		}
	}
	return c
}

func (k *nsRank) releaseField(c [3][]float64) {
	for d := 0; d < k.dim; d++ {
		k.putBuf(c[d])
	}
}

// convect computes out = -(c·∇)v on the owned blocks.
func (k *nsRank) convect(out, v []float64, c [3][]float64) {
	np := k.np
	g0, g1 := k.getBuf(), k.getBuf()
	var g2 []float64
	if k.dim == 3 {
		g2 = k.getBuf()
	}
	g := [3][]float64{g0, g1, g2}
	for li, e := range k.mine {
		var b2 []float64
		if k.dim == 3 {
			b2 = g2[li*np : (li+1)*np]
		}
		k.d.GradElement(g0[li*np:(li+1)*np], g1[li*np:(li+1)*np], b2, v[li*np:(li+1)*np], e)
	}
	for i := range out {
		var adv float64
		for d := 0; d < k.dim; d++ {
			adv += c[d][i] * g[d][i]
		}
		out[i] = -adv
	}
	k.r.Compute(k.gradF*int64(len(k.mine)) + int64((2*k.dim+3)*k.nloc))
	k.putBuf(g0, g1)
	if g2 != nil {
		k.putBuf(g2)
	}
}

// rk4AdvectFields advances the fields through one RK4 substep of the pure
// advection equation, with the serial update order.
func (k *nsRank) rk4AdvectFields(fields [][]float64, t0, h float64, hist [][3][]float64) {
	c1 := k.advectingField(t0, hist)
	c2 := k.advectingField(t0+h/2, hist)
	c4 := k.advectingField(t0+h, hist)
	k1 := k.getBuf()
	k2 := k.getBuf()
	k3 := k.getBuf()
	k4 := k.getBuf()
	tmp := k.getBuf()
	for _, f := range fields {
		k.convect(k1, f, c1)
		for i := range tmp {
			tmp[i] = f[i] + h/2*k1[i]
		}
		k.convect(k2, tmp, c2)
		for i := range tmp {
			tmp[i] = f[i] + h/2*k2[i]
		}
		k.convect(k3, tmp, c2)
		for i := range tmp {
			tmp[i] = f[i] + h*k3[i]
		}
		k.convect(k4, tmp, c4)
		for i := range f {
			f[i] += h / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
		}
	}
	k.r.Compute(int64(10 * k.nloc * len(fields)))
	k.putBuf(k1, k2, k3, k4, tmp)
	k.releaseField(c1)
	k.releaseField(c2)
	k.releaseField(c4)
}

// massAverage projects a field back onto the C0 space (distributed
// direct-stiffness averaging).
func (k *nsRank) massAverage(v []float64) {
	for i := range v {
		v[i] *= k.bLoc[i]
	}
	k.h.Apply(v, gs.Sum)
	for i := range v {
		v[i] /= k.bAssemLoc[i]
	}
	k.r.Compute(int64(3 * k.nloc))
}

// advectInto subintegrates the advection over an interval of length tau.
func (k *nsRank) advectInto(v [3][]float64, u0 [3][]float64, tau, cflDt float64, hist [][3][]float64) int {
	nsub := ns.SubstepCount(tau, cflDt)
	h := tau / float64(nsub)
	for c := 0; c < k.dim; c++ {
		copy(v[c], u0[c])
	}
	fields := k.advFlds
	for c := 0; c < k.dim; c++ {
		fields[c] = v[c]
	}
	for sub := 0; sub < nsub; sub++ {
		t0 := -tau + float64(sub)*h
		k.rk4AdvectFields(fields, t0, h, hist)
		for c := 0; c < k.dim; c++ {
			k.massAverage(v[c])
		}
	}
	return nsub
}

// step advances one time step, mirroring the serial ns.Solver.Step phase by
// phase on the rank's owned blocks.
func (k *nsRank) step(stepNo int) (rankStep, error) {
	cfg := k.tmpl.Cfg
	r := k.r
	tr := k.cfg.Tracer
	st := ns.StepStats{Step: stepNo}
	tNew := k.time + cfg.Dt

	order := cfg.Order
	if avail := len(k.Uh) + 1; order > avail {
		order = avail
	}
	beta, gamma := ns.BDF(order)

	// --- Convective subintegration (OIFS). ---
	tConv := r.Time
	cflDt, rate := k.cflLimit()
	st.CFL = rate * cfg.Dt
	hist := append(k.histBuf[:0], k.U)
	hist = append(hist, k.Uh...)
	utils := k.utils[:order]
	totalSub := 0
	for q := 1; q <= order; q++ {
		totalSub += k.advectInto(utils[q-1], hist[q-1], float64(q)*cfg.Dt, cflDt, hist)
	}
	st.Substeps = totalSub
	k.histBuf = hist[:0]
	if tr.WantsV(r.ID) {
		tr.SpanV(r.ID, "ns/convect", "ns", tConv, r.Time,
			map[string]any{"step": stepNo, "substeps": totalSub})
	}

	// --- Viscous Helmholtz solves. ---
	tVisc := r.Time
	st.ViscousConverged = true
	h1 := 1.0 / cfg.Re
	h2 := beta / cfg.Dt
	diag := k.helmDiag(h1, h2)
	jacobi := func(out, in []float64) {
		for i := range in {
			out[i] = in[i] / diag[i]
		}
		r.Compute(int64(len(in)))
	}
	helmOp := func(out, in []float64) { k.helmholtz(out, in, h1, h2) }
	k.gradT(k.gp[:k.dim], k.Pl)

	for c := 0; c < k.dim; c++ {
		b := k.bArena
		for i := 0; i < k.nloc; i++ {
			var sum float64
			for q := 0; q < order; q++ {
				sum += gamma[q] * utils[q][c][i]
			}
			b[i] = k.bLoc[i] * sum / cfg.Dt
		}
		if cfg.Forcing != nil {
			m := k.tmpl.M
			for li, e := range k.mine {
				for l := 0; l < k.np; l++ {
					gi := e*k.np + l
					lj := li*k.np + l
					fx, fy, fz := cfg.Forcing(m.X[gi], m.Y[gi], m.Zc[gi], tNew)
					f := [3]float64{fx, fy, fz}
					b[lj] += k.bLoc[lj] * f[c]
				}
			}
		}
		for i := range b {
			b[i] += k.gp[c][i]
		}
		k.assemble(b)
		u := k.ustar[c]
		copy(u, k.U[c])
		k.setDirichlet(u, c, tNew)
		hu := k.huArena
		k.helmholtz(hu, u, h1, h2)
		for i := range b {
			b[i] -= hu[i]
		}
		k.applyMask(b)
		du := k.duArena
		for i := range du {
			du[i] = 0
		}
		// No solver.Options.Tracer: P concurrent CG loops would interleave
		// their spans on the single wall-clock track.
		stats := solver.CG(helmOp, k.dotV, du, b, solver.Options{
			Tol: cfg.VTol, Relative: true, MaxIter: 1000, Precond: jacobi,
			IterHist: k.vIterHist, Scratch: k.cgScratch})
		if !stats.Converged {
			st.ViscousConverged = false
		}
		if !stats.Converged && stats.FinalRes > 1e-6 {
			return rankStep{}, fmt.Errorf("helmholtz solve for component %d failed (res %g)", c, stats.FinalRes)
		}
		st.HelmholtzIters[c] = stats.Iterations
		for i := range u {
			u[i] += du[i]
		}
	}
	if tr.WantsV(r.ID) {
		tr.SpanV(r.ID, "ns/viscous", "ns", tVisc, r.Time,
			map[string]any{"step": stepNo, "iters": st.HelmholtzIters[0]})
	}

	// --- Pressure correction: E δp = -(β/Δt) D u*. ---
	tPres := r.Time
	rp := k.rpArena
	k.divergence(rp, k.ustar)
	for i := range rp {
		rp[i] *= -h2
	}
	if k.tmpl.Enclosed() {
		k.deflate(rp)
	}
	dp := k.dpArena
	for i := range dp {
		dp[i] = 0
	}
	popt := solver.Options{Tol: cfg.PTol, MaxIter: cfg.PMaxIter,
		History: k.cfg.History != nil, IterHist: k.pIterHist, Scratch: k.cgScratch}
	if k.pPrecondOp != nil {
		popt.Precond = k.pPrecondOp
	}
	var pstats solver.Stats
	if k.projector != nil {
		pstats = k.projector.ProjectAndSolve(dp, rp, popt)
		st.ProjectionBasis = k.projector.Len()
	} else {
		pstats = solver.CG(k.applyE, k.pressureDot, dp, rp, popt)
	}
	st.PressureIters = pstats.Iterations
	st.PressureRes0 = pstats.InitialRes
	st.PressureResFinal = pstats.FinalRes
	st.PressureConverged = pstats.Converged

	// --- Velocity update: u = u* + (Δt/β) M B̃⁻¹ QQᵀ Dᵀ δp. ---
	k.gradT(k.gp[:k.dim], dp)
	for c := 0; c < k.dim; c++ {
		g := k.gp[c]
		k.assemble(g)
		scale := cfg.Dt / beta
		u := k.ustar[c]
		for i := range u {
			u[i] += scale * g[i] / k.bAssemLoc[i]
		}
	}
	k.r.Compute(int64(3 * k.dim * k.nloc))
	if tr.WantsV(r.ID) {
		tr.SpanV(r.ID, "ns/pressure", "ns", tPres, r.Time,
			map[string]any{"step": stepNo, "iterations": pstats.Iterations, "converged": pstats.Converged})
	}

	// --- Filter, rotate history, commit. ---
	tFilt := r.Time
	filter := k.tmpl.FilterOp()
	var filterRemoved float64
	recordHist := k.cfg.History != nil
	if recordHist && filter != nil {
		for c := 0; c < k.dim; c++ {
			filterRemoved += k.dotV(k.ustar[c], k.ustar[c])
		}
	}
	if filter != nil {
		for c := 0; c < k.dim; c++ {
			u := k.ustar[c]
			for li := range k.mine {
				k.d.FilterElement(filter, u[li*k.np:(li+1)*k.np])
			}
			k.setDirichlet(u, c, tNew)
		}
		k.r.Compute(k.filtF * int64(len(k.mine)) * int64(k.dim))
	}
	if recordHist && filter != nil {
		for c := 0; c < k.dim; c++ {
			filterRemoved -= k.dotV(k.ustar[c], k.ustar[c])
		}
	}
	if tr.WantsV(r.ID) {
		tr.SpanV(r.ID, "ns/filter", "ns", tFilt, r.Time,
			map[string]any{"step": stepNo})
	}

	keep := cfg.Order - 1
	if keep > 0 {
		var prev [3][]float64
		if len(k.Uh) >= keep {
			prev = k.Uh[len(k.Uh)-1]
			k.Uh = k.Uh[:len(k.Uh)-1]
		} else {
			for c := 0; c < 3; c++ {
				prev[c] = make([]float64, k.nloc)
			}
		}
		for c := 0; c < 3; c++ {
			copy(prev[c], k.U[c])
		}
		k.Uh = append(k.Uh, [3][]float64{})
		copy(k.Uh[1:], k.Uh)
		k.Uh[0] = prev
	}
	for c := 0; c < k.dim; c++ {
		copy(k.U[c], k.ustar[c])
	}
	for i := range dp {
		k.Pl[i] += dp[i]
	}
	if k.tmpl.Enclosed() {
		k.deflate(k.Pl)
	}
	k.time = tNew
	st.Time = k.time

	// Divergence (NaN) detection must be a uniform decision: every rank
	// checks its blocks and the flags join in an allreduce-max.
	var bad float64
	for c := 0; c < k.dim; c++ {
		for _, v := range k.U[c] {
			if math.IsNaN(v) {
				bad = 1
				break
			}
		}
	}
	if k.r.AllreduceScalar(bad, comm.OpMax) > 0 {
		return rankStep{}, fmt.Errorf("solution diverged (NaN) at step %d", stepNo)
	}

	rec := rankStep{stats: st}
	if recordHist {
		div := k.divArena
		k.divergence(div, k.U)
		var maxDiv float64
		for _, v := range div {
			if a := math.Abs(v); a > maxDiv {
				maxDiv = a
			}
		}
		rec.maxDiv = k.r.AllreduceScalar(maxDiv, comm.OpMax)
		rec.filterE = filterRemoved
		rec.resHist = append([]float64(nil), pstats.ResHist...)
	}
	rec.vEnd = r.Time
	// Phase breakdown on the rank's virtual clock; the filter slot also
	// carries the end-of-step bookkeeping (history rotation, NaN allreduce,
	// optional divergence telemetry).
	rec.phase = [4]float64{tVisc - tConv, tPres - tVisc, tFilt - tPres, r.Time - tFilt}
	for i, v := range rec.phase {
		k.phaseV[i] += v
		k.phaseHist[i].Observe(v)
	}
	k.stepHist.Observe(r.Time - tConv)
	return rec, nil
}
