package parrun

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/instrument"
	"repro/internal/mesh"
)

func boxMesh(t *testing.T, nel, n int) *mesh.Mesh {
	t.Helper()
	spec := mesh.Box2D(mesh.Box2DSpec{Nx: nel, Ny: nel, X0: 0, X1: 1, Y0: 0, Y1: 1})
	m, err := mesh.Discretize(spec, n)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestPoissonSchwarzMatchesExact: the distributed Schwarz+XXT PCG must
// reproduce the exact solution of -∇²u = f with u = sin(πx)sin(πy).
func TestPoissonSchwarzMatchesExact(t *testing.T) {
	m := boxMesh(t, 4, 6)
	res, err := PoissonSchwarz(m, Config{P: 4, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %d iterations, final res %g", res.Iterations, res.FinalRes)
	}
	var maxErr float64
	for i := range res.X {
		exact := math.Sin(math.Pi*m.X[i]) * math.Sin(math.Pi*m.Y[i])
		if e := math.Abs(res.X[i] - exact); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 1e-5 {
		t.Fatalf("max error vs exact solution %g > 1e-5", maxErr)
	}
	if res.VirtualSeconds <= 0 {
		t.Fatalf("virtual completion time not modeled: %g", res.VirtualSeconds)
	}
}

// TestPreconditionerEffective: Schwarz+coarse must beat the plain operator's
// conditioning — iteration count should be small and independent-ish of P.
func TestPreconditionerEffective(t *testing.T) {
	m := boxMesh(t, 4, 6)
	for _, p := range []int{1, 2, 8} {
		res, err := PoissonSchwarz(m, Config{P: p, Tol: 1e-8})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged || res.Iterations > 30 {
			t.Fatalf("P=%d: %d iterations (converged=%v), want <= 30",
				p, res.Iterations, res.Converged)
		}
	}
}

func traceRun(t *testing.T, m *mesh.Mesh, p int) (*instrument.Tracer, []byte) {
	t.Helper()
	tr := instrument.NewTracer()
	tr.DisableWallClock()
	if _, err := PoissonSchwarz(m, Config{P: p, Tracer: tr}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return tr, buf.Bytes()
}

// TestTraceShape: the emitted Chrome trace must validate (required fields,
// monotone per-rank virtual timestamps, balanced spans, matched flows) and
// carry spans for every instrumented layer on the rank tracks.
func TestTraceShape(t *testing.T) {
	m := boxMesh(t, 4, 5)
	const p = 4
	tr, data := traceRun(t, m, p)
	if err := instrument.ValidateChromeTrace(data, p); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"allreduce":        false,
		"send":             false,
		"recv":             false,
		"gs/exchange":      false,
		"schwarz/local":    false,
		"schwarz/coarse":   false,
		"coarse/xxt.solve": false,
	}
	ranksSeen := map[int]bool{}
	for _, ev := range tr.Events() {
		if ev.Pid == instrument.PidMachine {
			ranksSeen[ev.Tid] = true
			if _, ok := want[ev.Name]; ok {
				want[ev.Name] = true
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("no %q span on any rank track", name)
		}
	}
	if len(ranksSeen) < p {
		t.Errorf("events on %d rank tracks, want %d", len(ranksSeen), p)
	}
}

// TestTraceDeterminism: two identical simulated runs must serialize to
// byte-identical traces once the wall clock is disabled.
func TestTraceDeterminism(t *testing.T) {
	m := boxMesh(t, 4, 5)
	_, a := traceRun(t, m, 4)
	_, b := traceRun(t, m, 4)
	if !bytes.Equal(a, b) {
		t.Fatalf("traces differ between identical runs: %d vs %d bytes", len(a), len(b))
	}
}
