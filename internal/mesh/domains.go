package mesh

import "math"

// CylinderOGridSpec describes the cylinder-in-square O-grid used for the
// Table 2 preconditioner study: NTheta sectors around a cylinder of radius
// R, NLayer radial element layers blending from the circle to the boundary
// of a square of half-width H, with geometric grading that concentrates
// thin, high-aspect-ratio layers at the cylinder wall (the mesh property
// that drives the iteration growth in Table 2).
type CylinderOGridSpec struct {
	NTheta, NLayer int
	R, H           float64
	WallRatio      float64 // last/first radial layer thickness ratio (>1 grades toward wall)
}

// CylinderOGrid builds the 2D O-grid spec (a square domain with a circular
// hole, covered by NTheta*NLayer deformed quadrilaterals).
func CylinderOGrid(s CylinderOGridSpec) *Spec {
	spec := &Spec{Dim: 2}
	grade := GeomGrading(s.WallRatio)
	rho := func(il int) float64 {
		t := float64(il) / float64(s.NLayer)
		if grade != nil {
			t = grade(t)
		}
		return t
	}
	// Point at blending parameter t ∈ [0,1] (0 = cylinder, 1 = square rim)
	// and angle theta.
	point := func(t, theta float64) (float64, float64) {
		c, sn := math.Cos(theta), math.Sin(theta)
		// Square rim point along the ray.
		den := math.Max(math.Abs(c), math.Abs(sn))
		sx, sy := s.H*c/den, s.H*sn/den
		cx, cy := s.R*c, s.R*sn
		return (1-t)*cx + t*sx, (1-t)*cy + t*sy
	}
	theta := func(it int) float64 { return 2 * math.Pi * float64(it) / float64(s.NTheta) }

	vid := make(map[[2]int]int)
	addVert := func(it, il int) int {
		it = it % s.NTheta
		key := [2]int{it, il}
		if id, ok := vid[key]; ok {
			return id
		}
		x, y := point(rho(il), theta(it))
		id := len(spec.Verts)
		spec.Verts = append(spec.Verts, [3]float64{x, y, 0})
		vid[key] = id
		return id
	}
	// Reference r runs radially outward, s runs counterclockwise in theta:
	// this ordering keeps the Jacobian positive.
	for il := 0; il < s.NLayer; il++ {
		t0, t1 := rho(il), rho(il+1)
		for it := 0; it < s.NTheta; it++ {
			th0, th1 := theta(it), theta(it+1)
			el := Element{Verts: []int{
				addVert(it, il), addVert(it, il+1),
				addVert(it+1, il), addVert(it+1, il+1),
			}}
			el.Map = func(r, sc, _ float64) (float64, float64, float64) {
				t := t0 + (t1-t0)*(r+1)/2
				th := th0 + (th1-th0)*(sc+1)/2
				x, y := point(t, th)
				return x, y, 0
			}
			spec.Elems = append(spec.Elems, el)
		}
	}
	return spec
}

// HemisphereBoxSpec describes the 3D flat-plate-with-roughness-element
// stand-in for the paper's hairpin-vortex production mesh: a boundary-layer
// box graded toward the wall, with a smooth hemispherical bump of height
// Height and radius Radius centred at (Cx, Cy) deforming the bottom wall.
type HemisphereBoxSpec struct {
	Nx, Ny, Nz     int
	Lx, Ly, Lz     float64
	Cx, Cy         float64
	Radius, Height float64
	WallRatio      float64 // z-grading toward the wall (boundary layer)
}

// HemisphereBox builds the deformed 3D box spec.
func HemisphereBox(s HemisphereBoxSpec) *Spec {
	gradeZ := func(t float64) float64 {
		if s.WallRatio == 1 || s.WallRatio == 0 {
			return t
		}
		q := 1 / s.WallRatio // thin layers at z=0
		return (math.Pow(q, t) - 1) / (q - 1)
	}
	bump := func(x, y float64) float64 {
		dx, dy := x-s.Cx, y-s.Cy
		r2 := (dx*dx + dy*dy) / (s.Radius * s.Radius)
		return s.Height * math.Exp(-2*r2)
	}
	deform := func(x, y, z float64) (float64, float64, float64) {
		// Lift the wall by the bump, decaying linearly to the top.
		b := bump(x, y) * (1 - z/s.Lz)
		return x, y, z + b
	}
	return Box3D(Box3DSpec{
		Nx: s.Nx, Ny: s.Ny, Nz: s.Nz,
		X0: 0, X1: s.Lx, Y0: 0, Y1: s.Ly, Z0: 0, Z1: s.Lz,
		GradeZ: gradeZ,
		Deform: deform,
	})
}
