package mesh

import (
	"math"
	"testing"
)

func box(t *testing.T, nx, ny, n int, perX, perY bool) *Mesh {
	t.Helper()
	spec := Box2D(Box2DSpec{Nx: nx, Ny: ny, X0: 0, X1: 2, Y0: 0, Y1: 1, PeriodicX: perX, PeriodicY: perY})
	m, err := Discretize(spec, n)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBox2DGlobalCount(t *testing.T) {
	nx, ny, n := 4, 3, 5
	m := box(t, nx, ny, n, false, false)
	want := (nx*n + 1) * (ny*n + 1)
	if m.NGlobal != want {
		t.Errorf("NGlobal = %d, want %d", m.NGlobal, want)
	}
	if m.K != nx*ny {
		t.Errorf("K = %d", m.K)
	}
	if m.NVert != (nx+1)*(ny+1) {
		t.Errorf("NVert = %d, want %d", m.NVert, (nx+1)*(ny+1))
	}
}

func TestBox2DPeriodicGlobalCount(t *testing.T) {
	nx, ny, n := 4, 3, 4
	m := box(t, nx, ny, n, true, false)
	want := (nx * n) * (ny*n + 1)
	if m.NGlobal != want {
		t.Errorf("periodic-x NGlobal = %d, want %d", m.NGlobal, want)
	}
	m2 := box(t, nx, ny, n, true, true)
	want2 := (nx * n) * (ny * n)
	if m2.NGlobal != want2 {
		t.Errorf("doubly periodic NGlobal = %d, want %d", m2.NGlobal, want2)
	}
	// Doubly periodic mesh has no boundary.
	for i, b := range m2.OnBoundary {
		if b {
			t.Fatalf("doubly periodic mesh has boundary node at %d", i)
		}
	}
}

func TestMassMatrixIntegratesArea(t *testing.T) {
	m := box(t, 3, 2, 6, false, false)
	var area float64
	for _, b := range m.B {
		area += b
	}
	if math.Abs(area-2.0) > 1e-12 {
		t.Errorf("total mass %g, want 2 (domain area)", area)
	}
}

func TestAffineMetrics(t *testing.T) {
	// Single [0,2]x[0,1] element: dx/dr = 1, dy/ds = 0.5; |J| = 0.5;
	// Grr = rx²·w·|J| = (1)²·w·0.5 etc.
	spec := Box2D(Box2DSpec{Nx: 1, Ny: 1, X0: 0, X1: 2, Y0: 0, Y1: 1})
	m, err := Discretize(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	np1 := m.N + 1
	for j := 0; j < np1; j++ {
		for i := 0; i < np1; i++ {
			l := j*np1 + i
			w := m.Wt[i] * m.Wt[j]
			if math.Abs(m.Jac[l]-0.5) > 1e-12 {
				t.Fatalf("Jacobian %g, want 0.5", m.Jac[l])
			}
			if math.Abs(m.G[0][l]-1*w*0.5) > 1e-12 {
				t.Fatalf("Grr wrong at %d: %g", l, m.G[0][l])
			}
			if math.Abs(m.G[1][l]) > 1e-12 {
				t.Fatalf("Grs should vanish on affine rectangle, got %g", m.G[1][l])
			}
			if math.Abs(m.G[2][l]-4*w*0.5) > 1e-12 {
				t.Fatalf("Gss wrong at %d: %g", l, m.G[2][l])
			}
		}
	}
}

func TestBoundaryDetection2D(t *testing.T) {
	m := box(t, 3, 3, 4, false, false)
	// Count distinct boundary globals: perimeter nodes = 2*(3*4)+2*(3*4) = 48.
	bset := make(map[int64]bool)
	for i, b := range m.OnBoundary {
		if b {
			bset[m.GID[i]] = true
		}
	}
	want := 4 * 3 * 4 // 4 sides * 12 intervals... perimeter of (13x13) grid = 4*12
	if len(bset) != want {
		t.Errorf("boundary globals = %d, want %d", len(bset), want)
	}
	// Boundary nodes must actually lie on the boundary.
	for i, b := range m.OnBoundary {
		if b {
			x, y := m.X[i], m.Y[i]
			on := math.Abs(x) < 1e-12 || math.Abs(x-2) < 1e-12 || math.Abs(y) < 1e-12 || math.Abs(y-1) < 1e-12
			if !on {
				t.Fatalf("interior node (%g,%g) flagged as boundary", x, y)
			}
		}
	}
}

func TestAdjacencyStructuredBox(t *testing.T) {
	m := box(t, 4, 3, 3, false, false)
	// Interior elements have 4 neighbours, corners 2, edges 3.
	degrees := map[int]int{}
	for _, a := range m.Adj {
		degrees[len(a)]++
	}
	if degrees[2] != 4 {
		t.Errorf("corner elements with 2 neighbours: %d, want 4", degrees[2])
	}
	if degrees[4] != (4-2)*(3-2) { // 2x1 interior block
		t.Errorf("interior elements: %d, want 2", degrees[4])
	}
}

func TestPeriodicAdjacencyWraps(t *testing.T) {
	m := box(t, 4, 1, 3, true, false)
	// In a periodic 4x1 strip every element has exactly 2 x-neighbours.
	for e, a := range m.Adj {
		if len(a) != 2 {
			t.Fatalf("element %d has %d neighbours, want 2", e, len(a))
		}
	}
}

func TestGIDConsistencyAcrossSharedEdges(t *testing.T) {
	m := box(t, 2, 1, 5, false, false)
	// Nodes with equal coordinates must share an id and vice versa.
	type pt struct{ x, y float64 }
	seen := make(map[int64]pt)
	for i, g := range m.GID {
		p := pt{m.X[i], m.Y[i]}
		if q, ok := seen[g]; ok {
			if math.Abs(q.x-p.x) > 1e-10 || math.Abs(q.y-p.y) > 1e-10 {
				t.Fatalf("gid %d maps to distinct points %v vs %v", g, q, p)
			}
		} else {
			seen[g] = p
		}
	}
	if len(seen) != m.NGlobal {
		t.Errorf("NGlobal inconsistent: %d vs %d", len(seen), m.NGlobal)
	}
}

func TestQuadRefine(t *testing.T) {
	spec := CylinderOGrid(CylinderOGridSpec{NTheta: 8, NLayer: 2, R: 0.5, H: 2, WallRatio: 4})
	m0, err := Discretize(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := QuadRefine(spec)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := Discretize(ref, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m1.K != 4*m0.K {
		t.Errorf("refined K = %d, want %d", m1.K, 4*m0.K)
	}
	area := func(m *Mesh) float64 {
		var a float64
		for _, b := range m.B {
			a += b
		}
		return a
	}
	a0, a1 := area(m0), area(m1)
	// Both approximate the square-minus-circle area; refinement must agree
	// closely with the coarse mesh (both resolve the same curved geometry).
	want := 16 - math.Pi*0.25
	if math.Abs(a0-want) > 1e-2*want {
		t.Errorf("coarse O-grid area %g, want ≈ %g", a0, want)
	}
	if math.Abs(a1-want) > math.Abs(a0-want)+1e-9 {
		t.Errorf("refinement worsened area: %g vs %g (want %g)", a1, a0, want)
	}
}

func TestQuadRefineRejects3D(t *testing.T) {
	spec := Box3D(Box3DSpec{Nx: 1, Ny: 1, Nz: 1, X1: 1, Y1: 1, Z1: 1})
	if _, err := QuadRefine(spec); err == nil {
		t.Error("expected error refining a 3D spec")
	}
}

func TestCylinderOGridWellFormed(t *testing.T) {
	spec := CylinderOGrid(CylinderOGridSpec{NTheta: 16, NLayer: 6, R: 0.5, H: 4, WallRatio: 8})
	m, err := Discretize(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	if m.K != 96 {
		t.Errorf("K = %d, want 96", m.K)
	}
	// All Jacobians positive is already enforced; check boundary nodes lie
	// on either the cylinder or the square rim.
	for i, b := range m.OnBoundary {
		if !b {
			continue
		}
		r := math.Hypot(m.X[i], m.Y[i])
		onCyl := math.Abs(r-0.5) < 1e-8
		onRim := math.Abs(math.Max(math.Abs(m.X[i]), math.Abs(m.Y[i]))-4) < 1e-8
		if !onCyl && !onRim {
			t.Fatalf("boundary node at (%g,%g) not on cylinder or rim", m.X[i], m.Y[i])
		}
	}
	// High-aspect wall layers: first layer much thinner than last.
	if m.MinSpacing() > 0.05 {
		t.Errorf("wall grading looks wrong: min spacing %g", m.MinSpacing())
	}
}

func TestBox3DGlobalCount(t *testing.T) {
	spec := Box3D(Box3DSpec{Nx: 2, Ny: 2, Nz: 2, X1: 1, Y1: 1, Z1: 1})
	n := 3
	m, err := Discretize(spec, n)
	if err != nil {
		t.Fatal(err)
	}
	want := (2*n + 1) * (2*n + 1) * (2*n + 1)
	if m.NGlobal != want {
		t.Errorf("3D NGlobal = %d, want %d", m.NGlobal, want)
	}
	var vol float64
	for _, b := range m.B {
		vol += b
	}
	if math.Abs(vol-1) > 1e-12 {
		t.Errorf("3D volume %g, want 1", vol)
	}
}

func TestHemisphereBoxDeformedConforming(t *testing.T) {
	spec := HemisphereBox(HemisphereBoxSpec{
		Nx: 4, Ny: 3, Nz: 3, Lx: 8, Ly: 4, Lz: 3,
		Cx: 2, Cy: 2, Radius: 0.8, Height: 0.6, WallRatio: 3,
	})
	m, err := Discretize(spec, 4)
	if err != nil {
		t.Fatal(err) // would fail on non-positive Jacobians
	}
	// Conformity: same NGlobal as the undeformed box (deformation must not
	// split shared nodes).
	plain := Box3D(Box3DSpec{Nx: 4, Ny: 3, Nz: 3, X1: 8, Y1: 4, Z1: 3})
	mp, err := Discretize(plain, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.NGlobal != mp.NGlobal {
		t.Errorf("deformed NGlobal %d != undeformed %d", m.NGlobal, mp.NGlobal)
	}
	// The bump must have lifted the floor near the centre.
	lifted := false
	for i := range m.Zc {
		if m.OnBoundary[i] && m.Zc[i] > 0.3 && m.Zc[i] < 0.7 &&
			math.Hypot(m.X[i]-2, m.Y[i]-2) < 0.5 {
			lifted = true
		}
	}
	if !lifted {
		t.Error("hemispherical bump not present on the wall")
	}
}

func TestBoundaryMask(t *testing.T) {
	m := box(t, 2, 2, 3, false, false)
	mask := m.BoundaryMask(nil)
	for i := range mask {
		if m.OnBoundary[i] && mask[i] != 0 {
			t.Fatal("boundary node not masked")
		}
		if !m.OnBoundary[i] && mask[i] != 1 {
			t.Fatal("interior node masked")
		}
	}
	// Selective mask: only x=0 wall.
	left := m.BoundaryMask(func(x, y, z float64) bool { return x < 1e-12 })
	masked := 0
	for i := range left {
		if left[i] == 0 {
			masked++
			if m.X[i] > 1e-12 {
				t.Fatal("masked node not on left wall")
			}
		}
	}
	if masked == 0 {
		t.Error("no nodes masked on left wall")
	}
}

func TestDiscretizeErrors(t *testing.T) {
	spec := Box2D(Box2DSpec{Nx: 1, Ny: 1, X1: 1, Y1: 1})
	if _, err := Discretize(spec, 1); err == nil {
		t.Error("order 1 should be rejected")
	}
	bad := &Spec{Dim: 4}
	if _, err := Discretize(bad, 4); err == nil {
		t.Error("dim 4 should be rejected")
	}
	badElem := &Spec{Dim: 2, Verts: [][3]float64{{0, 0, 0}}, Elems: []Element{{Verts: []int{0}}}}
	if _, err := Discretize(badElem, 4); err == nil {
		t.Error("wrong vertex count should be rejected")
	}
	// Inverted element: negative Jacobian must error.
	inv := &Spec{Dim: 2,
		Verts: [][3]float64{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {1, 1, 0}},
		Elems: []Element{{Verts: []int{1, 0, 3, 2}}}, // r-axis flipped
	}
	if _, err := Discretize(inv, 3); err == nil {
		t.Error("inverted element should be rejected")
	}
}

func TestGradedPartition(t *testing.T) {
	xs := partition(4, 0, 1, GeomGrading(8))
	if xs[0] != 0 || xs[4] != 1 {
		t.Fatal("partition endpoints wrong")
	}
	first := xs[1] - xs[0]
	last := xs[4] - xs[3]
	if last/first < 2 {
		t.Errorf("grading ratio too small: %g", last/first)
	}
	// nil grading is uniform
	u := partition(4, 0, 1, nil)
	for i := 0; i <= 4; i++ {
		if math.Abs(u[i]-float64(i)/4) > 1e-15 {
			t.Fatal("uniform partition wrong")
		}
	}
}
