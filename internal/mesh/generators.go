package mesh

import (
	"fmt"
	"math"
)

// Grading maps a uniform partition parameter in [0,1] to a graded one; nil
// means uniform. GeomGrading returns a geometric-stretching grading with the
// given ratio between the last and first interval.
func GeomGrading(ratio float64) func(float64) float64 {
	if ratio == 1 {
		return nil
	}
	return func(t float64) float64 {
		// Geometric distribution: cell i has width ∝ q^i with q = ratio^(1/...)
		// Continuous form: (q^t - 1)/(q - 1) with q chosen so the derivative
		// ratio between t=1 and t=0 equals `ratio`.
		q := ratio
		return (math.Pow(q, t) - 1) / (q - 1)
	}
}

// Box2DSpec describes a structured quadrilateral box mesh.
type Box2DSpec struct {
	Nx, Ny         int
	X0, X1, Y0, Y1 float64
	PeriodicX      bool
	PeriodicY      bool
	GradeX, GradeY func(float64) float64 // optional grading of the partition
}

// Box2D builds the mesh spec for a structured 2D box.
func Box2D(s Box2DSpec) *Spec {
	xs := partition(s.Nx, s.X0, s.X1, s.GradeX)
	ys := partition(s.Ny, s.Y0, s.Y1, s.GradeY)
	nvx, nvy := s.Nx+1, s.Ny+1
	spec := &Spec{Dim: 2}
	vid := func(ix, iy int) int {
		if s.PeriodicX && ix == s.Nx {
			ix = 0
		}
		if s.PeriodicY && iy == s.Ny {
			iy = 0
		}
		return iy*nvx + ix
	}
	spec.Verts = make([][3]float64, nvx*nvy)
	for iy := 0; iy < nvy; iy++ {
		for ix := 0; ix < nvx; ix++ {
			spec.Verts[iy*nvx+ix] = [3]float64{xs[ix], ys[iy], 0}
		}
	}
	for iy := 0; iy < s.Ny; iy++ {
		for ix := 0; ix < s.Nx; ix++ {
			x0, x1 := xs[ix], xs[ix+1]
			y0, y1 := ys[iy], ys[iy+1]
			el := Element{Verts: []int{vid(ix, iy), vid(ix+1, iy), vid(ix, iy+1), vid(ix+1, iy+1)}}
			// Explicit affine map keeps shared-edge coordinates bitwise
			// consistent between neighbours.
			el.Map = func(r, sc, _ float64) (float64, float64, float64) {
				return x0 + (x1-x0)*(r+1)/2, y0 + (y1-y0)*(sc+1)/2, 0
			}
			spec.Elems = append(spec.Elems, el)
		}
	}
	if s.PeriodicX || s.PeriodicY {
		lx, ly := s.X1-s.X0, s.Y1-s.Y0
		epsx, epsy := lx*1e-9, ly*1e-9
		spec.PeriodicWrap = func(p [3]float64) [3]float64 {
			if s.PeriodicX && math.Abs(p[0]-s.X1) < epsx {
				p[0] = s.X0
			}
			if s.PeriodicY && math.Abs(p[1]-s.Y1) < epsy {
				p[1] = s.Y0
			}
			return p
		}
	}
	return spec
}

// Box3DSpec describes a structured hexahedral box mesh, with an optional
// smooth coordinate deformation applied to every element mapping (shared
// faces stay conforming because the deformation is a function of the
// undeformed coordinates).
type Box3DSpec struct {
	Nx, Ny, Nz             int
	X0, X1, Y0, Y1, Z0, Z1 float64
	PeriodicX, PeriodicY   bool
	GradeX, GradeY, GradeZ func(float64) float64
	Deform                 func(x, y, z float64) (float64, float64, float64)
}

// Box3D builds the mesh spec for a structured 3D box.
func Box3D(s Box3DSpec) *Spec {
	xs := partition(s.Nx, s.X0, s.X1, s.GradeX)
	ys := partition(s.Ny, s.Y0, s.Y1, s.GradeY)
	zs := partition(s.Nz, s.Z0, s.Z1, s.GradeZ)
	nvx, nvy, nvz := s.Nx+1, s.Ny+1, s.Nz+1
	spec := &Spec{Dim: 3}
	vid := func(ix, iy, iz int) int {
		if s.PeriodicX && ix == s.Nx {
			ix = 0
		}
		if s.PeriodicY && iy == s.Ny {
			iy = 0
		}
		return (iz*nvy+iy)*nvx + ix
	}
	spec.Verts = make([][3]float64, nvx*nvy*nvz)
	for iz := 0; iz < nvz; iz++ {
		for iy := 0; iy < nvy; iy++ {
			for ix := 0; ix < nvx; ix++ {
				x, y, z := xs[ix], ys[iy], zs[iz]
				if s.Deform != nil {
					x, y, z = s.Deform(x, y, z)
				}
				spec.Verts[(iz*nvy+iy)*nvx+ix] = [3]float64{x, y, z}
			}
		}
	}
	for iz := 0; iz < s.Nz; iz++ {
		for iy := 0; iy < s.Ny; iy++ {
			for ix := 0; ix < s.Nx; ix++ {
				x0, x1 := xs[ix], xs[ix+1]
				y0, y1 := ys[iy], ys[iy+1]
				z0, z1 := zs[iz], zs[iz+1]
				el := Element{Verts: []int{
					vid(ix, iy, iz), vid(ix+1, iy, iz), vid(ix, iy+1, iz), vid(ix+1, iy+1, iz),
					vid(ix, iy, iz+1), vid(ix+1, iy, iz+1), vid(ix, iy+1, iz+1), vid(ix+1, iy+1, iz+1),
				}}
				el.Map = func(r, sc, t float64) (float64, float64, float64) {
					x := x0 + (x1-x0)*(r+1)/2
					y := y0 + (y1-y0)*(sc+1)/2
					z := z0 + (z1-z0)*(t+1)/2
					if s.Deform != nil {
						return s.Deform(x, y, z)
					}
					return x, y, z
				}
				spec.Elems = append(spec.Elems, el)
			}
		}
	}
	if s.PeriodicX || s.PeriodicY {
		epsx := (s.X1 - s.X0) * 1e-9
		epsy := (s.Y1 - s.Y0) * 1e-9
		spec.PeriodicWrap = func(p [3]float64) [3]float64 {
			if s.PeriodicX && math.Abs(p[0]-s.X1) < epsx {
				p[0] = s.X0
			}
			if s.PeriodicY && math.Abs(p[1]-s.Y1) < epsy {
				p[1] = s.Y0
			}
			return p
		}
	}
	return spec
}

func partition(n int, a, b float64, grade func(float64) float64) []float64 {
	xs := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		t := float64(i) / float64(n)
		if grade != nil {
			t = grade(t)
		}
		xs[i] = a + (b-a)*t
	}
	xs[0], xs[n] = a, b
	return xs
}

// QuadRefine splits every element of a 2D spec into four children (one round
// of the quad-refinement used to build the Table 2 mesh family). Curved
// parents produce curved children via composition with the parent mapping.
func QuadRefine(spec *Spec) (*Spec, error) {
	if spec.Dim != 2 {
		return nil, fmt.Errorf("mesh: QuadRefine requires a 2D spec")
	}
	out := &Spec{Dim: 2, PeriodicWrap: spec.PeriodicWrap}
	vcache := make(map[[2]int64]int)
	addVert := func(x, y float64) int {
		key := [2]int64{int64(math.Round(x * 1e10)), int64(math.Round(y * 1e10))}
		if id, ok := vcache[key]; ok {
			return id
		}
		id := len(out.Verts)
		out.Verts = append(out.Verts, [3]float64{x, y, 0})
		vcache[key] = id
		return id
	}
	for _, el := range spec.Elems {
		parentMap := el.Map
		if parentMap == nil {
			corners := make([][3]float64, 4)
			for c, vi := range el.Verts {
				corners[c] = spec.Verts[vi]
			}
			parentMap = func(r, s, _ float64) (float64, float64, float64) {
				return multilinear(2, corners, r, s, 0)
			}
		}
		for b := 0; b < 2; b++ {
			for a := 0; a < 2; a++ {
				fa, fb := float64(a), float64(b)
				// Child (a,b) covers the parent reference sub-square
				// [fa-1, fa] x [fb-1, fb].
				cm := func(r, s, _ float64) (float64, float64, float64) {
					rp := (r + 2*fa - 1) / 2
					sp := (s + 2*fb - 1) / 2
					return parentMap(rp, sp, 0)
				}
				vs := make([]int, 4)
				cidx := 0
				for sc := 0; sc < 2; sc++ {
					for rc := 0; rc < 2; rc++ {
						r := float64(2*rc - 1)
						s := float64(2*sc - 1)
						x, y, _ := cm(r, s, 0)
						vs[cidx] = addVert(x, y)
						cidx++
					}
				}
				out.Elems = append(out.Elems, Element{Verts: vs, Map: cm})
			}
		}
	}
	return out, nil
}
