// Package mesh builds spectral element meshes: unstructured arrays of
// deformed quadrilateral (2D) or hexahedral (3D) elements, each carrying an
// N-th order tensor-product Gauss–Lobatto–Legendre (GLL) grid (Fig. 2 of the
// paper). It computes the isoparametric geometric factors G_ij of eq. (4),
// the diagonal mass matrix, the C0 global node numbering used by the
// gather–scatter residual assembly, boundary detection, and element
// adjacency for partitioning.
package mesh

import (
	"fmt"
	"math"

	"repro/internal/poly"
	"repro/internal/tensor"
)

// MapFunc maps reference coordinates (r,s,t) ∈ [-1,1]^d to physical space.
// For 2D elements t is ignored.
type MapFunc func(r, s, t float64) (x, y, z float64)

// Element is one deformed quad/hex given by its corner vertex indices (4 in
// 2D, 8 in 3D, in tensor order: r fastest, then s, then t) and an optional
// curved mapping. When Map is nil the multilinear interpolant of the corner
// vertices is used.
type Element struct {
	Verts []int
	Map   MapFunc
}

// Spec describes a mesh before discretization.
type Spec struct {
	Dim   int
	Verts [][3]float64
	Elems []Element
	// PeriodicWrap, if non-nil, maps a physical coordinate to its canonical
	// image before global numbering, implementing periodic boundaries (e.g.
	// wrap x to [0,L)). It must be exactly idempotent on canonical points.
	PeriodicWrap func(p [3]float64) [3]float64
}

// Mesh is a discretized spectral element mesh.
type Mesh struct {
	Dim int // 2 or 3
	N   int // polynomial order
	K   int // number of elements
	Np  int // nodes per element, (N+1)^Dim

	// 1D reference operators on GLL points.
	Z  []float64 // GLL points, len N+1
	Wt []float64 // GLL weights
	D  []float64 // differentiation matrix, (N+1)x(N+1)
	Dt []float64 // its transpose

	// Nodal coordinates, len K*Np each (element-major, r fastest).
	X, Y, Zc []float64

	// Geometric factors (premultiplied by quadrature weight and |J|):
	// 2D: G[0]=Grr, G[1]=Grs, G[2]=Gss;
	// 3D: G[0]=Grr, G[1]=Grs, G[2]=Grt, G[3]=Gss, G[4]=Gst, G[5]=Gtt.
	G [][]float64

	Jac []float64 // |J| at nodes (without weights)
	B   []float64 // diagonal mass: w ⊗ w (⊗ w) * |J|

	// Raw inverse-Jacobian metrics dr_a/dx_c at nodes (for physical-space
	// gradients): 2D order {rx, ry, sx, sy}; 3D order
	// {rx, ry, rz, sx, sy, sz, tx, ty, tz}.
	RX [][]float64

	// C0 connectivity.
	GID     []int64 // global id per local node, len K*Np
	NGlobal int     // number of distinct global nodes

	// Boundary flags per local node (true if on a non-shared element face;
	// periodic faces are interior by construction).
	OnBoundary []bool

	// Coarse (vertex) mesh: per element, the Dim^2... 2^Dim corner vertex
	// ids compressed to 0..NVert-1, in tensor corner order.
	ElemVert [][]int
	NVert    int
	VertXYZ  [][3]float64 // coordinates of the compressed vertices

	// Element adjacency across shared faces (for partitioning).
	Adj [][]int

	spec *Spec
}

// multilinear evaluates the multilinear corner interpolant.
func multilinear(dim int, corners [][3]float64, r, s, t float64) (float64, float64, float64) {
	if dim == 2 {
		n := [4]float64{
			(1 - r) * (1 - s) / 4, (1 + r) * (1 - s) / 4,
			(1 - r) * (1 + s) / 4, (1 + r) * (1 + s) / 4,
		}
		var x, y float64
		for i := 0; i < 4; i++ {
			x += n[i] * corners[i][0]
			y += n[i] * corners[i][1]
		}
		return x, y, 0
	}
	var x, y, z float64
	for i := 0; i < 8; i++ {
		fr, fs, ft := 1-r, 1-s, 1-t
		if i&1 != 0 {
			fr = 1 + r
		}
		if i&2 != 0 {
			fs = 1 + s
		}
		if i&4 != 0 {
			ft = 1 + t
		}
		w := fr * fs * ft / 8
		x += w * corners[i][0]
		y += w * corners[i][1]
		z += w * corners[i][2]
	}
	return x, y, z
}

// Discretize builds the order-N spectral element mesh from the spec.
func Discretize(spec *Spec, n int) (*Mesh, error) {
	if spec.Dim != 2 && spec.Dim != 3 {
		return nil, fmt.Errorf("mesh: dimension must be 2 or 3, got %d", spec.Dim)
	}
	if n < 2 {
		return nil, fmt.Errorf("mesh: order must be >= 2, got %d", n)
	}
	nc := 4
	if spec.Dim == 3 {
		nc = 8
	}
	for e, el := range spec.Elems {
		if len(el.Verts) != nc {
			return nil, fmt.Errorf("mesh: element %d has %d vertices, want %d", e, len(el.Verts), nc)
		}
	}
	m := &Mesh{Dim: spec.Dim, N: n, K: len(spec.Elems), spec: spec}
	np1 := n + 1
	m.Np = np1 * np1
	if m.Dim == 3 {
		m.Np *= np1
	}
	m.Z, m.Wt = poly.GaussLobatto(n)
	m.D = poly.DerivMatrix(m.Z)
	m.Dt = transpose(m.D, np1)

	m.X = make([]float64, m.K*m.Np)
	m.Y = make([]float64, m.K*m.Np)
	m.Zc = make([]float64, m.K*m.Np)
	corners := make([][3]float64, nc)
	for e, el := range spec.Elems {
		for c, vi := range el.Verts {
			corners[c] = spec.Verts[vi]
		}
		base := e * m.Np
		if m.Dim == 2 {
			for j := 0; j < np1; j++ {
				for i := 0; i < np1; i++ {
					idx := base + j*np1 + i
					var x, y, z float64
					if el.Map != nil {
						x, y, z = el.Map(m.Z[i], m.Z[j], 0)
					} else {
						x, y, z = multilinear(2, corners, m.Z[i], m.Z[j], 0)
					}
					m.X[idx], m.Y[idx], m.Zc[idx] = x, y, z
				}
			}
		} else {
			for k := 0; k < np1; k++ {
				for j := 0; j < np1; j++ {
					for i := 0; i < np1; i++ {
						idx := base + (k*np1+j)*np1 + i
						var x, y, z float64
						if el.Map != nil {
							x, y, z = el.Map(m.Z[i], m.Z[j], m.Z[k])
						} else {
							x, y, z = multilinear(3, corners, m.Z[i], m.Z[j], m.Z[k])
						}
						m.X[idx], m.Y[idx], m.Zc[idx] = x, y, z
					}
				}
			}
		}
	}

	if err := m.computeMetrics(); err != nil {
		return nil, err
	}
	m.numberGlobally()
	m.buildCoarseAndAdjacency()
	m.detectBoundary()
	return m, nil
}

func transpose(a []float64, n int) []float64 {
	t := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			t[j*n+i] = a[i*n+j]
		}
	}
	return t
}

// computeMetrics differentiates the nodal coordinate fields to obtain the
// Jacobian and the geometric factors of eq. (4).
func (m *Mesh) computeMetrics() error {
	np1 := m.N + 1
	m.Jac = make([]float64, m.K*m.Np)
	m.B = make([]float64, m.K*m.Np)
	ng := 3
	if m.Dim == 3 {
		ng = 6
	}
	m.G = make([][]float64, ng)
	for i := range m.G {
		m.G[i] = make([]float64, m.K*m.Np)
	}
	nrx := 4
	if m.Dim == 3 {
		nrx = 9
	}
	m.RX = make([][]float64, nrx)
	for i := range m.RX {
		m.RX[i] = make([]float64, m.K*m.Np)
	}
	if m.Dim == 2 {
		xr := make([]float64, m.Np)
		xs := make([]float64, m.Np)
		yr := make([]float64, m.Np)
		ys := make([]float64, m.Np)
		for e := 0; e < m.K; e++ {
			xe := m.X[e*m.Np : (e+1)*m.Np]
			ye := m.Y[e*m.Np : (e+1)*m.Np]
			tensor.ApplyR2D(xr, m.D, xe, np1, np1, np1)
			tensor.ApplyS2D(xs, m.D, xe, np1, np1, np1)
			tensor.ApplyR2D(yr, m.D, ye, np1, np1, np1)
			tensor.ApplyS2D(ys, m.D, ye, np1, np1, np1)
			for j := 0; j < np1; j++ {
				for i := 0; i < np1; i++ {
					l := j*np1 + i
					jac := xr[l]*ys[l] - xs[l]*yr[l]
					if jac <= 0 {
						return fmt.Errorf("mesh: non-positive Jacobian %g in element %d", jac, e)
					}
					rx, ry := ys[l]/jac, -xs[l]/jac
					sx, sy := -yr[l]/jac, xr[l]/jac
					w := m.Wt[i] * m.Wt[j] * jac
					gi := e*m.Np + l
					m.Jac[gi] = jac
					m.B[gi] = w
					m.RX[0][gi], m.RX[1][gi] = rx, ry
					m.RX[2][gi], m.RX[3][gi] = sx, sy
					m.G[0][gi] = (rx*rx + ry*ry) * w
					m.G[1][gi] = (rx*sx + ry*sy) * w
					m.G[2][gi] = (sx*sx + sy*sy) * w
				}
			}
		}
		return nil
	}
	// 3D.
	sz := m.Np
	d := make([][]float64, 9) // xr xs xt yr ys yt zr zs zt
	for i := range d {
		d[i] = make([]float64, sz)
	}
	for e := 0; e < m.K; e++ {
		fields := [][]float64{m.X[e*sz : (e+1)*sz], m.Y[e*sz : (e+1)*sz], m.Zc[e*sz : (e+1)*sz]}
		for f, fld := range fields {
			tensor.ApplyR3D(d[3*f+0], m.D, fld, np1, np1, np1, np1)
			tensor.ApplyS3D(d[3*f+1], m.D, fld, np1, np1, np1, np1)
			tensor.ApplyT3D(d[3*f+2], m.D, fld, np1, np1, np1, np1)
		}
		for k := 0; k < np1; k++ {
			for j := 0; j < np1; j++ {
				for i := 0; i < np1; i++ {
					l := (k*np1+j)*np1 + i
					xr, xs, xt := d[0][l], d[1][l], d[2][l]
					yr, ys, yt := d[3][l], d[4][l], d[5][l]
					zr, zs, zt := d[6][l], d[7][l], d[8][l]
					jac := xr*(ys*zt-yt*zs) - xs*(yr*zt-yt*zr) + xt*(yr*zs-ys*zr)
					if jac <= 0 {
						return fmt.Errorf("mesh: non-positive Jacobian %g in element %d", jac, e)
					}
					// Inverse Jacobian (dr_a/dx_c) by cofactors.
					rx := (ys*zt - yt*zs) / jac
					ry := -(xs*zt - xt*zs) / jac
					rz := (xs*yt - xt*ys) / jac
					sx := -(yr*zt - yt*zr) / jac
					sy := (xr*zt - xt*zr) / jac
					sz3 := -(xr*yt - xt*yr) / jac
					tx := (yr*zs - ys*zr) / jac
					ty := -(xr*zs - xs*zr) / jac
					tz := (xr*ys - xs*yr) / jac
					w := m.Wt[i] * m.Wt[j] * m.Wt[k] * jac
					gi := e*sz + l
					m.Jac[gi] = jac
					m.B[gi] = w
					m.RX[0][gi], m.RX[1][gi], m.RX[2][gi] = rx, ry, rz
					m.RX[3][gi], m.RX[4][gi], m.RX[5][gi] = sx, sy, sz3
					m.RX[6][gi], m.RX[7][gi], m.RX[8][gi] = tx, ty, tz
					m.G[0][gi] = (rx*rx + ry*ry + rz*rz) * w
					m.G[1][gi] = (rx*sx + ry*sy + rz*sz3) * w
					m.G[2][gi] = (rx*tx + ry*ty + rz*tz) * w
					m.G[3][gi] = (sx*sx + sy*sy + sz3*sz3) * w
					m.G[4][gi] = (sx*tx + sy*ty + sz3*tz) * w
					m.G[5][gi] = (tx*tx + ty*ty + tz*tz) * w
				}
			}
		}
	}
	return nil
}

// numberGlobally assigns global ids to the local GLL nodes by geometric
// hashing of (periodically wrapped) nodal coordinates: coincident nodes of
// adjacent elements receive the same id, enforcing C0 continuity.
func (m *Mesh) numberGlobally() {
	type key struct{ a, b, c int64 }
	// Scale-aware tolerance.
	var scale float64
	for i := range m.X {
		scale = math.Max(scale, math.Abs(m.X[i]))
		scale = math.Max(scale, math.Abs(m.Y[i]))
		scale = math.Max(scale, math.Abs(m.Zc[i]))
	}
	if scale == 0 {
		scale = 1
	}
	tol := scale * 1e-8
	inv := 1 / tol
	bins := make(map[key][]int32) // bin -> global ids in bin
	coords := make([][3]float64, 0, len(m.X)/2)
	m.GID = make([]int64, m.K*m.Np)
	wrap := m.spec.PeriodicWrap
	for li := range m.GID {
		p := [3]float64{m.X[li], m.Y[li], m.Zc[li]}
		if wrap != nil {
			p = wrap(p)
		}
		qa := int64(math.Floor(p[0] * inv))
		qb := int64(math.Floor(p[1] * inv))
		qc := int64(math.Floor(p[2] * inv))
		found := int32(-1)
		const r = 1
	search:
		for da := int64(-r); da <= r; da++ {
			for db := int64(-r); db <= r; db++ {
				for dc := int64(-r); dc <= r; dc++ {
					for _, gid := range bins[key{qa + da, qb + db, qc + dc}] {
						q := coords[gid]
						if math.Abs(q[0]-p[0]) < tol && math.Abs(q[1]-p[1]) < tol && math.Abs(q[2]-p[2]) < tol {
							found = gid
							break search
						}
					}
				}
			}
		}
		if found < 0 {
			found = int32(len(coords))
			coords = append(coords, p)
			k := key{qa, qb, qc}
			bins[k] = append(bins[k], found)
		}
		m.GID[li] = int64(found)
	}
	m.NGlobal = len(coords)
}

// CornerLocal returns the local node index of corner c (tensor corner
// order) in an element.
func (m *Mesh) CornerLocal(c int) int { return m.cornerLocal(c) }

// ElemCorner returns the physical coordinates of corner c of element e as
// seen by that element (NOT the canonical wrapped vertex position — the two
// differ across periodic boundaries).
func (m *Mesh) ElemCorner(e, c int) [3]float64 {
	li := e*m.Np + m.cornerLocal(c)
	return [3]float64{m.X[li], m.Y[li], m.Zc[li]}
}

// cornerLocal returns the local node index of corner c (tensor corner order)
// in an element.
func (m *Mesh) cornerLocal(c int) int {
	np1 := m.N + 1
	i, j, k := 0, 0, 0
	if c&1 != 0 {
		i = m.N
	}
	if c&2 != 0 {
		j = m.N
	}
	if c&4 != 0 {
		k = m.N
	}
	if m.Dim == 2 {
		return j*np1 + i
	}
	return (k*np1+j)*np1 + i
}

// buildCoarseAndAdjacency compresses corner-node global ids into the vertex
// (coarse) mesh and derives element adjacency from shared faces.
func (m *Mesh) buildCoarseAndAdjacency() {
	nc := 4
	if m.Dim == 3 {
		nc = 8
	}
	vmap := make(map[int64]int)
	m.ElemVert = make([][]int, m.K)
	for e := 0; e < m.K; e++ {
		vs := make([]int, nc)
		for c := 0; c < nc; c++ {
			li := e*m.Np + m.cornerLocal(c)
			gid := m.GID[li]
			v, ok := vmap[gid]
			if !ok {
				v = len(vmap)
				vmap[gid] = v
				m.VertXYZ = append(m.VertXYZ, [3]float64{m.X[li], m.Y[li], m.Zc[li]})
			}
			vs[c] = v
		}
		m.ElemVert[e] = vs
	}
	m.NVert = len(vmap)

	// Faces keyed by sorted corner vertex ids.
	faceCorners := m.faceCornerSets()
	type faceKey [4]int
	faces := make(map[faceKey][]int)
	for e := 0; e < m.K; e++ {
		for _, fc := range faceCorners {
			var k faceKey
			for i := range k {
				k[i] = -1
			}
			ids := make([]int, len(fc))
			for i, c := range fc {
				ids[i] = m.ElemVert[e][c]
			}
			sortInts(ids)
			copy(k[:], ids)
			faces[k] = append(faces[k], e)
		}
	}
	m.Adj = make([][]int, m.K)
	for _, es := range faces {
		if len(es) == 2 && es[0] != es[1] {
			m.Adj[es[0]] = append(m.Adj[es[0]], es[1])
			m.Adj[es[1]] = append(m.Adj[es[1]], es[0])
		}
	}
	// The faces map iterates in random order; canonicalize the neighbour
	// lists so everything downstream of Adj (spectral bisection above all)
	// is bitwise reproducible across runs.
	for e := range m.Adj {
		sortInts(m.Adj[e])
	}
}

// faceCornerSets lists, per element face, the corner indices (tensor corner
// order) of that face: 4 edges in 2D, 6 faces in 3D.
func (m *Mesh) faceCornerSets() [][]int {
	if m.Dim == 2 {
		return [][]int{{0, 1}, {2, 3}, {0, 2}, {1, 3}}
	}
	return [][]int{
		{0, 1, 2, 3}, {4, 5, 6, 7}, // t = ∓1
		{0, 1, 4, 5}, {2, 3, 6, 7}, // s = ∓1
		{0, 2, 4, 6}, {1, 3, 5, 7}, // r = ∓1
	}
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// detectBoundary marks every node lying on an element face that is not
// shared with another element (periodic faces are shared via the wrapped
// numbering, hence interior).
func (m *Mesh) detectBoundary() {
	m.OnBoundary = make([]bool, m.K*m.Np)
	// Build face multiplicity using sorted corner-gid keys.
	faceCorners := m.faceCornerSets()
	type faceKey [4]int64
	count := make(map[faceKey]int)
	keyOf := func(e, f int) faceKey {
		fc := faceCorners[f]
		var ids []int64
		for _, c := range fc {
			ids = append(ids, m.GID[e*m.Np+m.cornerLocal(c)])
		}
		// insertion sort
		for i := 1; i < len(ids); i++ {
			for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
				ids[j], ids[j-1] = ids[j-1], ids[j]
			}
		}
		var k faceKey
		for i := range k {
			k[i] = -1
		}
		copy(k[:], ids)
		return k
	}
	for e := 0; e < m.K; e++ {
		for f := range faceCorners {
			count[keyOf(e, f)]++
		}
	}
	np1 := m.N + 1
	for e := 0; e < m.K; e++ {
		for f := range faceCorners {
			if count[keyOf(e, f)] != 1 {
				continue
			}
			// Mark all nodes on face f of element e.
			for _, l := range m.faceNodes(f) {
				m.OnBoundary[e*m.Np+l] = true
			}
			_ = np1
		}
	}
}

// faceNodes returns the local node indices of face f (same ordering as
// faceCornerSets).
func (m *Mesh) faceNodes(f int) []int {
	np1 := m.N + 1
	var out []int
	if m.Dim == 2 {
		switch f {
		case 0: // s = -1
			for i := 0; i < np1; i++ {
				out = append(out, i)
			}
		case 1: // s = +1
			for i := 0; i < np1; i++ {
				out = append(out, m.N*np1+i)
			}
		case 2: // r = -1
			for j := 0; j < np1; j++ {
				out = append(out, j*np1)
			}
		case 3: // r = +1
			for j := 0; j < np1; j++ {
				out = append(out, j*np1+m.N)
			}
		}
		return out
	}
	idx := func(i, j, k int) int { return (k*np1+j)*np1 + i }
	switch f {
	case 0: // t = -1
		for j := 0; j < np1; j++ {
			for i := 0; i < np1; i++ {
				out = append(out, idx(i, j, 0))
			}
		}
	case 1: // t = +1
		for j := 0; j < np1; j++ {
			for i := 0; i < np1; i++ {
				out = append(out, idx(i, j, m.N))
			}
		}
	case 2: // s = -1
		for k := 0; k < np1; k++ {
			for i := 0; i < np1; i++ {
				out = append(out, idx(i, 0, k))
			}
		}
	case 3: // s = +1
		for k := 0; k < np1; k++ {
			for i := 0; i < np1; i++ {
				out = append(out, idx(i, m.N, k))
			}
		}
	case 4: // r = -1
		for k := 0; k < np1; k++ {
			for j := 0; j < np1; j++ {
				out = append(out, idx(0, j, k))
			}
		}
	case 5: // r = +1
		for k := 0; k < np1; k++ {
			for j := 0; j < np1; j++ {
				out = append(out, idx(m.N, j, k))
			}
		}
	}
	return out
}

// BoundaryMask returns a per-local-node multiplicative mask that is 0 on
// boundary nodes where pred(x,y,z) is true and 1 elsewhere — the standard
// way homogeneous Dirichlet conditions enter the matrix-free solvers. A nil
// pred selects the whole boundary.
func (m *Mesh) BoundaryMask(pred func(x, y, z float64) bool) []float64 {
	mask := make([]float64, m.K*m.Np)
	for i := range mask {
		mask[i] = 1
		if m.OnBoundary[i] && (pred == nil || pred(m.X[i], m.Y[i], m.Zc[i])) {
			mask[i] = 0
		}
	}
	// A global node flagged by any of its local copies must be masked in
	// all copies, or the gather-scatter would resurrect it.
	masked := make(map[int64]bool)
	for i, v := range mask {
		if v == 0 {
			masked[m.GID[i]] = true
		}
	}
	for i := range mask {
		if masked[m.GID[i]] {
			mask[i] = 0
		}
	}
	return mask
}

// MinSpacing returns the minimum nodal spacing of the mesh, the length scale
// for CFL-limited explicit substeps.
func (m *Mesh) MinSpacing() float64 {
	np1 := m.N + 1
	h := math.Inf(1)
	for e := 0; e < m.K; e++ {
		base := e * m.Np
		for l := 0; l < m.Np; l++ {
			li := l % np1
			if li+1 < np1 {
				dx := m.X[base+l+1] - m.X[base+l]
				dy := m.Y[base+l+1] - m.Y[base+l]
				dz := m.Zc[base+l+1] - m.Zc[base+l]
				d := math.Sqrt(dx*dx + dy*dy + dz*dz)
				if d > 0 && d < h {
					h = d
				}
			}
		}
	}
	return h
}
