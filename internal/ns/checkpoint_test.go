package ns

import (
	"bytes"
	"testing"
)

// checkpointSolver builds a small shear-layer-like periodic problem with
// projection and a filter on, so the checkpoint covers every piece of
// cross-step state: BDF history, projection basis, cached diagonals.
func checkpointSolver(t *testing.T) *Solver {
	t.Helper()
	m := periodicBox(t, 4, 5)
	s, err := New(Config{
		Mesh: m, Re: 1e4, Dt: 0.002, Order: 2,
		FilterAlpha: 0.2, ProjectionL: 8, PTol: 1e-7, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.SetVelocity(func(x, y, z float64) (float64, float64, float64) {
		return 0.3 + 0.1*x*(1-x), 0.05 * y * (1 - y), 0
	})
	return s
}

func stepStats(t *testing.T, s *Solver, n int) []StepStats {
	t.Helper()
	out := make([]StepStats, 0, n)
	for i := 0; i < n; i++ {
		st, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, st)
	}
	return out
}

// TestCheckpointResumeBitwise is the serial analogue of parrun's restart
// guarantee: run A steps 4+4 through a gob-round-tripped checkpoint into a
// fresh solver, run B steps 8 uninterrupted, and every per-step statistic
// and final field must match bitwise.
func TestCheckpointResumeBitwise(t *testing.T) {
	solo := checkpointSolver(t)
	defer solo.Close()
	soloStats := stepStats(t, solo, 8)

	a := checkpointSolver(t)
	firstStats := stepStats(t, a, 4)
	var buf bytes.Buffer
	if err := a.Checkpoint().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	a.Close()

	ck, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := checkpointSolver(t)
	defer b.Close()
	if err := b.Restore(ck); err != nil {
		t.Fatal(err)
	}
	if b.StepCount() != 4 || b.Time() != a.Time() {
		t.Fatalf("restored step/time %d/%g, want 4/%g", b.StepCount(), b.Time(), a.Time())
	}
	resumedStats := append(firstStats, stepStats(t, b, 4)...)

	for i := range soloStats {
		if soloStats[i] != resumedStats[i] {
			t.Fatalf("step %d stats differ:\nsolo    %+v\nresumed %+v", i+1, soloStats[i], resumedStats[i])
		}
	}
	for c := 0; c < 2; c++ {
		us, ur := solo.Velocity(c), b.Velocity(c)
		for i := range us {
			if us[i] != ur[i] {
				t.Fatalf("velocity[%d][%d] differs after resume: %g vs %g", c, i, us[i], ur[i])
			}
		}
	}
	ps, pr := solo.Pressure(), b.Pressure()
	for i := range ps {
		if ps[i] != pr[i] {
			t.Fatalf("pressure[%d] differs after resume: %g vs %g", i, ps[i], pr[i])
		}
	}
}

// TestCheckpointShapeGuard: a snapshot must refuse to restore onto a
// different problem.
func TestCheckpointShapeGuard(t *testing.T) {
	s := checkpointSolver(t)
	defer s.Close()
	stepStats(t, s, 2)
	ck := s.Checkpoint()

	m := periodicBox(t, 3, 5) // different element count
	other, err := New(Config{Mesh: m, Re: 1e4, Dt: 0.002, Order: 2, ProjectionL: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if err := other.Restore(ck); err == nil {
		t.Fatal("Restore accepted a snapshot from a different mesh")
	}

	ck2 := s.Checkpoint()
	ck2.Version = 99
	if err := s.Restore(ck2); err == nil {
		t.Fatal("Restore accepted a wrong-version snapshot")
	}
}
