package ns

import (
	"math"

	"repro/internal/gs"
	"repro/internal/tensor"
)

// interpElemVP interpolates one element's velocity-grid values to the
// pressure Gauss grid. work needs np1^dim... a slice of length >= np1^3.
func (s *Solver) interpElemVP(out, u, work []float64) {
	if s.dim == 2 {
		tensor.Apply2D(out, s.interpVP, s.interpVP, u, work, s.nm1, s.np1, s.nm1, s.np1)
		return
	}
	tensor.Apply3D(out, s.interpVP, s.interpVP, s.interpVP, u, work,
		s.nm1, s.np1, s.nm1, s.np1, s.nm1, s.np1)
}

// interpElemPV applies the transpose (adjoint) map: pressure-grid values to
// the velocity grid.
func (s *Solver) interpElemPV(out, p, work, vpt []float64) {
	if s.dim == 2 {
		tensor.Apply2D(out, vpt, vpt, p, work, s.np1, s.nm1, s.np1, s.nm1)
		return
	}
	tensor.Apply3D(out, vpt, vpt, vpt, p, work, s.np1, s.nm1, s.np1, s.nm1, s.np1, s.nm1)
}

// interpWork3DLen returns a safe scratch length for the interpolation
// tensor applications.
func (s *Solver) interpWorkLen() int {
	a := s.np1 * s.np1 * s.np1
	b := tensor.Work3DLen(s.nm1, s.np1, s.nm1, s.np1, s.nm1, s.np1)
	c := tensor.Work3DLen(s.np1, s.nm1, s.np1, s.nm1, s.np1, s.nm1)
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}

// vpt returns the transposed interpolation matrix (np1 x nm1), cached.
func (s *Solver) vptMatrix() []float64 {
	if s.vptCache == nil {
		t := make([]float64, s.np1*s.nm1)
		for i := 0; i < s.nm1; i++ {
			for j := 0; j < s.np1; j++ {
				t[j*s.nm1+i] = s.interpVP[i*s.np1+j]
			}
		}
		s.vptCache = t
	}
	return s.vptCache
}

// interpElemPVProlong interpolates one element's pressure-grid values to
// the velocity GLL grid using the prolongation J_pv (exact polynomial
// interpolation of the degree-(N-2) pressure).
func (s *Solver) interpElemPVProlong(out, p, work []float64) {
	if s.dim == 2 {
		tensor.Apply2D(out, s.interpPV, s.interpPV, p, work, s.np1, s.nm1, s.np1, s.nm1)
		return
	}
	tensor.Apply3D(out, s.interpPV, s.interpPV, s.interpPV, p, work,
		s.np1, s.nm1, s.np1, s.nm1, s.np1, s.nm1)
}

// interpElemVPRestrict applies J_pvᵀ: velocity-grid values to the pressure
// grid (the adjoint of the prolongation).
func (s *Solver) interpElemVPRestrict(out, u, work []float64) {
	pvt := s.pvtMatrix()
	if s.dim == 2 {
		tensor.Apply2D(out, pvt, pvt, u, work, s.nm1, s.np1, s.nm1, s.np1)
		return
	}
	tensor.Apply3D(out, pvt, pvt, pvt, u, work, s.nm1, s.np1, s.nm1, s.np1, s.nm1, s.np1)
}

// pvtMatrix returns J_pvᵀ (nm1 x np1), cached.
func (s *Solver) pvtMatrix() []float64 {
	if s.pvtCache == nil {
		t := make([]float64, s.nm1*s.np1)
		for i := 0; i < s.np1; i++ {
			for j := 0; j < s.nm1; j++ {
				t[j*s.np1+i] = s.interpPV[i*s.nm1+j]
			}
		}
		s.pvtCache = t
	}
	return s.pvtCache
}

// Divergence computes the weak divergence D u into the pressure space by
// GLL quadrature: (D u)_q = Σ_i h_q(ξ_i) B_i (∇·u)(ξ_i), i.e.
// D = J_pvᵀ B_v div — the exact weak form ∫ q ∇·u for the degree-(N-2)
// pressure test functions (the quadrature is exact on affine elements,
// which is what keeps the P_N–P_{N-2} pair inf-sup compatible discretely).
func (s *Solver) Divergence(out []float64, u [3][]float64) {
	m := s.M
	div := s.scr[6]
	g := s.scr012
	for i := range div {
		div[i] = 0
	}
	for c := 0; c < s.dim; c++ {
		s.DN.Grad(g[:s.dim], u[c])
		gc := g[c]
		for i := range div {
			div[i] += gc[i]
		}
	}
	for i := range div {
		div[i] *= m.B[i]
	}
	// Element-parallel restriction to the pressure grid (per-worker scratch,
	// disjoint output blocks: bitwise independent of the worker count).
	s.curP, s.curV = out, div
	s.DN.ForElements(s.restrictLoop)
	s.curP, s.curV = nil, nil
	s.D.CountFlops(int64(len(out) + 2*len(div)*s.dim))
}

// GradientT computes the momentum pressure term Dᵀ p: the (unassembled)
// element-local velocity-grid vector whose plain dot with any velocity u
// equals pᵀ (D u). outs must hold dim slices of length n.
func (s *Solver) GradientT(outs [][]float64, p []float64) {
	for c := 0; c < s.dim; c++ {
		for i := range outs[c] {
			outs[c][i] = 0
		}
	}
	// Element-parallel: each element writes only its own blocks of outs and
	// the shared scratch stacks, so any worker count is bitwise identical.
	s.curOuts, s.curP = outs, p
	s.DN.ForElements(s.gradTLoop)
	s.curOuts, s.curP = nil, nil
}

// gradTElement computes element e's contribution to Dᵀp using the supplied
// per-worker scratch (length >= interpWorkLen >= Np).
func (s *Solver) gradTElement(e int, work []float64) {
	m := s.M
	np1 := s.np1
	tv := s.scr[6][e*m.Np : (e+1)*m.Np]
	we := s.scr[7][e*m.Np : (e+1)*m.Np]
	s.interpElemPVProlong(tv, s.curP[e*s.npp:(e+1)*s.npp], work)
	for l := 0; l < m.Np; l++ {
		tv[l] *= m.B[e*m.Np+l]
	}
	// out_c = Σ_a D_aᵀ (metric_{a,c} · tv).
	buf := work[:m.Np]
	for c := 0; c < s.dim; c++ {
		oc := s.curOuts[c][e*m.Np : (e+1)*m.Np]
		for a := 0; a < s.dim; a++ {
			metric := s.M.RX[a*s.dim+c] // a=0: rx/ry, a=1: sx/sy (+tz row in 3D)
			for l := 0; l < m.Np; l++ {
				we[l] = metric[e*m.Np+l] * tv[l]
			}
			tensor.ApplyDim(buf, s.M.Dt, we, np1, s.dim, a)
			for l := 0; l < m.Np; l++ {
				oc[l] += buf[l]
			}
		}
	}
}

// applyE applies the consistent pressure Poisson operator
// E = D (M B̃⁻¹ QQᵀ) Dᵀ (Sec. 4 of the paper). For enclosed domains the
// constant mode is deflated so CG sees an SPD operator.
func (s *Solver) applyE(out, p []float64) {
	g := s.scr345
	s.GradientT(g[:s.dim], p)
	var u3 [3][]float64
	for c := 0; c < s.dim; c++ {
		s.D.GS.Apply(g[c], gs.Sum)
		if s.maskV != nil {
			for i, mk := range s.maskV {
				g[c][i] *= mk
			}
		}
		for i := range g[c] {
			g[c][i] /= s.bAssem[i]
		}
		u3[c] = g[c]
	}
	if s.dim == 2 {
		u3[2] = s.scr[5] // unused zero buffer
	}
	s.Divergence(out, u3)
	if s.enclosed {
		s.deflatePressure(out)
	}
	// Count: 2 grads + interp, ~ (4 tensor ops per component + pointwise).
	s.D.CountFlops(int64(s.dim * 4 * len(p)))
}

// pressureDot is the plain inner product on the (discontinuous) pressure
// space.
func (s *Solver) pressureDot(a, b []float64) float64 {
	var v float64
	for i := range a {
		v += a[i] * b[i]
	}
	return v
}

// deflatePressure removes the plain mean — the symmetric projector onto
// the orthogonal complement of the constant null space of E (range(E) ⊥ 1
// in the plain dot because ∫∇·v = 0 on enclosed domains).
func (s *Solver) deflatePressure(p []float64) {
	var num float64
	for _, v := range p {
		num += v
	}
	mean := num / float64(len(p))
	for i := range p {
		p[i] -= mean
	}
}

// NormalizePressureMean subtracts the physical (quadrature-weighted) mean,
// the conventional normalization of the reported pressure field.
func (s *Solver) NormalizePressureMean(p []float64) {
	var num, den float64
	for i, w := range s.wJp {
		num += w * p[i]
		den += w
	}
	mean := num / den
	for i := range p {
		p[i] -= mean
	}
}

// pressurePrecond applies the Schwarz-sandwich preconditioner:
// M_E⁻¹ = I_{v→p} M_A⁻¹ I_{v→p}ᵀ with M_A⁻¹ the FDM additive Schwarz +
// coarse preconditioner of the unmasked velocity-grid Laplacian.
func (s *Solver) pressurePrecond(out, r []float64) {
	if s.pPre == nil {
		copy(out, r)
		return
	}
	rv := s.scr[6]
	rin := r
	if s.enclosed {
		rin = s.rinArena
		copy(rin, r)
		s.deflatePressure(rin)
	}
	s.curV, s.curP = rv, rin
	s.DN.ForElements(s.prolongLoop)
	// The Schwarz preconditioner expects an assembled residual.
	s.DN.GS.Apply(rv, gs.Sum)
	zv := s.scr[7]
	s.pPre.Apply(zv, rv)
	s.curV, s.curP = zv, out
	s.DN.ForElements(s.restrictLoop)
	s.curV, s.curP = nil, nil
	if s.enclosed {
		s.deflatePressure(out)
	}
}

// DivergenceNorm returns ‖D u‖₂ of the current velocity — the discrete
// continuity residual.
func (s *Solver) DivergenceNorm() float64 {
	out := s.divArena
	s.Divergence(out, s.U)
	return math.Sqrt(s.pressureDot(out, out))
}
