package ns

import (
	"math"
	"testing"

	"repro/internal/instrument"
	"repro/internal/mesh"
	"repro/internal/solver"
)

// openBox is a NON-enclosed mesh: Dirichlet on the left wall only, every
// other boundary natural, so the pressure operator has no constant null
// space and diag(E) can be compared against the undeflated operator.
func openBoxConfig(t *testing.T) Config {
	t.Helper()
	spec := mesh.Box2D(mesh.Box2DSpec{Nx: 3, Ny: 2, X0: 0, X1: 1.5, Y0: 0, Y1: 1})
	m, err := mesh.Discretize(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Mesh: m, Re: 100, Dt: 0.01,
		DirichletMask: func(x, y, z float64) bool { return x < 1e-9 },
		DirichletVal: func(x, y, z, t float64) (float64, float64, float64) {
			return 1, 0, 0
		},
	}
}

// enclosedConfig is a channel-like enclosed case: Dirichlet walls, periodic
// in x, so the deflation path of every preconditioner variant runs.
func enclosedConfig(t *testing.T, precond string) Config {
	t.Helper()
	spec := mesh.Box2D(mesh.Box2DSpec{Nx: 4, Ny: 2, X0: 0, X1: 2, Y0: -1, Y1: 1, PeriodicX: true})
	m, err := mesh.Discretize(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Mesh: m, Re: 500, Dt: 0.01, PTol: 1e-9, PressurePrecond: precond,
		ProjectionL: 8,
		DirichletMask: func(x, y, z float64) bool { return true },
		DirichletVal: func(x, y, z, t float64) (float64, float64, float64) {
			return 0, 0, 0
		},
		Forcing: func(x, y, z, t float64) (float64, float64, float64) {
			return 1, 0, 0
		},
	}
}

func setTestVelocity(s *Solver) {
	s.SetVelocity(func(x, y, z float64) (float64, float64, float64) {
		return (1 - y*y) + 0.05*math.Sin(math.Pi*x)*math.Sin(math.Pi*y),
			0.05 * math.Sin(2*math.Pi*x) * math.Sin(math.Pi*y), 0
	})
}

// TestPressureDiagEExact: on an open (non-enclosed, undeflated) mesh the
// element-local diagonal formula must reproduce e_iᵀ E e_i exactly.
func TestPressureDiagEExact(t *testing.T) {
	cfg := openBoxConfig(t)
	cfg.PressurePrecond = PrecondChebJacobi
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.enclosed {
		t.Fatal("open box misclassified as enclosed")
	}
	d := s.PressureDiagE()
	n := s.M.K * s.npp
	if len(d) != n {
		t.Fatalf("diag length %d, want %d", len(d), n)
	}
	ei := make([]float64, n)
	eei := make([]float64, n)
	// Every entry of a few elements, plus a stride over the rest.
	for i := 0; i < n; i += 1 + i/8 {
		for j := range ei {
			ei[j] = 0
		}
		ei[i] = 1
		s.applyE(eei, ei)
		want := eei[i]
		if math.Abs(d[i]-want) > 1e-10*(math.Abs(want)+1) {
			t.Fatalf("diag[%d] = %g, operator gives %g", i, d[i], want)
		}
	}
}

// TestPrecondVariantsConverge: every variant must converge the enclosed
// channel-like case to the same PTol, and the per-solve iteration counts
// must land in the existing pressure-iteration histogram.
func TestPrecondVariantsConverge(t *testing.T) {
	iters := map[string]int{}
	for _, name := range []string{PrecondSchwarz, PrecondChebJacobi, PrecondChebSchwarz, PrecondNone} {
		cfg := enclosedConfig(t, name)
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := s.PrecondName(); got != name {
			t.Fatalf("resolved %q, want %q", got, name)
		}
		reg := instrument.New()
		s.AttachMetrics(reg)
		setTestVelocity(s)
		total := 0
		for i := 0; i < 3; i++ {
			st, err := s.Step()
			if err != nil {
				t.Fatalf("%s step %d: %v", name, i+1, err)
			}
			if !st.PressureConverged {
				t.Fatalf("%s step %d: pressure solve did not converge (%d iters, res %g)",
					name, i+1, st.PressureIters, st.PressureResFinal)
			}
			total += st.PressureIters
		}
		iters[name] = total
		h := reg.Histogram("solver/pressure.iters.hist")
		if h.Count() != 3 {
			t.Errorf("%s: pressure iteration histogram has %d observations, want 3", name, h.Count())
		}
		s.Close()
	}
	// On this tiny well-conditioned mesh the Schwarz sandwich's iteration
	// count can exceed unpreconditioned CG (a pre-existing property of the
	// reference path, verified against the seed), so only the Chebyshev-
	// Jacobi variant — whose bounds are tuned to this operator — is held to
	// a strict improvement here.
	if iters[PrecondChebJacobi] >= iters[PrecondNone] {
		t.Errorf("chebjacobi took %d iterations over 3 steps, no better than unpreconditioned %d",
			iters[PrecondChebJacobi], iters[PrecondNone])
	}
	t.Logf("pressure iterations over 3 steps: %v", iters)
}

// TestPrecondAutoTrialThenTable: with a clean table, "auto" must run the
// trial tournament (source "trial"), record the winner, and a second
// identical solver must hit the installed table (source "table") with the
// same variant and no trials.
func TestPrecondAutoTrialThenTable(t *testing.T) {
	solver.ResetPrecondTable()
	defer solver.ResetPrecondTable()
	cfg := enclosedConfig(t, PrecondAuto)
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	sel1 := s1.PrecondSelection()
	if sel1.Source != "trial" {
		t.Fatalf("first auto selection source = %q, want trial", sel1.Source)
	}
	if len(sel1.Trials) != len(PrecondNames()) {
		t.Fatalf("auto ran %d trials, want %d", len(sel1.Trials), len(PrecondNames()))
	}
	if !ValidPrecond(sel1.Name) || sel1.Name == PrecondAuto || sel1.Name == PrecondNone {
		t.Fatalf("auto selected %q", sel1.Name)
	}
	// The winner must not iterate worse than the schwarz reference trial.
	var ref, won *solver.PrecondTrial
	for i := range sel1.Trials {
		if sel1.Trials[i].Name == PrecondSchwarz {
			ref = &sel1.Trials[i]
		}
		if sel1.Trials[i].Name == sel1.Name {
			won = &sel1.Trials[i]
		}
	}
	if ref == nil || won == nil {
		t.Fatalf("trials missing reference or winner: %+v", sel1.Trials)
	}
	if !won.Converged || won.Iterations > ref.Iterations {
		t.Errorf("winner %q (%d iters, conv %v) worse than schwarz reference (%d iters)",
			sel1.Name, won.Iterations, won.Converged, ref.Iterations)
	}

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	sel2 := s2.PrecondSelection()
	if sel2.Source != "table" || sel2.Name != sel1.Name || len(sel2.Trials) != 0 {
		t.Fatalf("second auto selection = %+v, want table hit on %q", sel2, sel1.Name)
	}

	// The auto-resolved solver must step and converge like any forced one.
	setTestVelocity(s2)
	st, err := s2.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !st.PressureConverged {
		t.Fatalf("auto-selected %q did not converge the first step", sel2.Name)
	}
}

// TestPrecondSelectionSources: forced and default resolutions must be
// reported as such, and an unknown name must be rejected at New.
func TestPrecondSelectionSources(t *testing.T) {
	cfg := enclosedConfig(t, PrecondChebSchwarz)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sel := s.PrecondSelection(); sel.Source != "forced" || sel.Name != PrecondChebSchwarz {
		t.Errorf("forced selection = %+v", sel)
	}
	s.Close()

	cfg.PressurePrecond = ""
	s, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sel := s.PrecondSelection(); sel.Source != "default" || sel.Name != PrecondSchwarz {
		t.Errorf("default selection = %+v", sel)
	}
	if _, _, _, ok := s.ChebBounds(PrecondChebJacobi); ok {
		t.Error("default schwarz build reports chebjacobi bounds")
	}
	s.Close()

	cfg.PressurePrecond = "bogus"
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted an unknown preconditioner name")
	}
}

// TestPrecondDegenerateOneElement: a degenerate 1-element fully periodic
// mesh (element-local nodes self-share global nodes, diag(E) only a bound)
// must still build every variant and converge its pressure solves.
func TestPrecondDegenerateOneElement(t *testing.T) {
	for _, name := range []string{PrecondChebJacobi, PrecondChebSchwarz} {
		m := periodicBox(t, 1, 7)
		s, err := New(Config{Mesh: m, Re: 100, Dt: 0.005, PTol: 1e-8, PressurePrecond: name})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		_, lmax, _, ok := s.ChebBounds(name)
		if !ok || !(lmax > 0) || math.IsNaN(lmax) {
			t.Fatalf("%s: bad bounds on degenerate mesh: %v %v", name, lmax, ok)
		}
		s.SetVelocity(func(x, y, z float64) (float64, float64, float64) {
			return math.Sin(2 * math.Pi * y), math.Sin(2 * math.Pi * x), 0
		})
		for i := 0; i < 2; i++ {
			st, err := s.Step()
			if err != nil {
				t.Fatalf("%s step: %v", name, err)
			}
			if !st.PressureConverged {
				t.Fatalf("%s: degenerate-mesh pressure solve did not converge", name)
			}
		}
		s.Close()
	}
}

// TestChebBoundsUniform: bounds come from deterministic probes, so two
// identical builds must agree bitwise — the property parrun relies on when
// every rank reads the template's coefficients.
func TestChebBoundsUniform(t *testing.T) {
	cfg := enclosedConfig(t, PrecondChebJacobi)
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	min1, max1, d1, _ := s1.ChebBounds(PrecondChebJacobi)
	min2, max2, d2, _ := s2.ChebBounds(PrecondChebJacobi)
	if min1 != min2 || max1 != max2 || d1 != d2 {
		t.Fatalf("bounds differ between identical builds: (%g,%g,%d) vs (%g,%g,%d)",
			min1, max1, d1, min2, max2, d2)
	}
}
