package ns

import (
	"fmt"

	"repro/internal/gs"
	"repro/internal/sem"
	"repro/internal/solver"
)

// getBuf hands out n-length scratch slices from a free list.
func (s *Solver) getBuf() []float64 {
	if len(s.bufPool) > 0 {
		b := s.bufPool[len(s.bufPool)-1]
		s.bufPool = s.bufPool[:len(s.bufPool)-1]
		return b
	}
	return make([]float64, s.n)
}

func (s *Solver) putBuf(b ...[]float64) {
	s.bufPool = append(s.bufPool, b...)
}

// advectingField evaluates the advecting velocity at relative time t
// (t = 0 is the new time level) by Lagrange interpolation/extrapolation of
// the history fields hist[k] at times -(k+1)·Δt — the OIFS treatment of the
// material derivative (Sec. 4 of the paper).
func (s *Solver) advectingField(t float64, hist [][3][]float64) [3][]float64 {
	k := len(hist)
	var coef [4]float64 // k <= BDF order + 1 <= 4; stack array, no allocation
	tk := func(q int) float64 { return -float64(q+1) * s.Cfg.Dt }
	for q := 0; q < k; q++ {
		l := 1.0
		for j := 0; j < k; j++ {
			if j != q {
				l *= (t - tk(j)) / (tk(q) - tk(j))
			}
		}
		coef[q] = l
	}
	var c [3][]float64
	for d := 0; d < s.dim; d++ {
		c[d] = s.getBuf()
		cd := c[d]
		for i := range cd {
			cd[i] = 0
		}
		for q := 0; q < k; q++ {
			hq := hist[q][d]
			cq := coef[q]
			if cq == 0 {
				continue
			}
			for i := range cd {
				cd[i] += cq * hq[i]
			}
		}
	}
	return c
}

func (s *Solver) releaseField(c [3][]float64) {
	for d := 0; d < s.dim; d++ {
		s.putBuf(c[d])
	}
}

// convect computes the advection right-hand side in skew-symmetric form,
//
//	out = -(c·∇)v - skew·½(∇·c)v,
//
// where the optional skew correction (Solver.skewWeight, default 0) makes
// the operator energy-neutral in exact arithmetic. The default is the
// plain convective form: for P_N–P_{N-2} fields the *pointwise* divergence
// of the advecting field is not small (only its weak divergence vanishes),
// so the skew term injects high-mode noise and is disabled; the
// once-per-step filter supplies the stabilization (Sec. 2). divc is ∇·c
// precomputed per stage.
func (s *Solver) convect(out, v []float64, c [3][]float64, divc []float64) {
	g := s.gSlices[:s.dim]
	for d := 0; d < s.dim; d++ {
		g[d] = s.getBuf()
	}
	s.DN.Grad(g, v)
	// Element-parallel pointwise combine (disjoint output blocks).
	s.curConvOut, s.curConvV, s.curConvDiv = out, v, divc
	s.curConvC, s.curConvG = c, g
	s.DN.ForElements(s.convLoop)
	s.curConvOut, s.curConvV, s.curConvDiv = nil, nil, nil
	s.curConvC, s.curConvG = [3][]float64{}, nil
	s.putBuf(g...)
	s.D.CountFlops(int64((2*s.dim + 3) * s.n))
}

// convectElement combines the advecting field with the gradient stack on
// element e's block.
func (s *Solver) convectElement(e int) {
	np := s.M.Np
	i0, i1 := e*np, (e+1)*np
	out, c, g := s.curConvOut, s.curConvC, s.curConvG
	sw := s.Cfg.SkewWeight
	if sw == 0 {
		for i := i0; i < i1; i++ {
			var adv float64
			for d := 0; d < s.dim; d++ {
				adv += c[d][i] * g[d][i]
			}
			out[i] = -adv
		}
		return
	}
	v, divc := s.curConvV, s.curConvDiv
	for i := i0; i < i1; i++ {
		var adv float64
		for d := 0; d < s.dim; d++ {
			adv += c[d][i] * g[d][i]
		}
		out[i] = -adv - sw*0.5*divc[i]*v[i]
	}
}

// divergencePointwise computes ∇·c at the GLL nodes.
func (s *Solver) divergencePointwise(out []float64, c [3][]float64) {
	g := s.gSlices[:s.dim]
	for d := 0; d < s.dim; d++ {
		g[d] = s.getBuf()
	}
	for i := range out {
		out[i] = 0
	}
	for d := 0; d < s.dim; d++ {
		s.DN.Grad(g, c[d])
		gd := g[d]
		for i := range out {
			out[i] += gd[i]
		}
	}
	s.putBuf(g...)
}

// rk4AdvectFields advances the given fields through one RK4 substep of the
// pure advection equation dv/dt = -(c(τ)·∇)v, τ from t0 to t0+h.
func (s *Solver) rk4AdvectFields(fields [][]float64, t0, h float64, hist [][3][]float64) {
	c1 := s.advectingField(t0, hist)
	c2 := s.advectingField(t0+h/2, hist)
	c4 := s.advectingField(t0+h, hist)
	d1 := s.getBuf()
	d2 := s.getBuf()
	d4 := s.getBuf()
	if s.Cfg.SkewWeight != 0 {
		s.divergencePointwise(d1, c1)
		s.divergencePointwise(d2, c2)
		s.divergencePointwise(d4, c4)
	}
	k1 := s.getBuf()
	k2 := s.getBuf()
	k3 := s.getBuf()
	k4 := s.getBuf()
	tmp := s.getBuf()
	for _, f := range fields {
		s.convect(k1, f, c1, d1)
		for i := range tmp {
			tmp[i] = f[i] + h/2*k1[i]
		}
		s.convect(k2, tmp, c2, d2)
		for i := range tmp {
			tmp[i] = f[i] + h/2*k2[i]
		}
		s.convect(k3, tmp, c2, d2)
		for i := range tmp {
			tmp[i] = f[i] + h*k3[i]
		}
		s.convect(k4, tmp, c4, d4)
		for i := range f {
			f[i] += h / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
		}
	}
	s.putBuf(k1, k2, k3, k4, tmp, d1, d2, d4)
	s.releaseField(c1)
	s.releaseField(c2)
	s.releaseField(c4)
	s.D.CountFlops(int64(10 * s.n * len(fields)))
}

// massAverage projects an element-discontinuous field back onto the C0
// space by mass-weighted direct-stiffness averaging:
// v ← B̃⁻¹ QQᵀ (B v).
func (s *Solver) massAverage(v []float64) {
	b := s.M.B
	for i := range v {
		v[i] *= b[i]
	}
	s.D.GS.Apply(v, gs.Sum)
	for i := range v {
		v[i] /= s.bAssem[i]
	}
	s.D.CountFlops(int64(3 * s.n))
}

// scalarSolve performs the implicit advection–diffusion solve for the
// scalar field.
func (s *Solver) scalarSolve(tTil [][]float64, gamma []float64, beta, tNew float64) (int, error) {
	cfg := s.Cfg.Scalar
	m := s.M
	var d *sem.Disc = s.DS
	h1 := cfg.Diffusivity
	h2 := beta / s.Cfg.Dt
	b := s.bArena
	for i := 0; i < s.n; i++ {
		var sum float64
		for q := range tTil {
			sum += gamma[q] * tTil[q][i]
		}
		b[i] = m.B[i] * sum / s.Cfg.Dt
	}
	if cfg.Forcing != nil {
		for i := 0; i < s.n; i++ {
			b[i] += m.B[i] * cfg.Forcing(m.X[i], m.Y[i], m.Zc[i], tNew)
		}
	}
	d.Assemble(b)
	// Dirichlet lifting.
	tn := s.T
	if d.Mask != nil && cfg.DirichletVal != nil {
		for i, mk := range d.Mask {
			if mk == 0 {
				tn[i] = cfg.DirichletVal(m.X[i], m.Y[i], m.Zc[i], tNew)
			}
		}
	}
	ht := s.huArena
	d.Helmholtz(ht, tn, h1, h2)
	for i := range b {
		b[i] -= ht[i]
	}
	if d.Mask != nil {
		for i, mk := range d.Mask {
			b[i] *= mk
		}
	}
	s.helmholtzDiagS(h1, h2)
	s.curH1S, s.curH2S = h1, h2
	du := s.duArena
	for i := range du {
		du[i] = 0
	}
	st := solver.CG(s.helmOpS,
		d.Dot, du, b, solver.Options{Tol: s.Cfg.VTol, Relative: true, MaxIter: 1000, Precond: s.jacobiS,
			Time: s.instr.scalarCG, Iters: s.instr.scalarIters, Scratch: s.cgScratch})
	if !st.Converged && st.FinalRes > 1e-6 {
		return st.Iterations, fmt.Errorf("ns: scalar Helmholtz solve failed (res %g)", st.FinalRes)
	}
	for i := range tn {
		tn[i] += du[i]
	}
	return st.Iterations, nil
}
