package ns

// checkpoint.go implements checkpoint/restore for the serial (shared-
// memory) stepper — the session-migration primitive of the session
// service. A Checkpoint deep-copies everything the next Step reads that is
// not a pure function of the configuration: the fields, the BDF/OIFS
// velocity (and scalar) history, the pressure, the pressure-projection
// basis, and the cached Helmholtz Jacobi diagonals. Restoring it into a
// freshly built Solver of the same configuration yields a bitwise-
// identical continuation: same per-step statistics, same fields.
//
// Serialization is encoding/gob (float64 round-trips exactly; JSON would
// not), with a Version field guarding the layout — the same contract as
// parrun's distributed snapshots.

import (
	"encoding/gob"
	"fmt"
	"io"
)

// CheckpointVersion is the serial snapshot layout version; ReadCheckpoint
// rejects others.
const CheckpointVersion = 1

// Checkpoint is a versioned deep copy of a Solver's time-stepping state
// after Step completed steps.
type Checkpoint struct {
	Version int
	Step    int     // completed steps
	Time    float64 // simulation time after Step steps

	// Mesh/discretization shape guard: a snapshot only restores onto the
	// problem it was taken from.
	K, N, Dim, Np, Npp int
	Order              int // BDF order (bounds the history length)

	U  [3][]float64   // velocity components (element-local)
	Uh [][3][]float64 // BDF/OIFS velocity history (newest first)
	P  []float64      // pressure (Gauss grid)
	T  []float64      // scalar (nil without Boussinesq transport)
	Th [][]float64    // scalar history

	ProjXs  [][]float64 // pressure-projection basis
	ProjAxs [][]float64 // operator images of the basis

	// Cached assembled Helmholtz Jacobi diagonals (velocity and scalar
	// grids; nil if never built). They are pure functions of (h1, h2), so
	// restoring them is a speed matter, not a correctness one — but it
	// keeps the resumed run from recomputing what the uninterrupted run
	// had cached.
	Diag             []float64
	DiagH1, DiagH2   float64
	DiagS            []float64
	DiagH1S, DiagH2S float64
}

// Checkpoint captures the solver's current state. Call it between steps
// (never concurrently with Step).
func (s *Solver) Checkpoint() *Checkpoint {
	c := &Checkpoint{
		Version: CheckpointVersion,
		Step:    s.step,
		Time:    s.time,
		K:       s.M.K, N: s.M.N, Dim: s.M.Dim, Np: s.M.Np, Npp: s.npp,
		Order: s.Cfg.Order,
		P:     append([]float64(nil), s.P...),
	}
	for comp := 0; comp < 3; comp++ {
		c.U[comp] = append([]float64(nil), s.U[comp]...)
	}
	for _, h := range s.Uh {
		var hc [3][]float64
		for comp := 0; comp < 3; comp++ {
			hc[comp] = append([]float64(nil), h[comp]...)
		}
		c.Uh = append(c.Uh, hc)
	}
	if s.T != nil {
		c.T = append([]float64(nil), s.T...)
		for _, h := range s.Th {
			c.Th = append(c.Th, append([]float64(nil), h...))
		}
	}
	if s.projector != nil {
		c.ProjXs, c.ProjAxs = s.projector.State()
	}
	if s.helmDiag != nil {
		c.Diag = append([]float64(nil), s.helmDiag...)
		c.DiagH1, c.DiagH2 = s.helmH1, s.helmH2
	}
	if s.helmDiagS != nil {
		c.DiagS = append([]float64(nil), s.helmDiagS...)
		c.DiagH1S, c.DiagH2S = s.helmH1S, s.helmH2S
	}
	return c
}

// Restore replaces the solver's time-stepping state with a deep copy of a
// snapshot taken from an identically configured solver. The next Step
// continues bitwise identically to the run the snapshot was taken from.
func (s *Solver) Restore(c *Checkpoint) error {
	if c.Version != CheckpointVersion {
		return fmt.Errorf("ns: checkpoint version %d, this build reads %d", c.Version, CheckpointVersion)
	}
	if c.K != s.M.K || c.N != s.M.N || c.Dim != s.M.Dim || c.Np != s.M.Np || c.Npp != s.npp {
		return fmt.Errorf("ns: checkpoint mesh/discretization mismatch (snapshot K=%d N=%d dim=%d, solver K=%d N=%d dim=%d)",
			c.K, c.N, c.Dim, s.M.K, s.M.N, s.M.Dim)
	}
	if c.Order != s.Cfg.Order {
		return fmt.Errorf("ns: checkpoint BDF order %d, solver uses %d", c.Order, s.Cfg.Order)
	}
	if (c.T != nil) != (s.T != nil) {
		return fmt.Errorf("ns: checkpoint scalar-transport mismatch")
	}
	for comp := 0; comp < 3; comp++ {
		if len(c.U[comp]) != s.n {
			return fmt.Errorf("ns: checkpoint velocity length %d, want %d", len(c.U[comp]), s.n)
		}
		copy(s.U[comp], c.U[comp])
	}
	if len(c.P) != len(s.P) {
		return fmt.Errorf("ns: checkpoint pressure length %d, want %d", len(c.P), len(s.P))
	}
	copy(s.P, c.P)
	s.Uh = s.Uh[:0]
	for _, h := range c.Uh {
		var hc [3][]float64
		for comp := 0; comp < 3; comp++ {
			hc[comp] = make([]float64, s.n)
			copy(hc[comp], h[comp])
		}
		s.Uh = append(s.Uh, hc)
	}
	if s.T != nil {
		copy(s.T, c.T)
		s.Th = s.Th[:0]
		for _, h := range c.Th {
			th := make([]float64, s.n)
			copy(th, h)
			s.Th = append(s.Th, th)
		}
	}
	if s.projector != nil {
		s.projector.Restore(c.ProjXs, c.ProjAxs)
	}
	if c.Diag != nil {
		s.helmDiag = append(s.helmDiag[:0], c.Diag...)
		s.helmH1, s.helmH2 = c.DiagH1, c.DiagH2
	}
	if c.DiagS != nil {
		s.helmDiagS = append(s.helmDiagS[:0], c.DiagS...)
		s.helmH1S, s.helmH2S = c.DiagH1S, c.DiagH2S
	}
	s.step = c.Step
	s.time = c.Time
	return nil
}

// Encode gob-encodes the checkpoint. Callers wanting crash-safe files
// should write to a temp file, fsync, and rename (session.Store's
// filesystem backend and parrun's snapshot writer both do).
func (c *Checkpoint) Encode(w io.Writer) error {
	return gob.NewEncoder(w).Encode(c)
}

// ReadCheckpoint decodes and version-checks a snapshot.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var c Checkpoint
	if err := gob.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("ns: checkpoint decode: %w", err)
	}
	if c.Version != CheckpointVersion {
		return nil, fmt.Errorf("ns: checkpoint version %d, this build reads %d", c.Version, CheckpointVersion)
	}
	return &c, nil
}
