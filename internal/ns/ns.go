// Package ns integrates the unsteady incompressible Navier–Stokes
// equations with the paper's spectral element formulation (Secs. 2, 4, 5):
//
//   - P_N – P_{N-2} velocity/pressure spaces (velocity on Gauss–Lobatto
//     nodes, pressure on the staggered Gauss grid, no pressure continuity),
//   - semi-implicit operator splitting: BDF2/BDF3 treatment of the Stokes
//     operator with explicit subintegration of the convection term along
//     characteristics (OIFS), permitting convective CFL numbers of 1–5,
//   - per-component Helmholtz solves by Jacobi-preconditioned CG,
//   - the consistent pressure Poisson operator E = D B̃⁻¹ Dᵀ solved by CG
//     with projection onto previous solutions (Fischer 1998) and an
//     additive-Schwarz/FDM + coarse-grid preconditioner,
//   - once-per-step Fischer–Mullen filter stabilization, and
//   - optional Boussinesq scalar transport for buoyancy-driven flows.
package ns

import (
	"fmt"

	"repro/internal/gs"
	"repro/internal/instrument"
	"repro/internal/mesh"
	"repro/internal/poly"
	"repro/internal/schwarz"
	"repro/internal/sem"
	"repro/internal/solver"
)

// ScalarConfig enables an advected–diffused scalar (temperature) coupled
// back to the momentum equation through a Boussinesq buoyancy term.
type ScalarConfig struct {
	Diffusivity   float64
	Buoyancy      [3]float64                       // force = Buoyancy * T
	DirichletMask func(x, y, z float64) bool       // nil = no scalar Dirichlet
	DirichletVal  func(x, y, z, t float64) float64 // boundary value
	Initial       func(x, y, z float64) float64    // initial condition
	Forcing       func(x, y, z, t float64) float64 // volumetric source
}

// Config describes a Navier–Stokes problem.
type Config struct {
	Mesh  *mesh.Mesh
	Re    float64
	Dt    float64
	Order int // BDF order of the splitting: 2 (default) or 3

	FilterAlpha  float64 // Fischer–Mullen filter strength (0 = off)
	FilterCutoff int     // first damped mode (0 = N: damp the top mode only)
	Workers      int     // element-loop workers (the dual-processor mode)

	// Velocity Dirichlet boundary: region selector and value. nil mask
	// means no Dirichlet boundary (fully periodic domains).
	DirichletMask func(x, y, z float64) bool
	DirichletVal  func(x, y, z, t float64) (u, v, w float64)

	// Body force per unit mass (optional).
	Forcing func(x, y, z, t float64) (fx, fy, fz float64)

	Scalar *ScalarConfig // optional Boussinesq scalar

	ProjectionL int     // pressure projection basis size L (0 disables)
	PTol        float64 // pressure CG tolerance (default 1e-7, absolute on ‖r‖)
	VTol        float64 // velocity CG tolerance (default 1e-9)
	SubCFL      float64 // target CFL per convective substep (default 0.5)
	SkewWeight  float64 // skew-symmetric convection blend (0 = plain form, default)
	PMaxIter    int     // pressure CG iteration cap (default 500)

	// PressurePrecond selects the E-preconditioner: "schwarz" (default),
	// "chebjacobi", "chebschwarz", "none", or "auto" — which consults the
	// installed solver.PrecondTable and falls back to a trial-solve
	// tournament over the concrete variants (see precond.go).
	PressurePrecond string

	// TuneRanks is the rank count recorded in the preconditioner-selection
	// key when PressurePrecond is "auto": parrun sets it to the distributed
	// P so selections are keyed (and cached) per rank count; 0 means the
	// serial stepper, keyed as P=1.
	TuneRanks int

	// UnbatchedViscous keeps the per-component Helmholtz CG loop instead of
	// the batched multi-RHS solve. The batched path is bitwise identical
	// (see solver.CGMulti / sem.HelmholtzMulti); this gate exists as the
	// reference side of that golden comparison and as an escape hatch.
	UnbatchedViscous bool
}

// StepStats reports one time step.
type StepStats struct {
	Step              int
	Time              float64
	PressureIters     int
	PressureRes0      float64 // residual before CG (after projection)
	PressureResFinal  float64
	PressureConverged bool // pressure CG hit its tolerance (not the iteration cap)
	ViscousConverged  bool // all Helmholtz component solves converged
	HelmholtzIters    [3]int
	ScalarIters       int
	Substeps          int
	CFL               float64
	ProjectionBasis   int
}

// StepRecord is the per-step telemetry row appended to an attached
// TimeSeries and serialized as JSONL (one record per line).
type StepRecord struct {
	Step              int       `json:"step"`
	Time              float64   `json:"time"`
	CFL               float64   `json:"cfl"`
	Substeps          int       `json:"substeps"`
	PressureIters     int       `json:"pressure_iters"`
	PressureConverged bool      `json:"pressure_converged"`
	PressureRes0      float64   `json:"pressure_res0"`
	PressureResFinal  float64   `json:"pressure_res_final"`
	PressureResHist   []float64 `json:"pressure_res_hist"`
	HelmholtzIters    [3]int    `json:"helmholtz_iters"`
	ViscousConverged  bool      `json:"viscous_converged"`
	ScalarIters       int       `json:"scalar_iters,omitempty"`
	ProjectionBasis   int       `json:"projection_basis"`
	MaxDivergence     float64   `json:"max_divergence"`
	FilterEnergy      float64   `json:"filter_energy_removed"`

	// VirtualSeconds is the modeled per-step elapsed time on the simulated
	// machine (max across ranks). Populated only by distributed runs
	// (parrun.NavierStokes); serial steps leave it zero. It is the column
	// the fault-injection tables compare fault-free vs degraded.
	VirtualSeconds float64 `json:"virtual_seconds,omitempty"`
}

// Solver holds the time-stepping state.
type Solver struct {
	Cfg  Config
	M    *mesh.Mesh
	D    *sem.Disc // velocity-grid operators (masked)
	DN   *sem.Disc // unmasked operators (pressure preconditioning)
	dim  int
	n    int // velocity dofs per component (K*Np)
	step int
	time float64

	maskV []float64 // velocity Dirichlet mask

	// Pressure (Gauss) grid.
	npp      int       // pressure nodes per element
	np1, nm1 int       // N+1, N-1
	interpVP []float64 // (N-1)x(N+1) GLL -> Gauss interpolation
	interpPV []float64 // (N+1)x(N-1) Gauss -> GLL prolongation J_pv
	wJp      []float64 // pressure quadrature weight x |J| per pressure node
	bAssem   []float64 // assembled velocity mass diagonal

	// Fields.
	U  [3][]float64   // current velocity components (element-local)
	Uh [][3][]float64 // velocity history u^{n-1}, u^{n-2}, u^{n-3}
	P  []float64      // pressure (K*npp)
	T  []float64      // scalar
	Th [][]float64    // scalar history

	filter *sem.Filter

	// Solvers.
	pPre      *schwarz.Precond
	projector *solver.Projector
	enclosed  bool // no open boundary: pressure has the constant null space
	vol       float64

	// Pressure preconditioner selection (precond.go).
	precondName   string                  // resolved concrete variant
	precondSel    solver.PrecondSelection // how it was chosen
	pDiagE        []float64               // exact diag(E) (chebjacobi)
	chebJacobi    *solver.Chebyshev
	chebSchwarz   *solver.Chebyshev
	chebJacobiOp  solver.Operator // deflate-wrapped Apply
	chebSchwarzOp solver.Operator

	DS *sem.Disc // scalar-grid operators (scalar mask), nil without a scalar

	// Scratch.
	scr      [][]float64
	scr012   [][]float64 // header over scr[0:3] (gradient stacks)
	scr345   [][]float64 // header over scr[3:6] (pressure-gradient stacks)
	vptCache []float64
	pvtCache []float64
	bufPool  [][]float64
	gSlices  [][]float64 // reusable [][]float64 header for convection gradients
	rkFields [][]float64 // reusable header for the RK4 field set

	// Steady-state arenas: every per-step make() from the seed stepper lives
	// here instead, so Step allocates nothing after warm-up.
	iwork     [][]float64 // per-worker mesh-to-mesh interpolation scratch
	ustar     [3][]float64
	bArena    []float64 // Helmholtz RHS (velocity grid)
	huArena   []float64 // lifted-operator image
	duArena   []float64 // CG solution increment
	rpArena   []float64 // pressure RHS (Gauss grid)
	dpArena   []float64 // pressure increment
	divArena  []float64 // divergence diagnostics
	rinArena  []float64 // deflated residual copy in pressurePrecond
	histBuf   [][3][]float64
	tHistBuf  [][]float64
	utilArena [][3][]float64 // subintegrated velocity fields ũ^{n-q}
	tTilArena [][]float64    // subintegrated scalar fields
	cgScratch *solver.Scratch

	// Batched multi-RHS viscous solve: per-component RHS/operator-image/
	// increment arenas, reusable headers over ustar, the batched Helmholtz
	// closure, and the CGMulti scratch.
	bMulti      [][]float64
	huMulti     [][]float64
	duMulti     [][]float64
	ustarHdr    [][]float64
	helmMultiOp solver.MultiOperator
	cgMulti     *solver.MultiScratch

	// Cached Helmholtz diagonals (keyed by the h1/h2 pair, which only
	// changes during the BDF ramp-up) and prebuilt operator closures so the
	// per-step solves allocate no closures.
	helmDiag         []float64
	helmH1, helmH2   float64
	helmDiagS        []float64
	helmH1S, helmH2S float64
	curH1, curH2     float64
	curH1S, curH2S   float64
	helmOp           solver.Operator
	helmOpS          solver.Operator
	jacobi           solver.Operator
	jacobiS          solver.Operator
	pPrecondOp       solver.Operator

	// Prebuilt ForElements bodies for the element-parallel interpolation and
	// convection loops, with the operands they act on during one call.
	restrictLoop func(e, w int)
	prolongLoop  func(e, w int)
	gradTLoop    func(e, w int)
	convLoop     func(e, w int)
	curP, curV   []float64
	curOuts      [][]float64
	curConvOut   []float64
	curConvV     []float64
	curConvDiv   []float64
	curConvC     [3][]float64
	curConvG     [][]float64

	instr   stepInstr              // per-phase metric handles (zero value = disabled)
	tracer  *instrument.Tracer     // nil = off; wall spans for step phases + CG
	history *instrument.TimeSeries // nil = off; per-step StepRecord rows
}

// stepInstr holds the metric handles threaded through Step. All handles
// no-op while nil, so the zero value is the free disabled default.
type stepInstr struct {
	convect, viscous, pressure, filter, scalar *instrument.Timer
	viscousCG, pressureCG, scalarCG            *instrument.Timer
	viscousIters, pressureIters, scalarIters   *instrument.Counter
	steps, substeps                            *instrument.Counter
	cfl                                        *instrument.Gauge
	pressConv                                  *instrument.Gauge   // last pressure solve converged (1/0)
	nonconv                                    *instrument.Counter // steps whose pressure solve hit the cap

	// Distributions: per-step phase wall times and per-solve CG iteration
	// counts (the timers/counters above only carry totals).
	convectH, viscousH, pressureH, filterH *instrument.Histogram
	viscousIterH, pressureIterH            *instrument.Histogram
}

// AttachMetrics wires the stepper's phases (convection subintegration,
// viscous solves, pressure solve, filter, scalar transport), the CG
// machinery, the projection accelerator, and the Schwarz preconditioner
// into reg. Pass nil to detach. Call before stepping; not concurrent-safe
// with Step.
func (s *Solver) AttachMetrics(reg *instrument.Registry) {
	s.instr = stepInstr{
		convect:       reg.Timer("ns/convect"),
		viscous:       reg.Timer("ns/viscous"),
		pressure:      reg.Timer("ns/pressure"),
		filter:        reg.Timer("ns/filter"),
		scalar:        reg.Timer("ns/scalar"),
		viscousCG:     reg.Timer("solver/viscous.cg"),
		pressureCG:    reg.Timer("solver/pressure.cg"),
		scalarCG:      reg.Timer("solver/scalar.cg"),
		viscousIters:  reg.Counter("solver/viscous.iters"),
		pressureIters: reg.Counter("solver/pressure.iters"),
		scalarIters:   reg.Counter("solver/scalar.iters"),
		steps:         reg.Counter("ns/steps"),
		substeps:      reg.Counter("ns/substeps"),
		cfl:           reg.Gauge("ns/cfl"),
		pressConv:     reg.Gauge("solver/pressure.converged"),
		nonconv:       reg.Counter("ns/nonconverged.steps"),
		convectH:      reg.Histogram("ns/convect.sec"),
		viscousH:      reg.Histogram("ns/viscous.sec"),
		pressureH:     reg.Histogram("ns/pressure.sec"),
		filterH:       reg.Histogram("ns/filter.sec"),
		viscousIterH:  reg.Histogram("solver/viscous.iters.hist"),
		pressureIterH: reg.Histogram("solver/pressure.iters.hist"),
	}
	if s.projector != nil {
		s.projector.ProjectTime = reg.Timer("solver/projection")
		s.projector.BasisSize = reg.Gauge("solver/projection.basis")
		s.projector.Savings = reg.Gauge("solver/projection.savings")
	}
	if s.pPre != nil {
		s.pPre.Attach(reg)
	}
}

// AttachTracer wires wall-clock span emission (step phases, CG solves, the
// Schwarz preconditioner sections) into tr; nil detaches. Call before
// stepping; not concurrent-safe with Step.
func (s *Solver) AttachTracer(tr *instrument.Tracer) {
	s.tracer = tr
	if s.pPre != nil {
		s.pPre.AttachTracer(tr)
	}
	if tr != nil {
		tr.SetProcessName(instrument.PidWall, "solver process (wall clock)")
		tr.SetThreadName(instrument.PidWall, 0, "main")
	}
}

// AttachHistory makes every Step append a StepRecord (including the
// per-iteration pressure residual history) to h; nil detaches.
func (s *Solver) AttachHistory(h *instrument.TimeSeries) { s.history = h }

// New builds a solver from the configuration.
func New(cfg Config) (*Solver, error) {
	m := cfg.Mesh
	if m == nil {
		return nil, fmt.Errorf("ns: nil mesh")
	}
	if m.N < 3 {
		return nil, fmt.Errorf("ns: polynomial order must be >= 3 for P_N-P_{N-2}, got %d", m.N)
	}
	if cfg.Order == 0 {
		cfg.Order = 2
	}
	if cfg.Order != 1 && cfg.Order != 2 && cfg.Order != 3 {
		return nil, fmt.Errorf("ns: BDF order must be 1, 2 or 3")
	}
	if cfg.Dt <= 0 {
		return nil, fmt.Errorf("ns: Dt must be positive")
	}
	if cfg.Re <= 0 {
		return nil, fmt.Errorf("ns: Re must be positive")
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.PTol == 0 {
		cfg.PTol = 1e-7
	}
	if cfg.VTol == 0 {
		cfg.VTol = 1e-9
	}
	if cfg.SubCFL == 0 {
		cfg.SubCFL = 0.5
	}
	if cfg.PMaxIter == 0 {
		cfg.PMaxIter = 500
	}
	precondForced := cfg.PressurePrecond != ""
	if cfg.PressurePrecond == "" {
		cfg.PressurePrecond = PrecondSchwarz
	}
	s := &Solver{Cfg: cfg, M: m, dim: m.Dim, n: m.K * m.Np}
	var mask []float64
	if cfg.DirichletMask != nil {
		mask = m.BoundaryMask(cfg.DirichletMask)
	}
	s.maskV = mask
	s.D = sem.New(m, mask, cfg.Workers)
	s.DN = sem.New(m, nil, cfg.Workers)

	// Enclosed if every boundary node is Dirichlet (or there is no boundary).
	s.enclosed = true
	for i, onb := range m.OnBoundary {
		if onb && (mask == nil || mask[i] != 0) {
			s.enclosed = false
			break
		}
	}

	s.np1 = m.N + 1
	s.nm1 = m.N - 1
	s.npp = s.nm1 * s.nm1
	if m.Dim == 3 {
		s.npp *= s.nm1
	}
	zp, wp := poly.Gauss(s.nm1)
	s.interpVP = poly.InterpMatrix(zp, m.Z)
	s.interpPV = poly.InterpMatrix(m.Z, zp)
	// Pressure quadrature weights x interpolated |J|.
	s.wJp = make([]float64, m.K*s.npp)
	jacp := s.interpToPressureField(m.Jac)
	for e := 0; e < m.K; e++ {
		for l := 0; l < s.npp; l++ {
			var w float64
			if m.Dim == 2 {
				w = wp[l%s.nm1] * wp[l/s.nm1]
			} else {
				w = wp[l%s.nm1] * wp[(l/s.nm1)%s.nm1] * wp[l/(s.nm1*s.nm1)]
			}
			s.wJp[e*s.npp+l] = w * jacp[e*s.npp+l]
		}
	}
	// Assembled velocity mass.
	s.bAssem = make([]float64, s.n)
	copy(s.bAssem, m.B)
	s.D.GS.Apply(s.bAssem, gs.Sum)

	for c := 0; c < 3; c++ {
		s.U[c] = make([]float64, s.n)
	}
	s.P = make([]float64, m.K*s.npp)
	if cfg.Scalar != nil {
		s.T = make([]float64, s.n)
		if cfg.Scalar.Initial != nil {
			for i := range s.T {
				s.T[i] = cfg.Scalar.Initial(m.X[i], m.Y[i], m.Zc[i])
			}
		}
		var smask []float64
		if cfg.Scalar.DirichletMask != nil {
			smask = m.BoundaryMask(cfg.Scalar.DirichletMask)
		}
		s.DS = sem.New(m, smask, cfg.Workers)
	}
	if cfg.FilterAlpha > 0 {
		if cfg.FilterCutoff > 0 && cfg.FilterCutoff < m.N {
			f, err := sem.NewFilterRamp(m, cfg.FilterAlpha, cfg.FilterCutoff)
			if err != nil {
				return nil, fmt.Errorf("ns: filter: %w", err)
			}
			s.filter = f
		} else {
			s.filter = sem.NewFilter(m, cfg.FilterAlpha)
		}
	}
	if cfg.ProjectionL > 0 {
		s.projector = solver.NewProjector(cfg.ProjectionL, s.applyE, s.pressureDot)
	}
	one := make([]float64, s.n)
	for i := range one {
		one[i] = 1
	}
	s.vol = s.D.Integrate(one)
	ns := 8
	s.scr = make([][]float64, ns)
	for i := range s.scr {
		s.scr[i] = make([]float64, s.n)
	}
	s.scr012 = s.scr[0:3]
	s.scr345 = s.scr[3:6]
	s.gSlices = make([][]float64, 3)
	s.rkFields = make([][]float64, 3)
	s.iwork = make([][]float64, cfg.Workers)
	for w := range s.iwork {
		s.iwork[w] = make([]float64, s.interpWorkLen())
	}
	for c := 0; c < 3; c++ {
		s.ustar[c] = make([]float64, s.n)
	}
	s.bArena = make([]float64, s.n)
	s.huArena = make([]float64, s.n)
	s.duArena = make([]float64, s.n)
	npTot := m.K * s.npp
	s.rpArena = make([]float64, npTot)
	s.dpArena = make([]float64, npTot)
	s.divArena = make([]float64, npTot)
	s.rinArena = make([]float64, npTot)
	s.histBuf = make([][3][]float64, 0, 4)
	s.utilArena = make([][3][]float64, cfg.Order)
	for q := range s.utilArena {
		for c := 0; c < s.dim; c++ {
			s.utilArena[q][c] = make([]float64, s.n)
		}
	}
	if cfg.Scalar != nil {
		s.tHistBuf = make([][]float64, 0, 4)
		s.tTilArena = make([][]float64, cfg.Order)
		for q := range s.tTilArena {
			s.tTilArena[q] = make([]float64, s.n)
		}
	}
	s.cgScratch = &solver.Scratch{}
	s.bMulti = make([][]float64, s.dim)
	s.huMulti = make([][]float64, s.dim)
	s.duMulti = make([][]float64, s.dim)
	s.ustarHdr = make([][]float64, s.dim)
	for c := 0; c < s.dim; c++ {
		s.bMulti[c] = make([]float64, s.n)
		s.huMulti[c] = make([]float64, s.n)
		s.duMulti[c] = make([]float64, s.n)
	}
	s.cgMulti = &solver.MultiScratch{}
	s.helmMultiOp = func(outs, ins [][]float64) { s.D.HelmholtzMulti(outs, ins, s.curH1, s.curH2) }
	s.D.EnsureBatch(s.dim)
	s.helmOp = func(out, in []float64) { s.D.Helmholtz(out, in, s.curH1, s.curH2) }
	s.jacobi = func(out, in []float64) {
		diag := s.helmDiag
		for i := range in {
			out[i] = in[i] / diag[i]
		}
	}
	if cfg.Scalar != nil {
		s.helmOpS = func(out, in []float64) { s.DS.Helmholtz(out, in, s.curH1S, s.curH2S) }
		s.jacobiS = func(out, in []float64) {
			diag := s.helmDiagS
			for i := range in {
				out[i] = in[i] / diag[i]
			}
		}
	}
	np := m.Np
	npp := s.npp
	s.restrictLoop = func(e, w int) {
		s.interpElemVPRestrict(s.curP[e*npp:(e+1)*npp], s.curV[e*np:(e+1)*np], s.iwork[w])
	}
	s.prolongLoop = func(e, w int) {
		s.interpElemPVProlong(s.curV[e*np:(e+1)*np], s.curP[e*npp:(e+1)*npp], s.iwork[w])
	}
	s.gradTLoop = func(e, w int) { s.gradTElement(e, s.iwork[w]) }
	s.convLoop = func(e, w int) { s.convectElement(e) }
	// Force the lazily-built transposed interpolation matrices now: the
	// element loops that use them run on the worker pool, where a lazy
	// first-call fill would race.
	s.vptMatrix()
	s.pvtMatrix()
	// Last: the preconditioner resolution (possibly trial solves) needs the
	// fully assembled operator machinery above.
	if err := s.setupPressurePrecond(precondForced); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// helmholtzDiagV returns the (assembled) velocity Helmholtz diagonal for
// (h1, h2), recomputing only when the pair changes — i.e. during the BDF
// ramp-up of the first steps.
func (s *Solver) helmholtzDiagV(h1, h2 float64) []float64 {
	if s.helmDiag == nil || h1 != s.helmH1 || h2 != s.helmH2 {
		s.helmDiag = s.D.HelmholtzDiag(h1, h2)
		s.helmH1, s.helmH2 = h1, h2
	}
	return s.helmDiag
}

// helmholtzDiagS is the scalar-grid analogue of helmholtzDiagV.
func (s *Solver) helmholtzDiagS(h1, h2 float64) []float64 {
	if s.helmDiagS == nil || h1 != s.helmH1S || h2 != s.helmH2S {
		s.helmDiagS = s.DS.HelmholtzDiag(h1, h2)
		s.helmH1S, s.helmH2S = h1, h2
	}
	return s.helmDiagS
}

// Close releases the solver's element-loop worker pools (velocity,
// pressure-preconditioning, and scalar grids). It is idempotent, must not
// run concurrently with Step, and a closed solver keeps stepping correctly
// — just serially. Long-lived processes that build many solvers (the
// session service) must call Close when one is retired; the sem finalizer
// is only a GC-timed backstop.
func (s *Solver) Close() {
	s.D.Close()
	s.DN.Close()
	if s.DS != nil {
		s.DS.Close()
	}
}

// Time returns the current simulation time.
func (s *Solver) Time() float64 { return s.time }

// StepCount returns the number of completed steps.
func (s *Solver) StepCount() int { return s.step }

// SetVelocity initializes the velocity field from a function (also applies
// Dirichlet values at t=0).
func (s *Solver) SetVelocity(f func(x, y, z float64) (u, v, w float64)) {
	m := s.M
	for i := 0; i < s.n; i++ {
		u, v, w := f(m.X[i], m.Y[i], m.Zc[i])
		s.U[0][i], s.U[1][i], s.U[2][i] = u, v, w
	}
	s.applyDirichlet(s.U, 0)
}

// Velocity returns the current velocity component c (element-local layout).
func (s *Solver) Velocity(c int) []float64 { return s.U[c] }

// Pressure returns the current pressure (element-local Gauss layout).
func (s *Solver) Pressure() []float64 { return s.P }

// Scalar returns the advected scalar field (nil if not configured).
func (s *Solver) Scalar() []float64 { return s.T }

// Disc exposes the velocity-grid discretization (for norms, integrals).
func (s *Solver) Disc() *sem.Disc { return s.D }

// applyDirichlet overwrites Dirichlet-masked entries with boundary values.
func (s *Solver) applyDirichlet(u [3][]float64, t float64) {
	if s.maskV == nil || s.Cfg.DirichletVal == nil {
		return
	}
	m := s.M
	for i, mk := range s.maskV {
		if mk == 0 {
			bu, bv, bw := s.Cfg.DirichletVal(m.X[i], m.Y[i], m.Zc[i], t)
			u[0][i], u[1][i], u[2][i] = bu, bv, bw
		}
	}
}

// interpToPressureField interpolates a velocity-grid field to the pressure
// Gauss grid, element by element.
func (s *Solver) interpToPressureField(u []float64) []float64 {
	m := s.M
	out := make([]float64, m.K*s.npp)
	work := make([]float64, s.interpWorkLen())
	for e := 0; e < m.K; e++ {
		s.interpElemVP(out[e*s.npp:(e+1)*s.npp], u[e*m.Np:(e+1)*m.Np], work)
	}
	return out
}
