package ns

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/instrument"
)

func telemetrySolver(t *testing.T) *Solver {
	t.Helper()
	m := periodicBox(t, 3, 5)
	s, err := New(Config{Mesh: m, Re: 1000, Dt: 0.002, FilterAlpha: 0.05,
		ProjectionL: 8})
	if err != nil {
		t.Fatal(err)
	}
	s.SetVelocity(func(x, y, z float64) (float64, float64, float64) {
		return math.Sin(2 * math.Pi * y), 0.05 * math.Sin(2*math.Pi*x), 0
	})
	return s
}

// TestStepHistoryRecords: with a TimeSeries attached, every step appends a
// record carrying the per-iteration pressure residual history, and the
// JSONL serialization round-trips with the expected keys.
func TestStepHistoryRecords(t *testing.T) {
	s := telemetrySolver(t)
	hist := instrument.NewTimeSeries()
	s.AttachHistory(hist)
	const steps = 3
	for i := 0; i < steps; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if hist.Len() != steps {
		t.Fatalf("%d history records, want %d", hist.Len(), steps)
	}
	for i, rec := range hist.Records() {
		r, ok := rec.(StepRecord)
		if !ok {
			t.Fatalf("record %d has type %T", i, rec)
		}
		if r.Step != i+1 {
			t.Errorf("record %d: step %d", i, r.Step)
		}
		if !r.PressureConverged {
			t.Errorf("record %d: pressure not converged", i)
		}
		if len(r.PressureResHist) < 1 {
			t.Errorf("record %d: empty pressure residual history", i)
		}
		if len(r.PressureResHist) != r.PressureIters+1 {
			t.Errorf("record %d: %d residuals for %d iterations",
				i, len(r.PressureResHist), r.PressureIters)
		}
		if r.MaxDivergence <= 0 || r.MaxDivergence > 1e-3 {
			t.Errorf("record %d: max divergence %g out of range", i, r.MaxDivergence)
		}
		// The interpolation filter is not an orthogonal projection, so the
		// removed energy may have either sign — but it must be recorded
		// (nonzero) and small against the O(1) field energy.
		if r.FilterEnergy == 0 || math.Abs(r.FilterEnergy) > 1 {
			t.Errorf("record %d: filter energy removed %g out of range", i, r.FilterEnergy)
		}
	}
	var buf bytes.Buffer
	if err := hist.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != steps {
		t.Fatalf("%d JSONL lines, want %d", len(lines), steps)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"step", "time", "cfl", "pressure_iters",
		"pressure_converged", "pressure_res_hist", "max_divergence",
		"filter_energy_removed"} {
		if _, ok := m[key]; !ok {
			t.Errorf("JSONL record missing key %q", key)
		}
	}
}

// TestNonConvergenceFlagged: capping the pressure iterations must surface
// as Converged=false in stats, history, the gauge, and the counter — not
// as a silent Iterations==cap success.
func TestNonConvergenceFlagged(t *testing.T) {
	s := telemetrySolver(t)
	s.Cfg.PMaxIter = 1
	s.Cfg.PTol = 1e-14
	reg := instrument.New()
	s.AttachMetrics(reg)
	hist := instrument.NewTimeSeries()
	s.AttachHistory(hist)
	st, err := s.Step()
	if err != nil {
		t.Fatal(err)
	}
	if st.PressureConverged {
		t.Fatal("1-iteration cap reported as converged")
	}
	if st.PressureIters != 1 {
		t.Fatalf("PressureIters = %d, want 1", st.PressureIters)
	}
	if g := reg.Gauge("solver/pressure.converged").Last(); g != 0 {
		t.Errorf("convergence gauge = %g, want 0", g)
	}
	if c := reg.Counter("ns/nonconverged.steps").Value(); c != 1 {
		t.Errorf("nonconverged counter = %d, want 1", c)
	}
	rec := hist.Records()[0].(StepRecord)
	if rec.PressureConverged {
		t.Error("history record claims convergence")
	}
	if rec.PressureResFinal <= 0 {
		t.Error("final residual not recorded")
	}
}

// TestStepTraceBalanced: a traced step run emits a valid Chrome trace with
// balanced wall spans for the stepper phases and the CG solves.
func TestStepTraceBalanced(t *testing.T) {
	s := telemetrySolver(t)
	tr := instrument.NewTracer()
	s.AttachTracer(tr)
	for i := 0; i < 2; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := instrument.ValidateChromeTrace(buf.Bytes(), 0); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, ev := range tr.Events() {
		if ev.Ph == "B" {
			seen[ev.Name] = true
		}
	}
	for _, name := range []string{"ns/step", "ns/convect", "ns/viscous",
		"ns/pressure", "ns/filter", "pressure.cg", "helmholtz.cg",
		"schwarz/local", "schwarz/coarse"} {
		if !seen[name] {
			t.Errorf("no %q span in step trace", name)
		}
	}
}
