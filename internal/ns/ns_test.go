package ns

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mesh"
)

func periodicBox(t *testing.T, nel, n int) *mesh.Mesh {
	t.Helper()
	spec := mesh.Box2D(mesh.Box2DSpec{Nx: nel, Ny: nel, X0: 0, X1: 1, Y0: 0, Y1: 1,
		PeriodicX: true, PeriodicY: true})
	m, err := mesh.Discretize(spec, n)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEOperatorSymmetricPSD(t *testing.T) {
	m := periodicBox(t, 3, 5)
	s, err := New(Config{Mesh: m, Re: 100, Dt: 0.01, PressurePrecond: "none"})
	if err != nil {
		t.Fatal(err)
	}
	np := m.K * s.npp
	rng := rand.New(rand.NewSource(1))
	p := make([]float64, np)
	q := make([]float64, np)
	for i := range p {
		p[i] = rng.NormFloat64()
		q[i] = rng.NormFloat64()
	}
	ep := make([]float64, np)
	eq := make([]float64, np)
	s.applyE(ep, p)
	s.applyE(eq, q)
	lhs := s.pressureDot(ep, q)
	rhs := s.pressureDot(p, eq)
	if math.Abs(lhs-rhs) > 1e-8*(math.Abs(lhs)+1) {
		t.Errorf("E not symmetric: %g vs %g", lhs, rhs)
	}
	if pep := s.pressureDot(ep, p); pep < -1e-10 {
		t.Errorf("E not PSD: pᵀEp = %g", pep)
	}
	// Constants are in the null space (after deflation the image of a
	// constant is 0).
	c := make([]float64, np)
	for i := range c {
		c[i] = 3.7
	}
	ec := make([]float64, np)
	s.applyE(ec, c)
	if nrm := math.Sqrt(s.pressureDot(ec, ec)); nrm > 1e-8 {
		t.Errorf("E of constant pressure not ~0: %g", nrm)
	}
}

func TestPoiseuilleSteadyState(t *testing.T) {
	// Plane Poiseuille flow: periodic in x, no-slip walls, constant body
	// force. u = 4y(1-y) is a steady solution when fx = 8/Re. Starting
	// from the exact profile, the solution must stay put through the full
	// splitting (catches sign errors in D, Dᵀ and the correction step).
	spec := mesh.Box2D(mesh.Box2DSpec{Nx: 3, Ny: 3, X0: 0, X1: 2, Y0: 0, Y1: 1, PeriodicX: true})
	m, err := mesh.Discretize(spec, 6)
	if err != nil {
		t.Fatal(err)
	}
	re := 50.0
	s, err := New(Config{
		Mesh: m, Re: re, Dt: 0.02,
		DirichletMask: func(x, y, z float64) bool { return true }, // walls (only boundary left)
		DirichletVal:  func(x, y, z, t float64) (float64, float64, float64) { return 0, 0, 0 },
		Forcing: func(x, y, z, t float64) (float64, float64, float64) {
			return 8 / re, 0, 0
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.SetVelocity(func(x, y, z float64) (float64, float64, float64) {
		return 4 * y * (1 - y), 0, 0
	})
	for i := 0; i < 5; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	var maxErr float64
	for i := 0; i < s.n; i++ {
		exact := 4 * m.Y[i] * (1 - m.Y[i])
		if e := math.Abs(s.U[0][i] - exact); e > maxErr {
			maxErr = e
		}
		if e := math.Abs(s.U[1][i]); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 1e-5 {
		t.Errorf("Poiseuille drifted from steady state by %g", maxErr)
	}
	if dn := s.DivergenceNorm(); dn > 1e-6 {
		t.Errorf("divergence norm %g", dn)
	}
}

// taylorGreen returns the decaying vortex solution on the unit periodic box.
func taylorGreen(re float64) func(x, y, t float64) (u, v float64) {
	k := 2 * math.Pi
	return func(x, y, t float64) (float64, float64) {
		f := math.Exp(-2 * k * k * t / re)
		return math.Sin(k*x) * math.Cos(k*y) * f, -math.Cos(k*x) * math.Sin(k*y) * f
	}
}

func runTaylorGreen(t *testing.T, nel, n int, dt float64, steps, order int, alpha float64) float64 {
	t.Helper()
	m := periodicBox(t, nel, n)
	re := 100.0
	s, err := New(Config{Mesh: m, Re: re, Dt: dt, Order: order, FilterAlpha: alpha,
		ProjectionL: 8, PTol: 1e-10, VTol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	tg := taylorGreen(re)
	s.SetVelocity(func(x, y, z float64) (float64, float64, float64) {
		u, v := tg(x, y, 0)
		return u, v, 0
	})
	for i := 0; i < steps; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	var maxErr float64
	tEnd := s.Time()
	for i := 0; i < s.n; i++ {
		ue, ve := tg(m.X[i], m.Y[i], tEnd)
		if e := math.Abs(s.U[0][i] - ue); e > maxErr {
			maxErr = e
		}
		if e := math.Abs(s.U[1][i] - ve); e > maxErr {
			maxErr = e
		}
	}
	return maxErr
}

func TestTaylorGreenAccuracy(t *testing.T) {
	err := runTaylorGreen(t, 3, 9, 0.005, 20, 2, 0)
	t.Logf("Taylor-Green error after 20 steps: %g", err)
	if err > 5e-4 {
		t.Errorf("Taylor-Green error %g too large", err)
	}
}

func TestTaylorGreenTemporalConvergence(t *testing.T) {
	// Halving Δt with BDF2 should cut the error by about 4 (the splitting
	// is second order).
	e1 := runTaylorGreen(t, 3, 8, 0.02, 10, 2, 0)
	e2 := runTaylorGreen(t, 3, 8, 0.01, 20, 2, 0)
	ratio := e1 / e2
	t.Logf("BDF2 error ratio for dt halving: %g (e1=%g e2=%g)", ratio, e1, e2)
	if ratio < 2.5 {
		t.Errorf("not second order: ratio %g", ratio)
	}
}

func TestStepDivergenceFree(t *testing.T) {
	m := periodicBox(t, 3, 6)
	s, err := New(Config{Mesh: m, Re: 500, Dt: 0.01, PTol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	s.SetVelocity(func(x, y, z float64) (float64, float64, float64) {
		return math.Sin(2 * math.Pi * y), 0.05 * math.Sin(2*math.Pi*x), 0
	})
	for i := 0; i < 3; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if dn := s.DivergenceNorm(); dn > 1e-7 {
		t.Errorf("velocity not (discretely) divergence free: %g", dn)
	}
}

func TestProjectionReducesPressureIterations(t *testing.T) {
	run := func(l int) (first, late int) {
		m := periodicBox(t, 3, 6)
		s, err := New(Config{Mesh: m, Re: 1000, Dt: 0.01, ProjectionL: l, PTol: 1e-8})
		if err != nil {
			t.Fatal(err)
		}
		s.SetVelocity(func(x, y, z float64) (float64, float64, float64) {
			return math.Tanh(30*(y-0.25)) * boxcar(y), 0.05 * math.Sin(2*math.Pi*x), 0
		})
		var stats []StepStats
		for i := 0; i < 10; i++ {
			st, err := s.Step()
			if err != nil {
				t.Fatal(err)
			}
			stats = append(stats, st)
		}
		return stats[0].PressureIters, stats[len(stats)-1].PressureIters
	}
	_, lateOff := run(0)
	_, lateOn := run(12)
	t.Logf("late-step pressure iterations: L=0 %d, L=12 %d", lateOff, lateOn)
	if lateOn >= lateOff {
		t.Errorf("projection did not reduce pressure iterations: %d vs %d", lateOn, lateOff)
	}
}

func boxcar(y float64) float64 {
	if y > 0.5 {
		return -1
	}
	return 1
}

func TestWorkersSameAnswer(t *testing.T) {
	run := func(workers int) []float64 {
		m := periodicBox(t, 2, 6)
		s, err := New(Config{Mesh: m, Re: 200, Dt: 0.01, Workers: workers, PTol: 1e-10})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		s.SetVelocity(func(x, y, z float64) (float64, float64, float64) {
			return math.Sin(2 * math.Pi * x), math.Cos(2 * math.Pi * y), 0
		})
		for i := 0; i < 2; i++ {
			if _, err := s.Step(); err != nil {
				t.Fatal(err)
			}
		}
		return s.U[0]
	}
	u1 := run(1)
	u4 := run(4)
	for i := range u1 {
		if math.Abs(u1[i]-u4[i]) > 1e-11 {
			t.Fatalf("worker count changed the trajectory at %d: %g vs %g", i, u1[i], u4[i])
		}
	}
}

func TestConfigValidation(t *testing.T) {
	m := periodicBox(t, 2, 4)
	if _, err := New(Config{Mesh: nil, Re: 1, Dt: 1}); err == nil {
		t.Error("nil mesh accepted")
	}
	if _, err := New(Config{Mesh: m, Re: 0, Dt: 1}); err == nil {
		t.Error("Re=0 accepted")
	}
	if _, err := New(Config{Mesh: m, Re: 1, Dt: 0}); err == nil {
		t.Error("Dt=0 accepted")
	}
	if _, err := New(Config{Mesh: m, Re: 1, Dt: 1, Order: 7}); err == nil {
		t.Error("order 7 accepted")
	}
	spec := mesh.Box2D(mesh.Box2DSpec{Nx: 2, Ny: 2, X1: 1, Y1: 1})
	m2, err := mesh.Discretize(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Mesh: m2, Re: 1, Dt: 1}); err == nil {
		t.Error("N=2 accepted for P_N-P_{N-2}")
	}
}

func TestBuoyantScalarRises(t *testing.T) {
	// Hot blob in a closed box with upward buoyancy: vertical velocity
	// above the blob must become positive.
	spec := mesh.Box2D(mesh.Box2DSpec{Nx: 3, Ny: 3, X1: 1, Y1: 1})
	m, err := mesh.Discretize(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Mesh: m, Re: 100, Dt: 0.005,
		DirichletMask: func(x, y, z float64) bool { return true },
		DirichletVal:  func(x, y, z, t float64) (float64, float64, float64) { return 0, 0, 0 },
		Scalar: &ScalarConfig{
			Diffusivity: 0.01,
			Buoyancy:    [3]float64{0, 1, 0},
			Initial: func(x, y, z float64) float64 {
				dx, dy := x-0.5, y-0.35
				return math.Exp(-50 * (dx*dx + dy*dy))
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// Probe v near the blob center.
	var vMax float64
	for i := 0; i < s.n; i++ {
		if math.Abs(m.X[i]-0.5) < 0.15 && m.Y[i] > 0.35 && m.Y[i] < 0.7 {
			if s.U[1][i] > vMax {
				vMax = s.U[1][i]
			}
		}
	}
	if vMax <= 0 {
		t.Errorf("buoyant plume did not rise: vMax=%g", vMax)
	}
	if s.Scalar() == nil {
		t.Error("scalar field missing")
	}
}
