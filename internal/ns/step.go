package ns

import (
	"fmt"
	"math"

	"repro/internal/instrument"
	"repro/internal/solver"
)

// bdf returns the BDF coefficients for the effective order at this step:
// beta (coefficient of u^n / Δt) and gamma[q] (coefficient of ũ^{n-q} / Δt).
func bdf(order int) (beta float64, gamma []float64) {
	switch order {
	case 1:
		return 1, []float64{1}
	case 2:
		return 1.5, []float64{2, -0.5}
	default:
		return 11.0 / 6.0, []float64{3, -1.5, 1.0 / 3.0}
	}
}

// Step advances the solution by one time step and reports statistics.
func (s *Solver) Step() (StepStats, error) {
	cfg := s.Cfg
	st := StepStats{Step: s.step + 1}
	tNew := s.time + cfg.Dt
	spStep := s.tracer.Begin(instrument.PidWall, 0, "ns/step", "ns")
	defer spStep.End()

	// Effective order ramps up over the first steps.
	order := cfg.Order
	if avail := len(s.Uh) + 1; order > avail {
		order = avail
	}
	beta, gamma := bdf(order)

	// --- Convective subintegration (OIFS): ũ^{n-q} for q = 1..order. ---
	tConv := s.instr.convect.Begin()
	spConv := s.tracer.Begin(instrument.PidWall, 0, "ns/convect", "ns")
	cflDt, rate := s.cflLimit()
	st.CFL = rate * cfg.Dt // convective CFL of the full step
	// Histories: index 0 is u^{n-1} (current U before this step completes).
	hist := append(s.histBuf[:0], s.U)
	hist = append(hist, s.Uh...)
	utils := s.utilArena[:order]
	totalSub := 0
	for q := 1; q <= order; q++ {
		totalSub += s.advectInto(utils[q-1], hist[q-1], float64(q)*cfg.Dt, cflDt, hist)
	}
	st.Substeps = totalSub

	// Scalar transport (advanced first so buoyancy uses T^n ≈ explicit ũT).
	var tTil [][]float64
	if cfg.Scalar != nil {
		tHist := append(s.tHistBuf[:0], s.T)
		tHist = append(tHist, s.Th...)
		tTil = s.tTilArena[:order]
		for q := 1; q <= order; q++ {
			s.advectScalarInto(tTil[q-1], tHist[q-1], float64(q)*cfg.Dt, cflDt, hist)
		}
	}
	s.instr.convect.End(tConv)
	s.instr.convectH.ObserveSince(tConv)
	if s.tracer != nil {
		spConv.EndWith(map[string]any{"substeps": totalSub})
	}
	s.instr.substeps.Add(int64(totalSub))
	s.instr.cfl.Set(st.CFL)

	// --- Momentum right-hand sides and Helmholtz solves. ---
	tVisc := s.instr.viscous.Begin()
	spVisc := s.tracer.Begin(instrument.PidWall, 0, "ns/viscous", "ns")
	st.ViscousConverged = true
	h1 := 1.0 / cfg.Re
	h2 := beta / cfg.Dt
	s.helmholtzDiagV(h1, h2)
	s.curH1, s.curH2 = h1, h2
	// Pressure gradient of p^{n-1} (incremental splitting).
	gp := s.scr345
	s.GradientT(gp[:s.dim], s.P)

	ustar := s.ustar
	if cfg.UnbatchedViscous {
		for c := 0; c < s.dim; c++ {
			b := s.bArena
			s.buildViscousRHS(b, c, order, gamma, utils, tTil, beta, tNew)
			// Dirichlet lifting: start from boundary values, solve the
			// masked correction.
			u := ustar[c]
			copy(u, s.U[c])
			s.setDirichletComponent(u, c, tNew)
			hu := s.huArena
			s.D.Helmholtz(hu, u, h1, h2)
			s.finishViscousRHS(b, hu)
			du := s.duArena
			for i := range du {
				du[i] = 0
			}
			stats := solver.CG(s.helmOp, s.D.Dot, du, b, s.viscousOptions())
			if !stats.Converged {
				st.ViscousConverged = false
			}
			if !stats.Converged && stats.FinalRes > 1e-6 {
				spVisc.End()
				return st, fmt.Errorf("ns: Helmholtz solve for component %d failed (res %g)", c, stats.FinalRes)
			}
			st.HelmholtzIters[c] = stats.Iterations
			for i := range u {
				u[i] += du[i]
			}
		}
	} else {
		// Batched multi-RHS path: build every component's RHS and lifted
		// boundary field first, apply the Helmholtz lift to all components
		// in one batched element sweep, then solve the component systems in
		// lockstep — one operator sweep per CG iteration across all columns.
		// Bitwise identical to the per-component loop above (the reference
		// side of TestBatchedViscousGolden).
		for c := 0; c < s.dim; c++ {
			s.buildViscousRHS(s.bMulti[c], c, order, gamma, utils, tTil, beta, tNew)
			u := ustar[c]
			copy(u, s.U[c])
			s.setDirichletComponent(u, c, tNew)
			s.ustarHdr[c] = u
		}
		s.D.HelmholtzMulti(s.huMulti, s.ustarHdr, h1, h2)
		for c := 0; c < s.dim; c++ {
			s.finishViscousRHS(s.bMulti[c], s.huMulti[c])
			du := s.duMulti[c]
			for i := range du {
				du[i] = 0
			}
		}
		sts := solver.CGMulti(s.helmMultiOp, s.D.Dot, s.duMulti, s.bMulti, s.viscousOptions(), s.cgMulti)
		for c := 0; c < s.dim; c++ {
			stats := sts[c]
			if !stats.Converged {
				st.ViscousConverged = false
			}
			if !stats.Converged && stats.FinalRes > 1e-6 {
				spVisc.End()
				return st, fmt.Errorf("ns: Helmholtz solve for component %d failed (res %g)", c, stats.FinalRes)
			}
			st.HelmholtzIters[c] = stats.Iterations
			u, du := ustar[c], s.duMulti[c]
			for i := range u {
				u[i] += du[i]
			}
		}
	}
	s.instr.viscous.End(tVisc)
	s.instr.viscousH.ObserveSince(tVisc)
	spVisc.End()

	// --- Pressure correction: E δp = -(β/Δt) D u*. ---
	tPres := s.instr.pressure.Begin()
	spPres := s.tracer.Begin(instrument.PidWall, 0, "ns/pressure", "ns")
	rp := s.rpArena
	s.Divergence(rp, ustar)
	for i := range rp {
		rp[i] *= -h2
	}
	if s.enclosed {
		s.deflatePressure(rp)
	}
	dp := s.dpArena
	for i := range dp {
		dp[i] = 0
	}
	popt := solver.Options{Tol: cfg.PTol, MaxIter: cfg.PMaxIter, History: s.history != nil,
		Time: s.instr.pressureCG, Iters: s.instr.pressureIters, IterHist: s.instr.pressureIterH,
		Tracer: s.tracer, TraceName: "pressure.cg", Converged: s.instr.pressConv,
		Scratch: s.cgScratch}
	if s.pPrecondOp != nil {
		popt.Precond = s.pPrecondOp
	}
	var pstats solver.Stats
	if s.projector != nil {
		pstats = s.projector.ProjectAndSolve(dp, rp, popt)
		st.ProjectionBasis = s.projector.Len()
	} else {
		pstats = solver.CG(s.applyE, s.pressureDot, dp, rp, popt)
	}
	st.PressureIters = pstats.Iterations
	st.PressureRes0 = pstats.InitialRes
	st.PressureResFinal = pstats.FinalRes
	st.PressureConverged = pstats.Converged
	if !pstats.Converged {
		s.instr.nonconv.Inc()
	}

	// --- Velocity update: u^n = u* + (Δt/β) M B̃⁻¹ QQᵀ Dᵀ δp. ---
	gdp := s.scr345
	s.GradientT(gdp[:s.dim], dp)
	for c := 0; c < s.dim; c++ {
		g := gdp[c]
		s.D.Assemble(g) // QQᵀ + mask
		scale := cfg.Dt / beta
		u := ustar[c]
		for i := range u {
			u[i] += scale * g[i] / s.bAssem[i]
		}
	}
	s.instr.pressure.End(tPres)
	s.instr.pressureH.ObserveSince(tPres)
	if s.tracer != nil {
		spPres.EndWith(map[string]any{"iterations": pstats.Iterations, "converged": pstats.Converged})
	}

	// --- Scalar Helmholtz solve. ---
	if cfg.Scalar != nil {
		tScal := s.instr.scalar.Begin()
		spScal := s.tracer.Begin(instrument.PidWall, 0, "ns/scalar", "ns")
		iters, err := s.scalarSolve(tTil, gamma, beta, tNew)
		s.instr.scalar.End(tScal)
		spScal.End()
		if err != nil {
			return st, err
		}
		st.ScalarIters = iters
	}

	// --- Filter, rotate history, commit. ---
	tFilt := s.instr.filter.Begin()
	spFilt := s.tracer.Begin(instrument.PidWall, 0, "ns/filter", "ns")
	var filterRemoved float64
	if s.history != nil && s.filter != nil {
		for c := 0; c < s.dim; c++ {
			filterRemoved += s.D.Dot(ustar[c], ustar[c])
		}
	}
	for c := 0; c < s.dim; c++ {
		if s.filter != nil {
			s.D.ApplyFilter(s.filter, ustar[c])
			s.setDirichletComponent(ustar[c], c, tNew)
		}
	}
	if s.history != nil && s.filter != nil {
		for c := 0; c < s.dim; c++ {
			filterRemoved -= s.D.Dot(ustar[c], ustar[c])
		}
	}
	if s.filter != nil && s.T != nil {
		s.D.ApplyFilter(s.filter, s.T)
	}
	s.instr.filter.End(tFilt)
	s.instr.filterH.ObserveSince(tFilt)
	spFilt.End()
	// History rotation keeps up to Order-1 previous velocities. The ring
	// reuses the retired oldest entry's arrays once the window is full, so
	// steady-state rotation allocates nothing.
	keep := cfg.Order - 1
	if keep > 0 {
		var prev [3][]float64
		if len(s.Uh) >= keep {
			prev = s.Uh[len(s.Uh)-1]
			s.Uh = s.Uh[:len(s.Uh)-1]
		} else {
			for c := 0; c < 3; c++ {
				prev[c] = make([]float64, s.n)
			}
		}
		for c := 0; c < 3; c++ {
			copy(prev[c], s.U[c])
		}
		s.Uh = append(s.Uh, [3][]float64{})
		copy(s.Uh[1:], s.Uh)
		s.Uh[0] = prev
		if s.T != nil {
			var tprev []float64
			if len(s.Th) >= keep {
				tprev = s.Th[len(s.Th)-1]
				s.Th = s.Th[:len(s.Th)-1]
			} else {
				tprev = make([]float64, s.n)
			}
			copy(tprev, s.T)
			s.Th = append(s.Th, nil)
			copy(s.Th[1:], s.Th)
			s.Th[0] = tprev
		}
	}
	for c := 0; c < s.dim; c++ {
		copy(s.U[c], ustar[c])
	}
	for i := range dp {
		s.P[i] += dp[i]
	}
	if s.enclosed {
		s.deflatePressure(s.P)
	}
	s.step++
	s.time = tNew
	st.Time = s.time
	s.instr.steps.Inc()

	for c := 0; c < s.dim; c++ {
		for i := 0; i < s.n; i += 97 {
			if math.IsNaN(s.U[c][i]) {
				return st, fmt.Errorf("ns: solution diverged (NaN) at step %d", s.step)
			}
		}
	}
	if s.history != nil {
		div := s.divArena
		s.Divergence(div, s.U)
		var maxDiv float64
		for _, v := range div {
			if a := math.Abs(v); a > maxDiv {
				maxDiv = a
			}
		}
		s.history.Append(StepRecord{
			Step:              st.Step,
			Time:              st.Time,
			CFL:               st.CFL,
			Substeps:          st.Substeps,
			PressureIters:     st.PressureIters,
			PressureConverged: st.PressureConverged,
			PressureRes0:      st.PressureRes0,
			PressureResFinal:  st.PressureResFinal,
			PressureResHist:   append([]float64(nil), pstats.ResHist...),
			HelmholtzIters:    st.HelmholtzIters,
			ViscousConverged:  st.ViscousConverged,
			ScalarIters:       st.ScalarIters,
			ProjectionBasis:   st.ProjectionBasis,
			MaxDivergence:     maxDiv,
			FilterEnergy:      filterRemoved,
		})
	}
	return st, nil
}

// buildViscousRHS fills b with component c's Helmholtz right-hand side —
// the BDF history term, forcing, extrapolated buoyancy, and the lagged
// pressure gradient (already computed into s.scr345) — then assembles it.
// Shared verbatim by the batched and per-component viscous paths.
func (s *Solver) buildViscousRHS(b []float64, c, order int, gamma []float64, utils [][3][]float64, tTil [][]float64, beta, tNew float64) {
	cfg := s.Cfg
	m := s.M
	for i := 0; i < s.n; i++ {
		var sum float64
		for q := 0; q < order; q++ {
			sum += gamma[q] * utils[q][c][i]
		}
		b[i] = m.B[i] * sum / cfg.Dt
	}
	if cfg.Forcing != nil {
		for i := 0; i < s.n; i++ {
			fx, fy, fz := cfg.Forcing(m.X[i], m.Y[i], m.Zc[i], tNew)
			f := [3]float64{fx, fy, fz}
			b[i] += m.B[i] * f[c]
		}
	}
	if cfg.Scalar != nil && cfg.Scalar.Buoyancy[c] != 0 {
		// Explicit extrapolated buoyancy from the subintegrated scalar.
		for i := 0; i < s.n; i++ {
			var sum float64
			for q := 0; q < order; q++ {
				sum += gamma[q] * tTil[q][i]
			}
			b[i] += m.B[i] * cfg.Scalar.Buoyancy[c] * sum / beta
		}
	}
	gp := s.scr345
	for i := range b {
		b[i] += gp[c][i]
	}
	s.D.Assemble(b)
}

// finishViscousRHS subtracts the lifted-operator image from the assembled
// RHS and applies the Dirichlet mask.
func (s *Solver) finishViscousRHS(b, hu []float64) {
	for i := range b {
		b[i] -= hu[i]
	}
	if s.maskV != nil {
		for i, mk := range s.maskV {
			b[i] *= mk
		}
	}
}

// viscousOptions is the CG option set shared by the batched and
// per-component velocity Helmholtz solves.
func (s *Solver) viscousOptions() solver.Options {
	return solver.Options{Tol: s.Cfg.VTol, Relative: true, MaxIter: 1000, Precond: s.jacobi,
		Time: s.instr.viscousCG, Iters: s.instr.viscousIters, IterHist: s.instr.viscousIterH,
		Tracer: s.tracer, TraceName: "helmholtz.cg", Scratch: s.cgScratch}
}

// setDirichletComponent writes the Dirichlet boundary value of component c.
func (s *Solver) setDirichletComponent(u []float64, c int, t float64) {
	if s.maskV == nil || s.Cfg.DirichletVal == nil {
		return
	}
	m := s.M
	for i, mk := range s.maskV {
		if mk == 0 {
			bu, bv, bw := s.Cfg.DirichletVal(m.X[i], m.Y[i], m.Zc[i], t)
			vals := [3]float64{bu, bv, bw}
			u[i] = vals[c]
		}
	}
}

// cflLimit returns the stable substep size for explicit advection and the
// current grid CFL number per unit time (max |u|/h).
func (s *Solver) cflLimit() (dt float64, rate float64) {
	h := s.M.MinSpacing()
	var umax float64
	for c := 0; c < s.dim; c++ {
		for _, v := range s.U[c] {
			if a := math.Abs(v); a > umax {
				umax = a
			}
		}
	}
	if umax == 0 {
		return math.Inf(1), 0
	}
	rate = umax / h
	return s.Cfg.SubCFL / rate, rate
}

// substepCount returns the CFL-bounded RK4 substep count for an interval of
// length tau.
func substepCount(tau, cflDt float64) int {
	nsub := 1
	if !math.IsInf(cflDt, 1) {
		nsub = int(math.Ceil(tau / cflDt))
		if nsub < 1 {
			nsub = 1
		}
	}
	if nsub > 2000 {
		nsub = 2000
	}
	return nsub
}

// advectInto integrates dv/dt = -(c·∇)v backward-started at u0 over an
// interval of length tau ending at the new time level, using RK4 substeps
// bounded by the CFL limit, writing ũ into the caller's v (first dim
// components, each length n). The advecting field c(τ) is the Lagrange
// interpolant/extrapolant of the velocity history. Returns the substep
// count.
func (s *Solver) advectInto(v [3][]float64, u0 [3][]float64, tau, cflDt float64, hist [][3][]float64) int {
	nsub := substepCount(tau, cflDt)
	h := tau / float64(nsub)
	for c := 0; c < s.dim; c++ {
		copy(v[c], u0[c])
	}
	// Times of history fields relative to the new time level tNew:
	// hist[k] is at t = -(k+1)*Dt; the integration runs from -tau to 0.
	fields := s.rkFields[:s.dim]
	for c := 0; c < s.dim; c++ {
		fields[c] = v[c]
	}
	for sub := 0; sub < nsub; sub++ {
		t0 := -tau + float64(sub)*h
		s.rk4AdvectFields(fields, t0, h, hist)
		// Keep the field C0 across element boundaries (mass-weighted
		// average, the direct-stiffness form of the convective update).
		for c := 0; c < s.dim; c++ {
			s.massAverage(v[c])
		}
	}
	return nsub
}

// advectScalarInto is the scalar version of advectInto.
func (s *Solver) advectScalarInto(v, t0f []float64, tau, cflDt float64, hist [][3][]float64) {
	nsub := substepCount(tau, cflDt)
	h := tau / float64(nsub)
	copy(v, t0f)
	fields := s.rkFields[:1]
	fields[0] = v
	for sub := 0; sub < nsub; sub++ {
		t0 := -tau + float64(sub)*h
		s.rk4AdvectFields(fields, t0, h, hist)
		s.massAverage(v)
	}
}
