package ns

import (
	"fmt"
	"math"

	"repro/internal/instrument"
	"repro/internal/solver"
)

// bdf returns the BDF coefficients for the effective order at this step:
// beta (coefficient of u^n / Δt) and gamma[q] (coefficient of ũ^{n-q} / Δt).
func bdf(order int) (beta float64, gamma []float64) {
	switch order {
	case 1:
		return 1, []float64{1}
	case 2:
		return 1.5, []float64{2, -0.5}
	default:
		return 11.0 / 6.0, []float64{3, -1.5, 1.0 / 3.0}
	}
}

// Step advances the solution by one time step and reports statistics.
func (s *Solver) Step() (StepStats, error) {
	cfg := s.Cfg
	st := StepStats{Step: s.step + 1}
	tNew := s.time + cfg.Dt
	spStep := s.tracer.Begin(instrument.PidWall, 0, "ns/step", "ns")
	defer spStep.End()

	// Effective order ramps up over the first steps.
	order := cfg.Order
	if avail := len(s.Uh) + 1; order > avail {
		order = avail
	}
	beta, gamma := bdf(order)

	// --- Convective subintegration (OIFS): ũ^{n-q} for q = 1..order. ---
	tConv := s.instr.convect.Begin()
	spConv := s.tracer.Begin(instrument.PidWall, 0, "ns/convect", "ns")
	cflDt, rate := s.cflLimit()
	st.CFL = rate * cfg.Dt // convective CFL of the full step
	// Histories: index 0 is u^{n-1} (current U before this step completes).
	hist := make([][3][]float64, 0, order)
	hist = append(hist, s.U)
	hist = append(hist, s.Uh...)
	utils := make([][3][]float64, order)
	totalSub := 0
	for q := 1; q <= order; q++ {
		ut, nsub := s.advect(hist[q-1], float64(q)*cfg.Dt, cflDt, hist)
		utils[q-1] = ut
		totalSub += nsub
	}
	st.Substeps = totalSub

	// Scalar transport (advanced first so buoyancy uses T^n ≈ explicit ũT).
	var tTil [][]float64
	if cfg.Scalar != nil {
		tHist := make([][]float64, 0, order)
		tHist = append(tHist, s.T)
		tHist = append(tHist, s.Th...)
		tTil = make([][]float64, order)
		for q := 1; q <= order; q++ {
			tTil[q-1] = s.advectScalar(tHist[q-1], float64(q)*cfg.Dt, cflDt, hist)
		}
	}
	s.instr.convect.End(tConv)
	spConv.EndWith(map[string]any{"substeps": totalSub})
	s.instr.substeps.Add(int64(totalSub))
	s.instr.cfl.Set(st.CFL)

	// --- Momentum right-hand sides and Helmholtz solves. ---
	tVisc := s.instr.viscous.Begin()
	spVisc := s.tracer.Begin(instrument.PidWall, 0, "ns/viscous", "ns")
	st.ViscousConverged = true
	h1 := 1.0 / cfg.Re
	h2 := beta / cfg.Dt
	diag := s.D.HelmholtzDiag(h1, h2)
	jacobi := func(out, in []float64) {
		for i := range in {
			out[i] = in[i] / diag[i]
		}
	}
	// Pressure gradient of p^{n-1} (incremental splitting).
	gp := [][]float64{s.scr[3], s.scr[4], s.scr[5]}
	s.GradientT(gp[:s.dim], s.P)

	ustar := [3][]float64{make([]float64, s.n), make([]float64, s.n), make([]float64, s.n)}
	m := s.M
	for c := 0; c < s.dim; c++ {
		b := make([]float64, s.n)
		for i := 0; i < s.n; i++ {
			var sum float64
			for q := 0; q < order; q++ {
				sum += gamma[q] * utils[q][c][i]
			}
			b[i] = m.B[i] * sum / cfg.Dt
		}
		if cfg.Forcing != nil {
			for i := 0; i < s.n; i++ {
				fx, fy, fz := cfg.Forcing(m.X[i], m.Y[i], m.Zc[i], tNew)
				f := [3]float64{fx, fy, fz}
				b[i] += m.B[i] * f[c]
			}
		}
		if cfg.Scalar != nil && cfg.Scalar.Buoyancy[c] != 0 {
			// Explicit extrapolated buoyancy from the subintegrated scalar.
			for i := 0; i < s.n; i++ {
				var sum float64
				for q := 0; q < order; q++ {
					sum += gamma[q] * tTil[q][i]
				}
				b[i] += m.B[i] * cfg.Scalar.Buoyancy[c] * sum / beta
			}
		}
		for i := range b {
			b[i] += gp[c][i]
		}
		s.D.Assemble(b)
		// Dirichlet lifting: start from boundary values, solve the masked
		// correction.
		u := ustar[c]
		copy(u, s.U[c])
		s.setDirichletComponent(u, c, tNew)
		hu := make([]float64, s.n)
		s.D.Helmholtz(hu, u, h1, h2)
		for i := range b {
			b[i] -= hu[i]
		}
		if s.maskV != nil {
			for i, mk := range s.maskV {
				b[i] *= mk
			}
		}
		du := make([]float64, s.n)
		stats := solver.CG(func(out, in []float64) { s.D.Helmholtz(out, in, h1, h2) },
			s.D.Dot, du, b, solver.Options{Tol: cfg.VTol, Relative: true, MaxIter: 1000, Precond: jacobi,
				Time: s.instr.viscousCG, Iters: s.instr.viscousIters,
				Tracer: s.tracer, TraceName: "helmholtz.cg"})
		if !stats.Converged {
			st.ViscousConverged = false
		}
		if !stats.Converged && stats.FinalRes > 1e-6 {
			spVisc.End()
			return st, fmt.Errorf("ns: Helmholtz solve for component %d failed (res %g)", c, stats.FinalRes)
		}
		st.HelmholtzIters[c] = stats.Iterations
		for i := range u {
			u[i] += du[i]
		}
	}
	s.instr.viscous.End(tVisc)
	spVisc.End()

	// --- Pressure correction: E δp = -(β/Δt) D u*. ---
	tPres := s.instr.pressure.Begin()
	spPres := s.tracer.Begin(instrument.PidWall, 0, "ns/pressure", "ns")
	rp := make([]float64, m.K*s.npp)
	s.Divergence(rp, ustar)
	for i := range rp {
		rp[i] *= -h2
	}
	if s.enclosed {
		s.deflatePressure(rp)
	}
	dp := make([]float64, len(rp))
	popt := solver.Options{Tol: cfg.PTol, MaxIter: cfg.PMaxIter, History: true,
		Time: s.instr.pressureCG, Iters: s.instr.pressureIters,
		Tracer: s.tracer, TraceName: "pressure.cg", Converged: s.instr.pressConv}
	if s.pPre != nil {
		popt.Precond = func(out, in []float64) { s.pressurePrecond(out, in) }
	}
	var pstats solver.Stats
	if s.projector != nil {
		pstats = s.projector.ProjectAndSolve(dp, rp, popt)
		st.ProjectionBasis = s.projector.Len()
	} else {
		pstats = solver.CG(s.applyE, s.pressureDot, dp, rp, popt)
	}
	st.PressureIters = pstats.Iterations
	st.PressureRes0 = pstats.InitialRes
	st.PressureResFinal = pstats.FinalRes
	st.PressureConverged = pstats.Converged
	if !pstats.Converged {
		s.instr.nonconv.Inc()
	}

	// --- Velocity update: u^n = u* + (Δt/β) M B̃⁻¹ QQᵀ Dᵀ δp. ---
	gdp := [][]float64{s.scr[3], s.scr[4], s.scr[5]}
	s.GradientT(gdp[:s.dim], dp)
	for c := 0; c < s.dim; c++ {
		g := gdp[c]
		s.D.Assemble(g) // QQᵀ + mask
		scale := cfg.Dt / beta
		u := ustar[c]
		for i := range u {
			u[i] += scale * g[i] / s.bAssem[i]
		}
	}
	s.instr.pressure.End(tPres)
	spPres.EndWith(map[string]any{"iterations": pstats.Iterations, "converged": pstats.Converged})

	// --- Scalar Helmholtz solve. ---
	if cfg.Scalar != nil {
		tScal := s.instr.scalar.Begin()
		spScal := s.tracer.Begin(instrument.PidWall, 0, "ns/scalar", "ns")
		iters, err := s.scalarSolve(tTil, gamma, beta, tNew)
		s.instr.scalar.End(tScal)
		spScal.End()
		if err != nil {
			return st, err
		}
		st.ScalarIters = iters
	}

	// --- Filter, rotate history, commit. ---
	tFilt := s.instr.filter.Begin()
	spFilt := s.tracer.Begin(instrument.PidWall, 0, "ns/filter", "ns")
	var filterRemoved float64
	if s.history != nil && s.filter != nil {
		for c := 0; c < s.dim; c++ {
			filterRemoved += s.D.Dot(ustar[c], ustar[c])
		}
	}
	for c := 0; c < s.dim; c++ {
		if s.filter != nil {
			s.D.ApplyFilter(s.filter, ustar[c])
			s.setDirichletComponent(ustar[c], c, tNew)
		}
	}
	if s.history != nil && s.filter != nil {
		for c := 0; c < s.dim; c++ {
			filterRemoved -= s.D.Dot(ustar[c], ustar[c])
		}
	}
	if s.filter != nil && s.T != nil {
		s.D.ApplyFilter(s.filter, s.T)
	}
	s.instr.filter.End(tFilt)
	spFilt.End()
	// History rotation keeps up to Order-1 previous velocities.
	keep := cfg.Order - 1
	if keep > 0 {
		prev := [3][]float64{
			append([]float64(nil), s.U[0]...),
			append([]float64(nil), s.U[1]...),
			append([]float64(nil), s.U[2]...),
		}
		s.Uh = append([][3][]float64{prev}, s.Uh...)
		if len(s.Uh) > keep {
			s.Uh = s.Uh[:keep]
		}
		if s.T != nil {
			tprev := append([]float64(nil), s.T...)
			s.Th = append([][]float64{tprev}, s.Th...)
			if len(s.Th) > keep {
				s.Th = s.Th[:keep]
			}
		}
	}
	for c := 0; c < s.dim; c++ {
		copy(s.U[c], ustar[c])
	}
	for i := range dp {
		s.P[i] += dp[i]
	}
	if s.enclosed {
		s.deflatePressure(s.P)
	}
	s.step++
	s.time = tNew
	st.Time = s.time
	s.instr.steps.Inc()

	for c := 0; c < s.dim; c++ {
		for i := 0; i < s.n; i += 97 {
			if math.IsNaN(s.U[c][i]) {
				return st, fmt.Errorf("ns: solution diverged (NaN) at step %d", s.step)
			}
		}
	}
	if s.history != nil {
		div := make([]float64, m.K*s.npp)
		s.Divergence(div, s.U)
		var maxDiv float64
		for _, v := range div {
			if a := math.Abs(v); a > maxDiv {
				maxDiv = a
			}
		}
		s.history.Append(StepRecord{
			Step:              st.Step,
			Time:              st.Time,
			CFL:               st.CFL,
			Substeps:          st.Substeps,
			PressureIters:     st.PressureIters,
			PressureConverged: st.PressureConverged,
			PressureRes0:      st.PressureRes0,
			PressureResFinal:  st.PressureResFinal,
			PressureResHist:   append([]float64(nil), pstats.ResHist...),
			HelmholtzIters:    st.HelmholtzIters,
			ViscousConverged:  st.ViscousConverged,
			ScalarIters:       st.ScalarIters,
			ProjectionBasis:   st.ProjectionBasis,
			MaxDivergence:     maxDiv,
			FilterEnergy:      filterRemoved,
		})
	}
	return st, nil
}

// setDirichletComponent writes the Dirichlet boundary value of component c.
func (s *Solver) setDirichletComponent(u []float64, c int, t float64) {
	if s.maskV == nil || s.Cfg.DirichletVal == nil {
		return
	}
	m := s.M
	for i, mk := range s.maskV {
		if mk == 0 {
			bu, bv, bw := s.Cfg.DirichletVal(m.X[i], m.Y[i], m.Zc[i], t)
			vals := [3]float64{bu, bv, bw}
			u[i] = vals[c]
		}
	}
}

// cflLimit returns the stable substep size for explicit advection and the
// current grid CFL number per unit time (max |u|/h).
func (s *Solver) cflLimit() (dt float64, rate float64) {
	h := s.M.MinSpacing()
	var umax float64
	for c := 0; c < s.dim; c++ {
		for _, v := range s.U[c] {
			if a := math.Abs(v); a > umax {
				umax = a
			}
		}
	}
	if umax == 0 {
		return math.Inf(1), 0
	}
	rate = umax / h
	return s.Cfg.SubCFL / rate, rate
}

// advect integrates dv/dt = -(c·∇)v backward-started at u0 over an
// interval of length tau ending at the new time level, using RK4 substeps
// bounded by the CFL limit. The advecting field c(τ) is the Lagrange
// interpolant/extrapolant of the velocity history. Returns ũ and the
// substep count.
func (s *Solver) advect(u0 [3][]float64, tau, cflDt float64, hist [][3][]float64) ([3][]float64, int) {
	nsub := 1
	if !math.IsInf(cflDt, 1) {
		nsub = int(math.Ceil(tau / cflDt))
		if nsub < 1 {
			nsub = 1
		}
	}
	if nsub > 2000 {
		nsub = 2000
	}
	h := tau / float64(nsub)
	v := [3][]float64{}
	for c := 0; c < s.dim; c++ {
		v[c] = append([]float64(nil), u0[c]...)
	}
	// Times of history fields relative to the new time level tNew:
	// hist[k] is at t = -(k+1)*Dt; the integration runs from -tau to 0.
	for sub := 0; sub < nsub; sub++ {
		t0 := -tau + float64(sub)*h
		s.rk4Advect([][]float64{v[0], v[1], v[2]}, t0, h, hist)
		// Keep the field C0 across element boundaries (mass-weighted
		// average, the direct-stiffness form of the convective update).
		for c := 0; c < s.dim; c++ {
			s.massAverage(v[c])
		}
	}
	return v, nsub
}

// advectScalar is the scalar version of advect.
func (s *Solver) advectScalar(t0f []float64, tau, cflDt float64, hist [][3][]float64) []float64 {
	nsub := 1
	if !math.IsInf(cflDt, 1) {
		nsub = int(math.Ceil(tau / cflDt))
		if nsub < 1 {
			nsub = 1
		}
	}
	if nsub > 2000 {
		nsub = 2000
	}
	h := tau / float64(nsub)
	v := append([]float64(nil), t0f...)
	for sub := 0; sub < nsub; sub++ {
		t0 := -tau + float64(sub)*h
		s.rk4AdvectFields([][]float64{v}, t0, h, hist)
		s.massAverage(v)
	}
	return v
}

// rk4Advect advances the velocity components through one RK4 substep.
func (s *Solver) rk4Advect(v [][]float64, t0, h float64, hist [][3][]float64) {
	s.rk4AdvectFields(v[:s.dim], t0, h, hist)
}
