package ns

// dist.go factors the stepper phases into per-element kernels drivable from
// SPMD rank bodies (internal/parrun): a rank owning a subset of elements
// keeps its fields in rank-local block storage and advances them with the
// same arithmetic the serial Step runs, exchanging only through the
// distributed gather–scatter and allreduce inner products. Every method
// here is read-only on the Solver and takes caller-owned scratch (or pulls
// from the Disc's concurrent pool), so all ranks may share one Solver as a
// read-only operator template.

import (
	"repro/internal/schwarz"
	"repro/internal/sem"
	"repro/internal/tensor"
)

// BDF returns the BDF coefficients for the given effective order: beta
// (coefficient of u^n/Δt) and gamma[q] (coefficient of ũ^{n-q}/Δt).
func BDF(order int) (beta float64, gamma []float64) { return bdf(order) }

// SubstepCount returns the CFL-bounded RK4 substep count for an advection
// interval of length tau given the stable substep size cflDt.
func SubstepCount(tau, cflDt float64) int { return substepCount(tau, cflDt) }

// Npp returns the pressure (Gauss-grid) nodes per element.
func (s *Solver) Npp() int { return s.npp }

// Dim returns the spatial dimension.
func (s *Solver) Dim() int { return s.dim }

// Enclosed reports whether the pressure operator carries the constant null
// space (no open boundary), i.e. whether solves must deflate the mean.
func (s *Solver) Enclosed() bool { return s.enclosed }

// VelocityMask returns the velocity Dirichlet mask in the global
// element-local layout (nil when the problem has no Dirichlet boundary).
// Read-only.
func (s *Solver) VelocityMask() []float64 { return s.maskV }

// BAssem returns the assembled velocity mass diagonal in the global
// element-local layout. Read-only.
func (s *Solver) BAssem() []float64 { return s.bAssem }

// PressurePre returns the Schwarz preconditioner of the pressure solve (nil
// when PressurePrecond is "none").
func (s *Solver) PressurePre() *schwarz.Precond { return s.pPre }

// FilterOp returns the Fischer–Mullen filter (nil when FilterAlpha is 0).
func (s *Solver) FilterOp() *sem.Filter { return s.filter }

// InterpWorkLen returns the scratch length required by the staggered-grid
// interpolation kernels (RestrictVPElem, ProlongPVElem, GradTElem).
func (s *Solver) InterpWorkLen() int { return s.interpWorkLen() }

// RestrictVPElem applies J_pvᵀ (velocity grid → pressure grid, the adjoint
// of the prolongation) on one element's local blocks: out has length Npp,
// u length Np, work length ≥ InterpWorkLen.
func (s *Solver) RestrictVPElem(out, u, work []float64) {
	s.interpElemVPRestrict(out, u, work)
}

// ProlongPVElem applies J_pv (pressure grid → velocity grid, exact
// polynomial interpolation of the degree-(N-2) pressure) on one element's
// local blocks: out has length Np, p length Npp, work length ≥
// InterpWorkLen.
func (s *Solver) ProlongPVElem(out, p, work []float64) {
	s.interpElemPVProlong(out, p, work)
}

// GradTElem accumulates element e's contribution to the momentum pressure
// term Dᵀp into the local velocity-grid blocks outs[0..dim) (length Np
// each, caller-zeroed), from the local pressure block pe (length Npp).
// Scratch: work length ≥ InterpWorkLen, tv and we length Np. This is the
// rank-local form of the serial gradTElement, with identical arithmetic.
func (s *Solver) GradTElem(outs [][]float64, pe []float64, e int, work, tv, we []float64) {
	m := s.M
	np1 := s.np1
	s.interpElemPVProlong(tv, pe, work)
	base := e * m.Np
	for l := 0; l < m.Np; l++ {
		tv[l] *= m.B[base+l]
	}
	buf := work[:m.Np]
	for c := 0; c < s.dim; c++ {
		oc := outs[c]
		for a := 0; a < s.dim; a++ {
			metric := m.RX[a*s.dim+c]
			for l := 0; l < m.Np; l++ {
				we[l] = metric[base+l] * tv[l]
			}
			tensor.ApplyDim(buf, m.Dt, we, np1, s.dim, a)
			for l := 0; l < m.Np; l++ {
				oc[l] += buf[l]
			}
		}
	}
}

// AdvectCoeffs returns the Lagrange interpolation/extrapolation
// coefficients of the k velocity-history fields (at times -(q+1)·Δt) for
// relative time t (t = 0 is the new time level) — the OIFS advecting-field
// weights of advectingField, without touching Solver scratch.
func (s *Solver) AdvectCoeffs(t float64, k int) [4]float64 {
	var coef [4]float64
	tk := func(q int) float64 { return -float64(q+1) * s.Cfg.Dt }
	for q := 0; q < k; q++ {
		l := 1.0
		for j := 0; j < k; j++ {
			if j != q {
				l *= (t - tk(j)) / (tk(q) - tk(j))
			}
		}
		coef[q] = l
	}
	return coef
}
