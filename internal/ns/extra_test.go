package ns

import (
	"math"
	"testing"

	"repro/internal/mesh"
)

func TestBDF3TaylorGreen(t *testing.T) {
	// Third-order splitting must track the decaying vortex at least as well
	// as BDF2 at the same step size.
	e2 := runTaylorGreen(t, 3, 9, 0.01, 15, 2, 0)
	e3 := runTaylorGreen(t, 3, 9, 0.01, 15, 3, 0)
	t.Logf("BDF2 err %g, BDF3 err %g", e2, e3)
	if e3 > 2*e2 {
		t.Errorf("BDF3 (%g) should not be much worse than BDF2 (%g)", e3, e2)
	}
}

func TestTimeDependentDirichlet(t *testing.T) {
	// Lid-driven cavity with a smoothly ramped lid: the boundary velocity
	// must follow the prescribed ramp exactly, and the interior must start
	// moving.
	spec := mesh.Box2D(mesh.Box2DSpec{Nx: 3, Ny: 3, X1: 1, Y1: 1})
	m, err := mesh.Discretize(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	lid := func(tt float64) float64 { return math.Min(tt/0.05, 1) }
	s, err := New(Config{
		Mesh: m, Re: 100, Dt: 0.01,
		DirichletMask: func(x, y, z float64) bool { return true },
		DirichletVal: func(x, y, z, tt float64) (float64, float64, float64) {
			if y > 1-1e-12 && x > 1e-12 && x < 1-1e-12 {
				return lid(tt), 0, 0
			}
			return 0, 0, 0
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	want := lid(s.Time())
	foundLid := false
	for i := 0; i < s.n; i++ {
		if m.Y[i] > 1-1e-12 && m.X[i] > 0.2 && m.X[i] < 0.8 {
			foundLid = true
			if math.Abs(s.U[0][i]-want) > 1e-12 {
				t.Fatalf("lid velocity %g, want %g", s.U[0][i], want)
			}
		}
	}
	if !foundLid {
		t.Fatal("no lid nodes probed")
	}
	// Interior motion below the lid.
	var umax float64
	for i := 0; i < s.n; i++ {
		if m.Y[i] > 0.6 && m.Y[i] < 0.95 {
			umax = math.Max(umax, math.Abs(s.U[0][i]))
		}
	}
	if umax < 1e-4 {
		t.Errorf("cavity interior not dragged by the lid: %g", umax)
	}
}

func TestNormalizePressureMean(t *testing.T) {
	m := periodicBox(t, 2, 5)
	s, err := New(Config{Mesh: m, Re: 10, Dt: 0.01, PressurePrecond: "none"})
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, m.K*s.npp)
	for i := range p {
		p[i] = float64(i%7) + 3
	}
	s.NormalizePressureMean(p)
	var num, den float64
	for i, w := range s.wJp {
		num += w * p[i]
		den += w
	}
	if math.Abs(num/den) > 1e-12 {
		t.Errorf("weighted mean not removed: %g", num/den)
	}
}

func TestStatsFields(t *testing.T) {
	m := periodicBox(t, 2, 5)
	s, err := New(Config{Mesh: m, Re: 100, Dt: 0.01, ProjectionL: 5})
	if err != nil {
		t.Fatal(err)
	}
	s.SetVelocity(func(x, y, z float64) (float64, float64, float64) {
		return math.Sin(2 * math.Pi * y), 0, 0
	})
	st, err := s.Step()
	if err != nil {
		t.Fatal(err)
	}
	if st.Step != 1 || st.Time != 0.01 {
		t.Errorf("step bookkeeping wrong: %+v", st)
	}
	if st.Substeps < 1 {
		t.Error("no substeps recorded")
	}
	if st.CFL <= 0 {
		t.Error("CFL not recorded")
	}
	if s.StepCount() != 1 {
		t.Error("StepCount wrong")
	}
}

func TestSkewWeightOptionRuns(t *testing.T) {
	m := periodicBox(t, 2, 6)
	s, err := New(Config{Mesh: m, Re: 500, Dt: 0.005, SkewWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.SetVelocity(func(x, y, z float64) (float64, float64, float64) {
		return math.Sin(2 * math.Pi * y), 0.01 * math.Sin(2*math.Pi*x), 0
	})
	for i := 0; i < 3; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if dn := s.DivergenceNorm(); dn > 1e-6 {
		t.Errorf("skew-form run not divergence free: %g", dn)
	}
}
