package ns

// precond.go: runtime-selected pressure preconditioning. The Schwarz(FDM)+
// XXT sandwich (pressurePrecond in operators.go) stays the bitwise
// reference; this file adds the Chebyshev-accelerated point-Jacobi and
// Schwarz-smoothing variants of Phillips et al. and the "auto" mode that
// picks per (K, N, dim, P, tol) from short trial solves, recording the
// winner in solver's process-wide table (and, through the CLI, the keyed
// persistent cache).

import (
	"fmt"
	"math"

	"repro/internal/gs"
	"repro/internal/schwarz"
	"repro/internal/solver"
)

// Pressure preconditioner variant names accepted by Config.PressurePrecond.
const (
	PrecondSchwarz     = "schwarz"     // FDM additive Schwarz + coarse XXT (reference)
	PrecondNone        = "none"        // unpreconditioned CG
	PrecondChebJacobi  = "chebjacobi"  // Chebyshev-accelerated point-Jacobi on diag(E)
	PrecondChebSchwarz = "chebschwarz" // Chebyshev-accelerated coarse-free Schwarz sweep
	PrecondAuto        = "auto"        // table lookup, else trial-solve tournament
)

// Chebyshev polynomial degrees per variant: Jacobi is a weak sweep and
// needs a longer polynomial; the Schwarz sweep is strong enough that two
// terms recover most of what the coarse solve provided.
const (
	chebDegreeJacobi  = 5
	chebDegreeSchwarz = 2
)

// ValidPrecond reports whether name is an accepted PressurePrecond value.
func ValidPrecond(name string) bool {
	switch name {
	case PrecondSchwarz, PrecondNone, PrecondChebJacobi, PrecondChebSchwarz, PrecondAuto:
		return true
	}
	return false
}

// PrecondNames lists the concrete variants (no "auto") in tournament order:
// the reference first, so selection ties keep it.
func PrecondNames() []string {
	return []string{PrecondSchwarz, PrecondChebJacobi, PrecondChebSchwarz}
}

// setupPressurePrecond resolves Cfg.PressurePrecond into s.pPrecondOp and
// the selection report. Runs at the end of New, after every arena and
// element-loop body the operators need is in place. forced records whether
// the caller named a variant explicitly (vs the "" → schwarz default).
func (s *Solver) setupPressurePrecond(forced bool) error {
	name := s.Cfg.PressurePrecond
	if !ValidPrecond(name) {
		return fmt.Errorf("ns: unknown pressure preconditioner %q (want schwarz, chebjacobi, chebschwarz, none or auto)", name)
	}
	if name == PrecondSchwarz || name == PrecondChebSchwarz || name == PrecondAuto {
		// The sandwich preconditioner acts on the unmasked Laplacian, whose
		// coarse operator is singular (pure Neumann) regardless of the
		// velocity boundary conditions: always pin its null space.
		pre, err := schwarz.New(s.DN, schwarz.Options{
			Method: schwarz.FDM, UseCoarse: true, Neumann: true,
		})
		if err != nil {
			return fmt.Errorf("ns: pressure preconditioner: %w", err)
		}
		s.pPre = pre
	}
	if name == PrecondChebJacobi || name == PrecondAuto {
		s.buildChebJacobi()
	}
	if name == PrecondChebSchwarz || name == PrecondAuto {
		s.buildChebSchwarz()
	}
	source := "forced"
	if !forced {
		source = "default"
	}
	if name == PrecondAuto {
		return s.autoSelectPrecond()
	}
	s.precondName = name
	s.precondSel = solver.PrecondSelection{Name: name, Source: source}
	s.pPrecondOp = s.precondOp(name)
	return nil
}

// precondOp returns the Operator for a resolved concrete variant (nil for
// "none"). The variant must have been built by setupPressurePrecond.
func (s *Solver) precondOp(name string) solver.Operator {
	switch name {
	case PrecondSchwarz:
		return s.pressurePrecond
	case PrecondChebJacobi:
		return s.chebJacobiOp
	case PrecondChebSchwarz:
		return s.chebSchwarzOp
	}
	return nil
}

// buildChebJacobi assembles the Chebyshev-accelerated point-Jacobi variant:
// base sweep out = in / diag(E), bounds from a short power iteration on the
// preconditioned operator, verified (and inflated if underestimated) by
// Calibrate.
func (s *Solver) buildChebJacobi() {
	s.pDiagE = s.pressureDiagE()
	diag := s.pDiagE
	jac := func(out, in []float64) {
		for i := range in {
			out[i] = in[i] / diag[i]
		}
	}
	s.chebJacobi = &solver.Chebyshev{
		Label: PrecondChebJacobi, A: s.applyE, Base: jac, Degree: chebDegreeJacobi,
	}
	s.tuneCheb(s.chebJacobi)
	s.chebJacobiOp = s.deflateWrapped(s.chebJacobi)
}

// buildChebSchwarz assembles the Chebyshev-accelerated Schwarz variant: the
// base sweep is the sandwich without the coarse XXT term (the polynomial
// supplies the global coupling), so each application costs the local FDM
// solves only.
func (s *Solver) buildChebSchwarz() {
	s.chebSchwarz = &solver.Chebyshev{
		Label: PrecondChebSchwarz, A: s.applyE, Base: s.pressurePrecondLocal,
		Degree: chebDegreeSchwarz,
	}
	s.tuneCheb(s.chebSchwarz)
	s.chebSchwarzOp = s.deflateWrapped(s.chebSchwarz)
}

// tuneCheb estimates and verifies a variant's eigenvalue bounds.
func (s *Solver) tuneCheb(c *solver.Chebyshev) {
	var deflate func([]float64)
	if s.enclosed {
		deflate = s.deflatePressure
	}
	n := s.M.K * s.npp
	c.EstimateBounds(s.pressureDot, n, 20, deflate)
	c.Calibrate(s.pressureDot, n, deflate)
}

// deflateWrapped adapts a Chebyshev preconditioner to the enclosed-domain
// pressure solve: input and output are projected off the constant null
// space, exactly as the reference sandwich does. On open domains it is the
// bare Apply.
func (s *Solver) deflateWrapped(c *solver.Chebyshev) solver.Operator {
	return func(out, r []float64) {
		rin := r
		if s.enclosed {
			rin = s.rinArena
			copy(rin, r)
			s.deflatePressure(rin)
		}
		c.Apply(out, rin)
		if s.enclosed {
			s.deflatePressure(out)
		}
	}
}

// pressurePrecondLocal is the sandwich without the coarse XXT term and
// without deflation — the raw smoothing sweep the Chebyshev polynomial
// wraps (deflation is handled once by the wrapper).
func (s *Solver) pressurePrecondLocal(out, r []float64) {
	rv := s.scr[6]
	s.curV, s.curP = rv, r
	s.DN.ForElements(s.prolongLoop)
	s.DN.GS.Apply(rv, gs.Sum)
	zv := s.scr[7]
	s.pPre.ApplyLocal(zv, rv)
	s.curV, s.curP = zv, out
	s.DN.ForElements(s.restrictLoop)
	s.curV, s.curP = nil, nil
}

// pressureDiagE computes the exact diagonal of the consistent pressure
// operator E = D B̃⁻¹ QQᵀ Dᵀ. Because Dᵀe_i is supported on a single
// element and distinct local nodes of one element map to distinct global
// nodes, the assembly QQᵀ acts as the identity on it and
//
//	E_ii = Σ_c Σ_l (Dᵀe_i)²_{c,l} · mask_l / bAssem_l
//
// element by element. (Degenerate periodic one-element meshes self-share
// nodes and get an underestimate — harmless for a preconditioner; the
// Chebyshev Calibrate pass absorbs it into the bound.) Non-positive or
// non-finite entries (fully masked corners) are clamped to 1.
func (s *Solver) pressureDiagE() []float64 {
	m := s.M
	np := m.Np
	d := make([]float64, m.K*s.npp)
	work := make([]float64, s.interpWorkLen())
	tv := make([]float64, np)
	we := make([]float64, np)
	pe := make([]float64, s.npp)
	outs := make([][]float64, s.dim)
	for c := range outs {
		outs[c] = make([]float64, np)
	}
	for e := 0; e < m.K; e++ {
		base := e * np
		for i := 0; i < s.npp; i++ {
			for j := range pe {
				pe[j] = 0
			}
			pe[i] = 1
			for c := range outs {
				oc := outs[c]
				for l := range oc {
					oc[l] = 0
				}
			}
			s.GradTElem(outs, pe, e, work, tv, we)
			var v float64
			for c := 0; c < s.dim; c++ {
				oc := outs[c]
				for l := 0; l < np; l++ {
					mk := 1.0
					if s.maskV != nil {
						mk = s.maskV[base+l]
					}
					v += oc[l] * oc[l] * mk / s.bAssem[base+l]
				}
			}
			if !(v > 0) || math.IsNaN(v) || math.IsInf(v, 0) {
				v = 1
			}
			d[e*s.npp+i] = v
		}
	}
	return d
}

// autoSelectPrecond resolves "auto": consult the installed selection table
// for this configuration's key, and fall back to a trial-solve tournament
// — one short CG per variant against a synthetic in-range right-hand side
// — recording the winner back into the table for later sessions.
func (s *Solver) autoSelectPrecond() error {
	key := s.precondKey()
	if t := solver.InstalledPrecondTable(); t != nil {
		if name, ok := t.Lookup(key); ok && ValidPrecond(name) && name != PrecondAuto && name != PrecondNone {
			s.precondName = name
			s.precondSel = solver.PrecondSelection{Name: name, Source: "table"}
			s.pPrecondOp = s.precondOp(name)
			return nil
		}
	}
	n := s.M.K * s.npp
	probe := make([]float64, n)
	rhs := make([]float64, n)
	x := make([]float64, n)
	solver.LCGFill(probe, 3)
	if s.enclosed {
		s.deflatePressure(probe)
	}
	s.applyE(rhs, probe) // rhs ∈ range(E): every variant faces a consistent solve
	nr := math.Sqrt(s.pressureDot(rhs, rhs))
	if nr > 0 {
		inv := 1 / nr
		for i := range rhs {
			rhs[i] *= inv
		}
	}
	cands := make([]solver.PrecondCandidate, 0, 3)
	for _, name := range PrecondNames() {
		cands = append(cands, solver.PrecondCandidate{Name: name, Precond: s.precondOp(name)})
	}
	opt := solver.Options{Tol: s.Cfg.PTol, MaxIter: s.Cfg.PMaxIter, Scratch: s.cgScratch}
	name, trials := solver.SelectPrecond(s.applyE, s.pressureDot, x, rhs, opt, cands)
	if name == "" {
		name = PrecondSchwarz
	}
	s.precondName = name
	s.precondSel = solver.PrecondSelection{Name: name, Source: "trial", Trials: trials}
	s.pPrecondOp = s.precondOp(name)
	solver.RecordPrecond(key, name)
	return nil
}

// precondKey is this solver's selection-table key. The serial stepper keys
// as P=1; parrun sets Cfg.TuneRanks so distributed selections are keyed —
// and cached — separately per rank count.
func (s *Solver) precondKey() solver.PrecondKey {
	p := s.Cfg.TuneRanks
	if p < 1 {
		p = 1
	}
	return solver.PrecondKey{K: s.M.K, N: s.M.N, Dim: s.dim, P: p, Tol: s.Cfg.PTol}
}

// PrecondName returns the resolved pressure preconditioner variant
// ("schwarz", "chebjacobi", "chebschwarz" or "none").
func (s *Solver) PrecondName() string { return s.precondName }

// PrecondSelection reports how the variant was chosen ("forced", "default",
// "table" or "trial", with per-candidate trial stats in the latter case).
func (s *Solver) PrecondSelection() solver.PrecondSelection { return s.precondSel }

// ChebBounds returns the tuned Chebyshev parameters (λmin, λmax, degree)
// for a variant, or ok=false when that variant was not built. parrun reads
// these off the serial template so every rank runs identical coefficients.
func (s *Solver) ChebBounds(name string) (lmin, lmax float64, degree int, ok bool) {
	var c *solver.Chebyshev
	switch name {
	case PrecondChebJacobi:
		c = s.chebJacobi
	case PrecondChebSchwarz:
		c = s.chebSchwarz
	}
	if c == nil {
		return 0, 0, 0, false
	}
	return c.LMin, c.LMax, c.Degree, true
}

// PressureDiagE returns the exact diag(E) used by the Jacobi sweep (nil
// when the chebjacobi variant was not built). Read-only, global
// element-local pressure layout.
func (s *Solver) PressureDiagE() []float64 { return s.pDiagE }
